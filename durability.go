package rdfshapes

import (
	"errors"
	"fmt"
	"io"
	"time"

	"rdfshapes/internal/live"
	"rdfshapes/internal/obsv"
	"rdfshapes/internal/store"
	"rdfshapes/internal/wal"
)

// Durability: a DB opened with Open (or loaded with WithDurability)
// writes every committed update batch to a checksummed write-ahead log
// before acknowledging it, and periodically checkpoints the full dataset
// into an atomically-installed snapshot. After a crash, Open recovers
// the newest valid snapshot, replays the log through the incremental
// statistics maintainer, truncates any torn tail, and serves exactly a
// prefix of the acknowledged commits. See docs/DURABILITY.md.

// SyncPolicy selects when WAL appends reach stable storage; see the
// constants. The zero value is SyncAlways.
type SyncPolicy int

const (
	// SyncAlways fsyncs the log inside every Update before it returns:
	// an acknowledged commit survives any crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the operating system: updates are
	// faster, but commits acknowledged since the last checkpoint or
	// clean Close may be lost in a crash. Recovery still yields a clean
	// prefix of the commit sequence, just possibly a shorter one.
	SyncNever
)

// ParseSyncPolicy parses "always" or "never" (the -fsync server flag).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	p, err := wal.ParseSyncPolicy(s)
	if err != nil {
		return 0, err
	}
	if p == wal.SyncNever {
		return SyncNever, nil
	}
	return SyncAlways, nil
}

func (p SyncPolicy) wal() wal.SyncPolicy {
	if p == SyncNever {
		return wal.SyncNever
	}
	return wal.SyncAlways
}

func (p SyncPolicy) String() string { return p.wal().String() }

// ErrNotDurable is returned by Checkpoint on a DB that has no durability
// directory attached.
var ErrNotDurable = errors.New("rdfshapes: database is not durable (no data directory attached)")

// ErrWALFailed marks updates refused because a WAL append could not be
// made durable; the DB stays readable, and a successful Checkpoint
// restores writability. Test with errors.Is.
var ErrWALFailed = wal.ErrWALFailed

// WithDurability attaches a fresh durability directory when loading a
// dataset from another source (N-Triples, a plain snapshot, a parsed
// graph): the loaded data is checkpointed into dir as generation one and
// every subsequent update is logged there. It fails with an error if dir
// already holds durable state — recovering existing state is Open's job,
// and silently shadowing it would lose data.
func WithDurability(dir string) Option {
	return func(c *config) { c.walDir = dir }
}

// WithSyncPolicy sets the WAL fsync policy (default SyncAlways); it only
// has an effect together with Open or WithDurability.
func WithSyncPolicy(p SyncPolicy) Option {
	return func(c *config) { c.walSync = p }
}

// Open recovers a durable DB from dir: the newest valid snapshot is
// loaded (falling back past a corrupt one), the write-ahead log is
// replayed through the incremental statistics maintainer, any torn log
// tail is truncated, and the DB is ready to query and update. An empty
// or missing dir starts an empty durable DB. Options apply as in Load;
// WithShapesGraph shapes are annotated against the recovered data.
func Open(dir string, opts ...Option) (*DB, error) {
	cfg := newConfig(opts)
	if cfg.replicaOf != "" {
		return nil, errors.New("rdfshapes: a durable primary cannot also be a replica; use OpenReplica")
	}
	mgr, base, batches, err := wal.Open(dir, wal.Options{FS: cfg.walFS, Sync: cfg.walSync.wal()})
	if err != nil {
		return nil, err
	}
	db, err := fromStoreCfg(base, cfg)
	if err != nil {
		mgr.Close()
		return nil, err
	}
	// Replay goes through the same apply path as live updates — overlay
	// commit plus incremental statistics maintenance — but without
	// re-logging, so recovered statistics match a from-scratch recompute
	// exactly for the maintained quantities.
	for _, b := range batches {
		db.applyBatch(live.Batch{Insert: b.Insert, Delete: b.Delete})
	}
	if len(batches) > 0 {
		db.refreshPlanner()
	}
	db.durable = mgr
	rec := mgr.Recovery()
	if rec.Recovered {
		cfg.obs.Counter(obsv.MetricRecoveries,
			"Times a durable data directory with existing state was recovered at open.").Add(1)
	}
	cfg.obs.Counter(obsv.MetricRecordsReplayed,
		"WAL records replayed over the recovered snapshot at open.").Add(float64(rec.RecordsReplayed))
	cfg.obs.Counter(obsv.MetricTornTruncations,
		"Torn or corrupt WAL tails truncated during recovery.").Add(float64(rec.TornTruncations))
	cfg.obs.Counter(obsv.MetricSnapshotFallbacks,
		"Corrupt snapshots skipped during recovery in favor of an older generation.").Add(float64(rec.SnapshotFallbacks))
	return db, nil
}

// attachDurability seeds a fresh durability directory with the DB's
// loaded dataset (the WithDurability path out of Load/LoadNTriples/
// LoadSnapshot).
func (db *DB) attachDurability(cfg config) error {
	mgr, err := wal.Create(cfg.walDir, wal.Options{FS: cfg.walFS, Sync: cfg.walSync.wal()},
		db.writeBaseSnapshot)
	if err != nil {
		if errors.Is(err, wal.ErrExists) {
			return fmt.Errorf("rdfshapes: %s holds existing durable state; recover it with Open instead of re-seeding: %w", cfg.walDir, err)
		}
		return err
	}
	db.durable = mgr
	return nil
}

// writeBaseSnapshot writes the just-loaded dataset in the store's
// binary snapshot format — the frozen base on an unsharded DB, the
// merged shard contents on a sharded one (no updates have been applied
// yet when the durability directory is seeded).
func (db *DB) writeBaseSnapshot(w io.Writer) error {
	if db.shards != nil {
		merged, err := db.shards.Merged()
		if err != nil {
			return err
		}
		return merged.WriteSnapshot(w)
	}
	return db.live.Base().WriteSnapshot(w)
}

// CheckpointStats reports one completed checkpoint.
type CheckpointStats struct {
	// Generation is the new snapshot/WAL generation number.
	Generation uint64
	// Triples is the dataset size the snapshot captured.
	Triples int
	// Duration is the checkpoint wall time, dominated by the snapshot
	// write and its fsyncs.
	Duration time.Duration
}

// Checkpoint compacts the dataset and durably installs it as a new
// snapshot generation, then rotates the write-ahead log and prunes
// generations older than the previous one. Updates wait for the
// checkpoint; queries do not. On a poisoned DB (ErrWALFailed) a
// successful checkpoint restores writability. Returns ErrNotDurable
// without a durability directory.
func (db *DB) Checkpoint() (*CheckpointStats, error) {
	if err := db.begin(); err != nil {
		return nil, err
	}
	defer db.end()
	if db.durable == nil {
		return nil, ErrNotDurable
	}
	db.updateMu.Lock()
	defer db.updateMu.Unlock()
	var base *store.Store
	if db.shards != nil {
		merged, err := db.shards.Merged()
		if err != nil {
			return nil, err
		}
		base = merged
	} else {
		snap, err := db.live.Compact()
		if err != nil {
			return nil, err
		}
		base = snap.Base()
	}
	start := time.Now()
	gen, err := db.durable.Checkpoint(base.WriteSnapshot)
	if err != nil {
		return nil, err
	}
	dur := time.Since(start)
	db.obs.Counter(obsv.MetricCheckpoints, "Checkpoints completed.").Add(1)
	db.obs.Histogram(obsv.MetricCheckpointDuration,
		"Checkpoint wall time in seconds (snapshot write, fsyncs, and log rotation).",
		obsv.CheckpointDurationBuckets).Observe(dur.Seconds())
	return &CheckpointStats{Generation: gen, Triples: base.Len(), Duration: dur}, nil
}

// DurabilityStats is a point-in-time view of the durability subsystem.
type DurabilityStats struct {
	// Generation is the current snapshot/WAL generation.
	Generation uint64
	// LastSeq is the sequence number of the last logged commit.
	LastSeq uint64
	// WALSizeBytes is the active WAL file size, header included.
	WALSizeBytes int64
	// RecordsAppended counts commits logged since open.
	RecordsAppended int64
	// Checkpoints counts checkpoints completed since open.
	Checkpoints int64
	// Failed reports the WAL is poisoned: updates fail with
	// ErrWALFailed until a checkpoint succeeds.
	Failed bool
	// Recovered, RecordsReplayed, TornTruncations, and
	// SnapshotFallbacks describe what the opening recovery found.
	Recovered         bool
	RecordsReplayed   int
	TornTruncations   int
	SnapshotFallbacks int
}

// DurabilityStats returns the durability subsystem's state; ok is false
// (and the stats zero) when the DB is not durable.
func (db *DB) DurabilityStats() (s DurabilityStats, ok bool) {
	if db.durable == nil {
		return DurabilityStats{}, false
	}
	ws := db.durable.Stats()
	return DurabilityStats{
		Generation:        ws.Gen,
		LastSeq:           ws.LastSeq,
		WALSizeBytes:      ws.SizeBytes,
		RecordsAppended:   ws.Appended,
		Checkpoints:       ws.Checkpoints,
		Failed:            ws.Failed,
		Recovered:         ws.Recovery.Recovered,
		RecordsReplayed:   ws.Recovery.RecordsReplayed,
		TornTruncations:   ws.Recovery.TornTruncations,
		SnapshotFallbacks: ws.Recovery.SnapshotFallbacks,
	}, true
}

// Durable reports whether the DB has a durability directory attached.
func (db *DB) Durable() bool { return db.durable != nil }

// WAL exposes the write-ahead-log manager of a durable DB — the
// log-shipping source replicas tail (internal/server mounts the
// /repl/wal and /repl/snapshot endpoints over it); nil otherwise.
func (db *DB) WAL() *wal.Manager { return db.durable }
