package rdfshapes

import (
	"reflect"
	"strings"
	"testing"
)

// TestApplyRowModifiersDistinctNoCollision is the UNION-dedup regression
// test: rendered terms can contain any byte (blank-node labels are not
// escaped), so the old "\x00"-joined keys collided the two distinct rows
// below — both produced "_:b\x00_:c\x00\x00". Length-prefixed keys keep
// them apart.
func TestApplyRowModifiersDistinctNoCollision(t *testing.T) {
	rows := []map[string]string{
		{"x": "_:b\x00_:c", "y": ""},
		{"x": "_:b", "y": "_:c\x00"},
	}
	out := applyRowModifiers(rows, []string{"x", "y"}, true, 0, 0)
	if len(out) != 2 {
		t.Fatalf("DISTINCT collapsed %d distinct rows to %d — separator collision", len(rows), len(out))
	}
}

// TestApplyRowModifiersDistinctStillDedupes pins that genuinely equal
// rows still collapse after the key change.
func TestApplyRowModifiersDistinctStillDedupes(t *testing.T) {
	rows := []map[string]string{
		{"x": "<http://x/a>", "y": `"v"`},
		{"x": "<http://x/a>", "y": `"v"`},
		{"x": "<http://x/a>", "y": `"w"`},
	}
	out := applyRowModifiers(rows, []string{"x", "y"}, true, 0, 0)
	if len(out) != 2 {
		t.Fatalf("rows = %d, want 2", len(out))
	}
}

// TestWithParallelismMatchesSerial pins the facade determinism contract:
// the same query under WithParallelism(4) and WithParallelism(1) returns
// identical rows in identical order.
func TestWithParallelismMatchesSerial(t *testing.T) {
	nt := crossProductNT(12)
	serialDB, err := LoadNTriples(strings.NewReader(nt), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	defer serialDB.Close()
	parDB, err := LoadNTriples(strings.NewReader(nt), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	defer parDB.Close()
	if got := parDB.Parallelism(); got != 4 {
		t.Fatalf("Parallelism() = %d, want 4", got)
	}

	for _, src := range []string{
		crossQuery,
		`SELECT * WHERE { ?a <http://x/p1> ?b }`,
		`SELECT ?a WHERE { { ?a <http://x/p1> ?b } UNION { ?a <http://x/p2> ?b } }`,
	} {
		want, err := serialDB.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := parDB.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Rows, got.Rows) {
			t.Errorf("query %q: parallel rows differ from serial (%d vs %d rows)",
				src, len(got.Rows), len(want.Rows))
		}
	}

	n, err := parDB.Count(crossQuery)
	if err != nil {
		t.Fatal(err)
	}
	if n != 12*12*12 {
		t.Errorf("Count = %d, want %d", n, 12*12*12)
	}
}

// TestWithParallelismRowBudgetTruncates mirrors the serial MaxRows
// contract under parallel execution: exactly MaxRows rows, Truncated.
func TestWithParallelismRowBudgetTruncates(t *testing.T) {
	db, err := LoadNTriples(strings.NewReader(crossProductNT(20)),
		WithParallelism(4), WithLimits(Limits{MaxRows: 5}))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	res, err := db.Query(crossQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("result not marked Truncated")
	}
	if len(res.Rows) != 5 {
		t.Errorf("rows = %d, want 5", len(res.Rows))
	}
}

// TestActiveParallelWorkersIdle pins the gauge's idle value.
func TestActiveParallelWorkersIdle(t *testing.T) {
	if n := ActiveParallelWorkers(); n != 0 {
		t.Errorf("ActiveParallelWorkers = %d while idle, want 0", n)
	}
}
