package rdfshapes

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// crossProductNT builds n unrelated triples per predicate so a query
// over all three predicates is an unavoidable cross product.
func crossProductNT(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		for _, p := range []string{"p1", "p2", "p3"} {
			fmt.Fprintf(&b, "<http://x/s%d> <http://x/%s> <http://x/o%d> .\n", i, p, i)
		}
	}
	return b.String()
}

const crossQuery = `SELECT * WHERE {
	?a <http://x/p1> ?b .
	?c <http://x/p2> ?d .
	?e <http://x/p3> ?f .
}`

func TestQueryCtxDeadline(t *testing.T) {
	db, err := LoadNTriples(strings.NewReader(crossProductNT(200)))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = db.QueryCtx(ctx, crossQuery)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Errorf("deadline noticed after %v", elapsed)
	}
}

func TestWithDefaultTimeout(t *testing.T) {
	db, err := LoadNTriples(strings.NewReader(crossProductNT(200)),
		WithDefaultTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Query(crossQuery); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	// An explicit context deadline wins over the default.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := db.QueryCtx(ctx, `SELECT * WHERE { ?a <http://x/p1> ?b }`); err != nil {
		t.Fatalf("fast query under explicit deadline: %v", err)
	}
}

func TestWithLimitsRowBudgetTruncates(t *testing.T) {
	db, err := LoadNTriples(strings.NewReader(crossProductNT(20)),
		WithLimits(Limits{MaxRows: 5}))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	res, err := db.Query(crossQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("result not marked Truncated")
	}
	if len(res.Rows) != 5 {
		t.Errorf("rows = %d, want 5", len(res.Rows))
	}
}

func TestWithLimitsIntermediateBudgetTruncates(t *testing.T) {
	db, err := LoadNTriples(strings.NewReader(crossProductNT(20)),
		WithLimits(Limits{MaxIntermediate: 50}))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	res, err := db.Query(crossQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("result not marked Truncated")
	}
}

func TestWithLimitsDoesNotFlagCompleteRuns(t *testing.T) {
	db, err := LoadNTriples(strings.NewReader(crossProductNT(3)),
		WithLimits(Limits{MaxIntermediate: 1 << 20, MaxRows: 1 << 20}))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	res, err := db.Query(`SELECT * WHERE { ?a <http://x/p1> ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Error("complete run marked Truncated")
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(res.Rows))
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	db, err := LoadNTriples(strings.NewReader(crossProductNT(2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if _, err := db.Query(`SELECT * WHERE { ?s ?p ?o }`); !errors.Is(err, ErrClosed) {
		t.Errorf("Query after Close = %v, want ErrClosed", err)
	}
	if _, err := db.Update(`INSERT DATA { <http://x/a> <http://x/b> <http://x/c> }`); !errors.Is(err, ErrClosed) {
		t.Errorf("Update after Close = %v, want ErrClosed", err)
	}
	if _, err := db.Ask(`ASK { ?s ?p ?o }`); !errors.Is(err, ErrClosed) {
		t.Errorf("Ask after Close = %v, want ErrClosed", err)
	}
	if err := db.Reannotate(); !errors.Is(err, ErrClosed) {
		t.Errorf("Reannotate after Close = %v, want ErrClosed", err)
	}
}

func TestUpdateCtxCanceled(t *testing.T) {
	db, err := LoadNTriples(strings.NewReader(crossProductNT(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := db.UpdateCtx(ctx, `INSERT DATA { <http://x/a> <http://x/b> <http://x/c> }`)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res.Inserted != 0 {
		t.Errorf("inserted = %d, want 0 (canceled before the first op)", res.Inserted)
	}
}

// TestOpenCloseLeaksNoGoroutines pins the graceful-lifecycle contract:
// a DB that compacted and re-annotated in the background leaves no
// goroutine behind after Close.
func TestOpenCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	db, err := LoadNTriples(strings.NewReader(crossProductNT(10)),
		WithAutoCompact(4),    // force background compactions
		WithDriftThreshold(1)) // force background re-annotations
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		up := fmt.Sprintf("INSERT DATA { <http://x/u%d> <http://x/q> <http://x/v%d> }", i, i)
		if _, err := db.Update(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// A drift-trigger goroutine may still be between spawn and its
	// ErrClosed exit; give the scheduler a moment before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d after Close, want <= %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseWaitsForInflightQueries races Close against a long query and
// a background compaction; run under -race by scripts/verify.sh.
func TestCloseWaitsForInflightQueries(t *testing.T) {
	db, err := LoadNTriples(strings.NewReader(crossProductNT(100)), WithAutoCompact(2))
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := db.Query(crossQuery)
		done <- err
	}()
	<-started
	time.Sleep(5 * time.Millisecond) // let the query get past begin()
	if _, err := db.Update(`INSERT DATA { <http://x/a> <http://x/b> <http://x/c> }`); err != nil && !errors.Is(err, ErrClosed) {
		t.Errorf("update: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The query either completed before Close finished or was begun
	// before closed flipped; both must return a well-formed outcome.
	if err := <-done; err != nil && !errors.Is(err, ErrClosed) {
		t.Errorf("in-flight query after Close: %v", err)
	}
}
