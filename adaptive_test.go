package rdfshapes_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rdfshapes"
	"rdfshapes/internal/obsv"
	"rdfshapes/internal/sparql"
)

func patternsOf(t *testing.T, src string) []sparql.TriplePattern {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q.Patterns
}

func TestTemplateKeyNormalization(t *testing.T) {
	base := patternsOf(t, `SELECT ?x WHERE {
		?x a <http://ex/Person> .
		?x <http://ex/knows> <http://ex/bob> .
	}`)
	// Different constant, different variable names: same template.
	renamed := patternsOf(t, `SELECT ?who WHERE {
		?who a <http://ex/Person> .
		?who <http://ex/knows> <http://ex/carol> .
	}`)
	k1, label := rdfshapes.TemplateKey(base)
	k2, _ := rdfshapes.TemplateKey(renamed)
	if k1 != k2 {
		t.Errorf("constants/var-names changed the key:\n%q\n%q", k1, k2)
	}
	// The masked constant must not leak into the key, but the structural
	// parts (predicate IRIs, the rdf:type object) must be kept.
	if strings.Contains(k1, "bob") {
		t.Errorf("key retains a non-structural constant: %q", k1)
	}
	for _, want := range []string{"http://ex/Person", "http://ex/knows", "?v0"} {
		if !strings.Contains(k1, want) {
			t.Errorf("key %q missing structural part %q", k1, want)
		}
	}
	if label == "" {
		t.Error("empty label")
	}

	// A different predicate is a different template.
	other := patternsOf(t, `SELECT ?x WHERE {
		?x a <http://ex/Person> .
		?x <http://ex/likes> <http://ex/bob> .
	}`)
	if k3, _ := rdfshapes.TemplateKey(other); k3 == k1 {
		t.Error("different predicate produced the same key")
	}
	// A different class in the type pattern is a different template.
	cls := patternsOf(t, `SELECT ?x WHERE {
		?x a <http://ex/Robot> .
		?x <http://ex/knows> <http://ex/bob> .
	}`)
	if k4, _ := rdfshapes.TemplateKey(cls); k4 == k1 {
		t.Error("different rdf:type object produced the same key")
	}
}

// adaptiveQuery is the templated query the replan tests replay. Its
// final join size tracks the dataset, so frozen estimates drift when the
// data grows; the variable names vary per instance to prove instances
// normalize onto one template.
func adaptiveQuery(i int) string {
	return fmt.Sprintf(`PREFIX ex: <http://ex/>
		SELECT ?a%[1]d ?b%[1]d WHERE {
			?a%[1]d a ex:Person .
			?a%[1]d ex:knows ?b%[1]d .
		}`, i)
}

// openAdaptive loads a small social graph with adaptive replan enabled
// and a fake clock, returning the DB and a function advancing the clock.
func openAdaptive(t *testing.T, threshold float64, window int, cooldown time.Duration) (*rdfshapes.DB, func(time.Duration)) {
	t.Helper()
	var data strings.Builder
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&data, "<http://ex/p%d> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .\n", i)
		fmt.Fprintf(&data, "<http://ex/p%d> <http://ex/knows> <http://ex/q%d> .\n", i, i)
		fmt.Fprintf(&data, "<http://ex/q%d> <http://ex/name> \"n%d\" .\n", i, i)
	}
	db, err := rdfshapes.LoadNTriples(strings.NewReader(data.String()),
		rdfshapes.WithAdaptiveReplan(threshold))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	now := time.Unix(1_000_000, 0)
	db.SetAdaptiveClock(func() time.Time { return now }, window, cooldown)
	return db, func(d time.Duration) { now = now.Add(d) }
}

// drift inserts n new persons with knows edges, making any estimates
// frozen before the insert stale by roughly a factor of n/4.
func drift(t *testing.T, db *rdfshapes.DB, start, n int) {
	t.Helper()
	var b strings.Builder
	b.WriteString("INSERT DATA {\n")
	for i := start; i < start+n; i++ {
		fmt.Fprintf(&b, "<http://ex/p%d> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .\n", i)
		fmt.Fprintf(&b, "<http://ex/p%d> <http://ex/knows> <http://ex/q%d> .\n", i, i)
		fmt.Fprintf(&b, "<http://ex/q%d> <http://ex/name> \"n%d\" .\n", i, i)
	}
	b.WriteString("}")
	if _, err := db.Update(b.String()); err != nil {
		t.Fatal(err)
	}
}

func run(t *testing.T, db *rdfshapes.DB, i int) {
	t.Helper()
	if _, err := db.Query(adaptiveQuery(i)); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveReplanRestoresEstimates(t *testing.T) {
	db, advance := openAdaptive(t, 5, 4, time.Second)

	// First instance optimizes and caches; later instances hit.
	run(t, db, 0)
	run(t, db, 1)
	st := db.AdaptiveTemplates()
	if len(st) != 1 {
		t.Fatalf("templates = %d, want 1", len(st))
	}
	if st[0].Misses != 1 || st[0].Hits != 1 || !st[0].Cached {
		t.Fatalf("after two instances: %+v", st[0])
	}

	// A skewed update stream: the dataset grows 20x while the cached
	// estimates stay frozen at plan time.
	drift(t, db, 100, 80)
	advance(10 * time.Second)

	// Complete executions accumulate q-error evidence; once the window
	// median crosses the threshold the cached plan is invalidated.
	for i := 0; i < 4; i++ {
		run(t, db, i)
	}
	if got := db.AdaptiveReplans(); got != 1 {
		t.Fatalf("AdaptiveReplans = %d, want 1 (templates: %+v)", got, db.AdaptiveTemplates())
	}
	// The next instance re-plans against current statistics; estimate
	// quality is restored, so no further replans fire even with the
	// cooldown long expired.
	advance(10 * time.Second)
	for i := 0; i < 6; i++ {
		run(t, db, i)
	}
	st = db.AdaptiveTemplates()
	if got := db.AdaptiveReplans(); got != 1 {
		t.Errorf("AdaptiveReplans = %d after recovery, want 1 (%+v)", got, st)
	}
	if st[0].Observations < 3 {
		t.Fatalf("too few post-replan observations: %+v", st[0])
	}
	if st[0].QError > 5 {
		t.Errorf("post-replan q-error %v not restored under threshold 5", st[0].QError)
	}
	if !st[0].Cached {
		t.Error("re-planned template not cached")
	}
}

func TestAdaptiveReplanCooldown(t *testing.T) {
	db, advance := openAdaptive(t, 3, 4, time.Minute)

	run(t, db, 0)
	drift(t, db, 100, 60)
	advance(2 * time.Minute)
	for i := 0; i < 4; i++ {
		run(t, db, i)
	}
	if got := db.AdaptiveReplans(); got != 1 {
		t.Fatalf("AdaptiveReplans = %d, want 1 (%+v)", got, db.AdaptiveTemplates())
	}

	// Re-plan, then drift again. The window median crosses the threshold
	// once more, but the clock has not moved since replan #1 — the
	// cooldown holds the second replan back.
	run(t, db, 0) // re-plan + cache
	drift(t, db, 300, 300)
	for i := 0; i < 6; i++ {
		run(t, db, i)
	}
	if got := db.AdaptiveReplans(); got != 1 {
		t.Fatalf("AdaptiveReplans = %d during cooldown, want still 1 (%+v)", got, db.AdaptiveTemplates())
	}

	// Once the cooldown passes, the already-full window fires on the
	// next complete execution.
	advance(2 * time.Minute)
	run(t, db, 0)
	if got := db.AdaptiveReplans(); got != 2 {
		t.Fatalf("AdaptiveReplans = %d after cooldown, want 2 (%+v)", got, db.AdaptiveTemplates())
	}
}

func TestAdaptiveReplanCounterSurvivesSetCollector(t *testing.T) {
	db, advance := openAdaptive(t, 3, 4, time.Second)
	run(t, db, 0)
	drift(t, db, 100, 60)
	advance(10 * time.Second)
	for i := 0; i < 4; i++ {
		run(t, db, i)
	}
	if db.AdaptiveReplans() != 1 {
		t.Fatalf("no replan to expose (%+v)", db.AdaptiveTemplates())
	}

	// Installing a collector after the fact must carry the accumulated
	// replan count into the new registry, the way the server wires one in
	// after Open.
	c := obsv.NewCollector(16)
	db.SetCollector(c)
	var b strings.Builder
	c.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, obsv.MetricAdaptiveReplans) {
		t.Fatalf("metrics missing %s:\n%s", obsv.MetricAdaptiveReplans, out)
	}
	if !strings.Contains(out, `} 1`) {
		t.Errorf("replayed replan count not rendered:\n%s", out)
	}
}

func TestAdaptiveDisabledByDefault(t *testing.T) {
	db := open(t)
	if db.AdaptiveEnabled() {
		t.Error("adaptive enabled without WithAdaptiveReplan")
	}
	if db.AdaptiveReplans() != 0 || db.AdaptiveTemplates() != nil {
		t.Error("disabled adaptive reports state")
	}
	// Thresholds at or below 1 leave the feature off: q-error is >= 1 by
	// construction, so such a threshold would replan on every window.
	db2, err := rdfshapes.LoadNTriples(strings.NewReader(testNT), rdfshapes.WithAdaptiveReplan(1))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.AdaptiveEnabled() {
		t.Error("threshold 1 enabled adaptive replan")
	}
}
