package rdfshapes

// Adaptive re-optimization: a per-template plan cache whose entries are
// invalidated by their own observed estimation error.
//
// Real SPARQL traffic is dominated by a small number of templated query
// shapes, so the greedy optimizer's work — and its statistics inputs —
// can be amortized per template: the first instance of a template is
// optimized normally and its join order and per-step estimates are
// cached; later instances reuse the order without re-running the
// optimizer. The cached estimates are deliberately frozen at plan time,
// which makes them a drift detector: every complete execution's final
// estimated-vs-actual q-error (the paper's Section 7 metric, computed by
// internal/obsv) is folded into a rolling window per template, and when
// the window's median exceeds the WithAdaptiveReplan threshold the entry
// is invalidated — the next instance re-plans against the *current*
// maintained statistics, restoring estimate quality without waiting for
// the global drift re-annotation (WithDriftThreshold) to fire.
//
// Correctness never depends on the cache: any join order over the same
// pattern set produces the same rows, so a template-key collision or a
// stale order only costs performance, never answers.

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rdfshapes/internal/cardinality"
	"rdfshapes/internal/core"
	"rdfshapes/internal/obsv"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
)

// Defaults of the adaptive replan layer; see WithAdaptiveReplan.
const (
	// DefaultAdaptiveWindow is the number of recent complete executions
	// whose q-errors form a template's rolling window.
	DefaultAdaptiveWindow = 8
	// DefaultAdaptiveCooldown is the minimum time between two replans of
	// the same template, so one burst of drift cannot thrash the cache.
	DefaultAdaptiveCooldown = time.Second
	// adaptiveMinSamples is the smallest window that may trigger a
	// replan; a single outlier execution is never enough.
	adaptiveMinSamples = 3
	// templateLabelMax caps the template text used as a metric label.
	templateLabelMax = 200
)

// WithAdaptiveReplan enables adaptive re-optimization: query plans are
// cached per normalized BGP template (constants masked, variables
// canonicalized), each template's observed q-error is tracked over a
// rolling window, and when the window median exceeds threshold the
// cached plan is invalidated and re-planned against current statistics.
// threshold must be > 1 (q-error is ≥ 1 by construction); values ≤ 1
// leave the feature disabled. Progress is observable as
// rdfshapes_adaptive_replans_total and rdfshapes_template_qerror in
// /metrics, and programmatically via DB.AdaptiveTemplates.
func WithAdaptiveReplan(threshold float64) Option {
	return func(c *config) { c.adaptiveAt = threshold }
}

// TemplateStat is one template's adaptive-replan accounting, a snapshot
// returned by DB.AdaptiveTemplates.
type TemplateStat struct {
	// Template is the normalized template text (variables canonicalized
	// to ?v0, ?v1, ...; non-structural constants masked as $), truncated
	// to the metric-label cap.
	Template string
	// QError is the rolling window's median observed q-error; 0 until
	// the first complete execution after (re)planning.
	QError float64
	// Observations counts complete executions currently in the window.
	Observations int
	// Hits and Misses count plan-cache lookups.
	Hits, Misses int64
	// Replans counts threshold-triggered invalidations of this template.
	Replans int64
	// Cached reports whether a plan is currently cached.
	Cached bool
}

// adaptive is the DB's adaptive re-optimization state.
type adaptive struct {
	threshold float64
	window    int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	total atomic.Int64 // replans across all templates

	mu      sync.Mutex
	entries map[string]*templateEntry
	replans *obsv.CounterVec // rdfshapes_adaptive_replans_total by template
}

// templateEntry is one template's cached plan and rolling q-error state.
type templateEntry struct {
	label string // truncated template text, the metric label value

	plan *cachedPlan // nil: next instance re-plans

	// qerrs is the rolling window of final q-errors of complete
	// executions, newest last, cleared on replan.
	qerrs []float64

	hits, misses int64
	replans      int64
	lastReplan   time.Time
}

// cachedPlan is a join order with its estimates frozen at plan time. The
// steps keep the first instance's patterns; reuse rebinds each step's
// pattern from the incoming query via order, so instances differing only
// in constants share the order and the estimates.
type cachedPlan struct {
	steps     []core.Step
	order     []int // order[i] = position in q.Patterns executed at step i
	cost      float64
	estimator string
}

func newAdaptive(threshold float64) *adaptive {
	return &adaptive{
		threshold: threshold,
		window:    DefaultAdaptiveWindow,
		cooldown:  DefaultAdaptiveCooldown,
		now:       time.Now,
		entries:   map[string]*templateEntry{},
		replans:   obsv.NewCounterVec(obsv.MetricAdaptiveReplans, adaptiveReplansHelp, "template"),
	}
}

const adaptiveReplansHelp = "Cached template plans invalidated because their rolling observed q-error crossed the adaptive replan threshold."

// attachCollector moves the replan counter into c's registry so it
// renders in /metrics, carrying over counts accumulated before the
// collector was installed (SetCollector may run after construction).
func (a *adaptive) attachCollector(c *obsv.Collector) {
	if a == nil || c == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	cv := c.Counter(obsv.MetricAdaptiveReplans, adaptiveReplansHelp, "template")
	if cv == a.replans {
		return
	}
	for _, e := range a.entries {
		if e.replans > 0 {
			cv.Add(float64(e.replans), e.label)
		}
	}
	a.replans = cv
}

// templateKey normalizes a BGP into its template identity: patterns in
// textual (parse-index) order, variables renamed ?v0, ?v1, ... in first-
// use order, predicates and rdf:type objects kept (they are structural —
// they select the shape statistics), every other constant masked as $.
// Two queries that differ only in parameter constants or variable names
// therefore share a key. The second return value is the metric label:
// the same text truncated to templateLabelMax bytes.
func templateKey(patterns []sparql.TriplePattern) (string, string) {
	ordered := append([]sparql.TriplePattern(nil), patterns...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Index < ordered[j].Index })
	vars := map[string]string{}
	canon := func(pt sparql.PatternTerm, structural bool) string {
		if pt.IsVar() {
			c, ok := vars[pt.Var]
			if !ok {
				c = "?v" + strconv.Itoa(len(vars))
				vars[pt.Var] = c
			}
			return c
		}
		if structural {
			return pt.Term.String()
		}
		return "$"
	}
	var b strings.Builder
	for i, tp := range ordered {
		if i > 0 {
			b.WriteByte(' ')
		}
		isType := !tp.P.IsVar() && tp.P.Term.IsIRI() && tp.P.Term.Value == rdf.RDFType
		b.WriteString(canon(tp.S, false))
		b.WriteByte(' ')
		b.WriteString(canon(tp.P, true))
		b.WriteByte(' ')
		b.WriteString(canon(tp.O, isType))
		b.WriteString(" .")
	}
	key := b.String()
	label := key
	if len(label) > templateLabelMax {
		label = label[:templateLabelMax]
	}
	return key, label
}

// templateKeyFromSteps recovers the template key of an executed plan:
// the steps' patterns carry their parse indexes, so sorting them
// reconstructs the textual order templateKey normalizes from.
func templateKeyFromSteps(steps []core.Step) (string, string) {
	patterns := make([]sparql.TriplePattern, len(steps))
	for i, s := range steps {
		patterns[i] = s.Pattern
	}
	return templateKey(patterns)
}

// plan serves q's join order from the template cache, optimizing (and
// caching) on miss. The returned plan always carries q's own patterns;
// on a hit the estimates are the cached ones, frozen at plan time.
func (a *adaptive) plan(q *sparql.Query, est cardinality.Estimator) *core.Plan {
	key, label := templateKey(q.Patterns)
	a.mu.Lock()
	e := a.entries[key]
	if e == nil {
		e = &templateEntry{label: label}
		a.entries[key] = e
	}
	if cp := e.plan; cp != nil && len(cp.order) == len(q.Patterns) && cp.estimator == est.Name() {
		e.hits++
		a.mu.Unlock()
		steps := make([]core.Step, len(cp.steps))
		copy(steps, cp.steps)
		for i := range steps {
			steps[i].Pattern = q.Patterns[cp.order[i]]
		}
		return &core.Plan{Estimator: cp.estimator, Steps: steps, Cost: cp.cost}
	}
	e.misses++
	a.mu.Unlock()

	p := core.Optimize(q, est)
	pos := make(map[int]int, len(q.Patterns))
	for j, tp := range q.Patterns {
		pos[tp.Index] = j
	}
	cp := &cachedPlan{
		steps:     append([]core.Step(nil), p.Steps...),
		order:     make([]int, len(p.Steps)),
		cost:      p.Cost,
		estimator: p.Estimator,
	}
	for i, s := range p.Steps {
		cp.order[i] = pos[s.Pattern.Index]
	}
	a.mu.Lock()
	e.plan = cp
	a.mu.Unlock()
	return p
}

// observe folds one complete execution's final q-error (the executed
// plan's last-step estimate vs. the measured last intermediate size)
// into the template's rolling window and fires a replan — invalidating
// the cached plan so the next instance re-optimizes against current
// statistics — when the window median crosses the threshold. Partial
// executions never reach here: their actuals are lower bounds and would
// fake drift.
func (a *adaptive) observe(plan *core.Plan, intermediate []int64) {
	n := len(plan.Steps)
	if n == 0 || len(intermediate) < n {
		return
	}
	qe := obsv.QError(plan.Steps[n-1].JoinEstimate, float64(intermediate[n-1]))
	key, _ := templateKeyFromSteps(plan.Steps)

	a.mu.Lock()
	e := a.entries[key]
	if e == nil {
		a.mu.Unlock()
		return // plan did not come through the cache (e.g. Explain "GS")
	}
	e.qerrs = append(e.qerrs, qe)
	if len(e.qerrs) > a.window {
		e.qerrs = e.qerrs[len(e.qerrs)-a.window:]
	}
	fire := len(e.qerrs) >= adaptiveMinSamples &&
		median(e.qerrs) > a.threshold &&
		e.plan != nil &&
		a.now().Sub(e.lastReplan) >= a.cooldown
	var replans *obsv.CounterVec
	var label string
	if fire {
		e.plan = nil
		e.qerrs = e.qerrs[:0]
		e.replans++
		e.lastReplan = a.now()
		replans, label = a.replans, e.label
	}
	a.mu.Unlock()
	if fire {
		a.total.Add(1)
		replans.Add(1, label)
	}
}

// median returns the median of xs (mean of the middle pair for even
// lengths). xs is not modified.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// snapshot returns the per-template stats sorted by template text.
func (a *adaptive) snapshot() []TemplateStat {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]TemplateStat, 0, len(a.entries))
	for _, e := range a.entries {
		st := TemplateStat{
			Template:     e.label,
			Observations: len(e.qerrs),
			Hits:         e.hits,
			Misses:       e.misses,
			Replans:      e.replans,
			Cached:       e.plan != nil,
		}
		if len(e.qerrs) > 0 {
			st.QError = median(e.qerrs)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Template < out[j].Template })
	return out
}

// AdaptiveEnabled reports whether WithAdaptiveReplan is active.
func (db *DB) AdaptiveEnabled() bool { return db.adaptive != nil }

// AdaptiveReplans returns the total threshold-triggered replans across
// all templates (0 when the feature is disabled).
func (db *DB) AdaptiveReplans() int64 {
	if db.adaptive == nil {
		return 0
	}
	return db.adaptive.total.Load()
}

// AdaptiveTemplates returns a snapshot of every tracked template's
// adaptive-replan state, sorted by template text; nil when the feature
// is disabled.
func (db *DB) AdaptiveTemplates() []TemplateStat {
	if db.adaptive == nil {
		return nil
	}
	return db.adaptive.snapshot()
}
