package rdfshapes

import (
	"time"

	"rdfshapes/internal/sparql"
	"rdfshapes/internal/wal"
)

// WithWALFS substitutes the durability layer's filesystem — the
// fault-injection hook the crash-matrix tests drive the whole facade
// through. Test-only.
func WithWALFS(fs wal.FS) Option {
	return func(c *config) { c.walFS = fs }
}

// SetAdaptiveClock substitutes the adaptive replan layer's clock and
// tuning, so tests can drive the replan cooldown without sleeping.
// Test-only; panics when adaptive replan is not enabled.
func (db *DB) SetAdaptiveClock(now func() time.Time, window int, cooldown time.Duration) {
	if db.adaptive == nil {
		panic("SetAdaptiveClock: adaptive replan not enabled")
	}
	db.adaptive.now = now
	if window > 0 {
		db.adaptive.window = window
	}
	db.adaptive.cooldown = cooldown
}

// TemplateKey exposes the template normalization for tests.
func TemplateKey(patterns []sparql.TriplePattern) (string, string) {
	return templateKey(patterns)
}
