package rdfshapes

import "rdfshapes/internal/wal"

// WithWALFS substitutes the durability layer's filesystem — the
// fault-injection hook the crash-matrix tests drive the whole facade
// through. Test-only.
func WithWALFS(fs wal.FS) Option {
	return func(c *config) { c.walFS = fs }
}
