package rdfshapes_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rdfshapes"
	"rdfshapes/internal/repl"
)

// replicaPrimary builds a durable primary over the durability seed and
// serves its replication endpoints the way internal/server mounts them.
func replicaPrimary(t *testing.T) (*rdfshapes.DB, *httptest.Server) {
	t.Helper()
	db, err := rdfshapes.Load(durabilitySeed(), rdfshapes.WithDurability(t.TempDir()))
	if err != nil {
		t.Fatalf("loading primary: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	p := repl.NewPrimary(db.WAL())
	mux := http.NewServeMux()
	mux.HandleFunc(repl.WALPath, p.ServeWAL)
	mux.HandleFunc(repl.SnapshotPath, p.ServeSnapshot)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return db, srv
}

// manualReplica opens a replica whose background poller is effectively
// disabled, so every replication round is driven by ReplicaSync — fully
// deterministic.
func manualReplica(t *testing.T, primaryURL string) *rdfshapes.DB {
	t.Helper()
	rep, err := rdfshapes.OpenReplica(primaryURL,
		rdfshapes.WithReplicaPollInterval(time.Hour))
	if err != nil {
		t.Fatalf("opening replica: %v", err)
	}
	t.Cleanup(func() { rep.Close() })
	if !rep.Replica() {
		t.Fatal("Replica() = false on OpenReplica result")
	}
	return rep
}

// replicaWorkload is the plan-equality workload: a shape-statistics
// query (type-defined pattern) and a global-statistics query, each
// planned on both sides with both estimators.
var replicaWorkload = []string{
	`SELECT ?x ?n WHERE { ?x a <http://x/Person> . ?x <http://x/knows> ?y . ?y <http://x/name> ?n }`,
	`SELECT ?s ?o WHERE { ?s <http://x/knows> ?o . ?o <http://x/name> ?n }`,
	`SELECT ?r WHERE { ?r a <http://x/Robot> . ?r <http://x/serial> ?s }`,
}

// assertReplicaMirrors pins the replica against the primary: identical
// triple sets, exact statistics versus a from-scratch oracle, identical
// plans for the workload under both estimators, identical query rows.
func assertReplicaMirrors(t *testing.T, primary, rep *rdfshapes.DB, label string) {
	t.Helper()
	want := dbTriples(t, primary)
	got := dbTriples(t, rep)
	if len(got) != len(want) {
		t.Fatalf("%s: replica holds %d triples, primary %d", label, len(got), len(want))
	}
	for tr := range want {
		if !got[tr] {
			t.Fatalf("%s: replica is missing %s", label, tr)
		}
	}
	assertStatsOracle(t, rep, want, label+": replica stats")
	for _, q := range replicaWorkload {
		for _, approach := range []string{"SS", "GS"} {
			pp, err := primary.Explain(q, approach)
			if err != nil {
				t.Fatalf("%s: primary explain(%s): %v", label, approach, err)
			}
			rp, err := rep.Explain(q, approach)
			if err != nil {
				t.Fatalf("%s: replica explain(%s): %v", label, approach, err)
			}
			if pp != rp {
				t.Errorf("%s: %s plan diverged for %q:\nprimary: %s\nreplica: %s",
					label, approach, q, pp, rp)
			}
		}
		pres, err := primary.Query(q)
		if err != nil {
			t.Fatalf("%s: primary query: %v", label, err)
		}
		rres, err := rep.Query(q)
		if err != nil {
			t.Fatalf("%s: replica query: %v", label, err)
		}
		if len(pres.Rows) != len(rres.Rows) {
			t.Errorf("%s: %q returned %d rows on replica, %d on primary",
				label, q, len(rres.Rows), len(pres.Rows))
		}
	}
}

// TestReplicaBootstrapTailAndOracle is the statistics-exactness pin:
// after bootstrap and after tailing every update, the replica's
// maintained statistics equal a from-scratch recompute and its plans
// equal the primary's.
func TestReplicaBootstrapTailAndOracle(t *testing.T) {
	primary, srv := replicaPrimary(t)
	rep := manualReplica(t, srv.URL)
	assertReplicaMirrors(t, primary, rep, "after bootstrap")

	for i, u := range durabilityUpdates() {
		if _, err := primary.Update(u.sparql()); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	if err := rep.ReplicaSync(context.Background()); err != nil {
		t.Fatalf("sync after updates: %v", err)
	}
	assertReplicaMirrors(t, primary, rep, "after tailing updates")

	st, ok := rep.ReplicaStatus()
	if !ok {
		t.Fatal("ReplicaStatus not ok on a replica")
	}
	ds, _ := primary.DurabilityStats()
	if st.AppliedSeq != ds.LastSeq || st.LagRecords != 0 {
		t.Errorf("replica status = %+v, want applied %d with zero lag", st, ds.LastSeq)
	}
	if st.Bootstraps != 0 {
		t.Errorf("bootstraps = %d; the open-time snapshot load should not count", st.Bootstraps)
	}
	if rep.ReplicaPrimary() != srv.URL {
		t.Errorf("ReplicaPrimary() = %q, want %q", rep.ReplicaPrimary(), srv.URL)
	}
}

// TestReplicaRejectsWrites pins the read-only contract.
func TestReplicaRejectsWrites(t *testing.T) {
	_, srv := replicaPrimary(t)
	rep := manualReplica(t, srv.URL)
	if _, err := rep.Update(`INSERT DATA { <http://x/z> <http://x/p> "v" }`); !errors.Is(err, rdfshapes.ErrReadOnlyReplica) {
		t.Fatalf("Update on replica = %v, want ErrReadOnlyReplica", err)
	}
	if _, err := rep.Checkpoint(); !errors.Is(err, rdfshapes.ErrNotDurable) {
		t.Fatalf("Checkpoint on replica = %v, want ErrNotDurable", err)
	}
}

// TestReplicaRebootstrapAfterPrune drives the 410 path end to end: the
// primary checkpoints twice while the replica is stalled, pruning the
// replica's cursor generation; the next sync re-bootstraps by
// diff-applying the fresh snapshot in place and resumes tailing — and
// the statistics oracle still holds afterwards.
func TestReplicaRebootstrapAfterPrune(t *testing.T) {
	primary, srv := replicaPrimary(t)
	rep := manualReplica(t, srv.URL)

	updates := durabilityUpdates()
	for i, u := range updates[:4] {
		if _, err := primary.Update(u.sparql()); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := primary.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
	for i, u := range updates[4:] {
		if _, err := primary.Update(u.sparql()); err != nil {
			t.Fatalf("post-checkpoint update %d: %v", i, err)
		}
	}
	if err := rep.ReplicaSync(context.Background()); err != nil {
		t.Fatalf("sync across pruned generation: %v", err)
	}
	st, _ := rep.ReplicaStatus()
	if st.Bootstraps != 1 {
		t.Errorf("bootstraps = %d, want exactly 1 re-bootstrap", st.Bootstraps)
	}
	if st.Generation < 3 {
		t.Errorf("cursor generation = %d, want >= 3 after two checkpoints", st.Generation)
	}
	assertReplicaMirrors(t, primary, rep, "after pruned-generation re-bootstrap")
}

// TestReplicaBackgroundTail exercises the real poller: with a short
// poll interval the replica converges on its own, no manual syncs.
func TestReplicaBackgroundTail(t *testing.T) {
	primary, srv := replicaPrimary(t)
	rep, err := rdfshapes.OpenReplica(srv.URL,
		rdfshapes.WithReplicaPollInterval(2*time.Millisecond))
	if err != nil {
		t.Fatalf("opening replica: %v", err)
	}
	defer rep.Close()

	for i, u := range durabilityUpdates() {
		if _, err := primary.Update(u.sparql()); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	ds, _ := primary.DurabilityStats()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := rep.ReplicaStatus()
		if st.PrimarySeq >= ds.LastSeq && st.LagRecords == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: %+v (want seq %d)", st, ds.LastSeq)
		}
		time.Sleep(2 * time.Millisecond)
	}
	assertReplicaMirrors(t, primary, rep, "after background tail")
}

// TestReplicaCloseStopsFollower pins the shutdown order: Close cancels
// the follower, waits for it, and later operations fail ErrClosed.
func TestReplicaCloseStopsFollower(t *testing.T) {
	_, srv := replicaPrimary(t)
	rep, err := rdfshapes.OpenReplica(srv.URL,
		rdfshapes.WithReplicaPollInterval(time.Millisecond))
	if err != nil {
		t.Fatalf("opening replica: %v", err)
	}
	if err := rep.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := rep.Query(`SELECT ?s WHERE { ?s ?p ?o }`); !errors.Is(err, rdfshapes.ErrClosed) {
		t.Fatalf("query after close = %v, want ErrClosed", err)
	}
	if err := rep.ReplicaSync(context.Background()); err == nil {
		t.Fatal("ReplicaSync after close succeeded")
	}
}

// TestReplicaOptionRejectedElsewhere pins that local-data entry points
// refuse WithReplicaOf instead of silently ignoring it.
func TestReplicaOptionRejectedElsewhere(t *testing.T) {
	if _, err := rdfshapes.Load(durabilitySeed(), rdfshapes.WithReplicaOf("http://p")); err == nil {
		t.Fatal("Load accepted WithReplicaOf")
	}
	if _, err := rdfshapes.Open(t.TempDir(), rdfshapes.WithReplicaOf("http://p")); err == nil {
		t.Fatal("Open accepted WithReplicaOf")
	}
	if _, err := rdfshapes.OpenReplica("http://p", rdfshapes.WithDurability(t.TempDir())); err == nil {
		t.Fatal("OpenReplica accepted WithDurability")
	}
}
