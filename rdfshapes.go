// Package rdfshapes is a SPARQL query optimizer driven by SHACL shape
// statistics, reproducing "Optimizing SPARQL Queries using Shape
// Statistics" (EDBT 2021).
//
// A DB bundles an in-memory RDF store with a SHACL shapes graph whose
// node and property shapes are annotated with statistics of the data
// (sh:count, sh:minCount, sh:maxCount, sh:distinctCount), plus
// extended-VoID global statistics. Queries are planned with the paper's
// greedy join-ordering algorithm over those statistics and executed with
// index nested-loop joins:
//
//	db, err := rdfshapes.LoadNTriples(file)
//	res, err := db.Query(`SELECT ?x WHERE { ?x a ub:Student . ?x ub:name ?n }`)
//
// Shapes may be supplied (WithShapesGraph) or inferred from the data;
// both are annotated automatically at load time.
package rdfshapes

import (
	"fmt"
	"io"
	"strings"

	"rdfshapes/internal/annotator"
	"rdfshapes/internal/cardinality"
	"rdfshapes/internal/core"
	"rdfshapes/internal/engine"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/obsv"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// DB is an immutable RDF dataset with statistics, ready for querying.
type DB struct {
	store  *store.Store
	shapes *shacl.ShapesGraph
	global *gstats.Global
	ss     *cardinality.ShapeEstimator
	gs     *cardinality.GlobalEstimator
	maxOps int64
	obs    *obsv.Collector
}

type config struct {
	shapes *shacl.ShapesGraph
	maxOps int64
	obs    *obsv.Collector
}

// Option customizes Load.
type Option func(*config)

// WithShapesGraph supplies a SHACL shapes graph shipped with the dataset
// instead of inferring one from the data.
func WithShapesGraph(sg *shacl.ShapesGraph) Option {
	return func(c *config) { c.shapes = sg }
}

// WithOpsBudget caps the work of every Query/Count/Ask call at n index
// rows visited — the analog of a server-side query timeout. Exceeding
// the budget returns ErrBudgetExceeded. 0 (the default) means unlimited.
func WithOpsBudget(n int64) Option {
	return func(c *config) { c.maxOps = n }
}

// WithCollector installs an observability collector: every query run
// through the DB records a trace (plan, per-pattern estimated vs. actual
// cardinalities, q-error, ops, wall time) into its ring buffer and
// cumulative metrics. Without a collector (the default), query execution
// takes the nil-collector fast path and pays no instrumentation cost.
func WithCollector(c *obsv.Collector) Option {
	return func(cfg *config) { cfg.obs = c }
}

// ErrBudgetExceeded is returned when a query exceeds the DB's operation
// budget (WithOpsBudget).
var ErrBudgetExceeded = engine.ErrBudgetExceeded

// Load builds a DB from parsed triples: it indexes the data, obtains a
// shapes graph (supplied or inferred), and computes global and shape
// statistics.
func Load(g rdf.Graph, opts ...Option) (*DB, error) {
	return fromStore(store.Load(g), opts...)
}

// fromStore finishes DB construction over an already-indexed store.
func fromStore(st *store.Store, opts ...Option) (*DB, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	shapes := cfg.shapes
	if shapes == nil {
		inferred, err := shacl.InferShapes(st)
		if err != nil {
			return nil, fmt.Errorf("rdfshapes: inferring shapes: %w", err)
		}
		shapes = inferred
	}
	global := gstats.Compute(st)
	if shapes.Len() > 0 {
		if err := annotator.Annotate(shapes, st); err != nil {
			return nil, fmt.Errorf("rdfshapes: annotating shapes: %w", err)
		}
	}
	return &DB{
		store:  st,
		shapes: shapes,
		global: global,
		ss:     cardinality.NewShapeEstimator(shapes, global),
		gs:     cardinality.NewGlobalEstimator(global),
		maxOps: cfg.maxOps,
		obs:    cfg.obs,
	}, nil
}

// LoadNTriples reads N-Triples data and builds a DB.
func LoadNTriples(r io.Reader, opts ...Option) (*DB, error) {
	g, err := rdf.ParseNTriples(r)
	if err != nil {
		return nil, err
	}
	return Load(g, opts...)
}

// WriteSnapshot persists the indexed data in the store's binary snapshot
// format. Statistics are not stored; LoadSnapshot recomputes them, which
// is cheap relative to parsing text formats.
func (db *DB) WriteSnapshot(w io.Writer) error {
	return db.store.WriteSnapshot(w)
}

// LoadSnapshot rebuilds a DB from WriteSnapshot output, re-deriving (or
// re-annotating, when WithShapesGraph supplies them) shapes and
// statistics.
func LoadSnapshot(r io.Reader, opts ...Option) (*DB, error) {
	st, err := store.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return fromStore(st, opts...)
}

// Result is a materialized query result.
type Result struct {
	// Vars lists the projected variable names.
	Vars []string
	// Rows holds one binding map per result, variable → term in
	// N-Triples syntax.
	Rows []map[string]string
	// Plan is the executed join order, for diagnostics.
	Plan string
}

// Query parses, optimizes (with shape statistics), executes, and
// materializes a SELECT query, applying FILTER, ORDER BY, OFFSET, and
// LIMIT. For ASK queries, Rows is non-empty iff the pattern matches; use
// Ask for a boolean answer.
func (db *DB) Query(src string) (*Result, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(q.Construct) > 0 {
		return nil, fmt.Errorf("rdfshapes: CONSTRUCT queries go through Construct, not Query")
	}
	if q.Aggregate != nil {
		return db.queryAggregate(src, q)
	}
	if len(q.UnionGroups) > 0 {
		return db.queryUnion(src, q)
	}
	plan := db.plan(q)
	opts := engine.Options{Filters: q.Filters, Optionals: q.Optionals}
	if q.Ask {
		opts.Limit = 1
	}
	er, err := db.exec(src, plan, opts)
	if err != nil {
		return nil, err
	}
	rows, err := engine.Materialize(db.store, q, er)
	if err != nil {
		return nil, err
	}
	proj := q.Projection
	if len(proj) == 0 {
		proj = q.AllVars()
	}
	return &Result{Vars: proj, Rows: rows, Plan: plan.String()}, nil
}

// queryUnion evaluates a top-level UNION: every branch is planned and
// executed independently and the results are concatenated, then
// DISTINCT, OFFSET, and LIMIT apply to the combined rows. SELECT *
// projects the variables common to all branches.
func (db *DB) queryUnion(src string, q *sparql.Query) (*Result, error) {
	proj := q.Projection
	if len(proj) == 0 {
		proj = commonBranchVars(q)
	}
	var rows []map[string]string
	var plans []string
	for i := range q.UnionGroups {
		bq := q.Branch(i)
		bq.Projection = proj
		bq.Distinct = false
		bq.Limit = 0
		bq.Offset = 0
		plan := db.plan(bq)
		plans = append(plans, plan.String())
		er, err := db.exec(src, plan, engine.Options{Filters: bq.Filters})
		if err != nil {
			return nil, err
		}
		branchRows, err := engine.Materialize(db.store, bq, er)
		if err != nil {
			return nil, err
		}
		rows = append(rows, branchRows...)
	}
	rows = applyRowModifiers(rows, proj, q.Distinct, q.Offset, q.Limit)
	return &Result{Vars: proj, Rows: rows, Plan: strings.Join(plans, "")}, nil
}

// queryAggregate evaluates a COUNT projection.
func (db *DB) queryAggregate(src string, q *sparql.Query) (*Result, error) {
	agg := q.Aggregate
	row := map[string]string{}
	if agg.Var == "" && !q.Distinct {
		// COUNT(*): counting needs no materialization
		n, err := db.countSolutions(src, q)
		if err != nil {
			return nil, err
		}
		row[agg.As] = rdf.NewInteger(n).String()
		return &Result{Vars: []string{agg.As}, Rows: []map[string]string{row}}, nil
	}
	// COUNT(?v) / COUNT(DISTINCT ?v): materialize the counted column
	inner := q.Clone()
	inner.Aggregate = nil
	inner.Distinct = false
	inner.Limit = 0
	inner.Offset = 0
	if agg.Var != "" {
		inner.Projection = []string{agg.Var}
	} else {
		inner.Projection = nil
	}
	res, err := db.queryParsed(src, inner)
	if err != nil {
		return nil, err
	}
	var n int64
	seen := map[string]bool{}
	for _, r := range res.Rows {
		if agg.Var != "" {
			v := r[agg.Var]
			if v == "" {
				continue // unbound values are not counted
			}
			if agg.Distinct {
				if seen[v] {
					continue
				}
				seen[v] = true
			}
		}
		n++
	}
	row[agg.As] = rdf.NewInteger(n).String()
	return &Result{Vars: []string{agg.As}, Rows: []map[string]string{row}, Plan: res.Plan}, nil
}

// queryParsed runs an already-parsed non-aggregate query; src is the
// original query text, carried for trace attribution.
func (db *DB) queryParsed(src string, q *sparql.Query) (*Result, error) {
	if len(q.UnionGroups) > 0 {
		return db.queryUnion(src, q)
	}
	plan := db.plan(q)
	er, err := db.exec(src, plan, engine.Options{Filters: q.Filters, Optionals: q.Optionals})
	if err != nil {
		return nil, err
	}
	rows, err := engine.Materialize(db.store, q, er)
	if err != nil {
		return nil, err
	}
	proj := q.Projection
	if len(proj) == 0 {
		proj = q.AllVars()
	}
	return &Result{Vars: proj, Rows: rows, Plan: plan.String()}, nil
}

// countSolutions counts solutions of the (possibly UNION) BGP with its
// filters, before projection and modifiers.
func (db *DB) countSolutions(src string, q *sparql.Query) (int64, error) {
	if len(q.UnionGroups) == 0 {
		plan := db.plan(q)
		er, err := db.exec(src, plan, engine.Options{CountOnly: true, Filters: q.Filters, Optionals: q.Optionals})
		if err != nil {
			return 0, err
		}
		return er.Count, nil
	}
	var total int64
	for i := range q.UnionGroups {
		bq := q.Branch(i)
		plan := db.plan(bq)
		er, err := db.exec(src, plan, engine.Options{CountOnly: true, Filters: bq.Filters})
		if err != nil {
			return 0, err
		}
		total += er.Count
	}
	return total, nil
}

// commonBranchVars returns the variables bound by every UNION branch, in
// first-branch order.
func commonBranchVars(q *sparql.Query) []string {
	if len(q.UnionGroups) == 0 {
		return nil
	}
	var out []string
	for _, tp := range q.UnionGroups[0] {
		for _, v := range tp.Vars() {
			if contains(out, v) {
				continue
			}
			inAll := true
			for _, g := range q.UnionGroups[1:] {
				found := false
				for _, gtp := range g {
					if contains(gtp.Vars(), v) {
						found = true
						break
					}
				}
				if !found {
					inAll = false
					break
				}
			}
			if inAll {
				out = append(out, v)
			}
		}
	}
	return out
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// applyRowModifiers applies DISTINCT, OFFSET, and LIMIT to materialized
// rows (used for UNION results, where branches materialize separately).
func applyRowModifiers(rows []map[string]string, proj []string, distinct bool, offset, limit int) []map[string]string {
	var out []map[string]string
	seen := map[string]bool{}
	skipped := 0
	for _, r := range rows {
		if distinct {
			key := ""
			for _, v := range proj {
				key += r[v] + "\x00"
			}
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		if skipped < offset {
			skipped++
			continue
		}
		out = append(out, r)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Ask answers an ASK query (or any query treated as an existence check):
// true iff the BGP with its filters has at least one match.
func (db *DB) Ask(src string) (bool, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return false, err
	}
	if len(q.UnionGroups) > 0 {
		n, err := db.countSolutions(src, q)
		return n > 0, err
	}
	plan := db.plan(q)
	er, err := db.exec(src, plan, engine.Options{Filters: q.Filters, Optionals: q.Optionals, Limit: 1})
	if err != nil {
		return false, err
	}
	return er.Count > 0, nil
}

// Count executes the query and returns the number of filtered results
// before projection, DISTINCT, and LIMIT — the BGP's true cardinality.
func (db *DB) Count(src string) (int64, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return 0, err
	}
	return db.countSolutions(src, q)
}

// Explain returns the query plan built with the requested statistics:
// "SS" (shape statistics, the default) or "GS" (global statistics).
func (db *DB) Explain(src, approach string) (string, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return "", err
	}
	switch approach {
	case "", "SS":
		return db.plan(q).String(), nil
	case "GS":
		return core.Optimize(q, db.gs).String(), nil
	default:
		return "", fmt.Errorf("rdfshapes: unknown approach %q (want SS or GS)", approach)
	}
}

// EstimateCount returns the shape-statistics estimate of the query's
// result cardinality, without executing it.
func (db *DB) EstimateCount(src string) (float64, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return 0, err
	}
	plan := db.plan(q)
	est, _ := cardinality.SequenceEstimate(q, plan.Order(), db.estimatorFor(q))
	return est * cardinality.FilterSelectivity(q), nil
}

// QueryEach streams a SELECT query's solutions to fn without
// materializing the full result set: fn receives each projected binding
// map and returns false to stop early. Solution modifiers that need the
// whole result (DISTINCT, ORDER BY, OFFSET) and the UNION/aggregate
// forms are not streamable and fall back to Query internally.
func (db *DB) QueryEach(src string, fn func(row map[string]string) bool) error {
	q, err := sparql.Parse(src)
	if err != nil {
		return err
	}
	if q.Distinct || len(q.OrderBy) > 0 || q.Offset > 0 ||
		len(q.UnionGroups) > 0 || q.Aggregate != nil || len(q.Construct) > 0 {
		res, err := db.Query(src)
		if err != nil {
			return err
		}
		for _, row := range res.Rows {
			if !fn(row) {
				return nil
			}
		}
		return nil
	}
	plan := db.plan(q)
	proj := q.Projection
	if len(proj) == 0 {
		proj = q.AllVars()
	}
	// Engine rows stream through Materialize in result order, so a
	// limited run is enough; budget still applies.
	er, err := db.exec(src, plan, engine.Options{
		Filters:   q.Filters,
		Optionals: q.Optionals,
		Limit:     q.Limit,
	})
	if err != nil {
		return err
	}
	rows, err := engine.Materialize(db.store, q, er)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if !fn(row) {
			return nil
		}
	}
	return nil
}

// Construct evaluates a CONSTRUCT query: the WHERE part runs like a
// SELECT, and every solution instantiates the template into result
// triples. Template triples with an unbound variable, a literal subject,
// or a non-IRI predicate are skipped for that solution, per SPARQL.
// Blank nodes in the template are minted fresh per solution. The result
// graph is deduplicated.
func (db *DB) Construct(src string) (rdf.Graph, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(q.Construct) == 0 {
		return nil, fmt.Errorf("rdfshapes: Construct requires a CONSTRUCT query")
	}
	inner := q.Clone()
	inner.Construct = nil
	inner.Projection = nil // bind everything the template may need
	inner.Distinct = false
	res, err := db.queryParsed(src, inner)
	if err != nil {
		return nil, err
	}

	var out rdf.Graph
	seen := map[rdf.Triple]bool{}
	for rowNo, row := range res.Rows {
		resolve := func(pt sparql.PatternTerm) (rdf.Term, bool) {
			if !pt.IsVar() {
				if pt.Term.IsBlank() {
					// fresh blank node per solution
					return rdf.NewBlank(fmt.Sprintf("c%d-%s", rowNo, pt.Term.Value)), true
				}
				return pt.Term, true
			}
			s, ok := row[pt.Var]
			if !ok || s == "" {
				return rdf.Term{}, false
			}
			term, err := rdf.ParseTerm(s)
			if err != nil {
				return rdf.Term{}, false
			}
			return term, true
		}
		for _, tmpl := range q.Construct {
			s, ok := resolve(tmpl.S)
			if !ok || s.IsLiteral() {
				continue
			}
			p, ok := resolve(tmpl.P)
			if !ok || !p.IsIRI() {
				continue
			}
			o, ok := resolve(tmpl.O)
			if !ok {
				continue
			}
			t := rdf.Triple{S: s, P: p, O: o}
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out, nil
}

// Validate checks the data against the shapes graph's constraints and
// returns up to limit violations (0 = all).
func (db *DB) Validate(limit int) []shacl.Violation {
	return db.shapes.Validate(db.store, limit)
}

// Shapes exposes the annotated shapes graph.
func (db *DB) Shapes() *shacl.ShapesGraph { return db.shapes }

// Stats exposes the extended-VoID global statistics.
func (db *DB) Stats() *gstats.Global { return db.global }

// Store exposes the underlying triple store.
func (db *DB) Store() *store.Store { return db.store }

// NumTriples returns the dataset size.
func (db *DB) NumTriples() int { return db.store.Len() }

// Collector returns the installed observability collector, or nil.
func (db *DB) Collector() *obsv.Collector { return db.obs }

// SetCollector installs (or removes, with nil) the observability
// collector. Not safe to call concurrently with queries; set it up
// before serving traffic.
func (db *DB) SetCollector(c *obsv.Collector) { db.obs = c }

// WriteShapesTurtle serializes the annotated shapes graph as Turtle.
func (db *DB) WriteShapesTurtle(w io.Writer) error {
	return db.shapes.WriteTurtle(w, nil)
}

// exec executes a planned BGP with the DB's operation budget applied.
// When a collector is installed it also assembles and records a query
// trace: per-pattern estimated (the plan's join estimates) vs. actual
// (the engine's intermediate sizes) cardinalities, q-error, ops, and
// wall time. Without a collector it is exactly the old fast path.
func (db *DB) exec(src string, plan *core.Plan, opts engine.Options) (*engine.Result, error) {
	opts.MaxOps = db.maxOps
	c := db.obs
	if c == nil {
		er, err := engine.Run(db.store, plan.Order(), opts)
		if err != nil {
			return nil, err
		}
		if er.TimedOut {
			return nil, fmt.Errorf("rdfshapes: %w (budget %d)", ErrBudgetExceeded, db.maxOps)
		}
		return er, nil
	}

	var rep engine.ExecReport
	var reported bool
	opts.Observer = func(r engine.ExecReport) { rep, reported = r, true }
	er, err := engine.Run(db.store, plan.Order(), opts)

	t := obsv.QueryTrace{
		Query:         src,
		Planner:       plan.Estimator,
		Plan:          plan.String(),
		EstimatedCost: plan.Cost,
	}
	if err != nil {
		t.Err = err.Error()
	} else if reported {
		t.Rows = rep.Count
		t.Ops = rep.Ops
		t.WallNanos = rep.Wall.Nanoseconds()
		t.TimedOut = rep.TimedOut
		t.LimitHit = rep.LimitHit
		for i, actual := range rep.Intermediate {
			if i >= len(plan.Steps) {
				break
			}
			t.Patterns = append(t.Patterns, obsv.PatternTrace{
				Pattern:   plan.Steps[i].Pattern.String(),
				Estimated: plan.Steps[i].JoinEstimate,
				Actual:    actual,
			})
		}
	}
	t.Finish()
	c.Record(t)

	if err != nil {
		return nil, err
	}
	if er.TimedOut {
		return nil, fmt.Errorf("rdfshapes: %w (budget %d)", ErrBudgetExceeded, db.maxOps)
	}
	return er, nil
}

func (db *DB) plan(q *sparql.Query) *core.Plan {
	return core.Optimize(q, db.estimatorFor(q))
}

// estimatorFor applies the paper's Section 6.1 rule: shape statistics
// when the query has a type-defined triple pattern, global otherwise.
func (db *DB) estimatorFor(q *sparql.Query) cardinality.Estimator {
	if q.HasTypePattern() && db.shapes.Annotated() {
		return db.ss
	}
	return db.gs
}
