// Package rdfshapes is a SPARQL query optimizer driven by SHACL shape
// statistics, reproducing "Optimizing SPARQL Queries using Shape
// Statistics" (EDBT 2021).
//
// A DB bundles an in-memory RDF store with a SHACL shapes graph whose
// node and property shapes are annotated with statistics of the data
// (sh:count, sh:minCount, sh:maxCount, sh:distinctCount), plus
// extended-VoID global statistics. Queries are planned with the paper's
// greedy join-ordering algorithm over those statistics and executed with
// index nested-loop joins:
//
//	db, err := rdfshapes.LoadNTriples(file)
//	res, err := db.Query(`SELECT ?x WHERE { ?x a ub:Student . ?x ub:name ?n }`)
//
// Shapes may be supplied (WithShapesGraph) or inferred from the data;
// both are annotated automatically at load time.
//
// The dataset is mutable after load: DB.Update applies SPARQL INSERT
// DATA / DELETE DATA batches through a copy-on-write overlay
// (internal/live), statistics are maintained incrementally, and queries
// always run against one consistent snapshot. See docs/LIVE_UPDATES.md.
package rdfshapes

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rdfshapes/internal/annotator"
	"rdfshapes/internal/cardinality"
	"rdfshapes/internal/core"
	"rdfshapes/internal/engine"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/live"
	"rdfshapes/internal/obsv"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
	"rdfshapes/internal/shard"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
	"rdfshapes/internal/wal"
)

// DefaultCompactThreshold is the overlay size (added + deleted triples)
// past which a commit schedules background compaction into a new frozen
// base (override with WithAutoCompact).
const DefaultCompactThreshold = 1 << 16

// DefaultDriftThreshold is the accumulated statistics drift past which
// background re-annotation is triggered (override with
// WithDriftThreshold).
const DefaultDriftThreshold = 1 << 12

// DB is an RDF dataset with statistics, ready for querying and updating.
// All methods are safe for concurrent use (except SetCollector, see its
// doc): queries are wait-free against immutable snapshots, updates are
// serialized internally.
type DB struct {
	// Exactly one of live and shards is non-nil: live is the unsharded
	// dataset, shards the partitioned one (WithShards). The statistics
	// maintainer below is whole-dataset either way — in sharded mode it
	// consumes the group's combined commits, so planning statistics (and
	// therefore plans and row order) are identical to unsharded.
	live   *live.Store
	shards *shard.Group
	maint  *live.Maintainer

	// planner holds the current estimator pair built from the latest
	// maintained statistics; refreshed after every committed update.
	planner   atomic.Pointer[plannerState]
	plannerMu sync.Mutex // serializes refreshPlanner

	updateMu     sync.Mutex // serializes Update and Reannotate
	reannotating atomic.Bool
	updates      atomic.Int64 // Update calls that committed

	// lifecycle: begin/end bracket every public operation; Close flips
	// closed and waits for the in-flight count to drain, then stops the
	// background compactor. Background re-annotations go through
	// Reannotate, which brackets itself, so Close waits for those too.
	lifeMu   sync.Mutex
	closed   bool
	inflight sync.WaitGroup

	maxOps         int64
	defaultTimeout time.Duration
	limits         Limits
	parallelism    int
	obs            *obsv.Collector

	// adaptive, when non-nil, caches plans per query template and
	// invalidates them on observed q-error drift; see adaptive.go.
	adaptive *adaptive

	// durable, when non-nil, write-ahead-logs every commit before it is
	// applied and acknowledged; see durability.go and docs/DURABILITY.md.
	durable *wal.Manager

	// replica, when non-nil, marks a read-only replica tailing a durable
	// primary; see replica.go and docs/REPLICATION.md.
	replica *replicaState
}

// plannerState is one immutable version of the planning statistics and
// the estimators built over them.
type plannerState struct {
	shapes *shacl.ShapesGraph
	global *gstats.Global
	ss     *cardinality.ShapeEstimator
	gs     *cardinality.GlobalEstimator
}

// dataView is the read surface a per-call view executes against: one
// consistent, immutable version of the dataset. An unsharded DB hands
// out *live.Snapshot, a sharded one *shard.View; both satisfy
// engine.Source and shacl.Source here, and both also implement
// engine.ChunkedSource (detected by assertion in the engine) so
// morsel-parallel execution works identically.
type dataView interface {
	Dict() *store.Dict
	Scan(pat store.IDTriple, fn func(store.IDTriple) bool)
	Count(pat store.IDTriple) int
	Contains(t store.IDTriple) bool
	TypeID() store.ID
	Len() int
}

// view is the per-call execution context: one data snapshot, one
// planner state, and the call's context, taken together at the start of
// a public call so every branch of a query sees the same version and
// honors the same deadline.
type view struct {
	db   *DB
	snap dataView
	ps   *plannerState
	ctx  context.Context
}

func (db *DB) view() view { return db.viewCtx(context.Background()) }

func (db *DB) viewCtx(ctx context.Context) view {
	return view{db: db, snap: db.snapshotView(), ps: db.planner.Load(), ctx: ctx}
}

// snapshotView pins one consistent version of the dataset.
func (db *DB) snapshotView() dataView {
	if db.shards != nil {
		return db.shards.Snapshot()
	}
	return db.live.Snapshot()
}

// begin registers one in-flight public operation; Close waits for every
// begun operation to end before tearing the DB down.
func (db *DB) begin() error {
	db.lifeMu.Lock()
	defer db.lifeMu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.inflight.Add(1)
	return nil
}

func (db *DB) end() { db.inflight.Done() }

// withTimeout applies the DB's default timeout to a context that does
// not already carry a deadline. The returned cancel is never nil.
func (db *DB) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if db.defaultTimeout <= 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, db.defaultTimeout)
}

// Close marks the DB closed, waits for in-flight queries, updates, and
// background re-annotations to finish, then stops the background
// compactor and waits for any running compaction. Operations started
// after Close return ErrClosed. Close is idempotent and safe to call
// concurrently.
func (db *DB) Close() error {
	db.lifeMu.Lock()
	if db.closed {
		db.lifeMu.Unlock()
		return nil
	}
	db.closed = true
	db.lifeMu.Unlock()
	if db.replica != nil {
		// Stop tailing before draining: an in-flight apply finishes (it
		// holds an inflight slot), then the follower goroutine exits.
		db.replica.cancel()
		<-db.replica.done
	}
	db.inflight.Wait()
	if db.shards != nil {
		db.shards.Close()
	} else {
		db.live.Close()
	}
	if db.durable != nil {
		return db.durable.Close() // flushes any SyncNever tail
	}
	return nil
}

type config struct {
	shapes         *shacl.ShapesGraph
	shards         int
	maxOps         int64
	defaultTimeout time.Duration
	limits         Limits
	parallelism    int
	obs            *obsv.Collector
	compactAt      int
	driftAt        int64
	adaptiveAt     float64 // adaptive replan q-error threshold; <= 1 disables
	walDir         string
	walSync        SyncPolicy
	walFS          wal.FS // test hook; nil selects the real filesystem
	replicaOf      string
	replPoll       time.Duration
}

// Option customizes Load.
type Option func(*config)

// WithShapesGraph supplies a SHACL shapes graph shipped with the dataset
// instead of inferring one from the data.
func WithShapesGraph(sg *shacl.ShapesGraph) Option {
	return func(c *config) { c.shapes = sg }
}

// WithShards partitions the dataset into n shards hashed on the
// subject's dictionary ID (internal/shard, docs/SHARDING.md). Each
// shard maintains its own exact statistics under live updates, and the
// coordinator uses them to prune shards that provably hold no matches
// of a pattern. Planning statistics stay whole-dataset, so plans —
// and query results — are identical to an unsharded DB. n <= 1 (the
// default) keeps the single-store layout.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithOpsBudget caps the work of every Query/Count/Ask call at n index
// rows visited — the analog of a server-side query timeout. Exceeding
// the budget returns ErrBudgetExceeded. 0 (the default) means unlimited.
func WithOpsBudget(n int64) Option {
	return func(c *config) { c.maxOps = n }
}

// Limits are per-query execution budgets. Unlike WithOpsBudget, which
// fails the query, exceeding a Limit degrades it: execution stops and
// the partial result is returned with Result.Truncated set, so callers
// can serve what was computed instead of nothing. The zero value means
// unlimited.
type Limits struct {
	// MaxIntermediate caps the total intermediate bindings a query may
	// produce across all join levels — the quantity a mis-estimated plan
	// explodes, and the paper's plan-cost objective.
	MaxIntermediate int64
	// MaxRows caps the result rows a query may produce, before solution
	// modifiers (DISTINCT/ORDER BY/OFFSET/LIMIT).
	MaxRows int64
}

// WithLimits installs per-query budgets enforced during execution; see
// Limits for the partial-result contract.
func WithLimits(l Limits) Option {
	return func(c *config) { c.limits = l }
}

// WithDefaultTimeout applies d as the wall-clock deadline of every query
// whose context does not already carry one. Exceeding it returns
// ErrDeadline. 0 (the default) means no implicit deadline.
func WithDefaultTimeout(d time.Duration) Option {
	return func(c *config) { c.defaultTimeout = d }
}

// WithParallelism sets the number of workers executing each query's
// BGP (morsel parallelism over the driver pattern's index range —
// docs/PERFORMANCE.md). 1 forces the serial executor; values < 1 reset
// to the default, runtime.GOMAXPROCS(0). Results are bit-identical to a
// serial run — same rows in the same order, same Count, Ops, and
// intermediate-size accounting — and all budgets and deadlines keep
// their serial semantics.
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// Parallelism returns the per-query worker count in effect
// (WithParallelism, default runtime.GOMAXPROCS(0)).
func (db *DB) Parallelism() int { return db.parallelism }

// ActiveParallelWorkers returns the number of parallel BGP worker
// goroutines currently executing across the process — the
// worker-utilization gauge exported at /metrics.
func ActiveParallelWorkers() int64 { return engine.ActiveParallelWorkers() }

// WithAutoCompact sets the overlay size (added + deleted triples) past
// which a committed update schedules background compaction into a new
// frozen base. n <= 0 disables auto-compaction. Default
// DefaultCompactThreshold.
func WithAutoCompact(n int) Option {
	return func(c *config) { c.compactAt = n }
}

// WithDriftThreshold sets the accumulated statistics drift past which
// background re-annotation (Reannotate) is triggered. n <= 0 disables
// the trigger; drift is still tracked and exposed via StatsDrift.
// Default DefaultDriftThreshold.
func WithDriftThreshold(n int64) Option {
	return func(c *config) { c.driftAt = n }
}

// WithCollector installs an observability collector: every query run
// through the DB records a trace (plan, per-pattern estimated vs. actual
// cardinalities, q-error, ops, wall time) into its ring buffer and
// cumulative metrics. Without a collector (the default), query execution
// takes the nil-collector fast path and pays no instrumentation cost.
func WithCollector(c *obsv.Collector) Option {
	return func(cfg *config) { cfg.obs = c }
}

// ErrBudgetExceeded is returned when a query exceeds the DB's operation
// budget (WithOpsBudget).
var ErrBudgetExceeded = engine.ErrBudgetExceeded

// ErrCanceled is returned when a query's context is canceled mid-run —
// typically a client that disconnected.
var ErrCanceled = engine.ErrCanceled

// ErrDeadline is returned when a query's context deadline (explicit or
// WithDefaultTimeout) passes mid-run.
var ErrDeadline = engine.ErrDeadline

// ErrClosed is returned by every operation started after Close.
var ErrClosed = errors.New("rdfshapes: database is closed")

// Load builds a DB from parsed triples: it indexes the data, obtains a
// shapes graph (supplied or inferred), and computes global and shape
// statistics.
func Load(g rdf.Graph, opts ...Option) (*DB, error) {
	return fromStore(store.Load(g), opts...)
}

// newConfig folds the options over the defaults.
func newConfig(opts []Option) config {
	cfg := config{compactAt: DefaultCompactThreshold, driftAt: DefaultDriftThreshold}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.parallelism < 1 {
		cfg.parallelism = runtime.GOMAXPROCS(0)
	}
	return cfg
}

// fromStore finishes DB construction over an already-indexed store,
// seeding a durability directory when WithDurability asked for one.
func fromStore(st *store.Store, opts ...Option) (*DB, error) {
	cfg := newConfig(opts)
	if cfg.replicaOf != "" {
		return nil, errors.New("rdfshapes: a replica bootstraps from its primary, not local data; use OpenReplica")
	}
	db, err := fromStoreCfg(st, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.walDir != "" {
		if err := db.attachDurability(cfg); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}

// fromStoreCfg builds the DB core (statistics, planner, live overlay)
// without touching durability; Open and fromStore layer that on top.
func fromStoreCfg(st *store.Store, cfg config) (*DB, error) {
	shapes := cfg.shapes
	if shapes == nil {
		inferred, err := shacl.InferShapes(st)
		if err != nil {
			return nil, fmt.Errorf("rdfshapes: inferring shapes: %w", err)
		}
		shapes = inferred
	}
	global := gstats.Compute(st)
	if shapes.Len() > 0 {
		if err := annotator.Annotate(shapes, st); err != nil {
			return nil, fmt.Errorf("rdfshapes: annotating shapes: %w", err)
		}
	}
	db := &DB{
		maxOps:         cfg.maxOps,
		defaultTimeout: cfg.defaultTimeout,
		limits:         cfg.limits,
		parallelism:    cfg.parallelism,
		obs:            cfg.obs,
	}
	if cfg.adaptiveAt > 1 {
		db.adaptive = newAdaptive(cfg.adaptiveAt)
		db.adaptive.attachCollector(db.obs)
	}
	if cfg.shards > 1 {
		g, err := shard.New(st, cfg.shards, shapes)
		if err != nil {
			return nil, fmt.Errorf("rdfshapes: sharding: %w", err)
		}
		g.SetAutoCompact(cfg.compactAt)
		db.shards = g
	} else {
		db.live = live.Wrap(st)
		db.live.SetAutoCompact(cfg.compactAt)
	}
	db.maint = live.NewMaintainer(
		live.Stats{Global: global, Shapes: shapes},
		cfg.driftAt,
		// Background trigger; Reannotate re-arms it on failure.
		func() { db.Reannotate() },
	)
	db.refreshPlanner()
	return db, nil
}

// refreshPlanner rebuilds the estimator pair from the latest maintained
// statistics and publishes it. The mutex only orders concurrent
// refreshes; a late rebuild re-reads Current, so it can repeat work but
// never install stale statistics.
func (db *DB) refreshPlanner() {
	db.plannerMu.Lock()
	defer db.plannerMu.Unlock()
	s := db.maint.Current()
	db.planner.Store(&plannerState{
		shapes: s.Shapes,
		global: s.Global,
		ss:     cardinality.NewShapeEstimator(s.Shapes, s.Global),
		gs:     cardinality.NewGlobalEstimator(s.Global),
	})
}

// applyBatch commits one batch through the layout in effect — the
// single live store, or the shard group routing sub-batches to owning
// shards — and feeds the whole-dataset statistics maintainer. Both the
// update path and WAL replay go through it. Callers hold updateMu.
func (db *DB) applyBatch(b live.Batch) live.CommitInfo {
	var ci live.CommitInfo
	if db.shards != nil {
		ci = db.shards.Apply(b)
	} else {
		ci = db.live.Apply(b)
	}
	db.maint.Apply(ci)
	return ci
}

// UpdateResult reports the effective changes of one Update call:
// requested no-ops (inserting a triple already present, deleting one not
// present) are excluded.
type UpdateResult struct {
	Inserted int
	Deleted  int
}

// Update parses and applies a SPARQL UPDATE request (INSERT DATA and
// DELETE DATA operations, ';'-separated). Each operation commits
// atomically: a concurrent query sees either none or all of its changes.
// Statistics are maintained incrementally, so planner estimates reflect
// the new state as soon as Update returns.
func (db *DB) Update(src string) (*UpdateResult, error) {
	return db.UpdateCtx(context.Background(), src)
}

// UpdateCtx is Update honoring a context: cancellation is checked
// between the request's operations, so an aborted request stops applying
// further operations — the ones already committed stay committed (each
// is atomic on its own) and are reported in the returned UpdateResult
// alongside ErrCanceled or ErrDeadline.
func (db *DB) UpdateCtx(ctx context.Context, src string) (*UpdateResult, error) {
	if err := db.begin(); err != nil {
		return nil, err
	}
	defer db.end()
	if db.replica != nil {
		return nil, ErrReadOnlyReplica
	}
	req, err := sparql.ParseUpdate(src)
	if err != nil {
		return nil, err
	}
	db.updateMu.Lock()
	defer db.updateMu.Unlock()
	res := &UpdateResult{}
	committed := false
	for _, op := range req.Ops {
		if err := ctx.Err(); err != nil {
			if committed {
				db.refreshPlanner()
				db.updates.Add(1)
			}
			return res, engine.CtxError(err)
		}
		var b live.Batch
		if op.Insert {
			b.Insert = op.Triples
		} else {
			b.Delete = op.Triples
		}
		// Write-ahead: the operation is logged and (under SyncAlways)
		// fsynced before it is applied or acknowledged, so recovery can
		// never miss an acknowledged commit. A WAL failure refuses the
		// operation — already-committed earlier operations stand.
		if db.durable != nil {
			if err := db.durable.Append(wal.Batch{Insert: b.Insert, Delete: b.Delete}); err != nil {
				if committed {
					db.refreshPlanner()
					db.updates.Add(1)
				}
				return res, err
			}
		}
		ci := db.applyBatch(b)
		committed = true
		res.Inserted += len(ci.Inserted)
		res.Deleted += len(ci.Deleted)
	}
	db.refreshPlanner()
	db.updates.Add(1)
	return res, nil
}

// Reannotate compacts the overlay into a fresh frozen base, recomputes
// global statistics and shape annotations from scratch, and zeroes the
// drift counter. It runs automatically in the background once drift
// passes the threshold (WithDriftThreshold); it is exported for explicit
// refreshes and tests. Queries are never blocked; concurrent updates
// wait for the recompute.
func (db *DB) Reannotate() error {
	if err := db.begin(); err != nil {
		return err // closed: the drift trigger dies with the DB
	}
	defer db.end()
	if !db.reannotating.CompareAndSwap(false, true) {
		return nil // a re-annotation is already running
	}
	defer db.reannotating.Store(false)
	db.updateMu.Lock()
	defer db.updateMu.Unlock()
	var base *store.Store
	if db.shards != nil {
		// Compact every shard and recompute its statistics from scratch,
		// then rebuild the whole-dataset statistics over the merged view.
		if _, err := db.shards.Refresh(); err != nil {
			return err
		}
		merged, err := db.shards.Merged()
		if err != nil {
			return err
		}
		base = merged
	} else {
		snap, err := db.live.Compact()
		if err != nil {
			return err
		}
		base = snap.Base()
	}
	global := gstats.Compute(base)
	shapes := db.planner.Load().shapes.Clone()
	if shapes.Len() > 0 {
		if err := annotator.Annotate(shapes, base); err != nil {
			// Keep the maintained statistics; drift stays nonzero and the
			// trigger is re-armed so a later commit retries.
			db.maint.Rearm()
			return fmt.Errorf("rdfshapes: re-annotating: %w", err)
		}
	}
	db.maint.Reset(live.Stats{Global: global, Shapes: shapes})
	db.refreshPlanner()
	return nil
}

// StatsDrift returns the accumulated approximation drift of the
// incrementally maintained statistics since the last (re-)annotation.
func (db *DB) StatsDrift() int64 { return db.maint.Drift() }

// OverlaySize returns the live overlay's added and deleted triple
// counts — summed across shards on a sharded DB.
func (db *DB) OverlaySize() (added, deleted int) {
	if db.shards != nil {
		return db.shards.OverlaySize()
	}
	return db.live.OverlaySize()
}

// UpdatesApplied returns the number of committed Update calls.
func (db *DB) UpdatesApplied() int64 { return db.updates.Load() }

// LoadNTriples reads N-Triples data and builds a DB.
func LoadNTriples(r io.Reader, opts ...Option) (*DB, error) {
	g, err := rdf.ParseNTriples(r)
	if err != nil {
		return nil, err
	}
	return Load(g, opts...)
}

// WriteSnapshot persists the indexed data in the store's binary snapshot
// format, compacting any pending overlay first so the snapshot includes
// every committed update. Statistics are not stored; LoadSnapshot
// recomputes them, which is cheap relative to parsing text formats.
func (db *DB) WriteSnapshot(w io.Writer) error {
	if err := db.begin(); err != nil {
		return err
	}
	defer db.end()
	if db.shards != nil {
		merged, err := db.shards.Merged()
		if err != nil {
			return err
		}
		return merged.WriteSnapshot(w)
	}
	snap, err := db.live.Compact()
	if err != nil {
		return err
	}
	return snap.Base().WriteSnapshot(w)
}

// LoadSnapshot rebuilds a DB from WriteSnapshot output, re-deriving (or
// re-annotating, when WithShapesGraph supplies them) shapes and
// statistics.
func LoadSnapshot(r io.Reader, opts ...Option) (*DB, error) {
	st, err := store.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return fromStore(st, opts...)
}

// Result is a materialized query result.
type Result struct {
	// Vars lists the projected variable names.
	Vars []string
	// Rows holds one binding map per result, variable → term in
	// N-Triples syntax.
	Rows []map[string]string
	// Plan is the executed join order, for diagnostics.
	Plan string
	// Truncated is true when a WithLimits budget stopped execution
	// early: Rows holds the solutions computed within budget — a valid
	// subset, not a failure. Callers should surface the flag (the HTTP
	// server adds "truncated":true to the JSON payload).
	Truncated bool
}

// Query parses, optimizes (with shape statistics), executes, and
// materializes a SELECT query, applying FILTER, ORDER BY, OFFSET, and
// LIMIT. For ASK queries, Rows is non-empty iff the pattern matches; use
// Ask for a boolean answer.
func (db *DB) Query(src string) (*Result, error) {
	return db.QueryCtx(context.Background(), src)
}

// QueryCtx is Query honoring a context: execution checks for
// cancellation every ~1024 index rows visited, returning ErrCanceled on
// cancel and ErrDeadline when the deadline (the context's, or
// WithDefaultTimeout's) passes — so even a pathologically mis-planned
// join is interrupted within microseconds of the signal.
func (db *DB) QueryCtx(ctx context.Context, src string) (*Result, error) {
	if err := db.begin(); err != nil {
		return nil, err
	}
	defer db.end()
	ctx, cancel := db.withTimeout(ctx)
	defer cancel()
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(q.Construct) > 0 {
		return nil, fmt.Errorf("rdfshapes: CONSTRUCT queries go through Construct, not Query")
	}
	v := db.viewCtx(ctx)
	if q.Aggregate != nil {
		return v.queryAggregate(src, q)
	}
	if len(q.UnionGroups) > 0 {
		return v.queryUnion(src, q)
	}
	plan := v.plan(q)
	opts := engine.Options{Filters: q.Filters, Optionals: q.Optionals, OptionalFilters: q.OptionalFilters}
	if q.Ask {
		opts.Limit = 1
	}
	er, err := v.exec(src, plan, opts)
	if err != nil {
		return nil, err
	}
	rows, err := engine.Materialize(v.snap, q, er)
	if err != nil {
		return nil, err
	}
	proj := q.Projection
	if len(proj) == 0 {
		proj = q.AllVars()
	}
	return &Result{Vars: proj, Rows: rows, Plan: plan.String(), Truncated: er.Truncated}, nil
}

// queryUnion evaluates a top-level UNION: every branch is planned and
// executed independently and the results are concatenated, then
// DISTINCT, OFFSET, and LIMIT apply to the combined rows. SELECT *
// projects the variables common to all branches.
func (v view) queryUnion(src string, q *sparql.Query) (*Result, error) {
	proj := q.Projection
	if len(proj) == 0 {
		proj = commonBranchVars(q)
	}
	var rows []map[string]string
	var plans []string
	truncated := false
	for i := range q.UnionGroups {
		bq := q.Branch(i)
		bq.Projection = proj
		bq.Distinct = false
		bq.Limit = 0
		bq.Offset = 0
		plan := v.plan(bq)
		plans = append(plans, plan.String())
		er, err := v.exec(src, plan, engine.Options{Filters: bq.Filters})
		if err != nil {
			return nil, err
		}
		branchRows, err := engine.Materialize(v.snap, bq, er)
		if err != nil {
			return nil, err
		}
		truncated = truncated || er.Truncated
		rows = append(rows, branchRows...)
	}
	rows = applyRowModifiers(rows, proj, q.Distinct, q.Offset, q.Limit)
	return &Result{Vars: proj, Rows: rows, Plan: strings.Join(plans, ""), Truncated: truncated}, nil
}

// queryAggregate evaluates a COUNT projection.
func (v view) queryAggregate(src string, q *sparql.Query) (*Result, error) {
	agg := q.Aggregate
	row := map[string]string{}
	if agg.Var == "" && !q.Distinct {
		// COUNT(*): counting needs no materialization
		n, truncated, err := v.countSolutions(src, q)
		if err != nil {
			return nil, err
		}
		row[agg.As] = rdf.NewInteger(n).String()
		return &Result{Vars: []string{agg.As}, Rows: []map[string]string{row}, Truncated: truncated}, nil
	}
	// COUNT(?v) / COUNT(DISTINCT ?v): materialize the counted column
	inner := q.Clone()
	inner.Aggregate = nil
	inner.Distinct = false
	inner.Limit = 0
	inner.Offset = 0
	if agg.Var != "" {
		inner.Projection = []string{agg.Var}
	} else {
		inner.Projection = nil
	}
	res, err := v.queryParsed(src, inner)
	if err != nil {
		return nil, err
	}
	var n int64
	seen := map[string]bool{}
	for _, r := range res.Rows {
		if agg.Var != "" {
			v := r[agg.Var]
			if v == "" {
				continue // unbound values are not counted
			}
			if agg.Distinct {
				if seen[v] {
					continue
				}
				seen[v] = true
			}
		}
		n++
	}
	row[agg.As] = rdf.NewInteger(n).String()
	return &Result{Vars: []string{agg.As}, Rows: []map[string]string{row}, Plan: res.Plan, Truncated: res.Truncated}, nil
}

// queryParsed runs an already-parsed non-aggregate query; src is the
// original query text, carried for trace attribution.
func (v view) queryParsed(src string, q *sparql.Query) (*Result, error) {
	if len(q.UnionGroups) > 0 {
		return v.queryUnion(src, q)
	}
	plan := v.plan(q)
	er, err := v.exec(src, plan, engine.Options{Filters: q.Filters, Optionals: q.Optionals, OptionalFilters: q.OptionalFilters})
	if err != nil {
		return nil, err
	}
	rows, err := engine.Materialize(v.snap, q, er)
	if err != nil {
		return nil, err
	}
	proj := q.Projection
	if len(proj) == 0 {
		proj = q.AllVars()
	}
	return &Result{Vars: proj, Rows: rows, Plan: plan.String(), Truncated: er.Truncated}, nil
}

// countSolutions counts solutions of the (possibly UNION) BGP with its
// filters, before projection and modifiers. truncated reports that a
// budget stopped enumeration, making the count a lower bound.
func (v view) countSolutions(src string, q *sparql.Query) (n int64, truncated bool, err error) {
	if len(q.UnionGroups) == 0 {
		plan := v.plan(q)
		er, err := v.exec(src, plan, engine.Options{CountOnly: true, Filters: q.Filters, Optionals: q.Optionals, OptionalFilters: q.OptionalFilters})
		if err != nil {
			return 0, false, err
		}
		return er.Count, er.Truncated, nil
	}
	var total int64
	for i := range q.UnionGroups {
		bq := q.Branch(i)
		plan := v.plan(bq)
		er, err := v.exec(src, plan, engine.Options{CountOnly: true, Filters: bq.Filters})
		if err != nil {
			return 0, false, err
		}
		truncated = truncated || er.Truncated
		total += er.Count
	}
	return total, truncated, nil
}

// commonBranchVars returns the variables bound by every UNION branch, in
// first-branch order.
func commonBranchVars(q *sparql.Query) []string {
	if len(q.UnionGroups) == 0 {
		return nil
	}
	var out []string
	for _, tp := range q.UnionGroups[0] {
		for _, v := range tp.Vars() {
			if contains(out, v) {
				continue
			}
			inAll := true
			for _, g := range q.UnionGroups[1:] {
				found := false
				for _, gtp := range g {
					if contains(gtp.Vars(), v) {
						found = true
						break
					}
				}
				if !found {
					inAll = false
					break
				}
			}
			if inAll {
				out = append(out, v)
			}
		}
	}
	return out
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// applyRowModifiers applies DISTINCT, OFFSET, and LIMIT to materialized
// rows (used for UNION results, where branches materialize separately).
func applyRowModifiers(rows []map[string]string, proj []string, distinct bool, offset, limit int) []map[string]string {
	var out []map[string]string
	seen := map[string]bool{}
	var keyBuf []byte
	skipped := 0
	for _, r := range rows {
		if distinct {
			// Length-prefix every field: rendered terms may contain any
			// byte (blank-node labels are not escaped), so no separator
			// is collision-free on its own.
			keyBuf = keyBuf[:0]
			for _, v := range proj {
				s := r[v]
				keyBuf = strconv.AppendInt(keyBuf, int64(len(s)), 10)
				keyBuf = append(keyBuf, ':')
				keyBuf = append(keyBuf, s...)
			}
			key := string(keyBuf)
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		if skipped < offset {
			skipped++
			continue
		}
		out = append(out, r)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Ask answers an ASK query (or any query treated as an existence check):
// true iff the BGP with its filters has at least one match.
func (db *DB) Ask(src string) (bool, error) {
	return db.AskCtx(context.Background(), src)
}

// AskCtx is Ask honoring a context; see QueryCtx for the cancellation
// and deadline semantics.
func (db *DB) AskCtx(ctx context.Context, src string) (bool, error) {
	if err := db.begin(); err != nil {
		return false, err
	}
	defer db.end()
	ctx, cancel := db.withTimeout(ctx)
	defer cancel()
	q, err := sparql.Parse(src)
	if err != nil {
		return false, err
	}
	v := db.viewCtx(ctx)
	if len(q.UnionGroups) > 0 {
		n, _, err := v.countSolutions(src, q)
		return n > 0, err
	}
	plan := v.plan(q)
	er, err := v.exec(src, plan, engine.Options{Filters: q.Filters, Optionals: q.Optionals, OptionalFilters: q.OptionalFilters, Limit: 1})
	if err != nil {
		return false, err
	}
	return er.Count > 0, nil
}

// Count executes the query and returns the number of filtered results
// before projection, DISTINCT, and LIMIT — the BGP's true cardinality.
func (db *DB) Count(src string) (int64, error) {
	return db.CountCtx(context.Background(), src)
}

// CountCtx is Count honoring a context; see QueryCtx for the
// cancellation and deadline semantics.
func (db *DB) CountCtx(ctx context.Context, src string) (int64, error) {
	if err := db.begin(); err != nil {
		return 0, err
	}
	defer db.end()
	ctx, cancel := db.withTimeout(ctx)
	defer cancel()
	q, err := sparql.Parse(src)
	if err != nil {
		return 0, err
	}
	n, _, err := db.viewCtx(ctx).countSolutions(src, q)
	return n, err
}

// Explain returns the query plan built with the requested statistics:
// "SS" (shape statistics, the default) or "GS" (global statistics).
func (db *DB) Explain(src, approach string) (string, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return "", err
	}
	v := db.view()
	switch approach {
	case "", "SS":
		return v.plan(q).String(), nil
	case "GS":
		p := core.Optimize(q, v.ps.gs)
		v.annotate(p)
		return p.String(), nil
	default:
		return "", fmt.Errorf("rdfshapes: unknown approach %q (want SS or GS)", approach)
	}
}

// EstimateCount returns the shape-statistics estimate of the query's
// result cardinality, without executing it.
func (db *DB) EstimateCount(src string) (float64, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return 0, err
	}
	v := db.view()
	plan := v.plan(q)
	est, _ := cardinality.SequenceEstimate(q, plan.Order(), v.estimatorFor(q))
	return est * cardinality.FilterSelectivity(q), nil
}

// QueryEach streams a SELECT query's solutions to fn without
// materializing the full result set: fn receives each projected binding
// map and returns false to stop early. Solution modifiers that need the
// whole result (DISTINCT, ORDER BY, OFFSET) and the UNION/aggregate
// forms are not streamable and fall back to Query internally.
func (db *DB) QueryEach(src string, fn func(row map[string]string) bool) error {
	if err := db.begin(); err != nil {
		return err
	}
	defer db.end()
	q, err := sparql.Parse(src)
	if err != nil {
		return err
	}
	if q.Distinct || len(q.OrderBy) > 0 || q.Offset > 0 ||
		len(q.UnionGroups) > 0 || q.Aggregate != nil || len(q.Construct) > 0 {
		res, err := db.Query(src)
		if err != nil {
			return err
		}
		for _, row := range res.Rows {
			if !fn(row) {
				return nil
			}
		}
		return nil
	}
	v := db.view()
	plan := v.plan(q)
	proj := q.Projection
	if len(proj) == 0 {
		proj = q.AllVars()
	}
	// Engine rows stream through Materialize in result order, so a
	// limited run is enough; budget still applies.
	er, err := v.exec(src, plan, engine.Options{
		Filters:   q.Filters,
		Optionals: q.Optionals, OptionalFilters: q.OptionalFilters,
		Limit: q.Limit,
	})
	if err != nil {
		return err
	}
	rows, err := engine.Materialize(v.snap, q, er)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if !fn(row) {
			return nil
		}
	}
	return nil
}

// Construct evaluates a CONSTRUCT query: the WHERE part runs like a
// SELECT, and every solution instantiates the template into result
// triples. Template triples with an unbound variable, a literal subject,
// or a non-IRI predicate are skipped for that solution, per SPARQL.
// Blank nodes in the template are minted fresh per solution. The result
// graph is deduplicated.
func (db *DB) Construct(src string) (rdf.Graph, error) {
	return db.ConstructCtx(context.Background(), src)
}

// ConstructCtx is Construct honoring a context; see QueryCtx for the
// cancellation and deadline semantics.
func (db *DB) ConstructCtx(ctx context.Context, src string) (rdf.Graph, error) {
	if err := db.begin(); err != nil {
		return nil, err
	}
	defer db.end()
	ctx, cancel := db.withTimeout(ctx)
	defer cancel()
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(q.Construct) == 0 {
		return nil, fmt.Errorf("rdfshapes: Construct requires a CONSTRUCT query")
	}
	inner := q.Clone()
	inner.Construct = nil
	inner.Projection = nil // bind everything the template may need
	inner.Distinct = false
	res, err := db.viewCtx(ctx).queryParsed(src, inner)
	if err != nil {
		return nil, err
	}

	var out rdf.Graph
	seen := map[rdf.Triple]bool{}
	for rowNo, row := range res.Rows {
		resolve := func(pt sparql.PatternTerm) (rdf.Term, bool) {
			if !pt.IsVar() {
				if pt.Term.IsBlank() {
					// fresh blank node per solution
					return rdf.NewBlank(fmt.Sprintf("c%d-%s", rowNo, pt.Term.Value)), true
				}
				return pt.Term, true
			}
			s, ok := row[pt.Var]
			if !ok || s == "" {
				return rdf.Term{}, false
			}
			term, err := rdf.ParseTerm(s)
			if err != nil {
				return rdf.Term{}, false
			}
			return term, true
		}
		for _, tmpl := range q.Construct {
			s, ok := resolve(tmpl.S)
			if !ok || s.IsLiteral() {
				continue
			}
			p, ok := resolve(tmpl.P)
			if !ok || !p.IsIRI() {
				continue
			}
			o, ok := resolve(tmpl.O)
			if !ok {
				continue
			}
			t := rdf.Triple{S: s, P: p, O: o}
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out, nil
}

// Validate checks the data against the shapes graph's constraints and
// returns up to limit violations (0 = all). It runs against the current
// merged snapshot — base plus any uncompacted overlay — so committed
// updates are always validated, without triggering a compaction.
func (db *DB) Validate(limit int) []shacl.Violation {
	return db.Shapes().Validate(db.snapshotView(), limit)
}

// Shapes exposes the current annotated shapes graph. The returned graph
// is an immutable version: updates publish fresh copies rather than
// mutating it.
func (db *DB) Shapes() *shacl.ShapesGraph { return db.planner.Load().shapes }

// Stats exposes the current extended-VoID global statistics. The
// returned value is an immutable version: updates publish fresh copies
// rather than mutating it.
func (db *DB) Stats() *gstats.Global { return db.planner.Load().global }

// Store exposes the current frozen base store, excluding any
// uncompacted overlay. On a sharded DB it materializes the merged
// dataset (O(n)) instead. Tools that need the full committed dataset as
// a *store.Store should call WriteSnapshot or Validate semantics
// instead; query paths use consistent snapshots internally.
func (db *DB) Store() *store.Store {
	if db.shards != nil {
		// Merged only fails on dictionary exhaustion, impossible when
		// re-adding IDs the dictionary already holds.
		merged, _ := db.shards.Merged()
		return merged
	}
	return db.live.Base()
}

// Live exposes the live overlay store for advanced integrations; nil on
// a sharded DB (use Shards).
func (db *DB) Live() *live.Store { return db.live }

// Shards exposes the shard group of a WithShards DB; nil otherwise.
func (db *DB) Shards() *shard.Group { return db.shards }

// Sharded returns the shard count, or 0 for a single-store DB.
func (db *DB) Sharded() int {
	if db.shards == nil {
		return 0
	}
	return db.shards.N()
}

// NumTriples returns the dataset size, including committed updates.
func (db *DB) NumTriples() int { return db.snapshotView().Len() }

// Collector returns the installed observability collector, or nil.
func (db *DB) Collector() *obsv.Collector { return db.obs }

// SetCollector installs (or removes, with nil) the observability
// collector. Not safe to call concurrently with queries; set it up
// before serving traffic.
func (db *DB) SetCollector(c *obsv.Collector) {
	db.obs = c
	db.adaptive.attachCollector(c)
}

// WriteShapesTurtle serializes the annotated shapes graph as Turtle.
func (db *DB) WriteShapesTurtle(w io.Writer) error {
	return db.Shapes().WriteTurtle(w, nil)
}

// exec executes a planned BGP with the DB's governor applied: the
// operation budget (WithOpsBudget), the intermediate/row budgets
// (WithLimits), and the call context's cancellation and deadline. When a
// collector is installed it also assembles and records a query trace:
// per-pattern estimated (the plan's join estimates) vs. actual (the
// engine's intermediate sizes) cardinalities, q-error, ops, wall time,
// and the termination reason. Without a collector it is exactly the old
// fast path.
const joinAlgoHelp = "Join steps executed, labeled by the physical join algorithm the optimizer selected (merge vs nested loop)."

func (v view) exec(src string, plan *core.Plan, opts engine.Options) (*engine.Result, error) {
	db := v.db
	opts.MaxOps = db.maxOps
	opts.MaxIntermediate = db.limits.MaxIntermediate
	opts.MaxRows = db.limits.MaxRows
	opts.Parallelism = db.parallelism
	opts.MergeWidth = plan.MergeWidth
	opts.MergeVar = plan.MergeVar
	if v.ctx != nil && v.ctx != context.Background() {
		opts.Ctx = v.ctx
	}
	c := db.obs
	if c == nil && db.adaptive == nil {
		er, err := engine.Run(v.snap, plan.Order(), opts)
		if err != nil {
			return nil, err
		}
		if er.TimedOut {
			return nil, fmt.Errorf("rdfshapes: %w (budget %d)", ErrBudgetExceeded, db.maxOps)
		}
		return er, nil
	}

	var rep engine.ExecReport
	var reported bool
	opts.Observer = func(r engine.ExecReport) { rep, reported = r, true }
	er, err := engine.Run(v.snap, plan.Order(), opts)

	// Only complete executions feed the adaptive replan tracker: partial
	// actuals are lower bounds and would register as fake drift.
	if db.adaptive != nil && err == nil && reported &&
		!rep.TimedOut && !rep.LimitHit && !rep.Truncated {
		db.adaptive.observe(plan, rep.Intermediate)
	}
	if c == nil {
		if err != nil {
			return nil, err
		}
		if er.TimedOut {
			return nil, fmt.Errorf("rdfshapes: %w (budget %d)", ErrBudgetExceeded, db.maxOps)
		}
		return er, nil
	}

	t := obsv.QueryTrace{
		Query:         src,
		Planner:       plan.Estimator,
		Plan:          plan.String(),
		EstimatedCost: plan.Cost,
	}
	if err != nil {
		t.Err = err.Error()
		switch {
		case errors.Is(err, ErrDeadline):
			t.Termination = "deadline"
		case errors.Is(err, ErrCanceled):
			t.Termination = "canceled"
		default:
			t.Termination = "error"
		}
	} else if reported {
		t.Rows = rep.Count
		t.Ops = rep.Ops
		t.WallNanos = rep.Wall.Nanoseconds()
		t.TimedOut = rep.TimedOut
		t.LimitHit = rep.LimitHit
		t.Truncated = rep.Truncated
		switch {
		case rep.TimedOut:
			t.Termination = "ops-budget"
		case rep.Truncated:
			t.Termination = "truncated"
		case rep.LimitHit:
			t.Termination = "limit"
		}
		for i, actual := range rep.Intermediate {
			if i >= len(plan.Steps) {
				break
			}
			// Label with the algorithm that actually executed (the engine
			// falls back to nested loop when validation fails, reported
			// via er.MergeWidth), not the planner's request.
			algo := ""
			switch {
			case er != nil && i < er.MergeWidth:
				algo = "merge"
			case i > 0:
				algo = "nl"
			}
			t.Patterns = append(t.Patterns, obsv.PatternTrace{
				Pattern:   plan.Steps[i].Pattern.String(),
				Estimated: plan.Steps[i].JoinEstimate,
				Actual:    actual,
				Algo:      algo,
			})
		}
		if joins := len(plan.Steps) - 1; joins > 0 {
			mergeJoins := 0
			if er != nil && er.MergeWidth > 1 {
				mergeJoins = er.MergeWidth - 1
			}
			cv := c.Counter(obsv.MetricJoinAlgo, joinAlgoHelp, "algo")
			if mergeJoins > 0 {
				cv.Add(float64(mergeJoins), "merge")
			}
			if nl := joins - mergeJoins; nl > 0 {
				cv.Add(float64(nl), "nl")
			}
		}
	}
	t.Finish()
	c.Record(t)

	if err != nil {
		return nil, err
	}
	if er.TimedOut {
		return nil, fmt.Errorf("rdfshapes: %w (budget %d)", ErrBudgetExceeded, db.maxOps)
	}
	return er, nil
}

func (v view) plan(q *sparql.Query) *core.Plan {
	var p *core.Plan
	if a := v.db.adaptive; a != nil && len(q.Patterns) > 0 {
		p = a.plan(q, v.estimatorFor(q))
	} else {
		p = core.Optimize(q, v.estimatorFor(q))
	}
	v.annotate(p)
	return p
}

// annotate runs the physical join-algorithm selection against the
// view's snapshot, gated on the snapshot actually implementing the
// ordered-runs capability the merge join consumes. Adaptive plan-cache
// hits return a fresh Plan with copied steps, so per-call annotation
// never leaks into the cache.
func (v view) annotate(p *core.Plan) {
	if _, ok := v.snap.(engine.OrderedSource); !ok {
		return
	}
	core.AnnotatePhysical(p, core.LeadAvailableProbe, core.SourceLegRows(v.snap))
}

// estimatorFor applies the paper's Section 6.1 rule: shape statistics
// when the query has a type-defined triple pattern, global otherwise.
func (v view) estimatorFor(q *sparql.Query) cardinality.Estimator {
	if q.HasTypePattern() && v.ps.shapes.Annotated() {
		return v.ps.ss
	}
	return v.ps.gs
}
