package rdfshapes_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"rdfshapes"
	"rdfshapes/internal/datagen/lubm"
	"rdfshapes/internal/obsv"
	"rdfshapes/internal/rdf"
)

const testNT = `
<http://ex/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/alice> <http://ex/name> "Alice" .
<http://ex/alice> <http://ex/knows> <http://ex/bob> .
<http://ex/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/bob> <http://ex/name> "Bob" .
`

func open(t *testing.T) *rdfshapes.DB {
	t.Helper()
	db, err := rdfshapes.LoadNTriples(strings.NewReader(testNT))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLoadInfersAndAnnotates(t *testing.T) {
	db := open(t)
	if db.NumTriples() != 5 {
		t.Errorf("NumTriples = %d", db.NumTriples())
	}
	if !db.Shapes().Annotated() {
		t.Error("shapes not annotated at load")
	}
	person := db.Shapes().ByClass("http://ex/Person")
	if person == nil || person.Count != 2 {
		t.Fatalf("Person shape = %+v", person)
	}
	if db.Stats().Triples != 5 {
		t.Errorf("global triples = %d", db.Stats().Triples)
	}
	if db.Store().Len() != 5 {
		t.Errorf("store len = %d", db.Store().Len())
	}
}

func TestLoadNTriplesParseError(t *testing.T) {
	if _, err := rdfshapes.LoadNTriples(strings.NewReader("garbage here")); err == nil {
		t.Error("malformed input accepted")
	}
}

func TestQueryEndToEnd(t *testing.T) {
	db := open(t)
	res, err := db.Query(`
		PREFIX ex: <http://ex/>
		SELECT ?n WHERE {
			?x a ex:Person .
			?x ex:knows ?y .
			?y ex:name ?n .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["n"] != `"Bob"` {
		t.Errorf("rows = %v", res.Rows)
	}
	if !strings.Contains(res.Plan, "plan (") {
		t.Errorf("plan missing: %q", res.Plan)
	}
}

func TestQuerySyntaxError(t *testing.T) {
	db := open(t)
	if _, err := db.Query("SELECT"); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := db.Count("SELECT"); err == nil {
		t.Error("Count accepted a syntax error")
	}
	if _, err := db.EstimateCount("SELECT"); err == nil {
		t.Error("EstimateCount accepted a syntax error")
	}
}

func TestCountAndEstimate(t *testing.T) {
	db := open(t)
	src := `PREFIX ex: <http://ex/>
		SELECT * WHERE { ?x a ex:Person . ?x ex:name ?n . }`
	n, err := db.Count(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("Count = %d, want 2", n)
	}
	est, err := db.EstimateCount(src)
	if err != nil {
		t.Fatal(err)
	}
	if est != 2 {
		t.Errorf("EstimateCount = %v, want exactly 2 (shape stats are exact here)", est)
	}
}

func TestExplainApproaches(t *testing.T) {
	db := open(t)
	src := `PREFIX ex: <http://ex/>
		SELECT * WHERE { ?x a ex:Person . ?x ex:name ?n . }`
	for _, approach := range []string{"", "SS", "GS"} {
		plan, err := db.Explain(src, approach)
		if err != nil {
			t.Errorf("Explain(%q): %v", approach, err)
		}
		if !strings.Contains(plan, "ex/Person") {
			t.Errorf("Explain(%q) = %q", approach, plan)
		}
	}
	if _, err := db.Explain(src, "bogus"); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestValidateThroughFacade(t *testing.T) {
	db := open(t)
	if vs := db.Validate(0); len(vs) != 0 {
		t.Errorf("violations on conforming data: %v", vs)
	}
}

func TestWithShapesGraphOption(t *testing.T) {
	g := lubm.Generate(lubm.Config{Universities: 1, Seed: 9})
	db, err := rdfshapes.Load(g, rdfshapes.WithShapesGraph(lubm.Shapes()))
	if err != nil {
		t.Fatal(err)
	}
	shape := db.Shapes().ByClass(lubm.GraduateStudent)
	if shape == nil || shape.Count <= 0 {
		t.Fatalf("GraduateStudent shape = %+v", shape)
	}
	// the shipped shape IRIs must be preserved (not re-minted)
	if !strings.HasPrefix(shape.IRI, "urn:shapes:lubm:") {
		t.Errorf("shape IRI = %q", shape.IRI)
	}
}

func TestWriteShapesTurtle(t *testing.T) {
	db := open(t)
	var sb strings.Builder
	if err := db.WriteShapesTurtle(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sh:NodeShape", "sh:count"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("turtle missing %q", want)
		}
	}
}

func TestTypeFreeQueryFallsBackToGlobal(t *testing.T) {
	db := open(t)
	// no type pattern: the facade must still answer correctly
	res, err := db.Query(`PREFIX ex: <http://ex/>
		SELECT ?n WHERE { ?x ex:knows ?y . ?y ex:name ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestLoadEmptyGraph(t *testing.T) {
	db, err := rdfshapes.Load(rdf.Graph{})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumTriples() != 0 {
		t.Errorf("NumTriples = %d", db.NumTriples())
	}
	if _, err := db.Count(`SELECT * WHERE { ?s ?p ?o }`); err != nil {
		t.Errorf("query over empty graph: %v", err)
	}
}

func TestDistinctAndLimitThroughFacade(t *testing.T) {
	db := open(t)
	res, err := db.Query(`PREFIX ex: <http://ex/>
		SELECT DISTINCT ?x WHERE { ?x a ex:Person . ?x ex:name ?n . } LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestFilterOrderAskThroughFacade(t *testing.T) {
	db := open(t)
	// FILTER
	n, err := db.Count(`PREFIX ex: <http://ex/>
		SELECT * WHERE { ?x ex:name ?n . FILTER(?n != "Alice") }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("filtered count = %d, want 1", n)
	}
	// ORDER BY DESC
	res, err := db.Query(`PREFIX ex: <http://ex/>
		SELECT ?n WHERE { ?x a ex:Person . ?x ex:name ?n . } ORDER BY DESC(?n)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0]["n"] != `"Bob"` {
		t.Errorf("ordered rows = %v", res.Rows)
	}
	// ASK
	yes, err := db.Ask(`PREFIX ex: <http://ex/> ASK { ?x ex:knows ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Error("ASK = false, want true")
	}
	no, err := db.Ask(`PREFIX ex: <http://ex/> ASK { ?x ex:knows ?y . FILTER(?y = <http://ex/alice>) }`)
	if err != nil {
		t.Fatal(err)
	}
	if no {
		t.Error("ASK = true, want false (nobody knows alice)")
	}
	if _, err := db.Ask("ASK {"); err == nil {
		t.Error("Ask accepted a syntax error")
	}
}

func TestSnapshotThroughFacade(t *testing.T) {
	db := open(t)
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := rdfshapes.LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumTriples() != db.NumTriples() {
		t.Errorf("triples = %d, want %d", rt.NumTriples(), db.NumTriples())
	}
	if !rt.Shapes().Annotated() {
		t.Error("snapshot reload lost shape annotation")
	}
	n, err := rt.Count(`PREFIX ex: <http://ex/>
		SELECT * WHERE { ?x a ex:Person . ?x ex:knows ?y . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("count after snapshot reload = %d, want 1", n)
	}
	if _, err := rdfshapes.LoadSnapshot(strings.NewReader("junk")); err == nil {
		t.Error("junk snapshot accepted")
	}
}

func TestOptionalThroughFacade(t *testing.T) {
	db := open(t)
	// alice knows bob; bob knows nobody → bob's row keeps ?y unbound
	res, err := db.Query(`PREFIX ex: <http://ex/>
		SELECT ?x ?y WHERE {
			?x a ex:Person .
			OPTIONAL { ?x ex:knows ?y }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	unbound := 0
	for _, r := range res.Rows {
		if r["y"] == "" {
			unbound++
		}
	}
	if unbound != 1 {
		t.Errorf("unbound rows = %d, want 1 (bob)", unbound)
	}
}

func TestUnionThroughFacade(t *testing.T) {
	db := open(t)
	res, err := db.Query(`PREFIX ex: <http://ex/>
		SELECT ?x WHERE {
			{ ?x ex:name "Alice" }
			UNION
			{ ?x ex:name "Bob" }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Count over union sums the branches
	n, err := db.Count(`PREFIX ex: <http://ex/>
		SELECT * WHERE {
			{ ?x a ex:Person }
			UNION
			{ ?x ex:knows ?y }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // 2 persons + 1 knows edge
		t.Errorf("union count = %d, want 3", n)
	}
	// DISTINCT dedupes across branches
	res, err = db.Query(`PREFIX ex: <http://ex/>
		SELECT DISTINCT ?x WHERE {
			{ ?x a ex:Person }
			UNION
			{ ?x ex:name ?n }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("distinct union rows = %v", res.Rows)
	}
	// Ask over union
	yes, err := db.Ask(`PREFIX ex: <http://ex/>
		ASK { { ?x ex:nosuch ?y } UNION { ?x ex:knows ?y } }`)
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Error("union ASK = false")
	}
}

func TestUnionParseErrors(t *testing.T) {
	db := open(t)
	bad := []string{
		`SELECT * WHERE { { ?x <http://p> ?y } }`,                                        // single branch
		`SELECT * WHERE { { ?x <http://p> ?y } UNION { } }`,                              // empty branch
		`SELECT ?z WHERE { { ?x <http://p> ?y } UNION { ?x <http://q> ?w } }`,            // ?z unbound
		`SELECT ?y WHERE { { ?x <http://p> ?y } UNION { ?x <http://q> ?w } }`,            // ?y not in branch 2
		`SELECT * WHERE { { ?x <http://p> ?y } UNION { ?x <http://q> ?w } } ORDER BY ?x`, // order over union
	}
	for _, src := range bad {
		if _, err := db.Query(src); err == nil {
			t.Errorf("Query(%q) succeeded", src)
		}
	}
}

func TestCountAggregateThroughFacade(t *testing.T) {
	db := open(t)
	res, err := db.Query(`PREFIX ex: <http://ex/>
		SELECT (COUNT(*) AS ?n) WHERE { ?x a ex:Person . ?x ex:name ?name }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["n"] != rdf.NewInteger(2).String() {
		t.Errorf("COUNT(*) rows = %v", res.Rows)
	}
	// COUNT(DISTINCT ?y): alice knows bob, bob knows carol... only bob is
	// known here; distinct objects of knows = 1
	res, err = db.Query(`PREFIX ex: <http://ex/>
		SELECT (COUNT(DISTINCT ?y) AS ?n) WHERE { ?x ex:knows ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0]["n"] != rdf.NewInteger(1).String() {
		t.Errorf("COUNT(DISTINCT) = %v", res.Rows)
	}
	// COUNT over OPTIONAL ignores unbound values
	res, err = db.Query(`PREFIX ex: <http://ex/>
		SELECT (COUNT(?y) AS ?n) WHERE {
			?x a ex:Person .
			OPTIONAL { ?x ex:knows ?y }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0]["n"] != rdf.NewInteger(1).String() {
		t.Errorf("COUNT(?y) over OPTIONAL = %v", res.Rows)
	}
	// the paper's annotator query form is now directly expressible
	res, err = db.Query(`PREFIX ex: <http://ex/>
		SELECT (COUNT(*) AS ?c) WHERE { ?x a ex:Person }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0]["c"] != rdf.NewInteger(2).String() {
		t.Errorf("annotator-style count = %v", res.Rows)
	}
}

func TestCountAggregateParseErrors(t *testing.T) {
	db := open(t)
	bad := []string{
		`SELECT (COUNT(DISTINCT *) AS ?n) WHERE { ?x <http://p> ?y }`,
		`SELECT (COUNT(?zz) AS ?n) WHERE { ?x <http://p> ?y }`,
		`SELECT (COUNT(*) ?n) WHERE { ?x <http://p> ?y }`,
		`SELECT (COUNT(*) AS ?n WHERE { ?x <http://p> ?y }`,
		`ASK (COUNT(*) AS ?n) { ?x <http://p> ?y }`,
	}
	for _, src := range bad {
		if _, err := db.Query(src); err == nil {
			t.Errorf("Query(%q) succeeded", src)
		}
	}
}

func TestOpsBudgetThroughFacade(t *testing.T) {
	g := lubm.Generate(lubm.Config{Universities: 1, Seed: 9})
	db, err := rdfshapes.Load(g,
		rdfshapes.WithShapesGraph(lubm.Shapes()),
		rdfshapes.WithOpsBudget(10))
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.Count(`SELECT * WHERE { ?s ?p ?o }`)
	if !errors.Is(err, rdfshapes.ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
	// tiny queries still fit the budget
	if _, err := db.Count(`PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		SELECT * WHERE { ?x a ub:University }`); err != nil {
		t.Errorf("tiny query exceeded budget: %v", err)
	}
}

func TestPropertyPathThroughFacade(t *testing.T) {
	g := lubm.Generate(lubm.Config{Universities: 1, Seed: 9})
	db, err := rdfshapes.Load(g, rdfshapes.WithShapesGraph(lubm.Shapes()))
	if err != nil {
		t.Fatal(err)
	}
	// advisor/name path vs the explicit two-pattern form must agree
	pathCount, err := db.Count(`PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		SELECT * WHERE { ?x a ub:GraduateStudent . ?x ub:advisor/ub:name ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	explicitCount, err := db.Count(`PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		SELECT * WHERE { ?x a ub:GraduateStudent . ?x ub:advisor ?a . ?a ub:name ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if pathCount != explicitCount || pathCount == 0 {
		t.Errorf("path count %d != explicit count %d", pathCount, explicitCount)
	}
	// inverse path: ^teacherOf from course to teacher
	inv, err := db.Count(`PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		SELECT * WHERE { ?c a ub:GraduateCourse . ?c ^ub:teacherOf ?t }`)
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := db.Count(`PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		SELECT * WHERE { ?c a ub:GraduateCourse . ?t ub:teacherOf ?c }`)
	if err != nil {
		t.Fatal(err)
	}
	if inv != fwd || inv == 0 {
		t.Errorf("inverse count %d != forward count %d", inv, fwd)
	}
}

func TestAggregateOverUnion(t *testing.T) {
	db := open(t)
	res, err := db.Query(`PREFIX ex: <http://ex/>
		SELECT (COUNT(*) AS ?n) WHERE {
			{ ?x a ex:Person }
			UNION
			{ ?x ex:knows ?y }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0]["n"] != rdf.NewInteger(3).String() {
		t.Errorf("COUNT over union = %v", res.Rows)
	}
	// distinct subjects across branches
	res, err = db.Query(`PREFIX ex: <http://ex/>
		SELECT (COUNT(DISTINCT ?x) AS ?n) WHERE {
			{ ?x a ex:Person }
			UNION
			{ ?x ex:knows ?y }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0]["n"] != rdf.NewInteger(2).String() {
		t.Errorf("COUNT DISTINCT over union = %v", res.Rows)
	}
}

func TestUnionWithFiltersAndLimit(t *testing.T) {
	db := open(t)
	res, err := db.Query(`PREFIX ex: <http://ex/>
		SELECT ?n WHERE {
			{ ?x ex:name ?n }
			UNION
			{ ?y ex:name ?n }
		} LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // 2 + 2 rows, limited to 3
		t.Errorf("limited union rows = %v", res.Rows)
	}
	// offset over union
	res, err = db.Query(`PREFIX ex: <http://ex/>
		SELECT ?n WHERE {
			{ ?x ex:name ?n }
			UNION
			{ ?y ex:name ?n }
		} OFFSET 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("offset union rows = %v", res.Rows)
	}
}

func TestUnionSelectStarCommonVars(t *testing.T) {
	db := open(t)
	res, err := db.Query(`PREFIX ex: <http://ex/>
		SELECT * WHERE {
			{ ?x a ex:Person . ?x ex:name ?n }
			UNION
			{ ?x ex:knows ?z }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	// only ?x is common to both branches
	if len(res.Vars) != 1 || res.Vars[0] != "x" {
		t.Errorf("union SELECT * vars = %v, want [x]", res.Vars)
	}
}

func TestEstimateCountWithFilter(t *testing.T) {
	db := open(t)
	base, err := db.EstimateCount(`PREFIX ex: <http://ex/>
		SELECT * WHERE { ?x a ex:Person . ?x ex:name ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := db.EstimateCount(`PREFIX ex: <http://ex/>
		SELECT * WHERE { ?x a ex:Person . ?x ex:name ?n . FILTER(?n != "Alice") }`)
	if err != nil {
		t.Fatal(err)
	}
	if filtered >= base {
		t.Errorf("filter selectivity not applied: %v >= %v", filtered, base)
	}
}

func TestExplainAskAndUnionQueries(t *testing.T) {
	db := open(t)
	if _, err := db.Explain(`PREFIX ex: <http://ex/> ASK { ?x ex:knows ?y }`, "SS"); err != nil {
		t.Errorf("explain ASK: %v", err)
	}
}

func TestConstructThroughFacade(t *testing.T) {
	db := open(t)
	g, err := db.Construct(`PREFIX ex: <http://ex/>
		CONSTRUCT { ?y ex:knownBy ?x }
		WHERE { ?x ex:knows ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 1 {
		t.Fatalf("constructed graph = %v", g)
	}
	tr := g[0]
	if tr.S.Value != "http://ex/bob" || tr.P.Value != "http://ex/knownBy" || tr.O.Value != "http://ex/alice" {
		t.Errorf("triple = %v", tr)
	}
	// constant template positions + dedup across solutions
	g, err = db.Construct(`PREFIX ex: <http://ex/>
		CONSTRUCT { <http://ex/graph> ex:mentions ?x }
		WHERE { ?x a ex:Person . ?x ex:name ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 2 {
		t.Errorf("constructed graph = %v", g)
	}
	// unbound OPTIONAL var in template: triple skipped for that solution
	g, err = db.Construct(`PREFIX ex: <http://ex/>
		CONSTRUCT { ?x ex:knowsSomeone ?y }
		WHERE { ?x a ex:Person . OPTIONAL { ?x ex:knows ?y } }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 1 {
		t.Errorf("optional construct graph = %v", g)
	}
	// errors
	if _, err := db.Construct(`SELECT * WHERE { ?s ?p ?o }`); err == nil {
		t.Error("Construct accepted a SELECT query")
	}
	if _, err := db.Query(`PREFIX ex: <http://ex/>
		CONSTRUCT { ?x ex:p ?y } WHERE { ?x ex:knows ?y }`); err == nil {
		t.Error("Query accepted a CONSTRUCT query")
	}
	if _, err := db.Construct("CONSTRUCT {"); err == nil {
		t.Error("Construct accepted a syntax error")
	}
}

func TestConstructLiteralSubjectSkipped(t *testing.T) {
	db := open(t)
	// ?n binds to literals, invalid as subjects: everything skipped
	g, err := db.Construct(`PREFIX ex: <http://ex/>
		CONSTRUCT { ?n ex:of ?x }
		WHERE { ?x ex:name ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 0 {
		t.Errorf("literal-subject triples emitted: %v", g)
	}
}

func TestQueryEach(t *testing.T) {
	db := open(t)
	var names []string
	err := db.QueryEach(`PREFIX ex: <http://ex/>
		SELECT ?n WHERE { ?x a ex:Person . ?x ex:name ?n }`,
		func(row map[string]string) bool {
			names = append(names, row["n"])
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Errorf("streamed rows = %v", names)
	}
	// early stop
	count := 0
	err = db.QueryEach(`SELECT * WHERE { ?s ?p ?o }`, func(map[string]string) bool {
		count++
		return false
	})
	if err != nil || count != 1 {
		t.Errorf("early stop: count=%d err=%v", count, err)
	}
	// fallback path (DISTINCT)
	count = 0
	err = db.QueryEach(`PREFIX ex: <http://ex/>
		SELECT DISTINCT ?x WHERE { ?x a ex:Person . ?x ex:name ?n }`,
		func(map[string]string) bool {
			count++
			return true
		})
	if err != nil || count != 2 {
		t.Errorf("distinct fallback: count=%d err=%v", count, err)
	}
	if err := db.QueryEach("bogus", func(map[string]string) bool { return true }); err == nil {
		t.Error("QueryEach accepted a syntax error")
	}
}

func TestWithCollectorTracesQueries(t *testing.T) {
	c := obsv.NewCollector(8)
	db, err := rdfshapes.LoadNTriples(strings.NewReader(testNT), rdfshapes.WithCollector(c))
	if err != nil {
		t.Fatal(err)
	}
	if db.Collector() != c {
		t.Fatal("Collector accessor does not return the configured collector")
	}
	if _, err := db.Query(`PREFIX ex: <http://ex/>
		SELECT ?x ?n WHERE { ?x a ex:Person . ?x ex:name ?n }`); err != nil {
		t.Fatal(err)
	}
	if got := c.TraceCount(); got != 1 {
		t.Fatalf("TraceCount = %d, want 1", got)
	}
	tr := c.Recent(1)[0]
	if tr.Planner != "SS" {
		t.Errorf("trace planner = %q, want SS (type-defined pattern)", tr.Planner)
	}
	if len(tr.Patterns) != 2 {
		t.Fatalf("trace has %d pattern entries, want 2", len(tr.Patterns))
	}
	for i, p := range tr.Patterns {
		if p.Pattern == "" || p.Estimated <= 0 || p.Actual <= 0 || p.QError < 1 {
			t.Errorf("pattern %d incomplete: %+v", i, p)
		}
	}
	if tr.Rows != 2 || tr.WallNanos <= 0 || tr.Ops <= 0 {
		t.Errorf("trace rows/wall/ops = %d/%d/%d", tr.Rows, tr.WallNanos, tr.Ops)
	}
	if !strings.Contains(tr.Query, "ex:Person") {
		t.Errorf("trace query = %q", tr.Query)
	}

	// Ask and Count also trace.
	if _, err := db.Ask(`ASK { ?s ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Count(`SELECT * WHERE { ?s ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	if got := c.TraceCount(); got != 3 {
		t.Errorf("TraceCount after Ask+Count = %d, want 3", got)
	}

	// And the collector renders all of it as Prometheus text.
	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`rdfshapes_queries_total{planner="SS",status="ok"}`,
		`rdfshapes_plan_qerror_count{planner="SS"} `,
		`rdfshapes_query_duration_seconds_count{planner="GS"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestSetCollector(t *testing.T) {
	db := open(t)
	if db.Collector() != nil {
		t.Fatal("collector should default to nil")
	}
	c := obsv.NewCollector(4)
	db.SetCollector(c)
	if _, err := db.Query(`SELECT * WHERE { ?s ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	if c.TraceCount() != 1 {
		t.Errorf("TraceCount = %d, want 1", c.TraceCount())
	}
	db.SetCollector(nil)
	if _, err := db.Query(`SELECT * WHERE { ?s ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	if c.TraceCount() != 1 {
		t.Errorf("detached collector gained traces: %d", c.TraceCount())
	}
}
