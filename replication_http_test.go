package rdfshapes_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"rdfshapes"
	"rdfshapes/internal/repl"
	"rdfshapes/internal/server"
	"rdfshapes/internal/wal"
)

func postUpdate(t *testing.T, base, update string) *http.Response {
	t.Helper()
	resp, err := http.PostForm(base+"/update", url.Values{"update": {update}})
	if err != nil {
		t.Fatalf("POST /update: %v", err)
	}
	return resp
}

func drainClose(t *testing.T, resp *http.Response) string {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading response body: %v", err)
	}
	return string(body)
}

// TestServerWALPoisoned503 is the satellite regression: once the WAL is
// poisoned by an append failure, HTTP writes answer 503 with Retry-After
// — a transient server condition, not a client error (500/400) — and a
// successful checkpoint restores writability through the same API.
func TestServerWALPoisoned503(t *testing.T) {
	fs := wal.NewMemFS()
	db, err := rdfshapes.Load(durabilitySeed(),
		rdfshapes.WithDurability("/data"), rdfshapes.WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := httptest.NewServer(server.New(db))
	defer srv.Close()

	ins := `INSERT DATA { <http://x/n1> <http://x/name> "N1" }`
	if resp := postUpdate(t, srv.URL, ins); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy update status = %d: %s", resp.StatusCode, drainClose(t, resp))
	} else {
		drainClose(t, resp)
	}

	// Every mutating filesystem operation now fails: the next append
	// poisons the WAL.
	fs.StopAfter(0)
	for i, upd := range []string{
		`INSERT DATA { <http://x/n2> <http://x/name> "N2" }`,
		`INSERT DATA { <http://x/n3> <http://x/name> "N3" }`, // already-poisoned path
	} {
		resp := postUpdate(t, srv.URL, upd)
		body := drainClose(t, resp)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("poisoned update %d status = %d, want 503 (%s)", i, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("poisoned update %d: missing Retry-After header", i)
		}
		if !strings.Contains(body, "read-only until a successful checkpoint") {
			t.Errorf("poisoned update %d body %q does not explain the poison", i, body)
		}
	}
	// Reads stay healthy while writes are refused.
	resp, err := http.Get(srv.URL + `/sparql?query=` + url.QueryEscape(`SELECT ?s WHERE { ?s <http://x/name> ?n }`))
	if err != nil {
		t.Fatal(err)
	}
	if body := drainClose(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("read on poisoned server = %d: %s", resp.StatusCode, body)
	}

	// Heal the filesystem; a checkpoint over the admin API clears the
	// poison and writes flow again.
	fs.StopAfter(-1)
	resp, err = http.Post(srv.URL+"/admin/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if body := drainClose(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint = %d: %s", resp.StatusCode, body)
	}
	resp = postUpdate(t, srv.URL, `INSERT DATA { <http://x/n4> <http://x/name> "N4" }`)
	if body := drainClose(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("update after checkpoint = %d, want 200: %s", resp.StatusCode, body)
	}
}

// TestServerReplicationEndpoints wires primary and replica through the
// real HTTP handler end to end: the replica bootstraps from the served
// /repl/snapshot, tails the served /repl/wal, answers /repl/status with
// its follower state, and refuses /update with 403.
func TestServerReplicationEndpoints(t *testing.T) {
	primary, err := rdfshapes.Load(durabilitySeed(), rdfshapes.WithDurability(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	psrv := httptest.NewServer(server.New(primary))
	defer psrv.Close()

	rep, err := rdfshapes.OpenReplica(psrv.URL, rdfshapes.WithReplicaPollInterval(time.Hour))
	if err != nil {
		t.Fatalf("opening replica against the served primary: %v", err)
	}
	defer rep.Close()
	rsrv := httptest.NewServer(server.New(rep))
	defer rsrv.Close()

	var status repl.StatusResponse
	for _, tc := range []struct {
		base, role string
	}{{psrv.URL, "primary"}, {rsrv.URL, "replica"}} {
		resp, err := http.Get(tc.base + repl.StatusPath)
		if err != nil {
			t.Fatal(err)
		}
		body := drainClose(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d: %s", tc.role, resp.StatusCode, body)
		}
		if err := json.Unmarshal([]byte(body), &status); err != nil {
			t.Fatalf("%s status JSON: %v", tc.role, err)
		}
		if status.Role != tc.role {
			t.Errorf("role = %q, want %q", status.Role, tc.role)
		}
	}

	// Writes to the replica are refused with 403; the write lands on the
	// primary and arrives at the replica through the log stream.
	ins := `INSERT DATA { <http://x/p9> <http://x/name> "P9" }`
	resp := postUpdate(t, rsrv.URL, ins)
	if body := drainClose(t, resp); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("update on replica = %d, want 403: %s", resp.StatusCode, body)
	}
	resp = postUpdate(t, psrv.URL, ins)
	if body := drainClose(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("update on primary = %d: %s", resp.StatusCode, body)
	}
	if err := rep.ReplicaSync(t.Context()); err != nil {
		t.Fatalf("replica sync: %v", err)
	}
	q := `SELECT ?s WHERE { ?s <http://x/name> "P9" }`
	resp, err = http.Get(rsrv.URL + "/sparql?query=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	body := drainClose(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "http://x/p9") {
		t.Fatalf("replica read after sync = %d: %s", resp.StatusCode, body)
	}

	// A non-durable, non-replica server mounts none of the replication
	// endpoints.
	plain, err := rdfshapes.Load(durabilitySeed())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	plainSrv := httptest.NewServer(server.New(plain))
	defer plainSrv.Close()
	for _, path := range []string{repl.WALPath, repl.SnapshotPath, repl.StatusPath} {
		resp, err := http.Get(plainSrv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if drainClose(t, resp); resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s on plain server = %d, want 404", path, resp.StatusCode)
		}
	}
}
