module rdfshapes

go 1.22
