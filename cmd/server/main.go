// Command server runs an HTTP SPARQL endpoint over a dataset: load
// N-Triples (or a binary snapshot) or generate a benchmark dataset, then
// serve /sparql, /update (SPARQL UPDATE with live statistics
// maintenance; see docs/LIVE_UPDATES.md), /explain, /shapes, /stats,
// /healthz, plus the observability surface /metrics (Prometheus text
// format) and /trace/recent (per-query traces with estimated vs. actual
// cardinalities; see docs/OBSERVABILITY.md).
//
// Requests run under a query governor (docs/RESILIENCE.md): at most
// -max-concurrent queries execute at once (overload answers 503 with
// Retry-After), each query is bounded by -query-timeout or a client
// timeout= parameter, and -max-rows/-max-intermediate budgets turn
// runaway result sets into marked partial responses. SIGINT/SIGTERM
// flips /readyz to 503, keeps the listener open for -drain-grace so load
// balancers deregister, drains in-flight requests, and — when a data
// directory is attached — checkpoints before exiting.
//
// With -data-dir the dataset is durable (docs/DURABILITY.md): every
// committed update is written to a checksummed write-ahead log before it
// is acknowledged (fsync policy under -fsync), POST /admin/checkpoint
// rotates the log into a fresh snapshot, and a restart recovers the
// directory — replaying the log and truncating any torn tail. An empty
// directory combined with -data/-dataset seeds it; a directory that
// already holds state is recovered, and the seed source is ignored.
//
// A durable server is also a replication primary (docs/REPLICATION.md):
// it serves its WAL at /repl/wal and its checkpoint snapshot at
// /repl/snapshot. With -replica-of the process is instead a read-only
// replica: it bootstraps from the primary's snapshot, tails its log
// (poll cadence under -replica-poll), serves reads with exact planner
// statistics, and answers /update with 403. With -router-primary the
// process is a read router: reads round-robin over the -router-replicas
// fleet, replicas beyond -max-staleness are ejected until they catch up,
// reads fail over to the primary, and writes always go to the primary.
//
//	server -dataset lubm -scale 1 -addr :8080
//	server -data graph.nt -data-dir /var/lib/rdfshapes -addr :8080
//	server -data-dir /var/lib/rdfshapes -fsync never
//	server -replica-of http://primary:8080 -addr :8081
//	server -router-primary http://primary:8080 -router-replicas http://r1:8081,http://r2:8082 -addr :8090
//	curl 'localhost:8080/sparql?query=SELECT...&timeout=500ms'
//	curl 'localhost:8080/update' -d 'update=INSERT DATA { <s> <p> <o> }'
//	curl -X POST 'localhost:8080/admin/checkpoint'
//	curl 'localhost:8080/repl/status'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"rdfshapes"
	"rdfshapes/internal/datagen/lubm"
	"rdfshapes/internal/datagen/watdiv"
	"rdfshapes/internal/datagen/yago"
	"rdfshapes/internal/obsv"
	"rdfshapes/internal/repl"
	"rdfshapes/internal/server"
	"rdfshapes/internal/wal"
)

// options holds every flag value; registerFlags binds them so tests can
// drive run with a private FlagSet instead of process arguments.
type options struct {
	dataset, dataFile string
	scale             int
	seed              int64
	addr              string
	budget            int64
	tracebuf          int
	compactAt         int
	driftAt           int64
	adaptiveAt        float64
	maxConcurrent     int
	queueWait         time.Duration
	queryTimeout      time.Duration
	maxRows           int64
	maxIntermediate   int64
	drainTimeout      time.Duration
	drainGrace        time.Duration
	parallelism       int
	shards            int
	scanFrameBytes    int
	dataDir           string
	fsyncMode         string

	replicaOf   string
	replicaPoll time.Duration

	routerPrimary  string
	routerReplicas string
	maxStaleness   time.Duration
	checkInterval  time.Duration
}

func registerFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.dataset, "dataset", "", "generate a dataset: lubm, watdiv, or yago")
	fs.StringVar(&o.dataFile, "data", "", "load N-Triples data (or a .snap snapshot) from a file")
	fs.IntVar(&o.scale, "scale", 1, "generator scale")
	fs.Int64Var(&o.seed, "seed", 7, "generator seed")
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.Int64Var(&o.budget, "budget", 50<<20, "per-query operation budget (0 = unlimited)")
	fs.IntVar(&o.tracebuf, "tracebuf", obsv.DefaultRingSize, "query traces kept for /trace/recent")
	fs.IntVar(&o.compactAt, "compact-threshold", rdfshapes.DefaultCompactThreshold,
		"overlay size triggering background compaction (0 = never)")
	fs.Int64Var(&o.driftAt, "drift-threshold", rdfshapes.DefaultDriftThreshold,
		"statistics drift triggering background re-annotation (0 = never)")
	fs.Float64Var(&o.adaptiveAt, "adaptive-qerror", 0,
		"rolling q-error threshold past which a cached template plan is re-optimized against current statistics (<= 1 disables; see docs/BENCHMARKING.md)")
	fs.IntVar(&o.maxConcurrent, "max-concurrent", server.DefaultMaxConcurrent,
		"queries executing at once; excess requests wait -queue-wait then get 503 (<0 = unlimited)")
	fs.DurationVar(&o.queueWait, "queue-wait", server.DefaultQueueWait,
		"how long an arriving request waits for an execution slot before 503")
	fs.DurationVar(&o.queryTimeout, "query-timeout", 30*time.Second,
		"per-query deadline, and the ceiling for client timeout= parameters (0 = none)")
	fs.Int64Var(&o.maxRows, "max-rows", 0,
		"result-row budget per query; overruns return a partial result marked truncated (0 = unlimited)")
	fs.Int64Var(&o.maxIntermediate, "max-intermediate", 0,
		"intermediate-binding budget per query; overruns return a partial result marked truncated (0 = unlimited)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second,
		"how long shutdown waits for in-flight requests before giving up")
	fs.DurationVar(&o.drainGrace, "drain-grace", 0,
		"how long /readyz answers 503 with the listener still open before the drain starts, so load balancers deregister first")
	fs.IntVar(&o.parallelism, "parallelism", runtime.GOMAXPROCS(0),
		"workers per query BGP (1 = serial execution; see docs/PERFORMANCE.md)")
	fs.IntVar(&o.shards, "shards", 0,
		"partition the dataset into N subject-hash shards with per-shard statistics and statistics-driven shard pruning (<= 1 = unsharded; see docs/SHARDING.md)")
	fs.IntVar(&o.scanFrameBytes, "scan-frame-bytes", 0,
		"target frame payload size for the checksummed /shard/scan protocol (0 = default)")
	fs.StringVar(&o.dataDir, "data-dir", "",
		"durability directory: WAL + snapshots; recovered on start, seeded from -data/-dataset when empty (see docs/DURABILITY.md)")
	fs.StringVar(&o.fsyncMode, "fsync", "always",
		"WAL sync policy: always (acknowledged commits survive crashes) or never (faster, may lose recent commits)")
	fs.StringVar(&o.replicaOf, "replica-of", "",
		"run as a read-only replica of the durable primary at this base URL (see docs/REPLICATION.md)")
	fs.DurationVar(&o.replicaPoll, "replica-poll", repl.DefaultPollInterval,
		"how often a replica polls the primary for new log records while healthy")
	fs.StringVar(&o.routerPrimary, "router-primary", "",
		"run as a read router in front of this primary base URL (reads spread over -router-replicas, writes go here)")
	fs.StringVar(&o.routerReplicas, "router-replicas", "",
		"comma-separated replica base URLs the router spreads reads over")
	fs.DurationVar(&o.maxStaleness, "max-staleness", repl.DefaultMaxStaleness,
		"router: eject a replica whose reported staleness exceeds this bound until it catches back up")
	fs.DurationVar(&o.checkInterval, "check-interval", repl.DefaultCheckInterval,
		"router: health-check cadence for /readyz + /repl/status probes")
	return o
}

func main() {
	opts := registerFlags(flag.CommandLine)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Restore default signal handling the moment the first signal
	// arrives, so a second signal kills immediately instead of waiting
	// out the drain.
	go func() { <-ctx.Done(); stop() }()
	if err := run(ctx, opts, nil); err != nil {
		log.Fatal("server: ", err)
	}
}

// run starts the configured process — SPARQL server, read replica, or
// read router — and blocks until ctx is canceled, then drains and shuts
// down cleanly. When started is non-nil it receives the bound listener
// address once serving (tests listen on :0 and read it back).
func run(ctx context.Context, opts *options, started chan<- string) error {
	if opts.routerPrimary != "" {
		return runRouter(ctx, opts, started)
	}
	db, err := openDB(opts)
	if err != nil {
		return err
	}
	if s, ok := db.DurabilityStats(); ok && s.Recovered {
		log.Printf("recovered %s: generation %d, %d WAL records replayed, %d torn tails truncated, %d snapshot fallbacks",
			opts.dataDir, s.Generation, s.RecordsReplayed, s.TornTruncations, s.SnapshotFallbacks)
	}

	handler := server.NewWithConfig(db, server.Config{
		MaxConcurrent:  opts.maxConcurrent,
		QueueWait:      opts.queueWait,
		QueryTimeout:   opts.queryTimeout,
		ScanFrameBytes: opts.scanFrameBytes,
	})
	srv := newHTTPServer(handler)
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		db.Close()
		return err
	}
	if started != nil {
		started <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	role := "primary"
	if db.Replica() {
		role = fmt.Sprintf("replica of %s", db.ReplicaPrimary())
	}
	log.Printf("serving %d triples (%d node shapes) on %s as %s (updates at /update, metrics at /metrics, traces at /trace/recent)",
		db.NumTriples(), db.Shapes().Len(), ln.Addr(), role)

	select {
	case err := <-errc:
		db.Close()
		return err
	case <-ctx.Done():
	}
	// Shutdown order: stop advertising readiness first, hold the
	// listener open for the grace period so load balancers observe the
	// 503 and deregister, then drain in-flight requests, then checkpoint
	// so the snapshot includes every acknowledged commit and the next
	// start replays an empty log.
	handler.SetReady(false)
	log.Printf("shutting down: /readyz now 503, draining in-flight requests (grace %v, up to %v)",
		opts.drainGrace, opts.drainTimeout)
	if opts.drainGrace > 0 {
		time.Sleep(opts.drainGrace)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("server: shutdown: %v", err)
	}
	if db.Durable() {
		if st, err := db.Checkpoint(); err != nil {
			log.Printf("server: final checkpoint: %v", err)
		} else {
			log.Printf("checkpointed generation %d (%d triples) in %v", st.Generation, st.Triples, st.Duration)
		}
	}
	if err := db.Close(); err != nil {
		log.Printf("server: close: %v", err)
	}
	log.Print("server: stopped")
	return nil
}

// newHTTPServer is the single place this binary constructs an
// http.Server, so every listener — SPARQL server, replica, router —
// carries the same slow-loris protections: ReadHeaderTimeout bounds how
// long a client may dribble request headers, IdleTimeout reclaims
// keep-alive connections. No WriteTimeout: large CONSTRUCT/stats
// exports stream for longer than any sensible constant; query execution
// itself is already bounded by -query-timeout.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// runRouter serves the health-checked read router: no local dataset,
// just repl.Router in front of the primary and its replicas, plus the
// router's own metrics at /router/metrics (plain /metrics is a read and
// proxies to a backend like any other).
func runRouter(ctx context.Context, opts *options, started chan<- string) error {
	var replicas []string
	for _, r := range strings.Split(opts.routerReplicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			replicas = append(replicas, r)
		}
	}
	rt, err := repl.NewRouter(repl.RouterConfig{
		Primary:       opts.routerPrimary,
		Replicas:      replicas,
		MaxStaleness:  opts.maxStaleness,
		CheckInterval: opts.checkInterval,
		Logf:          log.Printf,
	})
	if err != nil {
		return err
	}
	collector := obsv.NewCollector(0)
	collector.RegisterGauge(obsv.MetricRouterEjections,
		"Backends ejected from read routing (unready, unreachable, or beyond the staleness bound).",
		func() float64 { return float64(rt.Status().Ejections) })
	collector.RegisterGauge(obsv.MetricRouterStaleReads,
		"Reads served from a replica beyond the staleness bound, marked with the X-Repl-Stale header.",
		func() float64 { return float64(rt.Status().StaleReads) })
	collector.RegisterGauge(obsv.MetricRouterReadsPrim,
		"Reads routed to the primary (failover or no healthy replica).",
		func() float64 { return float64(rt.Status().PrimaryReads) })
	collector.RegisterGauge(obsv.MetricRouterReadsRepl,
		"Reads routed to healthy replicas.",
		func() float64 { return float64(rt.Status().ReplicaReads) })
	mux := http.NewServeMux()
	mux.HandleFunc("/router/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = collector.WritePrometheus(w)
	})
	mux.Handle("/", rt)

	checkCtx, stopChecks := context.WithCancel(context.Background())
	defer stopChecks()
	go func() { _ = rt.Run(checkCtx) }()

	srv := newHTTPServer(mux)
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	if started != nil {
		started <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("routing reads over %d replicas (primary %s, max staleness %v) on %s",
		len(replicas), opts.routerPrimary, opts.maxStaleness, ln.Addr())
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("server: router shutdown: %v", err)
	}
	log.Print("server: router stopped")
	return nil
}

// openDB builds the DB for the configured role: a replica bootstraps
// from its primary; everything else loads or recovers local data.
func openDB(opts *options) (*rdfshapes.DB, error) {
	syncPolicy, err := rdfshapes.ParseSyncPolicy(opts.fsyncMode)
	if err != nil {
		return nil, err
	}
	// The collector goes in as an open-time option so that recovery
	// counters (replayed records, torn-tail truncations, snapshot
	// fallbacks) land in the same registry /metrics serves.
	collector := obsv.NewCollector(opts.tracebuf)
	baseOpts := []rdfshapes.Option{
		rdfshapes.WithOpsBudget(opts.budget),
		rdfshapes.WithAutoCompact(opts.compactAt),
		rdfshapes.WithDriftThreshold(opts.driftAt),
		rdfshapes.WithAdaptiveReplan(opts.adaptiveAt),
		rdfshapes.WithLimits(rdfshapes.Limits{MaxRows: opts.maxRows, MaxIntermediate: opts.maxIntermediate}),
		rdfshapes.WithParallelism(opts.parallelism),
		rdfshapes.WithCollector(collector),
	}
	if opts.replicaOf != "" {
		switch {
		case opts.dataDir != "":
			return nil, fmt.Errorf("-replica-of is incompatible with -data-dir: a replica's durable state is the primary's")
		case opts.dataFile != "" || opts.dataset != "":
			return nil, fmt.Errorf("-replica-of is incompatible with -data/-dataset: a replica bootstraps from its primary")
		case opts.shards > 1:
			return nil, fmt.Errorf("-replica-of is incompatible with -shards")
		}
		return rdfshapes.OpenReplica(opts.replicaOf,
			append(baseOpts, rdfshapes.WithReplicaPollInterval(opts.replicaPoll))...)
	}
	localOpts := append(baseOpts,
		rdfshapes.WithShards(opts.shards),
		rdfshapes.WithSyncPolicy(syncPolicy))
	if opts.dataDir != "" {
		has, err := wal.HasState(opts.dataDir, nil)
		if err != nil {
			return nil, err
		}
		if has || (opts.dataFile == "" && opts.dataset == "") {
			// Existing state wins over any seed source: silently
			// re-seeding a live directory would shadow durable data.
			if opts.dataFile != "" || opts.dataset != "" {
				log.Printf("%s already holds durable state; recovering it and ignoring the seed source", opts.dataDir)
			}
			return rdfshapes.Open(opts.dataDir, localOpts...)
		}
		// Empty directory with a seed source: load it and attach
		// durability, writing the loaded dataset as generation one.
		localOpts = append(localOpts, rdfshapes.WithDurability(opts.dataDir))
	}
	if opts.dataFile != "" {
		f, err := os.Open(opts.dataFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(opts.dataFile, ".snap") {
			return rdfshapes.LoadSnapshot(f, localOpts...)
		}
		return rdfshapes.LoadNTriples(f, localOpts...)
	}
	switch opts.dataset {
	case "lubm":
		return rdfshapes.Load(lubm.Generate(lubm.Config{Universities: opts.scale, Seed: opts.seed}),
			append(localOpts, rdfshapes.WithShapesGraph(lubm.Shapes()))...)
	case "watdiv":
		return rdfshapes.Load(watdiv.Generate(watdiv.Config{Products: opts.scale * 1000, Seed: opts.seed}),
			append(localOpts, rdfshapes.WithShapesGraph(watdiv.Shapes()))...)
	case "yago":
		return rdfshapes.Load(yago.Generate(yago.Config{Entities: opts.scale * 1000, Seed: opts.seed}), localOpts...)
	case "":
		return nil, fmt.Errorf("either -dataset, -data, -data-dir, -replica-of, or -router-primary is required")
	default:
		return nil, fmt.Errorf("unknown dataset %q", opts.dataset)
	}
}
