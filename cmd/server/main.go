// Command server runs an HTTP SPARQL endpoint over a dataset: load
// N-Triples (or a binary snapshot) or generate a benchmark dataset, then
// serve /sparql, /update (SPARQL UPDATE with live statistics
// maintenance; see docs/LIVE_UPDATES.md), /explain, /shapes, /stats,
// /healthz, plus the observability surface /metrics (Prometheus text
// format) and /trace/recent (per-query traces with estimated vs. actual
// cardinalities; see docs/OBSERVABILITY.md).
//
//	server -dataset lubm -scale 1 -addr :8080
//	server -data graph.nt -addr :8080 -tracebuf 1024
//	curl 'localhost:8080/sparql?query=SELECT...'
//	curl 'localhost:8080/update' -d 'update=INSERT DATA { <s> <p> <o> }'
//	curl 'localhost:8080/metrics'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"rdfshapes"
	"rdfshapes/internal/datagen/lubm"
	"rdfshapes/internal/datagen/watdiv"
	"rdfshapes/internal/datagen/yago"
	"rdfshapes/internal/obsv"
	"rdfshapes/internal/server"
)

func main() {
	dataset := flag.String("dataset", "", "generate a dataset: lubm, watdiv, or yago")
	dataFile := flag.String("data", "", "load N-Triples data (or a .snap snapshot) from a file")
	scale := flag.Int("scale", 1, "generator scale")
	seed := flag.Int64("seed", 7, "generator seed")
	addr := flag.String("addr", ":8080", "listen address")
	budget := flag.Int64("budget", 50<<20, "per-query operation budget (0 = unlimited)")
	tracebuf := flag.Int("tracebuf", obsv.DefaultRingSize, "query traces kept for /trace/recent")
	compactAt := flag.Int("compact-threshold", rdfshapes.DefaultCompactThreshold,
		"overlay size triggering background compaction (0 = never)")
	driftAt := flag.Int64("drift-threshold", rdfshapes.DefaultDriftThreshold,
		"statistics drift triggering background re-annotation (0 = never)")
	flag.Parse()

	db, err := open(*dataset, *dataFile, *scale, *seed, *budget, *compactAt, *driftAt)
	if err != nil {
		log.Fatal("server: ", err)
	}
	db.SetCollector(obsv.NewCollector(*tracebuf))
	log.Printf("serving %d triples (%d node shapes) on %s (updates at /update, metrics at /metrics, traces at /trace/recent)",
		db.NumTriples(), db.Shapes().Len(), *addr)
	if err := http.ListenAndServe(*addr, server.New(db)); err != nil {
		log.Fatal("server: ", err)
	}
}

func open(dataset, dataFile string, scale int, seed, budget int64, compactAt int, driftAt int64) (*rdfshapes.DB, error) {
	opts := []rdfshapes.Option{
		rdfshapes.WithOpsBudget(budget),
		rdfshapes.WithAutoCompact(compactAt),
		rdfshapes.WithDriftThreshold(driftAt),
	}
	if dataFile != "" {
		f, err := os.Open(dataFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(dataFile, ".snap") {
			return rdfshapes.LoadSnapshot(f, opts...)
		}
		return rdfshapes.LoadNTriples(f, opts...)
	}
	switch dataset {
	case "lubm":
		return rdfshapes.Load(lubm.Generate(lubm.Config{Universities: scale, Seed: seed}),
			append(opts, rdfshapes.WithShapesGraph(lubm.Shapes()))...)
	case "watdiv":
		return rdfshapes.Load(watdiv.Generate(watdiv.Config{Products: scale * 1000, Seed: seed}),
			append(opts, rdfshapes.WithShapesGraph(watdiv.Shapes()))...)
	case "yago":
		return rdfshapes.Load(yago.Generate(yago.Config{Entities: scale * 1000, Seed: seed}), opts...)
	case "":
		return nil, fmt.Errorf("either -dataset or -data is required")
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}
