// Command server runs an HTTP SPARQL endpoint over a dataset: load
// N-Triples (or a binary snapshot) or generate a benchmark dataset, then
// serve /sparql, /update (SPARQL UPDATE with live statistics
// maintenance; see docs/LIVE_UPDATES.md), /explain, /shapes, /stats,
// /healthz, plus the observability surface /metrics (Prometheus text
// format) and /trace/recent (per-query traces with estimated vs. actual
// cardinalities; see docs/OBSERVABILITY.md).
//
// Requests run under a query governor (docs/RESILIENCE.md): at most
// -max-concurrent queries execute at once (overload answers 503 with
// Retry-After), each query is bounded by -query-timeout or a client
// timeout= parameter, and -max-rows/-max-intermediate budgets turn
// runaway result sets into marked partial responses. SIGINT/SIGTERM
// flips /readyz to 503, drains in-flight requests, and — when a data
// directory is attached — checkpoints before exiting.
//
// With -data-dir the dataset is durable (docs/DURABILITY.md): every
// committed update is written to a checksummed write-ahead log before it
// is acknowledged (fsync policy under -fsync), POST /admin/checkpoint
// rotates the log into a fresh snapshot, and a restart recovers the
// directory — replaying the log and truncating any torn tail. An empty
// directory combined with -data/-dataset seeds it; a directory that
// already holds state is recovered, and the seed source is ignored.
//
//	server -dataset lubm -scale 1 -addr :8080
//	server -data graph.nt -data-dir /var/lib/rdfshapes -addr :8080
//	server -data-dir /var/lib/rdfshapes -fsync never
//	server -dataset lubm -query-timeout 5s -max-concurrent 32
//	curl 'localhost:8080/sparql?query=SELECT...&timeout=500ms'
//	curl 'localhost:8080/update' -d 'update=INSERT DATA { <s> <p> <o> }'
//	curl -X POST 'localhost:8080/admin/checkpoint'
//	curl 'localhost:8080/metrics'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"rdfshapes"
	"rdfshapes/internal/datagen/lubm"
	"rdfshapes/internal/datagen/watdiv"
	"rdfshapes/internal/datagen/yago"
	"rdfshapes/internal/obsv"
	"rdfshapes/internal/server"
	"rdfshapes/internal/wal"
)

func main() {
	dataset := flag.String("dataset", "", "generate a dataset: lubm, watdiv, or yago")
	dataFile := flag.String("data", "", "load N-Triples data (or a .snap snapshot) from a file")
	scale := flag.Int("scale", 1, "generator scale")
	seed := flag.Int64("seed", 7, "generator seed")
	addr := flag.String("addr", ":8080", "listen address")
	budget := flag.Int64("budget", 50<<20, "per-query operation budget (0 = unlimited)")
	tracebuf := flag.Int("tracebuf", obsv.DefaultRingSize, "query traces kept for /trace/recent")
	compactAt := flag.Int("compact-threshold", rdfshapes.DefaultCompactThreshold,
		"overlay size triggering background compaction (0 = never)")
	driftAt := flag.Int64("drift-threshold", rdfshapes.DefaultDriftThreshold,
		"statistics drift triggering background re-annotation (0 = never)")
	adaptiveAt := flag.Float64("adaptive-qerror", 0,
		"rolling q-error threshold past which a cached template plan is re-optimized against current statistics (<= 1 disables; see docs/BENCHMARKING.md)")
	maxConcurrent := flag.Int("max-concurrent", server.DefaultMaxConcurrent,
		"queries executing at once; excess requests wait -queue-wait then get 503 (<0 = unlimited)")
	queueWait := flag.Duration("queue-wait", server.DefaultQueueWait,
		"how long an arriving request waits for an execution slot before 503")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second,
		"per-query deadline, and the ceiling for client timeout= parameters (0 = none)")
	maxRows := flag.Int64("max-rows", 0,
		"result-row budget per query; overruns return a partial result marked truncated (0 = unlimited)")
	maxIntermediate := flag.Int64("max-intermediate", 0,
		"intermediate-binding budget per query; overruns return a partial result marked truncated (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for in-flight requests before giving up")
	parallelism := flag.Int("parallelism", runtime.GOMAXPROCS(0),
		"workers per query BGP (1 = serial execution; see docs/PERFORMANCE.md)")
	shards := flag.Int("shards", 0,
		"partition the dataset into N subject-hash shards with per-shard statistics and statistics-driven shard pruning (<= 1 = unsharded; see docs/SHARDING.md)")
	dataDir := flag.String("data-dir", "",
		"durability directory: WAL + snapshots; recovered on start, seeded from -data/-dataset when empty (see docs/DURABILITY.md)")
	fsyncMode := flag.String("fsync", "always",
		"WAL sync policy: always (acknowledged commits survive crashes) or never (faster, may lose recent commits)")
	flag.Parse()

	syncPolicy, err := rdfshapes.ParseSyncPolicy(*fsyncMode)
	if err != nil {
		log.Fatal("server: ", err)
	}
	// The collector goes in as an open-time option so that recovery
	// counters (replayed records, torn-tail truncations, snapshot
	// fallbacks) land in the same registry /metrics serves.
	collector := obsv.NewCollector(*tracebuf)
	db, err := open(*dataset, *dataFile, *dataDir, syncPolicy, *scale, *seed, *budget, *compactAt, *driftAt, *adaptiveAt, *parallelism, *shards,
		rdfshapes.Limits{MaxRows: *maxRows, MaxIntermediate: *maxIntermediate}, collector)
	if err != nil {
		log.Fatal("server: ", err)
	}
	if s, ok := db.DurabilityStats(); ok && s.Recovered {
		log.Printf("recovered %s: generation %d, %d WAL records replayed, %d torn tails truncated, %d snapshot fallbacks",
			*dataDir, s.Generation, s.RecordsReplayed, s.TornTruncations, s.SnapshotFallbacks)
	}

	handler := server.NewWithConfig(db, server.Config{
		MaxConcurrent: *maxConcurrent,
		QueueWait:     *queueWait,
		QueryTimeout:  *queryTimeout,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		// No WriteTimeout: large CONSTRUCT/stats exports stream for longer
		// than any sensible constant; query execution itself is already
		// bounded by -query-timeout.
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving %d triples (%d node shapes) on %s (updates at /update, metrics at /metrics, traces at /trace/recent)",
		db.NumTriples(), db.Shapes().Len(), *addr)

	select {
	case err := <-errc:
		log.Fatal("server: ", err)
	case <-ctx.Done():
	}
	stop()                  // a second signal kills immediately instead of waiting out the drain
	handler.SetReady(false) // /readyz answers 503 so load balancers stop routing
	log.Printf("shutting down: draining in-flight requests (up to %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("server: shutdown: %v", err)
	}
	if db.Durable() {
		// Checkpoint after the drain so the snapshot includes every
		// acknowledged commit and the next start replays an empty log.
		if st, err := db.Checkpoint(); err != nil {
			log.Printf("server: final checkpoint: %v", err)
		} else {
			log.Printf("checkpointed generation %d (%d triples) in %v", st.Generation, st.Triples, st.Duration)
		}
	}
	if err := db.Close(); err != nil {
		log.Printf("server: close: %v", err)
	}
	log.Print("server: stopped")
}

func open(dataset, dataFile, dataDir string, syncPolicy rdfshapes.SyncPolicy, scale int, seed, budget int64, compactAt int, driftAt int64, adaptiveAt float64, parallelism, shards int, limits rdfshapes.Limits, collector *obsv.Collector) (*rdfshapes.DB, error) {
	opts := []rdfshapes.Option{
		rdfshapes.WithShards(shards),
		rdfshapes.WithOpsBudget(budget),
		rdfshapes.WithAutoCompact(compactAt),
		rdfshapes.WithDriftThreshold(driftAt),
		rdfshapes.WithAdaptiveReplan(adaptiveAt),
		rdfshapes.WithLimits(limits),
		rdfshapes.WithParallelism(parallelism),
		rdfshapes.WithCollector(collector),
		rdfshapes.WithSyncPolicy(syncPolicy),
	}
	if dataDir != "" {
		has, err := wal.HasState(dataDir, nil)
		if err != nil {
			return nil, err
		}
		if has || (dataFile == "" && dataset == "") {
			// Existing state wins over any seed source: silently
			// re-seeding a live directory would shadow durable data.
			if dataFile != "" || dataset != "" {
				log.Printf("%s already holds durable state; recovering it and ignoring the seed source", dataDir)
			}
			return rdfshapes.Open(dataDir, opts...)
		}
		// Empty directory with a seed source: load it and attach
		// durability, writing the loaded dataset as generation one.
		opts = append(opts, rdfshapes.WithDurability(dataDir))
	}
	if dataFile != "" {
		f, err := os.Open(dataFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(dataFile, ".snap") {
			return rdfshapes.LoadSnapshot(f, opts...)
		}
		return rdfshapes.LoadNTriples(f, opts...)
	}
	switch dataset {
	case "lubm":
		return rdfshapes.Load(lubm.Generate(lubm.Config{Universities: scale, Seed: seed}),
			append(opts, rdfshapes.WithShapesGraph(lubm.Shapes()))...)
	case "watdiv":
		return rdfshapes.Load(watdiv.Generate(watdiv.Config{Products: scale * 1000, Seed: seed}),
			append(opts, rdfshapes.WithShapesGraph(watdiv.Shapes()))...)
	case "yago":
		return rdfshapes.Load(yago.Generate(yago.Config{Entities: scale * 1000, Seed: seed}), opts...)
	case "":
		return nil, fmt.Errorf("either -dataset, -data, or -data-dir is required")
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}
