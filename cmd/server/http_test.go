package main

import (
	"net/http"
	"testing"
	"time"
)

// TestHTTPServerTimeouts pins the slow-loris protections on the one
// http.Server constructor every serving mode uses: a client that never
// finishes its headers must be cut off, idle keep-alive connections
// must be reclaimed, and streaming responses must not be write-capped.
func TestHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer(http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 || srv.ReadHeaderTimeout > 30*time.Second {
		t.Errorf("ReadHeaderTimeout = %v, want a bound in (0, 30s]", srv.ReadHeaderTimeout)
	}
	if srv.IdleTimeout <= 0 {
		t.Errorf("IdleTimeout = %v, want > 0", srv.IdleTimeout)
	}
	if srv.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %v, want 0 (streaming responses outlive any constant)", srv.WriteTimeout)
	}
}
