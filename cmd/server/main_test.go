package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"rdfshapes"
)

// writeTestData writes an N-Triples file whose single predicate makes
// the cross-product query below expensive enough to still be in flight
// when the drain starts.
func writeTestData(t *testing.T, subjects int) string {
	t.Helper()
	var b strings.Builder
	for i := 0; i < subjects; i++ {
		fmt.Fprintf(&b, "<http://x/s%d> <http://x/p> <http://x/o%d> .\n", i, i)
	}
	path := filepath.Join(t.TempDir(), "data.nt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// startRun launches run with the given flags and returns the base URL.
func startRun(t *testing.T, ctx context.Context, args ...string) (base string, errc chan error) {
	t.Helper()
	fs := flag.NewFlagSet("server-test", flag.ContinueOnError)
	opts := registerFlags(fs)
	if err := fs.Parse(append([]string{"-addr", "127.0.0.1:0"}, args...)); err != nil {
		t.Fatal(err)
	}
	started := make(chan string, 1)
	errc = make(chan error, 1)
	go func() { errc <- run(ctx, opts, started) }()
	select {
	case addr := <-started:
		return "http://" + addr, errc
	case err := <-errc:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("run never started serving")
	}
	return "", nil
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", base)
}

// TestSigtermDrainCheckpointClose is the shutdown e2e: a real SIGTERM
// flips /readyz to 503 while the listener is still accepting (the drain
// grace), the in-flight query completes with a full 200 response, and
// the final checkpoint lands — the next open replays an empty log.
func TestSigtermDrainCheckpointClose(t *testing.T) {
	dataDir := t.TempDir()
	dataFile := writeTestData(t, 300)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	base, errc := startRun(t, ctx,
		"-data", dataFile, "-data-dir", dataDir,
		"-drain-grace", "600ms", "-query-timeout", "60s", "-budget", "0")
	waitReady(t, base)

	// One durable write before shutdown, so the final checkpoint has a
	// non-empty log to absorb.
	resp, err := http.PostForm(base+"/update",
		url.Values{"update": {`INSERT DATA { <http://x/marker> <http://x/p> <http://x/om> . }`}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// The in-flight query: a 301x301 cross product, fired just before
	// the signal; it must complete during the drain.
	type queryResult struct {
		status int
		body   string
		err    error
	}
	qc := make(chan queryResult, 1)
	go func() {
		q := `SELECT ?a ?b WHERE { ?a <http://x/p> ?x . ?b <http://x/p> ?y }`
		resp, err := http.Get(base + "/sparql?query=" + url.QueryEscape(q))
		if err != nil {
			qc <- queryResult{err: err}
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		qc <- queryResult{status: resp.StatusCode, body: string(body), err: err}
	}()
	time.Sleep(30 * time.Millisecond)

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// During the drain grace the listener still accepts, but /readyz
	// answers 503 on a fresh connection — the deregistration signal.
	sawNotReady := false
	graceDeadline := time.Now().Add(550 * time.Millisecond)
	for time.Now().Before(graceDeadline) {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			break // listener closed: grace over
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			sawNotReady = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawNotReady {
		t.Error("/readyz never answered 503 while the listener was still open")
	}

	qr := <-qc
	if qr.err != nil {
		t.Fatalf("in-flight query failed during drain: %v", qr.err)
	}
	if qr.status != http.StatusOK {
		t.Fatalf("in-flight query = %d during drain: %s", qr.status, qr.body)
	}
	if !strings.Contains(qr.body, "http://x/s299") {
		t.Error("in-flight query response is missing expected bindings")
	}

	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run never exited after SIGTERM")
	}

	// The final checkpoint landed: recovery replays an empty log and the
	// pre-shutdown write is in the snapshot.
	db, err := rdfshapes.Open(dataDir)
	if err != nil {
		t.Fatalf("reopening data dir: %v", err)
	}
	defer db.Close()
	st, ok := db.DurabilityStats()
	if !ok {
		t.Fatal("reopened DB is not durable")
	}
	if !st.Recovered || st.RecordsReplayed != 0 {
		t.Errorf("recovery stats = %+v, want recovered with 0 replayed records (checkpoint absorbed the log)", st)
	}
	if st.Generation < 2 {
		t.Errorf("generation = %d, want >= 2 after the final checkpoint", st.Generation)
	}
	ok2, err := db.Ask(`ASK { <http://x/marker> <http://x/p> <http://x/om> }`)
	if err != nil || !ok2 {
		t.Errorf("pre-shutdown write missing after recovery (ok=%v err=%v)", ok2, err)
	}
}

// TestReplicaAndRouterModes wires the three roles through the real flag
// surface: a durable primary, a -replica-of follower, and a
// -router-primary router spreading reads.
func TestReplicaAndRouterModes(t *testing.T) {
	dataFile := writeTestData(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	primary, perr := startRun(t, ctx, "-data", dataFile, "-data-dir", t.TempDir())
	waitReady(t, primary)
	replica, rerr := startRun(t, ctx, "-replica-of", primary, "-replica-poll", "5ms")
	waitReady(t, replica)
	router, terr := startRun(t, ctx,
		"-router-primary", primary, "-router-replicas", replica,
		"-max-staleness", "10s", "-check-interval", "10ms")

	// Write through the router; it must land on the primary and reach
	// the replica through the log stream.
	resp, err := http.PostForm(router+"/update",
		url.Values{"update": {`INSERT DATA { <http://x/via-router> <http://x/p> <http://x/ov> . }`}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("router update = %d: %s", resp.StatusCode, body)
	}
	resp.Body.Close()

	q := "/sparql?query=" + url.QueryEscape(`SELECT ?s WHERE { <http://x/via-router> <http://x/p> ?s }`)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(replica + q)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && strings.Contains(string(body), "http://x/ov") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never saw the routed write: %d %s", resp.StatusCode, body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A read through the router succeeds (from whichever healthy
	// backend), and the router's own metrics endpoint serves.
	resp, err = http.Get(router + q)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "http://x/ov") {
		t.Fatalf("router read = %d: %s", resp.StatusCode, body)
	}
	resp, err = http.Get(router + "/router/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "rdfshapes_router") {
		t.Fatalf("router metrics = %d: %s", resp.StatusCode, body)
	}

	// Writes on the replica are refused with 403.
	resp, err = http.PostForm(replica+"/update",
		url.Values{"update": {`INSERT DATA { <http://x/nope> <http://x/p> <http://x/o> . }`}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica update = %d, want 403", resp.StatusCode)
	}

	cancel()
	for _, c := range []chan error{perr, rerr, terr} {
		select {
		case err := <-c:
			if err != nil {
				t.Errorf("run returned %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("a run never exited after cancel")
		}
	}
}
