// Command datagen emits the generated benchmark datasets and their SHACL
// shapes graphs to files, for inspection or for use with external tools.
//
//	datagen -dataset lubm -scale 1 -out lubm.nt -shapes lubm-shapes.ttl
package main

import (
	"flag"
	"fmt"
	"os"

	"rdfshapes/internal/annotator"
	"rdfshapes/internal/datagen/lubm"
	"rdfshapes/internal/datagen/watdiv"
	"rdfshapes/internal/datagen/yago"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
	"rdfshapes/internal/store"
)

func main() {
	dataset := flag.String("dataset", "lubm", "dataset: lubm, watdiv, or yago")
	scale := flag.Int("scale", 1, "generator scale (universities / products÷1000 / entities÷1000)")
	seed := flag.Int64("seed", 7, "generator seed")
	out := flag.String("out", "", "write N-Triples data to this file (default stdout)")
	shapesOut := flag.String("shapes", "", "write the annotated shapes graph (Turtle) to this file")
	flag.Parse()

	if err := run(*dataset, *scale, *seed, *out, *shapesOut); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale int, seed int64, out, shapesOut string) error {
	var g rdf.Graph
	var shapes *shacl.ShapesGraph
	var pm *rdf.PrefixMap
	switch dataset {
	case "lubm":
		g = lubm.Generate(lubm.Config{Universities: scale, Seed: seed})
		shapes, pm = lubm.Shapes(), lubm.Prefixes()
	case "watdiv":
		g = watdiv.Generate(watdiv.Config{Products: scale * 1000, Seed: seed})
		shapes, pm = watdiv.Shapes(), watdiv.Prefixes()
	case "yago":
		g = yago.Generate(yago.Config{Entities: scale * 1000, Seed: seed})
		pm = yago.Prefixes()
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rdf.WriteNTriples(w, g); err != nil {
		return err
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d triples to %s\n", len(g), out)
	}

	if shapesOut != "" {
		st := store.Load(g)
		if shapes == nil {
			inferred, err := shacl.InferShapes(st)
			if err != nil {
				return err
			}
			shapes = inferred
		}
		if err := annotator.Annotate(shapes, st); err != nil {
			return err
		}
		f, err := os.Create(shapesOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := shapes.WriteTurtle(f, pm); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d node shapes (%d property shapes) to %s\n",
			shapes.Len(), shapes.PropertyShapeCount(), shapesOut)
	}
	return nil
}
