package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
)

func TestRunWritesDataAndShapes(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "data.nt")
	shapesOut := filepath.Join(dir, "shapes.ttl")
	for _, dataset := range []string{"lubm", "watdiv", "yago"} {
		if err := run(dataset, 1, 7, out, shapesOut); err != nil {
			t.Fatalf("%s: %v", dataset, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		g, err := rdf.ParseNTriples(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: output is not valid N-Triples: %v", dataset, err)
		}
		if len(g) == 0 {
			t.Fatalf("%s: empty output", dataset)
		}
		sf, err := os.Open(shapesOut)
		if err != nil {
			t.Fatal(err)
		}
		sg, err := shacl.ParseTurtle(sf)
		sf.Close()
		if err != nil {
			t.Fatalf("%s: shapes output is not parseable Turtle: %v", dataset, err)
		}
		if sg.Len() == 0 || !sg.Annotated() {
			t.Fatalf("%s: shapes not annotated (%d shapes)", dataset, sg.Len())
		}
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("nosuch", 1, 7, "", ""); err == nil || !strings.Contains(err.Error(), "unknown dataset") {
		t.Errorf("err = %v", err)
	}
}
