package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testQuery = `PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT * WHERE { ?x a ub:FullProfessor . ?x ub:name ?n }`

func TestRunQueryOverGeneratedDataset(t *testing.T) {
	if err := run("lubm", "", 1, 7, testQuery, "", false, 5, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunExplain(t *testing.T) {
	if err := run("lubm", "", 1, 7, testQuery, "", true, 5, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidateAndShapesOut(t *testing.T) {
	dir := t.TempDir()
	shapesOut := filepath.Join(dir, "shapes.ttl")
	if err := run("watdiv", "", 1, 7, "", "", false, 0, true, shapesOut); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(shapesOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "sh:count") {
		t.Error("shapes output missing statistics")
	}
}

func TestRunQueryFile(t *testing.T) {
	dir := t.TempDir()
	qf := filepath.Join(dir, "q.rq")
	if err := os.WriteFile(qf, []byte(testQuery), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("lubm", "", 1, 7, "", qf, false, 5, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunDataFile(t *testing.T) {
	dir := t.TempDir()
	df := filepath.Join(dir, "data.nt")
	data := `<http://x/a> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/T> .
<http://x/a> <http://x/p> "v" .
`
	if err := os.WriteFile(df, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	q := `SELECT * WHERE { ?s a <http://x/T> . ?s <http://x/p> ?v }`
	if err := run("", df, 1, 7, q, "", false, 5, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 1, 7, "", "", false, 0, false, ""); err == nil {
		t.Error("missing dataset accepted")
	}
	if err := run("nosuch", "", 1, 7, "", "", false, 0, false, ""); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("lubm", "", 1, 7, "not sparql", "", false, 0, false, ""); err == nil {
		t.Error("bad query accepted")
	}
}
