// Command shapestats loads or generates an RDF dataset, annotates its
// SHACL shapes with statistics, and answers SPARQL queries with
// shape-statistics-optimized plans.
//
// Examples:
//
//	# run a query over a generated LUBM dataset, explaining the plan
//	shapestats -dataset lubm -explain -query 'PREFIX ub: <...> SELECT ...'
//
//	# load N-Triples from a file and emit the annotated shapes graph
//	shapestats -data graph.nt -shapes-out shapes.ttl
//
//	# validate the data against its shapes
//	shapestats -dataset watdiv -validate
package main

import (
	"flag"
	"fmt"
	"os"

	"rdfshapes"
	"rdfshapes/internal/datagen/lubm"
	"rdfshapes/internal/datagen/watdiv"
	"rdfshapes/internal/datagen/yago"
	"rdfshapes/internal/rdf"
)

func main() {
	dataset := flag.String("dataset", "", "generate a dataset: lubm, watdiv, or yago")
	dataFile := flag.String("data", "", "load N-Triples data from a file instead")
	scale := flag.Int("scale", 1, "generator scale (universities / products÷1000 / entities÷1000)")
	seed := flag.Int64("seed", 7, "generator seed")
	query := flag.String("query", "", "SPARQL query to run")
	queryFile := flag.String("query-file", "", "file containing the SPARQL query")
	explain := flag.Bool("explain", false, "print the query plan(s) instead of results")
	limit := flag.Int("limit", 20, "maximum result rows to print (0 = all)")
	validate := flag.Bool("validate", false, "validate the data against the shapes")
	shapesOut := flag.String("shapes-out", "", "write the annotated shapes graph (Turtle) to this file")
	flag.Parse()

	if err := run(*dataset, *dataFile, *scale, *seed, *query, *queryFile, *explain, *limit, *validate, *shapesOut); err != nil {
		fmt.Fprintln(os.Stderr, "shapestats:", err)
		os.Exit(1)
	}
}

func run(dataset, dataFile string, scale int, seed int64, query, queryFile string, explain bool, limit int, validate bool, shapesOut string) error {
	db, err := open(dataset, dataFile, scale, seed)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d triples, %d node shapes, %d property shapes\n",
		db.NumTriples(), db.Shapes().Len(), db.Shapes().PropertyShapeCount())

	if shapesOut != "" {
		f, err := os.Create(shapesOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := db.WriteShapesTurtle(f); err != nil {
			return err
		}
		fmt.Printf("wrote annotated shapes to %s\n", shapesOut)
	}

	if validate {
		vs := db.Validate(20)
		if len(vs) == 0 {
			fmt.Println("validation: data conforms to the shapes graph")
		} else {
			fmt.Printf("validation: %d violations (showing up to 20)\n", len(vs))
			for _, v := range vs {
				fmt.Println(" ", v)
			}
		}
	}

	if queryFile != "" {
		b, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		query = string(b)
	}
	if query == "" {
		return nil
	}

	if explain {
		for _, approach := range []string{"GS", "SS"} {
			plan, err := db.Explain(query, approach)
			if err != nil {
				return err
			}
			fmt.Println(plan)
		}
		est, err := db.EstimateCount(query)
		if err != nil {
			return err
		}
		fmt.Printf("estimated result cardinality: %.0f\n", est)
		return nil
	}

	res, err := db.Query(query)
	if err != nil {
		return err
	}
	fmt.Printf("%d results\n", len(res.Rows))
	for i, row := range res.Rows {
		if limit > 0 && i >= limit {
			fmt.Printf("... (%d more)\n", len(res.Rows)-limit)
			break
		}
		for _, v := range res.Vars {
			fmt.Printf("  ?%s = %s", v, row[v])
		}
		fmt.Println()
	}
	return nil
}

func open(dataset, dataFile string, scale int, seed int64) (*rdfshapes.DB, error) {
	if dataFile != "" {
		f, err := os.Open(dataFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rdfshapes.LoadNTriples(f)
	}
	var g rdf.Graph
	var opts []rdfshapes.Option
	switch dataset {
	case "lubm":
		g = lubm.Generate(lubm.Config{Universities: scale, Seed: seed})
		opts = append(opts, rdfshapes.WithShapesGraph(lubm.Shapes()))
	case "watdiv":
		g = watdiv.Generate(watdiv.Config{Products: scale * 1000, Seed: seed})
		opts = append(opts, rdfshapes.WithShapesGraph(watdiv.Shapes()))
	case "yago":
		g = yago.Generate(yago.Config{Entities: scale * 1000, Seed: seed})
		// YAGO shapes are inferred, as in the paper (SHACLGEN analog).
	case "":
		return nil, fmt.Errorf("either -dataset or -data is required")
	default:
		return nil, fmt.Errorf("unknown dataset %q (want lubm, watdiv, or yago)", dataset)
	}
	return rdfshapes.Load(g, opts...)
}
