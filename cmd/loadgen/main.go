// Command loadgen replays a weighted, templated query mix at a target
// QPS against a running cmd/server, optionally interleaved with a SPARQL
// UPDATE stream, and writes a machine-readable BENCH_<n>.json report —
// the repo's perf-trajectory format. docs/BENCHMARKING.md documents the
// mix file format, the report schema, and methodology.
//
//	loadgen -url http://localhost:8080 -mix lubm -scale 1 -qps 200 -duration 30s
//	loadgen -mix watdiv -qps 500 -update-interval 100ms -out BENCH_2.json
//	loadgen -mix custom.json -zipf 1.0 -seed 42
//	loadgen -url http://primary:8080,http://replica1:8081,http://replica2:8082 -qps 300
//	loadgen -check BENCH_1.json BENCH_2.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rdfshapes/internal/loadgen"
)

func main() {
	baseURL := flag.String("url", "http://localhost:8080",
		"server base URL, or a comma-separated list; reads round-robin across all, writes and metric scrapes go to the first (the primary)")
	mixName := flag.String("mix", "lubm", "query mix: lubm, watdiv, or a JSON mix file path")
	scale := flag.Int("scale", 1, "generator scale of the served dataset (bounds built-in mix parameter spaces)")
	qps := flag.Float64("qps", 100, "target dispatch rate (open loop)")
	duration := flag.Duration("duration", 30*time.Second, "measurement window")
	warmup := flag.Duration("warmup", 2*time.Second, "warmup before measurement (requests run but are not counted)")
	concurrency := flag.Int("concurrency", 16, "in-flight query cap; saturated ticks are counted as skipped, not queued")
	timeout := flag.Duration("timeout", 10*time.Second, "per-query deadline (passed to the server as timeout=)")
	zipfS := flag.Float64("zipf", 0.8, "template-selection rank-skew exponent (0 = uniform by weight)")
	seed := flag.Int64("seed", 1, "PRNG seed; equal seeds replay equal request sequences")
	updateInterval := flag.Duration("update-interval", 0, "cadence of the concurrent SPARQL UPDATE stream (0 = no updates)")
	updateBatch := flag.Int("update-batch", 50, "triples per INSERT DATA operation in the update stream")
	out := flag.String("out", "", "report path; empty auto-numbers BENCH_<n>.json in the current directory")
	wait := flag.Duration("wait", 10*time.Second, "how long to poll /readyz for the server before starting")
	max5xx := flag.Int64("max-5xx", -1, "exit non-zero when 5xx responses exceed this count (<0 = don't check)")
	check := flag.Bool("check", false, "validate BENCH report files given as arguments instead of running")
	compare := flag.Bool("compare", false, "compare two BENCH report arguments (baseline, candidate): print per-template p50/p95 deltas, exit non-zero on regressions beyond -noise")
	noise := flag.Float64("noise", 0.15, "relative latency-regression threshold for -compare (0.15 = +15%; movement under 0.5ms never counts)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("loadgen: -compare needs exactly two report files: baseline candidate")
		}
		deltas, err := loadgen.CompareFiles(flag.Arg(0), flag.Arg(1), *noise)
		if err != nil {
			log.Fatal("loadgen: ", err)
		}
		fmt.Printf("%-24s %10s %10s %8s %10s %10s %8s\n",
			"template", "p50 base", "p50 cand", "Δp50", "p95 base", "p95 cand", "Δp95")
		for _, d := range deltas {
			mark := ""
			if d.Regressed {
				mark = "  REGRESSED"
			}
			fmt.Printf("%-24s %9.2fms %9.2fms %+7.1f%% %9.2fms %9.2fms %+7.1f%%%s\n",
				d.Name, d.BaseP50, d.CandP50, d.P50Pct, d.BaseP95, d.CandP95, d.P95Pct, mark)
		}
		if regs := loadgen.Regressions(deltas); len(regs) > 0 {
			log.Printf("loadgen: %d regression(s) beyond the %.0f%% noise threshold", len(regs), *noise*100)
			os.Exit(1)
		}
		return
	}

	if *check {
		if flag.NArg() == 0 {
			log.Fatal("loadgen: -check needs report file arguments")
		}
		failed := false
		for _, path := range flag.Args() {
			if err := loadgen.CheckFile(path); err != nil {
				log.Printf("loadgen: %v", err)
				failed = true
			} else {
				fmt.Printf("%s: ok\n", path)
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	mix, err := loadMix(*mixName, *scale)
	if err != nil {
		log.Fatal("loadgen: ", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var urls []string
	for _, u := range strings.Split(*baseURL, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatal("loadgen: -url lists no servers")
	}
	for _, u := range urls {
		if err := waitReady(ctx, u, *wait); err != nil {
			log.Fatal("loadgen: ", err)
		}
	}

	report, err := loadgen.Run(ctx, loadgen.Options{
		BaseURL:        urls[0],
		BaseURLs:       urls,
		Mix:            mix,
		QPS:            *qps,
		Duration:       *duration,
		Warmup:         *warmup,
		Concurrency:    *concurrency,
		Timeout:        *timeout,
		Seed:           *seed,
		ZipfS:          *zipfS,
		UpdateInterval: *updateInterval,
		UpdateBatch:    *updateBatch,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatal("loadgen: ", err)
	}
	if err := report.Validate(); err != nil {
		log.Fatal("loadgen: produced an invalid report: ", err)
	}

	path := *out
	if path == "" {
		path, err = loadgen.NextBenchPath(".")
		if err != nil {
			log.Fatal("loadgen: ", err)
		}
	}
	if err := report.WriteFile(path); err != nil {
		log.Fatal("loadgen: ", err)
	}

	c := report.Counts
	log.Printf("wrote %s: %d requests at %.1f qps (target %.0f), ok %d (truncated %d), rejected %d, timeouts %d, 4xx %d, 5xx %d, transport %d (resets %d, timeouts %d, body %d), skipped %d",
		path, c.Requests, report.AchievedQPS, report.TargetQPS,
		c.OK, c.Truncated, c.Rejected, c.Timeouts, c.ClientErrors, c.ServerErrors,
		c.TransportErrors, c.TransportResets, c.TransportTimeouts, c.TransportBody, c.Skipped)
	log.Printf("latency ms: p50 %.2f p95 %.2f p99 %.2f max %.2f; trace q-error: p50 %.2f p95 %.2f over %d samples; adaptive replans %g",
		report.Latency.P50MS, report.Latency.P95MS, report.Latency.P99MS, report.Latency.MaxMS,
		report.QError.TraceP50, report.QError.TraceP95, report.QError.TraceSamples, report.AdaptiveReplans)
	if report.Updates.Requests > 0 {
		log.Printf("updates: %d requests (%d errors), %d triples inserted, %d deleted",
			report.Updates.Requests, report.Updates.Errors, report.Updates.Inserted, report.Updates.Deleted)
	}
	if *max5xx >= 0 && c.ServerErrors > *max5xx {
		log.Fatalf("loadgen: %d 5xx responses exceed -max-5xx %d", c.ServerErrors, *max5xx)
	}
}

// loadMix resolves -mix: a built-in name or a JSON mix file path.
func loadMix(name string, scale int) (*loadgen.Mix, error) {
	if strings.HasSuffix(name, ".json") {
		return loadgen.ReadMixFile(name)
	}
	return loadgen.BuiltinMix(name, scale)
}

// waitReady polls /readyz until the server answers 200 or the budget
// runs out, so scripts can start server and loadgen back to back.
func waitReady(ctx context.Context, baseURL string, budget time.Duration) error {
	if budget <= 0 {
		return nil
	}
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %v", baseURL, budget)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
