// Command repro regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md's per-experiment index):
//
//	T2   Table 2a/2b — GS vs SS join ordering of the example query
//	T3   Table 3 — dataset characteristics
//	F4a  Figure 4a — LUBM query runtimes, 6 approaches
//	F4b  Figure 4b — YAGO-4 query runtimes
//	F4c  Figure 4c — LUBM q-errors, 5 estimators
//	F4d  Figure 4d — YAGO-4 q-errors
//	F4e  Figure 4e — LUBM estimated vs true plan cost (SS, GS)
//	F4f  Figure 4f — YAGO-4 estimated vs true plan cost
//	A1   extended-version appendix — WatDiv runtimes and q-errors
//	P1   preprocessing time and artifact size comparison
//	P2   query planning latency (the paper's "<20 ms" claim)
//
// Usage:
//
//	repro [-exp all|T2|T3|F4a|...] [-scale small|medium] [-runs N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rdfshapes/internal/bench"
	"rdfshapes/internal/datagen/watdiv"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (T2, T3, F4a..F4f, A1, P1, or all)")
	scaleFlag := flag.String("scale", "small", "dataset scale: small or medium")
	runs := flag.Int("runs", bench.DefaultRuns, "shuffled executions per query and approach")
	seed := flag.Int64("seed", 1, "shuffle seed")
	csvDir := flag.String("csv", "", "also write each experiment's series as CSV into this directory")
	flag.Parse()

	scale := bench.Small
	switch *scaleFlag {
	case "small":
	case "medium":
		scale = bench.Medium
	default:
		fmt.Fprintf(os.Stderr, "repro: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	cfg := bench.RunConfig{Runs: *runs, Seed: *seed}

	if err := run(strings.ToUpper(*exp), scale, cfg, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(exp string, scale bench.Scale, cfg bench.RunConfig, csvDir string) error {
	saveCSV := func(name string, write func(io.Writer) error) error {
		if csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(csvDir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return write(f)
	}
	want := func(ids ...string) bool {
		if exp == "ALL" {
			return true
		}
		for _, id := range ids {
			if exp == strings.ToUpper(id) {
				return true
			}
		}
		return false
	}

	var ds struct {
		lubm, watdiv, yago *bench.Dataset
	}
	need := func(name string) (*bench.Dataset, error) {
		var err error
		switch name {
		case "LUBM":
			if ds.lubm == nil {
				ds.lubm, err = bench.LUBMDataset(scale)
			}
			return ds.lubm, err
		case "WatDiv":
			if ds.watdiv == nil {
				ds.watdiv, err = bench.WatDivDataset(scale)
			}
			return ds.watdiv, err
		default:
			if ds.yago == nil {
				ds.yago, err = bench.YAGODataset(scale)
			}
			return ds.yago, err
		}
	}

	if want("T2") {
		d, err := need("LUBM")
		if err != nil {
			return err
		}
		t2, err := bench.Table2Experiment(d, cfg)
		if err != nil {
			return err
		}
		section("T2: Table 2 — join ordering of the example query Q (LUBM)")
		fmt.Print(bench.FormatTable2(t2))
	}
	if want("T3") {
		l, err := need("LUBM")
		if err != nil {
			return err
		}
		w, err := need("WatDiv")
		if err != nil {
			return err
		}
		y, err := need("YAGO")
		if err != nil {
			return err
		}
		// WATDIV-L appears only in Table 3, as in the paper; generate it
		// at ~4× the WatDiv scale without building planner artifacts.
		largeProducts := 6000
		if scale == bench.Medium {
			largeProducts = 20000
		}
		large := bench.Table3Extra("WATDIV-L",
			watdiv.Generate(watdiv.Config{Products: largeProducts, Seed: 11}))
		rows := bench.Table3(l, w)
		rows = append(rows, large, bench.Table3(y)[0])
		section("T3: Table 3 — dataset characteristics")
		fmt.Print(bench.FormatTable3(rows))
		if err := saveCSV("table3.csv", func(w io.Writer) error {
			return bench.WriteTable3CSV(w, rows)
		}); err != nil {
			return err
		}
	}

	type figure struct {
		id, dataset, kind, title string
	}
	figures := []figure{
		{"F4a", "LUBM", "runtime", "Figure 4a — query runtime in LUBM (ms, mean±std over shuffled runs)"},
		{"F4b", "YAGO", "runtime", "Figure 4b — query runtime in YAGO-4"},
		{"F4c", "LUBM", "qerror", "Figure 4c — q-error in LUBM"},
		{"F4d", "YAGO", "qerror", "Figure 4d — q-error in YAGO-4"},
		{"F4e", "LUBM", "cost", "Figure 4e — estimated vs true plan cost in LUBM"},
		{"F4f", "YAGO", "cost", "Figure 4f — estimated vs true plan cost in YAGO-4"},
	}
	for _, f := range figures {
		if !want(f.id) {
			continue
		}
		d, err := need(f.dataset)
		if err != nil {
			return err
		}
		section(f.id + ": " + f.title)
		switch f.kind {
		case "runtime":
			rs, err := bench.RuntimeExperiment(d, cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatRuntime(rs))
			fmt.Println()
			fmt.Print(bench.FormatWinners(bench.Winners(rs)))
			if err := printTraceSummary(d, cfg); err != nil {
				return err
			}
			if err := saveCSV(f.id+"-runtime.csv", func(w io.Writer) error {
				return bench.WriteRuntimeCSV(w, rs)
			}); err != nil {
				return err
			}
		case "qerror":
			qs, err := bench.QErrorExperiment(d, cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatQError(qs))
			fmt.Println()
			fmt.Print(bench.FormatQErrorBuckets(bench.QErrorBuckets(qs)))
			if err := saveCSV(f.id+"-qerror.csv", func(w io.Writer) error {
				return bench.WriteQErrorCSV(w, qs)
			}); err != nil {
				return err
			}
		case "cost":
			cs, err := bench.CostExperiment(d, cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatCost(cs))
			if err := saveCSV(f.id+"-cost.csv", func(w io.Writer) error {
				return bench.WriteCostCSV(w, cs)
			}); err != nil {
				return err
			}
		}
	}

	if want("A1") {
		d, err := need("WatDiv")
		if err != nil {
			return err
		}
		section("A1: appendix — query runtime in WatDiv")
		rs, err := bench.RuntimeExperiment(d, cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatRuntime(rs))
		fmt.Println()
		fmt.Print(bench.FormatWinners(bench.Winners(rs)))
		if err := printTraceSummary(d, cfg); err != nil {
			return err
		}
		fmt.Println()
		qs, err := bench.QErrorExperiment(d, cfg)
		if err != nil {
			return err
		}
		fmt.Println("A1: appendix — q-error in WatDiv")
		fmt.Print(bench.FormatQError(qs))
	}
	if want("P1") {
		l, err := need("LUBM")
		if err != nil {
			return err
		}
		w, err := need("WatDiv")
		if err != nil {
			return err
		}
		y, err := need("YAGO")
		if err != nil {
			return err
		}
		section("P1: preprocessing time and artifact sizes")
		fmt.Print(bench.FormatPrep(l, w, y))
	}
	if want("P2") {
		l, err := need("LUBM")
		if err != nil {
			return err
		}
		section("P2: query planning latency (paper: always < 20 ms)")
		rs, err := bench.PlanningTimeExperiment(l, cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatPlanningTime(rs))
		if err := saveCSV("p2-planning.csv", func(w io.Writer) error {
			return bench.WritePlanningTimeCSV(w, rs)
		}); err != nil {
			return err
		}
	}
	return nil
}

// printTraceSummary runs the workload once through the observability
// layer (internal/obsv) and prints the per-query trace table — the same
// estimated-vs-actual cardinality accounting the server exposes at
// /trace/recent.
func printTraceSummary(d *bench.Dataset, cfg bench.RunConfig) error {
	c, err := bench.TraceExperiment(d, cfg)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("trace summary (%s, SS planner, final intermediate est vs true):\n", d.Name)
	fmt.Print(bench.FormatTraces(c.Recent(0)))
	return nil
}

func section(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", len(title)))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
}
