// Command scanprobe is the acceptance gate for chaos runs: it scans a
// set of shard peers (typically behind a chaosproxy) repeatedly and
// differentially checks every successful scan against an unfaulted
// oracle fleet. Its exit code encodes the one invariant that matters:
//
//   - a scan that reports no error must be bit-identical to the oracle;
//   - a scan that lost anything must say so with a typed error.
//
// Any silent divergence — short, reordered beyond set equality, or
// corrupted — exits 1. So does a run where no scan ever succeeds, or
// (under -expect-faults) one where the chaos layer never bit at all.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"rdfshapes/internal/shard"
	"rdfshapes/internal/store"
)

func main() {
	peersFlag := flag.String("peers", "", "comma-separated base URLs of the peers under chaos")
	oracleFlag := flag.String("oracle", "", "comma-separated base URLs of the unfaulted oracle fleet")
	scans := flag.Int("scans", 20, "number of probe scans to run")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request deadline")
	retries := flag.Int("retries", 2, "retries per scan attempt")
	degraded := flag.Bool("degraded", false, "probe in degraded mode (skip failed peers, flag the result)")
	expectFaults := flag.Bool("expect-faults", false, "fail unless at least one probe scan observed a fault")
	flag.Parse()

	if *peersFlag == "" || *oracleFlag == "" {
		fmt.Fprintln(os.Stderr, "scanprobe: -peers and -oracle are required")
		os.Exit(2)
	}

	oracleRows, _, err := scanOnce(splitURLs(*oracleFlag), *timeout, *retries, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanprobe: oracle fleet is unhealthy: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("scanprobe: oracle holds %d distinct triples\n", len(oracleRows))

	peers := splitURLs(*peersFlag)
	var successes, failedScans, degradedResults int
	var events faultEvents
	for i := 0; i < *scans; i++ {
		rows, ev, err := scanOnce(peers, *timeout, *retries, *degraded)
		events.add(ev)
		switch {
		case err == nil:
			successes++
			if !equal(rows, oracleRows) {
				fmt.Fprintf(os.Stderr,
					"scanprobe: SILENT DIVERGENCE on scan %d: %d distinct triples, oracle %d\n",
					i, len(rows), len(oracleRows))
				os.Exit(1)
			}
		case *degraded && isDegraded(err):
			failedScans++
			degradedResults++
			fmt.Printf("scanprobe: scan %d degraded: %v\n", i, err)
		default:
			failedScans++
			fmt.Printf("scanprobe: scan %d failed (typed): %v\n", i, err)
		}
	}

	// A fault was observed whenever a scan failed outright OR a retry
	// absorbed one mid-run — recovered faults count: they prove the
	// chaos layer bit and the client survived it.
	faults := failedScans + int(events.retries)
	fmt.Printf("scanprobe: %d/%d scans clean, %d failed (%d degraded); faults absorbed: retries=%d corrupt=%d truncated=%d\n",
		successes, *scans, failedScans, degradedResults,
		events.retries, events.corrupt, events.truncated)
	if successes == 0 && degradedResults == 0 {
		fmt.Fprintln(os.Stderr, "scanprobe: no scan ever succeeded")
		os.Exit(1)
	}
	if *expectFaults && faults == 0 {
		fmt.Fprintln(os.Stderr, "scanprobe: chaos never bit — nothing was actually tested")
		os.Exit(1)
	}
}

// degradedErr marks a scan that completed with skipped peers.
type degradedErr struct{ err error }

func (d degradedErr) Error() string { return "degraded: " + d.err.Error() }

func isDegraded(err error) bool {
	_, ok := err.(degradedErr)
	return ok
}

// faultEvents aggregates per-peer fault observations across scans.
type faultEvents struct {
	retries, corrupt, truncated int64
}

func (f *faultEvents) add(o faultEvents) {
	f.retries += o.retries
	f.corrupt += o.corrupt
	f.truncated += o.truncated
}

// scanOnce unions one wildcard scan across peers and returns the
// sorted distinct rendered triples, the fault events the peers
// absorbed, and the group's terminal fault if any.
func scanOnce(urls []string, timeout time.Duration, retries int, allowDegraded bool) ([]string, faultEvents, error) {
	dict := store.NewDict()
	client := &http.Client{
		// One request per connection: each scan attempt draws exactly one
		// scripted fault from a connection-level chaos proxy.
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	if retries == 0 {
		retries = -1 // RemoteConfig reads 0 as "default"; the flag means none
	}
	remotes := make([]*shard.Remote, len(urls))
	for i, u := range urls {
		remotes[i] = shard.NewRemoteConfig(u, client, dict, shard.RemoteConfig{
			Timeout:    timeout,
			MaxRetries: retries,
			// The probe wants to observe every fault, not mask repeats.
			BreakerThreshold: -1,
		})
	}
	grp, err := shard.NewRemoteGroup(dict, remotes, allowDegraded)
	if err != nil {
		return nil, faultEvents{}, err
	}

	seen := make(map[string]struct{})
	grp.Scan(store.IDTriple{}, func(t store.IDTriple) bool {
		key := dict.Term(t.S).String() + " " + dict.Term(t.P).String() + " " + dict.Term(t.O).String()
		seen[key] = struct{}{}
		return true
	})
	var ev faultEvents
	for _, r := range remotes {
		st := r.Stats()
		ev.retries += st.Retries
		ev.corrupt += st.CorruptFrames
		ev.truncated += st.Truncations
	}
	if ferr, deg := grp.TakeFault(); ferr != nil {
		if deg {
			return nil, ev, degradedErr{ferr}
		}
		return nil, ev, ferr
	}
	rows := make([]string, 0, len(seen))
	for k := range seen {
		rows = append(rows, k)
	}
	sort.Strings(rows)
	return rows, ev, nil
}

func splitURLs(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
