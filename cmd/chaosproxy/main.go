// Command chaosproxy fronts a TCP backend with a deterministic
// fault-injection proxy. Each accepted connection draws the next fault
// from a script — added latency, a mid-stream RST, a clean truncation,
// a flipped byte, a stall, or a blackhole — applied to the response
// direction only, so the backend always sees well-formed requests.
//
// Scripts are either explicit:
//
//	chaosproxy -listen :9000 -target localhost:8080 \
//	    -script 'none,reset@4096,corrupt@1024^0x80,latency:50ms' -loop
//
// or derived from a seed, which makes any failing chaos run replayable
// by seed alone:
//
//	chaosproxy -listen :9000 -target localhost:8080 -random 32 -seed 7 -loop
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"rdfshapes/internal/chaos"
)

func main() {
	listen := flag.String("listen", "localhost:0", "address to accept client connections on")
	target := flag.String("target", "", "backend address (host:port) to proxy to")
	script := flag.String("script", "", "comma-separated fault script, e.g. 'none,reset@4096,latency:50ms'")
	random := flag.Int("random", 0, "generate a random script of this many faults instead of -script")
	seed := flag.Int64("seed", 1, "seed for -random scripts")
	maxOffset := flag.Int64("max-offset", 64<<10, "offset bound for -random faults")
	loop := flag.Bool("loop", false, "repeat the script forever instead of passing through when exhausted")
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "chaosproxy: -target is required")
		os.Exit(2)
	}
	var sc *chaos.Script
	switch {
	case *random > 0 && *script != "":
		fmt.Fprintln(os.Stderr, "chaosproxy: -script and -random are mutually exclusive")
		os.Exit(2)
	case *random > 0:
		sc = chaos.RandomScript(*seed, *random, *maxOffset, *loop)
		log.Printf("chaosproxy: random script seed=%d len=%d loop=%v", *seed, *random, *loop)
	case *script != "":
		var err error
		sc, err = chaos.ParseScript(*script, *loop)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosproxy: %v\n", err)
			os.Exit(2)
		}
		log.Printf("chaosproxy: script len=%d loop=%v: %s", sc.Len(), *loop, *script)
	default:
		sc = chaos.NewScript(false) // pure pass-through
		log.Printf("chaosproxy: no script, passing through")
	}

	p, err := chaos.NewProxy(*listen, *target, sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosproxy: %v\n", err)
		os.Exit(1)
	}
	log.Printf("chaosproxy: %s -> %s", p.Addr(), *target)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	p.Close()
	log.Printf("chaosproxy: done: conns=%d faulted=%d scriptServed=%d",
		p.Conns.Load(), p.Injected.Load(), sc.Served())
}
