#!/bin/sh
# Replication smoke: boot a durable primary, two replicas tailing its
# WAL, and the health-checked read router; run a short loadgen mix whose
# reads spread across the fleet while the update stream hits the
# primary; kill one replica mid-run; assert zero failed reads (the
# router fails the dead replica's requests over) and that the surviving
# replica converges to zero lag. Run from the repo root. Requires jq.
set -eu

BASE="${REPL_SMOKE_PORT:-18100}"
PPORT=$BASE
R1PORT=$((BASE + 1))
R2PORT=$((BASE + 2))
RTPORT=$((BASE + 3))
TMP="$(mktemp -d)"
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    for p in $PIDS; do wait "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

command -v jq >/dev/null || { echo "repl smoke: jq is required" >&2; exit 1; }

echo "== build server + loadgen =="
go build -o "$TMP/server" ./cmd/server
go build -o "$TMP/loadgen" ./cmd/loadgen

wait_url() {
    i=0
    until curl -fsS "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 150 ]; then
            echo "repl smoke: $1 never answered" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "== start durable primary (lubm scale 1) =="
"$TMP/server" -dataset lubm -scale 1 -data-dir "$TMP/primary-data" \
    -addr "localhost:$PPORT" -query-timeout 5s >"$TMP/primary.log" 2>&1 &
PIDS="$PIDS $!"
wait_url "http://localhost:$PPORT/readyz"

echo "== start two replicas tailing the primary =="
"$TMP/server" -replica-of "http://localhost:$PPORT" -replica-poll 50ms \
    -addr "localhost:$R1PORT" -query-timeout 5s >"$TMP/replica1.log" 2>&1 &
R1_PID=$!
PIDS="$PIDS $R1_PID"
"$TMP/server" -replica-of "http://localhost:$PPORT" -replica-poll 50ms \
    -addr "localhost:$R2PORT" -query-timeout 5s >"$TMP/replica2.log" 2>&1 &
PIDS="$PIDS $!"
wait_url "http://localhost:$R1PORT/readyz"
wait_url "http://localhost:$R2PORT/readyz"

echo "== start health-checked read router over the fleet =="
"$TMP/server" -router-primary "http://localhost:$PPORT" \
    -router-replicas "http://localhost:$R1PORT,http://localhost:$R2PORT" \
    -max-staleness 5s -check-interval 100ms \
    -addr "localhost:$RTPORT" >"$TMP/router.log" 2>&1 &
PIDS="$PIDS $!"
wait_url "http://localhost:$RTPORT/router/metrics"

echo "== loadgen against the fleet, killing replica 1 mid-run =="
# Writes and the post-run scrape go to the first URL (the primary);
# reads round-robin across primary and router, and the router spreads
# its share over the replicas and fails over when one dies.
"$TMP/loadgen" -url "http://localhost:$PPORT,http://localhost:$RTPORT" \
    -mix lubm -scale 1 -qps 100 -warmup 500ms -duration 4s -concurrency 8 \
    -update-interval 100ms -update-batch 20 \
    -seed 1 -wait 15s -max-5xx 0 -out "$TMP/BENCH_repl.json" >"$TMP/loadgen.log" 2>&1 &
LOADGEN_PID=$!
sleep 2
echo "== killing replica 1 =="
kill -TERM "$R1_PID"
if ! wait "$LOADGEN_PID"; then
    cat "$TMP/loadgen.log" >&2
    echo "repl smoke: loadgen failed" >&2
    exit 1
fi
cat "$TMP/loadgen.log"

echo "== zero failed reads across the replica kill =="
FAILED=$(jq '.counts.rejected + .counts.timeouts + .counts.clientErrors
    + .counts.serverErrors + .counts.transportErrors' "$TMP/BENCH_repl.json")
OK=$(jq '.counts.ok' "$TMP/BENCH_repl.json")
UPDATE_ERRS=$(jq '.updates.errors' "$TMP/BENCH_repl.json")
echo "reads ok=$OK failed=$FAILED updateErrors=$UPDATE_ERRS"
if [ "$FAILED" != "0" ] || [ "$OK" = "0" ]; then
    echo "repl smoke: reads failed during the replica kill" >&2
    jq .counts "$TMP/BENCH_repl.json" >&2
    exit 1
fi
if [ "$UPDATE_ERRS" != "0" ]; then
    echo "repl smoke: update stream saw errors" >&2
    exit 1
fi

echo "== surviving replica converges to zero lag =="
i=0
while :; do
    STATUS=$(curl -fsS "http://localhost:$R2PORT/repl/status")
    LAG=$(printf '%s' "$STATUS" | jq '.lagRecords')
    CONNECTED=$(printf '%s' "$STATUS" | jq '.connected')
    if [ "$LAG" = "0" ] && [ "$CONNECTED" = "true" ]; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "repl smoke: replica 2 never caught up: $STATUS" >&2
        exit 1
    fi
    sleep 0.1
done
printf '%s' "$STATUS" | jq -c .
APPLIED=$(printf '%s' "$STATUS" | jq '.recordsApplied')
if [ "$APPLIED" = "0" ]; then
    echo "repl smoke: replica 2 applied no records despite the update stream" >&2
    exit 1
fi

echo "repl smoke: passed"
