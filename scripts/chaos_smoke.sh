#!/bin/sh
# Chaos smoke: boot two sharded servers over the same LUBM dataset, put
# a fault-injecting TCP proxy (resets, truncations, bit flips, stalls,
# latency) in front of one, and drive scanprobe through the chaos leg.
# scanprobe exits non-zero if any scan that claimed success differs from
# the unfaulted oracle fleet in any byte — the invariant this repo's
# framed scan protocol exists to enforce. A second leg blackholes one
# peer entirely and proves degraded mode still serves the survivor's
# rows while flagging the result. Run from the repo root.
set -eu

BASE="${CHAOS_SMOKE_PORT:-18110}"
APORT=$BASE
BPORT=$((BASE + 1))
PROXYPORT=$((BASE + 2))
HOLEPORT=$((BASE + 3))
TMP="$(mktemp -d)"
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    for p in $PIDS; do wait "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== build server + chaosproxy + scanprobe =="
go build -o "$TMP/server" ./cmd/server
go build -o "$TMP/chaosproxy" ./cmd/chaosproxy
go build -o "$TMP/scanprobe" ./cmd/scanprobe

wait_url() {
    i=0
    until curl -fsS "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 150 ]; then
            echo "chaos smoke: $1 never answered" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "== start two sharded servers (lubm scale 1) =="
"$TMP/server" -dataset lubm -scale 1 -shards 2 \
    -addr "localhost:$APORT" -query-timeout 5s >"$TMP/serverA.log" 2>&1 &
PIDS="$PIDS $!"
"$TMP/server" -dataset lubm -scale 1 -shards 2 \
    -addr "localhost:$BPORT" -query-timeout 5s >"$TMP/serverB.log" 2>&1 &
PIDS="$PIDS $!"
wait_url "http://localhost:$APORT/readyz"
wait_url "http://localhost:$BPORT/readyz"

echo "== start chaosproxy in front of server A =="
# One connection draws one fault; the looped script mixes every kind the
# layer can inject at offsets inside the framed scan stream.
"$TMP/chaosproxy" -listen "localhost:$PROXYPORT" -target "localhost:$APORT" -loop \
    -script 'none,reset@2048,none,truncate@4096,corrupt@1500^0x10,none,latency:20ms,stall@1024:100ms' \
    >"$TMP/chaosproxy.log" 2>&1 &
PIDS="$PIDS $!"
sleep 0.3

echo "== probe the chaos leg against the unfaulted oracle =="
"$TMP/scanprobe" \
    -peers "http://localhost:$PROXYPORT,http://localhost:$BPORT" \
    -oracle "http://localhost:$APORT,http://localhost:$BPORT" \
    -scans 24 -timeout 5s -retries 2 -expect-faults

echo "== degraded leg: blackhole one peer, survivor must still serve =="
"$TMP/chaosproxy" -listen "localhost:$HOLEPORT" -target "localhost:$APORT" -loop \
    -script 'blackhole' >"$TMP/blackhole.log" 2>&1 &
PIDS="$PIDS $!"
sleep 0.3
"$TMP/scanprobe" \
    -peers "http://localhost:$HOLEPORT,http://localhost:$BPORT" \
    -oracle "http://localhost:$APORT,http://localhost:$BPORT" \
    -scans 3 -timeout 2s -retries 0 -degraded -expect-faults

echo "== framed protocol actually exercised =="
SERVED=$(curl -fsS "http://localhost:$APORT/metrics" \
    | grep 'rdfshapes_shard_scans_served_total{proto="framed"}' \
    | awk '{print $2}')
echo "server A framed scans served: ${SERVED:-0}"
if [ -z "$SERVED" ] || [ "$SERVED" = "0" ]; then
    echo "chaos smoke: no framed scan ever reached server A" >&2
    exit 1
fi

echo "chaos smoke: passed"
