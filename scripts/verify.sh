#!/bin/sh
# Repo verification: static checks, the tier-1 suite, and the race
# detector over the concurrency-sensitive packages (the observability
# collector, the live update layer, the engine's cancellation paths, the
# HTTP server's governor, and the facade lifecycle). Run from the repo
# root.
set -eu

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
fmtout=$(gofmt -l .)
if [ -n "$fmtout" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmtout" >&2
    exit 1
fi

echo "== go test (tier-1) =="
go test ./...

echo "== go test -race (obsv, live, engine, server) =="
go test -race ./internal/obsv ./internal/live ./internal/engine ./internal/server

echo "== go test -race (facade governor: lifecycle, budgets, deadlines) =="
go test -race -run 'TestQueryCtx|TestWithDefault|TestWithLimits|TestClose|TestUpdateCtx|TestOpenClose' .

echo "verify: all checks passed"
