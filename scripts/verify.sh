#!/bin/sh
# Repo verification: static checks, the tier-1 suite, and the race
# detector over the concurrency-sensitive packages (the observability
# collector, the live update layer, the engine's cancellation paths, the
# HTTP server's governor, the shard coordinator, and the facade
# lifecycle). Run from the repo root.
set -eu

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
fmtout=$(gofmt -l .)
if [ -n "$fmtout" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmtout" >&2
    exit 1
fi

echo "== go test (tier-1) =="
go test ./...

echo "== go test -race (obsv, live, engine, server) =="
go test -race ./internal/obsv ./internal/live ./internal/engine ./internal/server

echo "== go test -race (facade governor: lifecycle, budgets, deadlines) =="
go test -race -run 'TestQueryCtx|TestWithDefault|TestWithLimits|TestClose|TestUpdateCtx|TestOpenClose|TestWithParallelism' .

echo "== go test -race (parallel-vs-serial differential over all workloads) =="
go test -race -run 'TestParallelDifferentialWorkloads' ./internal/integration

echo "== go test -race (merge-vs-nested-loop differential, governor equivalence) =="
go test -race -run 'TestMergeDifferentialWorkloads|TestMergeGovernorEquivalence|TestMergeSelectedOnWorkload|TestRepeatedVarDifferentialWorkloads' ./internal/integration

echo "== go test -race (shard coordinator: merge, pruning, per-shard stats) =="
go test -race ./internal/shard

echo "== go test -race (chaos layer: fault scripts, listener/proxy/roundtripper) =="
go test -race ./internal/chaos

echo "== go test -race (sharded-vs-unsharded differential over all workloads) =="
go test -race -run 'TestShardedDifferentialWorkloads' ./internal/integration

echo "== go test -race (durability: WAL crash matrix, fault injection) =="
go test -race ./internal/wal

echo "== go test -race (replication: log shipping, follower fault matrix, router) =="
go test -race ./internal/repl

echo "== go test -race (facade replication: bootstrap, re-bootstrap, stats oracle) =="
go test -race -run 'TestReplica|TestServerWALPoisoned|TestServerReplication' .

echo "== go test -race (facade durability: recovery, stats oracle, crash matrix) =="
go test -race -run 'TestDurability|TestOpen|TestWithDurability|TestCheckpoint|TestWALFailure|TestFacadeCrashMatrix' .

echo "== snapshot corruption fuzz smoke =="
go test -run=NONE -fuzz=FuzzReadSnapshot -fuzztime=10s ./internal/store

echo "== benchmark bit-rot smoke (compile and run every benchmark once) =="
go test -run=NONE -bench=. -benchtime=1x ./... > /dev/null

echo "== committed BENCH reports schema-valid =="
set -- BENCH_*.json
if [ -e "$1" ]; then
    go run ./cmd/loadgen -check "$@"
else
    echo "(none committed yet)"
fi

echo "== BENCH trajectory regression gate (BENCH_2 -> BENCH_3) =="
if [ -e BENCH_2.json ] && [ -e BENCH_3.json ]; then
    go run ./cmd/loadgen -compare -noise 0.15 BENCH_2.json BENCH_3.json
else
    echo "(trajectory incomplete; skipping)"
fi

echo "== loadgen smoke (live server, ~2s run, zero 5xx) =="
sh scripts/loadgen_smoke.sh

echo "== replication smoke (primary + 2 replicas + router, replica kill mid-run) =="
sh scripts/repl_smoke.sh

echo "== chaos smoke (framed scans through a fault-injecting TCP proxy) =="
sh scripts/chaos_smoke.sh

echo "verify: all checks passed"
