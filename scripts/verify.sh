#!/bin/sh
# Repo verification: static checks, the tier-1 suite, and the race
# detector over the concurrency-sensitive packages (the observability
# collector, the live update layer, and the HTTP server). Run from the
# repo root.
set -eu

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
fmtout=$(gofmt -l .)
if [ -n "$fmtout" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmtout" >&2
    exit 1
fi

echo "== go test (tier-1) =="
go test ./...

echo "== go test -race (obsv, live, server) =="
go test -race ./internal/obsv ./internal/live ./internal/server

echo "verify: all checks passed"
