#!/bin/sh
# Loadgen smoke: build cmd/server and cmd/loadgen, start a small LUBM
# server with adaptive replan enabled, run a ~2s load with a concurrent
# update stream, and fail on any 5xx or an invalid report. Run from the
# repo root; the report lands in a temp directory and is discarded —
# committed BENCH_<n>.json files come from longer, deliberate runs
# (docs/BENCHMARKING.md).
set -eu

PORT="${LOADGEN_SMOKE_PORT:-18095}"
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== build server + loadgen =="
go build -o "$TMP/server" ./cmd/server
go build -o "$TMP/loadgen" ./cmd/loadgen

echo "== start server (lubm scale 1, adaptive replan on) =="
"$TMP/server" -dataset lubm -scale 1 -addr "localhost:$PORT" \
    -adaptive-qerror 10 -query-timeout 5s >"$TMP/server.log" 2>&1 &
SERVER_PID=$!

echo "== loadgen (2s measured, update stream, zero 5xx allowed) =="
"$TMP/loadgen" -url "http://localhost:$PORT" -mix lubm -scale 1 \
    -qps 100 -warmup 500ms -duration 2s -concurrency 8 \
    -update-interval 100ms -update-batch 20 \
    -seed 1 -wait 15s -max-5xx 0 -out "$TMP/BENCH_smoke.json"

echo "== validate the report =="
"$TMP/loadgen" -check "$TMP/BENCH_smoke.json"

echo "loadgen smoke: passed"
