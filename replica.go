package rdfshapes

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"rdfshapes/internal/live"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/repl"
	"rdfshapes/internal/store"
	"rdfshapes/internal/wal"
)

// Replication: a DB opened with OpenReplica is a read-only replica of a
// durable primary. It bootstraps from the primary's current checkpoint
// snapshot, then tails the primary's write-ahead log, applying every
// shipped commit through the same live-apply + incremental statistics
// maintenance path the primary's own updates take — so the replica's
// planner statistics are exact and its query plans match the primary's.
// See docs/REPLICATION.md.

// ErrReadOnlyReplica is returned by Update on a replica: writes must go
// to the primary; the replica receives them through the log stream.
var ErrReadOnlyReplica = errors.New("rdfshapes: read-only replica: send writes to the primary")

// WithReplicaOf marks the DB under construction a read-only replica of
// the durable primary serving at url. It is honored by OpenReplica
// (which sets it from its argument); the local-data entry points (Load,
// Open, LoadNTriples, LoadSnapshot) reject it, because a replica's
// initial contents come from the primary, not from local input.
func WithReplicaOf(url string) Option {
	return func(c *config) { c.replicaOf = url }
}

// WithReplicaPollInterval sets how often a replica polls the primary for
// new log records while healthy (default repl.DefaultPollInterval).
// Large values effectively make replication manual via ReplicaSync.
func WithReplicaPollInterval(d time.Duration) Option {
	return func(c *config) { c.replPoll = d }
}

// replicaState is the follower machinery attached to a replica DB.
type replicaState struct {
	primary  string
	follower *repl.Follower
	cancel   context.CancelFunc
	done     chan struct{}
}

// OpenReplica builds a read-only replica of the durable primary at
// primaryURL: it fetches the primary's current checkpoint snapshot,
// builds the DB over it (computing statistics from scratch, so they are
// exact by construction), performs one synchronous catch-up round, and
// starts a background follower that keeps tailing the primary's log
// with jittered-backoff reconnects until Close. Options apply as in
// Load; durability options are rejected — a replica's durable state is
// the primary's.
func OpenReplica(primaryURL string, opts ...Option) (*DB, error) {
	cfg := newConfig(opts)
	cfg.replicaOf = primaryURL
	if cfg.replicaOf == "" {
		return nil, errors.New("rdfshapes: OpenReplica requires a primary URL")
	}
	if cfg.walDir != "" {
		return nil, errors.New("rdfshapes: a replica cannot attach its own durability directory; its durable state is the primary's")
	}

	client := &http.Client{}
	gen, data, err := repl.FetchSnapshot(context.Background(), client, cfg.replicaOf)
	if err != nil {
		return nil, fmt.Errorf("rdfshapes: bootstrapping replica: %w", err)
	}
	st, err := store.ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("rdfshapes: parsing primary snapshot: %w", err)
	}
	db, err := fromStoreCfg(st, cfg)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	rs := &replicaState{primary: cfg.replicaOf, cancel: cancel, done: make(chan struct{})}
	db.replica = rs
	rs.follower = repl.NewFollower(repl.FollowerConfig{
		Primary:      cfg.replicaOf,
		Target:       &replicaTarget{db: db},
		StartGen:     gen, // the snapshot pairs exactly with (gen, 0)
		PollInterval: cfg.replPoll,
		Client:       client,
	})
	// One synchronous round so the opened replica reflects commits made
	// after the snapshot; a failure here is not fatal — the background
	// follower retries with backoff.
	_ = rs.follower.Sync(ctx)
	go func() {
		defer close(rs.done)
		_ = rs.follower.Run(ctx)
	}()
	return db, nil
}

// Replica reports whether the DB is a read-only replica.
func (db *DB) Replica() bool { return db.replica != nil }

// ReplicaPrimary returns the primary URL a replica tails; empty
// otherwise.
func (db *DB) ReplicaPrimary() string {
	if db.replica == nil {
		return ""
	}
	return db.replica.primary
}

// ReplicaStatus returns a replica's replication status (cursor, lag,
// staleness, lifecycle counters — the /repl/status payload); ok is
// false on a non-replica DB.
func (db *DB) ReplicaStatus() (s repl.StatusResponse, ok bool) {
	if db.replica == nil {
		return repl.StatusResponse{}, false
	}
	return db.replica.follower.Status(), true
}

// ReplicaSync forces one synchronous replication round — bootstrap if
// needed, then poll-and-apply — and returns its error. Use it for
// read-your-writes barriers after a primary write, or to drive
// replication deterministically in tests (together with a large
// WithReplicaPollInterval). It is safe concurrently with the background
// follower. Returns ErrClosed via the apply path on a closed DB and an
// error on a non-replica DB.
func (db *DB) ReplicaSync(ctx context.Context) error {
	if db.replica == nil {
		return errors.New("rdfshapes: not a replica")
	}
	return db.replica.follower.Sync(ctx)
}

// replicaTarget is the repl.Target over the facade: every shipped batch
// commits through applyBatch — live apply plus incremental statistics
// maintenance — under the same updateMu the primary's own update path
// holds, so replica statistics stay exact and snapshots stay atomic.
type replicaTarget struct{ db *DB }

// Bootstrap replaces the replica's contents with the snapshot by
// diffing: one batch inserts what the snapshot has and the replica
// lacks, and deletes what the replica has and the snapshot lacks. A
// running replica therefore re-bootstraps in place (pruned generation,
// diverged primary) without a cold restart, and the maintainer sees the
// transition as a normal commit.
func (t *replicaTarget) Bootstrap(gen uint64, snapshot []byte) error {
	st, err := store.ReadSnapshot(bytes.NewReader(snapshot))
	if err != nil {
		return fmt.Errorf("parsing snapshot: %w", err)
	}
	want := make(map[rdf.Triple]bool, st.Len())
	st.Scan(store.IDTriple{}, func(tr store.IDTriple) bool {
		d := st.Dict()
		want[rdf.Triple{S: d.Term(tr.S), P: d.Term(tr.P), O: d.Term(tr.O)}] = true
		return true
	})

	db := t.db
	if err := db.begin(); err != nil {
		return err
	}
	defer db.end()
	db.updateMu.Lock()
	defer db.updateMu.Unlock()
	var b live.Batch
	view := db.snapshotView()
	dict := view.Dict()
	view.Scan(store.IDTriple{}, func(tr store.IDTriple) bool {
		trip := rdf.Triple{S: dict.Term(tr.S), P: dict.Term(tr.P), O: dict.Term(tr.O)}
		if want[trip] {
			delete(want, trip)
		} else {
			b.Delete = append(b.Delete, trip)
		}
		return true
	})
	for trip := range want {
		b.Insert = append(b.Insert, trip)
	}
	if len(b.Insert) > 0 || len(b.Delete) > 0 {
		db.applyBatch(b)
	}
	db.refreshPlanner()
	return nil
}

// Apply commits one shipped batch — the replica-side half of the
// primary's UpdateCtx loop, minus the logging.
func (t *replicaTarget) Apply(seq uint64, b wal.Batch) error {
	db := t.db
	if err := db.begin(); err != nil {
		return err
	}
	defer db.end()
	db.updateMu.Lock()
	defer db.updateMu.Unlock()
	db.applyBatch(live.Batch{Insert: b.Insert, Delete: b.Delete})
	return nil
}

// Flush publishes applied batches to the planner, once per poll round.
func (t *replicaTarget) Flush() error {
	db := t.db
	if err := db.begin(); err != nil {
		return err
	}
	defer db.end()
	db.refreshPlanner()
	return nil
}
