package rdfshapes_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"rdfshapes"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/obsv"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/wal"
)

func xiri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }

// durabilitySeed is the dataset every durability test starts from: two
// classes with described properties, so incremental shape statistics
// have something exact to maintain through replay.
func durabilitySeed() rdf.Graph {
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	g.Append(xiri("p1"), typ, xiri("Person"))
	g.Append(xiri("p2"), typ, xiri("Person"))
	g.Append(xiri("r1"), typ, xiri("Robot"))
	g.Append(xiri("p1"), xiri("name"), rdf.NewLiteral("P1"))
	g.Append(xiri("p2"), xiri("name"), rdf.NewLiteral("P2"))
	g.Append(xiri("p1"), xiri("knows"), xiri("p2"))
	g.Append(xiri("r1"), xiri("serial"), rdf.NewLiteral("007"))
	return g
}

// durabilityUpdates is the attempted commit sequence: single-operation
// SPARQL updates over the seed's classes and described predicates only,
// so the maintained statistics stay exact and the recovery oracle can
// demand equality.
type durabilityUpdate struct {
	insert bool
	triple rdf.Triple
}

func durabilityUpdates() []durabilityUpdate {
	typ := rdf.NewIRI(rdf.RDFType)
	return []durabilityUpdate{
		{true, rdf.NewTriple(xiri("p3"), typ, xiri("Person"))},
		{true, rdf.NewTriple(xiri("p3"), xiri("name"), rdf.NewLiteral("P3"))},
		{true, rdf.NewTriple(xiri("p3"), xiri("knows"), xiri("p1"))},
		{false, rdf.NewTriple(xiri("p1"), xiri("knows"), xiri("p2"))},
		{true, rdf.NewTriple(xiri("r2"), typ, xiri("Robot"))},
		{true, rdf.NewTriple(xiri("r2"), xiri("serial"), rdf.NewLiteral("008"))},
		{false, rdf.NewTriple(xiri("p2"), xiri("name"), rdf.NewLiteral("P2"))},
		{true, rdf.NewTriple(xiri("p2"), xiri("knows"), xiri("p3"))},
	}
}

func (u durabilityUpdate) sparql() string {
	verb := "INSERT"
	if !u.insert {
		verb = "DELETE"
	}
	return fmt.Sprintf("%s DATA { %s }", verb, u.triple)
}

// durabilityStates returns the expected triple set after the seed plus
// each prefix of the updates: states[0] is empty (nothing durable),
// states[1] the seed, states[1+i] the seed plus the first i updates.
func durabilityStates() []map[rdf.Triple]bool {
	empty := map[rdf.Triple]bool{}
	cur := map[rdf.Triple]bool{}
	for _, tr := range durabilitySeed() {
		cur[tr] = true
	}
	states := []map[rdf.Triple]bool{empty, cloneSet(cur)}
	for _, u := range durabilityUpdates() {
		if u.insert {
			cur[u.triple] = true
		} else {
			delete(cur, u.triple)
		}
		states = append(states, cloneSet(cur))
	}
	return states
}

func cloneSet(in map[rdf.Triple]bool) map[rdf.Triple]bool {
	out := make(map[rdf.Triple]bool, len(in))
	for tr := range in {
		out[tr] = true
	}
	return out
}

// dbTriples extracts a DB's full dataset — base plus overlay — through
// the query path.
func dbTriples(t *testing.T, db *rdfshapes.DB) map[rdf.Triple]bool {
	t.Helper()
	res, err := db.Query(`SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatalf("scanning dataset: %v", err)
	}
	out := make(map[rdf.Triple]bool, len(res.Rows))
	for _, row := range res.Rows {
		var tr rdf.Triple
		for _, f := range []struct {
			v    string
			term *rdf.Term
		}{{"s", &tr.S}, {"p", &tr.P}, {"o", &tr.O}} {
			term, err := rdf.ParseTerm(row[f.v])
			if err != nil {
				t.Fatalf("parsing %q: %v", row[f.v], err)
			}
			*f.term = term
		}
		out[tr] = true
	}
	return out
}

func graphOf(set map[rdf.Triple]bool) rdf.Graph {
	var g rdf.Graph
	for tr := range set {
		g.Append(tr.S, tr.P, tr.O)
	}
	return g
}

// assertStatsOracle compares the recovered DB's maintained statistics
// against a from-scratch recompute over the same triples: the exact
// global fields and the exact shape fields (sh:count,
// sh:distinctSubjectCount) must be equal, not approximate.
func assertStatsOracle(t *testing.T, db *rdfshapes.DB, triples map[rdf.Triple]bool, label string) {
	t.Helper()
	oracle, err := rdfshapes.Load(graphOf(triples))
	if err != nil {
		t.Fatalf("%s: building oracle: %v", label, err)
	}
	defer oracle.Close()
	got, want := db.Stats(), oracle.Stats()
	exactGlobalsEqual(t, got, want, label)
	for _, ws := range oracle.Shapes().Shapes() {
		gs := db.Shapes().ByClass(ws.TargetClass)
		if gs == nil {
			t.Errorf("%s: shape for %s missing after recovery", label, ws.TargetClass)
			continue
		}
		if gs.Count != ws.Count {
			t.Errorf("%s: %s sh:count = %d, want %d", label, ws.TargetClass, gs.Count, ws.Count)
		}
		for _, wp := range ws.Properties {
			gp := gs.Property(wp.Path)
			if gp == nil || gp.Stats == nil || wp.Stats == nil {
				continue // undescribed at snapshot time: drift, not error
			}
			if gp.Stats.Count != wp.Stats.Count {
				t.Errorf("%s: %s %s sh:count = %d, want %d",
					label, ws.TargetClass, wp.Path, gp.Stats.Count, wp.Stats.Count)
			}
			if gp.Stats.DistinctSubjectCount != wp.Stats.DistinctSubjectCount {
				t.Errorf("%s: %s %s sh:distinctSubjectCount = %d, want %d",
					label, ws.TargetClass, wp.Path, gp.Stats.DistinctSubjectCount, wp.Stats.DistinctSubjectCount)
			}
		}
	}
}

func exactGlobalsEqual(t *testing.T, got, want *gstats.Global, label string) {
	t.Helper()
	if got.Triples != want.Triples {
		t.Errorf("%s: Triples = %d, want %d", label, got.Triples, want.Triples)
	}
	if got.DistinctSubjects != want.DistinctSubjects {
		t.Errorf("%s: DistinctSubjects = %d, want %d", label, got.DistinctSubjects, want.DistinctSubjects)
	}
	if got.DistinctObjects != want.DistinctObjects {
		t.Errorf("%s: DistinctObjects = %d, want %d", label, got.DistinctObjects, want.DistinctObjects)
	}
	for p, w := range want.Pred {
		if g := got.Pred[p]; g != w {
			t.Errorf("%s: Pred[%s] = %+v, want %+v", label, p, g, w)
		}
	}
	for c, w := range want.ClassInstances {
		if g := got.ClassInstances[c]; g != w {
			t.Errorf("%s: ClassInstances[%s] = %d, want %d", label, c, g, w)
		}
	}
}

// TestDurabilityRoundTripOnDisk exercises the real filesystem end to
// end: seed, update, checkpoint, update, close, recover, verify.
func TestDurabilityRoundTripOnDisk(t *testing.T) {
	dir := t.TempDir()
	db, err := rdfshapes.Load(durabilitySeed(), rdfshapes.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !db.Durable() {
		t.Fatal("Durable() = false after WithDurability")
	}
	updates := durabilityUpdates()
	for i, u := range updates {
		if _, err := db.Update(u.sparql()); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if i == 3 {
			cs, err := db.Checkpoint()
			if err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			if cs.Generation != 2 {
				t.Errorf("checkpoint generation = %d, want 2", cs.Generation)
			}
		}
	}
	ds, ok := db.DurabilityStats()
	if !ok || ds.Generation != 2 || ds.Checkpoints != 1 || ds.RecordsAppended != int64(len(updates)) {
		t.Errorf("durability stats before close: %+v", ds)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := rdfshapes.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ds, ok = re.DurabilityStats()
	if !ok || !ds.Recovered {
		t.Errorf("durability stats after reopen: %+v", ds)
	}
	states := durabilityStates()
	final := states[len(states)-1]
	got := dbTriples(t, re)
	if len(got) != len(final) {
		t.Fatalf("recovered %d triples, want %d", len(got), len(final))
	}
	for tr := range final {
		if !got[tr] {
			t.Errorf("recovered dataset missing %s", tr)
		}
	}
	assertStatsOracle(t, re, final, "reopen")
	// the recovered DB accepts and persists further updates
	if _, err := re.Update(`INSERT DATA { <http://x/p4> <http://x/name> "P4" }`); err != nil {
		t.Fatalf("post-recovery update: %v", err)
	}
}

// TestOpenEmptyDirectoryStartsEmptyDurable pins Open's bootstrap path.
func TestOpenEmptyDirectoryStartsEmptyDurable(t *testing.T) {
	dir := t.TempDir()
	db, err := rdfshapes.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumTriples() != 0 {
		t.Errorf("fresh durable DB has %d triples", db.NumTriples())
	}
	if _, err := db.Update(`INSERT DATA { <http://x/a> <http://x/b> <http://x/c> }`); err != nil {
		t.Fatal(err)
	}
	db.Close()
	re, err := rdfshapes.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumTriples() != 1 {
		t.Errorf("reopened DB has %d triples, want 1", re.NumTriples())
	}
}

// TestWithDurabilityRefusesExistingState: seeding over a directory that
// already holds durable state must fail loudly, never silently discard.
func TestWithDurabilityRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	db, err := rdfshapes.Load(durabilitySeed(), rdfshapes.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := rdfshapes.Load(durabilitySeed(), rdfshapes.WithDurability(dir)); !errors.Is(err, wal.ErrExists) {
		t.Fatalf("re-seeding over existing state: %v, want ErrExists", err)
	}
}

// TestCheckpointWithoutDurability pins the typed error.
func TestCheckpointWithoutDurability(t *testing.T) {
	db, err := rdfshapes.Load(durabilitySeed())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Checkpoint(); !errors.Is(err, rdfshapes.ErrNotDurable) {
		t.Fatalf("Checkpoint on non-durable DB: %v, want ErrNotDurable", err)
	}
	if _, ok := db.DurabilityStats(); ok {
		t.Error("DurabilityStats ok on non-durable DB")
	}
}

// TestWALFailurePoisonsUpdatesUntilCheckpoint drives the poisoning
// contract through the facade: a failed fsync refuses the update and all
// later ones (reads keep working), and a successful checkpoint restores
// writability.
func TestWALFailurePoisonsUpdatesUntilCheckpoint(t *testing.T) {
	fs := wal.NewMemFS()
	db, err := rdfshapes.Load(durabilitySeed(),
		rdfshapes.WithDurability("/data"), rdfshapes.WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	before := db.NumTriples()
	fs.FailOn = wal.FailNth(0, "sync", errors.New("io error"))
	if _, err := db.Update(`INSERT DATA { <http://x/a> <http://x/b> <http://x/c> }`); !errors.Is(err, rdfshapes.ErrWALFailed) {
		t.Fatalf("update with failing fsync: %v, want ErrWALFailed", err)
	}
	fs.FailOn = nil
	if db.NumTriples() != before {
		t.Error("refused update mutated the dataset")
	}
	if _, err := db.Update(`INSERT DATA { <http://x/a> <http://x/b> <http://x/c> }`); !errors.Is(err, rdfshapes.ErrWALFailed) {
		t.Fatalf("update while poisoned: %v, want ErrWALFailed", err)
	}
	if ds, _ := db.DurabilityStats(); !ds.Failed {
		t.Error("DurabilityStats.Failed = false while poisoned")
	}
	// reads still serve
	if n, err := db.Count(`SELECT ?s WHERE { ?s <http://x/name> ?n }`); err != nil || n == 0 {
		t.Errorf("read while poisoned: %d, %v", n, err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatalf("recovery checkpoint: %v", err)
	}
	if _, err := db.Update(`INSERT DATA { <http://x/a> <http://x/b> <http://x/c> }`); err != nil {
		t.Fatalf("update after recovery checkpoint: %v", err)
	}
}

// facadeWorkload drives the full seed + update + checkpoint sequence
// over the given filesystem, tolerating failures (the crash point cuts
// it short). It returns the index into durabilityStates() of the last
// state known acknowledged-durable: 0 before the seed completes, 1 once
// Load returned, 1+i after update i was acknowledged.
func facadeWorkload(fs *wal.MemFS) (ackedState int) {
	db, err := rdfshapes.Load(durabilitySeed(),
		rdfshapes.WithDurability("/data"), rdfshapes.WithWALFS(fs))
	if err != nil {
		return 0
	}
	defer db.Close()
	ackedState = 1
	for i, u := range durabilityUpdates() {
		if _, err := db.Update(u.sparql()); err != nil {
			return ackedState
		}
		ackedState = 1 + i + 1
		if i == 2 || i == 5 {
			_, _ = db.Checkpoint() // retryable; the commits are already durable
		}
	}
	return ackedState
}

// TestFacadeCrashMatrix is the acceptance test: for every filesystem
// operation the workload performs, cut power there under each crash
// mode, recover through Open, and require (a) the dataset is exactly a
// prefix of the acknowledged commit sequence, no shorter than what was
// acknowledged, and (b) the recovered statistics match a from-scratch
// recompute. Run with -race.
func TestFacadeCrashMatrix(t *testing.T) {
	clean := wal.NewMemFS()
	if acked := facadeWorkload(clean); acked != 1+len(durabilityUpdates()) {
		t.Fatalf("clean run acknowledged through state %d", acked)
	}
	total := clean.Ops()
	if total < 20 {
		t.Fatalf("workload only exercises %d filesystem operations", total)
	}
	states := durabilityStates()

	step := 1
	if testing.Short() {
		step = 5
	}
	for _, mode := range []wal.CrashMode{wal.CrashSyncedOnly, wal.CrashPartialTail, wal.CrashKeepAll} {
		for k := 0; k < total; k += step {
			label := fmt.Sprintf("crash at op %d/%d, mode %s", k, total, mode)
			fs := wal.NewMemFS()
			fs.StopAfter(k)
			acked := facadeWorkload(fs)
			img := fs.CrashImage(mode)
			db, err := rdfshapes.Open("/data", rdfshapes.WithWALFS(img))
			if err != nil {
				t.Fatalf("%s: recovery failed: %v", label, err)
			}
			got := dbTriples(t, db)
			matched := -1
			for s := len(states) - 1; s >= 0; s-- {
				if setsEqual(got, states[s]) {
					matched = s
					break
				}
			}
			if matched < 0 {
				t.Fatalf("%s: recovered %d triples matching no commit prefix", label, len(got))
			}
			if matched < acked {
				t.Fatalf("%s: recovered state %d but %d was acknowledged durable", label, matched, acked)
			}
			assertStatsOracle(t, db, states[matched], label)
			// recovered DB must accept new commits that survive reopening
			if _, err := db.Update(`INSERT DATA { <http://x/post> <http://x/name> "crash" }`); err != nil {
				t.Fatalf("%s: post-recovery update: %v", label, err)
			}
			db.Close()
			re, err := rdfshapes.Open("/data", rdfshapes.WithWALFS(img))
			if err != nil {
				t.Fatalf("%s: second recovery: %v", label, err)
			}
			if !dbTriples(t, re)[rdf.NewTriple(xiri("post"), xiri("name"), rdf.NewLiteral("crash"))] {
				t.Fatalf("%s: post-recovery commit lost on reopen", label)
			}
			re.Close()
		}
	}
}

func setsEqual(a, b map[rdf.Triple]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for tr := range a {
		if !b[tr] {
			return false
		}
	}
	return true
}

// TestOpenCorruptSnapshotFallsBack corrupts the newest snapshot on disk
// and requires recovery to fall back to the previous generation without
// losing any acknowledged commit.
func TestOpenCorruptSnapshotFallsBack(t *testing.T) {
	fs := wal.NewMemFS()
	db, err := rdfshapes.Load(durabilitySeed(),
		rdfshapes.WithDurability("/data"), rdfshapes.WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	updates := durabilityUpdates()
	for i, u := range updates {
		if _, err := db.Update(u.sparql()); err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			if _, err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.Close()
	if err := fs.Corrupt("/data/snap-0000000000000002.snap", -1, 0x80); err != nil {
		t.Fatal(err)
	}
	re, err := rdfshapes.Open("/data", rdfshapes.WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ds, _ := re.DurabilityStats()
	if ds.SnapshotFallbacks != 1 {
		t.Errorf("SnapshotFallbacks = %d, want 1", ds.SnapshotFallbacks)
	}
	states := durabilityStates()
	final := states[len(states)-1]
	if got := dbTriples(t, re); !setsEqual(got, final) {
		t.Errorf("fallback recovery: %d triples, want %d", len(got), len(final))
	}
	assertStatsOracle(t, re, final, "snapshot fallback")
}

// TestOpenRecordsRecoveryMetrics pins the observability wiring: a
// recovery with replayed records shows up on the collector.
func TestOpenRecordsRecoveryMetrics(t *testing.T) {
	fs := wal.NewMemFS()
	db, err := rdfshapes.Load(durabilitySeed(),
		rdfshapes.WithDurability("/data"), rdfshapes.WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range durabilityUpdates()[:3] {
		if _, err := db.Update(u.sparql()); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	c := obsv.NewCollector(8)
	re, err := rdfshapes.Open("/data", rdfshapes.WithWALFS(fs), rdfshapes.WithCollector(c))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"rdfshapes_recoveries_total 1",
		"rdfshapes_wal_records_replayed_total 3",
		"rdfshapes_checkpoints_total 1",
		"rdfshapes_checkpoint_duration_seconds_count 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
