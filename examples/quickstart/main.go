// Quickstart: load a small RDF graph from N-Triples, let the library
// infer and annotate SHACL shapes, and run an optimized SPARQL query.
package main

import (
	"fmt"
	"log"
	"strings"

	"rdfshapes"
)

const data = `
<http://ex/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/alice> <http://ex/name> "Alice" .
<http://ex/alice> <http://ex/knows> <http://ex/bob> .
<http://ex/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/bob> <http://ex/name> "Bob" .
<http://ex/bob> <http://ex/knows> <http://ex/carol> .
<http://ex/carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/carol> <http://ex/name> "Carol" .
<http://ex/spot> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Dog> .
<http://ex/spot> <http://ex/name> "Spot" .
`

const query = `
PREFIX ex: <http://ex/>
SELECT ?n ?m WHERE {
  ?x a ex:Person .
  ?x ex:name ?n .
  ?x ex:knows ?y .
  ?y ex:name ?m .
}`

func main() {
	db, err := rdfshapes.LoadNTriples(strings.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d triples; inferred %d node shapes\n\n", db.NumTriples(), db.Shapes().Len())

	// The optimizer uses the annotated shape statistics: the Person
	// shape knows there are 3 persons, 3 person-names, 2 knows-edges.
	plan, err := db.Explain(query, "SS")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)

	res, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%s knows %s\n", row["n"], row["m"])
	}

	// The annotated shapes graph is ordinary SHACL plus statistics —
	// print it to see sh:count / sh:distinctCount in place.
	fmt.Println("\nannotated shapes graph:")
	if err := db.WriteShapesTurtle(printer{}); err != nil {
		log.Fatal(err)
	}
}

type printer struct{}

func (printer) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
