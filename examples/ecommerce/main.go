// Ecommerce: a WatDiv-style correlated workload. WatDiv's defining trait
// is type-correlated attributes — only movies have wsdbm:duration, only
// books have wsdbm:numPages — which breaks the independence assumption
// behind global statistics. This example quantifies the improvement
// shape statistics bring on such predicates and demonstrates SHACL
// validation over the same shapes graph.
package main

import (
	"fmt"
	"log"

	"rdfshapes"
	"rdfshapes/internal/datagen/watdiv"
)

const correlated = `
PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
SELECT * WHERE {
  ?p a wsdbm:Movie .
  ?p wsdbm:duration ?d .
  ?p wsdbm:hasGenre ?g .
  ?r wsdbm:reviewFor ?p .
  ?r wsdbm:rating 5 .
}`

func main() {
	g := watdiv.Generate(watdiv.Config{Products: 2000, Seed: 11})
	db, err := rdfshapes.Load(g, rdfshapes.WithShapesGraph(watdiv.Shapes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d triples\n\n", db.NumTriples())

	// The Movie shape records that *every* movie has a duration — the
	// correlation a global duration count cannot express once more
	// product categories exist.
	movie := db.Shapes().ByClass(watdiv.Movie)
	dur := movie.Property(watdiv.Duration).Stats
	fmt.Printf("movies: %d, duration triples scoped to Movie: %d (min %d / max %d per movie)\n",
		movie.Count, dur.Count, dur.MinCount, dur.MaxCount)

	for _, approach := range []string{"GS", "SS"} {
		plan, err := db.Explain(correlated, approach)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(plan)
	}

	count, err := db.Count(correlated)
	if err != nil {
		log.Fatal(err)
	}
	est, err := db.EstimateCount(correlated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("five-star movie reviews: %d (estimated %.0f)\n\n", count, est)

	// The same shapes graph still validates: constraint checking and
	// statistics share one artifact.
	if vs := db.Validate(5); len(vs) == 0 {
		fmt.Println("validation: data conforms to the shipped shapes graph")
	} else {
		fmt.Printf("validation found %d violations, e.g. %s\n", len(vs), vs[0])
	}
}
