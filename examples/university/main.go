// University: the paper's running example. Generates a LUBM-style
// dataset with its shipped SHACL shapes, plans the example query Q of
// Figure 2 / Table 2 with global statistics and with shape statistics,
// and executes both plans to compare estimated and true work — the
// side-by-side the paper's Table 2 makes.
package main

import (
	"fmt"
	"log"
	"time"

	"rdfshapes"
	"rdfshapes/internal/datagen/lubm"
)

const exampleQueryQ = `
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT * WHERE {
  ?A a ub:FullProfessor .
  ?A ub:name ?N .
  ?A ub:teacherOf ?C .
  ?C a ub:GraduateCourse .
  ?X ub:advisor ?A .
  ?X a ub:GraduateStudent .
  ?X ub:degreeFrom ?U .
  ?Y ub:takesCourse ?C .
  ?Y a ub:GraduateStudent .
}`

func main() {
	fmt.Println("generating LUBM dataset...")
	g := lubm.Generate(lubm.Config{Universities: 2, Seed: 7})
	start := time.Now()
	db, err := rdfshapes.Load(g, rdfshapes.WithShapesGraph(lubm.Shapes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d triples and annotated %d shapes in %v\n\n",
		db.NumTriples(), db.Shapes().Len(), time.Since(start).Round(time.Millisecond))

	for _, approach := range []string{"GS", "SS"} {
		plan, err := db.Explain(exampleQueryQ, approach)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(plan)
	}

	count, err := db.Count(exampleQueryQ)
	if err != nil {
		log.Fatal(err)
	}
	est, err := db.EstimateCount(exampleQueryQ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true result cardinality: %d (shape-statistics estimate: %.0f)\n", count, est)

	// Shape statistics shine on class-scoped predicates: ub:name is
	// carried by every entity, so global statistics see hundreds of
	// thousands of name triples where the FullProfessor shape sees only
	// its own.
	nameStats := db.Shapes().ByClass(lubm.FullProfessor).Property(lubm.Name).Stats
	globalName := db.Stats().Pred[lubm.Name]
	fmt.Printf("\nub:name triples — global: %d, scoped to FullProfessor: %d (distinct objects: %d)\n",
		globalName.Count, nameStats.Count, nameStats.DistinctCount)
}
