// Heterogeneous: a YAGO-style knowledge graph with hundreds of classes
// and no shipped shapes. The library infers a shapes graph from the data
// (the role SHACLGEN plays in the paper), annotates it, and uses it to
// optimize queries over multi-typed entities.
package main

import (
	"fmt"
	"log"
	"time"

	"rdfshapes"
	"rdfshapes/internal/datagen/yago"
)

const actorQuery = `
PREFIX schema: <http://schema.org/>
SELECT * WHERE {
  ?a a schema:Actor .
  ?a schema:actorIn ?m .
  ?m a schema:Movie .
  ?m schema:director ?d .
  ?d schema:birthPlace ?c .
}`

func main() {
	g := yago.Generate(yago.Config{Entities: 10000, Seed: 13})
	start := time.Now()
	db, err := rdfshapes.Load(g) // no shapes supplied: inferred from data
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d triples; inferred and annotated %d node shapes / %d property shapes in %v\n\n",
		db.NumTriples(), db.Shapes().Len(), db.Shapes().PropertyShapeCount(),
		time.Since(start).Round(time.Millisecond))

	// Actors are also Persons (multi-typing): the Actor shape's scoped
	// statistics differ from both the Person shape's and the global
	// per-predicate counts.
	actor := db.Shapes().ByClass(yago.Actor)
	person := db.Shapes().ByClass(yago.Person)
	fmt.Printf("actors: %d (of %d persons)\n", actor.Count, person.Count)
	if ps := actor.Property(yago.ActedIn); ps != nil {
		fmt.Printf("actorIn triples scoped to Actor: %d over %d distinct movies\n\n",
			ps.Stats.Count, ps.Stats.DistinctCount)
	}

	plan, err := db.Explain(actorQuery, "SS")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)

	res, err := db.Query(actorQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d actor/movie/director/birthplace chains; first 3:\n", len(res.Rows))
	for i, row := range res.Rows {
		if i == 3 {
			break
		}
		fmt.Printf("  %s in %s directed by %s born in %s\n",
			row["a"], row["m"], row["d"], row["c"])
	}
}
