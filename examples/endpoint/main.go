// Endpoint: run the HTTP SPARQL endpoint over a generated dataset and
// query it as a client would — the SPARQL 1.1 Protocol with JSON
// results. The server enforces a per-query operation budget, so runaway
// queries fail fast instead of saturating the host.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"

	"rdfshapes"
	"rdfshapes/internal/datagen/lubm"
	"rdfshapes/internal/server"
)

func main() {
	g := lubm.Generate(lubm.Config{Universities: 1, Seed: 7})
	db, err := rdfshapes.Load(g,
		rdfshapes.WithShapesGraph(lubm.Shapes()),
		rdfshapes.WithOpsBudget(10<<20))
	if err != nil {
		log.Fatal(err)
	}
	// An httptest server keeps the example self-contained; cmd/server
	// binds a real port with the same handler.
	srv := httptest.NewServer(server.New(db))
	defer srv.Close()
	fmt.Printf("endpoint serving %d triples at %s\n\n", db.NumTriples(), srv.URL)

	query := `PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?prof ?course WHERE {
  ?prof a ub:FullProfessor .
  ?prof ub:teacherOf ?course .
  ?course a ub:GraduateCourse .
} LIMIT 5`

	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(query))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	var out struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]struct {
				Type  string `json:"type"`
				Value string `json:"value"`
			} `json:"bindings"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vars: %v\n", out.Head.Vars)
	for _, b := range out.Results.Bindings {
		fmt.Printf("  %s teaches %s\n", b["prof"].Value, b["course"].Value)
	}

	// ASK through the same endpoint
	ask := `PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
ASK { ?x a ub:GraduateStudent . ?x ub:advisor ?p . ?p a ub:FullProfessor }`
	resp2, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(ask))
	if err != nil {
		log.Fatal(err)
	}
	defer resp2.Body.Close()
	var askOut struct {
		Boolean bool `json:"boolean"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&askOut); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nany grad student advised by a full professor? %v\n", askOut.Boolean)

	// the annotated shapes graph is one GET away
	resp3, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	defer resp3.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp3.Body).Decode(&health); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("health: %v\n", health)
}
