// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md's per-experiment index) plus the ablations it calls out and
// micro-benchmarks of the hot paths. The rendered tables themselves come
// from `go run ./cmd/repro`; these benchmarks measure the experiments
// and expose their headline numbers as custom metrics.
package rdfshapes_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"rdfshapes"

	"rdfshapes/internal/annotator"
	"rdfshapes/internal/baselines/charsets"
	"rdfshapes/internal/baselines/sumrdf"
	"rdfshapes/internal/bench"
	"rdfshapes/internal/cardinality"
	"rdfshapes/internal/core"
	"rdfshapes/internal/datagen/lubm"
	"rdfshapes/internal/engine"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/live"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
	"rdfshapes/internal/workloads"
)

// benchCfg keeps experiment benchmarks affordable: 3 shuffled runs
// instead of the paper's 10 (cmd/repro uses the full 10).
var benchCfg = bench.RunConfig{Runs: 3, Seed: 1}

var datasets struct {
	once               sync.Once
	lubm, watdiv, yago *bench.Dataset
	err                error
}

func loadDatasets(b *testing.B) (*bench.Dataset, *bench.Dataset, *bench.Dataset) {
	b.Helper()
	datasets.once.Do(func() {
		if datasets.lubm, datasets.err = bench.LUBMDataset(bench.Small); datasets.err != nil {
			return
		}
		if datasets.watdiv, datasets.err = bench.WatDivDataset(bench.Small); datasets.err != nil {
			return
		}
		datasets.yago, datasets.err = bench.YAGODataset(bench.Small)
	})
	if datasets.err != nil {
		b.Fatal(datasets.err)
	}
	return datasets.lubm, datasets.watdiv, datasets.yago
}

// BenchmarkTable2 regenerates Table 2a/2b: the example query planned with
// global and shape statistics, including true join cardinalities.
func BenchmarkTable2(b *testing.B) {
	d, _, _ := loadDatasets(b)
	b.ResetTimer()
	var est, truth float64
	for i := 0; i < b.N; i++ {
		ts, err := bench.Table2Experiment(d, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		est, truth = ts[1].EstTotal, ts[1].TrueTotal
	}
	b.ReportMetric(est, "ss-est-cost")
	b.ReportMetric(truth, "ss-true-cost")
}

// BenchmarkTable3 regenerates Table 3: dataset characteristics.
func BenchmarkTable3(b *testing.B) {
	l, w, y := loadDatasets(b)
	b.ResetTimer()
	var triples int64
	for i := 0; i < b.N; i++ {
		rows := bench.Table3(l, w, y)
		for _, r := range rows {
			triples += r.Triples
		}
	}
	b.ReportMetric(float64(triples)/float64(b.N), "triples-total")
}

func runtimeBenchmark(b *testing.B, d *bench.Dataset) {
	b.Helper()
	var wins bench.PlanWinners
	for i := 0; i < b.N; i++ {
		rs, err := bench.RuntimeExperiment(d, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		wins = bench.Winners(rs)
	}
	b.ReportMetric(float64(wins.Wins["SS"]), "ss-wins")
	b.ReportMetric(wins.SSOverhead, "ss-overhead-x")
	b.ReportMetric(wins.GSOverhead, "gs-overhead-x")
}

// BenchmarkFigure4a regenerates Figure 4a: LUBM query runtimes across the
// six approaches under shuffled inputs.
func BenchmarkFigure4a(b *testing.B) {
	d, _, _ := loadDatasets(b)
	b.ResetTimer()
	runtimeBenchmark(b, d)
}

// BenchmarkFigure4b regenerates Figure 4b: YAGO-4 query runtimes.
func BenchmarkFigure4b(b *testing.B) {
	_, _, d := loadDatasets(b)
	b.ResetTimer()
	runtimeBenchmark(b, d)
}

func qerrorBenchmark(b *testing.B, d *bench.Dataset) {
	b.Helper()
	var buckets map[string][3]int
	for i := 0; i < b.N; i++ {
		qs, err := bench.QErrorExperiment(d, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		buckets = bench.QErrorBuckets(qs)
	}
	ss := buckets["SS"]
	b.ReportMetric(float64(ss[0]), "ss-qerr-lt15")
	b.ReportMetric(float64(ss[2]), "ss-qerr-ge250")
}

// BenchmarkFigure4c regenerates Figure 4c: LUBM q-errors.
func BenchmarkFigure4c(b *testing.B) {
	d, _, _ := loadDatasets(b)
	b.ResetTimer()
	qerrorBenchmark(b, d)
}

// BenchmarkFigure4d regenerates Figure 4d: YAGO-4 q-errors.
func BenchmarkFigure4d(b *testing.B) {
	_, _, d := loadDatasets(b)
	b.ResetTimer()
	qerrorBenchmark(b, d)
}

func costBenchmark(b *testing.B, d *bench.Dataset) {
	b.Helper()
	var ratioSum float64
	var n int
	for i := 0; i < b.N; i++ {
		cs, err := bench.CostExperiment(d, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		ratioSum, n = 0, 0
		for _, c := range cs {
			if c.Approach == "SS" && c.TrueCost > 0 {
				ratioSum += cardinality.QError(c.EstimatedCost, c.TrueCost)
				n++
			}
		}
	}
	if n > 0 {
		b.ReportMetric(ratioSum/float64(n), "ss-cost-qerr")
	}
}

// BenchmarkFigure4e regenerates Figure 4e: LUBM estimated vs true plan
// cost for SS and GS.
func BenchmarkFigure4e(b *testing.B) {
	d, _, _ := loadDatasets(b)
	b.ResetTimer()
	costBenchmark(b, d)
}

// BenchmarkFigure4f regenerates Figure 4f: YAGO-4 estimated vs true cost.
func BenchmarkFigure4f(b *testing.B) {
	_, _, d := loadDatasets(b)
	b.ResetTimer()
	costBenchmark(b, d)
}

// BenchmarkAppendixWatDiv regenerates the extended version's appendix:
// WatDiv runtimes and q-errors.
func BenchmarkAppendixWatDiv(b *testing.B) {
	_, d, _ := loadDatasets(b)
	b.ResetTimer()
	runtimeBenchmark(b, d)
}

// BenchmarkPreprocessing regenerates P1: the relative preprocessing cost
// of annotation vs characteristic sets vs summarization.
func BenchmarkPreprocessing(b *testing.B) {
	d, _, _ := loadDatasets(b)
	st := d.Store
	g := d.Global
	b.ResetTimer()
	b.Run("Annotate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shapes := lubm.Shapes()
			if err := annotator.Annotate(shapes, st); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CharacteristicSets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			charsets.Build(st, g)
		}
	})
	b.Run("SumRDFSummary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sumrdf.Build(st, g, bench.SummaryTargetSize); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GlobalStats", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gstats.Compute(st)
		}
	})
}

// BenchmarkAblationScopedDistinct (AB1) compares the paper's DSC choice
// (node shape count) against per-property distinct subject counts, on
// WatDiv whose optional properties make the two diverge.
func BenchmarkAblationScopedDistinct(b *testing.B) {
	_, d, _ := loadDatasets(b)
	for _, scoped := range []bool{false, true} {
		name := "nodeCount"
		if scoped {
			name = "scopedDSC"
		}
		b.Run(name, func(b *testing.B) {
			ss := cardinality.NewShapeEstimator(d.Shapes, d.Global)
			ss.UseScopedDSC = scoped
			var meanQ float64
			for i := 0; i < b.N; i++ {
				meanQ = 0
				n := 0
				for _, wq := range d.Queries {
					q, err := wq.Parse()
					if err != nil {
						b.Fatal(err)
					}
					plan := core.Optimize(q, ss)
					er, err := engine.Run(d.Store, plan.Order(), engine.Options{CountOnly: true, MaxOps: bench.DefaultMaxOps})
					if err != nil {
						b.Fatal(err)
					}
					est, _ := cardinality.SequenceEstimate(q, plan.Order(), ss)
					meanQ += cardinality.QError(est, float64(er.Count))
					n++
				}
				meanQ /= float64(n)
			}
			b.ReportMetric(meanQ, "mean-qerror")
		})
	}
}

// BenchmarkAblationSummarySize (AB2) sweeps the SumRDF summary target
// size on the heterogeneous YAGO analog, whose many class-set signatures
// make the bucket budget bind: accuracy and estimation cost both grow
// with the summary.
func BenchmarkAblationSummarySize(b *testing.B) {
	_, _, d := loadDatasets(b)
	for _, size := range []int{4, 16, 64, 1024} {
		b.Run(sizeName(size), func(b *testing.B) {
			var meanQ float64
			for i := 0; i < b.N; i++ {
				s, err := sumrdf.Build(d.Store, d.Global, size)
				if err != nil {
					b.Fatal(err)
				}
				meanQ = 0
				n := 0
				for _, wq := range d.Queries {
					q, err := wq.Parse()
					if err != nil {
						b.Fatal(err)
					}
					pl, err := d.Planner("SS")
					if err != nil {
						b.Fatal(err)
					}
					er, err := engine.Run(d.Store, pl.Plan(q).Order(), engine.Options{CountOnly: true, MaxOps: bench.DefaultMaxOps})
					if err != nil {
						b.Fatal(err)
					}
					meanQ += cardinality.QError(s.EstimateBGP(q), float64(er.Count))
					n++
				}
				meanQ /= float64(n)
			}
			b.ReportMetric(meanQ, "mean-qerror")
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1024:
		return string(rune('0'+n/1024)) + "k"
	default:
		if n >= 100 {
			return string(rune('0'+n/100)) + string(rune('0'+(n/10)%10)) + string(rune('0'+n%10))
		}
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
}

// BenchmarkAblationGreedyVsExact (AB3) measures the greedy Algorithm 1
// against the cost-optimal exhaustive order under the same estimates.
func BenchmarkAblationGreedyVsExact(b *testing.B) {
	d, _, _ := loadDatasets(b)
	ss := cardinality.NewShapeEstimator(d.Shapes, d.Global)
	var gap float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gap = 0
		n := 0
		for _, wq := range d.Queries {
			q, err := wq.Parse()
			if err != nil {
				b.Fatal(err)
			}
			if len(q.Patterns) > core.MaxExhaustivePatterns {
				continue
			}
			greedy := core.Optimize(q, ss)
			exact := core.OptimizeExhaustive(q, ss)
			if exact.Cost > 0 {
				gap += greedy.Cost / exact.Cost
				n++
			}
		}
		gap /= float64(n)
	}
	b.ReportMetric(gap, "greedy/optimal-cost")
}

// ---- micro-benchmarks of the substrate hot paths ----

// BenchmarkStoreScan measures indexed range scans.
func BenchmarkStoreScan(b *testing.B) {
	d, _, _ := loadDatasets(b)
	st := d.Store
	pred := st.TypeID()
	if pred == 0 {
		b.Fatal("rdf:type not in dictionary")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		st.Scan(store.IDTriple{P: pred}, func(store.IDTriple) bool {
			n++
			return true
		})
	}
}

// BenchmarkEngineStarQuery measures a 5-pattern star execution.
func BenchmarkEngineStarQuery(b *testing.B) {
	d, _, _ := loadDatasets(b)
	wq, err := d.QueryByName("S2")
	if err != nil {
		b.Fatal(err)
	}
	q, err := wq.Parse()
	if err != nil {
		b.Fatal(err)
	}
	pl, err := d.Planner("SS")
	if err != nil {
		b.Fatal(err)
	}
	order := pl.Plan(q).Order()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(d.Store, order, engine.Options{CountOnly: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineObserverOverhead compares engine.Run with the observer
// hook disabled (the default) and enabled. The disabled case must match
// the pre-observability engine: the hook costs two nil checks and no
// clock reads when Options.Observer is nil.
func BenchmarkEngineObserverOverhead(b *testing.B) {
	d, _, _ := loadDatasets(b)
	wq, err := d.QueryByName("S2")
	if err != nil {
		b.Fatal(err)
	}
	q, err := wq.Parse()
	if err != nil {
		b.Fatal(err)
	}
	pl, err := d.Planner("SS")
	if err != nil {
		b.Fatal(err)
	}
	order := pl.Plan(q).Order()
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(d.Store, order, engine.Options{CountOnly: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		var last engine.ExecReport
		obs := func(r engine.ExecReport) { last = r }
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(d.Store, order, engine.Options{CountOnly: true, Observer: obs}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(last.Ops), "ops-reported")
	})
}

// BenchmarkOptimize measures Algorithm 1 on the 9-pattern example query.
func BenchmarkOptimize(b *testing.B) {
	d, _, _ := loadDatasets(b)
	wq, err := d.QueryByName("C0")
	if err != nil {
		b.Fatal(err)
	}
	q, err := wq.Parse()
	if err != nil {
		b.Fatal(err)
	}
	ss := cardinality.NewShapeEstimator(d.Shapes, d.Global)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Optimize(q, ss)
	}
}

// BenchmarkParse measures the SPARQL parser.
func BenchmarkParse(b *testing.B) {
	d, _, _ := loadDatasets(b)
	wq, err := d.QueryByName("C0")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Parse(wq.Text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanningTime regenerates P2: pure optimization latency per
// approach (the paper's "planning is always < 20 ms" claim).
func BenchmarkPlanningTime(b *testing.B) {
	d, _, _ := loadDatasets(b)
	b.ResetTimer()
	var maxUs float64
	for i := 0; i < b.N; i++ {
		rs, err := bench.PlanningTimeExperiment(d, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		maxUs = 0
		for _, r := range rs {
			if r.MaxUs > maxUs {
				maxUs = r.MaxUs
			}
		}
	}
	b.ReportMetric(maxUs, "max-plan-µs")
}

// BenchmarkAnnotatorScaling (AB4) verifies the Shapes Annotator scales
// linearly with data size: one pass over the subject-grouped index.
func BenchmarkAnnotatorScaling(b *testing.B) {
	for _, unis := range []int{1, 2, 4} {
		g := lubm.Generate(lubm.Config{Universities: unis, Seed: 7})
		st := store.Load(g)
		b.Run(fmt.Sprintf("universities-%d", unis), func(b *testing.B) {
			b.ReportMetric(float64(st.Len()), "triples")
			for i := 0; i < b.N; i++ {
				shapes := lubm.Shapes()
				if err := annotator.Annotate(shapes, st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationObjectClassCap (AB5) measures the beyond-paper DOC
// refinement: capping a scoped pattern's distinct object count at the
// object variable's class size when the BGP types the object.
func BenchmarkAblationObjectClassCap(b *testing.B) {
	d, _, _ := loadDatasets(b)
	for _, capped := range []bool{false, true} {
		name := "paper"
		if capped {
			name = "objectClassCap"
		}
		b.Run(name, func(b *testing.B) {
			ss := cardinality.NewShapeEstimator(d.Shapes, d.Global)
			ss.UseObjectClassCap = capped
			var meanQ float64
			for i := 0; i < b.N; i++ {
				meanQ = 0
				n := 0
				for _, wq := range d.Queries {
					q, err := wq.Parse()
					if err != nil {
						b.Fatal(err)
					}
					plan := core.Optimize(q, ss)
					er, err := engine.Run(d.Store, plan.Order(), engine.Options{CountOnly: true, MaxOps: bench.DefaultMaxOps})
					if err != nil {
						b.Fatal(err)
					}
					est, _ := cardinality.SequenceEstimate(q, plan.Order(), ss)
					meanQ += cardinality.QError(est, float64(er.Count))
					n++
				}
				meanQ /= float64(n)
			}
			b.ReportMetric(meanQ, "mean-qerror")
		})
	}
}

// BenchmarkStoreLoad measures bulk loading + index construction (the
// secondary orderings sort in parallel).
func BenchmarkStoreLoad(b *testing.B) {
	g := lubm.Generate(lubm.Config{Universities: 1, Seed: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := store.Load(g)
		if st.Len() == 0 {
			b.Fatal("empty store")
		}
	}
}

// BenchmarkExtendedOperators measures the operators beyond the paper's
// conjunctive BGPs — FILTER, OPTIONAL, UNION, property paths, ORDER BY —
// end to end through the public facade.
func BenchmarkExtendedOperators(b *testing.B) {
	g := lubm.Generate(lubm.Config{Universities: 1, Seed: 7})
	db, err := rdfshapes.Load(g, rdfshapes.WithShapesGraph(lubm.Shapes()))
	if err != nil {
		b.Fatal(err)
	}
	for _, wq := range workloads.LUBMExtended() {
		b.Run(wq.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(wq.Text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLiveScanEmptyOverlay pins the live layer's read overhead: with
// an empty overlay a snapshot scan must stay within a small constant
// factor of the frozen store it wraps (it is one pointer-pair check away
// from the same code path).
func BenchmarkLiveScanEmptyOverlay(b *testing.B) {
	d, _, _ := loadDatasets(b)
	st := d.Store
	pred := st.TypeID()
	if pred == 0 {
		b.Fatal("rdf:type not in dictionary")
	}
	b.Run("frozen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			st.Scan(store.IDTriple{P: pred}, func(store.IDTriple) bool {
				n++
				return true
			})
		}
	})
	b.Run("live", func(b *testing.B) {
		snap := live.Wrap(st).Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			snap.Scan(store.IDTriple{P: pred}, func(store.IDTriple) bool {
				n++
				return true
			})
		}
	})
}

// BenchmarkLiveUpdateThroughput measures committed SPARQL UPDATE batches
// through the facade — parse, overlay commit, incremental statistics
// maintenance, planner refresh — reporting sustained triples per second.
func BenchmarkLiveUpdateThroughput(b *testing.B) {
	const batch = 100
	db, err := rdfshapes.Load(lubm.Generate(lubm.Config{Universities: 1, Seed: 7}),
		rdfshapes.WithShapesGraph(lubm.Shapes()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		sb.WriteString("INSERT DATA {\n")
		for j := 0; j < batch; j++ {
			fmt.Fprintf(&sb, "<http://live/s%d-%d> <http://live/p> <http://live/o%d> .\n", i, j, j)
		}
		sb.WriteString("}")
		if _, err := db.Update(sb.String()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*batch)/elapsed, "triples/s")
	}
}

// BenchmarkParallelBGP is the tentpole speedup pair: a join-heavy LUBM
// cross-product workload query (C2) executed serially and with 4
// morsel-parallel workers over the same SS plan. On an N-core machine
// K=4 approaches min(4, N)× speedup — near-linear up to the core count —
// because per-plan work (Ops, Intermediate) is identical and only the
// driver range is divided; on a single core it degrades gracefully
// to ~1×. The differential test in internal/integration proves the
// result sets and accounting are identical.
func BenchmarkParallelBGP(b *testing.B) {
	d, _, _ := loadDatasets(b)
	wq, err := d.QueryByName("C2")
	if err != nil {
		b.Fatal(err)
	}
	q, err := wq.Parse()
	if err != nil {
		b.Fatal(err)
	}
	pl, err := d.Planner("SS")
	if err != nil {
		b.Fatal(err)
	}
	order := pl.Plan(q).Order()
	var serialOps int64
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var ops int64
			for i := 0; i < b.N; i++ {
				er, err := engine.Run(d.Store, order,
					engine.Options{CountOnly: true, Filters: q.Filters, Parallelism: k})
				if err != nil {
					b.Fatal(err)
				}
				ops = er.Ops
			}
			if k == 1 {
				serialOps = ops
			} else if ops != serialOps && serialOps != 0 {
				b.Fatalf("parallel Ops %d != serial Ops %d", ops, serialOps)
			}
			b.ReportMetric(float64(ops), "ops/query")
		})
	}
}
