package obsv

import (
	"fmt"
	"sync"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing(3)
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("empty ring: Len=%d Total=%d", r.Len(), r.Total())
	}
	for i := 1; i <= 5; i++ {
		id := r.Add(QueryTrace{Query: fmt.Sprintf("q%d", i)})
		if id != uint64(i) {
			t.Errorf("Add #%d returned id %d", i, id)
		}
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
	got := r.Recent(0)
	if len(got) != 3 {
		t.Fatalf("Recent(0) returned %d traces", len(got))
	}
	// newest first: q5, q4, q3; q1/q2 evicted
	for i, want := range []string{"q5", "q4", "q3"} {
		if got[i].Query != want {
			t.Errorf("Recent[%d].Query = %q, want %q", i, got[i].Query, want)
		}
		if got[i].ID != uint64(5-i) {
			t.Errorf("Recent[%d].ID = %d, want %d", i, got[i].ID, 5-i)
		}
	}
	if got = r.Recent(2); len(got) != 2 || got[0].Query != "q5" {
		t.Errorf("Recent(2) = %v", got)
	}
	if got = r.Recent(10); len(got) != 3 {
		t.Errorf("Recent(10) returned %d traces", len(got))
	}
}

func TestRingPartiallyFull(t *testing.T) {
	r := NewRing(8)
	r.Add(QueryTrace{Query: "a"})
	r.Add(QueryTrace{Query: "b"})
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	got := r.Recent(0)
	if len(got) != 2 || got[0].Query != "b" || got[1].Query != "a" {
		t.Errorf("Recent(0) = %v", got)
	}
}

func TestRingDefaultSize(t *testing.T) {
	if n := NewCollector(0).RingSize(); n != DefaultRingSize {
		t.Errorf("default ring size = %d, want %d", n, DefaultRingSize)
	}
	if n := NewCollector(-5).RingSize(); n != DefaultRingSize {
		t.Errorf("negative ring size = %d, want %d", n, DefaultRingSize)
	}
}

// TestRingConcurrentWrites exercises wraparound under concurrent writers
// and readers; run with -race.
func TestRingConcurrentWrites(t *testing.T) {
	const writers = 8
	const perWriter = 200
	r := NewRing(16)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Add(QueryTrace{Query: fmt.Sprintf("w%d-%d", w, i), Ops: int64(i)})
				if i%17 == 0 {
					r.Recent(4)
					r.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != writers*perWriter {
		t.Errorf("Total = %d, want %d", r.Total(), writers*perWriter)
	}
	got := r.Recent(0)
	if len(got) != 16 {
		t.Fatalf("Recent(0) returned %d traces", len(got))
	}
	// IDs must be the 16 highest sequence numbers, strictly descending.
	for i := 1; i < len(got); i++ {
		if got[i].ID != got[i-1].ID-1 {
			t.Errorf("IDs not contiguous descending: %d then %d", got[i-1].ID, got[i].ID)
		}
	}
	if got[0].ID != writers*perWriter {
		t.Errorf("newest ID = %d, want %d", got[0].ID, writers*perWriter)
	}
}
