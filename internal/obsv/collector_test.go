package obsv

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func sampleTrace() QueryTrace {
	return QueryTrace{
		Query:   "SELECT * WHERE { ?s ?p ?o }",
		Planner: "SS",
		Patterns: []PatternTrace{
			{Pattern: "?s a <C>", Estimated: 100, Actual: 100},
			{Pattern: "?s <p> ?o", Estimated: 50, Actual: 200},
		},
		EstimatedCost: 150,
		Rows:          10,
		Ops:           345,
		WallNanos:     int64(2 * time.Millisecond),
	}
}

func TestQError(t *testing.T) {
	cases := []struct {
		est, act, want float64
	}{
		{100, 100, 1},
		{50, 200, 4},
		{200, 50, 4}, // symmetric
		{0, 10, 10},  // est clamped to 1
		{10, 0, 10},  // actual clamped to 1
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := QError(c.est, c.act); got != c.want {
			t.Errorf("QError(%v, %v) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}

func TestTraceFinish(t *testing.T) {
	tr := sampleTrace()
	tr.Finish()
	if tr.ActualCost != 300 {
		t.Errorf("ActualCost = %d, want 300", tr.ActualCost)
	}
	if tr.Patterns[0].QError != 1 || tr.Patterns[1].QError != 4 {
		t.Errorf("pattern q-errors = %v, %v, want 1, 4", tr.Patterns[0].QError, tr.Patterns[1].QError)
	}
	if tr.QError != 4 { // final intermediate: est 50 vs actual 200
		t.Errorf("QError = %v, want 4", tr.QError)
	}
}

func TestCollectorRecord(t *testing.T) {
	c := NewCollector(4)
	c.Record(sampleTrace())

	bad := sampleTrace()
	bad.Err = "boom"
	c.Record(bad)

	slow := sampleTrace()
	slow.TimedOut = true
	c.Record(slow)

	if got := c.queries.Value("SS", "ok"); got != 1 {
		t.Errorf(`queries{SS,ok} = %v, want 1`, got)
	}
	if got := c.queries.Value("SS", "error"); got != 1 {
		t.Errorf(`queries{SS,error} = %v, want 1`, got)
	}
	if got := c.queries.Value("SS", "timeout"); got != 1 {
		t.Errorf(`queries{SS,timeout} = %v, want 1`, got)
	}
	// q-error histogram only counts complete ok runs
	if got := c.qerror.Count("SS"); got != 1 {
		t.Errorf("qerror count = %d, want 1", got)
	}
	if got := c.duration.Count("SS"); got != 3 {
		t.Errorf("duration count = %d, want 3", got)
	}
	if got := c.rowsVisited.Value(); got != 3*345 {
		t.Errorf("rows visited = %v, want %v", got, 3*345)
	}
	if got := c.TraceCount(); got != 3 {
		t.Errorf("TraceCount = %d, want 3", got)
	}
	recent := c.Recent(1)
	if len(recent) != 1 || !recent[0].TimedOut {
		t.Errorf("Recent(1) = %+v, want the timed-out trace", recent)
	}
	if recent[0].Time.IsZero() {
		t.Error("trace time not stamped")
	}
}

func TestCollectorSkipsQErrorForPartialRuns(t *testing.T) {
	c := NewCollector(4)
	limited := sampleTrace()
	limited.LimitHit = true
	c.Record(limited)
	if got := c.qerror.Count("SS"); got != 0 {
		t.Errorf("qerror count = %d, want 0 for limit-hit run", got)
	}
	if got := c.queries.Value("SS", "ok"); got != 1 {
		t.Errorf(`queries{SS,ok} = %v, want 1 (limit-hit is still ok)`, got)
	}
}

func TestCollectorTruncatesQuery(t *testing.T) {
	c := NewCollector(2)
	tr := sampleTrace()
	tr.Query = strings.Repeat("x", MaxQueryLen+100)
	c.Record(tr)
	if got := len(c.Recent(1)[0].Query); got != MaxQueryLen {
		t.Errorf("stored query length = %d, want %d", got, MaxQueryLen)
	}
}

func TestCollectorUnknownPlanner(t *testing.T) {
	c := NewCollector(2)
	tr := sampleTrace()
	tr.Planner = ""
	c.Record(tr)
	if got := c.queries.Value("unknown", "ok"); got != 1 {
		t.Errorf(`queries{unknown,ok} = %v, want 1`, got)
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.Record(sampleTrace()) // must not panic
	c.RegisterGauge("g", "G.", func() float64 { return 1 })
	if c.Recent(5) != nil {
		t.Error("nil Recent should return nil")
	}
	if c.TraceCount() != 0 || c.RingSize() != 0 {
		t.Error("nil counts should be zero")
	}
	if err := c.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
}

// TestWritePrometheusInventory pins the full exported metric surface:
// every name documented in docs/OBSERVABILITY.md appears, gauges first.
func TestWritePrometheusInventory(t *testing.T) {
	c := NewCollector(4)
	c.RegisterGauge("rdfshapes_dataset_triples", "Triples.", func() float64 { return 99 })
	c.Record(sampleTrace())
	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"rdfshapes_dataset_triples 99",
		MetricTracesWritten + " 1",
		`rdfshapes_queries_total{planner="SS",status="ok"} 1`,
		`rdfshapes_query_duration_seconds_bucket{planner="SS",le="0.0025"} 1`,
		`rdfshapes_query_duration_seconds_bucket{planner="SS",le="+Inf"} 1`,
		`rdfshapes_plan_qerror_bucket{planner="SS",le="5"} 1`,
		`rdfshapes_plan_qerror_count{planner="SS"} 1`,
		"rdfshapes_index_rows_visited_total 345",
		"rdfshapes_intermediate_results_total 300",
		"rdfshapes_result_rows_total 10",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestCollectorConcurrent hammers Record and WritePrometheus together;
// run with -race.
func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Record(sampleTrace())
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := c.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := c.TraceCount(); got != 400 {
		t.Errorf("TraceCount = %d, want 400", got)
	}
}

// TestAuxiliaryHistogram covers the Histogram aux API: declaration on
// first use, same-family reuse, nil-collector detachment, and rendering
// after the auxiliary counters.
func TestAuxiliaryHistogram(t *testing.T) {
	c := NewCollector(4)
	h := c.Histogram(MetricCheckpointDuration,
		"Checkpoint wall time in seconds.", CheckpointDurationBuckets)
	h.Observe(0.2)
	h.Observe(7)
	if again := c.Histogram(MetricCheckpointDuration, "other", nil); again != h {
		t.Error("second Histogram call returned a different family")
	}
	c.Counter("rdfshapes_zzz_total", "Sorts after histograms alphabetically but renders first.").Add(1)
	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE " + MetricCheckpointDuration + " histogram",
		MetricCheckpointDuration + `_bucket{le="0.25"} 1`,
		MetricCheckpointDuration + `_bucket{le="+Inf"} 2`,
		MetricCheckpointDuration + "_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "rdfshapes_zzz_total") > strings.Index(out, MetricCheckpointDuration+"_count") {
		t.Error("auxiliary counter rendered after auxiliary histogram")
	}
	// nil collector: detached but usable
	var nc *Collector
	nc.Histogram("x", "y", nil).Observe(1)
}

// TestRegisterGaugeVec checks labeled read-at-scrape gauges: one series
// per map key, sorted, label values escaped, nil-safe registration.
func TestRegisterGaugeVec(t *testing.T) {
	c := NewCollector(4)
	c.RegisterGaugeVec("rdfshapes_template_qerror", "Per-template q-error.", "template",
		func() map[string]float64 {
			return map[string]float64{
				`?v0 a <http://ex/T> .`: 2.5,
				"with \"quote\"":        1,
			}
		})
	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE rdfshapes_template_qerror gauge",
		`rdfshapes_template_qerror{template="?v0 a <http://ex/T> ."} 2.5`,
		`rdfshapes_template_qerror{template="with \"quote\""} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "?v0 a") > strings.Index(out, "with") {
		t.Error("gauge-vec series not sorted by label value")
	}

	var nilC *Collector
	nilC.RegisterGaugeVec("x", "X.", "l", func() map[string]float64 { return nil })
}
