package obsv

import (
	"math"
	"time"
)

// PatternTrace is the per-pattern accounting of one executed plan step:
// the estimated join cardinality the planner committed to, the actual
// intermediate-result size the engine measured (the E⋈ vs. true-
// cardinality columns of the paper's Table 2), and their q-error.
type PatternTrace struct {
	// Pattern is the triple pattern in SPARQL syntax.
	Pattern string `json:"pattern"`
	// Estimated is the planner's join-cardinality estimate for the
	// intermediate result after this step.
	Estimated float64 `json:"estimated"`
	// Actual is the measured intermediate-result size after this step.
	// When the trace is partial (TimedOut or LimitHit), it is a lower
	// bound: execution stopped before the full enumeration.
	Actual int64 `json:"actual"`
	// QError is QError(Estimated, Actual), filled by Finish.
	QError float64 `json:"qerror"`
	// Algo names the join algorithm this step actually executed with:
	// "merge" for steps of a sort-merge prefix, "nl" for nested-loop
	// join steps, empty for the leading scan of a nested-loop plan.
	Algo string `json:"algo,omitempty"`
}

// QueryTrace records one query execution end to end.
type QueryTrace struct {
	// ID is a monotonically increasing sequence number assigned when the
	// trace is recorded (1-based; 0 means "not yet recorded").
	ID uint64 `json:"id"`
	// Time is when the trace was recorded.
	Time time.Time `json:"time"`
	// Query is the query text (or a workload query name), truncated to
	// MaxQueryLen bytes at record time.
	Query string `json:"query,omitempty"`
	// Planner names the statistics source that produced the plan
	// ("SS", "GS", ...).
	Planner string `json:"planner"`
	// Plan is the rendered join order, as produced by /explain.
	Plan string `json:"plan,omitempty"`
	// Patterns holds per-step estimated vs. actual cardinalities in
	// execution order.
	Patterns []PatternTrace `json:"patterns,omitempty"`
	// EstimatedCost is the plan's estimated cost (sum of estimated
	// intermediate sizes, the objective of the paper's Problem 2).
	EstimatedCost float64 `json:"estimatedCost,omitempty"`
	// ActualCost is the measured plan cost: the sum of actual
	// intermediate sizes. Filled by Finish.
	ActualCost int64 `json:"actualCost,omitempty"`
	// QError is the q-error of the final intermediate cardinality —
	// estimated vs. actual result cardinality before solution modifiers.
	// Filled by Finish.
	QError float64 `json:"qerror,omitempty"`
	// Rows is the number of result rows produced.
	Rows int64 `json:"rows"`
	// Ops is the number of index rows visited.
	Ops int64 `json:"ops"`
	// WallNanos is the execution wall time in nanoseconds.
	WallNanos int64 `json:"wallNanos"`
	// TimedOut is true when the operation budget interrupted execution.
	TimedOut bool `json:"timedOut,omitempty"`
	// LimitHit is true when a result LIMIT stopped execution early, so
	// the per-pattern actuals are lower bounds.
	LimitHit bool `json:"limitHit,omitempty"`
	// Truncated is true when an intermediate or row budget stopped
	// execution early and a partial result was returned.
	Truncated bool `json:"truncated,omitempty"`
	// Termination names why execution ended before completing, one of
	// "deadline", "canceled", "ops-budget", "truncated", "limit", or
	// "error"; empty for a complete run.
	Termination string `json:"termination,omitempty"`
	// Err holds the error message for failed queries.
	Err string `json:"error,omitempty"`
}

// MaxQueryLen caps the query text stored per trace.
const MaxQueryLen = 2048

// QError is the estimation-precision metric of the paper's Section 7:
//
//	max( max(1,est)/max(1,true), max(1,true)/max(1,est) )
//
// It is symmetric, ≥ 1, and 1 means a perfect estimate. This is the
// canonical implementation; internal/cardinality re-exports it.
func QError(estimated, actual float64) float64 {
	e := math.Max(1, estimated)
	a := math.Max(1, actual)
	return math.Max(e/a, a/e)
}

// Partial reports whether execution stopped before enumerating every
// solution, making Actual values lower bounds.
func (t *QueryTrace) Partial() bool { return t.TimedOut || t.LimitHit || t.Truncated }

// Finish computes the derived accounting fields — per-pattern q-errors,
// the measured plan cost, and the final-cardinality q-error — from the
// raw Estimated/Actual values. Callers populate Patterns and then call
// Finish before recording the trace.
func (t *QueryTrace) Finish() {
	t.ActualCost = 0
	for i := range t.Patterns {
		p := &t.Patterns[i]
		p.QError = QError(p.Estimated, float64(p.Actual))
		t.ActualCost += p.Actual
	}
	if n := len(t.Patterns); n > 0 {
		last := t.Patterns[n-1]
		t.QError = QError(last.Estimated, float64(last.Actual))
	}
}
