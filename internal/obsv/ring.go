package obsv

import "sync"

// DefaultRingSize is the trace buffer capacity when none is given.
const DefaultRingSize = 256

// Ring is a bounded, concurrency-safe buffer of the most recent query
// traces. Once full, each Add overwrites the oldest entry; memory use is
// fixed at the capacity chosen at construction.
type Ring struct {
	mu  sync.Mutex
	buf []QueryTrace
	seq uint64 // total traces ever added
}

// NewRing returns a ring holding the last n traces (n <= 0 selects
// DefaultRingSize).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{buf: make([]QueryTrace, n)}
}

// Add stores t, evicting the oldest trace when full, and returns the
// 1-based sequence number assigned to t.
func (r *Ring) Add(t QueryTrace) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	t.ID = r.seq
	r.buf[int((r.seq-1)%uint64(len(r.buf)))] = t
	return r.seq
}

// Len returns the number of traces currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq < uint64(len(r.buf)) {
		return int(r.seq)
	}
	return len(r.buf)
}

// Total returns the number of traces ever added, including evicted ones.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Recent returns up to n traces, newest first (n <= 0 means all held).
func (r *Ring) Recent(n int) []QueryTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	held := len(r.buf)
	if r.seq < uint64(held) {
		held = int(r.seq)
	}
	if n <= 0 || n > held {
		n = held
	}
	out := make([]QueryTrace, 0, n)
	for i := 0; i < n; i++ {
		idx := int((r.seq - 1 - uint64(i)) % uint64(len(r.buf)))
		out = append(out, r.buf[idx])
	}
	return out
}
