package obsv

import (
	"io"
	"sync"
	"time"
)

// Exported metric names, all prefixed rdfshapes_. docs/OBSERVABILITY.md
// documents each one; tests pin the full inventory.
const (
	MetricQueries       = "rdfshapes_queries_total"
	MetricDuration      = "rdfshapes_query_duration_seconds"
	MetricQError        = "rdfshapes_plan_qerror"
	MetricRowsVisited   = "rdfshapes_index_rows_visited_total"
	MetricIntermediate  = "rdfshapes_intermediate_results_total"
	MetricResultRows    = "rdfshapes_result_rows_total"
	MetricTracesWritten = "rdfshapes_traces_recorded_total"
)

// Adaptive re-optimization metric names (counted by the facade's
// per-template plan cache; see WithAdaptiveReplan in the root package).
const (
	MetricAdaptiveReplans = "rdfshapes_adaptive_replans_total"
	MetricTemplateQError  = "rdfshapes_template_qerror"
)

// Join-algorithm selection metric name: join steps executed, labeled by
// the physical algorithm the optimizer chose ({algo="merge"} vs
// {algo="nl"}). Counted by the facade from the engine's report of the
// actually executed merge width, so planner annotations that fall back
// at execution time are counted as nested-loop.
const MetricJoinAlgo = "rdfshapes_join_algo_total"

// Sharded-execution metric names (maintained as atomics by the shard
// coordinator, exported at scrape time by the server).
const (
	MetricShardRowsScanned = "rdfshapes_shard_rows_scanned_total"
	MetricShardsPruned     = "rdfshapes_shards_pruned_total"
)

// Durability metric names (counted by the facade around internal/wal).
const (
	MetricRecoveries         = "rdfshapes_recoveries_total"
	MetricRecordsReplayed    = "rdfshapes_wal_records_replayed_total"
	MetricTornTruncations    = "rdfshapes_wal_torn_truncations_total"
	MetricSnapshotFallbacks  = "rdfshapes_snapshot_fallbacks_total"
	MetricCheckpoints        = "rdfshapes_checkpoints_total"
	MetricCheckpointDuration = "rdfshapes_checkpoint_duration_seconds"
)

// Replication metric names (maintained by the follower and router in
// internal/repl, exported at scrape time by the server).
const (
	MetricReplLagRecords   = "rdfshapes_repl_lag_records"
	MetricReplStaleness    = "rdfshapes_repl_staleness_seconds"
	MetricReplConnected    = "rdfshapes_repl_connected"
	MetricReplApplied      = "rdfshapes_repl_records_applied_total"
	MetricReplReconnects   = "rdfshapes_repl_reconnects_total"
	MetricReplBootstraps   = "rdfshapes_repl_bootstraps_total"
	MetricReplTornStreams  = "rdfshapes_repl_torn_streams_total"
	MetricRouterEjections  = "rdfshapes_router_ejections_total"
	MetricRouterStaleReads = "rdfshapes_router_stale_reads_total"
	MetricRouterReadsPrim  = "rdfshapes_router_primary_reads_total"
	MetricRouterReadsRepl  = "rdfshapes_router_replica_reads_total"
)

// Remote-shard scan metric names (maintained as atomics by the
// chaos-hardened client in internal/shard, exported at scrape time by
// RemoteGroup.RegisterMetrics; the scan-endpoint counters come from
// shard.HandlerStats, registered by the server).
const (
	MetricRemoteScans         = "rdfshapes_remote_scans_total"
	MetricRemoteScanFailures  = "rdfshapes_remote_scan_failures_total"
	MetricRemoteScanRetries   = "rdfshapes_remote_scan_retries_total"
	MetricRemoteHedges        = "rdfshapes_remote_scan_hedges_total"
	MetricRemoteHedgeWins     = "rdfshapes_remote_scan_hedge_wins_total"
	MetricRemoteCorruptFrames = "rdfshapes_remote_scan_corrupt_total"
	MetricRemoteTruncations   = "rdfshapes_remote_scan_truncated_total"
	MetricRemoteBreakerOpens  = "rdfshapes_remote_breaker_opens_total"
	MetricRemoteBreakerState  = "rdfshapes_remote_breaker_state"
	MetricRemoteDegradedScans = "rdfshapes_remote_degraded_scans_total"

	MetricScanServed = "rdfshapes_shard_scans_served_total"
	MetricScanFrames = "rdfshapes_shard_scan_frames_total"
	MetricScanRows   = "rdfshapes_shard_scan_rows_total"
	MetricScanAborts = "rdfshapes_shard_scan_aborts_total"
)

// CheckpointDurationBuckets are the checkpoint-latency histogram upper
// bounds in seconds: checkpoints write a full snapshot, so the range
// sits well above query latencies.
var CheckpointDurationBuckets = []float64{
	0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// DurationBuckets are the latency histogram upper bounds in seconds,
// spanning sub-millisecond index lookups to the multi-second budget
// region.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// QErrorBuckets are the q-error histogram upper bounds, aligned with the
// <1.5 / [1.5,250) / ≥250 bands of the paper's Figure 4c–4d plus finer
// intermediate resolution.
var QErrorBuckets = []float64{1, 1.5, 2, 5, 10, 50, 250, 1000, 10000}

// Collector aggregates query traces into a bounded ring buffer and
// cumulative Prometheus metrics. All methods are safe for concurrent use
// and safe on a nil receiver (no-ops), per the package's nil-collector
// convention.
type Collector struct {
	ring *Ring

	queries      *CounterVec   // by planner, status
	duration     *HistogramVec // by planner
	qerror       *HistogramVec // by planner
	rowsVisited  *CounterVec
	intermediate *CounterVec
	resultRows   *CounterVec

	mu           sync.Mutex
	gauges       map[string]GaugeFunc
	gaugeVecs    map[string]GaugeVecFunc   // labeled scrape-time gauges, by name
	counterVecs  map[string]CounterVecFunc // labeled scrape-time counters, by name
	counterFuncs map[string]CounterFunc    // unlabeled scrape-time counters, by name
	extra        map[string]*CounterVec    // auxiliary counters (Counter), by name
	extraH       map[string]*HistogramVec  // auxiliary histograms (Histogram), by name
}

// NewCollector returns a collector whose trace ring holds the last
// ringSize traces (<= 0 selects DefaultRingSize).
func NewCollector(ringSize int) *Collector {
	return &Collector{
		ring: NewRing(ringSize),
		queries: NewCounterVec(MetricQueries,
			"Queries executed, by planner and outcome (ok|timeout|error).",
			"planner", "status"),
		duration: NewHistogramVec(MetricDuration,
			"Query execution wall time in seconds, by planner.",
			DurationBuckets, "planner"),
		qerror: NewHistogramVec(MetricQError,
			"Q-error of the estimated vs. actual final join cardinality, by planner (complete executions only).",
			QErrorBuckets, "planner"),
		rowsVisited: NewCounterVec(MetricRowsVisited,
			"Index rows visited by query execution."),
		intermediate: NewCounterVec(MetricIntermediate,
			"Intermediate results produced by query execution (the paper's plan-cost objective)."),
		resultRows: NewCounterVec(MetricResultRows,
			"Result rows produced by execution, before solution modifiers (LIMIT/OFFSET/DISTINCT)."),
		gauges: map[string]GaugeFunc{},
	}
}

// Counter returns the auxiliary counter family with the given name,
// declaring it on first use; later calls with the same name return the
// same family (the first call's help text and labels win). Auxiliary
// counters render in WritePrometheus after the built-in query metrics,
// sorted by name. On a nil collector it returns a detached counter, so
// callers can Add unconditionally per the nil-collector convention.
func (c *Collector) Counter(name, help string, labels ...string) *CounterVec {
	if c == nil {
		return NewCounterVec(name, help, labels...)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.extra == nil {
		c.extra = map[string]*CounterVec{}
	}
	if cv, ok := c.extra[name]; ok {
		return cv
	}
	cv := NewCounterVec(name, help, labels...)
	c.extra[name] = cv
	return cv
}

// Histogram returns the auxiliary histogram family with the given name,
// declaring it on first use with the given bucket bounds; later calls
// with the same name return the same family (the first call's help,
// buckets, and labels win). Auxiliary histograms render after auxiliary
// counters, sorted by name. On a nil collector it returns a detached
// histogram, so callers can Observe unconditionally.
func (c *Collector) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if c == nil {
		return NewHistogramVec(name, help, buckets, labels...)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.extraH == nil {
		c.extraH = map[string]*HistogramVec{}
	}
	if hv, ok := c.extraH[name]; ok {
		return hv
	}
	hv := NewHistogramVec(name, help, buckets, labels...)
	c.extraH[name] = hv
	return hv
}

// RegisterGauge installs (or replaces) a scrape-time gauge.
func (c *Collector) RegisterGauge(name, help string, fn func() float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gauges[name] = GaugeFunc{name: name, help: help, fn: fn}
}

// RegisterGaugeVec installs (or replaces) a labeled scrape-time gauge:
// at scrape time fn is called once and one series is written per map
// entry, the key becoming the value of the single label. Used for
// per-template facts whose key space is dynamic (the adaptive replan
// layer's per-template q-error).
func (c *Collector) RegisterGaugeVec(name, help, label string, fn func() map[string]float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gaugeVecs == nil {
		c.gaugeVecs = map[string]GaugeVecFunc{}
	}
	c.gaugeVecs[name] = GaugeVecFunc{name: name, help: help, label: label, fn: fn}
}

// RegisterCounterVec installs (or replaces) a labeled scrape-time
// counter: at scrape time fn is called once and one series is written
// per map entry, the key becoming the value of the single label. Used
// for cumulative counts maintained in hot-path atomics outside the
// collector (the shard coordinator's scanned-rows and pruning
// counters); fn must be monotonically non-decreasing per key.
func (c *Collector) RegisterCounterVec(name, help, label string, fn func() map[string]float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.counterVecs == nil {
		c.counterVecs = map[string]CounterVecFunc{}
	}
	c.counterVecs[name] = CounterVecFunc{name: name, help: help, label: label, fn: fn}
}

// RegisterCounter installs (or replaces) an unlabeled scrape-time
// counter: fn is read once per scrape and must be monotonically
// non-decreasing. Used for single-series cumulative counts kept in
// hot-path atomics (the scan endpoint's frame and abort counters).
func (c *Collector) RegisterCounter(name, help string, fn func() float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.counterFuncs == nil {
		c.counterFuncs = map[string]CounterFunc{}
	}
	c.counterFuncs[name] = CounterFunc{name: name, help: help, fn: fn}
}

// Record finalizes t (via Finish, when the caller has not already),
// stamps its time, stores it in the trace ring, and folds it into every
// cumulative metric. Safe on a nil receiver.
func (c *Collector) Record(t QueryTrace) {
	if c == nil {
		return
	}
	if len(t.Patterns) > 0 {
		t.Finish() // idempotent; ensures derived fields are consistent
	}
	if t.Time.IsZero() {
		t.Time = time.Now()
	}
	if len(t.Query) > MaxQueryLen {
		t.Query = t.Query[:MaxQueryLen]
	}
	planner := t.Planner
	if planner == "" {
		planner = "unknown"
	}
	status := "ok"
	switch {
	case t.Err != "":
		status = "error"
	case t.TimedOut:
		status = "timeout"
	}
	c.queries.Add(1, planner, status)
	c.duration.Observe(float64(t.WallNanos)/1e9, planner)
	c.rowsVisited.Add(float64(t.Ops))
	c.intermediate.Add(float64(t.ActualCost))
	c.resultRows.Add(float64(t.Rows))
	// Partial executions (budget or LIMIT cut) would pollute the q-error
	// distribution with lower-bound actuals; only complete runs count.
	if status == "ok" && !t.Partial() && len(t.Patterns) > 0 {
		c.qerror.Observe(t.QError, planner)
	}
	c.ring.Add(t)
}

// Recent returns up to n traces, newest first (n <= 0 means all held).
func (c *Collector) Recent(n int) []QueryTrace {
	if c == nil {
		return nil
	}
	return c.ring.Recent(n)
}

// TraceCount returns the number of traces ever recorded.
func (c *Collector) TraceCount() uint64 {
	if c == nil {
		return 0
	}
	return c.ring.Total()
}

// RingSize returns the trace buffer capacity.
func (c *Collector) RingSize() int {
	if c == nil {
		return 0
	}
	return len(c.ring.buf)
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4): registered gauges first (sorted by name), then
// the trace counter and the cumulative query metrics.
func (c *Collector) WritePrometheus(w io.Writer) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	names := sortedKeys(c.gauges)
	gauges := make([]GaugeFunc, 0, len(names))
	for _, n := range names {
		gauges = append(gauges, c.gauges[n])
	}
	gvNames := sortedKeys(c.gaugeVecs)
	gaugeVecs := make([]GaugeVecFunc, 0, len(gvNames))
	for _, n := range gvNames {
		gaugeVecs = append(gaugeVecs, c.gaugeVecs[n])
	}
	cvNames := sortedKeys(c.counterVecs)
	counterVecs := make([]CounterVecFunc, 0, len(cvNames))
	for _, n := range cvNames {
		counterVecs = append(counterVecs, c.counterVecs[n])
	}
	cfNames := sortedKeys(c.counterFuncs)
	counterFuncs := make([]CounterFunc, 0, len(cfNames))
	for _, n := range cfNames {
		counterFuncs = append(counterFuncs, c.counterFuncs[n])
	}
	extraNames := sortedKeys(c.extra)
	extras := make([]*CounterVec, 0, len(extraNames))
	for _, n := range extraNames {
		extras = append(extras, c.extra[n])
	}
	extraHNames := sortedKeys(c.extraH)
	extraHs := make([]*HistogramVec, 0, len(extraHNames))
	for _, n := range extraHNames {
		extraHs = append(extraHs, c.extraH[n])
	}
	c.mu.Unlock()
	for _, g := range gauges {
		if err := g.write(w); err != nil {
			return err
		}
	}
	for _, g := range gaugeVecs {
		if err := g.write(w); err != nil {
			return err
		}
	}
	for _, cv := range counterVecs {
		if err := cv.write(w); err != nil {
			return err
		}
	}
	for _, cf := range counterFuncs {
		if err := cf.write(w); err != nil {
			return err
		}
	}
	if err := writeHeader(w, MetricTracesWritten, "Query traces recorded since start (including ring-evicted ones).", "counter"); err != nil {
		return err
	}
	if _, err := io.WriteString(w, MetricTracesWritten+" "+formatValue(float64(c.ring.Total()))+"\n"); err != nil {
		return err
	}
	for _, f := range []interface{ write(io.Writer) error }{
		c.queries, c.duration, c.qerror, c.rowsVisited, c.intermediate, c.resultRows,
	} {
		if err := f.write(w); err != nil {
			return err
		}
	}
	for _, cv := range extras {
		if err := cv.write(w); err != nil {
			return err
		}
	}
	for _, hv := range extraHs {
		if err := hv.write(w); err != nil {
			return err
		}
	}
	return nil
}
