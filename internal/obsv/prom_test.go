package obsv

import (
	"io"
	"math"
	"strings"
	"testing"
)

func render(t *testing.T, write func(w io.Writer) error) string {
	t.Helper()
	var b strings.Builder
	if err := write(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterVecEncoding(t *testing.T) {
	cases := []struct {
		name   string
		setup  func() *CounterVec
		expect []string
	}{
		{
			name: "no labels",
			setup: func() *CounterVec {
				c := NewCounterVec("t_total", "Things.")
				c.Add(1)
				c.Add(2.5)
				return c
			},
			expect: []string{
				"# HELP t_total Things.",
				"# TYPE t_total counter",
				"t_total 3.5",
			},
		},
		{
			name: "labeled series, sorted",
			setup: func() *CounterVec {
				c := NewCounterVec("q_total", "Queries.", "planner", "status")
				c.Add(2, "SS", "ok")
				c.Add(1, "GS", "ok")
				c.Add(1, "GS", "error")
				return c
			},
			expect: []string{
				`q_total{planner="GS",status="error"} 1`,
				`q_total{planner="GS",status="ok"} 1`,
				`q_total{planner="SS",status="ok"} 2`,
			},
		},
		{
			name: "label value escaping",
			setup: func() *CounterVec {
				c := NewCounterVec("e_total", "Escapes.", "v")
				c.Add(1, "a\"b\\c\nd")
				return c
			},
			expect: []string{`e_total{v="a\"b\\c\nd"} 1`},
		},
		{
			name: "help escaping",
			setup: func() *CounterVec {
				return NewCounterVec("h_total", "line1\nline2 \\ backslash")
			},
			expect: []string{`# HELP h_total line1\nline2 \\ backslash`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := render(t, tc.setup().write)
			for _, want := range tc.expect {
				if !strings.Contains(out, want+"\n") {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestCounterVecValue(t *testing.T) {
	c := NewCounterVec("v_total", "V.", "l")
	if got := c.Value("x"); got != 0 {
		t.Errorf("Value before write = %v", got)
	}
	c.Add(4, "x")
	if got := c.Value("x"); got != 4 {
		t.Errorf("Value = %v, want 4", got)
	}
}

func TestHistogramEncoding(t *testing.T) {
	cases := []struct {
		name    string
		buckets []float64
		obs     []float64
		expect  []string
	}{
		{
			name:    "cumulative buckets and +Inf",
			buckets: []float64{1, 5, 10},
			obs:     []float64{0.5, 0.7, 3, 100},
			expect: []string{
				`h_bucket{le="1"} 2`,
				`h_bucket{le="5"} 3`,
				`h_bucket{le="10"} 3`, // cumulativity: empty bucket repeats the running total
				`h_bucket{le="+Inf"} 4`,
				`h_sum 104.2`,
				`h_count 4`,
			},
		},
		{
			name:    "boundary value lands in its bucket",
			buckets: []float64{1, 5},
			obs:     []float64{1, 5},
			expect: []string{
				`h_bucket{le="1"} 1`,
				`h_bucket{le="5"} 2`,
				`h_bucket{le="+Inf"} 2`,
				`h_count 2`,
			},
		},
		{
			name:    "all overflow",
			buckets: []float64{1},
			obs:     []float64{7, 9},
			expect: []string{
				`h_bucket{le="1"} 0`,
				`h_bucket{le="+Inf"} 2`,
				`h_sum 16`,
				`h_count 2`,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogramVec("h", "H.", tc.buckets)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			out := render(t, h.write)
			if !strings.Contains(out, "# TYPE h histogram\n") {
				t.Errorf("missing TYPE line:\n%s", out)
			}
			for _, want := range tc.expect {
				if !strings.Contains(out, want+"\n") {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestHistogramLabels(t *testing.T) {
	h := NewHistogramVec("d", "D.", []float64{1}, "planner")
	h.Observe(0.5, "SS")
	h.Observe(2, "SS")
	h.Observe(0.1, "GS")
	out := render(t, h.write)
	for _, want := range []string{
		`d_bucket{planner="GS",le="1"} 1`,
		`d_bucket{planner="GS",le="+Inf"} 1`,
		`d_bucket{planner="SS",le="1"} 1`,
		`d_bucket{planner="SS",le="+Inf"} 2`,
		`d_sum{planner="SS"} 2.5`,
		`d_count{planner="SS"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count("SS") != 2 || h.Count("GS") != 1 {
		t.Errorf("Count = %d/%d, want 2/1", h.Count("SS"), h.Count("GS"))
	}
}

func TestGaugeFuncEncoding(t *testing.T) {
	g := GaugeFunc{name: "sz", help: "Size.", fn: func() float64 { return 42 }}
	out := render(t, g.write)
	want := "# HELP sz Size.\n# TYPE sz gauge\nsz 42\n"
	if out != want {
		t.Errorf("gauge output = %q, want %q", out, want)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:    "0",
		1.5:  "1.5",
		1e10: "1e+10",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatValue(math.Inf(1)); got != "+Inf" {
		t.Errorf("formatValue(+Inf) = %q", got)
	}
	if got := formatValue(math.Inf(-1)); got != "-Inf" {
		t.Errorf("formatValue(-Inf) = %q", got)
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}
