package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file implements the small subset of the Prometheus text
// exposition format (version 0.0.4) the collector needs: counters,
// gauges, and histograms, with labels. Series within a family render in
// sorted label order so output is deterministic and testable.

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabelValue(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value; +Inf/-Inf/NaN use the spec names.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesName renders `name{l1="v1",...}`, omitting braces when there are
// no labels. extra appends trailing label pairs (used for `le`).
func seriesName(name string, labels, values []string, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	sep := ""
	for i, l := range labels {
		fmt.Fprintf(&b, `%s%s="%s"`, sep, l, escapeLabelValue(values[i]))
		sep = ","
	}
	for i := 0; i+1 < len(extra); i += 2 {
		fmt.Fprintf(&b, `%s%s="%s"`, sep, extra[i], escapeLabelValue(extra[i+1]))
		sep = ","
	}
	b.WriteByte('}')
	return b.String()
}

func writeHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
	return err
}

// seriesKey joins label values into a map key; \xff cannot appear in
// valid UTF-8 label values, so the key is unambiguous.
func seriesKey(values []string) string { return strings.Join(values, "\xff") }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CounterVec is a monotonically increasing counter family partitioned by
// a fixed set of label names (possibly none).
type CounterVec struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	series     map[string]*counterSeries
}

type counterSeries struct {
	values []string
	val    float64
}

// NewCounterVec declares a counter family.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{name: name, help: help, labels: labels, series: map[string]*counterSeries{}}
}

// Add increments the series identified by values (one per label) by
// delta, creating it at zero first. delta must be non-negative.
func (c *CounterVec) Add(delta float64, values ...string) {
	if len(values) != len(c.labels) {
		panic(fmt.Sprintf("obsv: %s wants %d label values, got %d", c.name, len(c.labels), len(values)))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := seriesKey(values)
	s := c.series[key]
	if s == nil {
		s = &counterSeries{values: append([]string(nil), values...)}
		c.series[key] = s
	}
	s.val += delta
}

// Value returns the current value of a series (0 when never written).
func (c *CounterVec) Value(values ...string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.series[seriesKey(values)]; s != nil {
		return s.val
	}
	return 0
}

func (c *CounterVec) write(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeHeader(w, c.name, c.help, "counter"); err != nil {
		return err
	}
	for _, k := range sortedKeys(c.series) {
		s := c.series[k]
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(c.name, c.labels, s.values), formatValue(s.val)); err != nil {
			return err
		}
	}
	return nil
}

// HistogramVec is a histogram family with fixed upper-bound buckets (the
// +Inf bucket is implicit) partitioned by label names.
type HistogramVec struct {
	name, help string
	labels     []string
	buckets    []float64 // ascending upper bounds, +Inf excluded
	mu         sync.Mutex
	series     map[string]*histSeries
}

type histSeries struct {
	values []string
	counts []uint64 // per-bucket (non-cumulative); cumulated at render
	count  uint64   // total observations (= the +Inf bucket, cumulative)
	sum    float64
}

// NewHistogramVec declares a histogram family with the given ascending
// bucket upper bounds.
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obsv: %s buckets not ascending", name))
		}
	}
	return &HistogramVec{
		name: name, help: help, labels: labels,
		buckets: append([]float64(nil), buckets...),
		series:  map[string]*histSeries{},
	}
}

// Observe records one observation v on the series identified by values.
func (h *HistogramVec) Observe(v float64, values ...string) {
	if len(values) != len(h.labels) {
		panic(fmt.Sprintf("obsv: %s wants %d label values, got %d", h.name, len(h.labels), len(values)))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	key := seriesKey(values)
	s := h.series[key]
	if s == nil {
		s = &histSeries{values: append([]string(nil), values...), counts: make([]uint64, len(h.buckets))}
		h.series[key] = s
	}
	for i, ub := range h.buckets {
		if v <= ub {
			s.counts[i]++
			break
		}
	}
	s.count++
	s.sum += v
}

// Count returns the number of observations on a series.
func (h *HistogramVec) Count(values ...string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.series[seriesKey(values)]; s != nil {
		return s.count
	}
	return 0
}

func (h *HistogramVec) write(w io.Writer) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := writeHeader(w, h.name, h.help, "histogram"); err != nil {
		return err
	}
	for _, k := range sortedKeys(h.series) {
		s := h.series[k]
		var cum uint64
		for i, ub := range h.buckets {
			cum += s.counts[i]
			name := seriesName(h.name+"_bucket", h.labels, s.values, "le", formatValue(ub))
			if _, err := fmt.Fprintf(w, "%s %d\n", name, cum); err != nil {
				return err
			}
		}
		name := seriesName(h.name+"_bucket", h.labels, s.values, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(h.name+"_sum", h.labels, s.values), formatValue(s.sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(h.name+"_count", h.labels, s.values), s.count); err != nil {
			return err
		}
	}
	return nil
}

// GaugeFunc is a gauge whose value is read at scrape time, used for
// dataset-level facts (triple count, shape counts).
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

func (g GaugeFunc) write(w io.Writer) error {
	if err := writeHeader(w, g.name, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", g.name, formatValue(g.fn()))
	return err
}

// CounterFunc is an unlabeled counter whose value is read at scrape
// time; fn must be monotonically non-decreasing.
type CounterFunc struct {
	name, help string
	fn         func() float64
}

func (c CounterFunc) write(w io.Writer) error {
	if err := writeHeader(w, c.name, c.help, "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", c.name, formatValue(c.fn()))
	return err
}

// CounterVecFunc is a labeled counter family whose series are read at
// scrape time: the underlying values live in hot-path-friendly state
// (e.g. atomics in the shard coordinator) and are only sampled when
// /metrics is scraped. fn must return monotonically non-decreasing
// values per key.
type CounterVecFunc struct {
	name, help, label string
	fn                func() map[string]float64
}

func (c CounterVecFunc) write(w io.Writer) error {
	if err := writeHeader(w, c.name, c.help, "counter"); err != nil {
		return err
	}
	vals := c.fn()
	for _, k := range sortedKeys(vals) {
		name := seriesName(c.name, []string{c.label}, []string{k})
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatValue(vals[k])); err != nil {
			return err
		}
	}
	return nil
}

// GaugeVecFunc is a labeled gauge family whose series are read at scrape
// time: fn returns one value per label value, so the series set can grow
// and shrink with the underlying state (e.g. one series per live query
// template).
type GaugeVecFunc struct {
	name, help, label string
	fn                func() map[string]float64
}

func (g GaugeVecFunc) write(w io.Writer) error {
	if err := writeHeader(w, g.name, g.help, "gauge"); err != nil {
		return err
	}
	vals := g.fn()
	for _, k := range sortedKeys(vals) {
		name := seriesName(g.name, []string{g.label}, []string{k})
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatValue(vals[k])); err != nil {
			return err
		}
	}
	return nil
}
