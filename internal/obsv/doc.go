// Package obsv is the observability layer: per-query execution traces
// and cumulative Prometheus-style metrics for the quantities the paper's
// evaluation is built on — intermediate-result sizes (the true join
// cardinalities of Table 2), estimation accuracy as q-error (Section 7),
// index operations, and wall time under an operation budget (the analog
// of the paper's 10-minute timeout).
//
// The package is deliberately a leaf: it depends only on the standard
// library, so every layer (engine, facade, server, bench harness) can
// feed it without import cycles.
//
// # The nil-collector convention
//
// Instrumentation must cost nothing when nobody is looking. Every layer
// follows the same rule:
//
//   - A nil *Collector is valid. Record, Recent, TraceCount, and
//     WritePrometheus are all nil-receiver safe no-ops, so callers never
//     guard with `if c != nil`.
//   - The engine takes an Observer callback in its Options; when it is
//     nil, engine.Run performs no clock reads and no allocation — the
//     entire cost of the disabled path is two nil checks
//     (BenchmarkEngineObserverOverhead pins this).
//   - The facade (rdfshapes.DB) assembles a QueryTrace only when a
//     collector is installed via rdfshapes.WithCollector or
//     DB.SetCollector.
//
// # Traces
//
// A QueryTrace records one executed query: the plan chosen, the
// per-pattern estimated vs. actual intermediate cardinalities with their
// q-errors, rows returned, index rows visited, wall time, and whether
// the operation budget (TimedOut) or a LIMIT (LimitHit) cut execution
// short. Traces live in a bounded Ring buffer; the server exposes the
// most recent ones at GET /trace/recent.
//
// # Metrics
//
// The Collector aggregates every recorded trace into counters and
// histograms (queries served by planner and status, latency buckets,
// per-planner q-error distribution, rows visited) and renders them in
// Prometheus text exposition format, served at GET /metrics. See
// docs/OBSERVABILITY.md for the full metric inventory.
package obsv
