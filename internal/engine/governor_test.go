package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// crossProduct builds n unrelated triples per predicate, so a BGP over
// all three predicates is an unavoidable cross product — the paper's
// worst case for a mis-ordered plan, and the workload the governor must
// be able to interrupt.
func crossProduct(n int) *store.Store {
	var g rdf.Graph
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://x/s%d", i))
		o := rdf.NewIRI(fmt.Sprintf("http://x/o%d", i))
		g.Append(s, rdf.NewIRI("http://x/p1"), o)
		g.Append(s, rdf.NewIRI("http://x/p2"), o)
		g.Append(s, rdf.NewIRI("http://x/p3"), o)
	}
	return store.Load(g)
}

const crossQuery = `SELECT * WHERE {
	?a <http://x/p1> ?b .
	?c <http://x/p2> ?d .
	?e <http://x/p3> ?f .
}`

func TestRunCanceledBeforeStart(t *testing.T) {
	st := family()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := sparql.MustParse(`SELECT * WHERE { ?s ?p ?o }`)
	_, err := Run(st, q.Patterns, Options{Ctx: ctx})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestRunDeadlineAbortsCrossProduct(t *testing.T) {
	st := crossProduct(200) // 200^3 = 8e6 final-level bindings
	q := sparql.MustParse(crossQuery)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(st, q.Patterns, Options{Ctx: ctx, CountOnly: true})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	// The amortized check fires every 1024 rows, so the overrun past the
	// deadline is bounded by microseconds; 400ms allows for slow CI.
	if elapsed > 400*time.Millisecond {
		t.Errorf("deadline noticed after %v", elapsed)
	}
}

func TestRunCancelMidFlight(t *testing.T) {
	st := crossProduct(200)
	q := sparql.MustParse(crossQuery)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := Run(st, q.Patterns, Options{Ctx: ctx, CountOnly: true})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestMaxIntermediateTruncates(t *testing.T) {
	st := crossProduct(10)
	q := sparql.MustParse(crossQuery)
	res, err := Run(st, q.Patterns, Options{MaxIntermediate: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("result not marked Truncated")
	}
	var total int64
	for _, n := range res.Intermediate {
		total += n
	}
	// The budget allows 50 bindings plus the one that tripped it.
	if total < 1 || total > 51 {
		t.Errorf("intermediate total = %d, want in [1, 51]", total)
	}
	if res.TimedOut || res.LimitHit {
		t.Errorf("TimedOut=%v LimitHit=%v, want false/false", res.TimedOut, res.LimitHit)
	}
}

func TestMaxRowsTruncatesWithPartialRows(t *testing.T) {
	st := family()
	res, err := Run(st, sparql.MustParse(`SELECT * WHERE { ?s ?p ?o }`).Patterns,
		Options{MaxRows: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("result not marked Truncated")
	}
	if len(res.Rows) != 3 || res.Count != 3 {
		t.Errorf("rows = %d, count = %d, want 3/3", len(res.Rows), res.Count)
	}
	if res.LimitHit {
		t.Error("MaxRows must not report LimitHit")
	}
}

func TestLimitIsNotTruncation(t *testing.T) {
	st := family()
	res, err := Run(st, sparql.MustParse(`SELECT * WHERE { ?s ?p ?o }`).Patterns,
		Options{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Error("a query LIMIT is not a budget truncation")
	}
	if !res.LimitHit {
		t.Error("LimitHit not set")
	}
}

func TestMaxRowsUnderCountOnly(t *testing.T) {
	st := family()
	res, err := Run(st, sparql.MustParse(`SELECT * WHERE { ?s ?p ?o }`).Patterns,
		Options{CountOnly: true, MaxRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Count != 2 {
		t.Errorf("Truncated=%v Count=%d, want true/2", res.Truncated, res.Count)
	}
}

func TestObserverSeesTruncation(t *testing.T) {
	st := family()
	var rep ExecReport
	_, err := Run(st, sparql.MustParse(`SELECT * WHERE { ?s ?p ?o }`).Patterns,
		Options{MaxRows: 1, Observer: func(r ExecReport) { rep = r }})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Error("observer report missing Truncated")
	}
}

func TestNoBudgetPathUnchanged(t *testing.T) {
	st := family()
	res, err := Run(st, sparql.MustParse(`SELECT * WHERE { ?s ?p ?o }`).Patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated || res.TimedOut || res.LimitHit {
		t.Errorf("unbudgeted run flagged: %+v", res)
	}
	if res.Count != 12 {
		t.Errorf("count = %d, want 12", res.Count)
	}
}
