package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// runQ executes src with the given options, planning in textual order.
func runWith(t *testing.T, st *store.Store, src string, opts Options) *Result {
	t.Helper()
	q := sparql.MustParse(src)
	opts.Filters = q.Filters
	opts.Optionals = q.Optionals
	res, err := Run(st, q.Patterns, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelMatchesSerial pins the determinism contract: a parallel
// run returns the same rows in the same order as the serial executor,
// with identical Count, Ops, and per-pattern Intermediate.
func TestParallelMatchesSerial(t *testing.T) {
	queries := []string{
		`SELECT * WHERE { ?p <http://x/parentOf> ?c }`,
		`SELECT * WHERE {
			?g <http://x/parentOf> ?p .
			?p <http://x/parentOf> ?c .
		}`,
		`SELECT * WHERE {
			?x a <http://x/Person> .
			?x <http://x/name> ?n .
			FILTER(?n > "a")
		}`,
		`SELECT * WHERE {
			?x a <http://x/Person> .
			OPTIONAL { ?x <http://x/parentOf> ?c }
		}`,
		`SELECT * WHERE { ?s ?p ?o }`,
	}
	stores := map[string]*store.Store{
		"family": family(),
		"cross":  crossProduct(30),
	}
	crossQueries := []string{crossQuery}
	for name, st := range stores {
		qs := queries
		if name == "cross" {
			qs = crossQueries
		}
		for _, src := range qs {
			serial := runWith(t, st, src, Options{})
			for _, k := range []int{2, 4, 7} {
				par := runWith(t, st, src, Options{Parallelism: k})
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("%s K=%d: parallel result differs from serial\nserial: count=%d ops=%d inter=%v\nparallel: count=%d ops=%d inter=%v",
						name, k, serial.Count, serial.Ops, serial.Intermediate,
						par.Count, par.Ops, par.Intermediate)
				}
			}
		}
	}
}

// TestParallelCountOnlyMatchesSerial covers the CountOnly path, where
// Rows stay nil and only the counters merge.
func TestParallelCountOnlyMatchesSerial(t *testing.T) {
	st := crossProduct(20)
	serial := runWith(t, st, crossQuery, Options{CountOnly: true})
	par := runWith(t, st, crossQuery, Options{CountOnly: true, Parallelism: 4})
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("CountOnly parallel differs: serial count=%d ops=%d, parallel count=%d ops=%d",
			serial.Count, serial.Ops, par.Count, par.Ops)
	}
}

// TestParallelLimitFallsBackToSerial pins that Limit queries take the
// serial path bit-for-bit: early termination at a row quota is
// inherently order-dependent, so the engine does not parallelize it.
func TestParallelLimitFallsBackToSerial(t *testing.T) {
	st := crossProduct(10)
	serial := runWith(t, st, crossQuery, Options{Limit: 7})
	par := runWith(t, st, crossQuery, Options{Limit: 7, Parallelism: 4})
	if !reflect.DeepEqual(serial, par) {
		t.Error("Limit run with Parallelism set differs from serial")
	}
	if !par.LimitHit {
		t.Error("LimitHit not set")
	}
}

// TestParallelMaxRowsExact pins the budget contract under parallelism:
// the merged result holds exactly MaxRows rows, marked Truncated.
func TestParallelMaxRowsExact(t *testing.T) {
	st := crossProduct(20)
	res := runWith(t, st, crossQuery, Options{MaxRows: 5, Parallelism: 4})
	if !res.Truncated {
		t.Fatal("result not marked Truncated")
	}
	if res.Count != 5 || len(res.Rows) != 5 {
		t.Errorf("Count=%d len(Rows)=%d, want exactly 5", res.Count, len(res.Rows))
	}
}

// TestParallelMaxIntermediateBounded pins that the shared intermediate
// budget stops a parallel run promptly: the total intermediate bindings
// may overshoot the budget by at most one per worker (each worker can be
// past the atomic check when the budget trips).
func TestParallelMaxIntermediateBounded(t *testing.T) {
	const budget, k = 50, 4
	st := crossProduct(20)
	res := runWith(t, st, crossQuery, Options{MaxIntermediate: budget, Parallelism: k})
	if !res.Truncated {
		t.Fatal("result not marked Truncated")
	}
	var total int64
	for _, n := range res.Intermediate {
		total += n
	}
	if total < 1 || total > budget+k {
		t.Errorf("total intermediate = %d, want in [1, %d]", total, budget+k)
	}
}

// TestParallelMaxOpsTimedOut pins the ops budget under parallelism.
func TestParallelMaxOpsTimedOut(t *testing.T) {
	st := crossProduct(50)
	res := runWith(t, st, crossQuery, Options{MaxOps: 1000, CountOnly: true, Parallelism: 4})
	if !res.TimedOut {
		t.Fatal("TimedOut not set")
	}
}

// TestParallelDeadlineAborts is the satellite cancellation audit: every
// worker keeps a worker-lifetime op counter for the amortized context
// check, so even across small morsels a canceled context stops a
// parallel run within the same documented bound as the serial engine.
func TestParallelDeadlineAborts(t *testing.T) {
	st := crossProduct(200)
	q := sparql.MustParse(crossQuery)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(st, q.Patterns, Options{Ctx: ctx, CountOnly: true, Parallelism: 4})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed > 400*time.Millisecond {
		t.Errorf("deadline noticed after %v, want < 400ms", elapsed)
	}
}

// TestParallelCanceledMidRun cancels explicitly (not via deadline) and
// expects ErrCanceled from a parallel run.
func TestParallelCanceledMidRun(t *testing.T) {
	st := crossProduct(200)
	q := sparql.MustParse(crossQuery)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := Run(st, q.Patterns, Options{Ctx: ctx, CountOnly: true, Parallelism: 4})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// trippedCtx is a context whose Err becomes non-nil after the first
// call: Run's up-front check passes, and the very next amortized check
// anywhere in execution observes the cancellation.
type trippedCtx struct{ calls atomic.Int64 }

func (c *trippedCtx) Err() error {
	if c.calls.Add(1) > 1 {
		return context.Canceled
	}
	return nil
}
func (c *trippedCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *trippedCtx) Done() <-chan struct{}       { return nil }
func (c *trippedCtx) Value(any) any               { return nil }

// TestParallelWorkerCadencePerWorker pins the striding-counter audit:
// the cancellation cadence counter is worker-lifetime, NOT per-morsel.
// The store below splits into morsels of ~940 rows — each smaller than
// the 1024-op check interval — so a per-morsel counter would reset
// before ever hitting the mask and the canceled context would never be
// noticed. The worker-lifetime counter crosses 1024 during a worker's
// second morsel and must abort the run with ErrCanceled.
func TestParallelWorkerCadencePerWorker(t *testing.T) {
	const k = 4
	st := crossProduct(10000) // 30000 triples; k*8 = 32 morsels of ~940 rows
	q := sparql.MustParse(`SELECT * WHERE { ?s ?p ?o }`)
	ctx := &trippedCtx{}
	_, err := Run(st, q.Patterns, Options{Ctx: ctx, CountOnly: true, Parallelism: k})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled — per-worker cancellation cadence skipped across morsels", err)
	}
}

// TestParallelWorkersGaugeDrains verifies the worker-utilization gauge
// rises during a parallel run and returns to zero afterwards.
func TestParallelWorkersGaugeDrains(t *testing.T) {
	st := crossProduct(150)
	q := sparql.MustParse(crossQuery)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := Run(st, q.Patterns, Options{CountOnly: true, Parallelism: 4}); err != nil {
			t.Error(err)
		}
	}()
	sawActive := false
	deadline := time.Now().Add(5 * time.Second)
	for !sawActive && time.Now().Before(deadline) {
		if ActiveParallelWorkers() > 0 {
			sawActive = true
		}
		select {
		case <-done:
			deadline = time.Now() // run finished; stop polling
		default:
		}
	}
	<-done
	if !sawActive {
		t.Error("ActiveParallelWorkers never observed > 0 during a parallel run")
	}
	if n := ActiveParallelWorkers(); n != 0 {
		t.Errorf("ActiveParallelWorkers = %d after run, want 0", n)
	}
}

// TestScanChunksEquivalence pins the ChunkedSource contract on the
// frozen store: concatenating the chunk scans reproduces Scan exactly.
func TestScanChunksEquivalence(t *testing.T) {
	st := crossProduct(37)
	pats := []store.IDTriple{
		{},               // full scan
		{P: anyP(t, st)}, // one predicate's range
	}
	for _, pat := range pats {
		var whole []store.IDTriple
		st.Scan(pat, func(tr store.IDTriple) bool {
			whole = append(whole, tr)
			return true
		})
		for _, n := range []int{1, 2, 3, 16, 1 << 20} {
			var parts []store.IDTriple
			for _, chunk := range st.ScanChunks(pat, n) {
				chunk(func(tr store.IDTriple) bool {
					parts = append(parts, tr)
					return true
				})
			}
			if !reflect.DeepEqual(whole, parts) {
				t.Fatalf("pat=%v n=%d: chunked scan differs (%d vs %d rows)", pat, n, len(whole), len(parts))
			}
		}
	}
}

func anyP(t *testing.T, st *store.Store) store.ID {
	t.Helper()
	id, ok := st.Dict().Lookup(rdf.NewIRI("http://x/p2"))
	if !ok {
		t.Fatal("predicate missing")
	}
	return id
}

// TestMaterializeDistinctNoSeparatorCollision is the DISTINCT-key
// regression test: blank-node labels are rendered unescaped, so with the
// old rendered-string keys ("term\x00term\x00...") the two rows below
// collided — (_:b␀_:c, unbound) and (_:b, _:c␀) both produced the key
// "_:b\x00_:c\x00\x00". Keying on the projected ID tuple keeps them
// distinct.
func TestMaterializeDistinctNoSeparatorCollision(t *testing.T) {
	p := rdf.NewIRI("http://x/p")
	tricky := rdf.NewBlank("b\x00_:c")
	plain := rdf.NewBlank("b")
	tail := rdf.NewBlank("c\x00")
	var g rdf.Graph
	g.Append(tricky, p, plain)
	g.Append(plain, p, tail)
	st := store.Load(g)
	id := func(term rdf.Term) store.ID {
		v, ok := st.Dict().Lookup(term)
		if !ok {
			t.Fatalf("term %v missing from dict", term)
		}
		return v
	}

	q := sparql.MustParse(`SELECT DISTINCT ?x ?y WHERE { ?x <http://x/p> ?o . OPTIONAL { ?o <http://x/p> ?y } }`)
	res := &Result{
		Vars: []string{"x", "y"},
		Rows: [][]store.ID{
			{id(tricky), 0},       // renders ("_:b\x00_:c", "")
			{id(plain), id(tail)}, // renders ("_:b", "_:c\x00")
		},
		Count: 2,
	}
	rows, err := Materialize(st, q, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("DISTINCT collapsed %d distinct rows to %d — separator collision", res.Count, len(rows))
	}
}

// TestMaterializeDistinctUnboundVsEmpty pins that an unbound OPTIONAL
// variable (ID 0) stays distinct from a bound empty-string literal.
func TestMaterializeDistinctUnboundVsEmpty(t *testing.T) {
	p := rdf.NewIRI("http://x/p")
	s := rdf.NewIRI("http://x/s")
	empty := rdf.NewLiteral("")
	var g rdf.Graph
	g.Append(s, p, empty)
	st := store.Load(g)
	sid, _ := st.Dict().Lookup(s)
	eid, ok := st.Dict().Lookup(empty)
	if !ok {
		t.Fatal("empty literal missing")
	}

	q := sparql.MustParse(`SELECT DISTINCT ?x ?y WHERE { ?x <http://x/p> ?z . OPTIONAL { ?x <http://x/q> ?y } }`)
	res := &Result{
		Vars:  []string{"x", "y"},
		Rows:  [][]store.ID{{sid, 0}, {sid, eid}},
		Count: 2,
	}
	rows, err := Materialize(st, q, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("unbound collided with empty literal: got %d rows, want 2", len(rows))
	}
}

// BenchmarkMaterializeDecode pins the per-call decode memoization on a
// high-duplication result: n^2 rows over only 2n distinct terms, so each
// term used to be rendered n times and is now rendered once.
func BenchmarkMaterializeDecode(b *testing.B) {
	const n = 100
	st := crossProduct(n)
	q := sparql.MustParse(`SELECT * WHERE {
		?a <http://x/p1> ?b .
		?c <http://x/p2> ?d .
	}`)
	res, err := Run(st, q.Patterns, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := Materialize(st, q, res)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != n*n {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkParallelCrossProduct is the engine-level speedup pair: the
// same unbudgeted cross product executed serially and with 4 workers.
// On a multi-core machine K=4 approaches a 4× speedup; on one core it
// degrades gracefully to ~1×.
func BenchmarkParallelCrossProduct(b *testing.B) {
	st := crossProduct(60)
	q := sparql.MustParse(crossQuery)
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(st, q.Patterns, Options{CountOnly: true, Parallelism: k}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
