package engine

import (
	"testing"

	"rdfshapes/internal/sparql"
)

// TestLimitIntermediateAccounting pins the interaction between
// Options.Limit and Intermediate accounting: early exit reports exactly
// the partial bindings explored — no more, no fewer — and flags the run
// as LimitHit so trace consumers treat the actuals as lower bounds
// rather than full enumeration counts.
func TestLimitIntermediateAccounting(t *testing.T) {
	st := family()
	src := `SELECT * WHERE {
		?p <http://x/parentOf> ?c .
		?c <http://x/name> ?n .
	}`

	full := run(t, st, src, Options{})
	if full.Count != 3 || full.LimitHit {
		t.Fatalf("full run: Count=%d LimitHit=%v, want 3/false", full.Count, full.LimitHit)
	}
	if full.Intermediate[0] != 3 || full.Intermediate[1] != 3 {
		t.Fatalf("full run Intermediate = %v, want [3 3]", full.Intermediate)
	}

	limited := run(t, st, src, Options{Limit: 1})
	if limited.Count != 1 || len(limited.Rows) != 1 {
		t.Fatalf("limited run: Count=%d Rows=%d, want 1/1", limited.Count, len(limited.Rows))
	}
	if !limited.LimitHit {
		t.Error("limited run: LimitHit not set")
	}
	if limited.TimedOut {
		t.Error("limited run: TimedOut set without a budget")
	}
	// Exactly one binding per level was explored before the first
	// solution: the accounting reflects work performed, not the full
	// enumeration.
	if limited.Intermediate[0] != 1 || limited.Intermediate[1] != 1 {
		t.Errorf("limited run Intermediate = %v, want [1 1]", limited.Intermediate)
	}

	// A limit the result never reaches must not flag LimitHit.
	loose := run(t, st, src, Options{Limit: 100})
	if loose.LimitHit {
		t.Error("loose limit: LimitHit set although enumeration completed")
	}
	if loose.Intermediate[0] != 3 || loose.Intermediate[1] != 3 {
		t.Errorf("loose limit Intermediate = %v, want [3 3]", loose.Intermediate)
	}

	// CountOnly ignores Limit (counts are exact by definition).
	counted := run(t, st, src, Options{Limit: 1, CountOnly: true})
	if counted.Count != 3 || counted.LimitHit {
		t.Errorf("CountOnly run: Count=%d LimitHit=%v, want 3/false", counted.Count, counted.LimitHit)
	}
}

// TestObserverReport checks the observability hook: the report mirrors
// the Result and carries a wall time, and a nil observer stays silent.
func TestObserverReport(t *testing.T) {
	st := family()
	q := sparql.MustParse(`SELECT * WHERE {
		?p <http://x/parentOf> ?c .
		?c <http://x/name> ?n .
	}`)

	var rep ExecReport
	calls := 0
	res, err := Run(st, q.Patterns, Options{
		Limit:    1,
		Observer: func(r ExecReport) { rep = r; calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("observer called %d times, want 1", calls)
	}
	if rep.Count != res.Count || rep.Ops != res.Ops {
		t.Errorf("report Count/Ops = %d/%d, want %d/%d", rep.Count, rep.Ops, res.Count, res.Ops)
	}
	if !rep.LimitHit || rep.TimedOut {
		t.Errorf("report flags = limit:%v timeout:%v, want true/false", rep.LimitHit, rep.TimedOut)
	}
	if len(rep.Intermediate) != len(res.Intermediate) {
		t.Fatalf("report Intermediate length %d, want %d", len(rep.Intermediate), len(res.Intermediate))
	}
	for i := range rep.Intermediate {
		if rep.Intermediate[i] != res.Intermediate[i] {
			t.Errorf("report Intermediate[%d] = %d, want %d", i, rep.Intermediate[i], res.Intermediate[i])
		}
	}
	if rep.Wall <= 0 {
		t.Error("report Wall not positive")
	}
	// The report must be a copy: later mutation of the result slice must
	// not reach an already-delivered report.
	res.Intermediate[0] = -1
	if rep.Intermediate[0] == -1 {
		t.Error("report Intermediate aliases Result.Intermediate")
	}
}

// TestObserverOnEmptyPattern verifies the observer fires on the
// constant-not-in-dictionary fast exit too, reporting zero work.
func TestObserverOnEmptyPattern(t *testing.T) {
	st := family()
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://x/noSuchPredicate> ?c }`)
	calls := 0
	var rep ExecReport
	if _, err := Run(st, q.Patterns, Options{Observer: func(r ExecReport) { rep = r; calls++ }}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("observer called %d times, want 1", calls)
	}
	if rep.Ops != 0 || rep.Count != 0 || len(rep.Intermediate) != 1 {
		t.Errorf("empty-pattern report = %+v, want zero work with 1 level", rep)
	}
}
