package engine

import (
	"errors"
	"fmt"
	"testing"

	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// fallibleSource wraps a store and plays back a scripted scan fault,
// imitating a remote-backed source: Scan cannot return an error, so the
// fault is retained for TakeFault. When degraded is false the fault is
// fail-fast; when partial is true the scan also stops early, modeling a
// member dropping out mid-stream.
type fallibleSource struct {
	*store.Store
	fault    error
	degraded bool
	partial  bool
	taken    int
}

func (f *fallibleSource) Scan(pat store.IDTriple, fn func(store.IDTriple) bool) {
	if f.fault != nil && f.partial {
		n := 0
		f.Store.Scan(pat, func(t store.IDTriple) bool {
			if n++; n > 1 {
				return false // member died after one triple
			}
			return fn(t)
		})
		return
	}
	f.Store.Scan(pat, fn)
}

func (f *fallibleSource) TakeFault() (error, bool) {
	f.taken++
	err := f.fault
	f.fault = nil
	return err, f.degraded
}

func TestFallibleFailFastFailsTheRun(t *testing.T) {
	src := &fallibleSource{
		Store:   family(),
		fault:   fmt.Errorf("peer 2: connection reset"),
		partial: true,
	}
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://x/parentOf> ?c }`)
	res, err := Run(src, q.Patterns, Options{})
	if err == nil {
		t.Fatalf("Run succeeded with a fail-fast source fault: %+v", res)
	}
	if !errors.Is(err, ErrSourceFailed) {
		t.Fatalf("err = %v, want ErrSourceFailed", err)
	}
	if src.taken == 0 {
		t.Fatal("TakeFault never consulted")
	}
}

func TestFallibleDegradedFlagsTheResult(t *testing.T) {
	var reported []ExecReport
	src := &fallibleSource{
		Store:    family(),
		fault:    fmt.Errorf("peer 2: breaker open"),
		degraded: true,
		partial:  true,
	}
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://x/parentOf> ?c }`)
	res, err := Run(src, q.Patterns, Options{
		Observer: func(r ExecReport) { reported = append(reported, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("Result.Degraded false after a degraded source fault")
	}
	if res.Count >= 3 {
		t.Fatalf("Count = %d; the partial scan should have lost rows", res.Count)
	}
	if len(reported) != 1 || !reported[0].Degraded {
		t.Fatalf("observer report = %+v, want Degraded", reported)
	}
}

func TestFallibleCleanScanStaysClean(t *testing.T) {
	src := &fallibleSource{Store: family()}
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://x/parentOf> ?c }`)
	res, err := Run(src, q.Patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("Result.Degraded true without a fault")
	}
	if res.Count != 3 {
		t.Fatalf("Count = %d, want 3", res.Count)
	}
	if src.taken == 0 {
		t.Fatal("TakeFault never consulted on the clean path")
	}
}
