package engine

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// sortRows orders result rows lexicographically so runs whose
// enumeration order legitimately differs compare as multisets.
func sortRows(rows [][]store.ID) [][]store.ID {
	out := append([][]store.ID(nil), rows...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

const starQuery = `SELECT * WHERE {
	?x a <http://x/Person> .
	?x <http://x/name> ?n .
	?x <http://x/parentOf> ?c .
}`

func TestMergeStarJoin(t *testing.T) {
	st := family()
	q := sparql.MustParse(starQuery)
	oracle, err := Run(st, q.Patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(st, q.Patterns, Options{MergeWidth: 3, MergeVar: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if got.MergeWidth != 3 {
		t.Fatalf("MergeWidth = %d, want 3", got.MergeWidth)
	}
	if got.Count != oracle.Count {
		t.Fatalf("Count = %d, want %d", got.Count, oracle.Count)
	}
	// Alignment semi-join-reduces prefix levels; the last merge level is
	// the exact join cardinality either way.
	for i := range got.Intermediate {
		switch {
		case i < 2 && got.Intermediate[i] > oracle.Intermediate[i]:
			t.Errorf("Intermediate[%d] = %d > nested-loop %d", i, got.Intermediate[i], oracle.Intermediate[i])
		case i >= 2 && got.Intermediate[i] != oracle.Intermediate[i]:
			t.Errorf("Intermediate[%d] = %d, want %d", i, got.Intermediate[i], oracle.Intermediate[i])
		}
	}
	if !reflect.DeepEqual(sortRows(got.Rows), sortRows(oracle.Rows)) {
		t.Errorf("row sets differ:\n merge: %v\n oracle: %v", got.Rows, oracle.Rows)
	}
	if got.Ops > oracle.Ops {
		t.Errorf("merge Ops = %d > nested-loop Ops = %d", got.Ops, oracle.Ops)
	}
}

func TestMergePartialPrefix(t *testing.T) {
	// Width 2: the third pattern runs as an ordinary nested-loop level
	// on top of the merged prefix.
	st := family()
	q := sparql.MustParse(starQuery)
	oracle, err := Run(st, q.Patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(st, q.Patterns, Options{MergeWidth: 2, MergeVar: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if got.MergeWidth != 2 {
		t.Fatalf("MergeWidth = %d, want 2", got.MergeWidth)
	}
	if got.Count != oracle.Count {
		t.Fatalf("Count = %d, want %d", got.Count, oracle.Count)
	}
	// From the last merge level (index 1) on, accounting is identical.
	if !reflect.DeepEqual(got.Intermediate[1:], oracle.Intermediate[1:]) {
		t.Fatalf("Intermediate[1:] = %v, want %v", got.Intermediate[1:], oracle.Intermediate[1:])
	}
	if !reflect.DeepEqual(sortRows(got.Rows), sortRows(oracle.Rows)) {
		t.Errorf("row sets differ")
	}
}

func TestMergeObjectObjectJoin(t *testing.T) {
	// parentOf/knows joined on the shared *object* ?d: both legs are
	// enumerated object-first (POS prefix ranges).
	st := family()
	q := sparql.MustParse(`SELECT * WHERE {
		?p <http://x/parentOf> ?d .
		?k <http://x/knows> ?d .
	}`)
	oracle, err := Run(st, q.Patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(st, q.Patterns, Options{MergeWidth: 2, MergeVar: "d"})
	if err != nil {
		t.Fatal(err)
	}
	if got.MergeWidth != 2 {
		t.Fatalf("MergeWidth = %d, want 2", got.MergeWidth)
	}
	if got.Count != oracle.Count || got.Count == 0 {
		t.Fatalf("Count = %d, want %d (nonzero)", got.Count, oracle.Count)
	}
	if !reflect.DeepEqual(sortRows(got.Rows), sortRows(oracle.Rows)) {
		t.Errorf("row sets differ:\n merge: %v\n oracle: %v", got.Rows, oracle.Rows)
	}
}

func TestMergeWithFilterAndLimits(t *testing.T) {
	st := family()
	q := sparql.MustParse(`SELECT * WHERE {
		?x a <http://x/Person> .
		?x <http://x/name> ?n .
		?x <http://x/parentOf> ?c .
		FILTER(?n != "ann")
	}`)
	oracle, err := Run(st, q.Patterns, Options{Filters: q.Filters})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(st, q.Patterns, Options{Filters: q.Filters, MergeWidth: 3, MergeVar: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if got.MergeWidth != 3 {
		t.Fatalf("MergeWidth = %d, want 3", got.MergeWidth)
	}
	if got.Count != oracle.Count {
		t.Fatalf("Count = %d, want %d", got.Count, oracle.Count)
	}
	if got.Intermediate[2] != oracle.Intermediate[2] {
		t.Fatalf("final Intermediate = %d, want %d", got.Intermediate[2], oracle.Intermediate[2])
	}

	// MaxRows trips at the same exact row count on both paths.
	oracleCap, err := Run(st, q.Patterns, Options{MaxRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	gotCap, err := Run(st, q.Patterns, Options{MaxRows: 1, MergeWidth: 3, MergeVar: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if gotCap.Count != 1 || oracleCap.Count != 1 || !gotCap.Truncated || !oracleCap.Truncated {
		t.Fatalf("MaxRows trip: merge %d/%v oracle %d/%v",
			gotCap.Count, gotCap.Truncated, oracleCap.Count, oracleCap.Truncated)
	}
}

func TestMergeFallbacks(t *testing.T) {
	st := family()
	cases := []struct {
		name  string
		src   string
		width int
		v     string
	}{
		{"var not shared by second leg", starQuery, 3, "n"},
		{"unknown merge var", starQuery, 2, "zzz"},
		{"width beyond patterns", `SELECT * WHERE { ?x a <http://x/Person> . ?x <http://x/name> ?n }`, 3, "x"},
		{"legs share a second var", `SELECT * WHERE { ?x <http://x/parentOf> ?y . ?x <http://x/knows> ?y }`, 2, "x"},
		{"repeated var inside a leg", `SELECT * WHERE { ?x <http://x/parentOf> ?x . ?x <http://x/name> ?n }`, 2, "x"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := sparql.MustParse(tc.src)
			oracle, err := Run(st, q.Patterns, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(st, q.Patterns, Options{MergeWidth: tc.width, MergeVar: tc.v})
			if err != nil {
				t.Fatal(err)
			}
			if got.MergeWidth != 0 {
				t.Fatalf("MergeWidth = %d, want 0 (fallback)", got.MergeWidth)
			}
			if got.Count != oracle.Count {
				t.Fatalf("Count = %d, want %d", got.Count, oracle.Count)
			}
		})
	}
}

// unsortedSource violates the OrderedSource contract on purpose: it
// reverses the rows of every run. The merge join must detect this and
// fail the run rather than return silently wrong results — the
// regression pin for the ScanChunks/ordering-contract bug class.
type unsortedSource struct {
	*store.Store
}

func (u unsortedSource) LeadRuns(pat store.IDTriple, lead int) ([]store.SortedRun, bool) {
	runs, ok := u.Store.LeadRuns(pat, lead)
	if !ok {
		return nil, false
	}
	out := make([]store.SortedRun, len(runs))
	for i, r := range runs {
		rows := append([]store.IDTriple(nil), r.Rows...)
		for a, b := 0, len(rows)-1; a < b; a, b = a+1, b-1 {
			rows[a], rows[b] = rows[b], rows[a]
		}
		out[i] = store.SortedRun{Rows: rows, Del: r.Del}
	}
	return out, true
}

func TestMergeRejectsUnsortedRun(t *testing.T) {
	st := family()
	q := sparql.MustParse(starQuery)
	_, err := Run(unsortedSource{st}, q.Patterns, Options{MergeWidth: 3, MergeVar: "x"})
	if !errors.Is(err, ErrUnsortedRun) {
		t.Fatalf("err = %v, want ErrUnsortedRun", err)
	}
}
