package engine

import (
	"testing"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// ages builds people with ages 10, 20, 30, 40.
func ages() *store.Store {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }
	var g rdf.Graph
	for i, name := range []string{"a", "b", "c", "d"} {
		g.Append(iri(name), iri("age"), rdf.NewInteger(int64((i+1)*10)))
		g.Append(iri(name), iri("name"), rdf.NewLiteral(name))
	}
	return store.Load(g)
}

func TestFilterConstant(t *testing.T) {
	st := ages()
	q := sparql.MustParse(`SELECT * WHERE {
		?p <http://x/age> ?a .
		FILTER(?a >= 30)
	}`)
	res, err := Run(st, q.Patterns, Options{Filters: q.Filters})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 {
		t.Errorf("Count = %d, want 2 (ages 30, 40)", res.Count)
	}
	// push-down: the filter prunes at level 0, so Intermediate reflects it
	if res.Intermediate[0] != 2 {
		t.Errorf("Intermediate[0] = %d, want 2", res.Intermediate[0])
	}
}

func TestFilterVarVsVar(t *testing.T) {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }
	var g rdf.Graph
	g.Append(iri("p"), iri("low"), rdf.NewInteger(3))
	g.Append(iri("p"), iri("high"), rdf.NewInteger(7))
	g.Append(iri("q"), iri("low"), rdf.NewInteger(9))
	g.Append(iri("q"), iri("high"), rdf.NewInteger(2))
	st := store.Load(g)
	q := sparql.MustParse(`SELECT * WHERE {
		?x <http://x/low> ?l .
		?x <http://x/high> ?h .
		FILTER(?l < ?h)
	}`)
	res, err := Run(st, q.Patterns, Options{Filters: q.Filters})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Errorf("Count = %d, want 1 (only p has low < high)", res.Count)
	}
}

func TestFilterAppliedAtEarliestLevel(t *testing.T) {
	st := ages()
	// filter on ?a (bound at level 0) must prune before the name join
	q := sparql.MustParse(`SELECT * WHERE {
		?p <http://x/age> ?a .
		?p <http://x/name> ?n .
		FILTER(?a = 10)
	}`)
	res, err := Run(st, q.Patterns, Options{Filters: q.Filters})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Fatalf("Count = %d", res.Count)
	}
	// Ops: 4 age rows scanned + 1 name lookup (not 4)
	if res.Ops > 6 {
		t.Errorf("Ops = %d; filter was not pushed down", res.Ops)
	}
}

func TestFilterOnIRIEquality(t *testing.T) {
	st := ages()
	q := sparql.MustParse(`SELECT * WHERE {
		?p <http://x/age> ?a .
		FILTER(?p = <http://x/b>)
	}`)
	res, err := Run(st, q.Patterns, Options{Filters: q.Filters})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Errorf("Count = %d, want 1", res.Count)
	}
}

func TestFilterUnknownVariableErrors(t *testing.T) {
	st := ages()
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://x/age> ?a }`)
	bad := sparql.Filter{Left: sparql.Variable("ghost"), Op: sparql.OpGt, Right: sparql.Bound(rdf.NewInteger(1))}
	if _, err := Run(st, q.Patterns, Options{Filters: []sparql.Filter{bad}}); err == nil {
		t.Error("filter with unknown variable accepted")
	}
}

func TestMaterializeOrderBy(t *testing.T) {
	st := ages()
	q := sparql.MustParse(`SELECT ?n WHERE {
		?p <http://x/age> ?a .
		?p <http://x/name> ?n .
	} ORDER BY DESC(?a)`)
	res, err := Run(st, q.Patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Materialize(st, q, res)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`"d"`, `"c"`, `"b"`, `"a"`}
	for i, w := range want {
		if rows[i]["n"] != w {
			t.Errorf("row %d = %v, want %s", i, rows[i], w)
		}
	}
}

func TestMaterializeOrderByNonProjectedKey(t *testing.T) {
	st := ages()
	q := sparql.MustParse(`SELECT ?n WHERE {
		?p <http://x/age> ?a .
		?p <http://x/name> ?n .
	} ORDER BY ?a LIMIT 2 OFFSET 1`)
	res, err := Run(st, q.Patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Materialize(st, q, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0]["n"] != `"b"` || rows[1]["n"] != `"c"` {
		t.Errorf("rows = %v, want b then c (offset 1, limit 2)", rows)
	}
}

func TestMaterializeOrderByTieStability(t *testing.T) {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }
	var g rdf.Graph
	g.Append(iri("a"), iri("score"), rdf.NewInteger(1))
	g.Append(iri("b"), iri("score"), rdf.NewInteger(1))
	st := store.Load(g)
	q := sparql.MustParse(`SELECT ?p WHERE { ?p <http://x/score> ?s } ORDER BY ?s`)
	res, err := Run(st, q.Patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Materialize(st, q, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// stable sort keeps scan order for ties
	if rows[0]["p"] != "<http://x/a>" {
		t.Errorf("tie order changed: %v", rows)
	}
}

func TestMaterializeOrderByUnboundKeyErrors(t *testing.T) {
	st := ages()
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://x/age> ?a }`)
	q.OrderBy = []sparql.OrderKey{{Var: "ghost"}}
	res, err := Run(st, q.Patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(st, q, res); err == nil {
		t.Error("unbound order key accepted")
	}
}
