package engine

import (
	"testing"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// family builds a small social graph with known join cardinalities.
func family() *store.Store {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	people := []string{"ann", "ben", "cat", "dan"}
	for _, p := range people {
		g.Append(iri(p), typ, iri("Person"))
		g.Append(iri(p), iri("name"), rdf.NewLiteral(p))
	}
	g.Append(iri("ann"), iri("parentOf"), iri("ben"))
	g.Append(iri("ann"), iri("parentOf"), iri("cat"))
	g.Append(iri("ben"), iri("parentOf"), iri("dan"))
	g.Append(iri("cat"), iri("knows"), iri("dan"))
	return store.Load(g)
}

func run(t *testing.T, st *store.Store, src string, opts Options) *Result {
	t.Helper()
	q := sparql.MustParse(src)
	res, err := Run(st, q.Patterns, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunSinglePattern(t *testing.T) {
	st := family()
	res := run(t, st, `SELECT * WHERE { ?p <http://x/parentOf> ?c }`, Options{})
	if res.Count != 3 {
		t.Errorf("Count = %d, want 3", res.Count)
	}
	if len(res.Rows) != 3 {
		t.Errorf("Rows = %d", len(res.Rows))
	}
}

func TestRunJoin(t *testing.T) {
	st := family()
	// grandparents: ann->ben->dan
	res := run(t, st, `SELECT * WHERE {
		?g <http://x/parentOf> ?p .
		?p <http://x/parentOf> ?c .
	}`, Options{})
	if res.Count != 1 {
		t.Fatalf("Count = %d, want 1", res.Count)
	}
	if res.Intermediate[0] != 3 || res.Intermediate[1] != 1 {
		t.Errorf("Intermediate = %v, want [3 1]", res.Intermediate)
	}
}

func TestRunOrderIndependentCount(t *testing.T) {
	st := family()
	src := `SELECT * WHERE {
		?x a <http://x/Person> .
		?x <http://x/parentOf> ?y .
		?y <http://x/name> ?n .
	}`
	q := sparql.MustParse(src)
	base, err := Run(st, q.Patterns, Options{CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	// all 3! orders must yield the same result count
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		ps := make([]sparql.TriplePattern, 3)
		for i, j := range perm {
			ps[i] = q.Patterns[j]
		}
		res, err := Run(st, ps, Options{CountOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != base.Count {
			t.Errorf("order %v: count = %d, want %d", perm, res.Count, base.Count)
		}
	}
	if base.Count != 3 {
		t.Errorf("count = %d, want 3", base.Count)
	}
}

func TestRunConstantMissingFromDict(t *testing.T) {
	st := family()
	res := run(t, st, `SELECT * WHERE { ?x <http://x/nosuch> ?y }`, Options{})
	if res.Count != 0 {
		t.Errorf("Count = %d, want 0", res.Count)
	}
}

func TestRunRepeatedVariableInPattern(t *testing.T) {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }
	var g rdf.Graph
	g.Append(iri("a"), iri("p"), iri("a")) // self loop
	g.Append(iri("a"), iri("p"), iri("b"))
	g.Append(iri("b"), iri("p"), iri("c"))
	st := store.Load(g)
	res := run(t, st, `SELECT * WHERE { ?x <http://x/p> ?x }`, Options{})
	if res.Count != 1 {
		t.Errorf("self-loop count = %d, want 1", res.Count)
	}
}

func TestRunCartesian(t *testing.T) {
	st := family()
	res := run(t, st, `SELECT * WHERE {
		?a <http://x/knows> ?b .
		?c <http://x/parentOf> ?d .
	}`, Options{})
	if res.Count != 3 {
		t.Errorf("cartesian count = %d, want 1*3", res.Count)
	}
}

func TestRunBudget(t *testing.T) {
	st := family()
	res := run(t, st, `SELECT * WHERE { ?s ?p ?o }`, Options{MaxOps: 3, CountOnly: true})
	if !res.TimedOut {
		t.Error("budget exceeded but TimedOut not set")
	}
	if res.Count > 3 {
		t.Errorf("counted %d rows past the budget", res.Count)
	}
}

func TestRunLimit(t *testing.T) {
	st := family()
	res := run(t, st, `SELECT * WHERE { ?s ?p ?o }`, Options{Limit: 2})
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(res.Rows))
	}
	if res.TimedOut {
		t.Error("limit stop must not report TimedOut")
	}
}

func TestRunEmptyPatternList(t *testing.T) {
	st := family()
	if _, err := Run(st, nil, Options{}); err == nil {
		t.Error("empty pattern list should error")
	}
}

func TestMaterializeProjectionDistinctLimit(t *testing.T) {
	st := family()
	q := sparql.MustParse(`SELECT DISTINCT ?p WHERE {
		?p <http://x/parentOf> ?c .
	}`)
	res, err := Run(st, q.Patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Materialize(st, q, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // ann, ben (ann deduplicated)
		t.Fatalf("distinct rows = %d, want 2: %v", len(rows), rows)
	}
	q.Limit = 1
	rows, err = Materialize(st, q, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("limited rows = %d, want 1", len(rows))
	}
}

func TestMaterializeUnboundProjection(t *testing.T) {
	st := family()
	q := sparql.MustParse(`SELECT ?missing WHERE { ?p <http://x/parentOf> ?c }`)
	res, err := Run(st, q.Patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(st, q, res); err == nil {
		t.Error("projecting an unbound variable should error")
	}
}

func TestMaterializeCountOnlyResult(t *testing.T) {
	st := family()
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://x/parentOf> ?c }`)
	res, err := Run(st, q.Patterns, Options{CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(st, q, res); err == nil {
		t.Error("materializing a CountOnly result should error")
	}
}

func TestIntermediatePrefixSemantics(t *testing.T) {
	st := family()
	// order: persons (4), then their children (3), then names (3)
	q := sparql.MustParse(`SELECT * WHERE {
		?x a <http://x/Person> .
		?x <http://x/parentOf> ?y .
		?y <http://x/name> ?n .
	}`)
	res, err := Run(st, q.Patterns, Options{CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{4, 3, 3}
	for i, w := range want {
		if res.Intermediate[i] != w {
			t.Errorf("Intermediate[%d] = %d, want %d", i, res.Intermediate[i], w)
		}
	}
	if res.Ops <= 0 {
		t.Error("Ops not counted")
	}
}
