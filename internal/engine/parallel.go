// Morsel-parallel BGP execution: the driver (first) pattern's index
// range is split into contiguous chunks, K workers each run the full
// join pipeline over the chunks they draw, and per-worker outputs are
// concatenated in chunk order. Three contracts hold regardless of K:
//
//   - Bit-identical merge: rows, their order, Ops, and the per-step
//     intermediate counts in ExecReport are exactly those of the serial
//     executor. Chunks partition the driver scan without overlap, every
//     worker applies the same deterministic pipeline, and the merge is a
//     stable in-order concatenation — no hash partitioning, no
//     nondeterministic interleave. Tests diff parallel against serial
//     output byte for byte over all workloads.
//
//   - Work-stealing cadence: the range is over-partitioned by
//     morselFactor relative to the worker count and chunks are drawn
//     from a shared counter, so a worker that got cheap chunks pulls
//     more instead of idling behind a skewed one.
//
//   - Governor transparency: budgets (ops, rows, intermediates) and
//     cancellation are checked inside every worker against shared
//     atomics; a trip anywhere stops all workers and the partial-result
//     flags (TimedOut/LimitHit/Truncated) surface exactly as in the
//     serial path.
//
// See docs/PERFORMANCE.md for measurements and tuning.

package engine

import (
	"sync"
	"sync/atomic"

	"rdfshapes/internal/store"
)

// ChunkedSource is a Source whose matches of a pattern can be split into
// contiguous chunks for morsel-parallel execution. Running the returned
// closures in slice order must enumerate exactly the triples
// Scan(pat, fn) would, in the same order; n is an upper bound on the
// number of chunks. store.Store, store.Fragment, and live.Snapshot all
// implement it.
type ChunkedSource interface {
	Source
	ScanChunks(pat store.IDTriple, n int) []func(fn func(store.IDTriple) bool)
}

// morselFactor over-partitions the driver range relative to the worker
// count, so a worker that drew cheap chunks pulls remaining work instead
// of idling behind a skewed one.
const morselFactor = 8

// activeWorkers counts parallel BGP worker goroutines currently
// executing, across all Runs in the process.
var activeWorkers atomic.Int64

// ActiveParallelWorkers returns the number of parallel BGP worker
// goroutines currently executing across all Runs in the process — the
// worker-utilization gauge exported at /metrics.
func ActiveParallelWorkers() int64 { return activeWorkers.Load() }

// shared is the cross-worker governor state of one parallel Run: the
// stop flag every worker polls at its cancellation cadence, the global
// budget counters (each maintained only when the corresponding Options
// budget is set), and the first context error observed.
type shared struct {
	stop  atomic.Bool
	ops   atomic.Int64 // under MaxOps
	inter atomic.Int64 // under MaxIntermediate
	rows  atomic.Int64 // under MaxRows

	mu     sync.Mutex
	ctxErr error // first context error; aborts the whole Run
}

// fail records the first context error and stops all workers.
func (sh *shared) fail(err error) {
	sh.mu.Lock()
	if sh.ctxErr == nil {
		sh.ctxErr = err
	}
	sh.mu.Unlock()
	sh.stop.Store(true)
}

// execFlags snapshots one chunk's termination flags for the merge.
type execFlags struct {
	budgetHit bool
	limitHit  bool
	truncated bool
}

// runParallel executes the compiled BGP held by the template executor
// with opts.Parallelism workers over morsels of the driver (first)
// pattern's index range. Each morsel runs with worker-local row, Rows,
// and Intermediate state; morsel results are merged into res in range
// order, making row order, Count, Ops, and per-pattern Intermediate
// identical to a serial run (budget truncations aside, which may keep a
// different — but equally sized — subset of rows). The returned error
// is the context error that aborted the run, if any.
func runParallel(st ChunkedSource, tmpl *executor, res *Result) error {
	opts := tmpl.opts
	cp0 := tmpl.compiled[0]
	pat := store.IDTriple{S: cp0.constS, P: cp0.constP, O: cp0.constO}
	chunks := st.ScanChunks(pat, opts.Parallelism*morselFactor)
	if len(chunks) == 0 {
		return nil
	}
	workers := opts.Parallelism
	if workers > len(chunks) {
		workers = len(chunks)
	}

	npat := len(res.Intermediate)
	results := make([]*Result, len(chunks))
	flags := make([]execFlags, len(chunks))
	sh := &shared{}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		activeWorkers.Add(1)
		go func() {
			defer wg.Done()
			defer activeWorkers.Add(-1)
			e := &executor{
				st:           tmpl.st,
				compiled:     tmpl.compiled,
				groups:       tmpl.groups,
				groupEmpty:   tmpl.groupEmpty,
				groupFilters: tmpl.groupFilters,
				filters:      tmpl.filters,
				row:          make([]store.ID, len(tmpl.row)),
				opts:         opts,
				ctx:          tmpl.ctx,
				sh:           sh,
			}
			for !sh.stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				r := &Result{Intermediate: make([]int64, npat)}
				e.res = r
				e.stopped = false
				e.chunk = chunks[i]
				e.level(0)
				// Distinct indices per worker; wg.Wait orders these
				// writes before the merge reads.
				results[i] = r
				flags[i] = execFlags{
					budgetHit: e.budgetHit,
					limitHit:  e.limitHit,
					truncated: e.truncated,
				}
			}
		}()
	}
	wg.Wait()

	for i, r := range results {
		if r == nil {
			continue // never started: a budget or cancellation stopped the run
		}
		res.Count += r.Count
		res.Ops += r.Ops
		for j, v := range r.Intermediate {
			res.Intermediate[j] += v
		}
		if !opts.CountOnly {
			res.Rows = append(res.Rows, r.Rows...)
		}
		f := flags[i]
		res.TimedOut = res.TimedOut || f.budgetHit
		res.LimitHit = res.LimitHit || f.limitHit
		res.Truncated = res.Truncated || f.truncated
	}
	return sh.ctxErr
}
