package engine

// Repeated-variable triple patterns (<?x p ?x>, <?s ?x ?x>, <?x ?x ?x>)
// bind the same slot from two or three positions of one triple; the
// scan body enforces agreement between occurrences. These tests pin
// that behavior against the naive reference evaluator on a store built
// to exercise every repeat shape — self-loops, predicate-as-object
// triples, and a triple whose three terms are all the same IRI — on
// both the nested-loop path and the merge path (where a repeated-var
// pattern in the prefix must cause a validated fallback, never a wrong
// answer).

import (
	"reflect"
	"testing"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// loops builds a store with every repeated-term shape: a self-loop
// (n1 knows n1), a predicate that also appears as an object
// (knows likes knows), and a fully reflexive triple (r r r).
func loops() *store.Store {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }
	var g rdf.Graph
	g.Append(iri("n1"), iri("knows"), iri("n1")) // self-loop
	g.Append(iri("n1"), iri("knows"), iri("n2"))
	g.Append(iri("n2"), iri("knows"), iri("n1"))
	g.Append(iri("n2"), iri("likes"), iri("n2"))       // second self-loop, other predicate
	g.Append(iri("knows"), iri("likes"), iri("knows")) // predicate as subject and object
	g.Append(iri("r"), iri("r"), iri("r"))             // all three positions equal
	g.Append(iri("n1"), iri("likes"), iri("n2"))
	return store.Load(g)
}

func repeatedVarQueries() []string {
	return []string{
		// subject == object under a fixed predicate
		`SELECT * WHERE { ?x <http://x/knows> ?x }`,
		// subject == object, predicate free
		`SELECT * WHERE { ?x ?p ?x }`,
		// predicate == object
		`SELECT * WHERE { ?s ?x ?x }`,
		// subject == predicate
		`SELECT * WHERE { ?x ?x ?o }`,
		// all three equal
		`SELECT * WHERE { ?x ?x ?x }`,
		// repeated var joined with a normal pattern
		`SELECT * WHERE { ?x <http://x/knows> ?x . ?x <http://x/likes> ?y }`,
		// repeated var in the second pattern of a join
		`SELECT * WHERE { ?x <http://x/likes> ?y . ?y <http://x/knows> ?y }`,
	}
}

func TestRepeatedVarPatternsAgainstNaive(t *testing.T) {
	st := loops()
	for _, src := range repeatedVarQueries() {
		q := sparql.MustParse(src)
		res, err := Run(st, q.Patterns, Options{Filters: q.Filters})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		want := naiveSolve(st, q)
		if int(res.Count) != len(want) {
			t.Errorf("%s: Count = %d, naive = %d", src, res.Count, len(want))
			continue
		}
		engineRows := make([]map[string]store.ID, len(res.Rows))
		for i, row := range res.Rows {
			m := map[string]store.ID{}
			for j, v := range res.Vars {
				m[v] = row[j]
			}
			engineRows[i] = m
		}
		got := canonical(res.Vars, engineRows)
		exp := canonical(res.Vars, want)
		if !reflect.DeepEqual(got, exp) {
			t.Errorf("%s: engine rows %v, naive rows %v", src, got, exp)
		}
	}
}

// TestRepeatedVarMergeRequestFallsBack: asking for a merge prefix over
// patterns with a repeated variable must fall back to nested loop
// (Result.MergeWidth 0) and still produce the oracle answer — the
// repeat makes block cross-products unsound, so validation excludes it.
func TestRepeatedVarMergeRequestFallsBack(t *testing.T) {
	st := loops()
	q := sparql.MustParse(`SELECT * WHERE { ?x <http://x/knows> ?x . ?x <http://x/likes> ?y }`)
	oracle, err := Run(st, q.Patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Run(st, q.Patterns, Options{MergeWidth: 2, MergeVar: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if merged.MergeWidth != 0 {
		t.Fatalf("MergeWidth = %d, want 0 (fallback)", merged.MergeWidth)
	}
	if !reflect.DeepEqual(oracle, merged) {
		t.Errorf("fallback result differs from oracle")
	}
}
