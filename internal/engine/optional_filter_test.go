package engine

// FILTER scoping across OPTIONAL groups, pinned against a naive
// reference evaluator. Per the SPARQL group-scoping semantics a filter
// that references a variable bound only inside an OPTIONAL group
// constrains the group match, not the whole solution: when it fails,
// the solution survives with the group's variables unbound. The engine
// used to have no way to express this (the parser rejected FILTER
// inside OPTIONAL and any top-level filter over optional-only
// variables), so these tests pin the fixed behavior end to end.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// naiveBGP extends each start binding by every match of the pattern
// list, by brute-force scanning the whole store per pattern. No
// indexes, no join ordering, no push-down: the simplest evaluator that
// can be trusted as an oracle.
func naiveBGP(st Source, pats []sparql.TriplePattern, start map[string]store.ID) []map[string]store.ID {
	out := []map[string]store.ID{start}
	for _, tp := range pats {
		var next []map[string]store.ID
		for _, b := range out {
			st.Scan(store.IDTriple{}, func(t store.IDTriple) bool {
				nb := map[string]store.ID{}
				for k, v := range b {
					nb[k] = v
				}
				ok := true
				match := func(pt sparql.PatternTerm, id store.ID) {
					if !ok {
						return
					}
					if !pt.IsVar() {
						want, found := st.Dict().Lookup(pt.Term)
						if !found || want != id {
							ok = false
						}
						return
					}
					if prev, bound := nb[pt.Var]; bound {
						if prev != id {
							ok = false
						}
						return
					}
					nb[pt.Var] = id
				}
				match(tp.S, t.S)
				match(tp.P, t.P)
				match(tp.O, t.O)
				if ok {
					next = append(next, nb)
				}
				return true
			})
		}
		out = next
	}
	return out
}

// naiveFilter evaluates one filter under a binding. Every referenced
// variable must be bound — the callers only apply filters in scopes
// that guarantee it.
func naiveFilter(st Source, f sparql.Filter, b map[string]store.ID) bool {
	term := func(pt sparql.PatternTerm) rdf.Term {
		if !pt.IsVar() {
			return pt.Term
		}
		return st.Dict().Term(b[pt.Var])
	}
	return sparql.EvalCompare(f.Op, term(f.Left), term(f.Right))
}

// naiveSolve evaluates q with the reference semantics: required BGP,
// top-level filters, then each OPTIONAL group as a left outer join
// whose group-scoped filters apply inside the group (a failing filter
// rejects the group match, keeping the solution with the group
// unbound).
func naiveSolve(st Source, q *sparql.Query) []map[string]store.ID {
	sols := naiveBGP(st, q.Patterns, map[string]store.ID{})
	var kept []map[string]store.ID
	for _, b := range sols {
		ok := true
		for _, f := range q.Filters {
			if !naiveFilter(st, f, b) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, b)
		}
	}
	sols = kept
	for gi, g := range q.Optionals {
		var fs []sparql.Filter
		if gi < len(q.OptionalFilters) {
			fs = q.OptionalFilters[gi]
		}
		var next []map[string]store.ID
		for _, b := range sols {
			matches := naiveBGP(st, g, b)
			var surviving []map[string]store.ID
			for _, m := range matches {
				ok := true
				for _, f := range fs {
					if !naiveFilter(st, f, m) {
						ok = false
						break
					}
				}
				if ok {
					surviving = append(surviving, m)
				}
			}
			if len(surviving) == 0 {
				next = append(next, b)
			} else {
				next = append(next, surviving...)
			}
		}
		sols = next
	}
	return sols
}

// canonical renders a solution multiset as a sorted list of var=id
// strings over vars, with 0 for unbound, so engine and naive results
// compare structurally.
func canonical(vars []string, rows []map[string]store.ID) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		parts := make([]string, len(vars))
		for i, v := range vars {
			parts[i] = fmt.Sprintf("%s=%d", v, r[v])
		}
		out = append(out, strings.Join(parts, " "))
	}
	sort.Strings(out)
	return out
}

// runAgainstNaive executes src with the engine and the reference
// evaluator and fails on any difference in the solution multiset.
func runAgainstNaive(t *testing.T, st *store.Store, src string) *Result {
	t.Helper()
	q := sparql.MustParse(src)
	res, err := Run(st, q.Patterns, Options{
		Filters:         q.Filters,
		Optionals:       q.Optionals,
		OptionalFilters: q.OptionalFilters,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveSolve(st, q)
	if int(res.Count) != len(want) {
		t.Fatalf("Count = %d, naive = %d", res.Count, len(want))
	}
	engineRows := make([]map[string]store.ID, len(res.Rows))
	for i, row := range res.Rows {
		m := map[string]store.ID{}
		for j, v := range res.Vars {
			m[v] = row[j]
		}
		engineRows[i] = m
	}
	got := canonical(res.Vars, engineRows)
	exp := canonical(res.Vars, want)
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("row %d: engine %q, naive %q", i, got[i], exp[i])
		}
	}
	return res
}

// TestFilterInsideOptionalScopesToGroup: a FILTER written inside the
// OPTIONAL group must reject only the group match. b1's sole author is
// a1, so the filter kills that match and b1 must be KEPT with ?a
// unbound — the naive-but-wrong reading (filter applied to the joined
// solution) would drop b1 entirely.
func TestFilterInsideOptionalScopesToGroup(t *testing.T) {
	st := library()
	res := runAgainstNaive(t, st, `SELECT * WHERE {
		?b a <http://x/Book> .
		OPTIONAL { ?b <http://x/author> ?a . FILTER(?a != <http://x/a1>) }
	}`)
	// b1: author filtered → unbound; b2: a2, a3 survive; b3: unbound.
	if res.Count != 4 {
		t.Fatalf("Count = %d, want 4", res.Count)
	}
	aSlot := -1
	for i, v := range res.Vars {
		if v == "a" {
			aSlot = i
		}
	}
	unbound := 0
	for _, r := range res.Rows {
		if r[aSlot] == 0 {
			unbound++
		}
	}
	if unbound != 2 {
		t.Errorf("unbound ?a rows = %d, want 2 (b1 filtered + b3 no author)", unbound)
	}
}

// TestFilterAfterOptionalRescopedIntoGroup: the same filter written at
// the top level, after the OPTIONAL group. Its variable is bound only
// inside the group, so the parser rescopes it into the group and the
// result must be identical to writing it inside.
func TestFilterAfterOptionalRescopedIntoGroup(t *testing.T) {
	st := library()
	inside := runAgainstNaive(t, st, `SELECT * WHERE {
		?b a <http://x/Book> .
		OPTIONAL { ?b <http://x/author> ?a . FILTER(?a != <http://x/a1>) }
	}`)
	outside := runAgainstNaive(t, st, `SELECT * WHERE {
		?b a <http://x/Book> .
		OPTIONAL { ?b <http://x/author> ?a }
		FILTER(?a != <http://x/a1>)
	}`)
	if inside.Count != outside.Count {
		t.Fatalf("inside Count %d != rescoped Count %d", inside.Count, outside.Count)
	}
	q := sparql.MustParse(`SELECT * WHERE {
		?b a <http://x/Book> .
		OPTIONAL { ?b <http://x/author> ?a }
		FILTER(?a != <http://x/a1>)
	}`)
	if len(q.Filters) != 0 {
		t.Errorf("rescoped filter still in q.Filters: %v", q.Filters)
	}
	if len(q.OptionalFilters) != 1 || len(q.OptionalFilters[0]) != 1 {
		t.Errorf("OptionalFilters = %v, want one filter in group 0", q.OptionalFilters)
	}
}

// TestFilterMixingRequiredAndGroupVars: a group-scoped filter may also
// reference required variables; it still evaluates inside the group.
func TestFilterMixingRequiredAndGroupVars(t *testing.T) {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }
	var g rdf.Graph
	for _, p := range []struct{ who, age string }{{"p1", "10"}, {"p2", "30"}} {
		g.Append(iri(p.who), iri("age"), rdf.NewTypedLiteral(p.age, rdf.XSDInteger))
	}
	g.Append(iri("p1"), iri("cap"), rdf.NewTypedLiteral("20", rdf.XSDInteger))
	g.Append(iri("p2"), iri("cap"), rdf.NewTypedLiteral("20", rdf.XSDInteger))
	st := store.Load(g)
	res := runAgainstNaive(t, st, `SELECT * WHERE {
		?p <http://x/age> ?age .
		OPTIONAL { ?p <http://x/cap> ?c . FILTER(?age < ?c) }
	}`)
	// p1 (10 < 20): cap bound; p2 (30 < 20 fails): kept, cap unbound.
	if res.Count != 2 {
		t.Fatalf("Count = %d, want 2", res.Count)
	}
}

// TestFilterStraddlingOptionalGroups: a top-level filter whose
// variables span two different OPTIONAL groups has no single group
// scope; the parser must reject it rather than guess.
func TestFilterStraddlingOptionalGroups(t *testing.T) {
	_, err := sparql.Parse(`SELECT * WHERE {
		?b a <http://x/Book> .
		OPTIONAL { ?b <http://x/author> ?a }
		OPTIONAL { ?b <http://x/editor> ?e }
		FILTER(?a != ?e)
	}`)
	if err == nil || !strings.Contains(err.Error(), "straddles") {
		t.Fatalf("want straddling-groups error, got %v", err)
	}
}

// TestFilterOnSecondOptionalGroup: rescoping picks the right group when
// several exist, and chained-group evaluation still agrees with the
// reference evaluator.
func TestFilterOnSecondOptionalGroup(t *testing.T) {
	st := library()
	res := runAgainstNaive(t, st, `SELECT * WHERE {
		?b a <http://x/Book> .
		OPTIONAL { ?b <http://x/author> ?a }
		OPTIONAL { ?a <http://x/email> ?m }
		FILTER(?m != "nope@x")
	}`)
	q := sparql.MustParse(`SELECT * WHERE {
		?b a <http://x/Book> .
		OPTIONAL { ?b <http://x/author> ?a }
		OPTIONAL { ?a <http://x/email> ?m }
		FILTER(?m != "nope@x")
	}`)
	if len(q.OptionalFilters) != 2 || len(q.OptionalFilters[1]) != 1 {
		t.Fatalf("OptionalFilters = %v, want the filter in group 1", q.OptionalFilters)
	}
	if res.Count == 0 {
		t.Fatal("no solutions")
	}
}
