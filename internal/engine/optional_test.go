package engine

import (
	"testing"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// library: three books, two have authors, one author has an email.
func library() *store.Store {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	for _, b := range []string{"b1", "b2", "b3"} {
		g.Append(iri(b), typ, iri("Book"))
		g.Append(iri(b), iri("title"), rdf.NewLiteral("title-"+b))
	}
	g.Append(iri("b1"), iri("author"), iri("a1"))
	g.Append(iri("b2"), iri("author"), iri("a2"))
	g.Append(iri("b2"), iri("author"), iri("a3")) // two authors
	g.Append(iri("a1"), iri("email"), rdf.NewLiteral("a1@x"))
	return store.Load(g)
}

func runQ(t *testing.T, st *store.Store, src string) (*sparql.Query, *Result) {
	t.Helper()
	q := sparql.MustParse(src)
	res, err := Run(st, q.Patterns, Options{Filters: q.Filters, Optionals: q.Optionals})
	if err != nil {
		t.Fatal(err)
	}
	return q, res
}

func TestOptionalKeepsUnmatchedSolutions(t *testing.T) {
	st := library()
	q, res := runQ(t, st, `SELECT * WHERE {
		?b a <http://x/Book> .
		OPTIONAL { ?b <http://x/author> ?a }
	}`)
	// b1: 1 author, b2: 2 authors, b3: none (kept unbound) → 4 rows
	if res.Count != 4 {
		t.Fatalf("Count = %d, want 4", res.Count)
	}
	rows, err := Materialize(st, q, res)
	if err != nil {
		t.Fatal(err)
	}
	unbound := 0
	for _, r := range rows {
		if r["a"] == "" {
			unbound++
		}
	}
	if unbound != 1 {
		t.Errorf("unbound author rows = %d, want 1 (b3)", unbound)
	}
}

func TestOptionalChainedGroups(t *testing.T) {
	st := library()
	_, res := runQ(t, st, `SELECT * WHERE {
		?b a <http://x/Book> .
		OPTIONAL { ?b <http://x/author> ?a }
		OPTIONAL { ?a <http://x/email> ?e }
	}`)
	// rows: (b1,a1,a1@x), (b2,a2,-), (b2,a3,-), and — by SPARQL's
	// compatibility semantics — (b3,a1,a1@x): b3 leaves ?a unbound, and
	// an unbound variable is compatible with any binding produced by a
	// later OPTIONAL, so the email group binds both ?a and ?e for it.
	if res.Count != 4 {
		t.Fatalf("Count = %d, want 4", res.Count)
	}
	q := sparql.MustParse(`SELECT * WHERE {
		?b a <http://x/Book> .
		OPTIONAL { ?b <http://x/author> ?a }
		OPTIONAL { ?a <http://x/email> ?e }
	}`)
	rows, err := Materialize(st, q, res)
	if err != nil {
		t.Fatal(err)
	}
	withEmail := 0
	for _, r := range rows {
		if r["e"] != "" {
			withEmail++
			if r["a"] != "<http://x/a1>" {
				t.Errorf("email row has author %s", r["a"])
			}
		}
	}
	if withEmail != 2 {
		t.Errorf("rows with email = %d, want 2 (b1 and the unbound-?a b3 row)", withEmail)
	}
}

func TestOptionalSecondGroupOverUnboundVar(t *testing.T) {
	st := library()
	// for b3, ?a is unbound entering group 2; the email pattern then has
	// an unbound subject variable and scans all email triples — matching
	// a1's email and binding ?a through the join on ?a
	_, res := runQ(t, st, `SELECT * WHERE {
		?b a <http://x/Book> .
		OPTIONAL { ?b <http://x/author> ?a . ?a <http://x/email> ?e }
	}`)
	// group matches only for b1 (author with email); b2 and b3 unbound
	if res.Count != 3 {
		t.Fatalf("Count = %d, want 3", res.Count)
	}
}

func TestOptionalGroupWithAbsentTerm(t *testing.T) {
	st := library()
	_, res := runQ(t, st, `SELECT * WHERE {
		?b a <http://x/Book> .
		OPTIONAL { ?b <http://x/nosuchpredicate> ?x }
	}`)
	// group can never match: every book kept once with ?x unbound
	if res.Count != 3 {
		t.Fatalf("Count = %d, want 3", res.Count)
	}
}

func TestOptionalDoesNotAffectRequiredSemantics(t *testing.T) {
	st := library()
	_, plain := runQ(t, st, `SELECT * WHERE { ?b a <http://x/Book> }`)
	_, withOpt := runQ(t, st, `SELECT * WHERE {
		?b a <http://x/Book> .
		OPTIONAL { ?b <http://x/author> ?a }
	}`)
	if withOpt.Count < plain.Count {
		t.Errorf("OPTIONAL reduced solutions: %d < %d", withOpt.Count, plain.Count)
	}
}

func TestOptionalWithLimit(t *testing.T) {
	st := library()
	q := sparql.MustParse(`SELECT * WHERE {
		?b a <http://x/Book> .
		OPTIONAL { ?b <http://x/author> ?a }
	}`)
	res, err := Run(st, q.Patterns, Options{Optionals: q.Optionals, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(res.Rows))
	}
}

func TestOptionalOrderByOptionalVar(t *testing.T) {
	st := library()
	q, res := runQ(t, st, `SELECT ?b ?a WHERE {
		?b a <http://x/Book> .
		OPTIONAL { ?b <http://x/author> ?a }
	} ORDER BY DESC(?a)`)
	rows, err := Materialize(st, q, res)
	if err != nil {
		t.Fatal(err)
	}
	if rows[len(rows)-1]["a"] != "" {
		t.Errorf("unbound row must sort first ascending / last descending: %v", rows)
	}
}
