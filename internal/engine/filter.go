package engine

import (
	"fmt"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// compiledFilter evaluates one FILTER constraint against a binding row.
type compiledFilter struct {
	eval func(row []store.ID) bool
}

// compileFilters resolves each filter's variables to slots and assigns
// the filter to the earliest pattern level at which all of them are
// bound (filter push-down). The result is indexed by pattern level.
func compileFilters(st Source, patterns []sparql.TriplePattern, filters []sparql.Filter, slots map[string]int) ([][]compiledFilter, error) {
	perLevel := make([][]compiledFilter, len(patterns))
	if len(filters) == 0 {
		return perLevel, nil
	}
	// firstBound[v] = first pattern index binding variable v
	firstBound := map[string]int{}
	for i, tp := range patterns {
		for _, v := range tp.Vars() {
			if _, ok := firstBound[v]; !ok {
				firstBound[v] = i
			}
		}
	}
	for _, f := range filters {
		level := 0
		for _, v := range f.Vars() {
			lv, ok := firstBound[v]
			if !ok {
				return nil, fmt.Errorf("engine: filter %s references variable ?%s not bound by the BGP", f, v)
			}
			if lv > level {
				level = lv
			}
		}
		cf, err := compileFilter(st, f, slots)
		if err != nil {
			return nil, err
		}
		perLevel[level] = append(perLevel[level], cf)
	}
	return perLevel, nil
}

// compileGroupFilters compiles the filters scoped to one OPTIONAL group,
// indexed by group pattern level. Required-BGP variables are bound
// before the group starts, so they count as bound at group level 0; a
// group variable is bound at the first group level that produces it. A
// group-scoped filter that fails rejects the group match only — the
// solution survives with the group's variables unbound (the left-outer-
// join semantics of FILTER inside OPTIONAL).
func compileGroupFilters(st Source, required, group []sparql.TriplePattern, filters []sparql.Filter, slots map[string]int) ([][]compiledFilter, error) {
	perLevel := make([][]compiledFilter, len(group))
	if len(filters) == 0 || len(group) == 0 {
		return perLevel, nil
	}
	firstBound := map[string]int{}
	for _, tp := range required {
		for _, v := range tp.Vars() {
			firstBound[v] = 0
		}
	}
	for i, tp := range group {
		for _, v := range tp.Vars() {
			if _, ok := firstBound[v]; !ok {
				firstBound[v] = i
			}
		}
	}
	for _, f := range filters {
		level := 0
		for _, v := range f.Vars() {
			lv, ok := firstBound[v]
			if !ok {
				return nil, fmt.Errorf("engine: OPTIONAL filter %s references variable ?%s not bound by the group or the required patterns", f, v)
			}
			if lv > level {
				level = lv
			}
		}
		cf, err := compileFilter(st, f, slots)
		if err != nil {
			return nil, err
		}
		perLevel[level] = append(perLevel[level], cf)
	}
	return perLevel, nil
}

func compileFilter(st Source, f sparql.Filter, slots map[string]int) (compiledFilter, error) {
	resolve, err := operandResolver(st, f.Left, slots)
	if err != nil {
		return compiledFilter{}, err
	}
	resolveR, err := operandResolver(st, f.Right, slots)
	if err != nil {
		return compiledFilter{}, err
	}
	op := f.Op
	return compiledFilter{eval: func(row []store.ID) bool {
		return sparql.EvalCompare(op, resolve(row), resolveR(row))
	}}, nil
}

// operandResolver returns a function producing the operand's term under
// a binding row. Constants resolve once.
func operandResolver(st Source, pt sparql.PatternTerm, slots map[string]int) (func(row []store.ID) rdf.Term, error) {
	if !pt.IsVar() {
		term := pt.Term
		return func([]store.ID) rdf.Term { return term }, nil
	}
	slot, ok := slots[pt.Var]
	if !ok {
		return nil, fmt.Errorf("engine: filter variable ?%s not bound by the BGP", pt.Var)
	}
	dict := st.Dict()
	return func(row []store.ID) rdf.Term { return dict.Term(row[slot]) }, nil
}
