// Package engine executes basic graph patterns against a Source — a
// frozen store.Store or a live overlay snapshot — using left-deep index
// nested-loop joins in a caller-supplied triple pattern order.
//
// Because every pattern lookup is served by a sorted-index range scan,
// total work is essentially the sum of intermediate result sizes — the
// quantity join ordering minimizes — so plan quality translates directly
// into measured runtime, mirroring how ordering affects Jena TDB in the
// paper's evaluation.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// ErrBudgetExceeded is reported via Result.TimedOut when an operation
// budget interrupts execution (the analog of the paper's 10-minute query
// timeout).
var ErrBudgetExceeded = errors.New("engine: operation budget exceeded")

// ErrCanceled aborts a Run whose Options.Ctx was canceled — typically a
// client that disconnected mid-query.
var ErrCanceled = errors.New("engine: query canceled")

// ErrDeadline aborts a Run whose Options.Ctx deadline passed.
var ErrDeadline = errors.New("engine: query deadline exceeded")

// ErrUnsortedRun aborts a Run whose OrderedSource handed the merge join
// a run that violates the lead-order sort contract. This is a defect in
// the source, not in the query: merge joins silently drop or duplicate
// rows on unsorted input, so the engine verifies order on every row it
// consumes and fails loudly instead.
var ErrUnsortedRun = errors.New("engine: OrderedSource returned an unsorted run")

// cancelCheckMask amortizes context checks: the context is consulted
// once every 1024 index rows visited, so a mis-planned join notices
// cancellation within microseconds while the no-context fast path pays
// only a nil check per row.
const cancelCheckMask = 1<<10 - 1

// CtxError maps a context error to the engine's typed errors:
// context.DeadlineExceeded becomes ErrDeadline, anything else (an
// explicit cancel) becomes ErrCanceled.
func CtxError(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadline
	}
	return ErrCanceled
}

// Source is the read interface the engine executes against: a frozen
// store.Store or a live.Snapshot (frozen base plus delta overlay). Scan
// must enumerate matches of a pattern (store.Wildcard in a position
// matches anything) until fn returns false, and the view must be
// immutable for the duration of a Run.
type Source interface {
	Dict() *store.Dict
	Scan(pat store.IDTriple, fn func(store.IDTriple) bool)
}

// Options configures a BGP execution.
type Options struct {
	// Ctx, when non-nil, is checked for cancellation once every ~1024
	// index rows visited (cancelCheckMask): a canceled context aborts
	// the run with ErrCanceled, an expired deadline with ErrDeadline.
	// nil (the default) is the zero-cost path: no checks at all.
	Ctx context.Context
	// MaxOps caps the number of index rows visited; 0 means unlimited.
	// When exceeded, execution stops and Result.TimedOut is set.
	MaxOps int64
	// MaxIntermediate caps the total intermediate bindings produced
	// across all required join levels — the quantity a mis-ordered plan
	// explodes (paper Eq. 1–3); 0 means unlimited. When exceeded,
	// execution stops and the partial result is marked Truncated.
	MaxIntermediate int64
	// MaxRows caps result rows; 0 means unlimited. Unlike Limit, which
	// models the query's LIMIT clause, MaxRows is a server-side budget:
	// hitting it marks the result Truncated so callers can degrade
	// gracefully instead of silently under-reporting.
	MaxRows int64
	// Parallelism is the number of workers executing the BGP, using
	// morsel-style parallelism over the driver (first) pattern's index
	// range. Values <= 1 (including the zero value) select the serial
	// executor — the exact code path all earlier behavior pins. Parallel
	// execution requires the Source to implement ChunkedSource and is
	// skipped when Limit applies (early termination is inherently
	// serial); chunk results are merged deterministically in range
	// order, so row order, Count, Ops, and per-pattern Intermediate are
	// identical to a serial run. Budgets and cancellation keep their
	// serial semantics via shared counters (see parallel.go).
	Parallelism int
	// CountOnly suppresses row materialization; only counts are kept.
	CountOnly bool
	// Limit stops after this many result rows (0 = unlimited). Ignored
	// when CountOnly is set, since counts are exact by definition.
	Limit int
	// Filters are comparison constraints applied as soon as all their
	// variables are bound (filter push-down). Filtered-out bindings do
	// not count toward Intermediate sizes. Filters may only reference
	// variables of the required patterns.
	Filters []sparql.Filter
	// Optionals are OPTIONAL groups evaluated as left outer joins after
	// the required patterns: each solution is extended by every match of
	// the group, or kept once with the group's variables unbound (ID 0)
	// when the group has no match.
	Optionals [][]sparql.TriplePattern
	// OptionalFilters[g] are the filters scoped to Optionals[g]: they
	// evaluate inside the group, so a failing filter rejects that group
	// match (leaving the solution with the group unbound) rather than
	// rejecting the whole solution. Must be nil or len(Optionals).
	OptionalFilters [][]sparql.Filter
	// MergeWidth, when >= 2, asks the engine to execute the first
	// MergeWidth patterns as a multi-way sort-merge join on MergeVar
	// instead of nested-loop scans. The request is validated against the
	// Source's ordering capability (OrderedSource) and the patterns'
	// shape; if any check fails the engine silently falls back to the
	// nested-loop path and Result.MergeWidth reports 0. Merge execution
	// is serial — Parallelism applies only to nested-loop plans.
	MergeWidth int
	// MergeVar is the shared join variable the merge prefix is keyed on.
	MergeVar string
	// Observer, when non-nil, receives an ExecReport after the run
	// completes (the observability hook of internal/obsv). A nil
	// Observer is the fast path: Run then performs no clock reads and
	// no extra allocation — its whole cost is two nil checks
	// (BenchmarkEngineObserverOverhead pins this).
	Observer Observer
}

// Observer receives the execution report of one Run.
type Observer func(ExecReport)

// ExecReport summarizes one Run for an Observer: the measured
// counterparts of the planner's estimates, plus wall time.
type ExecReport struct {
	// Wall is the execution wall time.
	Wall time.Duration
	// Ops is the number of index rows visited.
	Ops int64
	// Count is the number of result rows.
	Count int64
	// Intermediate is a copy of Result.Intermediate (per-pattern actual
	// intermediate sizes in execution order).
	Intermediate []int64
	// TimedOut is true when MaxOps interrupted the execution.
	TimedOut bool
	// LimitHit is true when Options.Limit stopped the run early, making
	// Intermediate lower bounds of the full enumeration.
	LimitHit bool
	// Truncated is true when MaxIntermediate or MaxRows stopped the run
	// early, making Count and Intermediate lower bounds.
	Truncated bool
	// Degraded is true when a Fallible source skipped a failed member
	// in degraded mode, making Count and Rows lower bounds.
	Degraded bool
}

// Result holds the outcome of executing a BGP.
type Result struct {
	// Vars maps row columns to variable names.
	Vars []string
	// Rows holds the materialized bindings (nil when CountOnly).
	Rows [][]store.ID
	// Count is the number of result rows (exact unless TimedOut).
	Count int64
	// Intermediate[i] is the number of partial bindings after joining
	// patterns 0..i in the executed order — the "true join cardinality"
	// column of the paper's Table 2. On a merge-join run the leapfrog
	// alignment semi-join-reduces the prefix: for i < MergeWidth-1,
	// Intermediate[i] counts only bindings whose merge key survives every
	// merge leg (a lower bound of the nested-loop value — that reduction
	// is the algorithm's win); from i = MergeWidth-1 onward the values
	// are identical to a nested-loop run, so the final-step cardinality
	// feeding q-error stays exact.
	Intermediate []int64
	// Ops is the number of index rows visited, a deterministic measure
	// of plan work independent of wall-clock noise.
	Ops int64
	// TimedOut is true when MaxOps interrupted the execution.
	TimedOut bool
	// LimitHit is true when Options.Limit stopped the run early. In that
	// case Intermediate holds the sizes actually explored — exactly the
	// work performed, which is less than a full enumeration would
	// produce (pinned by TestLimitIntermediateAccounting).
	LimitHit bool
	// Truncated is true when a MaxIntermediate or MaxRows budget stopped
	// the run early: Rows holds the bindings produced so far, and Count
	// and Intermediate are lower bounds. This is the partial-result
	// contract — the run did not fail, it degraded.
	Truncated bool
	// MergeWidth is the number of leading patterns actually executed as
	// a sort-merge join (0 when the run used nested-loop joins only —
	// including when Options.MergeWidth was requested but validation
	// fell back).
	MergeWidth int
	// Degraded is true when a Fallible source reported a scan fault it
	// continued past (a federated source skipping a failed peer): Rows
	// may be missing that member's contribution. Like Truncated, the
	// run did not fail — it degraded, and the flag is the contract that
	// it says so. Fail-fast sources never set this; their faults abort
	// the run with an error instead.
	Degraded bool
}

// Fallible is implemented by sources whose Scan can fail out of band —
// the Source contract has no error return, so a remote-backed source
// retains its first fault and the engine collects it here before
// declaring a result complete. TakeFault returns the retained fault
// (nil when the scans all succeeded) and whether the source continued
// past it in degraded mode, clearing it. A non-degraded fault fails the
// run; a degraded one marks the Result Degraded.
type Fallible interface {
	TakeFault() (err error, degraded bool)
}

// ErrSourceFailed wraps a Fallible source's fail-fast fault: the scan
// stream from a remote member broke and the result would be silently
// incomplete, so the run errors instead.
var ErrSourceFailed = errors.New("engine: source scan failed")

// compiledPattern precomputes, for one pattern, the constant IDs and the
// variable slots of each position. A constant missing from the dictionary
// makes the whole BGP empty; that is handled at compile time.
type compiledPattern struct {
	constS, constP, constO store.ID
	slotS, slotP, slotO    int // -1 when the position is constant
}

// Run executes patterns in the given order against st.
func Run(st Source, patterns []sparql.TriplePattern, opts Options) (*Result, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("engine: empty pattern list")
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, CtxError(err)
		}
	}
	var start time.Time
	if opts.Observer != nil {
		start = time.Now()
	}
	report := func(res *Result) {
		if opts.Observer == nil {
			return
		}
		opts.Observer(ExecReport{
			Wall:         time.Since(start),
			Ops:          res.Ops,
			Count:        res.Count,
			Intermediate: append([]int64(nil), res.Intermediate...),
			TimedOut:     res.TimedOut,
			LimitHit:     res.LimitHit,
			Truncated:    res.Truncated,
			Degraded:     res.Degraded,
		})
	}
	// finish settles a successful execution: before the result is
	// declared complete, a Fallible source gets to veto it. A fail-fast
	// fault turns the "success" into an error (the rows would be
	// silently short); a degraded fault flags the result instead.
	finish := func(res *Result) (*Result, error) {
		if f, ok := st.(Fallible); ok {
			if ferr, degraded := f.TakeFault(); ferr != nil {
				if !degraded {
					return nil, fmt.Errorf("%w: %w", ErrSourceFailed, ferr)
				}
				res.Degraded = true
			}
		}
		report(res)
		return res, nil
	}
	res := &Result{Intermediate: make([]int64, len(patterns))}

	// Assign slots to variables in first-use order: required patterns
	// first, then OPTIONAL groups.
	slots := map[string]int{}
	assignSlots := func(tps []sparql.TriplePattern) {
		for _, tp := range tps {
			for _, v := range tp.Vars() {
				if _, ok := slots[v]; !ok {
					slots[v] = len(slots)
					res.Vars = append(res.Vars, v)
				}
			}
		}
	}
	assignSlots(patterns)
	for _, g := range opts.Optionals {
		assignSlots(g)
	}

	filters, err := compileFilters(st, patterns, opts.Filters, slots)
	if err != nil {
		return nil, err
	}

	compiled, empty := compilePatterns(st, patterns, slots)
	if empty {
		report(res)
		return res, nil // no scan ran, so no source fault to collect
	}
	groups := make([][]compiledPattern, 0, len(opts.Optionals))
	groupEmpty := make([]bool, 0, len(opts.Optionals))
	groupFilters := make([][][]compiledFilter, 0, len(opts.Optionals))
	for gi, g := range opts.Optionals {
		cg, gEmpty := compilePatterns(st, g, slots)
		groups = append(groups, cg)
		groupEmpty = append(groupEmpty, gEmpty)
		var gfs []sparql.Filter
		if gi < len(opts.OptionalFilters) {
			gfs = opts.OptionalFilters[gi]
		}
		gf, err := compileGroupFilters(st, patterns, g, gfs, slots)
		if err != nil {
			return nil, err
		}
		groupFilters = append(groupFilters, gf)
	}

	row := make([]store.ID, len(slots))
	exec := &executor{
		st:           st,
		compiled:     compiled,
		groups:       groups,
		groupEmpty:   groupEmpty,
		groupFilters: groupFilters,
		filters:      filters,
		row:          row,
		res:          res,
		opts:         opts,
		ctx:          opts.Ctx,
	}
	if opts.MergeWidth >= 2 {
		if ms, ok := slots[opts.MergeVar]; ok {
			if mj, ok := newMergeJoin(exec, opts.MergeWidth, ms); ok {
				res.MergeWidth = opts.MergeWidth
				if err := mj.run(); err != nil {
					return nil, err
				}
				if exec.ctxErr != nil {
					return nil, CtxError(exec.ctxErr)
				}
				if exec.stopped && exec.budgetHit {
					res.TimedOut = true
				}
				res.LimitHit = exec.limitHit
				res.Truncated = exec.truncated
				return finish(res)
			}
		}
	}
	if cs, ok := st.(ChunkedSource); ok && opts.Parallelism > 1 && (opts.Limit == 0 || opts.CountOnly) {
		if err := runParallel(cs, exec, res); err != nil {
			return nil, CtxError(err)
		}
		return finish(res)
	}
	exec.level(0)
	if exec.ctxErr != nil {
		return nil, CtxError(exec.ctxErr)
	}
	if exec.stopped && exec.budgetHit {
		res.TimedOut = true
	}
	res.LimitHit = exec.limitHit
	res.Truncated = exec.truncated
	return finish(res)
}

// compilePatterns resolves patterns to slots and constants. empty is
// true when a constant term does not occur in the data at all, making
// the pattern list unsatisfiable.
func compilePatterns(st Source, patterns []sparql.TriplePattern, slots map[string]int) (compiled []compiledPattern, empty bool) {
	compiled = make([]compiledPattern, len(patterns))
	for i, tp := range patterns {
		cp := compiledPattern{slotS: -1, slotP: -1, slotO: -1}
		bind := func(pt sparql.PatternTerm, slot *int, cst *store.ID) {
			if pt.IsVar() {
				*slot = slots[pt.Var]
				return
			}
			id, ok := st.Dict().Lookup(pt.Term)
			if !ok {
				empty = true
				return
			}
			*cst = id
		}
		bind(tp.S, &cp.slotS, &cp.constS)
		bind(tp.P, &cp.slotP, &cp.constP)
		bind(tp.O, &cp.slotO, &cp.constO)
		compiled[i] = cp
	}
	return compiled, empty
}

type executor struct {
	st           Source
	compiled     []compiledPattern
	groups       [][]compiledPattern  // OPTIONAL groups
	groupEmpty   []bool               // group references a term absent from the data
	groupFilters [][][]compiledFilter // per group, per group level: group-scoped filters
	filters      [][]compiledFilter   // per required level, applied once bound
	row          []store.ID
	res          *Result
	opts         Options
	ctx          context.Context // nil: no cancellation checks at all
	ctxErr       error           // the context error that aborted the run
	intermediate int64           // running total, maintained only under MaxIntermediate
	stopped      bool
	budgetHit    bool
	limitHit     bool
	truncated    bool

	// nops drives the amortized cancellation cadence. It equals res.Ops
	// in a serial run, but in a parallel run it is worker-lifetime state:
	// res is replaced per morsel while nops keeps counting, so every
	// worker checks for cancellation every ~1024 rows it visits even when
	// individual morsels are smaller than the check interval.
	nops int64
	// sh is the cross-worker governor state of a parallel run; nil in
	// serial runs, whose budget checks stay on the local fields above.
	sh *shared
	// chunk, when non-nil, enumerates the driver pattern's morsel in
	// place of a full Scan; consumed by the next scan call (level 0).
	chunk func(fn func(store.IDTriple) bool)
}

// emit records one complete solution.
func (e *executor) emit() {
	e.res.Count++
	if !e.opts.CountOnly {
		e.res.Rows = append(e.res.Rows, append([]store.ID(nil), e.row...))
		if e.opts.Limit > 0 && len(e.res.Rows) >= e.opts.Limit {
			e.stopped = true
			e.limitHit = true
		}
	}
	if e.opts.MaxRows > 0 {
		if e.sh != nil {
			n := e.sh.rows.Add(1)
			if n > e.opts.MaxRows {
				// Other workers already produced the budget's worth:
				// retract this row so the merged total is exactly MaxRows,
				// matching the serial contract.
				e.res.Count--
				if !e.opts.CountOnly {
					e.res.Rows = e.res.Rows[:len(e.res.Rows)-1]
				}
			}
			if n >= e.opts.MaxRows {
				e.stopped = true
				e.truncated = true
				e.sh.stop.Store(true)
			}
		} else if e.res.Count >= e.opts.MaxRows {
			e.stopped = true
			e.truncated = true
		}
	}
}

// level evaluates required pattern i under the current partial binding.
func (e *executor) level(i int) {
	if e.stopped {
		return
	}
	if i == len(e.compiled) {
		e.optional(0)
		return
	}
	e.scan(e.compiled[i], e.filters[i], func() {
		if !e.countIntermediate(i) {
			return
		}
		e.level(i + 1)
	})
}

// countIntermediate charges one binding to required level i and reports
// whether execution may continue; a MaxIntermediate trip stops the run
// and marks it truncated. Shared by the nested-loop and merge paths so
// their intermediate accounting is identical by construction.
func (e *executor) countIntermediate(i int) bool {
	e.res.Intermediate[i]++
	if e.opts.MaxIntermediate > 0 {
		if e.sh != nil {
			if e.sh.inter.Add(1) > e.opts.MaxIntermediate {
				e.stopped = true
				e.truncated = true
				e.sh.stop.Store(true)
				return false
			}
		} else {
			e.intermediate++
			if e.intermediate > e.opts.MaxIntermediate {
				e.stopped = true
				e.truncated = true
				return false
			}
		}
	}
	return true
}

// visit charges one index row against the Ops budget and the amortized
// cancellation cadence; false means the enumeration must stop. Shared by
// the nested-loop scan body and the merge join's cursor pops so both
// paths observe budgets and cancellation with the same semantics.
func (e *executor) visit() bool {
	e.res.Ops++
	e.nops++
	if e.nops&cancelCheckMask == 0 && (e.ctx != nil || e.sh != nil) {
		if e.sh != nil && e.sh.stop.Load() {
			e.stopped = true
			return false
		}
		if e.ctx != nil {
			if err := e.ctx.Err(); err != nil {
				e.stopped = true
				e.ctxErr = err
				if e.sh != nil {
					e.sh.fail(err)
				}
				return false
			}
		}
	}
	if e.opts.MaxOps > 0 {
		if e.sh != nil {
			if e.sh.ops.Add(1) > e.opts.MaxOps {
				e.stopped = true
				e.budgetHit = true
				e.sh.stop.Store(true)
				return false
			}
		} else if e.res.Ops > e.opts.MaxOps {
			e.stopped = true
			e.budgetHit = true
			return false
		}
	}
	return true
}

// optional left-outer-joins OPTIONAL group g onto the current solution.
func (e *executor) optional(g int) {
	if e.stopped {
		return
	}
	if g == len(e.groups) {
		e.emit()
		return
	}
	matched := false
	if !e.groupEmpty[g] {
		e.groupLevel(g, 0, func() {
			matched = true
			e.optional(g + 1)
		})
	}
	if !matched && !e.stopped {
		// no match: keep the solution once, group variables unbound
		e.optional(g + 1)
	}
}

// groupLevel evaluates pattern i of OPTIONAL group g, calling cont for
// every complete group match. Group-scoped filters are applied at their
// level: a failing filter rejects this group match only, so the
// enclosing solution survives with the group unbound.
func (e *executor) groupLevel(g, i int, cont func()) {
	if e.stopped {
		return
	}
	group := e.groups[g]
	if i == len(group) {
		cont()
		return
	}
	e.scan(group[i], e.groupFilters[g][i], func() {
		e.groupLevel(g, i+1, cont)
	})
}

// scan enumerates the matches of cp under the current binding, applying
// filters, and calls cont with the extended binding.
func (e *executor) scan(cp compiledPattern, filters []compiledFilter, cont func()) {
	pat := store.IDTriple{S: cp.constS, P: cp.constP, O: cp.constO}
	// Positions whose variable is already bound become constants; the
	// ones bound by this scan are recorded so they can be unbound again.
	var newS, newP, newO bool
	if cp.slotS >= 0 {
		if v := e.row[cp.slotS]; v != 0 {
			pat.S = v
		} else {
			newS = true
		}
	}
	if cp.slotP >= 0 {
		if v := e.row[cp.slotP]; v != 0 {
			pat.P = v
		} else {
			newP = true
		}
	}
	if cp.slotO >= 0 {
		if v := e.row[cp.slotO]; v != 0 {
			pat.O = v
		} else {
			newO = true
		}
	}
	body := func(t store.IDTriple) bool {
		if !e.visit() {
			return false
		}
		// Bind the new positions, checking intra-pattern repeats such as
		// <?x p ?x>: the same slot may be "new" in two positions, in
		// which case the second occurrence must agree with the first.
		if newS {
			e.row[cp.slotS] = t.S
		}
		if newP {
			if prev := e.row[cp.slotP]; prev != 0 && prev != t.P {
				e.unbind(cp, newS, false, false)
				return true
			}
			e.row[cp.slotP] = t.P
		}
		if newO {
			if prev := e.row[cp.slotO]; prev != 0 && prev != t.O {
				e.unbind(cp, newS, newP, false)
				return true
			}
			e.row[cp.slotO] = t.O
		}
		for _, f := range filters {
			if !f.eval(e.row) {
				e.unbind(cp, newS, newP, newO)
				return true
			}
		}
		cont()
		e.unbind(cp, newS, newP, newO)
		return !e.stopped
	}
	if chunk := e.chunk; chunk != nil {
		// Parallel driver level: enumerate this worker's morsel instead
		// of the full index range. Consumed here so nested levels scan
		// normally.
		e.chunk = nil
		chunk(body)
		return
	}
	e.st.Scan(pat, body)
}

func (e *executor) unbind(cp compiledPattern, s, p, o bool) {
	if s {
		e.row[cp.slotS] = 0
	}
	if p {
		e.row[cp.slotP] = 0
	}
	if o {
		e.row[cp.slotO] = 0
	}
}

// Materialize converts result rows back into term bindings, applying the
// query's solution modifiers in SPARQL order: ORDER BY over the full
// bindings (sort keys need not be projected), then projection with
// DISTINCT, then OFFSET and LIMIT.
func Materialize(st Source, q *sparql.Query, res *Result) ([]map[string]string, error) {
	if res.Rows == nil && res.Count > 0 {
		return nil, fmt.Errorf("engine: result was executed with CountOnly")
	}
	proj := q.Projection
	if len(proj) == 0 {
		proj = res.Vars
	}
	col := map[string]int{}
	for i, v := range res.Vars {
		col[v] = i
	}

	rows := res.Rows
	if len(q.OrderBy) > 0 {
		keys := make([]int, len(q.OrderBy))
		for i, k := range q.OrderBy {
			c, ok := col[k.Var]
			if !ok {
				return nil, fmt.Errorf("engine: ORDER BY variable ?%s not bound by the BGP", k.Var)
			}
			keys[i] = c
		}
		rows = append([][]store.ID(nil), rows...)
		dict := st.Dict()
		sort.SliceStable(rows, func(i, j int) bool {
			for ki, c := range keys {
				a, b := rows[i][c], rows[j][c]
				var cmp int
				switch {
				case a == b:
					continue
				case a == 0: // unbound OPTIONAL values sort first
					cmp = -1
				case b == 0:
					cmp = 1
				default:
					cmp = sparql.CompareTermValues(dict.Term(a), dict.Term(b))
				}
				if cmp == 0 {
					continue
				}
				if q.OrderBy[ki].Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
	}

	cols := make([]int, len(proj))
	for i, v := range proj {
		c, ok := col[v]
		if !ok {
			if len(rows) == 0 {
				return nil, nil
			}
			return nil, fmt.Errorf("engine: projected variable ?%s not bound by the BGP", v)
		}
		cols[i] = c
	}

	// Duplicate-heavy results decode the same ID over and over; memoize
	// the rendered form per call (IDs are canonical per term, so the
	// cache is exact). ID 0 is an unbound OPTIONAL variable.
	dict := st.Dict()
	rendered := make(map[store.ID]string)
	render := func(id store.ID) string {
		if id == 0 {
			return ""
		}
		if s, ok := rendered[id]; ok {
			return s
		}
		s := dict.Term(id).String()
		rendered[id] = s
		return s
	}

	var out []map[string]string
	var seen map[string]bool
	var keyBuf []byte
	if q.Distinct {
		seen = make(map[string]bool, len(rows))
		keyBuf = make([]byte, 0, 4*len(cols))
	}
	skipped := 0
	for _, row := range rows {
		if q.Distinct {
			// Key on the projected ID tuple, fixed-width encoded: rendered
			// terms may contain any byte (including a separator), so
			// string concatenation can collide distinct rows; canonical
			// IDs cannot, and 0 (unbound) differs from every real term.
			keyBuf = keyBuf[:0]
			for _, c := range cols {
				id := row[c]
				keyBuf = append(keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
			}
			if seen[string(keyBuf)] {
				continue
			}
			seen[string(keyBuf)] = true
		}
		if skipped < q.Offset {
			skipped++
			continue
		}
		m := make(map[string]string, len(proj))
		for i, v := range proj {
			m[v] = render(row[cols[i]])
		}
		out = append(out, m)
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out, nil
}
