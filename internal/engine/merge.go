package engine

import (
	"rdfshapes/internal/store"
)

// Sort-merge join over the plan's leading patterns.
//
// When the first k patterns all share exactly one variable — the merge
// variable — and the source can enumerate each of them in an ordering
// keyed on that variable (store.LeadOrderAvailable), the engine aligns k
// lead-ordered cursors leapfrog-style instead of nested-loop probing:
// every input row is consumed exactly once, so the work is the sum of
// the k input cardinalities rather than the sum of intermediate join
// sizes. Rows stay raw []store.ID triples end to end; blocks of rows
// sharing a lead key are gathered per leg and cross-producted without
// decoding a single term — materialization happens only in Materialize,
// as everywhere else.
//
// Governor contracts are shared with the nested-loop path by
// construction: cursor pops charge executor.visit (Ops budget + ctx
// cadence) and accepted bindings charge executor.countIntermediate, the
// exact helpers the scan path uses. Merge execution is serial; parallel
// morsel execution applies to nested-loop plans only.

// OrderedSource is the capability the merge join consumes: a Source that
// can enumerate a pattern's matches as disjoint sorted runs keyed on a
// chosen lead position. Implemented by *store.Store, *live.Snapshot, and
// *shard.View. The contract LeadRuns must honor:
//
//   - every run is sorted by store.LeadOrder(pat, lead), strictly
//     (runs contain no duplicate rows);
//   - runs are pairwise disjoint, so merging them by that comparator is
//     deterministic and reproduces one globally lead-ordered stream;
//   - rows masked by a run's Del fragment are hidden from the view.
//
// The engine verifies the sort order of every row it consumes and fails
// the run with ErrUnsortedRun on a violation rather than returning
// silently wrong results.
type OrderedSource interface {
	Source
	LeadRuns(pat store.IDTriple, lead int) ([]store.SortedRun, bool)
}

// legCursor merges one leg's disjoint sorted runs into a single ordered
// stream with a peekable head. Deletion-masked rows are skipped without
// charging the Ops budget, matching the nested-loop path where
// Snapshot.Scan hides them before the executor sees them.
type legCursor struct {
	runs []store.SortedRun
	pos  []int
	less func(a, b store.IDTriple) bool

	head    store.IDTriple
	headRun int
	ok      bool

	prev    store.IDTriple // last popped row, for the sort-order guard
	hasPrev bool
}

// findHead locates the minimum visible row across runs.
func (c *legCursor) findHead() {
	c.ok = false
	for j := range c.runs {
		r := &c.runs[j]
		if r.Del != nil {
			for c.pos[j] < len(r.Rows) && r.Del.Contains(r.Rows[c.pos[j]]) {
				c.pos[j]++
			}
		}
		if c.pos[j] < len(r.Rows) {
			row := r.Rows[c.pos[j]]
			if !c.ok || c.less(row, c.head) {
				c.head, c.headRun, c.ok = row, j, true
			}
		}
	}
}

// pop consumes the current head and finds the next one, verifying the
// merged stream never steps backwards. sorted is false when a run
// violated its order contract.
func (c *legCursor) pop() (sorted bool) {
	if c.hasPrev && c.less(c.head, c.prev) {
		return false
	}
	c.prev, c.hasPrev = c.head, true
	c.pos[c.headRun]++
	c.findHead()
	return true
}

// mergeLeg is one input of the merge join: its compiled pattern, the
// cursor over its lead-ordered runs, and the slots this leg binds.
type mergeLeg struct {
	cp   compiledPattern
	lead int // position of the merge variable in this pattern
	cur  legCursor
	// bind[p] is true when position p (S/P/O) binds a slot during the
	// block cross-product. The merge variable's slot is bound by leg 0
	// only; alignment guarantees later legs agree on it.
	bindS, bindP, bindO bool
	// block collects this leg's rows at the current merge key.
	block []store.IDTriple
}

type mergeJoin struct {
	e         *executor
	legs      []mergeLeg
	mergeSlot int
	err       error
}

// newMergeJoin validates a requested merge prefix against the compiled
// patterns and the source's ordering capability. ok is false when any
// check fails, in which case the caller falls back to nested-loop
// execution; the checks are defense in depth, so a planner bug can cost
// performance but never correctness:
//
//   - the source implements OrderedSource and serves every leg's
//     (pattern, lead) combination;
//   - 2 <= width <= number of required patterns;
//   - every leg contains the merge variable exactly once and no other
//     repeated variable (intra-pattern repeats carry an equality
//     constraint the block cross-product does not evaluate);
//   - prefix legs pairwise share no variable besides the merge variable
//     (a second shared variable would need an equality check the merge
//     alignment does not perform).
func newMergeJoin(e *executor, width, mergeSlot int) (*mergeJoin, bool) {
	os, ok := e.st.(OrderedSource)
	if !ok || width < 2 || width > len(e.compiled) {
		return nil, false
	}
	legs := make([]mergeLeg, width)
	for l := 0; l < width; l++ {
		cp := e.compiled[l]
		slots := [3]int{cp.slotS, cp.slotP, cp.slotO}
		lead := -1
		for i, s := range slots {
			if s < 0 {
				continue
			}
			for j := i + 1; j < 3; j++ {
				if slots[j] == s {
					return nil, false
				}
			}
			if s == mergeSlot {
				lead = i
			}
		}
		if lead < 0 {
			return nil, false
		}
		for p := 0; p < l; p++ {
			pcp := e.compiled[p]
			for _, s := range slots {
				if s < 0 || s == mergeSlot {
					continue
				}
				if s == pcp.slotS || s == pcp.slotP || s == pcp.slotO {
					return nil, false
				}
			}
		}
		pat := store.IDTriple{S: cp.constS, P: cp.constP, O: cp.constO}
		less, lok := store.LeadOrder(pat, lead)
		if !lok {
			return nil, false
		}
		runs, rok := os.LeadRuns(pat, lead)
		if !rok {
			return nil, false
		}
		legs[l] = mergeLeg{
			cp:    cp,
			lead:  lead,
			cur:   legCursor{runs: runs, pos: make([]int, len(runs)), less: less},
			bindS: cp.slotS >= 0 && (cp.slotS != mergeSlot || l == 0),
			bindP: cp.slotP >= 0 && (cp.slotP != mergeSlot || l == 0),
			bindO: cp.slotO >= 0 && (cp.slotO != mergeSlot || l == 0),
		}
	}
	return &mergeJoin{e: e, legs: legs, mergeSlot: mergeSlot}, true
}

// advance pops leg l's head, charging the row to the Ops budget. It
// reports whether the merge may keep running: false on a budget or
// cancellation stop, or on a sort-order violation (m.err set).
func (m *mergeJoin) advance(l int) bool {
	if !m.e.visit() {
		return false
	}
	if !m.legs[l].cur.pop() {
		m.err = ErrUnsortedRun
		return false
	}
	return true
}

// run executes the merge prefix and feeds every cross-product binding
// into the ordinary executor pipeline (remaining nested-loop levels,
// OPTIONAL groups, emit).
func (m *mergeJoin) run() error {
	e := m.e
	for i := range m.legs {
		m.legs[i].cur.findHead()
		if !m.legs[i].cur.ok {
			return nil // an empty leg means no results at all
		}
	}
	for !e.stopped {
		// Leapfrog alignment: raise every leg to the maximum head key.
		// A leg overshooting the target restarts the pass with the new
		// maximum; a leg running out of rows ends the join.
		target := store.ID(0)
		for i := range m.legs {
			if k := store.LeadKey(m.legs[i].cur.head, m.legs[i].lead); k > target {
				target = k
			}
		}
		aligned := true
		for i := range m.legs {
			for store.LeadKey(m.legs[i].cur.head, m.legs[i].lead) < target {
				if !m.advance(i) {
					return m.err
				}
				if !m.legs[i].cur.ok {
					return nil
				}
			}
			if store.LeadKey(m.legs[i].cur.head, m.legs[i].lead) > target {
				aligned = false
				break
			}
		}
		if !aligned {
			continue
		}
		// All heads agree on the merge key: gather each leg's block of
		// rows at that key, then cross-product the blocks.
		exhausted := false
		for i := range m.legs {
			leg := &m.legs[i]
			leg.block = leg.block[:0]
			for leg.cur.ok && store.LeadKey(leg.cur.head, leg.lead) == target {
				leg.block = append(leg.block, leg.cur.head)
				if !m.advance(i) {
					return m.err
				}
			}
			if !leg.cur.ok {
				exhausted = true
			}
		}
		m.cross(0)
		if exhausted || e.stopped {
			return m.err
		}
	}
	return m.err
}

// cross binds leg l's block rows one at a time — applying the level's
// pushed-down filters and intermediate accounting exactly as the
// nested-loop scan would — and recurses; past the last leg it hands the
// completed prefix binding to executor.level for the remaining patterns.
func (m *mergeJoin) cross(l int) {
	e := m.e
	if e.stopped {
		return
	}
	if l == len(m.legs) {
		e.level(len(m.legs))
		return
	}
	leg := &m.legs[l]
	cp := leg.cp
	for _, t := range leg.block {
		if e.stopped {
			return
		}
		if leg.bindS {
			e.row[cp.slotS] = t.S
		}
		if leg.bindP {
			e.row[cp.slotP] = t.P
		}
		if leg.bindO {
			e.row[cp.slotO] = t.O
		}
		keep := true
		for _, f := range e.filters[l] {
			if !f.eval(e.row) {
				keep = false
				break
			}
		}
		if keep {
			if !e.countIntermediate(l) {
				m.unbind(leg)
				return
			}
			m.cross(l + 1)
		}
		m.unbind(leg)
	}
}

func (m *mergeJoin) unbind(leg *mergeLeg) {
	if leg.bindS {
		m.e.row[leg.cp.slotS] = 0
	}
	if leg.bindP {
		m.e.row[leg.cp.slotP] = 0
	}
	if leg.bindO {
		m.e.row[leg.cp.slotO] = 0
	}
}
