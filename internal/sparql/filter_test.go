package sparql

import (
	"testing"

	"rdfshapes/internal/rdf"
)

func TestParseFilter(t *testing.T) {
	q := MustParse(`
		PREFIX ex: <http://x/>
		SELECT * WHERE {
			?p ex:age ?a .
			?p ex:name ?n .
			FILTER(?a >= 18) .
			FILTER(?n != "Bob")
		}`)
	if len(q.Filters) != 2 {
		t.Fatalf("filters = %d, want 2", len(q.Filters))
	}
	f := q.Filters[0]
	if f.Left.Var != "a" || f.Op != OpGe || f.Right.Term != rdf.NewInteger(18) {
		t.Errorf("filter 0 = %+v", f)
	}
	f = q.Filters[1]
	if f.Op != OpNe || f.Right.Term != rdf.NewLiteral("Bob") {
		t.Errorf("filter 1 = %+v", f)
	}
}

func TestParseFilterOperators(t *testing.T) {
	ops := map[string]CompareOp{
		"=": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	}
	for text, want := range ops {
		q := MustParse(`SELECT * WHERE { ?p <http://x/age> ?a . FILTER(?a ` + text + ` 5) }`)
		if q.Filters[0].Op != want {
			t.Errorf("operator %q parsed as %v", text, q.Filters[0].Op)
		}
	}
}

func TestParseFilterVarVsVar(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
		?p <http://x/a> ?x . ?p <http://x/b> ?y . FILTER(?x < ?y)
	}`)
	f := q.Filters[0]
	if !f.Left.IsVar() || !f.Right.IsVar() {
		t.Errorf("filter = %+v", f)
	}
	if vars := f.Vars(); len(vars) != 2 {
		t.Errorf("Vars = %v", vars)
	}
}

func TestParseFilterErrors(t *testing.T) {
	bad := map[string]string{
		"unbound var":     `SELECT * WHERE { ?p <http://x/a> ?x . FILTER(?zz > 5) }`,
		"two constants":   `SELECT * WHERE { ?p <http://x/a> ?x . FILTER(5 > 4) }`,
		"missing paren":   `SELECT * WHERE { ?p <http://x/a> ?x . FILTER ?x > 5 }`,
		"missing operand": `SELECT * WHERE { ?p <http://x/a> ?x . FILTER(?x >) }`,
		"unclosed":        `SELECT * WHERE { ?p <http://x/a> ?x . FILTER(?x > 5 }`,
		"lone bang":       `SELECT * WHERE { ?p <http://x/a> ?x . FILTER(?x ! 5) }`,
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

func TestParseOrderByLimitOffset(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
		?p <http://x/age> ?a . ?p <http://x/name> ?n .
	} ORDER BY DESC(?a) ?n LIMIT 10 OFFSET 5`)
	if len(q.OrderBy) != 2 {
		t.Fatalf("order keys = %v", q.OrderBy)
	}
	if !q.OrderBy[0].Desc || q.OrderBy[0].Var != "a" {
		t.Errorf("key 0 = %+v", q.OrderBy[0])
	}
	if q.OrderBy[1].Desc || q.OrderBy[1].Var != "n" {
		t.Errorf("key 1 = %+v", q.OrderBy[1])
	}
	if q.Limit != 10 || q.Offset != 5 {
		t.Errorf("limit/offset = %d/%d", q.Limit, q.Offset)
	}
}

func TestParseOrderByAsc(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?p <http://x/age> ?a } ORDER BY ASC(?a)`)
	if len(q.OrderBy) != 1 || q.OrderBy[0].Desc {
		t.Errorf("OrderBy = %v", q.OrderBy)
	}
}

func TestParseOrderByErrors(t *testing.T) {
	bad := []string{
		`SELECT * WHERE { ?p <http://x/a> ?x } ORDER ?x`,
		`SELECT * WHERE { ?p <http://x/a> ?x } ORDER BY`,
		`SELECT * WHERE { ?p <http://x/a> ?x } ORDER BY ?unbound`,
		`SELECT * WHERE { ?p <http://x/a> ?x } ORDER BY DESC ?x`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParseAsk(t *testing.T) {
	for _, src := range []string{
		`ASK { ?p <http://x/age> ?a . FILTER(?a > 100) }`,
		`ASK WHERE { ?p <http://x/age> ?a }`,
	} {
		q := MustParse(src)
		if !q.Ask {
			t.Errorf("Ask not set for %q", src)
		}
	}
}

func TestQueryStringWithModifiers(t *testing.T) {
	src := `SELECT * WHERE {
		?p <http://x/age> ?a .
		FILTER(?a >= 18)
	} ORDER BY DESC(?a) LIMIT 3 OFFSET 1`
	q := MustParse(src)
	rt, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparsing %q: %v", q.String(), err)
	}
	if len(rt.Filters) != 1 || len(rt.OrderBy) != 1 || rt.Limit != 3 || rt.Offset != 1 {
		t.Errorf("round trip lost modifiers: %s", rt.String())
	}
}

func TestAskStringRoundTrip(t *testing.T) {
	q := MustParse(`ASK { ?p <http://x/age> ?a }`)
	rt, err := Parse(q.String())
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Ask {
		t.Errorf("round trip lost ASK: %s", q.String())
	}
}

func TestEvalCompareNumeric(t *testing.T) {
	five := rdf.NewInteger(5)
	ten := rdf.NewInteger(10)
	tenDec := rdf.NewTypedLiteral("10.0", rdf.XSDDecimal)
	cases := []struct {
		op   CompareOp
		a, b rdf.Term
		want bool
	}{
		{OpLt, five, ten, true},
		{OpGt, five, ten, false},
		{OpLe, five, five, true},
		{OpGe, ten, five, true},
		{OpEq, ten, tenDec, true}, // numeric equality across datatypes
		{OpNe, five, ten, true},
	}
	for _, tc := range cases {
		if got := EvalCompare(tc.op, tc.a, tc.b); got != tc.want {
			t.Errorf("EvalCompare(%v, %v, %v) = %v", tc.op, tc.a, tc.b, got)
		}
	}
}

func TestEvalCompareStrings(t *testing.T) {
	a := rdf.NewLiteral("apple")
	b := rdf.NewLiteral("banana")
	if !EvalCompare(OpLt, a, b) {
		t.Error("apple not < banana")
	}
	// "10" as a plain string compares lexically, not numerically
	if EvalCompare(OpLt, rdf.NewLiteral("10"), rdf.NewLiteral("9")) != true {
		t.Error(`plain "10" must sort before "9" lexically`)
	}
}

func TestCompareOpString(t *testing.T) {
	want := map[CompareOp]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%v.String() = %q", op, op.String())
		}
	}
}

func TestNumericValueRejectsBadLexical(t *testing.T) {
	if _, ok := numericValue(rdf.NewTypedLiteral("abc", rdf.XSDInteger)); ok {
		t.Error("malformed numeric literal accepted")
	}
	if _, ok := numericValue(rdf.NewIRI("http://x")); ok {
		t.Error("IRI treated as numeric")
	}
}

func TestParseOptional(t *testing.T) {
	q := MustParse(`
		PREFIX ex: <http://x/>
		SELECT * WHERE {
			?b a ex:Book .
			OPTIONAL { ?b ex:author ?a . ?a ex:name ?n }
			OPTIONAL { ?b ex:isbn ?i }
		}`)
	if len(q.Patterns) != 1 {
		t.Errorf("required patterns = %d, want 1", len(q.Patterns))
	}
	if len(q.Optionals) != 2 {
		t.Fatalf("optional groups = %d, want 2", len(q.Optionals))
	}
	if len(q.Optionals[0]) != 2 || len(q.Optionals[1]) != 1 {
		t.Errorf("group sizes = %d, %d", len(q.Optionals[0]), len(q.Optionals[1]))
	}
	all := q.AllVars()
	if len(all) != 4 {
		t.Errorf("AllVars = %v", all)
	}
	// String round trip keeps the optionals
	rt, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, q.String())
	}
	if len(rt.Optionals) != 2 {
		t.Errorf("round trip lost optionals: %s", q.String())
	}
}

func TestParseOptionalErrors(t *testing.T) {
	bad := []string{
		`SELECT * WHERE { ?b <http://x/p> ?o . OPTIONAL { } }`,
		`SELECT * WHERE { ?b <http://x/p> ?o . OPTIONAL ?b <http://x/q> ?v }`,
		`SELECT * WHERE { ?b <http://x/p> ?o . OPTIONAL { ?b <http://x/q> ?v }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestOrderByOptionalVarAllowed(t *testing.T) {
	if _, err := Parse(`SELECT * WHERE {
		?b <http://x/p> ?o .
		OPTIONAL { ?b <http://x/q> ?v }
	} ORDER BY ?v`); err != nil {
		t.Errorf("ORDER BY over optional variable rejected: %v", err)
	}
}

func TestCloneCopiesOptionals(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
		?b <http://x/p> ?o .
		OPTIONAL { ?b <http://x/q> ?v }
	}`)
	cp := q.Clone()
	cp.Optionals[0][0].S = Variable("changed")
	if q.Optionals[0][0].S.Var == "changed" {
		t.Error("Clone shares optional group storage")
	}
}

func TestParseUnion(t *testing.T) {
	q := MustParse(`
		PREFIX ex: <http://x/>
		SELECT ?x WHERE {
			{ ?x a ex:Dog . ?x ex:name ?n }
			UNION
			{ ?x a ex:Cat }
			UNION
			{ ?x a ex:Bird }
		}`)
	if len(q.UnionGroups) != 3 {
		t.Fatalf("branches = %d, want 3", len(q.UnionGroups))
	}
	if len(q.Patterns) != 0 {
		t.Errorf("required patterns = %d, want 0", len(q.Patterns))
	}
	if len(q.UnionGroups[0]) != 2 || len(q.UnionGroups[1]) != 1 {
		t.Errorf("branch sizes wrong")
	}
	b := q.Branch(1)
	if len(b.Patterns) != 1 || len(b.UnionGroups) != 0 {
		t.Errorf("Branch(1) = %+v", b)
	}
	// String round trip
	rt, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, q.String())
	}
	if len(rt.UnionGroups) != 3 {
		t.Errorf("round trip lost union: %s", q.String())
	}
}

func TestParseUnionWithFilters(t *testing.T) {
	// the filter variable is bound in both branches → accepted
	q := MustParse(`SELECT * WHERE {
		{ ?x <http://x/age> ?a }
		UNION
		{ ?x <http://x/years> ?a }
	} LIMIT 5`)
	if len(q.UnionGroups) != 2 || q.Limit != 5 {
		t.Errorf("q = %+v", q)
	}
	// filter var bound in only one branch → rejected
	if _, err := Parse(`SELECT * WHERE {
		{ ?x <http://x/age> ?a }
		UNION
		{ ?x <http://x/years> ?b }
	}`); err != nil {
		t.Errorf("union without filters rejected: %v", err)
	}
}

func TestParseCountAggregate(t *testing.T) {
	q := MustParse(`SELECT (COUNT(*) AS ?n) WHERE { ?s <http://x/p> ?o }`)
	if q.Aggregate == nil || q.Aggregate.Var != "" || q.Aggregate.As != "n" {
		t.Fatalf("aggregate = %+v", q.Aggregate)
	}
	q = MustParse(`SELECT (COUNT(DISTINCT ?o) AS ?n) WHERE { ?s <http://x/p> ?o }`)
	if q.Aggregate == nil || !q.Aggregate.Distinct || q.Aggregate.Var != "o" {
		t.Fatalf("aggregate = %+v", q.Aggregate)
	}
	// String round trip
	rt, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, q.String())
	}
	if rt.Aggregate == nil || rt.Aggregate.As != "n" {
		t.Errorf("round trip lost aggregate: %s", q.String())
	}
}

func TestPropertyPathSequence(t *testing.T) {
	q := MustParse(`
		PREFIX ub: <http://x/>
		SELECT ?n WHERE {
			?x a ub:Student .
			?x ub:advisor/ub:name ?n .
		}`)
	if len(q.Patterns) != 3 {
		t.Fatalf("patterns = %d, want 3 (type + 2 desugared):\n%s", len(q.Patterns), q.String())
	}
	// the chain shares a fresh variable
	p1, p2 := q.Patterns[1], q.Patterns[2]
	if !p1.O.IsVar() || !p2.S.IsVar() || p1.O.Var != p2.S.Var {
		t.Errorf("chain not linked: %v | %v", p1, p2)
	}
	if p1.P.Term.Value != "http://x/advisor" || p2.P.Term.Value != "http://x/name" {
		t.Errorf("predicates wrong: %v | %v", p1, p2)
	}
	if p2.O.Var != "n" {
		t.Errorf("final object = %v", p2.O)
	}
	// indexes must stay sequential
	for i, tp := range q.Patterns {
		if tp.Index != i {
			t.Errorf("pattern %d has index %d", i, tp.Index)
		}
	}
}

func TestPropertyPathInverse(t *testing.T) {
	q := MustParse(`
		PREFIX ub: <http://x/>
		SELECT * WHERE { ?c ^ub:teacherOf ?t }`)
	tp := q.Patterns[0]
	if tp.S.Var != "t" || tp.O.Var != "c" {
		t.Errorf("inverse not swapped: %v", tp)
	}
}

func TestPropertyPathThreeSteps(t *testing.T) {
	q := MustParse(`
		PREFIX ub: <http://x/>
		SELECT * WHERE { ?x ub:a/ub:b/^ub:c ?y }`)
	if len(q.Patterns) != 3 {
		t.Fatalf("patterns = %d", len(q.Patterns))
	}
	last := q.Patterns[2]
	// ^ub:c means the final object ?y is the subject of the c-edge
	if last.S.Var != "y" {
		t.Errorf("inverse final step: %v", last)
	}
}

func TestPropertyPathErrors(t *testing.T) {
	bad := []string{
		`SELECT * WHERE { ?x ?p/?q ?y }`,         // variable in path
		`SELECT * WHERE { ?x <http://x/a>/ ?y }`, // dangling slash
		`SELECT * WHERE { ?x ^ ?y }`,             // bare caret
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestPropertyPathExecution(t *testing.T) {
	// end-to-end sanity through the engine happens in the facade tests;
	// here check the desugared form answers TypeOf correctly: the
	// subject variable's type pattern still anchors shape statistics.
	q := MustParse(`
		PREFIX ub: <http://x/>
		SELECT * WHERE {
			?x a ub:Student .
			?x ub:advisor/ub:name ?n .
		}`)
	cls, ok := q.TypeOf("x")
	if !ok || cls != "http://x/Student" {
		t.Errorf("TypeOf(x) = %q, %v", cls, ok)
	}
}

func TestParseConstruct(t *testing.T) {
	q := MustParse(`
		PREFIX ex: <http://x/>
		CONSTRUCT { ?y ex:knownBy ?x . ?x a ex:Knower }
		WHERE { ?x ex:knows ?y }`)
	if len(q.Construct) != 2 {
		t.Fatalf("template = %v", q.Construct)
	}
	if len(q.Patterns) != 1 {
		t.Errorf("where patterns = %d", len(q.Patterns))
	}
	// round trip
	rt, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, q.String())
	}
	if len(rt.Construct) != 2 {
		t.Errorf("round trip lost template: %s", q.String())
	}
}

func TestParseConstructErrors(t *testing.T) {
	bad := []string{
		`CONSTRUCT { } WHERE { ?s <http://x/p> ?o }`,
		`CONSTRUCT { ?s <http://x/a>/<http://x/b> ?o } WHERE { ?s <http://x/p> ?o }`,
		`CONSTRUCT { ?s <http://x/p> ?o }`,
		`CONSTRUCT ?s <http://x/p> ?o WHERE { ?s <http://x/p> ?o }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}
