package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"rdfshapes/internal/rdf"
)

// Parse parses a SELECT query in the supported SPARQL subset:
//
//	PREFIX ub: <http://example.org/univ#>
//	SELECT DISTINCT ?x ?y WHERE {
//	  ?x a ub:GraduateStudent .
//	  ?x ub:advisor ?y .
//	} LIMIT 10
//
// The keyword 'a' abbreviates rdf:type. Triple patterns are separated by
// '.'; a trailing '.' before '}' is optional per SPARQL grammar.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: rdf.CommonPrefixes()}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; intended for static workload
// definitions and tests.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks     []token
	i        int
	prefixes *rdf.PrefixMap
	pathVars int // counter for fresh property-path variables
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("sparql: expected %s at offset %d, got %q", what, t.pos, t.text)
	}
	return t, nil
}

// prefixDecls consumes any run of PREFIX declarations, binding each into
// the parser's prefix map. Shared by queries and updates.
func (p *parser) prefixDecls() error {
	for p.cur().kind == tokKeyword && p.cur().text == "PREFIX" {
		p.next()
		name, err := p.expect(tokQName, "prefix name")
		if err != nil {
			return err
		}
		label := strings.TrimSuffix(name.text, ":")
		if label == name.text {
			return fmt.Errorf("sparql: prefix name %q must end with ':' (offset %d)", name.text, name.pos)
		}
		iri, err := p.expect(tokIRI, "prefix IRI")
		if err != nil {
			return err
		}
		p.prefixes.Bind(label, iri.text)
	}
	return nil
}

func (p *parser) query() (*Query, error) {
	q := &Query{Prefixes: p.prefixes}
	if err := p.prefixDecls(); err != nil {
		return nil, err
	}
	// query form: SELECT [DISTINCT] projection | ASK
	switch t := p.cur(); {
	case t.kind == tokKeyword && t.text == "SELECT":
		p.next()
		if p.cur().kind == tokKeyword && p.cur().text == "DISTINCT" {
			q.Distinct = true
			p.next()
		}
		switch p.cur().kind {
		case tokStar:
			p.next()
		case tokVar:
			for p.cur().kind == tokVar {
				q.Projection = append(q.Projection, p.next().text)
			}
		case tokLParen:
			agg, err := p.countAggregate()
			if err != nil {
				return nil, err
			}
			q.Aggregate = agg
		default:
			return nil, fmt.Errorf("sparql: expected '*', variables, or (COUNT...) after SELECT at offset %d", p.cur().pos)
		}
	case t.kind == tokKeyword && t.text == "ASK":
		q.Ask = true
		p.next()
	case t.kind == tokKeyword && t.text == "CONSTRUCT":
		p.next()
		tmpl, err := p.constructTemplate()
		if err != nil {
			return nil, err
		}
		q.Construct = tmpl
	default:
		return nil, fmt.Errorf("sparql: expected SELECT, ASK, or CONSTRUCT at offset %d", t.pos)
	}
	// WHERE is optional for ASK, mandatory for SELECT in this subset
	if t := p.cur(); t.kind == tokKeyword && t.text == "WHERE" {
		p.next()
	} else if !q.Ask {
		return nil, fmt.Errorf("sparql: expected WHERE at offset %d", t.pos)
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	if p.cur().kind == tokLBrace {
		// UNION body: WHERE { {G1} UNION {G2} ... }. In this subset a
		// union body may not mix with other clauses.
		if err := p.unionBody(q); err != nil {
			return nil, err
		}
		if err := p.solutionModifiers(q); err != nil {
			return nil, err
		}
		if t := p.cur(); t.kind != tokEOF {
			return nil, fmt.Errorf("sparql: trailing input at offset %d: %q", t.pos, t.text)
		}
		if len(q.OrderBy) > 0 {
			return nil, fmt.Errorf("sparql: ORDER BY over UNION is not supported")
		}
		// explicit projection variables must be bound by every branch
		for _, v := range q.Projection {
			for bi := range q.UnionGroups {
				found := false
				for _, tp := range q.UnionGroups[bi] {
					for _, tv := range tp.Vars() {
						if tv == v {
							found = true
						}
					}
				}
				if !found {
					return nil, fmt.Errorf("sparql: projected variable ?%s not bound by UNION branch %d", v, bi+1)
				}
			}
		}
		if err := validateFilters(q); err != nil {
			return nil, err
		}
		if err := validateAggregate(q); err != nil {
			return nil, err
		}
		return q, nil
	}
	for p.cur().kind != tokRBrace {
		if t := p.cur(); t.kind == tokKeyword && t.text == "FILTER" {
			p.next()
			f, err := p.filter()
			if err != nil {
				return nil, err
			}
			q.Filters = append(q.Filters, f)
			if p.cur().kind == tokDot {
				p.next()
			}
			continue
		}
		if t := p.cur(); t.kind == tokKeyword && t.text == "OPTIONAL" {
			p.next()
			group, groupFilters, err := p.optionalGroup()
			if err != nil {
				return nil, err
			}
			q.Optionals = append(q.Optionals, group)
			for len(q.OptionalFilters) < len(q.Optionals)-1 {
				q.OptionalFilters = append(q.OptionalFilters, nil)
			}
			q.OptionalFilters = append(q.OptionalFilters, groupFilters)
			if p.cur().kind == tokDot {
				p.next()
			}
			continue
		}
		tps, err := p.triplePattern()
		if err != nil {
			return nil, err
		}
		for _, tp := range tps {
			tp.Index = len(q.Patterns)
			q.Patterns = append(q.Patterns, tp)
		}
		if p.cur().kind == tokDot {
			p.next()
		} else if t := p.cur(); t.kind != tokRBrace && !(t.kind == tokKeyword && (t.text == "FILTER" || t.text == "OPTIONAL")) {
			return nil, fmt.Errorf("sparql: expected '.', FILTER, OPTIONAL, or '}' at offset %d", t.pos)
		}
	}
	p.next() // consume '}'
	if err := p.solutionModifiers(q); err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, fmt.Errorf("sparql: trailing input at offset %d: %q", t.pos, t.text)
	}
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("sparql: empty basic graph pattern")
	}
	if err := validateFilters(q); err != nil {
		return nil, err
	}
	if err := validateAggregate(q); err != nil {
		return nil, err
	}
	return q, nil
}

// constructTemplate parses "{ tp . tp . }" after the CONSTRUCT keyword.
// Property paths are not allowed in templates: a template states triples
// to emit, not a navigation.
func (p *parser) constructTemplate() ([]TriplePattern, error) {
	if _, err := p.expect(tokLBrace, "'{' after CONSTRUCT"); err != nil {
		return nil, err
	}
	var tmpl []TriplePattern
	for p.cur().kind != tokRBrace {
		tps, err := p.triplePattern()
		if err != nil {
			return nil, err
		}
		if len(tps) != 1 {
			return nil, fmt.Errorf("sparql: property paths are not allowed in CONSTRUCT templates")
		}
		tps[0].Index = len(tmpl)
		tmpl = append(tmpl, tps[0])
		if p.cur().kind == tokDot {
			p.next()
		} else if p.cur().kind != tokRBrace {
			return nil, fmt.Errorf("sparql: expected '.' or '}' in CONSTRUCT template at offset %d", p.cur().pos)
		}
	}
	p.next() // consume '}'
	if len(tmpl) == 0 {
		return nil, fmt.Errorf("sparql: empty CONSTRUCT template")
	}
	return tmpl, nil
}

// unionBody parses "{G1} UNION {G2} ..." up to and including the closing
// outer '}'.
func (p *parser) unionBody(q *Query) error {
	for {
		if _, err := p.expect(tokLBrace, "'{'"); err != nil {
			return err
		}
		var group []TriplePattern
		for p.cur().kind != tokRBrace {
			tps, err := p.triplePattern()
			if err != nil {
				return err
			}
			for _, tp := range tps {
				tp.Index = len(group)
				group = append(group, tp)
			}
			if p.cur().kind == tokDot {
				p.next()
			} else if p.cur().kind != tokRBrace {
				return fmt.Errorf("sparql: expected '.' or '}' in UNION branch at offset %d", p.cur().pos)
			}
		}
		p.next() // consume branch '}'
		if len(group) == 0 {
			return fmt.Errorf("sparql: empty UNION branch")
		}
		q.UnionGroups = append(q.UnionGroups, group)
		if t := p.cur(); t.kind == tokKeyword && t.text == "UNION" {
			p.next()
			continue
		}
		break
	}
	if len(q.UnionGroups) < 2 {
		return fmt.Errorf("sparql: UNION requires at least two branches")
	}
	if _, err := p.expect(tokRBrace, "'}' closing the union body"); err != nil {
		return err
	}
	return nil
}

// countAggregate parses "( COUNT ( [DISTINCT] (*|?v) ) AS ?c )".
func (p *parser) countAggregate() (*CountAggregate, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	if t := p.next(); t.kind != tokKeyword || t.text != "COUNT" {
		return nil, fmt.Errorf("sparql: expected COUNT at offset %d", t.pos)
	}
	if _, err := p.expect(tokLParen, "'(' after COUNT"); err != nil {
		return nil, err
	}
	agg := &CountAggregate{}
	if t := p.cur(); t.kind == tokKeyword && t.text == "DISTINCT" {
		agg.Distinct = true
		p.next()
	}
	switch t := p.next(); t.kind {
	case tokStar:
		if agg.Distinct {
			return nil, fmt.Errorf("sparql: COUNT(DISTINCT *) is not supported (offset %d)", t.pos)
		}
	case tokVar:
		agg.Var = t.text
	default:
		return nil, fmt.Errorf("sparql: expected '*' or variable in COUNT at offset %d", t.pos)
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	if t := p.next(); t.kind != tokKeyword || t.text != "AS" {
		return nil, fmt.Errorf("sparql: expected AS at offset %d", t.pos)
	}
	as, err := p.expect(tokVar, "output variable")
	if err != nil {
		return nil, err
	}
	agg.As = as.text
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return agg, nil
}

// validateAggregate checks the COUNT projection against the BGP.
func validateAggregate(q *Query) error {
	if q.Aggregate == nil {
		return nil
	}
	if q.Ask {
		return fmt.Errorf("sparql: ASK cannot carry a COUNT projection")
	}
	if q.Aggregate.Var == "" {
		return nil
	}
	for _, v := range q.AllVars() {
		if v == q.Aggregate.Var {
			return nil
		}
	}
	return fmt.Errorf("sparql: COUNT references unbound variable ?%s", q.Aggregate.Var)
}

// optionalGroup parses "{ tp . tp . FILTER(...) }" after the OPTIONAL
// keyword. FILTER clauses inside the group scope to the group: they
// constrain whether the group matches, never whether the enclosing
// solution survives. Nested OPTIONAL remains outside the supported
// subset.
func (p *parser) optionalGroup() ([]TriplePattern, []Filter, error) {
	if _, err := p.expect(tokLBrace, "'{' after OPTIONAL"); err != nil {
		return nil, nil, err
	}
	var group []TriplePattern
	var filters []Filter
	for p.cur().kind != tokRBrace {
		if t := p.cur(); t.kind == tokKeyword && t.text == "FILTER" {
			p.next()
			f, err := p.filter()
			if err != nil {
				return nil, nil, err
			}
			filters = append(filters, f)
			if p.cur().kind == tokDot {
				p.next()
			}
			continue
		}
		tps, err := p.triplePattern()
		if err != nil {
			return nil, nil, err
		}
		group = append(group, tps...)
		if p.cur().kind == tokDot {
			p.next()
		} else if t := p.cur(); t.kind != tokRBrace && !(t.kind == tokKeyword && t.text == "FILTER") {
			return nil, nil, fmt.Errorf("sparql: expected '.', FILTER, or '}' in OPTIONAL at offset %d", p.cur().pos)
		}
	}
	p.next() // consume '}'
	if len(group) == 0 {
		return nil, nil, fmt.Errorf("sparql: empty OPTIONAL group")
	}
	return group, filters, nil
}

// filter parses "( operand op operand )" after the FILTER keyword.
func (p *parser) filter() (Filter, error) {
	if _, err := p.expect(tokLParen, "'(' after FILTER"); err != nil {
		return Filter{}, err
	}
	left, err := p.filterOperand()
	if err != nil {
		return Filter{}, err
	}
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return Filter{}, err
	}
	var op CompareOp
	switch opTok.text {
	case "=":
		op = OpEq
	case "!=":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return Filter{}, fmt.Errorf("sparql: unsupported operator %q at offset %d", opTok.text, opTok.pos)
	}
	right, err := p.filterOperand()
	if err != nil {
		return Filter{}, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return Filter{}, err
	}
	if !left.IsVar() && !right.IsVar() {
		return Filter{}, fmt.Errorf("sparql: filter with two constants at offset %d", opTok.pos)
	}
	return Filter{Left: left, Op: op, Right: right}, nil
}

func (p *parser) filterOperand() (PatternTerm, error) {
	return p.patternTerm(false)
}

// solutionModifiers parses ORDER BY, LIMIT, and OFFSET after the group.
func (p *parser) solutionModifiers(q *Query) error {
	if t := p.cur(); t.kind == tokKeyword && t.text == "ORDER" {
		p.next()
		if t := p.cur(); t.kind != tokKeyword || t.text != "BY" {
			return fmt.Errorf("sparql: expected BY after ORDER at offset %d", t.pos)
		}
		p.next()
		for {
			t := p.cur()
			switch {
			case t.kind == tokVar:
				p.next()
				q.OrderBy = append(q.OrderBy, OrderKey{Var: t.text})
			case t.kind == tokKeyword && (t.text == "ASC" || t.text == "DESC"):
				p.next()
				if _, err := p.expect(tokLParen, "'('"); err != nil {
					return err
				}
				v, err := p.expect(tokVar, "variable")
				if err != nil {
					return err
				}
				if _, err := p.expect(tokRParen, "')'"); err != nil {
					return err
				}
				q.OrderBy = append(q.OrderBy, OrderKey{Var: v.text, Desc: t.text == "DESC"})
			default:
				if len(q.OrderBy) == 0 {
					return fmt.Errorf("sparql: expected sort key at offset %d", t.pos)
				}
				goto done
			}
		}
	done:
	}
	for {
		t := p.cur()
		if t.kind != tokKeyword || (t.text != "LIMIT" && t.text != "OFFSET") {
			break
		}
		p.next()
		num, err := p.expect(tokNumber, t.text+" value")
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(num.text)
		if err != nil || n < 0 {
			return fmt.Errorf("sparql: invalid %s %q at offset %d", t.text, num.text, num.pos)
		}
		if t.text == "LIMIT" {
			q.Limit = n
		} else {
			q.Offset = n
		}
	}
	return nil
}

// validateFilters ensures every filter variable is bound by the required
// BGP — or, for a UNION query, by every branch (so each branch can apply
// the filter independently). A top-level filter whose variables are only
// bound inside one OPTIONAL group is rescoped into that group
// (OptionalFilters): per the SPARQL group-scoping semantics, such a
// filter constrains the group match, not the whole solution — an absent
// binding must leave the solution intact with the group unbound, never
// reject the row. Filters scoped to a group (written inside it or
// rescoped) may reference that group's variables plus required ones.
func validateFilters(q *Query) error {
	required := map[string]bool{}
	for _, tp := range q.Patterns {
		for _, v := range tp.Vars() {
			required[v] = true
		}
	}
	groupBound := make([]map[string]bool, len(q.Optionals))
	for gi, g := range q.Optionals {
		groupBound[gi] = map[string]bool{}
		for _, tp := range g {
			for _, v := range tp.Vars() {
				groupBound[gi][v] = true
			}
		}
	}

	if len(q.UnionGroups) == 0 && len(q.Optionals) > 0 {
		var kept []Filter
		for _, f := range q.Filters {
			target := -1
			for _, v := range f.Vars() {
				if required[v] {
					continue
				}
				found := -1
				for gi := range groupBound {
					if groupBound[gi][v] {
						found = gi
						break
					}
				}
				if found < 0 {
					return fmt.Errorf("sparql: filter references variable ?%s not bound by every branch", v)
				}
				if target >= 0 && target != found {
					return fmt.Errorf("sparql: filter %s straddles two OPTIONAL groups; no single group scope", f)
				}
				target = found
			}
			if target < 0 {
				kept = append(kept, f)
				continue
			}
			for len(q.OptionalFilters) < len(q.Optionals) {
				q.OptionalFilters = append(q.OptionalFilters, nil)
			}
			q.OptionalFilters[target] = append(q.OptionalFilters[target], f)
		}
		q.Filters = kept
	}

	boundSets := [][]TriplePattern{q.Patterns}
	if len(q.UnionGroups) > 0 {
		boundSets = q.UnionGroups
	}
	for _, set := range boundSets {
		bound := map[string]bool{}
		for _, tp := range set {
			for _, v := range tp.Vars() {
				bound[v] = true
			}
		}
		for _, f := range q.Filters {
			for _, v := range f.Vars() {
				if !bound[v] {
					return fmt.Errorf("sparql: filter references variable ?%s not bound by every branch", v)
				}
			}
		}
	}
	for gi, fs := range q.OptionalFilters {
		for _, f := range fs {
			for _, v := range f.Vars() {
				if !required[v] && !groupBound[gi][v] {
					return fmt.Errorf("sparql: OPTIONAL filter references variable ?%s not bound by the group or the required patterns", v)
				}
			}
		}
	}
	all := map[string]bool{}
	for _, v := range q.AllVars() {
		all[v] = true
	}
	for _, k := range q.OrderBy {
		if !all[k.Var] {
			return fmt.Errorf("sparql: ORDER BY references unbound variable ?%s", k.Var)
		}
	}
	return nil
}

// pathStep is one element of a property path in predicate position.
type pathStep struct {
	inverse bool
	pred    PatternTerm
}

// triplePattern parses one subject–path–object statement. Property paths
// (sequence "/" and inverse "^") desugar into chains of plain triple
// patterns over fresh internal variables, so everything downstream —
// planner, estimators, engine — sees ordinary BGPs:
//
//	?x ub:advisor/ub:name ?n   ⇒   ?x ub:advisor ?_path1 . ?_path1 ub:name ?n
//	?c ^ub:teacherOf ?t        ⇒   ?t ub:teacherOf ?c
func (p *parser) triplePattern() ([]TriplePattern, error) {
	s, err := p.patternTerm(true)
	if err != nil {
		return nil, err
	}
	var steps []pathStep
	for {
		step := pathStep{}
		if p.cur().kind == tokCaret {
			p.next()
			step.inverse = true
		}
		pr, err := p.patternTerm(true)
		if err != nil {
			return nil, err
		}
		if !pr.IsVar() && !pr.Term.IsIRI() {
			return nil, fmt.Errorf("sparql: predicate must be an IRI or variable, got %s", pr)
		}
		step.pred = pr
		steps = append(steps, step)
		if p.cur().kind == tokSlash {
			p.next()
			continue
		}
		break
	}
	if len(steps) > 1 {
		for _, st := range steps {
			if st.pred.IsVar() {
				return nil, fmt.Errorf("sparql: variable predicates are not allowed in property paths")
			}
		}
	}
	o, err := p.patternTerm(false)
	if err != nil {
		return nil, err
	}

	// chain the steps through fresh variables
	out := make([]TriplePattern, 0, len(steps))
	cur := s
	for i, st := range steps {
		var next PatternTerm
		if i == len(steps)-1 {
			next = o
		} else {
			p.pathVars++
			next = Variable(fmt.Sprintf("_path%d", p.pathVars))
		}
		tp := TriplePattern{S: cur, P: st.pred, O: next}
		if st.inverse {
			tp.S, tp.O = tp.O, tp.S
		}
		out = append(out, tp)
		cur = next
	}
	return out, nil
}

func (p *parser) patternTerm(subjectOrPred bool) (PatternTerm, error) {
	t := p.next()
	switch t.kind {
	case tokVar:
		return Variable(t.text), nil
	case tokIRI:
		return Bound(rdf.NewIRI(t.text)), nil
	case tokQName:
		if t.text == "a" {
			return Bound(rdf.NewIRI(rdf.RDFType)), nil
		}
		iri, err := p.prefixes.Expand(t.text)
		if err != nil {
			return PatternTerm{}, fmt.Errorf("%w (offset %d)", err, t.pos)
		}
		return Bound(rdf.NewIRI(iri)), nil
	case tokLiteral:
		if subjectOrPred {
			return PatternTerm{}, fmt.Errorf("sparql: literal not allowed here (offset %d)", t.pos)
		}
		term, err := parseLiteralToken(t.text)
		if err != nil {
			return PatternTerm{}, fmt.Errorf("%w (offset %d)", err, t.pos)
		}
		return Bound(term), nil
	case tokNumber:
		if subjectOrPred {
			return PatternTerm{}, fmt.Errorf("sparql: number not allowed here (offset %d)", t.pos)
		}
		dt := rdf.XSDInteger
		if strings.Contains(t.text, ".") {
			dt = rdf.XSDDecimal
		}
		return Bound(rdf.NewTypedLiteral(t.text, dt)), nil
	default:
		return PatternTerm{}, fmt.Errorf("sparql: unexpected token %q at offset %d", t.text, t.pos)
	}
}

// parseLiteralToken parses a raw literal token produced by the lexer, e.g.
// "abc", "abc"@en, or "5"^^<http://www.w3.org/2001/XMLSchema#integer>.
func parseLiteralToken(raw string) (rdf.Term, error) {
	if len(raw) < 2 || raw[0] != '"' {
		return rdf.Term{}, fmt.Errorf("sparql: malformed literal %q", raw)
	}
	// find closing quote
	j := 1
	for j < len(raw) {
		if raw[j] == '\\' {
			j += 2
			continue
		}
		if raw[j] == '"' {
			break
		}
		j++
	}
	if j >= len(raw) {
		return rdf.Term{}, fmt.Errorf("sparql: malformed literal %q", raw)
	}
	lex := unescapeSPARQL(raw[1:j])
	rest := raw[j+1:]
	switch {
	case rest == "":
		return rdf.NewLiteral(lex), nil
	case strings.HasPrefix(rest, "@"):
		return rdf.NewLangLiteral(lex, rest[1:]), nil
	case strings.HasPrefix(rest, "^^<") && strings.HasSuffix(rest, ">"):
		return rdf.NewTypedLiteral(lex, rest[3:len(rest)-1]), nil
	default:
		return rdf.Term{}, fmt.Errorf("sparql: malformed literal suffix %q", rest)
	}
}

func unescapeSPARQL(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			default:
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
