package sparql

import (
	"strings"
	"testing"

	"rdfshapes/internal/rdf"
)

func TestParseUpdateInsertData(t *testing.T) {
	req, err := ParseUpdate(`PREFIX ex: <http://ex/>
		INSERT DATA { ex:s ex:p ex:o . ex:s ex:q "v"@en }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Ops) != 1 {
		t.Fatalf("ops = %d, want 1", len(req.Ops))
	}
	op := req.Ops[0]
	if !op.Insert {
		t.Error("op is not an insert")
	}
	if len(op.Triples) != 2 {
		t.Fatalf("triples = %d, want 2", len(op.Triples))
	}
	if got := op.Triples[0]; got.S.Value != "http://ex/s" || got.P.Value != "http://ex/p" || got.O.Value != "http://ex/o" {
		t.Errorf("triple 0 = %v", got)
	}
	if got := op.Triples[1].O; got.Kind != rdf.Literal || got.Value != "v" || got.Lang != "en" {
		t.Errorf("literal object = %#v", got)
	}
}

func TestParseUpdateMultiOp(t *testing.T) {
	req, err := ParseUpdate(`PREFIX ex: <http://ex/>
		INSERT DATA { ex:a ex:p ex:b . } ;
		PREFIX f: <http://f/>
		DELETE DATA { f:x a ex:Gone } ;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(req.Ops))
	}
	if !req.Ops[0].Insert || req.Ops[1].Insert {
		t.Errorf("op kinds = %v, %v; want insert, delete", req.Ops[0].Insert, req.Ops[1].Insert)
	}
	del := req.Ops[1].Triples[0]
	if del.S.Value != "http://f/x" {
		t.Errorf("later PREFIX not in scope: subject = %v", del.S)
	}
	if del.P.Value != rdf.RDFType {
		t.Errorf("'a' did not expand to rdf:type: %v", del.P)
	}
}

func TestParseUpdateTypedLiteralAndIRI(t *testing.T) {
	req, err := ParseUpdate(`INSERT DATA {
		<http://ex/s> <http://ex/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer>
	}`)
	if err != nil {
		t.Fatal(err)
	}
	o := req.Ops[0].Triples[0].O
	if o.Kind != rdf.Literal || o.Value != "30" || o.Datatype != rdf.XSDInteger {
		t.Errorf("typed literal = %#v", o)
	}
}

func TestParseUpdateErrors(t *testing.T) {
	cases := map[string]string{
		"empty request":       ``,
		"prefix only":         `PREFIX ex: <http://ex/>`,
		"variable subject":    `INSERT DATA { ?s <http://p> <http://o> }`,
		"variable object":     `DELETE DATA { <http://s> <http://p> ?o }`,
		"literal predicate":   `INSERT DATA { <http://s> "p" <http://o> }`,
		"empty block":         `INSERT DATA { }`,
		"missing DATA":        `INSERT { <http://s> <http://p> <http://o> }`,
		"select not update":   `SELECT * WHERE { ?s ?p ?o }`,
		"trailing junk":       `INSERT DATA { <http://s> <http://p> <http://o> } extra`,
		"unclosed block":      `INSERT DATA { <http://s> <http://p> <http://o>`,
		"where form rejected": `DELETE WHERE { ?s ?p ?o }`,
	}
	for name, src := range cases {
		if _, err := ParseUpdate(src); err == nil {
			t.Errorf("%s: ParseUpdate accepted %q", name, src)
		} else if !strings.HasPrefix(err.Error(), "sparql:") {
			t.Errorf("%s: error %q not in package convention", name, err)
		}
	}
}

func TestParseUpdateTrailingSemicolonOnly(t *testing.T) {
	// a bare trailing ';' is allowed, but ';' with nothing before it is not
	if _, err := ParseUpdate(`;`); err == nil {
		t.Error("lone ';' accepted")
	}
	if _, err := ParseUpdate(`INSERT DATA { <http://s> <http://p> <http://o> } ; ;`); err == nil {
		t.Error("double trailing ';' accepted")
	}
}
