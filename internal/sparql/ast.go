// Package sparql implements the SPARQL subset needed by the paper's
// workloads: PREFIX declarations and SELECT queries over a single basic
// graph pattern (BGP), with optional DISTINCT and LIMIT.
//
// Every query the paper evaluates — complex (C), snowflake (F), and star
// (S) shapes — is a conjunctive BGP, so joins between triple patterns are
// the only operator the optimizer has to order.
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"rdfshapes/internal/rdf"
)

// PatternTerm is one position of a triple pattern: either a variable or a
// concrete RDF term.
type PatternTerm struct {
	// Var is the variable name without the leading '?', or "" when the
	// position is concrete.
	Var string
	// Term is the concrete term; meaningful only when Var is "".
	Term rdf.Term
}

// Variable returns a variable pattern term.
func Variable(name string) PatternTerm { return PatternTerm{Var: name} }

// Bound returns a concrete pattern term.
func Bound(t rdf.Term) PatternTerm { return PatternTerm{Term: t} }

// IsVar reports whether the position holds a variable.
func (pt PatternTerm) IsVar() bool { return pt.Var != "" }

// String renders the term in SPARQL syntax.
func (pt PatternTerm) String() string {
	if pt.IsVar() {
		return "?" + pt.Var
	}
	return pt.Term.String()
}

// TriplePattern is one element of a BGP.
type TriplePattern struct {
	S, P, O PatternTerm
	// Index is the position of the pattern in the parsed query, used by
	// planners to report orderings stably.
	Index int
}

// String renders the pattern in SPARQL syntax.
func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String() + " ."
}

// Vars returns the distinct variable names used by the pattern.
func (tp TriplePattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
		if pt.IsVar() && !seen[pt.Var] {
			seen[pt.Var] = true
			out = append(out, pt.Var)
		}
	}
	return out
}

// IsTypePattern reports whether the pattern is <?x rdf:type Class> with a
// concrete class, the shape that anchors a subject variable to a node
// shape (Section 6.1 of the paper).
func (tp TriplePattern) IsTypePattern() bool {
	return !tp.P.IsVar() && tp.P.Term.IsIRI() && tp.P.Term.Value == rdf.RDFType &&
		!tp.O.IsVar()
}

// JoinKind classifies a join between two triple patterns by the positions
// of their shared variable, following Section 6.2 of the paper.
type JoinKind uint8

// Join kinds. Cartesian means no shared variable.
const (
	JoinNone  JoinKind = iota // Cartesian product
	JoinSS                    // subject-subject
	JoinSO                    // subject of left = object of right
	JoinOS                    // object of left = subject of right
	JoinOO                    // object-object
	JoinOther                 // a shared variable involves a predicate position
)

// String names the join kind.
func (k JoinKind) String() string {
	switch k {
	case JoinNone:
		return "cartesian"
	case JoinSS:
		return "SS"
	case JoinSO:
		return "SO"
	case JoinOS:
		return "OS"
	case JoinOO:
		return "OO"
	case JoinOther:
		return "other"
	default:
		return fmt.Sprintf("JoinKind(%d)", uint8(k))
	}
}

// SharedJoin describes one shared variable between two patterns.
type SharedJoin struct {
	Var  string
	Kind JoinKind
}

// Joins returns the shared variables between a and b with their join
// kinds, sorted by variable name for determinism. An empty result means
// the patterns are only combinable as a Cartesian product.
func Joins(a, b TriplePattern) []SharedJoin {
	posIn := func(tp TriplePattern, v string) (subj, pred, obj bool) {
		subj = tp.S.IsVar() && tp.S.Var == v
		pred = tp.P.IsVar() && tp.P.Var == v
		obj = tp.O.IsVar() && tp.O.Var == v
		return
	}
	var out []SharedJoin
	for _, v := range a.Vars() {
		sa, pa, oa := posIn(a, v)
		sb, pb, ob := posIn(b, v)
		if !sb && !pb && !ob {
			continue
		}
		var kind JoinKind
		switch {
		case pa || pb:
			kind = JoinOther
		case sa && sb:
			kind = JoinSS
		case sa && ob:
			kind = JoinSO
		case oa && sb:
			kind = JoinOS
		case oa && ob:
			kind = JoinOO
		}
		out = append(out, SharedJoin{Var: v, Kind: kind})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Var < out[j].Var })
	return out
}

// Query is a parsed SELECT or ASK query.
type Query struct {
	// Prefixes holds the PREFIX declarations of the query.
	Prefixes *rdf.PrefixMap
	// Ask is true for ASK queries (existence check, no projection).
	Ask bool
	// Projection lists the selected variable names; empty means SELECT *.
	Projection []string
	// Distinct is true for SELECT DISTINCT.
	Distinct bool
	// Patterns is the required BGP in textual order. Empty when the
	// query body is a UNION of groups.
	Patterns []TriplePattern
	// UnionGroups, when non-empty, holds the branches of a top-level
	// UNION: WHERE { {G1} UNION {G2} ... }. Each branch is a plain BGP
	// evaluated independently; results are concatenated.
	UnionGroups [][]TriplePattern
	// Optionals lists OPTIONAL groups, each a small BGP evaluated as a
	// left outer join against the required part, in textual order.
	Optionals [][]TriplePattern
	// OptionalFilters[g], when non-nil, holds the FILTER constraints
	// scoped to Optionals[g]: they constrain whether the group matches,
	// not whether the solution survives — a solution whose group match
	// fails only its filter is kept with the group's variables unbound.
	// Either empty or index-aligned with Optionals.
	OptionalFilters [][]Filter
	// Filters lists the FILTER constraints of the required group.
	// Filters may only reference variables bound by the required BGP
	// (or by every UNION branch); a filter whose variables are only
	// bound inside one OPTIONAL group is rescoped into that group's
	// OptionalFilters by validateFilters, per the SPARQL semantics that
	// a filter inside a group pattern scopes to the group.
	Filters []Filter
	// OrderBy lists the ORDER BY sort keys.
	OrderBy []OrderKey
	// Limit caps the number of results; 0 means unlimited.
	Limit int
	// Offset skips the first results after ordering.
	Offset int
	// Aggregate, when non-nil, turns the query into a COUNT aggregation
	// (SELECT (COUNT(*) AS ?c) ...).
	Aggregate *CountAggregate
	// Construct, when non-empty, turns the query into a CONSTRUCT: each
	// solution instantiates the template patterns into result triples.
	Construct []TriplePattern
}

// CountAggregate is the COUNT projection of an aggregate query.
type CountAggregate struct {
	// Distinct is true for COUNT(DISTINCT ?v).
	Distinct bool
	// Var is the counted variable; "" means COUNT(*).
	Var string
	// As is the output variable name.
	As string
}

// String renders the aggregate in SPARQL syntax.
func (a *CountAggregate) String() string {
	inner := "*"
	if a.Var != "" {
		inner = "?" + a.Var
		if a.Distinct {
			inner = "DISTINCT " + inner
		}
	}
	return fmt.Sprintf("(COUNT(%s) AS ?%s)", inner, a.As)
}

// Vars returns the distinct variables of the BGP in first-use order.
func (q *Query) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, tp := range q.Patterns {
		for _, v := range tp.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// TypeOf returns the class IRI that variable v is declared to be an
// instance of by a <?v rdf:type Class> pattern in the BGP, or ("", false).
// When several type patterns constrain v, the first in textual order wins.
func (q *Query) TypeOf(v string) (string, bool) {
	for _, tp := range q.Patterns {
		if tp.IsTypePattern() && tp.S.IsVar() && tp.S.Var == v && tp.O.Term.IsIRI() {
			return tp.O.Term.Value, true
		}
	}
	return "", false
}

// HasTypePattern reports whether the BGP contains at least one
// type-defined triple pattern. Per Section 6.1, shape statistics apply
// only in that case; otherwise planners fall back to global statistics.
func (q *Query) HasTypePattern() bool {
	for _, tp := range q.Patterns {
		if tp.IsTypePattern() {
			return true
		}
	}
	return false
}

// String renders the query in SPARQL syntax (without prefix compaction).
func (q *Query) String() string {
	var b strings.Builder
	if q.Ask {
		b.WriteString("ASK")
	} else if len(q.Construct) > 0 {
		b.WriteString("CONSTRUCT {\n")
		for _, tp := range q.Construct {
			b.WriteString("  ")
			b.WriteString(tp.String())
			b.WriteByte('\n')
		}
		b.WriteString("}")
	} else {
		b.WriteString("SELECT ")
		if q.Distinct {
			b.WriteString("DISTINCT ")
		}
		if q.Aggregate != nil {
			b.WriteString(q.Aggregate.String())
		} else if len(q.Projection) == 0 {
			b.WriteString("*")
		} else {
			for i, v := range q.Projection {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString("?" + v)
			}
		}
	}
	b.WriteString(" WHERE {\n")
	for i, group := range q.UnionGroups {
		if i > 0 {
			b.WriteString("  UNION\n")
		}
		b.WriteString("  {\n")
		for _, tp := range group {
			b.WriteString("    ")
			b.WriteString(tp.String())
			b.WriteByte('\n')
		}
		b.WriteString("  }\n")
	}
	for _, tp := range q.Patterns {
		b.WriteString("  ")
		b.WriteString(tp.String())
		b.WriteByte('\n')
	}
	for gi, group := range q.Optionals {
		b.WriteString("  OPTIONAL {\n")
		for _, tp := range group {
			b.WriteString("    ")
			b.WriteString(tp.String())
			b.WriteByte('\n')
		}
		if gi < len(q.OptionalFilters) {
			for _, f := range q.OptionalFilters[gi] {
				b.WriteString("    ")
				b.WriteString(f.String())
				b.WriteByte('\n')
			}
		}
		b.WriteString("  }\n")
	}
	for _, f := range q.Filters {
		b.WriteString("  ")
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	b.WriteString("}")
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY")
		for _, k := range q.OrderBy {
			b.WriteByte(' ')
			b.WriteString(k.String())
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", q.Offset)
	}
	return b.String()
}

// Clone returns a deep-enough copy of q whose Patterns slice can be
// reordered without affecting the original.
func (q *Query) Clone() *Query {
	cp := *q
	cp.Patterns = append([]TriplePattern(nil), q.Patterns...)
	cp.Projection = append([]string(nil), q.Projection...)
	cp.Filters = append([]Filter(nil), q.Filters...)
	cp.OrderBy = append([]OrderKey(nil), q.OrderBy...)
	cp.Optionals = make([][]TriplePattern, len(q.Optionals))
	for i, g := range q.Optionals {
		cp.Optionals[i] = append([]TriplePattern(nil), g...)
	}
	if q.OptionalFilters != nil {
		cp.OptionalFilters = make([][]Filter, len(q.OptionalFilters))
		for i, fs := range q.OptionalFilters {
			cp.OptionalFilters[i] = append([]Filter(nil), fs...)
		}
	}
	cp.UnionGroups = make([][]TriplePattern, len(q.UnionGroups))
	for i, g := range q.UnionGroups {
		cp.UnionGroups[i] = append([]TriplePattern(nil), g...)
	}
	cp.Construct = append([]TriplePattern(nil), q.Construct...)
	return &cp
}

// AllVars returns the variables of the required BGP and every OPTIONAL
// group, in first-use order.
func (q *Query) AllVars() []string {
	out := q.Vars()
	seen := map[string]bool{}
	for _, v := range out {
		seen[v] = true
	}
	for _, g := range q.Optionals {
		for _, tp := range g {
			for _, v := range tp.Vars() {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
	}
	for _, g := range q.UnionGroups {
		for _, tp := range g {
			for _, v := range tp.Vars() {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
	}
	return out
}

// Branch returns the query restricted to UNION branch i: a copy with the
// branch's patterns as the required BGP and no union groups. Filters and
// solution modifiers are preserved.
func (q *Query) Branch(i int) *Query {
	cp := q.Clone()
	cp.Patterns = append([]TriplePattern(nil), q.UnionGroups[i]...)
	for j := range cp.Patterns {
		cp.Patterns[j].Index = j
	}
	cp.UnionGroups = nil
	return cp
}
