package sparql

import (
	"fmt"
	"strconv"

	"rdfshapes/internal/rdf"
)

// CompareOp enumerates the comparison operators supported in FILTER
// expressions.
type CompareOp uint8

// The supported comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator in SPARQL syntax.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CompareOp(%d)", uint8(op))
	}
}

// Filter is a comparison constraint between a variable and a constant or
// second variable: FILTER(?x >= 10), FILTER(?a != ?b).
type Filter struct {
	Left  PatternTerm // always a variable in the supported subset
	Op    CompareOp
	Right PatternTerm
}

// String renders the filter in SPARQL syntax.
func (f Filter) String() string {
	return fmt.Sprintf("FILTER(%s %s %s)", f.Left, f.Op, f.Right)
}

// Vars returns the variables the filter references.
func (f Filter) Vars() []string {
	var out []string
	if f.Left.IsVar() {
		out = append(out, f.Left.Var)
	}
	if f.Right.IsVar() && (!f.Left.IsVar() || f.Right.Var != f.Left.Var) {
		out = append(out, f.Right.Var)
	}
	return out
}

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	Var  string
	Desc bool
}

// String renders the key in SPARQL syntax.
func (k OrderKey) String() string {
	if k.Desc {
		return "DESC(?" + k.Var + ")"
	}
	return "?" + k.Var
}

// EvalCompare applies op to two concrete terms with SPARQL-like
// semantics: numeric comparison when both terms are numeric literals,
// otherwise term ordering (IRIs before literals before blanks, then
// lexical).
func EvalCompare(op CompareOp, a, b rdf.Term) bool {
	c := CompareTermValues(a, b)
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	default:
		return c >= 0
	}
}

// CompareTermValues orders two terms for FILTER and ORDER BY: numeric
// literals compare by value, everything else by Term.Compare.
func CompareTermValues(a, b rdf.Term) int {
	if av, ok := numericValue(a); ok {
		if bv, ok := numericValue(b); ok {
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			default:
				return 0
			}
		}
	}
	return a.Compare(b)
}

// numericValue extracts a float from xsd numeric literals.
func numericValue(t rdf.Term) (float64, bool) {
	if !t.IsLiteral() {
		return 0, false
	}
	switch t.Datatype {
	case rdf.XSDInteger, rdf.XSDDecimal,
		rdf.XSDNS + "double", rdf.XSDNS + "float",
		rdf.XSDNS + "long", rdf.XSDNS + "int", rdf.XSDNS + "short", rdf.XSDNS + "byte",
		rdf.XSDNS + "nonNegativeInteger", rdf.XSDNS + "positiveInteger":
		v, err := strconv.ParseFloat(t.Value, 64)
		if err != nil {
			return 0, false
		}
		return v, true
	default:
		return 0, false
	}
}
