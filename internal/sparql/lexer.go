package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes of the SPARQL subset.
type tokenKind uint8

const (
	tokEOF       tokenKind = iota
	tokKeyword             // SELECT, WHERE, PREFIX, DISTINCT, LIMIT (upper-cased)
	tokVar                 // ?name (value without '?')
	tokIRI                 // <...> (value without brackets)
	tokQName               // prefix:local or the keyword 'a'
	tokLiteral             // "..." with optional @lang or ^^<dt>; value is raw token text
	tokNumber              // integer literal
	tokDot                 // .
	tokLBrace              // {
	tokRBrace              // }
	tokStar                // *
	tokLParen              // (
	tokRParen              // )
	tokOp                  // comparison operator: = != < <= > >=
	tokSlash               // / (property path sequence)
	tokCaret               // ^ (property path inverse)
	tokSemicolon           // ; (UPDATE operation separator)
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "WHERE": true, "PREFIX": true,
	"DISTINCT": true, "LIMIT": true, "ASK": true,
	"FILTER": true, "ORDER": true, "BY": true,
	"ASC": true, "DESC": true, "OFFSET": true,
	"OPTIONAL": true, "UNION": true, "COUNT": true, "AS": true,
	"CONSTRUCT": true,
	"INSERT":    true, "DELETE": true, "DATA": true,
}

// lex tokenizes the query text. Comments run from '#' to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == ';':
			toks = append(toks, token{tokSemicolon, ";", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '?' || c == '$':
			j := i + 1
			for j < n && isNameChar(rune(src[j])) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("sparql: empty variable name at offset %d", i)
			}
			toks = append(toks, token{tokVar, src[i+1 : j], i})
			i = j
		case c == '/':
			toks = append(toks, token{tokSlash, "/", i})
			i++
		case c == '^':
			if i+1 < n && src[i+1] == '^' {
				return nil, fmt.Errorf("sparql: unexpected '^^' outside a literal at offset %d", i)
			}
			toks = append(toks, token{tokCaret, "^", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sparql: unexpected '!' at offset %d", i)
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '<':
			// '<' is ambiguous: IRI opener or comparison operator. An
			// IRI reference contains no whitespace before its '>', so a
			// space, '=', or end of line right after '<' means operator.
			if i+1 >= n || src[i+1] == '=' || src[i+1] == ' ' || src[i+1] == '\t' || src[i+1] == '\n' || src[i+1] == '\r' || src[i+1] == '?' {
				if i+1 < n && src[i+1] == '=' {
					toks = append(toks, token{tokOp, "<=", i})
					i += 2
				} else {
					toks = append(toks, token{tokOp, "<", i})
					i++
				}
				continue
			}
			j := strings.IndexByte(src[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("sparql: unterminated IRI at offset %d", i)
			}
			iri := src[i+1 : i+j]
			if strings.ContainsAny(iri, " \t\n\r") {
				return nil, fmt.Errorf("sparql: malformed IRI at offset %d", i)
			}
			toks = append(toks, token{tokIRI, iri, i})
			i += j + 1
		case c == '"':
			j := i + 1
			for j < n {
				if src[j] == '\\' {
					j += 2
					continue
				}
				if src[j] == '"' {
					break
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sparql: unterminated literal at offset %d", i)
			}
			j++ // past closing quote
			// optional @lang or ^^<dt>
			if j < n && src[j] == '@' {
				for j < n && (isNameChar(rune(src[j])) || src[j] == '@' || src[j] == '-') {
					j++
				}
			} else if strings.HasPrefix(src[j:], "^^<") {
				k := strings.IndexByte(src[j+3:], '>')
				if k < 0 {
					return nil, fmt.Errorf("sparql: unterminated datatype IRI at offset %d", j)
				}
				j += 3 + k + 1
			}
			toks = append(toks, token{tokLiteral, src[i:j], i})
			i = j
		case c >= '0' && c <= '9' || c == '-' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9':
			j := i + 1
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') && !(src[j] == '.' && (j+1 >= n || src[j+1] < '0' || src[j+1] > '9')) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case isNameStart(rune(c)):
			j := i
			for j < n && (isNameChar(rune(src[j])) || src[j] == ':') {
				j++
			}
			word := src[i:j]
			if kw := strings.ToUpper(word); keywords[kw] && !strings.Contains(word, ":") {
				toks = append(toks, token{tokKeyword, kw, i})
			} else {
				toks = append(toks, token{tokQName, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("sparql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isNameStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isNameChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
