package sparql

import (
	"strings"
	"testing"

	"rdfshapes/internal/rdf"
)

func TestParseBasicQuery(t *testing.T) {
	q, err := Parse(`
		PREFIX ub: <http://example.org/ub#>
		SELECT ?x ?y WHERE {
			?x a ub:Student .
			?x ub:advisor ?y .
			?y ub:name "Alice" .
		} LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 3 {
		t.Fatalf("patterns = %d, want 3", len(q.Patterns))
	}
	if q.Limit != 5 {
		t.Errorf("limit = %d", q.Limit)
	}
	if got := q.Projection; len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("projection = %v", got)
	}
	// 'a' keyword expands to rdf:type
	if q.Patterns[0].P.Term.Value != rdf.RDFType {
		t.Errorf("'a' not expanded: %v", q.Patterns[0].P)
	}
	// qname expansion
	if q.Patterns[0].O.Term.Value != "http://example.org/ub#Student" {
		t.Errorf("qname not expanded: %v", q.Patterns[0].O)
	}
	// literal object
	if q.Patterns[2].O.Term != rdf.NewLiteral("Alice") {
		t.Errorf("literal object = %v", q.Patterns[2].O.Term)
	}
	// Index assignment
	for i, tp := range q.Patterns {
		if tp.Index != i {
			t.Errorf("pattern %d has Index %d", i, tp.Index)
		}
	}
}

func TestParseSelectStarDistinct(t *testing.T) {
	q := MustParse(`SELECT DISTINCT * WHERE { ?s ?p ?o }`)
	if !q.Distinct {
		t.Error("DISTINCT not parsed")
	}
	if len(q.Projection) != 0 {
		t.Errorf("projection = %v, want empty for *", q.Projection)
	}
	if q.Patterns[0].P.Var != "p" {
		t.Errorf("predicate variable = %v", q.Patterns[0].P)
	}
}

func TestParseTrailingDotOptional(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s <http://p> ?o }`)
	if len(q.Patterns) != 1 {
		t.Fatalf("patterns = %d", len(q.Patterns))
	}
}

func TestParseNumericAndTypedLiterals(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
		?s <http://p> 5 .
		?s <http://q> "7"^^<http://www.w3.org/2001/XMLSchema#integer> .
		?s <http://r> "hej"@da .
	}`)
	if q.Patterns[0].O.Term != rdf.NewInteger(5) {
		t.Errorf("numeric literal = %v", q.Patterns[0].O.Term)
	}
	if q.Patterns[1].O.Term != rdf.NewInteger(7) {
		t.Errorf("typed literal = %v", q.Patterns[1].O.Term)
	}
	if q.Patterns[2].O.Term != rdf.NewLangLiteral("hej", "da") {
		t.Errorf("lang literal = %v", q.Patterns[2].O.Term)
	}
}

func TestParseComments(t *testing.T) {
	q := MustParse(`
		# leading comment
		SELECT * WHERE {
			?s <http://p> ?o . # trailing comment
		}`)
	if len(q.Patterns) != 1 {
		t.Fatalf("patterns = %d", len(q.Patterns))
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"no select":          `WHERE { ?s ?p ?o }`,
		"empty bgp":          `SELECT * WHERE { }`,
		"unbound prefix":     `SELECT * WHERE { ?s ub:x ?o }`,
		"literal subject":    `SELECT * WHERE { "lit" <http://p> ?o }`,
		"literal predicate":  `SELECT * WHERE { ?s "lit" ?o }`,
		"missing brace":      `SELECT * WHERE { ?s <http://p> ?o`,
		"trailing garbage":   `SELECT * WHERE { ?s <http://p> ?o } garbage`,
		"bad limit":          `SELECT * WHERE { ?s <http://p> ?o } LIMIT x`,
		"empty var":          `SELECT * WHERE { ? <http://p> ?o }`,
		"prefix no colon":    `PREFIX ub <http://x/> SELECT * WHERE { ?s ?p ?o }`,
		"unterminated iri":   `SELECT * WHERE { ?s <http://p ?o }`,
		"unterminated lit":   `SELECT * WHERE { ?s <http://p> "x }`,
		"no projection":      `SELECT WHERE { ?s ?p ?o }`,
		"missing where":      `SELECT * { ?s ?p ?o }`,
		"missing separators": `SELECT * WHERE { ?s <http://p> ?o ?x <http://q> ?y }`,
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse(%q) succeeded, want error", name, src)
		}
	}
}

func TestQueryVarsAndTypeOf(t *testing.T) {
	q := MustParse(`
		PREFIX ub: <http://x/>
		SELECT * WHERE {
			?x a ub:Student .
			?x ub:advisor ?y .
			?y a ub:Professor .
			?z ub:knows ?x .
		}`)
	vars := q.Vars()
	want := []string{"x", "y", "z"}
	if len(vars) != len(want) {
		t.Fatalf("vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("vars[%d] = %s, want %s", i, vars[i], want[i])
		}
	}
	cls, ok := q.TypeOf("x")
	if !ok || cls != "http://x/Student" {
		t.Errorf("TypeOf(x) = %q, %v", cls, ok)
	}
	if _, ok := q.TypeOf("z"); ok {
		t.Error("TypeOf(z) should be unknown")
	}
	if !q.HasTypePattern() {
		t.Error("HasTypePattern = false")
	}
	q2 := MustParse(`SELECT * WHERE { ?s <http://p> ?o }`)
	if q2.HasTypePattern() {
		t.Error("HasTypePattern = true for type-free query")
	}
}

func TestJoinsClassification(t *testing.T) {
	q := MustParse(`
		SELECT * WHERE {
			?x <http://p> ?y .
			?x <http://q> ?z .
			?w <http://r> ?x .
			?a <http://s> ?y .
			?y ?x ?b .
		}`)
	tp := q.Patterns
	check := func(a, b TriplePattern, wantVar string, wantKind JoinKind) {
		t.Helper()
		js := Joins(a, b)
		found := false
		for _, j := range js {
			if j.Var == wantVar {
				found = true
				if j.Kind != wantKind {
					t.Errorf("join %s kind = %v, want %v", wantVar, j.Kind, wantKind)
				}
			}
		}
		if !found {
			t.Errorf("join on %s not found between %v and %v", wantVar, a, b)
		}
	}
	check(tp[0], tp[1], "x", JoinSS)
	check(tp[0], tp[2], "x", JoinSO)
	check(tp[2], tp[0], "x", JoinOS)
	check(tp[0], tp[3], "y", JoinOO)
	check(tp[0], tp[4], "x", JoinOther) // x is a predicate in tp[4]
	if js := Joins(tp[1], tp[3]); len(js) != 0 {
		t.Errorf("unexpected joins: %v", js)
	}
}

func TestJoinKindString(t *testing.T) {
	kinds := map[JoinKind]string{
		JoinNone: "cartesian", JoinSS: "SS", JoinSO: "SO",
		JoinOS: "OS", JoinOO: "OO", JoinOther: "other",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	q := MustParse(`
		PREFIX ub: <http://x/>
		SELECT DISTINCT ?x WHERE {
			?x a ub:Student .
			?x ub:name "Bob" .
		} LIMIT 3`)
	text := q.String()
	for _, want := range []string{"SELECT DISTINCT ?x", "LIMIT 3", "<http://x/Student>"} {
		if !strings.Contains(text, want) {
			t.Errorf("String() missing %q:\n%s", want, text)
		}
	}
	q2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparsing String() output: %v\n%s", err, text)
	}
	if len(q2.Patterns) != len(q.Patterns) || q2.Limit != q.Limit || q2.Distinct != q.Distinct {
		t.Error("round-tripped query differs")
	}
}

func TestCloneIndependence(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c }`)
	cp := q.Clone()
	cp.Patterns[0], cp.Patterns[1] = cp.Patterns[1], cp.Patterns[0]
	if q.Patterns[0].P.Term.Value != "http://p" {
		t.Error("Clone shares the pattern slice")
	}
}

func TestIsTypePattern(t *testing.T) {
	q := MustParse(`
		PREFIX ub: <http://x/>
		SELECT * WHERE {
			?x a ub:Student .
			?x a ?cls .
			?x ub:p ub:Student .
		}`)
	if !q.Patterns[0].IsTypePattern() {
		t.Error("typed pattern not recognized")
	}
	if q.Patterns[1].IsTypePattern() {
		t.Error("variable-class pattern wrongly recognized")
	}
	if q.Patterns[2].IsTypePattern() {
		t.Error("non-type predicate wrongly recognized")
	}
}

func TestPatternVarsDeduplicated(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?x <http://p> ?x }`)
	if vars := q.Patterns[0].Vars(); len(vars) != 1 || vars[0] != "x" {
		t.Errorf("Vars = %v", vars)
	}
}
