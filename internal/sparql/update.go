package sparql

import (
	"fmt"

	"rdfshapes/internal/rdf"
)

// UpdateOp is one INSERT DATA or DELETE DATA operation: a set of ground
// triples to add to or remove from the dataset.
type UpdateOp struct {
	// Insert distinguishes INSERT DATA (true) from DELETE DATA (false).
	Insert bool
	// Triples are the ground triples of the data block.
	Triples []rdf.Triple
}

// UpdateRequest is a parsed SPARQL UPDATE request: a sequence of
// operations to apply in order.
type UpdateRequest struct {
	// Prefixes are the namespace bindings in scope.
	Prefixes *rdf.PrefixMap
	// Ops are the operations in source order.
	Ops []UpdateOp
}

// ParseUpdate parses a SPARQL UPDATE request in the supported subset:
//
//	PREFIX ex: <http://ex/>
//	INSERT DATA { ex:s ex:p ex:o . ex:s ex:q "v" } ;
//	DELETE DATA { ex:old a ex:Gone }
//
// Operations are INSERT DATA and DELETE DATA only (ground triples — no
// variables, no blank nodes), separated by ';' per the SPARQL 1.1 UPDATE
// grammar; PREFIX declarations may precede any operation and stay in
// scope for the rest of the request. The keyword 'a' abbreviates
// rdf:type, and a trailing '.' inside a data block is optional.
func ParseUpdate(src string) (*UpdateRequest, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: rdf.CommonPrefixes()}
	req := &UpdateRequest{Prefixes: p.prefixes}
	for {
		if err := p.prefixDecls(); err != nil {
			return nil, err
		}
		if p.cur().kind == tokEOF && len(req.Ops) > 0 {
			break // trailing ';' after the last operation
		}
		op, err := p.updateOp()
		if err != nil {
			return nil, err
		}
		req.Ops = append(req.Ops, *op)
		if p.cur().kind == tokSemicolon {
			p.next()
			continue
		}
		break
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, fmt.Errorf("sparql: trailing input at offset %d: %q", t.pos, t.text)
	}
	if len(req.Ops) == 0 {
		return nil, fmt.Errorf("sparql: empty UPDATE request")
	}
	return req, nil
}

// updateOp parses "INSERT DATA { ... }" or "DELETE DATA { ... }".
func (p *parser) updateOp() (*UpdateOp, error) {
	t := p.next()
	if t.kind != tokKeyword || (t.text != "INSERT" && t.text != "DELETE") {
		return nil, fmt.Errorf("sparql: expected INSERT DATA or DELETE DATA at offset %d, got %q", t.pos, t.text)
	}
	op := &UpdateOp{Insert: t.text == "INSERT"}
	if d := p.next(); d.kind != tokKeyword || d.text != "DATA" {
		return nil, fmt.Errorf("sparql: expected DATA after %s at offset %d (only INSERT DATA / DELETE DATA are supported)", t.text, d.pos)
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	for p.cur().kind != tokRBrace {
		tr, err := p.groundTriple()
		if err != nil {
			return nil, err
		}
		op.Triples = append(op.Triples, tr)
		if p.cur().kind == tokDot {
			p.next()
		} else if p.cur().kind != tokRBrace {
			return nil, fmt.Errorf("sparql: expected '.' or '}' in data block at offset %d", p.cur().pos)
		}
	}
	p.next() // consume '}'
	if len(op.Triples) == 0 {
		kw := "DELETE"
		if op.Insert {
			kw = "INSERT"
		}
		return nil, fmt.Errorf("sparql: empty %s DATA block", kw)
	}
	return op, nil
}

// groundTriple parses one fully bound triple of a data block.
func (p *parser) groundTriple() (rdf.Triple, error) {
	s, err := p.groundTerm(true)
	if err != nil {
		return rdf.Triple{}, err
	}
	pr, err := p.groundTerm(true)
	if err != nil {
		return rdf.Triple{}, err
	}
	if !pr.IsIRI() {
		return rdf.Triple{}, fmt.Errorf("sparql: predicate must be an IRI, got %s", pr)
	}
	o, err := p.groundTerm(false)
	if err != nil {
		return rdf.Triple{}, err
	}
	return rdf.Triple{S: s, P: pr, O: o}, nil
}

// groundTerm parses one term of a ground triple, rejecting variables.
func (p *parser) groundTerm(subjectOrPred bool) (rdf.Term, error) {
	pos := p.cur().pos
	pt, err := p.patternTerm(subjectOrPred)
	if err != nil {
		return rdf.Term{}, err
	}
	if pt.IsVar() {
		return rdf.Term{}, fmt.Errorf("sparql: variable ?%s not allowed in a DATA block (offset %d)", pt.Var, pos)
	}
	return pt.Term, nil
}
