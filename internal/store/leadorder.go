package store

// Lead-ordered range scans: the capability a sort-merge join consumes.
//
// A merge join over a shared variable v needs every input enumerated with
// v's position as the *leading* sort component, after the pattern's
// constant positions are fixed. Because the store keeps four orderings
// (SPO/PSO/POS/OSP), most (bound-positions, lead) combinations are served
// by a prefix range of one of them — no sorting, no post-filtering:
//
//	lead=S: (? p o)→POS, (? p ?)→PSO, (? ? o)→OSP, (? ? ?)→SPO
//	lead=P: (s ? o)→OSP, (s ? ?)→SPO, (? ? ?)→PSO; (? ? o) unavailable
//	lead=O: (s p ?)→SPO, (? p ?)→POS, (? ? ?)→OSP; (s ? ?) unavailable
//
// The two unavailable shapes would need SOP/OPS orderings the store does
// not keep; LeadOrderAvailable reports them so the optimizer simply keeps
// the nested-loop plan there.

// Lead positions of a lead-ordered scan.
const (
	LeadS = 0
	LeadP = 1
	LeadO = 2
)

// LeadKey returns the component of t at the lead position.
func LeadKey(t IDTriple, lead int) ID {
	switch lead {
	case LeadS:
		return t.S
	case LeadP:
		return t.P
	default:
		return t.O
	}
}

// SortedRun is one key-sorted run of a lead-ordered enumeration: rows in
// the serving index's full key order, with an optional deletion mask
// (rows in Del are hidden from the merged view). Runs returned by one
// LeadRuns call are pairwise disjoint, so merging them by the full key
// comparison (LeadOrder) is deterministic.
type SortedRun struct {
	Rows []IDTriple
	Del  *Fragment
}

// LeadOrderAvailable reports whether matches of pat (nonzero positions
// are bound) can be enumerated with lead as the leading sort component
// using one of the four stored orderings. The lead position itself must
// be unbound.
func LeadOrderAvailable(pat IDTriple, lead int) bool {
	if LeadKey(pat, lead) != 0 {
		return false
	}
	switch lead {
	case LeadS, LeadO:
		// lead=S misses nothing; lead=O only misses (s ? o-lead), i.e.
		// subject bound, predicate free — that would need an SOP index.
		return lead == LeadS || !(pat.S != 0 && pat.P == 0)
	case LeadP:
		// (? ? o) with the predicate leading would need OPS.
		return !(pat.O != 0 && pat.S == 0)
	default:
		return false
	}
}

// leadMatch selects the serving index, row range, and full-key comparator
// for a lead-ordered scan over the four orderings. ok is false when
// LeadOrderAvailable(pat, lead) is false.
func leadMatch(spo, pso, pos, osp []IDTriple, pat IDTriple, lead int) (rows []IDTriple, cmp cmpFunc, ok bool) {
	if !LeadOrderAvailable(pat, lead) {
		return nil, nil, false
	}
	var (
		idx  []IDTriple
		key  func(IDTriple) key3
		want key3
		n    int
		less cmpFunc
	)
	switch lead {
	case LeadS:
		switch {
		case pat.P != 0 && pat.O != 0:
			idx, key, want, n, less = pos, keyPOS, key3{pat.P, pat.O, 0}, 2, cmpPOS
		case pat.P != 0:
			idx, key, want, n, less = pso, keyPSO, key3{pat.P, 0, 0}, 1, cmpPSO
		case pat.O != 0:
			idx, key, want, n, less = osp, keyOSP, key3{pat.O, 0, 0}, 1, cmpOSP
		default:
			return spo, cmpSPO, true
		}
	case LeadP:
		switch {
		case pat.S != 0 && pat.O != 0:
			idx, key, want, n, less = osp, keyOSP, key3{pat.O, pat.S, 0}, 2, cmpOSP
		case pat.S != 0:
			idx, key, want, n, less = spo, keySPO, key3{pat.S, 0, 0}, 1, cmpSPO
		default:
			return pso, cmpPSO, true
		}
	default: // LeadO
		switch {
		case pat.S != 0 && pat.P != 0:
			idx, key, want, n, less = spo, keySPO, key3{pat.S, pat.P, 0}, 2, cmpSPO
		case pat.P != 0:
			idx, key, want, n, less = pos, keyPOS, key3{pat.P, 0, 0}, 1, cmpPOS
		default:
			return osp, cmpOSP, true
		}
	}
	lo, hi := rangeOf(idx, key, want, n)
	return idx[lo:hi], less, true
}

// LeadOrder returns the strict total order in which LeadRange(pat, lead)
// enumerates rows — the full three-component key comparison of the
// serving index, with the lead component first among the unbound
// positions. ok is false when the combination is unavailable. Merging
// disjoint sorted runs with this comparator reproduces one globally
// lead-ordered stream.
func LeadOrder(pat IDTriple, lead int) (less func(a, b IDTriple) bool, ok bool) {
	_, cmp, ok := leadMatch(nil, nil, nil, nil, pat, lead)
	return cmp, ok
}

// LeadRange returns the rows matching pat sorted with lead as the leading
// unbound component, as a subslice of the serving index (shared storage —
// do not modify). ok is false when LeadOrderAvailable(pat, lead) is
// false; an available combination with no matches returns (nil, true).
func (s *Store) LeadRange(pat IDTriple, lead int) (rows []IDTriple, ok bool) {
	s.mustBeFrozen()
	rows, _, ok = leadMatch(s.spo, s.pso, s.pos, s.osp, pat, lead)
	return rows, ok
}

// LeadRuns returns the store's matches of pat as a single lead-ordered
// run — the frozen store is one sorted index, so there is nothing to
// merge. It makes *Store satisfy the engine's ordered-source capability
// directly.
func (s *Store) LeadRuns(pat IDTriple, lead int) ([]SortedRun, bool) {
	rows, ok := s.LeadRange(pat, lead)
	if !ok {
		return nil, false
	}
	if len(rows) == 0 {
		return nil, true
	}
	return []SortedRun{{Rows: rows}}, true
}

// LeadRange is the fragment counterpart of Store.LeadRange; a nil
// receiver is the empty fragment and reports every available combination
// as an empty range.
func (f *Fragment) LeadRange(pat IDTriple, lead int) (rows []IDTriple, ok bool) {
	if f == nil {
		return nil, LeadOrderAvailable(pat, lead)
	}
	rows, _, ok = leadMatch(f.spo, f.pso, f.pos, f.osp, pat, lead)
	return rows, ok
}
