package store

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"rdfshapes/internal/rdf"
)

func testGraph() rdf.Graph {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	g.Append(iri("alice"), typ, iri("Person"))
	g.Append(iri("bob"), typ, iri("Person"))
	g.Append(iri("carol"), typ, iri("Robot"))
	g.Append(iri("alice"), iri("knows"), iri("bob"))
	g.Append(iri("alice"), iri("knows"), iri("carol"))
	g.Append(iri("bob"), iri("knows"), iri("carol"))
	g.Append(iri("alice"), iri("name"), rdf.NewLiteral("Alice"))
	g.Append(iri("bob"), iri("name"), rdf.NewLiteral("Bob"))
	// duplicate on purpose
	g.Append(iri("alice"), iri("knows"), iri("bob"))
	return g
}

func TestStoreDeduplication(t *testing.T) {
	st := Load(testGraph())
	if st.Len() != 8 {
		t.Errorf("Len = %d, want 8 (duplicate removed)", st.Len())
	}
}

func TestDictIntern(t *testing.T) {
	d := NewDict()
	a := d.Intern(rdf.NewIRI("http://x/a"))
	b := d.Intern(rdf.NewIRI("http://x/b"))
	a2 := d.Intern(rdf.NewIRI("http://x/a"))
	if a != a2 {
		t.Error("re-interning returned a different ID")
	}
	if a == b {
		t.Error("distinct terms share an ID")
	}
	if a == 0 || b == 0 {
		t.Error("ID 0 must stay reserved")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if got := d.Term(a); got.Value != "http://x/a" {
		t.Errorf("Term(%d) = %v", a, got)
	}
	if _, ok := d.Lookup(rdf.NewIRI("http://x/missing")); ok {
		t.Error("Lookup found a missing term")
	}
}

func TestDictTermPanicsOnInvalidID(t *testing.T) {
	d := NewDict()
	for _, id := range []ID{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Term(%d) did not panic", id)
				}
			}()
			d.Term(id)
		}()
	}
}

func TestScanAllPatternShapes(t *testing.T) {
	st := Load(testGraph())
	id := func(s string) ID {
		v, ok := st.Dict().Lookup(rdf.NewIRI("http://x/" + s))
		if !ok {
			t.Fatalf("term %s missing", s)
		}
		return v
	}
	alice, bob, knows := id("alice"), id("bob"), id("knows")
	typ := st.TypeID()
	person := id("Person")

	tests := []struct {
		name string
		pat  IDTriple
		want int
	}{
		{"spo", IDTriple{alice, knows, bob}, 1},
		{"sp?", IDTriple{S: alice, P: knows}, 2},
		{"s?o", IDTriple{S: alice, O: bob}, 1},
		{"s??", IDTriple{S: alice}, 4},
		{"?po", IDTriple{P: typ, O: person}, 2},
		{"?p?", IDTriple{P: knows}, 3},
		{"??o", IDTriple{O: bob}, 1},
		{"???", IDTriple{}, 8},
		{"absent", IDTriple{S: bob, P: knows, O: bob}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := st.Count(tc.pat); got != tc.want {
				t.Errorf("Count(%v) = %d, want %d", tc.pat, got, tc.want)
			}
			n := 0
			st.Scan(tc.pat, func(tr IDTriple) bool {
				// every yielded triple must match the pattern
				if tc.pat.S != 0 && tr.S != tc.pat.S ||
					tc.pat.P != 0 && tr.P != tc.pat.P ||
					tc.pat.O != 0 && tr.O != tc.pat.O {
					t.Errorf("Scan yielded non-matching triple %v", tr)
				}
				n++
				return true
			})
			if n != tc.want {
				t.Errorf("Scan yielded %d, want %d", n, tc.want)
			}
		})
	}
}

func TestScanEarlyStop(t *testing.T) {
	st := Load(testGraph())
	n := 0
	st.Scan(IDTriple{}, func(IDTriple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("scan visited %d rows after early stop, want 3", n)
	}
}

func TestDistinctCounts(t *testing.T) {
	st := Load(testGraph())
	knows, _ := st.Dict().Lookup(rdf.NewIRI("http://x/knows"))
	if got := st.DistinctSubjects(knows); got != 2 {
		t.Errorf("DistinctSubjects(knows) = %d, want 2", got)
	}
	if got := st.DistinctObjects(knows); got != 2 {
		t.Errorf("DistinctObjects(knows) = %d, want 2 (bob, carol)", got)
	}
	if got := st.DistinctSubjects(Wildcard); got != 3 {
		t.Errorf("DistinctSubjects(all) = %d, want 3", got)
	}
	// objects: Person, Robot, bob, carol, "Alice", "Bob"
	if got := st.DistinctObjects(Wildcard); got != 6 {
		t.Errorf("DistinctObjects(all) = %d, want 6", got)
	}
}

func TestPredicatesAndObjectsOf(t *testing.T) {
	st := Load(testGraph())
	if got := len(st.Predicates()); got != 3 {
		t.Errorf("Predicates() has %d entries, want 3", got)
	}
	classes := st.ObjectsOf(st.TypeID())
	if len(classes) != 2 {
		t.Errorf("ObjectsOf(type) has %d entries, want 2", len(classes))
	}
}

func TestForEachSubjectGroups(t *testing.T) {
	st := Load(testGraph())
	groups := map[ID]int{}
	st.ForEachSubject(func(s ID, ts []IDTriple) bool {
		groups[s] = len(ts)
		for _, tr := range ts {
			if tr.S != s {
				t.Errorf("group for %d contains triple of subject %d", s, tr.S)
			}
		}
		return true
	})
	if len(groups) != 3 {
		t.Errorf("%d subject groups, want 3", len(groups))
	}
	total := 0
	for _, n := range groups {
		total += n
	}
	if total != st.Len() {
		t.Errorf("groups cover %d triples, want %d", total, st.Len())
	}
}

func TestForEachSubjectEarlyStop(t *testing.T) {
	st := Load(testGraph())
	n := 0
	st.ForEachSubject(func(ID, []IDTriple) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("visited %d groups after early stop, want 1", n)
	}
}

func TestFreezeDiscipline(t *testing.T) {
	st := New()
	st.Add(rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o")))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("query before Freeze did not panic")
			}
		}()
		st.Len()
	}()
	st.Freeze()
	st.Freeze() // idempotent
	if st.Len() != 1 {
		t.Errorf("Len = %d", st.Len())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Add after Freeze did not panic")
			}
		}()
		st.Add(rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o2")))
	}()
}

func TestTypeIDAbsent(t *testing.T) {
	var g rdf.Graph
	g.Append(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o"))
	st := Load(g)
	if st.TypeID() != 0 {
		t.Error("TypeID should be 0 without rdf:type triples")
	}
}

// TestScanAgainstBruteForce cross-checks index scans against a linear
// filter over randomly generated graphs for every pattern shape.
func TestScanAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var g rdf.Graph
		n := 1 + r.Intn(60)
		for i := 0; i < n; i++ {
			g.Append(
				rdf.NewIRI(fmt.Sprintf("http://x/s%d", r.Intn(8))),
				rdf.NewIRI(fmt.Sprintf("http://x/p%d", r.Intn(4))),
				rdf.NewIRI(fmt.Sprintf("http://x/o%d", r.Intn(8))),
			)
		}
		st := Load(g)
		var all []IDTriple
		st.Scan(IDTriple{}, func(tr IDTriple) bool {
			all = append(all, tr)
			return true
		})
		// try every boundness mask with components sampled from the data
		for mask := 0; mask < 8; mask++ {
			probe := all[r.Intn(len(all))]
			pat := IDTriple{}
			if mask&1 != 0 {
				pat.S = probe.S
			}
			if mask&2 != 0 {
				pat.P = probe.P
			}
			if mask&4 != 0 {
				pat.O = probe.O
			}
			want := 0
			for _, tr := range all {
				if (pat.S == 0 || tr.S == pat.S) &&
					(pat.P == 0 || tr.P == pat.P) &&
					(pat.O == 0 || tr.O == pat.O) {
					want++
				}
			}
			if st.Count(pat) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestIndexesSorted verifies the internal sort invariants survive Load.
func TestIndexesSorted(t *testing.T) {
	st := Load(testGraph())
	var prev IDTriple
	first := true
	st.Scan(IDTriple{}, func(tr IDTriple) bool {
		if !first && cmpSPO(tr, prev) {
			t.Errorf("SPO order violated: %v before %v", prev, tr)
		}
		prev, first = tr, false
		return true
	})
	if !sort.SliceIsSorted(st.pso, func(i, j int) bool { return cmpPSO(st.pso[i], st.pso[j]) }) {
		t.Error("PSO not sorted")
	}
	if !sort.SliceIsSorted(st.pos, func(i, j int) bool { return cmpPOS(st.pos[i], st.pos[j]) }) {
		t.Error("POS not sorted")
	}
	if !sort.SliceIsSorted(st.osp, func(i, j int) bool { return cmpOSP(st.osp[i], st.osp[j]) }) {
		t.Error("OSP not sorted")
	}
}

// TestConcurrentReaders verifies the store is safe for parallel readers
// after Freeze (the documented contract).
func TestConcurrentReaders(t *testing.T) {
	st := Load(testGraph())
	knows, _ := st.Dict().Lookup(rdf.NewIRI("http://x/knows"))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := st.Count(IDTriple{P: knows}); got != 3 {
					t.Errorf("Count = %d", got)
					return
				}
				st.Scan(IDTriple{P: knows}, func(IDTriple) bool { return true })
				_ = st.DistinctSubjects(knows)
				_ = st.Predicates()
			}
		}()
	}
	wg.Wait()
}
