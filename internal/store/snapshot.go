package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"rdfshapes/internal/rdf"
)

// Snapshot format magics. Version 2 appends a CRC32C (Castagnoli) of the
// payload — everything between the magic and the trailing 4 checksum
// bytes — so a torn or bit-flipped file is rejected instead of decoded as
// if it were valid data. Version 1 files (written before the durability
// subsystem) are still accepted on read.
const (
	snapshotMagicV1 = "RDFSNAP1"
	snapshotMagic   = "RDFSNAP2"
)

// maxSnapshotString bounds string lengths read from snapshots, guarding
// against corrupted or hostile inputs.
const maxSnapshotString = 64 << 20

// ErrCorrupt marks a snapshot whose integrity check failed: a trailing
// checksum mismatch, a truncated body, or structurally invalid contents
// in a checksummed (v2) file. Callers holding an older checkpoint can
// match it with errors.Is and fall back instead of serving garbage.
var ErrCorrupt = errors.New("store: snapshot corrupt")

// castagnoli is the CRC32C polynomial table shared with internal/wal.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteSnapshot serializes the frozen store — dictionary plus triples —
// in a compact binary format readable by ReadSnapshot, protected by a
// trailing CRC32C. Only the SPO ordering is written; the other indexes
// are rebuilt on load.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mustBeFrozen()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	crc := crc32.New(castagnoli)
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		crc.Write(scratch[:n])
		_, err := bw.Write(scratch[:n])
		return err
	}
	writeString := func(v string) error {
		if err := writeUvarint(uint64(len(v))); err != nil {
			return err
		}
		crc.Write([]byte(v))
		_, err := bw.WriteString(v)
		return err
	}

	// Dictionary: terms in ID order so IDs are implicit.
	if err := writeUvarint(uint64(s.dict.Len())); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	for id := ID(1); int(id) <= s.dict.Len(); id++ {
		t := s.dict.Term(id)
		crc.Write([]byte{byte(t.Kind)})
		if err := bw.WriteByte(byte(t.Kind)); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
		for _, v := range []string{t.Value, t.Datatype, t.Lang} {
			if err := writeString(v); err != nil {
				return fmt.Errorf("store: writing snapshot: %w", err)
			}
		}
	}

	// Triples from the SPO index, delta-encoding subjects since the
	// index is sorted.
	if err := writeUvarint(uint64(len(s.spo))); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	var prevS ID
	for _, t := range s.spo {
		if err := writeUvarint(uint64(t.S - prevS)); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
		prevS = t.S
		if err := writeUvarint(uint64(t.P)); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
		if err := writeUvarint(uint64(t.O)); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	return nil
}

// crcReader hashes every payload byte as it is consumed, so the decoder
// can compare its running checksum against the trailing CRC32C without
// buffering the whole snapshot.
type crcReader struct {
	br  *bufio.Reader
	crc hash.Hash32
}

func (r *crcReader) Read(p []byte) (int, error) {
	n, err := r.br.Read(p)
	if n > 0 {
		r.crc.Write(p[:n])
	}
	return n, err
}

func (r *crcReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.crc.Write([]byte{b})
	}
	return b, err
}

// ReadSnapshot reconstructs a frozen store from WriteSnapshot output.
// Both format versions are accepted; a v2 file that fails its checksum
// (or is otherwise structurally invalid) returns an error matching
// ErrCorrupt.
func ReadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: reading snapshot header: %w", err)
	}
	switch string(magic) {
	case snapshotMagicV1:
		s, err := readSnapshotBody(br, br)
		if err != nil {
			return nil, err
		}
		if _, err := br.ReadByte(); err != io.EOF {
			return nil, fmt.Errorf("store: trailing data after snapshot")
		}
		return s, nil
	case snapshotMagic:
		cr := &crcReader{br: br, crc: crc32.New(castagnoli)}
		s, err := readSnapshotBody(cr, cr)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
		want := cr.crc.Sum32()
		var sum [4]byte
		if _, err := io.ReadFull(br, sum[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated checksum: %w", ErrCorrupt, err)
		}
		if got := binary.LittleEndian.Uint32(sum[:]); got != want {
			return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrCorrupt, got, want)
		}
		if _, err := br.ReadByte(); err != io.EOF {
			return nil, fmt.Errorf("%w: trailing data after checksum", ErrCorrupt)
		}
		return s, nil
	default:
		return nil, fmt.Errorf("store: not a snapshot (bad magic %q)", magic)
	}
}

// readSnapshotBody decodes the dictionary and triple sections common to
// both format versions and returns the frozen store. br supplies byte
// reads (for uvarints) and r bulk reads; v2 passes a checksumming
// wrapper for both.
func readSnapshotBody(br io.ByteReader, r io.Reader) (*Store, error) {
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > maxSnapshotString {
			return "", fmt.Errorf("string length %d exceeds limit", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	s := New()
	nTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot dictionary: %w", err)
	}
	for i := uint64(0); i < nTerms; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("store: reading snapshot term %d: %w", i, err)
		}
		if rdf.TermKind(kind) > rdf.Blank {
			return nil, fmt.Errorf("store: snapshot term %d has invalid kind %d", i, kind)
		}
		var fields [3]string
		for f := range fields {
			if fields[f], err = readString(); err != nil {
				return nil, fmt.Errorf("store: reading snapshot term %d: %w", i, err)
			}
		}
		term := rdf.Term{
			Kind:     rdf.TermKind(kind),
			Value:    fields[0],
			Datatype: fields[1],
			Lang:     fields[2],
		}
		if got := s.dict.Intern(term); got != ID(i+1) {
			return nil, fmt.Errorf("store: snapshot dictionary has duplicate term %s", term)
		}
	}

	nTriples, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot triple count: %w", err)
	}
	limit := uint64(s.dict.Len())
	var prevS uint64
	for i := uint64(0); i < nTriples; i++ {
		var vals [3]uint64
		for f := range vals {
			if vals[f], err = binary.ReadUvarint(br); err != nil {
				return nil, fmt.Errorf("store: reading snapshot triple %d: %w", i, err)
			}
		}
		subj := prevS + vals[0]
		prevS = subj
		if subj == 0 || subj > limit || vals[1] == 0 || vals[1] > limit || vals[2] == 0 || vals[2] > limit {
			return nil, fmt.Errorf("store: snapshot triple %d references unknown term", i)
		}
		s.staged = append(s.staged, IDTriple{S: ID(subj), P: ID(vals[1]), O: ID(vals[2])})
	}
	s.Freeze()
	return s, nil
}
