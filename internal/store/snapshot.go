package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"rdfshapes/internal/rdf"
)

// snapshotMagic identifies the snapshot format and its version.
const snapshotMagic = "RDFSNAP1"

// maxSnapshotString bounds string lengths read from snapshots, guarding
// against corrupted or hostile inputs.
const maxSnapshotString = 64 << 20

// WriteSnapshot serializes the frozen store — dictionary plus triples —
// in a compact binary format readable by ReadSnapshot. Only the SPO
// ordering is written; the other indexes are rebuilt on load.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mustBeFrozen()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	writeString := func(v string) error {
		if err := writeUvarint(uint64(len(v))); err != nil {
			return err
		}
		_, err := bw.WriteString(v)
		return err
	}

	// Dictionary: terms in ID order so IDs are implicit.
	if err := writeUvarint(uint64(s.dict.Len())); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	for id := ID(1); int(id) <= s.dict.Len(); id++ {
		t := s.dict.Term(id)
		if err := bw.WriteByte(byte(t.Kind)); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
		for _, v := range []string{t.Value, t.Datatype, t.Lang} {
			if err := writeString(v); err != nil {
				return fmt.Errorf("store: writing snapshot: %w", err)
			}
		}
	}

	// Triples from the SPO index, delta-encoding subjects since the
	// index is sorted.
	if err := writeUvarint(uint64(len(s.spo))); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	var prevS ID
	for _, t := range s.spo {
		if err := writeUvarint(uint64(t.S - prevS)); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
		prevS = t.S
		if err := writeUvarint(uint64(t.P)); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
		if err := writeUvarint(uint64(t.O)); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot reconstructs a frozen store from WriteSnapshot output.
func ReadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: reading snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("store: not a snapshot (bad magic %q)", magic)
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > maxSnapshotString {
			return "", fmt.Errorf("string length %d exceeds limit", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	s := New()
	nTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot dictionary: %w", err)
	}
	for i := uint64(0); i < nTerms; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("store: reading snapshot term %d: %w", i, err)
		}
		if rdf.TermKind(kind) > rdf.Blank {
			return nil, fmt.Errorf("store: snapshot term %d has invalid kind %d", i, kind)
		}
		var fields [3]string
		for f := range fields {
			if fields[f], err = readString(); err != nil {
				return nil, fmt.Errorf("store: reading snapshot term %d: %w", i, err)
			}
		}
		term := rdf.Term{
			Kind:     rdf.TermKind(kind),
			Value:    fields[0],
			Datatype: fields[1],
			Lang:     fields[2],
		}
		if got := s.dict.Intern(term); got != ID(i+1) {
			return nil, fmt.Errorf("store: snapshot dictionary has duplicate term %s", term)
		}
	}

	nTriples, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot triple count: %w", err)
	}
	limit := uint64(s.dict.Len())
	var prevS uint64
	for i := uint64(0); i < nTriples; i++ {
		var vals [3]uint64
		for f := range vals {
			if vals[f], err = binary.ReadUvarint(br); err != nil {
				return nil, fmt.Errorf("store: reading snapshot triple %d: %w", i, err)
			}
		}
		subj := prevS + vals[0]
		prevS = subj
		if subj == 0 || subj > limit || vals[1] == 0 || vals[1] > limit || vals[2] == 0 || vals[2] > limit {
			return nil, fmt.Errorf("store: snapshot triple %d references unknown term", i)
		}
		s.staged = append(s.staged, IDTriple{S: ID(subj), P: ID(vals[1]), O: ID(vals[2])})
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("store: trailing data after snapshot")
	}
	s.Freeze()
	return s, nil
}
