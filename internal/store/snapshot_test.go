package store

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"rdfshapes/internal/rdf"
)

func TestSnapshotRoundTrip(t *testing.T) {
	st := Load(testGraph())
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != st.Len() {
		t.Fatalf("triple count %d != %d", rt.Len(), st.Len())
	}
	if rt.Dict().Len() != st.Dict().Len() {
		t.Fatalf("dictionary size %d != %d", rt.Dict().Len(), st.Dict().Len())
	}
	// every original triple must be present with the same IDs
	st.Scan(IDTriple{}, func(tr IDTriple) bool {
		if !rt.Contains(tr) {
			t.Errorf("triple %v missing after round trip", tr)
		}
		return true
	})
	// dictionary terms must map identically
	for id := ID(1); int(id) <= st.Dict().Len(); id++ {
		if st.Dict().Term(id) != rt.Dict().Term(id) {
			t.Errorf("term %d differs: %v vs %v", id, st.Dict().Term(id), rt.Dict().Term(id))
		}
	}
	if rt.TypeID() != st.TypeID() {
		t.Errorf("TypeID %d != %d", rt.TypeID(), st.TypeID())
	}
}

func TestSnapshotPreservesLiterals(t *testing.T) {
	var g rdf.Graph
	g.Append(rdf.NewIRI("http://s"), rdf.NewIRI("http://p"), rdf.NewLangLiteral("hej", "da"))
	g.Append(rdf.NewIRI("http://s"), rdf.NewIRI("http://q"), rdf.NewTypedLiteral("5", rdf.XSDInteger))
	g.Append(rdf.NewBlank("b"), rdf.NewIRI("http://p"), rdf.NewLiteral("x\ny"))
	st := Load(g)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range []rdf.Term{
		rdf.NewLangLiteral("hej", "da"),
		rdf.NewTypedLiteral("5", rdf.XSDInteger),
		rdf.NewBlank("b"),
		rdf.NewLiteral("x\ny"),
	} {
		if _, ok := rt.Dict().Lookup(term); !ok {
			t.Errorf("term %v lost in snapshot", term)
		}
	}
}

func TestSnapshotEmptyStoreRoundTrip(t *testing.T) {
	st := New()
	st.Freeze()
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != 0 {
		t.Errorf("Len = %d, want 0", rt.Len())
	}
	if rt.Dict().Len() != 0 {
		t.Errorf("Dict().Len() = %d, want 0", rt.Dict().Len())
	}
	if rt.TypeID() != 0 {
		t.Errorf("TypeID = %d, want 0", rt.TypeID())
	}
}

func TestSnapshotTypeIDZeroRoundTrip(t *testing.T) {
	// a dataset without any rdf:type triple has TypeID 0; the round trip
	// must preserve that rather than resolving 0 to a real term
	var g rdf.Graph
	g.Append(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewIRI("http://x/o"))
	st := Load(g)
	if st.TypeID() != 0 {
		t.Fatalf("precondition: TypeID = %d, want 0", st.TypeID())
	}
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rt.TypeID() != 0 {
		t.Errorf("TypeID = %d after round trip, want 0", rt.TypeID())
	}
	if rt.Len() != 1 {
		t.Errorf("Len = %d, want 1", rt.Len())
	}
}

func TestSnapshotErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad magic":    "NOTASNAP",
		"truncated v1": "RDFSNAP1",
		"truncated v2": "RDFSNAP2",
		"short header": "RDF",
	}
	for name, input := range cases {
		if _, err := ReadSnapshot(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ReadSnapshot succeeded", name)
		}
	}
}

// TestSnapshotV1StillAccepted pins backward compatibility: a handcrafted
// v1 file (no trailing checksum) must still load.
func TestSnapshotV1StillAccepted(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("RDFSNAP1")
	buf.WriteByte(2)             // 2 terms
	buf.WriteByte(byte(rdf.IRI)) // term 1: <abc>
	buf.WriteByte(3)
	buf.WriteString("abc")
	buf.WriteByte(0)             // datatype ""
	buf.WriteByte(0)             // lang ""
	buf.WriteByte(byte(rdf.IRI)) // term 2: <def>
	buf.WriteByte(3)
	buf.WriteString("def")
	buf.WriteByte(0)
	buf.WriteByte(0)
	buf.WriteByte(1) // 1 triple
	buf.WriteByte(1) // S delta = 1
	buf.WriteByte(2) // P
	buf.WriteByte(2) // O
	st, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d, want 1", st.Len())
	}
	if !st.Contains(IDTriple{S: 1, P: 2, O: 2}) {
		t.Error("triple missing from decoded v1 snapshot")
	}
}

// TestSnapshotChecksumRejectsBitFlips flips every byte of a valid v2
// snapshot in turn; each mutation must be rejected (CRC32C detects all
// single-byte errors) and CRC failures must match ErrCorrupt.
func TestSnapshotChecksumRejectsBitFlips(t *testing.T) {
	st := Load(testGraph())
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	sawCorrupt := false
	for i := range valid {
		mutated := append([]byte(nil), valid...)
		mutated[i] ^= 0x40
		_, err := ReadSnapshot(bytes.NewReader(mutated))
		if err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
		if errors.Is(err, ErrCorrupt) {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Error("no bit flip produced ErrCorrupt")
	}
	// flips past the magic are always integrity failures
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)-1] ^= 0x01 // checksum byte
	if _, err := ReadSnapshot(bytes.NewReader(mutated)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("checksum flip: err = %v, want ErrCorrupt", err)
	}
}

// TestSnapshotTruncationsRejected truncates a valid v2 snapshot at every
// byte boundary; every proper prefix must fail cleanly (no panic).
func TestSnapshotTruncationsRejected(t *testing.T) {
	st := Load(testGraph())
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for i := 0; i < len(valid); i++ {
		if _, err := ReadSnapshot(bytes.NewReader(valid[:i])); err == nil {
			t.Fatalf("truncation at byte %d/%d accepted", i, len(valid))
		}
	}
	if _, err := ReadSnapshot(bytes.NewReader(valid)); err != nil {
		t.Fatalf("full snapshot rejected: %v", err)
	}
}

func TestSnapshotTrailingDataRejected(t *testing.T) {
	st := Load(testGraph())
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("extra")
	if _, err := ReadSnapshot(&buf); err == nil {
		t.Error("trailing data accepted")
	}
}

func TestSnapshotCorruptTripleIDsRejected(t *testing.T) {
	// handcraft a snapshot with a triple referencing term 99
	var buf bytes.Buffer
	buf.WriteString("RDFSNAP1")
	buf.WriteByte(1)             // 1 term
	buf.WriteByte(byte(rdf.IRI)) // kind
	buf.WriteByte(3)             // len("abc")
	buf.WriteString("abc")       //
	buf.WriteByte(0)             // datatype ""
	buf.WriteByte(0)             // lang ""
	buf.WriteByte(1)             // 1 triple
	buf.WriteByte(99)            // S delta = 99 (out of range)
	buf.WriteByte(1)             // P
	buf.WriteByte(1)             // O
	if _, err := ReadSnapshot(&buf); err == nil {
		t.Error("out-of-range term ID accepted")
	}
}

func TestSnapshotRequiresFrozenStore(t *testing.T) {
	st := New()
	st.Add(rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o")))
	defer func() {
		if recover() == nil {
			t.Error("WriteSnapshot on unfrozen store did not panic")
		}
	}()
	var buf bytes.Buffer
	_ = st.WriteSnapshot(&buf)
}
