package store

// Fragment is a small immutable sorted index over a set of ID triples. The
// live layer uses two fragments (added, deleted) as the delta overlay on
// top of a frozen base store: like the base it keeps all four orderings,
// so every triple-pattern shape is still a prefix range scan.
//
// All methods are safe on a nil receiver, which represents the empty
// fragment; NewFragment returns nil for an empty input so empty overlays
// cost nothing to check.
type Fragment struct {
	spo []IDTriple
	pso []IDTriple
	pos []IDTriple
	osp []IDTriple
}

// NewFragment builds a fragment from ts (copied, deduplicated). The IDs
// must come from the same dictionary as any store the fragment overlays.
func NewFragment(ts []IDTriple) *Fragment {
	if len(ts) == 0 {
		return nil
	}
	spo := append([]IDTriple(nil), ts...)
	sortTriples(spo, cmpSPO)
	spo = dedupe(spo)
	f := &Fragment{spo: spo}
	secondary := []struct {
		dst  *[]IDTriple
		less cmpFunc
	}{
		{&f.pso, cmpPSO},
		{&f.pos, cmpPOS},
		{&f.osp, cmpOSP},
	}
	for _, idx := range secondary {
		*idx.dst = append([]IDTriple(nil), spo...)
		sortTriples(*idx.dst, idx.less)
	}
	return f
}

// Len returns the number of distinct triples in the fragment.
func (f *Fragment) Len() int {
	if f == nil {
		return 0
	}
	return len(f.spo)
}

// Scan calls fn for every triple matching pat (Wildcard matches anything),
// in the serving index's sort order. fn returning false stops the scan.
func (f *Fragment) Scan(pat IDTriple, fn func(IDTriple) bool) {
	if f == nil {
		return
	}
	idx, lo, hi := matchIn(f.spo, f.pso, f.pos, f.osp, pat)
	for _, t := range idx[lo:hi] {
		if !fn(t) {
			return
		}
	}
}

// ScanChunks splits the rows matching pat into at most n contiguous
// chunks; running the closures in order is equivalent to one Scan. Nil
// receivers and empty matches return nil.
func (f *Fragment) ScanChunks(pat IDTriple, n int) []func(fn func(IDTriple) bool) {
	if f == nil {
		return nil
	}
	idx, lo, hi := matchIn(f.spo, f.pso, f.pos, f.osp, pat)
	return chunkRange(idx, lo, hi, n)
}

// Range returns the rows matching pat as a subslice of the serving
// index, sorted by KeyOrder(pat) and shared with the fragment. Nil
// receivers return nil.
func (f *Fragment) Range(pat IDTriple) []IDTriple {
	if f == nil {
		return nil
	}
	idx, lo, hi := matchIn(f.spo, f.pso, f.pos, f.osp, pat)
	return idx[lo:hi]
}

// Count returns the number of triples matching pat in O(log n).
func (f *Fragment) Count(pat IDTriple) int {
	if f == nil {
		return 0
	}
	_, lo, hi := matchIn(f.spo, f.pso, f.pos, f.osp, pat)
	return hi - lo
}

// Contains reports whether the fully bound triple is in the fragment.
func (f *Fragment) Contains(t IDTriple) bool {
	return f.Count(t) > 0
}

// Triples returns the fragment's triples in SPO order. The slice is shared
// with the fragment and must not be modified.
func (f *Fragment) Triples() []IDTriple {
	if f == nil {
		return nil
	}
	return f.spo
}
