package store

import (
	"errors"
	"math/rand"
	"testing"

	"rdfshapes/internal/rdf"
)

func TestFragmentNilIsEmpty(t *testing.T) {
	var f *Fragment
	if f.Len() != 0 {
		t.Errorf("nil Len = %d", f.Len())
	}
	if f.Count(IDTriple{}) != 0 {
		t.Errorf("nil Count = %d", f.Count(IDTriple{}))
	}
	if f.Contains(IDTriple{S: 1, P: 2, O: 3}) {
		t.Error("nil Contains = true")
	}
	if f.Triples() != nil {
		t.Error("nil Triples != nil")
	}
	f.Scan(IDTriple{}, func(IDTriple) bool {
		t.Error("nil Scan visited a triple")
		return true
	})
	if NewFragment(nil) != nil {
		t.Error("NewFragment(empty) != nil")
	}
}

func TestFragmentDedupesAndSorts(t *testing.T) {
	ts := []IDTriple{
		{S: 2, P: 1, O: 1},
		{S: 1, P: 1, O: 2},
		{S: 1, P: 1, O: 1},
		{S: 1, P: 1, O: 2}, // duplicate
	}
	f := NewFragment(ts)
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
	got := f.Triples()
	for i := 1; i < len(got); i++ {
		if !cmpSPO(got[i-1], got[i]) {
			t.Errorf("Triples not in SPO order at %d: %v, %v", i, got[i-1], got[i])
		}
	}
	// the input slice must not be disturbed
	if ts[0] != (IDTriple{S: 2, P: 1, O: 1}) {
		t.Error("NewFragment mutated its input")
	}
}

func TestFragmentScanMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var ts []IDTriple
	for i := 0; i < 300; i++ {
		ts = append(ts, IDTriple{
			S: ID(rng.Intn(6) + 1),
			P: ID(rng.Intn(4) + 1),
			O: ID(rng.Intn(8) + 1),
		})
	}
	f := NewFragment(ts)
	dedup := map[IDTriple]bool{}
	for _, tr := range ts {
		dedup[tr] = true
	}
	// all 8 pattern shapes over a few bindings each
	for s := ID(0); s <= 2; s++ {
		for p := ID(0); p <= 2; p++ {
			for o := ID(0); o <= 2; o++ {
				pat := IDTriple{S: s, P: p, O: o}
				want := 0
				for tr := range dedup {
					if (s == Wildcard || tr.S == s) &&
						(p == Wildcard || tr.P == p) &&
						(o == Wildcard || tr.O == o) {
						want++
					}
				}
				got := 0
				f.Scan(pat, func(tr IDTriple) bool {
					got++
					return true
				})
				if got != want {
					t.Errorf("Scan(%v) visited %d, want %d", pat, got, want)
				}
				if c := f.Count(pat); c != want {
					t.Errorf("Count(%v) = %d, want %d", pat, c, want)
				}
			}
		}
	}
}

func TestFragmentScanEarlyStop(t *testing.T) {
	f := NewFragment([]IDTriple{{S: 1, P: 1, O: 1}, {S: 1, P: 1, O: 2}, {S: 1, P: 1, O: 3}})
	n := 0
	f.Scan(IDTriple{}, func(IDTriple) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early-stopped scan visited %d, want 2", n)
	}
}

func TestTryAddAfterFreeze(t *testing.T) {
	st := New()
	tr := rdf.NewTriple(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewIRI("http://x/o"))
	if err := st.TryAdd(tr); err != nil {
		t.Fatalf("TryAdd before freeze: %v", err)
	}
	st.Freeze()
	if err := st.TryAdd(tr); !errors.Is(err, ErrFrozen) {
		t.Errorf("TryAdd after freeze: err = %v, want ErrFrozen", err)
	}
	if err := st.TryAddID(IDTriple{S: 1, P: 2, O: 3}); !errors.Is(err, ErrFrozen) {
		t.Errorf("TryAddID after freeze: err = %v, want ErrFrozen", err)
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d after rejected adds, want 1", st.Len())
	}
}

func TestNewWithDictShares(t *testing.T) {
	base := Load(testGraph())
	d := base.Dict()
	st := NewWithDict(d)
	if st.Dict() != d {
		t.Fatal("NewWithDict did not adopt the dictionary")
	}
	st.Add(rdf.NewTriple(rdf.NewIRI("http://x/alice"), rdf.NewIRI("http://x/knows"), rdf.NewIRI("http://x/dan")))
	st.Freeze()
	// alice and knows were already interned; only dan is new
	if _, ok := d.Lookup(rdf.NewIRI("http://x/dan")); !ok {
		t.Error("new term not interned in the shared dictionary")
	}
	if st.TypeID() != base.TypeID() {
		t.Errorf("TypeID %d != %d under a shared dictionary", st.TypeID(), base.TypeID())
	}
}
