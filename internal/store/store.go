package store

import (
	"errors"
	"sort"
	"sync"

	"rdfshapes/internal/rdf"
)

// ErrFrozen is returned by TryAdd/TryAddID when the store has already been
// frozen and can no longer accept triples.
var ErrFrozen = errors.New("store: Add after Freeze")

// IDTriple is a dictionary-encoded triple.
type IDTriple struct {
	S, P, O ID
}

// Store is an immutable-after-Freeze indexed triple store. Build one with
// New, Add/AddGraph triples, then call Freeze before querying. Load is a
// convenience wrapper doing all three.
type Store struct {
	dict   *Dict
	staged []IDTriple

	frozen bool
	spo    []IDTriple // sorted (S,P,O)
	pso    []IDTriple // sorted (P,S,O)
	pos    []IDTriple // sorted (P,O,S)
	osp    []IDTriple // sorted (O,S,P)

	typeID ID // ID of rdf:type, 0 if absent from the data
}

// New returns an empty store ready for Add calls.
func New() *Store {
	return &Store{dict: NewDict()}
}

// NewWithDict returns an empty store that interns into an existing
// dictionary instead of a fresh one. The live layer uses it to rebuild a
// compacted base without re-interning: IDs are append-only, so triples
// encoded against d stay valid in the new store.
func NewWithDict(d *Dict) *Store {
	return &Store{dict: d}
}

// Load builds a frozen store from a graph in one call.
func Load(g rdf.Graph) *Store {
	s := New()
	s.AddGraph(g)
	s.Freeze()
	return s
}

// Dict exposes the term dictionary.
func (s *Store) Dict() *Dict { return s.dict }

// Add stages one triple. It panics if the store is already frozen, which
// indicates a programming error in bulk-load code: the store is immutable
// after Freeze. Callers that can legitimately race a freeze (the live
// layer's compactor) use TryAdd instead.
func (s *Store) Add(t rdf.Triple) {
	if err := s.TryAdd(t); err != nil {
		panic(err.Error())
	}
}

// TryAdd stages one triple, returning ErrFrozen instead of panicking if
// the store is already frozen.
func (s *Store) TryAdd(t rdf.Triple) error {
	if s.frozen {
		return ErrFrozen
	}
	s.staged = append(s.staged, IDTriple{
		S: s.dict.Intern(t.S),
		P: s.dict.Intern(t.P),
		O: s.dict.Intern(t.O),
	})
	return nil
}

// TryAddID stages one already-encoded triple. The IDs must come from this
// store's dictionary (see NewWithDict). Returns ErrFrozen after Freeze.
func (s *Store) TryAddID(t IDTriple) error {
	if s.frozen {
		return ErrFrozen
	}
	s.staged = append(s.staged, t)
	return nil
}

// AddGraph stages every triple of g.
func (s *Store) AddGraph(g rdf.Graph) {
	for _, t := range g {
		s.Add(t)
	}
}

// Freeze deduplicates staged triples and builds the four sorted indexes,
// sorting the three secondary orderings in parallel. Calling Freeze twice
// is a no-op.
func (s *Store) Freeze() {
	if s.frozen {
		return
	}
	s.frozen = true
	ts := s.staged
	s.staged = nil
	sortTriples(ts, cmpSPO)
	ts = dedupe(ts)
	s.spo = ts

	secondary := []struct {
		dst  *[]IDTriple
		less cmpFunc
	}{
		{&s.pso, cmpPSO},
		{&s.pos, cmpPOS},
		{&s.osp, cmpOSP},
	}
	var wg sync.WaitGroup
	for _, idx := range secondary {
		*idx.dst = append([]IDTriple(nil), ts...)
		wg.Add(1)
		go func(dst []IDTriple, less cmpFunc) {
			defer wg.Done()
			sortTriples(dst, less)
		}(*idx.dst, idx.less)
	}
	wg.Wait()

	if id, ok := s.dict.Lookup(rdf.NewIRI(rdf.RDFType)); ok {
		s.typeID = id
	}
}

// Len returns the number of distinct triples. Valid only after Freeze.
func (s *Store) Len() int {
	s.mustBeFrozen()
	return len(s.spo)
}

// TypeID returns the dictionary ID of rdf:type, or 0 if the data contains
// no rdf:type triples.
func (s *Store) TypeID() ID {
	s.mustBeFrozen()
	return s.typeID
}

func (s *Store) mustBeFrozen() {
	if !s.frozen {
		panic("store: query before Freeze")
	}
}

func dedupe(ts []IDTriple) []IDTriple {
	if len(ts) == 0 {
		return ts
	}
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

type cmpFunc func(a, b IDTriple) bool

func cmpSPO(a, b IDTriple) bool {
	if a.S != b.S {
		return a.S < b.S
	}
	if a.P != b.P {
		return a.P < b.P
	}
	return a.O < b.O
}

func cmpPSO(a, b IDTriple) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	if a.S != b.S {
		return a.S < b.S
	}
	return a.O < b.O
}

func cmpPOS(a, b IDTriple) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	if a.O != b.O {
		return a.O < b.O
	}
	return a.S < b.S
}

func cmpOSP(a, b IDTriple) bool {
	if a.O != b.O {
		return a.O < b.O
	}
	if a.S != b.S {
		return a.S < b.S
	}
	return a.P < b.P
}

func sortTriples(ts []IDTriple, less cmpFunc) {
	sort.Slice(ts, func(i, j int) bool { return less(ts[i], ts[j]) })
}
