package store

import (
	"bytes"
	"testing"

	"rdfshapes/internal/rdf"
)

// fuzzSeedSnapshots returns valid snapshot encodings used to seed the
// fuzzer: an empty store, a small mixed-term store, and a handcrafted v1
// file, so mutations explore both format versions from byte one.
func fuzzSeedSnapshots(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte

	empty := New()
	empty.Freeze()
	var b1 bytes.Buffer
	if err := empty.WriteSnapshot(&b1); err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, b1.Bytes())

	var g rdf.Graph
	g.Append(rdf.NewIRI("http://x/s"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI("http://x/C"))
	g.Append(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewLangLiteral("hej", "da"))
	g.Append(rdf.NewBlank("b"), rdf.NewIRI("http://x/p"), rdf.NewTypedLiteral("5", rdf.XSDInteger))
	var b2 bytes.Buffer
	if err := Load(g).WriteSnapshot(&b2); err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, b2.Bytes())

	var v1 bytes.Buffer
	v1.WriteString("RDFSNAP1")
	v1.WriteByte(1)
	v1.WriteByte(byte(rdf.IRI))
	v1.WriteByte(1)
	v1.WriteString("s")
	v1.WriteByte(0)
	v1.WriteByte(0)
	v1.WriteByte(1)
	v1.WriteByte(1)
	v1.WriteByte(1)
	v1.WriteByte(1)
	seeds = append(seeds, v1.Bytes())
	return seeds
}

// FuzzReadSnapshot asserts that arbitrary bytes never panic the decoder
// (the maxSnapshotString guard also bounds allocations), and that any
// input it accepts round-trips losslessly through WriteSnapshot.
func FuzzReadSnapshot(f *testing.F) {
	for _, seed := range fuzzSeedSnapshots(f) {
		f.Add(seed)
	}
	f.Add([]byte("RDFSNAP2"))
	f.Add([]byte("RDFSNAP1\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := st.WriteSnapshot(&buf); err != nil {
			t.Fatalf("re-encoding accepted snapshot: %v", err)
		}
		rt, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("re-decoding re-encoded snapshot: %v", err)
		}
		if rt.Len() != st.Len() || rt.Dict().Len() != st.Dict().Len() {
			t.Fatalf("round trip changed sizes: %d/%d triples, %d/%d terms",
				st.Len(), rt.Len(), st.Dict().Len(), rt.Dict().Len())
		}
	})
}
