package store

import "sort"

// pattern describes which index serves a triple pattern and how many
// leading components of that index's sort order are bound.
//
// Every combination of bound positions is prefix-resolvable by one of the
// four indexes, so Scan never post-filters and Count is two binary
// searches:
//
//	(s p o) → SPO, (s p ?) → SPO, (s ? o) → OSP, (s ? ?) → SPO,
//	(? p o) → POS, (? p ?) → PSO, (? ? o) → OSP, (? ? ?) → SPO.

// Scan calls fn for every triple matching the pattern, where Wildcard (0)
// in a position matches anything. fn returning false stops the scan early.
func (s *Store) Scan(pat IDTriple, fn func(IDTriple) bool) {
	s.mustBeFrozen()
	idx, lo, hi := s.match(pat)
	for _, t := range idx[lo:hi] {
		if !fn(t) {
			return
		}
	}
}

// ScanChunks splits the rows matching pat into at most n contiguous
// chunks of near-equal size and returns one scan closure per chunk.
// Running the closures in slice order enumerates exactly the triples
// Scan(pat) would, in the same order — the contract morsel-parallel
// execution relies on for deterministic merges. An empty match returns
// nil.
func (s *Store) ScanChunks(pat IDTriple, n int) []func(fn func(IDTriple) bool) {
	s.mustBeFrozen()
	idx, lo, hi := s.match(pat)
	return chunkRange(idx, lo, hi, n)
}

// chunkRange splits idx[lo:hi] into at most n contiguous scan closures.
func chunkRange(idx []IDTriple, lo, hi, n int) []func(fn func(IDTriple) bool) {
	total := hi - lo
	if total == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	chunks := make([]func(fn func(IDTriple) bool), n)
	for i := 0; i < n; i++ {
		rows := idx[lo+total*i/n : lo+total*(i+1)/n]
		chunks[i] = func(fn func(IDTriple) bool) {
			for _, t := range rows {
				if !fn(t) {
					return
				}
			}
		}
	}
	return chunks
}

// Range returns the rows matching pat as a subslice of the serving
// index: sorted by that index's key order (KeyOrder(pat)) and shared
// with the store, so callers must not modify it. The shard coordinator
// merges per-shard ranges into one globally key-ordered stream.
func (s *Store) Range(pat IDTriple) []IDTriple {
	s.mustBeFrozen()
	idx, lo, hi := s.match(pat)
	return idx[lo:hi]
}

// Count returns the number of triples matching the pattern in O(log n).
func (s *Store) Count(pat IDTriple) int {
	s.mustBeFrozen()
	_, lo, hi := s.match(pat)
	return hi - lo
}

// Contains reports whether the fully bound triple is in the store.
func (s *Store) Contains(t IDTriple) bool {
	return s.Count(t) > 0
}

// match selects the serving index and the half-open row range for pat.
func (s *Store) match(pat IDTriple) (idx []IDTriple, lo, hi int) {
	return matchIn(s.spo, s.pso, s.pos, s.osp, pat)
}

// matchIn selects which of the four sorted orderings serves pat and the
// half-open row range within it. Shared by Store and Fragment.
func matchIn(spo, pso, pos, osp []IDTriple, pat IDTriple) (idx []IDTriple, lo, hi int) {
	switch {
	case pat.S != 0 && pat.P != 0 && pat.O != 0:
		lo, hi = rangeOf(spo, keySPO, key3{pat.S, pat.P, pat.O}, 3)
		return spo, lo, hi
	case pat.S != 0 && pat.P != 0:
		lo, hi = rangeOf(spo, keySPO, key3{pat.S, pat.P, 0}, 2)
		return spo, lo, hi
	case pat.S != 0 && pat.O != 0:
		lo, hi = rangeOf(osp, keyOSP, key3{pat.O, pat.S, 0}, 2)
		return osp, lo, hi
	case pat.S != 0:
		lo, hi = rangeOf(spo, keySPO, key3{pat.S, 0, 0}, 1)
		return spo, lo, hi
	case pat.P != 0 && pat.O != 0:
		lo, hi = rangeOf(pos, keyPOS, key3{pat.P, pat.O, 0}, 2)
		return pos, lo, hi
	case pat.P != 0:
		lo, hi = rangeOf(pso, keyPSO, key3{pat.P, 0, 0}, 1)
		return pso, lo, hi
	case pat.O != 0:
		lo, hi = rangeOf(osp, keyOSP, key3{pat.O, 0, 0}, 1)
		return osp, lo, hi
	default:
		return spo, 0, len(spo)
	}
}

// KeyOrder returns the strict total order in which Scan(pat) and
// Range(pat) enumerate matching triples: the full three-component key
// comparison of the index that serves pat (the table above). Because a
// key is a permutation of the whole triple, distinct triples never
// compare equal — which is what makes cross-shard merges deterministic.
func KeyOrder(pat IDTriple) func(a, b IDTriple) bool {
	switch {
	case pat.S != 0 && pat.P != 0 && pat.O != 0:
		return cmpSPO
	case pat.S != 0 && pat.P != 0:
		return cmpSPO
	case pat.S != 0 && pat.O != 0:
		return cmpOSP
	case pat.S != 0:
		return cmpSPO
	case pat.P != 0 && pat.O != 0:
		return cmpPOS
	case pat.P != 0:
		return cmpPSO
	case pat.O != 0:
		return cmpOSP
	default:
		return cmpSPO
	}
}

type key3 [3]ID

func keySPO(t IDTriple) key3 { return key3{t.S, t.P, t.O} }
func keyPSO(t IDTriple) key3 { return key3{t.P, t.S, t.O} }
func keyPOS(t IDTriple) key3 { return key3{t.P, t.O, t.S} }
func keyOSP(t IDTriple) key3 { return key3{t.O, t.S, t.P} }

// rangeOf returns the half-open range of rows whose first n key components
// equal the first n components of want.
func rangeOf(idx []IDTriple, key func(IDTriple) key3, want key3, n int) (lo, hi int) {
	lo = sort.Search(len(idx), func(i int) bool {
		return !lessPrefix(key(idx[i]), want, n)
	})
	hi = sort.Search(len(idx), func(i int) bool {
		return lessPrefix(want, key(idx[i]), n)
	})
	return lo, hi
}

// lessPrefix compares the first n components of a and b.
func lessPrefix(a, b key3, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// DistinctSubjects returns the number of distinct subjects among triples
// with predicate p (Wildcard means "over the whole graph").
func (s *Store) DistinctSubjects(p ID) int {
	s.mustBeFrozen()
	if p == Wildcard {
		return countRuns(s.spo, func(t IDTriple) ID { return t.S })
	}
	_, lo, hi := s.match(IDTriple{P: p})
	return countRuns(s.pso[lo:hi], func(t IDTriple) ID { return t.S })
}

// DistinctObjects returns the number of distinct objects among triples
// with predicate p (Wildcard means "over the whole graph").
func (s *Store) DistinctObjects(p ID) int {
	s.mustBeFrozen()
	if p == Wildcard {
		return countRuns(s.osp, func(t IDTriple) ID { return t.O })
	}
	lo, hi := rangeOf(s.pos, keyPOS, key3{p, 0, 0}, 1)
	return countRuns(s.pos[lo:hi], func(t IDTriple) ID { return t.O })
}

func countRuns(ts []IDTriple, component func(IDTriple) ID) int {
	n := 0
	var prev ID
	for i, t := range ts {
		c := component(t)
		if i == 0 || c != prev {
			n++
			prev = c
		}
	}
	return n
}

// ForEachSubject calls fn once per distinct subject with the subject's
// triples sorted by (P,O). The slice is only valid during the call.
// It powers characteristic-set extraction and per-instance min/max counts.
func (s *Store) ForEachSubject(fn func(subject ID, triples []IDTriple) bool) {
	s.mustBeFrozen()
	start := 0
	for i := 1; i <= len(s.spo); i++ {
		if i == len(s.spo) || s.spo[i].S != s.spo[start].S {
			if !fn(s.spo[start].S, s.spo[start:i]) {
				return
			}
			start = i
		}
	}
}

// Predicates returns the distinct predicate IDs in the graph in ID-sorted
// run order of the PSO index.
func (s *Store) Predicates() []ID {
	s.mustBeFrozen()
	var out []ID
	var prev ID
	for i, t := range s.pso {
		if i == 0 || t.P != prev {
			out = append(out, t.P)
			prev = t.P
		}
	}
	return out
}

// ObjectsOf returns the distinct objects of triples with predicate p, e.g.
// the class IRIs when p is rdf:type.
func (s *Store) ObjectsOf(p ID) []ID {
	s.mustBeFrozen()
	lo, hi := rangeOf(s.pos, keyPOS, key3{p, 0, 0}, 1)
	var out []ID
	var prev ID
	for i, t := range s.pos[lo:hi] {
		if i == 0 || t.O != prev {
			out = append(out, t.O)
			prev = t.O
		}
	}
	return out
}
