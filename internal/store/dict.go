// Package store implements an in-memory, dictionary-encoded RDF triple
// store with sorted SPO, PSO, POS, and OSP indexes. It plays the role that
// Jena TDB plays in the paper: the storage and access-path substrate over
// which query plans are executed.
//
// Terms are interned into dense uint32 IDs; triples are stored as ID
// triples in four sort orders so that every triple-pattern shape has an
// index-supported range scan.
package store

import (
	"fmt"
	"sync"

	"rdfshapes/internal/rdf"
)

// ID is a dictionary-encoded term identifier. 0 is reserved and never
// identifies a term; pattern positions use 0 as the wildcard.
type ID uint32

// Wildcard is the ID value that matches any term in Scan/Count patterns.
const Wildcard ID = 0

// Dict interns RDF terms into dense IDs starting at 1. It is safe for
// concurrent use; IDs are append-only, so an ID handed out once stays
// valid forever even while writers intern new terms.
type Dict struct {
	mu    sync.RWMutex
	ids   map[rdf.Term]ID
	terms []rdf.Term // terms[0] is a placeholder for the reserved ID 0
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{
		ids:   make(map[rdf.Term]ID),
		terms: make([]rdf.Term, 1),
	}
}

// Intern returns the ID for t, assigning a fresh one on first sight.
func (d *Dict) Intern(t rdf.Term) ID {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[t]; ok {
		return id
	}
	id = ID(len(d.terms))
	d.ids[t] = id
	d.terms = append(d.terms, t)
	return id
}

// Lookup returns the ID for t, or (0, false) if t was never interned.
func (d *Dict) Lookup(t rdf.Term) (ID, bool) {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	return id, ok
}

// Term returns the term for a valid ID. It panics on the reserved ID 0 or
// an out-of-range ID, which always indicates a programming error.
func (d *Dict) Term(id ID) rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == 0 || int(id) >= len(d.terms) {
		panic(fmt.Sprintf("store: invalid term ID %d (dictionary size %d)", id, len(d.terms)-1))
	}
	return d.terms[id]
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms) - 1
}
