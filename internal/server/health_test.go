package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rdfshapes"
)

func newDurableServer(t *testing.T) (*httptest.Server, *Handler, *rdfshapes.DB) {
	t.Helper()
	db, err := rdfshapes.LoadNTriples(strings.NewReader(testNT),
		rdfshapes.WithDurability(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	h := New(db)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, h, db
}

func TestHealthzAlwaysOK(t *testing.T) {
	srv := newServer(t)
	var out struct {
		Status  string `json:"status"`
		Triples int    `json:"triples"`
	}
	resp := getJSON(t, srv.URL+"/healthz", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Status != "ok" || out.Triples != 6 {
		t.Errorf("healthz = %+v", out)
	}
}

func TestReadyzFollowsSetReady(t *testing.T) {
	srv, h, _ := newDurableServer(t)
	var out struct {
		Ready bool `json:"ready"`
	}
	resp := getJSON(t, srv.URL+"/readyz", &out)
	if resp.StatusCode != http.StatusOK || !out.Ready {
		t.Fatalf("fresh handler: status = %d ready = %v, want 200 true", resp.StatusCode, out.Ready)
	}

	h.SetReady(false)
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining: status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"ready":false`) {
		t.Errorf("draining body = %q", body)
	}
	// healthz must stay green while draining: the process is alive.
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: status = %d, want 200", hr.StatusCode)
	}

	h.SetReady(true)
	resp = getJSON(t, srv.URL+"/readyz", &out)
	if resp.StatusCode != http.StatusOK || !out.Ready {
		t.Errorf("restored: status = %d ready = %v, want 200 true", resp.StatusCode, out.Ready)
	}
}

func TestReadyzMethodNotAllowed(t *testing.T) {
	srv, _, _ := newDurableServer(t)
	resp, err := http.Post(srv.URL+"/readyz", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
		t.Errorf("Allow = %q, want GET", allow)
	}
}

func TestAdminCheckpoint(t *testing.T) {
	srv, _, db := newDurableServer(t)
	resp, err := http.Post(srv.URL+"/admin/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d body = %q", resp.StatusCode, body)
	}
	var out checkpointResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Generation != 2 {
		t.Errorf("generation = %d, want 2 (seeded at 1, first checkpoint rotates)", out.Generation)
	}
	if out.Triples != 6 {
		t.Errorf("triples = %d, want 6", out.Triples)
	}
	if out.DurationSeconds < 0 {
		t.Errorf("durationSeconds = %v", out.DurationSeconds)
	}
	if s, ok := db.DurabilityStats(); !ok || s.Generation != 2 || s.Checkpoints != 1 {
		t.Errorf("durability stats after checkpoint = %+v ok=%v", s, ok)
	}
}

func TestAdminCheckpointNotDurable(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Post(srv.URL+"/admin/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d body = %q, want 409", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "not durable") {
		t.Errorf("body = %q, want mention of not durable", body)
	}
}

func TestAdminCheckpointMethodNotAllowed(t *testing.T) {
	srv, _, _ := newDurableServer(t)
	resp, err := http.Get(srv.URL + "/admin/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q, want POST", allow)
	}
}

func TestWALGaugesExposedWhenDurable(t *testing.T) {
	srv, _, _ := newDurableServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		"rdfshapes_wal_size_bytes",
		"rdfshapes_wal_generation 1",
		"rdfshapes_wal_failed 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestWALGaugesAbsentWhenNotDurable(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "rdfshapes_wal_") {
		t.Errorf("metrics expose WAL gauges on a non-durable DB")
	}
}
