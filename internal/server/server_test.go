package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"rdfshapes"
)

const testNT = `
<http://ex/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/alice> <http://ex/name> "Alice"@en .
<http://ex/alice> <http://ex/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/alice> <http://ex/knows> <http://ex/bob> .
<http://ex/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/bob> <http://ex/name> "Bob" .
`

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	db, err := rdfshapes.LoadNTriples(strings.NewReader(testNT))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(db))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestSparqlSelect(t *testing.T) {
	srv := newServer(t)
	q := url.QueryEscape(`PREFIX ex: <http://ex/>
		SELECT ?x ?n WHERE { ?x a ex:Person . ?x ex:name ?n }`)
	var out struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]struct {
				Type     string `json:"type"`
				Value    string `json:"value"`
				Lang     string `json:"xml:lang"`
				Datatype string `json:"datatype"`
			} `json:"bindings"`
		} `json:"results"`
	}
	resp := getJSON(t, srv.URL+"/sparql?query="+q, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Errorf("content type = %q", ct)
	}
	if len(out.Head.Vars) != 2 {
		t.Errorf("vars = %v", out.Head.Vars)
	}
	if len(out.Results.Bindings) != 2 {
		t.Fatalf("bindings = %v", out.Results.Bindings)
	}
	for _, b := range out.Results.Bindings {
		if b["x"].Type != "uri" {
			t.Errorf("?x type = %q", b["x"].Type)
		}
		if b["n"].Type != "literal" {
			t.Errorf("?n type = %q", b["n"].Type)
		}
	}
}

func TestSparqlTypedAndLangLiterals(t *testing.T) {
	srv := newServer(t)
	q := url.QueryEscape(`PREFIX ex: <http://ex/>
		SELECT ?n ?a WHERE { <http://ex/alice> ex:name ?n . <http://ex/alice> ex:age ?a }`)
	var out struct {
		Results struct {
			Bindings []map[string]struct {
				Type     string `json:"type"`
				Value    string `json:"value"`
				Lang     string `json:"xml:lang"`
				Datatype string `json:"datatype"`
			} `json:"bindings"`
		} `json:"results"`
	}
	getJSON(t, srv.URL+"/sparql?query="+q, &out)
	if len(out.Results.Bindings) != 1 {
		t.Fatalf("bindings = %+v", out.Results.Bindings)
	}
	b := out.Results.Bindings[0]
	if b["n"].Lang != "en" || b["n"].Value != "Alice" {
		t.Errorf("name binding = %+v", b["n"])
	}
	if !strings.HasSuffix(b["a"].Datatype, "integer") || b["a"].Value != "42" {
		t.Errorf("age binding = %+v", b["a"])
	}
}

func TestSparqlAsk(t *testing.T) {
	srv := newServer(t)
	for query, want := range map[string]bool{
		`ASK { ?x <http://ex/knows> ?y }`: true,
		`ASK { ?x <http://ex/hates> ?y }`: false,
		`PREFIX ex: <http://ex/>
		 ASK { ?x ex:age ?a . FILTER(?a > 40) }`: true,
	} {
		var out struct {
			Boolean *bool `json:"boolean"`
		}
		resp := getJSON(t, srv.URL+"/sparql?query="+url.QueryEscape(query), &out)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d for %q", resp.StatusCode, query)
		}
		if out.Boolean == nil || *out.Boolean != want {
			t.Errorf("ASK %q = %v, want %v", query, out.Boolean, want)
		}
	}
}

func TestSparqlPost(t *testing.T) {
	srv := newServer(t)
	query := `SELECT * WHERE { ?s ?p ?o }`
	// form POST
	resp, err := http.PostForm(srv.URL+"/sparql", url.Values{"query": {query}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("form POST status = %d", resp.StatusCode)
	}
	// raw POST
	resp, err = http.Post(srv.URL+"/sparql", "application/sparql-query", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("raw POST status = %d", resp.StatusCode)
	}
}

func TestSparqlErrors(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/sparql")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query: status = %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/sparql?query=" + url.QueryEscape("NOT SPARQL"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query: status = %d", resp.StatusCode)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv := newServer(t)
	q := url.QueryEscape(`PREFIX ex: <http://ex/>
		SELECT * WHERE { ?x a ex:Person . ?x ex:name ?n }`)
	resp, err := http.Get(srv.URL + "/explain?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{"plan (GS)", "plan (SS)", "estimated result cardinality"} {
		if !strings.Contains(body, want) {
			t.Errorf("explain output missing %q:\n%s", want, body)
		}
	}
}

func TestShapesAndStatsEndpoints(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/shapes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "sh:NodeShape") {
		t.Error("shapes endpoint missing SHACL content")
	}
	resp2, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	n, _ = resp2.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "void#triples") {
		t.Error("stats endpoint missing VoID content")
	}
}

func TestHealthz(t *testing.T) {
	srv := newServer(t)
	var out struct {
		Status  string `json:"status"`
		Triples int    `json:"triples"`
	}
	resp := getJSON(t, srv.URL+"/healthz", &out)
	if resp.StatusCode != http.StatusOK || out.Status != "ok" || out.Triples != 6 {
		t.Errorf("healthz = %+v (status %d)", out, resp.StatusCode)
	}
}

func TestOptionalUnboundOmittedFromBindings(t *testing.T) {
	srv := newServer(t)
	q := url.QueryEscape(`PREFIX ex: <http://ex/>
		SELECT ?x ?y WHERE { ?x a ex:Person . OPTIONAL { ?x ex:knows ?y } }`)
	var out struct {
		Results struct {
			Bindings []map[string]struct {
				Value string `json:"value"`
			} `json:"bindings"`
		} `json:"results"`
	}
	getJSON(t, srv.URL+"/sparql?query="+q, &out)
	if len(out.Results.Bindings) != 2 {
		t.Fatalf("bindings = %+v", out.Results.Bindings)
	}
	omitted := 0
	for _, b := range out.Results.Bindings {
		if _, ok := b["y"]; !ok {
			omitted++
		}
	}
	if omitted != 1 {
		t.Errorf("unbound bindings omitted = %d, want 1", omitted)
	}
}

func TestBudgetExceededOverHTTP(t *testing.T) {
	db, err := rdfshapes.LoadNTriples(strings.NewReader(testNT), rdfshapes.WithOpsBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(db))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(`SELECT * WHERE { ?s ?p ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("budget-exceeded status = %d, want 400", resp.StatusCode)
	}
}

func TestSparqlConstructOverHTTP(t *testing.T) {
	srv := newServer(t)
	q := url.QueryEscape(`PREFIX ex: <http://ex/>
		CONSTRUCT { ?y ex:knownBy ?x } WHERE { ?x ex:knows ?y }`)
	resp, err := http.Get(srv.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/n-triples") {
		t.Errorf("content type = %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "<http://ex/bob> <http://ex/knownBy> <http://ex/alice> .") {
		t.Errorf("construct body = %q", body)
	}
}
