package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
)

func postUpdate(t *testing.T, srv string, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(srv+"/update", "application/x-www-form-urlencoded",
		strings.NewReader(url.Values{"update": {body}}.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func countPersons(t *testing.T, srv string) int {
	t.Helper()
	q := url.QueryEscape(`PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Person }`)
	var out struct {
		Results struct {
			Bindings []map[string]struct {
				Value string `json:"value"`
			} `json:"bindings"`
		} `json:"results"`
	}
	resp := getJSON(t, srv+"/sparql?query="+q, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	return len(out.Results.Bindings)
}

// TestUpdateHTTPRoundTrip is the acceptance check: insert over HTTP, see
// the data in a query without any reload, delete, see it gone.
func TestUpdateHTTPRoundTrip(t *testing.T) {
	srv := newServer(t)
	if n := countPersons(t, srv.URL); n != 2 {
		t.Fatalf("persons = %d, want 2", n)
	}

	resp, body := postUpdate(t, srv.URL, `PREFIX ex: <http://ex/>
		INSERT DATA { ex:carol a ex:Person . ex:carol ex:name "Carol" }`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status = %d: %s", resp.StatusCode, body)
	}
	var ack struct{ Inserted, Deleted int }
	if err := json.Unmarshal([]byte(body), &ack); err != nil {
		t.Fatalf("ack %q: %v", body, err)
	}
	if ack.Inserted != 2 || ack.Deleted != 0 {
		t.Errorf("ack = %+v, want 2 inserted", ack)
	}
	if n := countPersons(t, srv.URL); n != 3 {
		t.Errorf("persons = %d after insert, want 3", n)
	}

	resp, body = postUpdate(t, srv.URL, `PREFIX ex: <http://ex/>
		DELETE DATA { ex:carol a ex:Person . ex:carol ex:name "Carol" }`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d: %s", resp.StatusCode, body)
	}
	if n := countPersons(t, srv.URL); n != 2 {
		t.Errorf("persons = %d after delete, want 2", n)
	}
}

func TestUpdateRawBody(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Post(srv.URL+"/update", "application/sparql-update",
		strings.NewReader(`INSERT DATA { <http://ex/s> <http://ex/p> <http://ex/o> }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, b)
	}
}

func TestUpdateBadRequests(t *testing.T) {
	srv := newServer(t)
	resp, body := postUpdate(t, srv.URL, `INSERT DATA { ?v <http://p> <http://o> }`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("variable in DATA: status = %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Post(srv.URL+"/update", "application/x-www-form-urlencoded", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing parameter: status = %d", resp.StatusCode)
	}
}

// TestBodyTooLarge checks oversized raw POST bodies get 413 instead of
// being truncated into a possibly well-formed partial request.
func TestBodyTooLarge(t *testing.T) {
	srv := newServer(t)
	big := strings.Repeat("#", 1<<20+1)
	for _, c := range []struct{ path, ct string }{
		{"/update", "application/sparql-update"},
		{"/sparql", "application/sparql-query"},
	} {
		resp, err := http.Post(srv.URL+c.path, c.ct, strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s with oversized body: status = %d, want 413", c.path, resp.StatusCode)
		}
	}
	if n := countPersons(t, srv.URL); n != 2 {
		t.Errorf("persons = %d after rejected updates, want 2 (no partial apply)", n)
	}
}

// TestMethodNotAllowed checks the 405 + Allow hygiene across endpoints.
func TestMethodNotAllowed(t *testing.T) {
	srv := newServer(t)
	cases := []struct {
		method, path string
		allow        string
	}{
		{http.MethodGet, "/update", "POST"},
		{http.MethodDelete, "/update", "POST"},
		{http.MethodDelete, "/sparql", "GET, POST"},
		{http.MethodPut, "/explain", "GET, POST"},
		{http.MethodPost, "/shapes", "GET"},
		{http.MethodPost, "/stats", "GET"},
		{http.MethodPost, "/healthz", "GET"},
		{http.MethodPost, "/metrics", "GET"},
		{http.MethodPost, "/trace/recent", "GET"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status = %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Errorf("%s %s: Allow = %q, want %q", c.method, c.path, got, c.allow)
		}
	}
}

// TestLiveMetricsExposed checks the drift and overlay gauges appear in
// /metrics and move after an update.
func TestLiveMetricsExposed(t *testing.T) {
	srv := newServer(t)
	// one undescribed predicate on a typed subject: drift and overlay move
	resp, body := postUpdate(t, srv.URL, `PREFIX ex: <http://ex/>
		INSERT DATA { ex:alice ex:nickname "Al" }`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status = %d: %s", resp.StatusCode, body)
	}
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	b, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	for _, want := range []string{
		"rdfshapes_stats_drift 1",
		"rdfshapes_overlay_added_triples 1",
		"rdfshapes_overlay_deleted_triples 0",
		"rdfshapes_updates_applied 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
