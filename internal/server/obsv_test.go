package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"rdfshapes"
	"rdfshapes/internal/obsv"
)

func getBody(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func serveQueries(t *testing.T, srv string, queries ...string) {
	t.Helper()
	for _, q := range queries {
		resp, err := http.Get(srv + "/sparql?query=" + url.QueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := newServer(t)
	serveQueries(t, srv.URL,
		`PREFIX ex: <http://ex/> SELECT ?x ?n WHERE { ?x a ex:Person . ?x ex:name ?n }`,
		`SELECT * WHERE { ?s ?p ?o }`,
		`NOT SPARQL`, // parse error: rejected before execution, not traced
	)
	status, body, hdr := getBody(t, srv.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE rdfshapes_queries_total counter",
		"# TYPE rdfshapes_query_duration_seconds histogram",
		"# TYPE rdfshapes_plan_qerror histogram",
		`rdfshapes_queries_total{planner="SS",status="ok"} 1`,
		`rdfshapes_queries_total{planner="GS",status="ok"} 1`,
		`le="+Inf"`,
		"rdfshapes_index_rows_visited_total",
		"rdfshapes_intermediate_results_total",
		"rdfshapes_result_rows_total",
		"rdfshapes_traces_recorded_total 2",
		"rdfshapes_dataset_triples 6",
		"rdfshapes_dataset_node_shapes",
		"rdfshapes_dataset_property_shapes",
		"rdfshapes_trace_buffer_capacity",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
}

func TestTraceRecentEndpoint(t *testing.T) {
	srv := newServer(t)
	serveQueries(t, srv.URL,
		`PREFIX ex: <http://ex/> SELECT ?x ?n WHERE { ?x a ex:Person . ?x ex:name ?n }`,
		`SELECT * WHERE { ?s ?p ?o }`,
	)
	var out struct {
		Total  uint64 `json:"total"`
		Traces []struct {
			ID       uint64 `json:"id"`
			Query    string `json:"query"`
			Planner  string `json:"planner"`
			Plan     string `json:"plan"`
			Patterns []struct {
				Pattern   string  `json:"pattern"`
				Estimated float64 `json:"estimated"`
				Actual    int64   `json:"actual"`
				QError    float64 `json:"qerror"`
			} `json:"patterns"`
			Rows      int64 `json:"rows"`
			Ops       int64 `json:"ops"`
			WallNanos int64 `json:"wallNanos"`
		} `json:"traces"`
	}
	resp := getJSON(t, srv.URL+"/trace/recent", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Total != 2 || len(out.Traces) != 2 {
		t.Fatalf("total = %d, traces = %d, want 2/2", out.Total, len(out.Traces))
	}
	// newest first: the single-pattern scan over everything
	newest := out.Traces[0]
	if newest.Planner != "GS" || newest.Rows != 6 {
		t.Errorf("newest trace = %+v, want GS with 6 rows", newest)
	}
	oldest := out.Traces[1]
	if oldest.Planner != "SS" {
		t.Errorf("oldest planner = %q, want SS", oldest.Planner)
	}
	if len(oldest.Patterns) != 2 {
		t.Fatalf("oldest has %d pattern traces, want 2", len(oldest.Patterns))
	}
	for _, p := range oldest.Patterns {
		if p.Pattern == "" || p.Actual <= 0 || p.QError < 1 {
			t.Errorf("incomplete pattern trace: %+v", p)
		}
	}
	if oldest.Plan == "" || !strings.Contains(oldest.Query, "SELECT") {
		t.Errorf("trace missing plan/query: %+v", oldest)
	}
	if oldest.Ops <= 0 || oldest.WallNanos <= 0 {
		t.Errorf("trace missing ops/wall: %+v", oldest)
	}

	// n parameter limits and validates
	resp = getJSON(t, srv.URL+"/trace/recent?n=1", &out)
	if resp.StatusCode != http.StatusOK || len(out.Traces) != 1 {
		t.Errorf("n=1: status %d, %d traces", resp.StatusCode, len(out.Traces))
	}
	status, _, _ := getBody(t, srv.URL+"/trace/recent?n=bogus")
	if status != http.StatusBadRequest {
		t.Errorf("n=bogus status = %d, want 400", status)
	}
}

func TestTraceRecentEmpty(t *testing.T) {
	srv := newServer(t)
	_, body, _ := getBody(t, srv.URL+"/trace/recent")
	if !strings.Contains(body, `"traces":[]`) {
		t.Errorf("empty trace list should encode as [], got %s", body)
	}
}

func TestTimeoutStatusInMetrics(t *testing.T) {
	db, err := rdfshapes.LoadNTriples(strings.NewReader(testNT), rdfshapes.WithOpsBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(db))
	t.Cleanup(srv.Close)
	serveQueries(t, srv.URL, `SELECT * WHERE { ?s ?p ?o }`)
	_, body, _ := getBody(t, srv.URL+"/metrics")
	if !strings.Contains(body, `rdfshapes_queries_total{planner="GS",status="timeout"} 1`) {
		t.Errorf("metrics missing timeout status:\n%s", body)
	}
}

func TestServerInstallsDefaultCollector(t *testing.T) {
	db, err := rdfshapes.LoadNTriples(strings.NewReader(testNT))
	if err != nil {
		t.Fatal(err)
	}
	if db.Collector() != nil {
		t.Fatal("fresh DB should have no collector")
	}
	New(db)
	c := db.Collector()
	if c == nil {
		t.Fatal("New did not install a collector")
	}
	if c.RingSize() != obsv.DefaultRingSize {
		t.Errorf("default ring size = %d, want %d", c.RingSize(), obsv.DefaultRingSize)
	}
}

// TestAdaptiveMetricsExposed checks that enabling adaptive replan on the
// DB surfaces its gauges in /metrics: the tracked-template count and the
// per-template rolling q-error series.
func TestAdaptiveMetricsExposed(t *testing.T) {
	srv, _ := newGovernedServer(t, 4, Config{}, rdfshapes.WithAdaptiveReplan(10))
	getBody(t, srv.URL+"/sparql?query="+url.QueryEscape(crossQuery))
	getBody(t, srv.URL+"/sparql?query="+url.QueryEscape(crossQuery))
	body := metricsBody(t, srv.URL)
	if !strings.Contains(body, "rdfshapes_adaptive_templates 1") {
		t.Errorf("metrics missing adaptive template count:\n%s", body)
	}
	if !strings.Contains(body, obsv.MetricTemplateQError+`{template="`) {
		t.Errorf("metrics missing %s series:\n%s", obsv.MetricTemplateQError, body)
	}
}
