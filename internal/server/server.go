// Package server exposes a DB over HTTP: a SPARQL 1.1 Protocol endpoint
// with SPARQL 1.1 Query Results JSON serialization, endpoints for the
// paper's artifacts (the annotated SHACL shapes graph, the extended-VoID
// global statistics, and GS-vs-SS query plans), and the observability
// surface that makes the paper's evaluation quantities — estimated vs.
// actual join cardinalities, q-error, runtime under a budget —
// continuously visible in production.
//
//	GET/POST /sparql?query=...   SELECT/ASK results as application/sparql-results+json
//	POST     /update             SPARQL UPDATE (INSERT DATA / DELETE DATA), JSON ack
//	GET      /explain?query=...  the SS and GS query plans as text
//	GET      /shapes             annotated SHACL shapes graph as Turtle
//	GET      /stats              extended-VoID statistics as N-Triples
//	GET      /healthz            liveness and dataset size
//	GET      /metrics            cumulative counters/histograms, Prometheus text format
//	GET      /trace/recent?n=N   the last N query traces as JSON
//
// Requests with an unsupported method receive 405 Method Not Allowed
// with an Allow header listing the supported methods.
//
// New installs an obsv.Collector on the DB when none is present, so
// every served query is traced by default. docs/OBSERVABILITY.md
// documents each metric, label, and trace field; docs/LIVE_UPDATES.md
// documents the /update endpoint and the live-update metrics.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"rdfshapes"
	"rdfshapes/internal/obsv"
	"rdfshapes/internal/rdf"
)

// Handler routes the endpoints over a DB.
type Handler struct {
	db  *rdfshapes.DB
	obs *obsv.Collector
	mux *http.ServeMux
}

// New returns an http.Handler serving db. When db has no observability
// collector yet, a default one (DefaultRingSize traces) is installed so
// the /metrics and /trace/recent endpoints are live out of the box.
func New(db *rdfshapes.DB) *Handler {
	if db.Collector() == nil {
		db.SetCollector(obsv.NewCollector(0))
	}
	h := &Handler{db: db, obs: db.Collector(), mux: http.NewServeMux()}
	h.obs.RegisterGauge("rdfshapes_dataset_triples",
		"Triples in the served dataset.",
		func() float64 { return float64(db.NumTriples()) })
	h.obs.RegisterGauge("rdfshapes_dataset_node_shapes",
		"Node shapes in the annotated shapes graph.",
		func() float64 { return float64(db.Shapes().Len()) })
	h.obs.RegisterGauge("rdfshapes_dataset_property_shapes",
		"Property shapes in the annotated shapes graph.",
		func() float64 { return float64(db.Shapes().PropertyShapeCount()) })
	h.obs.RegisterGauge("rdfshapes_trace_buffer_capacity",
		"Capacity of the in-memory query trace ring buffer.",
		func() float64 { return float64(h.obs.RingSize()) })
	h.obs.RegisterGauge("rdfshapes_stats_drift",
		"Approximation drift accumulated in the planner statistics since the last re-annotation.",
		func() float64 { return float64(db.StatsDrift()) })
	h.obs.RegisterGauge("rdfshapes_overlay_added_triples",
		"Triples in the live overlay's added fragment, pending compaction.",
		func() float64 { a, _ := db.OverlaySize(); return float64(a) })
	h.obs.RegisterGauge("rdfshapes_overlay_deleted_triples",
		"Base triples marked deleted in the live overlay, pending compaction.",
		func() float64 { _, d := db.OverlaySize(); return float64(d) })
	h.obs.RegisterGauge("rdfshapes_updates_applied",
		"SPARQL UPDATE requests committed since startup.",
		func() float64 { return float64(db.UpdatesApplied()) })
	h.mux.HandleFunc("/sparql", h.sparql)
	h.mux.HandleFunc("/update", h.update)
	h.mux.HandleFunc("/explain", h.explain)
	h.mux.HandleFunc("/shapes", h.shapes)
	h.mux.HandleFunc("/stats", h.stats)
	h.mux.HandleFunc("/healthz", h.healthz)
	h.mux.HandleFunc("/metrics", h.metrics)
	h.mux.HandleFunc("/trace/recent", h.traceRecent)
	return h
}

// allow enforces the supported methods for a handler. When the request
// method is not listed it writes 405 Method Not Allowed with an Allow
// header and returns false.
func allow(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(methods, ", "))
	http.Error(w, fmt.Sprintf("method %s not allowed", r.Method), http.StatusMethodNotAllowed)
	return false
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// maxBodyBytes caps raw POST bodies. A body exceeding it is rejected
// with 413 rather than truncated: a truncation landing on an operation
// boundary would silently apply a partial update.
const maxBodyBytes = 1 << 20

// errBodyTooLarge marks a rejected oversized body; handlers map it to
// 413 Request Entity Too Large via errorStatus.
var errBodyTooLarge = fmt.Errorf("request body exceeds %d bytes", maxBodyBytes)

// readBody reads a raw POST body up to maxBodyBytes, returning
// errBodyTooLarge when the body is bigger.
func readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if len(body) > maxBodyBytes {
		return nil, errBodyTooLarge
	}
	return body, nil
}

// errorStatus picks the HTTP status for a request-extraction error.
func errorStatus(err error) int {
	if errors.Is(err, errBodyTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// queryParam extracts the SPARQL query from a GET parameter, a form
// field, or a raw application/sparql-query POST body.
func queryParam(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("query"); q != "" {
		return q, nil
	}
	if r.Method == http.MethodPost {
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			body, err := readBody(r)
			if err != nil {
				return "", err
			}
			if len(body) == 0 {
				return "", fmt.Errorf("empty request body")
			}
			return string(body), nil
		}
		if err := r.ParseForm(); err != nil {
			return "", err
		}
		if q := r.PostForm.Get("query"); q != "" {
			return q, nil
		}
	}
	return "", fmt.Errorf("missing 'query' parameter")
}

// jsonTerm is one RDF term in SPARQL 1.1 JSON results form.
type jsonTerm struct {
	Type     string `json:"type"` // uri | literal | bnode
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

type jsonResults struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Results *struct {
		Bindings []map[string]jsonTerm `json:"bindings"`
	} `json:"results,omitempty"`
	Boolean *bool `json:"boolean,omitempty"`
}

// updateParam extracts the SPARQL UPDATE request from a form field or a
// raw application/sparql-update POST body, per the SPARQL 1.1 Protocol.
func updateParam(r *http.Request) (string, error) {
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/sparql-update") {
		body, err := readBody(r)
		if err != nil {
			return "", err
		}
		if len(body) == 0 {
			return "", fmt.Errorf("empty request body")
		}
		return string(body), nil
	}
	if err := r.ParseForm(); err != nil {
		return "", err
	}
	if u := r.PostForm.Get("update"); u != "" {
		return u, nil
	}
	return "", fmt.Errorf("missing 'update' parameter")
}

// update applies a SPARQL UPDATE request (INSERT DATA / DELETE DATA)
// and acknowledges with the committed triple counts as JSON.
func (h *Handler) update(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	src, err := updateParam(r)
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	res, err := h.db.Update(src)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"inserted":%d,"deleted":%d}`+"\n", res.Inserted, res.Deleted)
}

func (h *Handler) sparql(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	src, err := queryParam(r)
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	switch queryForm(src) {
	case "ASK":
		ok, err := h.db.Ask(src)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var out jsonResults
		out.Boolean = &ok
		writeJSON(w, out)
		return
	case "CONSTRUCT":
		g, err := h.db.Construct(src)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/n-triples; charset=utf-8")
		if err := rdf.WriteNTriples(w, g); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	res, err := h.db.Query(src)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var out jsonResults
	out.Head.Vars = res.Vars
	out.Results = &struct {
		Bindings []map[string]jsonTerm `json:"bindings"`
	}{Bindings: make([]map[string]jsonTerm, 0, len(res.Rows))}
	for _, row := range res.Rows {
		b := map[string]jsonTerm{}
		for v, s := range row {
			if s == "" {
				continue // unbound OPTIONAL variable: omitted per spec
			}
			term, err := rdf.ParseTerm(s)
			if err != nil {
				http.Error(w, fmt.Sprintf("internal: bad term %q: %v", s, err), http.StatusInternalServerError)
				return
			}
			b[v] = toJSONTerm(term)
		}
		out.Results.Bindings = append(out.Results.Bindings, b)
	}
	writeJSON(w, out)
}

func toJSONTerm(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.IRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.Blank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		jt := jsonTerm{Type: "literal", Value: t.Value, Lang: t.Lang}
		if t.Lang == "" && t.Datatype != "" && t.Datatype != rdf.XSDString {
			jt.Datatype = t.Datatype
		}
		return jt
	}
}

// queryForm sniffs the query form ("ASK", "CONSTRUCT", or "SELECT")
// without a full parse, so each form gets its response shape: boolean
// JSON for ASK, N-Triples for CONSTRUCT, bindings JSON otherwise.
func queryForm(src string) string {
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") || strings.HasPrefix(strings.ToUpper(trimmed), "PREFIX") {
			continue
		}
		upper := strings.ToUpper(trimmed)
		switch {
		case strings.HasPrefix(upper, "ASK"):
			return "ASK"
		case strings.HasPrefix(upper, "CONSTRUCT"):
			return "CONSTRUCT"
		}
		return "SELECT"
	}
	return "SELECT"
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/sparql-results+json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// headers are already out; nothing more to do
		return
	}
}

func (h *Handler) explain(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	src, err := queryParam(r)
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, approach := range []string{"GS", "SS"} {
		plan, err := h.db.Explain(src, approach)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintln(w, plan)
	}
	est, err := h.db.EstimateCount(src)
	if err == nil {
		fmt.Fprintf(w, "estimated result cardinality: %.0f\n", est)
	}
}

func (h *Handler) shapes(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/turtle; charset=utf-8")
	if err := h.db.WriteShapesTurtle(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "application/n-triples; charset=utf-8")
	if err := rdf.WriteNTriples(w, h.db.Stats().ToGraph()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// metrics serves the cumulative counters and histograms in Prometheus
// text exposition format.
func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := h.obs.WritePrometheus(w); err != nil {
		// headers are already out; nothing more to do
		return
	}
}

// traceRecentResponse is the JSON shape of GET /trace/recent.
type traceRecentResponse struct {
	// Total counts traces ever recorded, including ring-evicted ones.
	Total uint64 `json:"total"`
	// Traces holds the most recent traces, newest first.
	Traces []obsv.QueryTrace `json:"traces"`
}

// traceRecent serves the last n query traces (default 20, capped at the
// ring capacity) as JSON, newest first.
func (h *Handler) traceRecent(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	n := 20
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			http.Error(w, fmt.Sprintf("invalid 'n' parameter %q", s), http.StatusBadRequest)
			return
		}
		n = v
	}
	resp := traceRecentResponse{Total: h.obs.TraceCount(), Traces: h.obs.Recent(n)}
	if resp.Traces == nil {
		resp.Traces = []obsv.QueryTrace{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(resp); err != nil {
		return
	}
}

func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","triples":%d,"nodeShapes":%d,"propertyShapes":%d}`+"\n",
		h.db.NumTriples(), h.db.Shapes().Len(), h.db.Shapes().PropertyShapeCount())
}
