// Package server exposes a DB over HTTP: a SPARQL 1.1 Protocol endpoint
// with SPARQL 1.1 Query Results JSON serialization, endpoints for the
// paper's artifacts (the annotated SHACL shapes graph, the extended-VoID
// global statistics, and GS-vs-SS query plans), and the observability
// surface that makes the paper's evaluation quantities — estimated vs.
// actual join cardinalities, q-error, runtime under a budget —
// continuously visible in production.
//
//	GET/POST /sparql?query=...   SELECT/ASK results as application/sparql-results+json
//	POST     /update             SPARQL UPDATE (INSERT DATA / DELETE DATA), JSON ack
//	GET      /explain?query=...  the SS and GS query plans as text
//	GET      /shapes             annotated SHACL shapes graph as Turtle
//	GET      /stats              extended-VoID statistics as N-Triples
//	GET      /healthz            liveness and dataset size
//	GET      /readyz             readiness: 200 after recovery, 503 while draining
//	POST     /admin/checkpoint   snapshot + WAL rotation; 409 when not durable
//	GET      /metrics            cumulative counters/histograms, Prometheus text format
//	GET      /trace/recent?n=N   the last N query traces as JSON
//	GET      /repl/wal           WAL log-shipping stream (durable primaries)
//	GET      /repl/snapshot      checkpoint snapshot for replica bootstrap
//	GET      /repl/status        replication role, cursor, lag, staleness
//
// A durable DB additionally serves the replication-primary endpoints; a
// replica (rdfshapes.OpenReplica) serves its follower status and answers
// /update with 403 — writes belong on the primary. A WAL-poisoned
// primary refuses writes with 503 + Retry-After until a checkpoint
// clears the poison (docs/REPLICATION.md, docs/DURABILITY.md).
//
// Requests with an unsupported method receive 405 Method Not Allowed
// with an Allow header listing the supported methods.
//
// The query endpoints (/sparql, /update, /explain) run under a governor:
// an admission semaphore bounds concurrent executions (excess requests
// wait up to Config.QueueWait, then receive 503 with Retry-After), each
// request carries a deadline from Config.QueryTimeout or a client
// timeout= parameter (clamped to the server ceiling), and a disconnecting
// client cancels its query through the request context. A panic in any
// handler is recovered to a 500 and counted. docs/RESILIENCE.md documents
// the governor; docs/OBSERVABILITY.md the metrics.
//
// New installs an obsv.Collector on the DB when none is present, so
// every served query is traced by default.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rdfshapes"
	"rdfshapes/internal/obsv"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/repl"
	"rdfshapes/internal/shard"
)

// Governor metric names, exported alongside the obsv package's inventory.
const (
	MetricInFlight            = "rdfshapes_http_in_flight_queries"
	MetricAdmissionRejected   = "rdfshapes_admission_rejected_total"
	MetricQueryTimeouts       = "rdfshapes_query_timeouts_total"
	MetricClientCancellations = "rdfshapes_client_cancellations_total"
	MetricResultTruncations   = "rdfshapes_result_truncations_total"
	MetricPanicsRecovered     = "rdfshapes_panics_recovered_total"
)

// Defaults for Config zero values.
const (
	DefaultMaxConcurrent = 64
	DefaultQueueWait     = 100 * time.Millisecond
)

// statusClientClosedRequest is the de-facto status (nginx's 499) logged
// when the client went away before the response; the client never sees
// it, but it keeps access logs and tests honest about why the request
// ended.
const statusClientClosedRequest = 499

// Config tunes the query governor.
type Config struct {
	// MaxConcurrent caps queries executing at once across /sparql,
	// /update, and /explain. 0 selects DefaultMaxConcurrent; negative
	// disables admission control.
	MaxConcurrent int
	// QueueWait bounds how long an arriving request waits for an
	// execution slot before being rejected with 503. 0 selects
	// DefaultQueueWait.
	QueueWait time.Duration
	// QueryTimeout is the per-request deadline, and the ceiling a client
	// timeout= parameter is clamped to. 0 means no server-imposed
	// deadline (clients may still set their own).
	QueryTimeout time.Duration
	// ScanFrameBytes is the target frame payload size for the framed
	// /shard/scan protocol. 0 selects shard.DefaultFrameBytes.
	ScanFrameBytes int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = DefaultMaxConcurrent
	}
	if c.QueueWait == 0 {
		c.QueueWait = DefaultQueueWait
	}
	return c
}

// Handler routes the endpoints over a DB.
type Handler struct {
	db  *rdfshapes.DB
	obs *obsv.Collector
	mux *http.ServeMux
	cfg Config
	sem chan struct{} // admission semaphore; nil when disabled

	// ready gates /readyz: set true once construction (and therefore any
	// durability recovery) is complete, set false by SetReady(false) when
	// the server starts draining, so load balancers stop routing before
	// in-flight queries are waited out.
	ready atomic.Bool

	inFlight    atomic.Int64
	rejections  *obsv.CounterVec
	timeouts    *obsv.CounterVec
	cancels     *obsv.CounterVec
	truncations *obsv.CounterVec
	panics      *obsv.CounterVec
}

// New returns an http.Handler serving db under the default governor
// configuration. When db has no observability collector yet, a default
// one (DefaultRingSize traces) is installed so the /metrics and
// /trace/recent endpoints are live out of the box.
func New(db *rdfshapes.DB) *Handler { return NewWithConfig(db, Config{}) }

// NewWithConfig returns an http.Handler serving db under cfg.
func NewWithConfig(db *rdfshapes.DB, cfg Config) *Handler {
	if db.Collector() == nil {
		db.SetCollector(obsv.NewCollector(0))
	}
	cfg = cfg.withDefaults()
	h := &Handler{db: db, obs: db.Collector(), mux: http.NewServeMux(), cfg: cfg}
	if cfg.MaxConcurrent > 0 {
		h.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	h.rejections = h.obs.Counter(MetricAdmissionRejected,
		"Requests rejected with 503 because no execution slot freed up within the queue wait.")
	h.timeouts = h.obs.Counter(MetricQueryTimeouts,
		"Queries terminated by the per-request deadline (504).")
	h.cancels = h.obs.Counter(MetricClientCancellations,
		"Queries abandoned because the client disconnected mid-execution.")
	h.truncations = h.obs.Counter(MetricResultTruncations,
		"Query responses truncated by an intermediate- or row-budget (served with truncated=true).")
	h.panics = h.obs.Counter(MetricPanicsRecovered,
		"Handler panics recovered to a 500 response.")
	h.obs.RegisterGauge(MetricInFlight,
		"Governed HTTP queries currently executing.",
		func() float64 { return float64(h.inFlight.Load()) })
	h.obs.RegisterGauge("rdfshapes_dataset_triples",
		"Triples in the served dataset.",
		func() float64 { return float64(db.NumTriples()) })
	h.obs.RegisterGauge("rdfshapes_dataset_node_shapes",
		"Node shapes in the annotated shapes graph.",
		func() float64 { return float64(db.Shapes().Len()) })
	h.obs.RegisterGauge("rdfshapes_dataset_property_shapes",
		"Property shapes in the annotated shapes graph.",
		func() float64 { return float64(db.Shapes().PropertyShapeCount()) })
	h.obs.RegisterGauge("rdfshapes_trace_buffer_capacity",
		"Capacity of the in-memory query trace ring buffer.",
		func() float64 { return float64(h.obs.RingSize()) })
	h.obs.RegisterGauge("rdfshapes_stats_drift",
		"Approximation drift accumulated in the planner statistics since the last re-annotation.",
		func() float64 { return float64(db.StatsDrift()) })
	h.obs.RegisterGauge("rdfshapes_overlay_added_triples",
		"Triples in the live overlay's added fragment, pending compaction.",
		func() float64 { a, _ := db.OverlaySize(); return float64(a) })
	h.obs.RegisterGauge("rdfshapes_overlay_deleted_triples",
		"Base triples marked deleted in the live overlay, pending compaction.",
		func() float64 { _, d := db.OverlaySize(); return float64(d) })
	h.obs.RegisterGauge("rdfshapes_updates_applied",
		"SPARQL UPDATE requests committed since startup.",
		func() float64 { return float64(db.UpdatesApplied()) })
	h.obs.RegisterGauge("rdfshapes_parallelism",
		"Configured per-query BGP worker count (1 = serial execution).",
		func() float64 { return float64(db.Parallelism()) })
	h.obs.RegisterGauge("rdfshapes_parallel_workers_active",
		"Parallel BGP worker goroutines executing at scrape time.",
		func() float64 { return float64(rdfshapes.ActiveParallelWorkers()) })
	if db.AdaptiveEnabled() {
		h.obs.RegisterGauge("rdfshapes_adaptive_templates",
			"Query templates tracked by the adaptive replan layer.",
			func() float64 { return float64(len(db.AdaptiveTemplates())) })
		h.obs.RegisterGaugeVec(obsv.MetricTemplateQError,
			"Rolling median observed q-error per query template (complete executions since the template's last replan).",
			"template",
			func() map[string]float64 {
				out := map[string]float64{}
				for _, st := range db.AdaptiveTemplates() {
					if st.Observations > 0 {
						out[st.Template] = st.QError
					}
				}
				return out
			})
	}
	if db.Sharded() > 0 {
		h.obs.RegisterGauge("rdfshapes_shards",
			"Configured shard count (subject-hash partitions).",
			func() float64 { return float64(db.Sharded()) })
		h.obs.RegisterCounterVec(obsv.MetricShardRowsScanned,
			"Index rows scanned per shard through cross-shard query execution (deletion-masked rows included).",
			"shard",
			func() map[string]float64 {
				out := map[string]float64{}
				for i, n := range db.Shards().RowsScanned() {
					out[strconv.Itoa(i)] = float64(n)
				}
				return out
			})
		h.obs.RegisterCounterVec(obsv.MetricShardsPruned,
			"Per-pattern shard scans skipped, by reason: ownership (a bound subject routes to its hash owner alone) or stats (the shard's exact statistics prove the pattern empty there).",
			"reason",
			func() map[string]float64 {
				own, stats := db.Shards().Pruned()
				return map[string]float64{"ownership": float64(own), "stats": float64(stats)}
			})
	}
	if db.Durable() {
		h.obs.RegisterGauge("rdfshapes_wal_size_bytes",
			"Active write-ahead log file size in bytes, header included.",
			func() float64 { s, _ := db.DurabilityStats(); return float64(s.WALSizeBytes) })
		h.obs.RegisterGauge("rdfshapes_wal_generation",
			"Current snapshot/WAL generation number.",
			func() float64 { s, _ := db.DurabilityStats(); return float64(s.Generation) })
		h.obs.RegisterGauge("rdfshapes_wal_failed",
			"1 while the WAL is poisoned (updates refused until a checkpoint succeeds), else 0.",
			func() float64 {
				if s, _ := db.DurabilityStats(); s.Failed {
					return 1
				}
				return 0
			})
	}
	if db.Replica() {
		h.obs.RegisterGauge(obsv.MetricReplLagRecords,
			"Log records the replica is behind the primary as of the last poll.",
			func() float64 { s, _ := db.ReplicaStatus(); return float64(s.LagRecords) })
		h.obs.RegisterGauge(obsv.MetricReplStaleness,
			"Seconds since the replica last observed itself fully caught up.",
			func() float64 { s, _ := db.ReplicaStatus(); return s.StalenessSeconds })
		h.obs.RegisterGauge(obsv.MetricReplConnected,
			"1 while the last exchange with the primary succeeded, else 0.",
			func() float64 {
				if s, _ := db.ReplicaStatus(); s.Connected {
					return 1
				}
				return 0
			})
		h.obs.RegisterGauge(obsv.MetricReplApplied,
			"Shipped WAL records applied since the replica started.",
			func() float64 { s, _ := db.ReplicaStatus(); return float64(s.RecordsApplied) })
		h.obs.RegisterGauge(obsv.MetricReplReconnects,
			"Times the follower lost its connection to the primary and reconnected with backoff.",
			func() float64 { s, _ := db.ReplicaStatus(); return float64(s.Reconnects) })
		h.obs.RegisterGauge(obsv.MetricReplBootstraps,
			"Times the replica re-bootstrapped from a fresh primary snapshot (pruned generation or diverged primary).",
			func() float64 { s, _ := db.ReplicaStatus(); return float64(s.Bootstraps) })
		h.obs.RegisterGauge(obsv.MetricReplTornStreams,
			"Log streams that arrived torn mid-record; the intact prefix was applied and the rest re-requested.",
			func() float64 { s, _ := db.ReplicaStatus(); return float64(s.TornStreams) })
	}
	h.mux.HandleFunc("/sparql", h.govern(h.sparql))
	h.mux.HandleFunc("/update", h.govern(h.update))
	h.mux.HandleFunc("/explain", h.govern(h.explain))
	h.mux.HandleFunc("/shapes", h.shapes)
	h.mux.HandleFunc("/stats", h.stats)
	h.mux.HandleFunc("/healthz", h.healthz)
	h.mux.HandleFunc("/readyz", h.readyz)
	h.mux.HandleFunc("/admin/checkpoint", h.adminCheckpoint)
	h.mux.HandleFunc("/metrics", h.metrics)
	h.mux.HandleFunc("/trace/recent", h.traceRecent)
	if db.Sharded() > 0 {
		// Shard-over-HTTP scan endpoint: lets a remote coordinator read
		// this server's shards as an engine source (shard.Remote). The
		// endpoint's frame/abort counters are scraped from atomics.
		scanStats := &shard.HandlerStats{}
		h.mux.Handle("/shard/scan", shard.HandlerWithConfig(func() shard.Source {
			return db.Shards().Snapshot()
		}, shard.HandlerConfig{FrameBytes: cfg.ScanFrameBytes, Stats: scanStats}))
		h.obs.RegisterCounterVec(obsv.MetricScanServed,
			"Shard scans served, by wire protocol.", "proto",
			func() map[string]float64 {
				return map[string]float64{
					"framed":   float64(scanStats.FramedScans.Load()),
					"ntriples": float64(scanStats.LegacyScans.Load()),
				}
			})
		h.obs.RegisterCounter(obsv.MetricScanFrames,
			"Checksummed frames written by the scan endpoint.",
			func() float64 { return float64(scanStats.Frames.Load()) })
		h.obs.RegisterCounter(obsv.MetricScanRows,
			"Triples written by the scan endpoint.",
			func() float64 { return float64(scanStats.Rows.Load()) })
		h.obs.RegisterCounter(obsv.MetricScanAborts,
			"Scan responses cut short by client write errors.",
			func() float64 { return float64(scanStats.Aborts.Load()) })
	}
	if db.Durable() {
		// Log-shipping endpoints: a durable DB is a replication primary
		// replicas can bootstrap from and tail.
		pr := repl.NewPrimary(db.WAL())
		h.mux.HandleFunc(repl.WALPath, pr.ServeWAL)
		h.mux.HandleFunc(repl.SnapshotPath, pr.ServeSnapshot)
	}
	if db.Durable() || db.Replica() {
		h.mux.HandleFunc(repl.StatusPath, h.replStatus)
	}
	h.ready.Store(true)
	return h
}

// SetReady flips the /readyz readiness gate. The server process sets it
// false when it begins draining (SIGTERM), so orchestrators stop routing
// new traffic while in-flight requests finish; /healthz stays green the
// whole time (the process is alive, just not accepting work).
func (h *Handler) SetReady(ready bool) { h.ready.Store(ready) }

// allow enforces the supported methods for a handler. When the request
// method is not listed it writes 405 Method Not Allowed with an Allow
// header and returns false.
func allow(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(methods, ", "))
	http.Error(w, fmt.Sprintf("method %s not allowed", r.Method), http.StatusMethodNotAllowed)
	return false
}

// ServeHTTP implements http.Handler. Panics escape handlers only as
// http.ErrAbortHandler (net/http's deliberate connection-abort signal);
// anything else becomes a counted 500 so one bad request cannot take the
// connection's served state down with it.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			if p == http.ErrAbortHandler {
				panic(p)
			}
			h.panics.Add(1)
			http.Error(w, "internal server error", http.StatusInternalServerError)
		}
	}()
	h.mux.ServeHTTP(w, r)
}

// govern wraps a query handler with admission control and the
// per-request deadline. Rejection paths respond before any query work
// starts, so a saturated server stays cheap to say no with.
func (h *Handler) govern(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if h.sem != nil {
			select {
			case h.sem <- struct{}{}:
			default:
				timer := time.NewTimer(h.cfg.QueueWait)
				select {
				case h.sem <- struct{}{}:
					timer.Stop()
				case <-timer.C:
					h.rejections.Add(1)
					w.Header().Set("Retry-After", "1")
					http.Error(w, "server at capacity, retry later", http.StatusServiceUnavailable)
					return
				case <-r.Context().Done():
					timer.Stop()
					h.cancels.Add(1)
					http.Error(w, "client closed request", statusClientClosedRequest)
					return
				}
			}
			defer func() { <-h.sem }()
		}
		h.inFlight.Add(1)
		defer h.inFlight.Add(-1)

		timeout, err := requestTimeout(r, h.cfg.QueryTimeout)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next(w, r)
	}
}

// requestTimeout resolves the deadline for one request: the client's
// timeout= parameter when present (clamped to the server ceiling),
// otherwise the ceiling itself. 0 means no deadline.
func requestTimeout(r *http.Request, ceiling time.Duration) (time.Duration, error) {
	s := r.URL.Query().Get("timeout")
	if s == "" {
		return ceiling, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("invalid 'timeout' parameter %q (want a positive Go duration, e.g. 500ms)", s)
	}
	if ceiling > 0 && d > ceiling {
		d = ceiling
	}
	return d, nil
}

// queryError maps a query execution error onto the HTTP status that
// tells the client what actually happened: 504 for a deadline, the
// 499 convention for a client that went away, 503 for a server that is
// draining, 400 for everything else (parse errors, unsupported
// features, the legacy ops budget).
func (h *Handler) queryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, rdfshapes.ErrDeadline):
		// The deadline may be the client's own; only a genuinely gone
		// client is a cancellation, everything else is a timeout.
		h.timeouts.Add(1)
		http.Error(w, "query deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, rdfshapes.ErrCanceled):
		h.cancels.Add(1)
		http.Error(w, "client closed request", statusClientClosedRequest)
	case errors.Is(err, rdfshapes.ErrClosed):
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	case errors.Is(err, rdfshapes.ErrWALFailed):
		// A poisoned WAL is a transient server condition — the data
		// directory may recover and a checkpoint clears the poison — so
		// the client should retry, not treat its request as malformed.
		w.Header().Set("Retry-After", "5")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, rdfshapes.ErrReadOnlyReplica):
		http.Error(w, err.Error(), http.StatusForbidden)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// maxBodyBytes caps raw POST bodies. A body exceeding it is rejected
// with 413 rather than truncated: a truncation landing on an operation
// boundary would silently apply a partial update.
const maxBodyBytes = 1 << 20

// errBodyTooLarge marks a rejected oversized body; handlers map it to
// 413 Request Entity Too Large via errorStatus.
var errBodyTooLarge = fmt.Errorf("request body exceeds %d bytes", maxBodyBytes)

// readBody reads a raw POST body up to maxBodyBytes, returning
// errBodyTooLarge when the body is bigger. The read honors the request
// context, so a client that disconnected (or a request whose deadline
// passed) stops being read mid-body instead of at the next TCP stall.
func readBody(r *http.Request) ([]byte, error) {
	type readResult struct {
		body []byte
		err  error
	}
	ch := make(chan readResult, 1)
	go func() {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
		ch <- readResult{body, err}
	}()
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, res.err
		}
		if len(res.body) > maxBodyBytes {
			return nil, errBodyTooLarge
		}
		return res.body, nil
	case <-r.Context().Done():
		// net/http closes the body when the request ends, which unblocks
		// the reader goroutine shortly after.
		return nil, r.Context().Err()
	}
}

// errorStatus picks the HTTP status for a request-extraction error.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, errBodyTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	}
	return http.StatusBadRequest
}

// formBody parses an application/x-www-form-urlencoded POST body via
// readBody, so body reads stay context-aware (ParseForm would not be).
func formBody(r *http.Request) (url.Values, error) {
	body, err := readBody(r)
	if err != nil {
		return nil, err
	}
	return url.ParseQuery(string(body))
}

// queryParam extracts the SPARQL query from a GET parameter, a form
// field, or a raw application/sparql-query POST body.
func queryParam(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("query"); q != "" {
		return q, nil
	}
	if r.Method == http.MethodPost {
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			body, err := readBody(r)
			if err != nil {
				return "", err
			}
			if len(body) == 0 {
				return "", fmt.Errorf("empty request body")
			}
			return string(body), nil
		}
		form, err := formBody(r)
		if err != nil {
			return "", err
		}
		if q := form.Get("query"); q != "" {
			return q, nil
		}
	}
	return "", fmt.Errorf("missing 'query' parameter")
}

// jsonTerm is one RDF term in SPARQL 1.1 JSON results form.
type jsonTerm struct {
	Type     string `json:"type"` // uri | literal | bnode
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

type jsonResults struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Results *struct {
		Bindings []map[string]jsonTerm `json:"bindings"`
	} `json:"results,omitempty"`
	Boolean *bool `json:"boolean,omitempty"`
	// Truncated marks a 200 response whose bindings are a budget-cut
	// prefix of the full solution set (docs/RESILIENCE.md). Absent on
	// complete results.
	Truncated bool `json:"truncated,omitempty"`
}

// updateParam extracts the SPARQL UPDATE request from a form field or a
// raw application/sparql-update POST body, per the SPARQL 1.1 Protocol.
func updateParam(r *http.Request) (string, error) {
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/sparql-update") {
		body, err := readBody(r)
		if err != nil {
			return "", err
		}
		if len(body) == 0 {
			return "", fmt.Errorf("empty request body")
		}
		return string(body), nil
	}
	form, err := formBody(r)
	if err != nil {
		return "", err
	}
	if u := form.Get("update"); u != "" {
		return u, nil
	}
	return "", fmt.Errorf("missing 'update' parameter")
}

// update applies a SPARQL UPDATE request (INSERT DATA / DELETE DATA)
// and acknowledges with the committed triple counts as JSON.
func (h *Handler) update(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	src, err := updateParam(r)
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	res, err := h.db.UpdateCtx(r.Context(), src)
	if err != nil {
		h.queryError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"inserted":%d,"deleted":%d}`+"\n", res.Inserted, res.Deleted)
}

func (h *Handler) sparql(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	src, err := queryParam(r)
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	switch queryForm(src) {
	case "ASK":
		ok, err := h.db.AskCtx(r.Context(), src)
		if err != nil {
			h.queryError(w, r, err)
			return
		}
		var out jsonResults
		out.Boolean = &ok
		writeJSON(w, out)
		return
	case "CONSTRUCT":
		g, err := h.db.ConstructCtx(r.Context(), src)
		if err != nil {
			h.queryError(w, r, err)
			return
		}
		w.Header().Set("Content-Type", "application/n-triples; charset=utf-8")
		if err := rdf.WriteNTriples(w, g); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	res, err := h.db.QueryCtx(r.Context(), src)
	if err != nil {
		h.queryError(w, r, err)
		return
	}
	var out jsonResults
	out.Head.Vars = res.Vars
	out.Truncated = res.Truncated
	if res.Truncated {
		h.truncations.Add(1)
	}
	out.Results = &struct {
		Bindings []map[string]jsonTerm `json:"bindings"`
	}{Bindings: make([]map[string]jsonTerm, 0, len(res.Rows))}
	for _, row := range res.Rows {
		b := map[string]jsonTerm{}
		for v, s := range row {
			if s == "" {
				continue // unbound OPTIONAL variable: omitted per spec
			}
			term, err := rdf.ParseTerm(s)
			if err != nil {
				http.Error(w, fmt.Sprintf("internal: bad term %q: %v", s, err), http.StatusInternalServerError)
				return
			}
			b[v] = toJSONTerm(term)
		}
		out.Results.Bindings = append(out.Results.Bindings, b)
	}
	writeJSON(w, out)
}

func toJSONTerm(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.IRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.Blank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		jt := jsonTerm{Type: "literal", Value: t.Value, Lang: t.Lang}
		if t.Lang == "" && t.Datatype != "" && t.Datatype != rdf.XSDString {
			jt.Datatype = t.Datatype
		}
		return jt
	}
}

// queryForm sniffs the query form ("ASK", "CONSTRUCT", or "SELECT")
// without a full parse, so each form gets its response shape: boolean
// JSON for ASK, N-Triples for CONSTRUCT, bindings JSON otherwise.
func queryForm(src string) string {
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") || strings.HasPrefix(strings.ToUpper(trimmed), "PREFIX") {
			continue
		}
		upper := strings.ToUpper(trimmed)
		switch {
		case strings.HasPrefix(upper, "ASK"):
			return "ASK"
		case strings.HasPrefix(upper, "CONSTRUCT"):
			return "CONSTRUCT"
		}
		return "SELECT"
	}
	return "SELECT"
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/sparql-results+json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// headers are already out; nothing more to do
		return
	}
}

func (h *Handler) explain(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	src, err := queryParam(r)
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, approach := range []string{"GS", "SS"} {
		plan, err := h.db.Explain(src, approach)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintln(w, plan)
	}
	est, err := h.db.EstimateCount(src)
	if err == nil {
		fmt.Fprintf(w, "estimated result cardinality: %.0f\n", est)
	}
}

func (h *Handler) shapes(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/turtle; charset=utf-8")
	if err := h.db.WriteShapesTurtle(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "application/n-triples; charset=utf-8")
	if err := rdf.WriteNTriples(w, h.db.Stats().ToGraph()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// metrics serves the cumulative counters and histograms in Prometheus
// text exposition format.
func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := h.obs.WritePrometheus(w); err != nil {
		// headers are already out; nothing more to do
		return
	}
}

// traceRecentResponse is the JSON shape of GET /trace/recent.
type traceRecentResponse struct {
	// Total counts traces ever recorded, including ring-evicted ones.
	Total uint64 `json:"total"`
	// Traces holds the most recent traces, newest first.
	Traces []obsv.QueryTrace `json:"traces"`
}

// traceRecent serves the last n query traces (default 20, capped at the
// ring capacity) as JSON, newest first.
func (h *Handler) traceRecent(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	n := 20
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			http.Error(w, fmt.Sprintf("invalid 'n' parameter %q", s), http.StatusBadRequest)
			return
		}
		n = v
	}
	resp := traceRecentResponse{Total: h.obs.TraceCount(), Traces: h.obs.Recent(n)}
	if resp.Traces == nil {
		resp.Traces = []obsv.QueryTrace{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(resp); err != nil {
		return
	}
}

func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","triples":%d,"nodeShapes":%d,"propertyShapes":%d}`+"\n",
		h.db.NumTriples(), h.db.Shapes().Len(), h.db.Shapes().PropertyShapeCount())
}

// readyz reports readiness to take traffic: 200 once recovery is done
// and the handler is constructed, 503 after SetReady(false) (draining).
// Distinct from /healthz, which stays 200 for the process's whole life.
func (h *Handler) readyz(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if !h.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"ready":false}`)
		return
	}
	fmt.Fprintln(w, `{"ready":true}`)
}

// replStatus serves GET /repl/status: the follower's own status on a
// replica, a synthesized primary status on a durable DB. The router
// consumes it for health checks and staleness-based ejection.
func (h *Handler) replStatus(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	var st repl.StatusResponse
	if s, ok := h.db.ReplicaStatus(); ok {
		st = s
	} else if ds, ok := h.db.DurabilityStats(); ok {
		st = repl.StatusResponse{
			Role:       "primary",
			Generation: ds.Generation,
			AppliedSeq: ds.LastSeq,
			PrimarySeq: ds.LastSeq,
			Connected:  true,
		}
	} else {
		http.Error(w, "replication status unavailable", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(st); err != nil {
		return
	}
}

// checkpointResponse is the JSON shape of POST /admin/checkpoint.
type checkpointResponse struct {
	// Generation is the newly installed snapshot/WAL generation.
	Generation uint64 `json:"generation"`
	// Triples is the dataset size the snapshot captured.
	Triples int `json:"triples"`
	// DurationSeconds is the checkpoint wall time.
	DurationSeconds float64 `json:"durationSeconds"`
}

// adminCheckpoint triggers a synchronous checkpoint: snapshot the
// dataset, rotate the WAL, prune old generations. 409 when the DB has no
// durability directory attached.
func (h *Handler) adminCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	st, err := h.db.Checkpoint()
	if err != nil {
		if errors.Is(err, rdfshapes.ErrNotDurable) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	resp := checkpointResponse{
		Generation:      st.Generation,
		Triples:         st.Triples,
		DurationSeconds: st.Duration.Seconds(),
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		return
	}
}
