package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"rdfshapes"
)

// crossNT builds n unrelated triples per predicate, so the governed
// cross-product query below enumerates n^3 bindings.
func crossNT(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		for _, p := range []string{"p1", "p2", "p3"} {
			fmt.Fprintf(&b, "<http://x/s%d> <http://x/%s> <http://x/o%d> .\n", i, p, i)
		}
	}
	return b.String()
}

const crossQuery = `SELECT * WHERE {
	?a <http://x/p1> ?b .
	?c <http://x/p2> ?d .
	?e <http://x/p3> ?f .
}`

func newGovernedServer(t *testing.T, n int, cfg Config, opts ...rdfshapes.Option) (*httptest.Server, *rdfshapes.DB) {
	t.Helper()
	db, err := rdfshapes.LoadNTriples(strings.NewReader(crossNT(n)), opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewWithConfig(db, cfg))
	t.Cleanup(func() { srv.Close(); db.Close() })
	return srv, db
}

func metricsBody(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestQueryTimeoutE2E is the acceptance scenario: a pathological
// cross-product with timeout=50ms comes back as 504 well under a
// second, and the timeout counter moves.
func TestQueryTimeoutE2E(t *testing.T) {
	srv, _ := newGovernedServer(t, 200, Config{})
	start := time.Now()
	resp, err := http.Get(srv.URL + "/sparql?timeout=50ms&query=" + url.QueryEscape(crossQuery))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("timed-out query took %v, want < 500ms", elapsed)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if body := metricsBody(t, srv.URL); !strings.Contains(body, MetricQueryTimeouts+" 1") {
		t.Errorf("metrics missing %s 1", MetricQueryTimeouts)
	}
}

func TestServerTimeoutCeilingClampsClientParam(t *testing.T) {
	srv, _ := newGovernedServer(t, 200, Config{QueryTimeout: 30 * time.Millisecond})
	// The client asks for a minute; the ceiling still cuts at 30ms.
	start := time.Now()
	resp, err := http.Get(srv.URL + "/sparql?timeout=1m&query=" + url.QueryEscape(crossQuery))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("clamped query took %v", elapsed)
	}
}

func TestInvalidTimeoutParam(t *testing.T) {
	srv, _ := newGovernedServer(t, 2, Config{})
	for _, bad := range []string{"nope", "-5s", "0s"} {
		resp, err := http.Get(srv.URL + "/sparql?timeout=" + bad + "&query=" + url.QueryEscape(crossQuery))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("timeout=%q status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestAdmissionControlRejects(t *testing.T) {
	srv, _ := newGovernedServer(t, 120, Config{MaxConcurrent: 1, QueueWait: 20 * time.Millisecond})
	// Occupy the single slot with a slow query.
	slow := make(chan struct{})
	go func() {
		defer close(slow)
		resp, err := http.Get(srv.URL + "/sparql?timeout=2s&query=" + url.QueryEscape(crossQuery))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	// Wait until the slot is actually held, not just the goroutine started.
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(metricsBody(t, srv.URL), MetricInFlight+" 1") {
		if time.Now().After(deadline) {
			t.Fatal("slow query never showed up in-flight")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(`SELECT * WHERE { ?a <http://x/p1> ?b }`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 without Retry-After header")
	}
	<-slow
	if body := metricsBody(t, srv.URL); !strings.Contains(body, MetricAdmissionRejected+" 1") {
		t.Errorf("metrics missing %s 1", MetricAdmissionRejected)
	}
}

func TestTruncatedResultOverHTTP(t *testing.T) {
	srv, _ := newGovernedServer(t, 20, Config{}, rdfshapes.WithLimits(rdfshapes.Limits{MaxRows: 3}))
	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(crossQuery))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (budget truncation is not an error)", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"truncated":true`) {
		t.Fatalf("body missing truncated flag: %s", body)
	}
	if mb := metricsBody(t, srv.URL); !strings.Contains(mb, MetricResultTruncations+" 1") {
		t.Errorf("metrics missing %s 1", MetricResultTruncations)
	}
}

func TestCompleteResultOmitsTruncatedFlag(t *testing.T) {
	srv, _ := newGovernedServer(t, 3, Config{})
	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(`SELECT * WHERE { ?a <http://x/p1> ?b }`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "truncated") {
		t.Errorf("complete result carries truncated flag: %s", body)
	}
}

func TestClientDisconnectCancelsQuery(t *testing.T) {
	srv, _ := newGovernedServer(t, 200, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		srv.URL+"/sparql?query="+url.QueryEscape(crossQuery), nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("request succeeded despite cancellation")
	}
	// The handler notices the dead client at its next amortized context
	// check; poll the counter rather than sleeping a fixed amount.
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(metricsBody(t, srv.URL), MetricClientCancellations+" 1") {
		if time.Now().After(deadline) {
			t.Fatalf("metrics missing %s 1", MetricClientCancellations)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPanicRecovery(t *testing.T) {
	db, err := rdfshapes.LoadNTriples(strings.NewReader(crossNT(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	h := New(db)
	h.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if body := metricsBody(t, srv.URL); !strings.Contains(body, MetricPanicsRecovered+" 1") {
		t.Errorf("metrics missing %s 1", MetricPanicsRecovered)
	}
	// The server keeps serving after the panic.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic = %d", resp.StatusCode)
	}
}

func TestGovernorMetricNamesExposed(t *testing.T) {
	srv, _ := newGovernedServer(t, 2, Config{})
	body := metricsBody(t, srv.URL)
	for _, name := range []string{
		MetricInFlight, MetricAdmissionRejected, MetricQueryTimeouts,
		MetricClientCancellations, MetricResultTruncations, MetricPanicsRecovered,
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics missing %s", name)
		}
	}
}

// TestShutdownRacesInflightQueries drives concurrent queries and updates
// against an http.Server being Shutdown and a DB being Closed, the
// sequence cmd/server performs on SIGTERM. Run under -race by
// scripts/verify.sh; correctness here is "no race, no hang, each request
// ends in a well-formed response or a transport error".
func TestShutdownRacesInflightQueries(t *testing.T) {
	// The limits keep each racing query cheap to finish (a 30-row budget)
	// so Shutdown's drain is bounded by execution, not by serializing a
	// quarter-million-row JSON body.
	db, err := rdfshapes.LoadNTriples(strings.NewReader(crossNT(60)),
		rdfshapes.WithAutoCompact(4),
		rdfshapes.WithLimits(rdfshapes.Limits{MaxRows: 30}))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewWithConfig(db, Config{QueryTimeout: time.Second}))

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				var resp *http.Response
				var err error
				if i%2 == 0 {
					resp, err = http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(crossQuery))
				} else {
					up := fmt.Sprintf("INSERT DATA { <http://x/w%d> <http://x/q> <http://x/v%d> }", i, j)
					resp, err = http.Post(srv.URL+"/update", "application/x-www-form-urlencoded",
						strings.NewReader("update="+url.QueryEscape(up)))
				}
				if err != nil {
					return // server already down: expected during shutdown
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Config.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	wg.Wait()
	srv.Close()
}
