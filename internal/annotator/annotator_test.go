package annotator

import (
	"testing"

	"rdfshapes/internal/datagen/lubm"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
	"rdfshapes/internal/store"
)

const ns = "http://x/"

func smallGraph() *store.Store {
	iri := func(s string) rdf.Term { return rdf.NewIRI(ns + s) }
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	// three students; two have advisors; one has two courses
	g.Append(iri("s1"), typ, iri("Student"))
	g.Append(iri("s2"), typ, iri("Student"))
	g.Append(iri("s3"), typ, iri("Student"))
	g.Append(iri("s1"), iri("advisor"), iri("p1"))
	g.Append(iri("s2"), iri("advisor"), iri("p1"))
	g.Append(iri("s1"), iri("takes"), iri("c1"))
	g.Append(iri("s1"), iri("takes"), iri("c2"))
	g.Append(iri("s2"), iri("takes"), iri("c1"))
	g.Append(iri("s3"), iri("takes"), iri("c1"))
	g.Append(iri("p1"), typ, iri("Professor"))
	g.Append(iri("p1"), iri("takes"), iri("c9")) // professor also "takes" — must not pollute Student stats
	return store.Load(g)
}

func studentShapes(t *testing.T) *shacl.ShapesGraph {
	t.Helper()
	sg := shacl.NewShapesGraph()
	nsh := shacl.NewNodeShape("urn:student", ns+"Student")
	for _, p := range []string{"advisor", "takes", "missing"} {
		if err := nsh.AddProperty(&shacl.PropertyShape{IRI: "urn:student-" + p, Path: ns + p}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sg.Add(nsh); err != nil {
		t.Fatal(err)
	}
	return sg
}

func TestAnnotateSmallGraph(t *testing.T) {
	st := smallGraph()
	sg := studentShapes(t)
	if err := Annotate(sg, st); err != nil {
		t.Fatal(err)
	}
	student := sg.ByClass(ns + "Student")
	if student.Count != 3 {
		t.Errorf("student count = %d, want 3", student.Count)
	}
	adv := student.Property(ns + "advisor").Stats
	if adv.Count != 2 || adv.DistinctCount != 1 || adv.DistinctSubjectCount != 2 {
		t.Errorf("advisor stats = %+v", adv)
	}
	if adv.MinCount != 0 { // s3 has no advisor
		t.Errorf("advisor MinCount = %d, want 0", adv.MinCount)
	}
	if adv.MaxCount != 1 {
		t.Errorf("advisor MaxCount = %d, want 1", adv.MaxCount)
	}
	takes := student.Property(ns + "takes").Stats
	// professor's "takes" triple must be excluded
	if takes.Count != 4 || takes.DistinctCount != 2 || takes.DistinctSubjectCount != 3 {
		t.Errorf("takes stats = %+v", takes)
	}
	if takes.MinCount != 1 || takes.MaxCount != 2 {
		t.Errorf("takes min/max = %d/%d, want 1/2", takes.MinCount, takes.MaxCount)
	}
	missing := student.Property(ns + "missing").Stats
	if missing == nil || missing.Count != 0 || missing.MaxCount != 0 {
		t.Errorf("missing stats = %+v, want zeros", missing)
	}
	if !sg.Annotated() {
		t.Error("shapes graph not marked annotated")
	}
}

func TestAnnotateShapeForAbsentClass(t *testing.T) {
	st := smallGraph()
	sg := shacl.NewShapesGraph()
	nsh := shacl.NewNodeShape("urn:ghost", ns+"Ghost")
	if err := nsh.AddProperty(&shacl.PropertyShape{IRI: "urn:ghost-p", Path: ns + "advisor"}); err != nil {
		t.Fatal(err)
	}
	if err := sg.Add(nsh); err != nil {
		t.Fatal(err)
	}
	if err := Annotate(sg, st); err != nil {
		t.Fatal(err)
	}
	if nsh.Count != 0 {
		t.Errorf("absent class count = %d, want 0", nsh.Count)
	}
	if st := nsh.Property(ns + "advisor").Stats; st == nil || st.Count != 0 {
		t.Errorf("absent class property stats = %+v", st)
	}
}

func TestAnnotateNoTypeTriples(t *testing.T) {
	var g rdf.Graph
	g.Append(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o"))
	st := store.Load(g)
	sg := shacl.NewShapesGraph()
	if err := sg.Add(shacl.NewNodeShape("urn:x", ns+"T")); err != nil {
		t.Fatal(err)
	}
	if err := Annotate(sg, st); err == nil {
		t.Error("annotating shapes against type-free data should error")
	}
}

func TestAnnotateMatchesQueryOracle(t *testing.T) {
	// The single-pass annotator must agree exactly with the literal
	// analytical-query implementation on a realistic dataset.
	g := lubm.Generate(lubm.Config{Universities: 1, Seed: 7})
	st := store.Load(g)

	fast := lubm.Shapes()
	if err := Annotate(fast, st); err != nil {
		t.Fatal(err)
	}
	slow := lubm.Shapes()
	if err := AnnotateWithQueries(slow, st); err != nil {
		t.Fatal(err)
	}

	for _, nsFast := range fast.Shapes() {
		nsSlow := slow.ByClass(nsFast.TargetClass)
		if nsSlow == nil {
			t.Fatalf("class %s missing from oracle", nsFast.TargetClass)
		}
		if nsFast.Count != nsSlow.Count {
			t.Errorf("%s: count %d != oracle %d", nsFast.TargetClass, nsFast.Count, nsSlow.Count)
		}
		for _, psFast := range nsFast.Properties {
			psSlow := nsSlow.Property(psFast.Path)
			if psFast.Stats == nil || psSlow.Stats == nil {
				t.Fatalf("%s/%s: missing stats", nsFast.TargetClass, psFast.Path)
			}
			if *psFast.Stats != *psSlow.Stats {
				t.Errorf("%s/%s: stats %+v != oracle %+v",
					nsFast.TargetClass, psFast.Path, *psFast.Stats, *psSlow.Stats)
			}
		}
	}
}

func TestAnnotateIdempotent(t *testing.T) {
	st := smallGraph()
	sg := studentShapes(t)
	if err := Annotate(sg, st); err != nil {
		t.Fatal(err)
	}
	first := *sg.ByClass(ns + "Student").Property(ns + "takes").Stats
	if err := Annotate(sg, st); err != nil {
		t.Fatal(err)
	}
	second := *sg.ByClass(ns + "Student").Property(ns + "takes").Stats
	if first != second {
		t.Errorf("re-annotation changed stats: %+v vs %+v", first, second)
	}
}
