// Package annotator implements the paper's Shapes Annotator (Section 5):
// it extends a SHACL shapes graph with statistics computed from the data
// graph — instance counts for node shapes and triple counts, per-instance
// min/max counts, and distinct object counts for property shapes.
//
// Annotate computes all statistics in a single pass over the subject-
// grouped SPO index. AnnotateWithQueries computes the same statistics by
// literally executing the analytical basic graph patterns the paper
// describes (e.g. SELECT * WHERE { ?x rdf:type C . ?x p ?o }) through the
// query engine; it is orders of magnitude slower and exists as a
// cross-checking oracle for tests.
package annotator

import (
	"fmt"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"

	"rdfshapes/internal/engine"
)

// Annotate fills in statistics for every shape of sg from st. Existing
// statistics are recomputed. Property shapes whose (class, predicate)
// pair does not occur in the data receive zero statistics.
func Annotate(sg *shacl.ShapesGraph, st *store.Store) error {
	tid := st.TypeID()
	if tid == 0 && sg.Len() > 0 {
		return fmt.Errorf("annotator: data graph has no rdf:type triples but shapes graph has %d shapes", sg.Len())
	}

	// Map class/predicate dictionary IDs to the shapes they annotate.
	shapeOf := map[store.ID]*shacl.NodeShape{}
	for _, ns := range sg.Shapes() {
		if id, ok := st.Dict().Lookup(rdf.NewIRI(ns.TargetClass)); ok {
			shapeOf[id] = ns
		}
		// Classes absent from the data keep zero counts, set below.
	}

	type propKey struct {
		class store.ID
		pred  store.ID
	}
	type propAgg struct {
		count      int64
		subjects   int64
		minPerInst int64
		maxPerInst int64
		objects    map[store.ID]struct{}
	}
	aggs := map[propKey]*propAgg{}

	predID := map[string]store.ID{}
	for _, ns := range sg.Shapes() {
		for _, ps := range ns.Properties {
			if id, ok := st.Dict().Lookup(rdf.NewIRI(ps.Path)); ok {
				predID[ps.Path] = id
			}
		}
	}

	st.ForEachSubject(func(subject store.ID, triples []store.IDTriple) bool {
		// Collect the subject's classes that have shapes.
		var classes []store.ID
		for _, t := range triples {
			if t.P == tid {
				if _, ok := shapeOf[t.O]; ok {
					classes = append(classes, t.O)
				}
			}
		}
		if len(classes) == 0 {
			return true
		}
		// triples are sorted by (P,O): walk predicate runs.
		start := 0
		for i := 1; i <= len(triples); i++ {
			if i < len(triples) && triples[i].P == triples[start].P {
				continue
			}
			run := triples[start:i]
			start = i
			p := run[0].P
			if p == tid {
				continue
			}
			for _, cls := range classes {
				key := propKey{cls, p}
				n := int64(len(run))
				agg := aggs[key]
				if agg == nil {
					agg = &propAgg{minPerInst: n, maxPerInst: n, objects: map[store.ID]struct{}{}}
					aggs[key] = agg
				}
				agg.count += n
				agg.subjects++
				if n < agg.minPerInst {
					agg.minPerInst = n
				}
				if n > agg.maxPerInst {
					agg.maxPerInst = n
				}
				for _, t := range run {
					agg.objects[t.O] = struct{}{}
				}
			}
		}
		return true
	})

	for _, ns := range sg.Shapes() {
		clsID, inData := st.Dict().Lookup(rdf.NewIRI(ns.TargetClass))
		if inData {
			ns.Count = int64(st.Count(store.IDTriple{P: tid, O: clsID}))
		} else {
			ns.Count = 0
		}
		for _, ps := range ns.Properties {
			stats := &shacl.PropStats{}
			if inData {
				if pid, ok := predID[ps.Path]; ok {
					if agg := aggs[propKey{clsID, pid}]; agg != nil {
						stats.Count = agg.count
						stats.DistinctCount = int64(len(agg.objects))
						stats.DistinctSubjectCount = agg.subjects
						stats.MaxCount = agg.maxPerInst
						// Instances lacking the property pull the
						// per-instance minimum down to zero.
						if agg.subjects < ns.Count {
							stats.MinCount = 0
						} else {
							stats.MinCount = agg.minPerInst
						}
					}
				}
			}
			ps.Stats = stats
		}
	}
	return nil
}

// AnnotateWithQueries computes the same statistics as Annotate by
// executing the paper's analytical queries through the engine. It is the
// reference implementation used to validate the fast path.
func AnnotateWithQueries(sg *shacl.ShapesGraph, st *store.Store) error {
	for _, ns := range sg.Shapes() {
		// SELECT COUNT(*) WHERE { ?x rdf:type <C> }
		typeQ := []sparql.TriplePattern{{
			S: sparql.Variable("x"),
			P: sparql.Bound(rdf.NewIRI(rdf.RDFType)),
			O: sparql.Bound(rdf.NewIRI(ns.TargetClass)),
		}}
		res, err := engine.Run(st, typeQ, engine.Options{CountOnly: true})
		if err != nil {
			return fmt.Errorf("annotator: counting instances of %s: %w", ns.TargetClass, err)
		}
		ns.Count = res.Count
		for _, ps := range ns.Properties {
			if err := annotatePropertyWithQuery(ns, ps, st); err != nil {
				return err
			}
		}
	}
	return nil
}

func annotatePropertyWithQuery(ns *shacl.NodeShape, ps *shacl.PropertyShape, st *store.Store) error {
	// SELECT ?x ?o WHERE { ?x rdf:type <C> . ?x <p> ?o }
	q := []sparql.TriplePattern{
		{
			S: sparql.Variable("x"),
			P: sparql.Bound(rdf.NewIRI(rdf.RDFType)),
			O: sparql.Bound(rdf.NewIRI(ns.TargetClass)),
		},
		{
			S:     sparql.Variable("x"),
			P:     sparql.Bound(rdf.NewIRI(ps.Path)),
			O:     sparql.Variable("o"),
			Index: 1,
		},
	}
	res, err := engine.Run(st, q, engine.Options{})
	if err != nil {
		return fmt.Errorf("annotator: analyzing %s/%s: %w", ns.TargetClass, ps.Path, err)
	}
	xCol, oCol := -1, -1
	for i, v := range res.Vars {
		switch v {
		case "x":
			xCol = i
		case "o":
			oCol = i
		}
	}
	stats := &shacl.PropStats{}
	perInstance := map[store.ID]int64{}
	objects := map[store.ID]struct{}{}
	for _, row := range res.Rows {
		stats.Count++
		perInstance[row[xCol]]++
		objects[row[oCol]] = struct{}{}
	}
	stats.DistinctCount = int64(len(objects))
	stats.DistinctSubjectCount = int64(len(perInstance))
	for _, n := range perInstance {
		if stats.MinCount == 0 || n < stats.MinCount {
			stats.MinCount = n
		}
		if n > stats.MaxCount {
			stats.MaxCount = n
		}
	}
	if int64(len(perInstance)) < ns.Count {
		stats.MinCount = 0
	}
	ps.Stats = stats
	return nil
}
