package integration

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"rdfshapes/internal/bench"
	"rdfshapes/internal/core"
	"rdfshapes/internal/engine"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// sortRows orders a row set lexicographically so the merge path's
// merge-key-ordered output can be compared to the nested-loop path's
// index-ordered output as multisets.
func sortRows(rows [][]store.ID) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// mergeDatasets builds the three benchmark datasets once per test.
func mergeDatasets(t *testing.T) []*bench.Dataset {
	t.Helper()
	builders := []func() (*bench.Dataset, error){
		func() (*bench.Dataset, error) { return bench.LUBMDataset(bench.Small) },
		func() (*bench.Dataset, error) { return bench.WatDivDataset(bench.Small) },
		func() (*bench.Dataset, error) { return bench.YAGODataset(bench.Small) },
	}
	out := make([]*bench.Dataset, 0, len(builders))
	for _, build := range builders {
		d, err := build()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

// TestMergeDifferentialWorkloads is the equivalence proof for the
// sort-merge join: for every workload query of every dataset whose SS
// plan has an eligible merge prefix, a merge-forced run and the serial
// nested-loop oracle produce identical Count, identical rows as sorted
// multisets, identical Truncated flags, and the documented Intermediate
// relationship — identical from level width-1 on (so the final-step
// q-error feeding adaptive replanning is unchanged), less-or-equal on
// the strict prefix (the leapfrog's semi-join reduction).
// scripts/verify.sh runs this under -race.
func TestMergeDifferentialWorkloads(t *testing.T) {
	for _, d := range mergeDatasets(t) {
		pl, err := d.Planner("SS")
		if err != nil {
			t.Fatal(err)
		}
		t.Run(d.Name, func(t *testing.T) {
			eligible := 0
			for _, wq := range d.Queries {
				q, err := wq.Parse()
				if err != nil {
					t.Fatalf("%s: %v", wq.Name, err)
				}
				plan := pl.Plan(q)
				mv, mw := core.MergePrefix(plan.Steps, core.LeadAvailableProbe)
				if mw < 2 {
					continue
				}
				eligible++
				order := plan.Order()
				base := engine.Options{Filters: q.Filters, Optionals: q.Optionals, OptionalFilters: q.OptionalFilters}

				countOpts := base
				countOpts.CountOnly = true
				oracle, err := engine.Run(d.Store, order, countOpts)
				if err != nil {
					t.Fatalf("%s oracle: %v", wq.Name, err)
				}
				mergeOpts := countOpts
				mergeOpts.MergeWidth = mw
				mergeOpts.MergeVar = mv
				merged, err := engine.Run(d.Store, order, mergeOpts)
				if err != nil {
					t.Fatalf("%s merge: %v", wq.Name, err)
				}
				if merged.MergeWidth != mw {
					t.Errorf("%s: engine fell back (MergeWidth %d, planner said %d on ?%s)",
						wq.Name, merged.MergeWidth, mw, mv)
					continue
				}
				if oracle.Count != merged.Count {
					t.Errorf("%s: Count %d (oracle) != %d (merge w=%d ?%s)",
						wq.Name, oracle.Count, merged.Count, mw, mv)
				}
				if oracle.Truncated != merged.Truncated || oracle.TimedOut != merged.TimedOut {
					t.Errorf("%s: flags differ: oracle trunc=%v timeout=%v, merge trunc=%v timeout=%v",
						wq.Name, oracle.Truncated, oracle.TimedOut, merged.Truncated, merged.TimedOut)
				}
				for i := range oracle.Intermediate {
					switch {
					case i >= mw-1:
						if merged.Intermediate[i] != oracle.Intermediate[i] {
							t.Errorf("%s: Intermediate[%d] = %d (merge) != %d (oracle); levels >= width-1 must match exactly",
								wq.Name, i, merged.Intermediate[i], oracle.Intermediate[i])
						}
					default:
						if merged.Intermediate[i] > oracle.Intermediate[i] {
							t.Errorf("%s: Intermediate[%d] = %d (merge) > %d (oracle); prefix levels are semi-join-reduced",
								wq.Name, i, merged.Intermediate[i], oracle.Intermediate[i])
						}
					}
				}

				if oracle.Count > maxDiffRows {
					continue
				}
				serial, err := engine.Run(d.Store, order, base)
				if err != nil {
					t.Fatalf("%s oracle rows: %v", wq.Name, err)
				}
				rowOpts := base
				rowOpts.MergeWidth = mw
				rowOpts.MergeVar = mv
				mrows, err := engine.Run(d.Store, order, rowOpts)
				if err != nil {
					t.Fatalf("%s merge rows: %v", wq.Name, err)
				}
				sortRows(serial.Rows)
				sortRows(mrows.Rows)
				if !reflect.DeepEqual(serial.Rows, mrows.Rows) {
					t.Errorf("%s: merge row multiset differs from oracle (%d vs %d rows)",
						wq.Name, len(mrows.Rows), len(serial.Rows))
				}
			}
			if eligible == 0 {
				t.Errorf("%s: no workload query has an eligible merge prefix; the differential proved nothing", d.Name)
			} else {
				t.Logf("%s: %d/%d workload queries merge-eligible", d.Name, eligible, len(d.Queries))
			}
		})
	}
}

// TestMergeGovernorEquivalence pins the governor contracts on the
// batch-at-a-time merge path: a MaxRows budget that trips mid-run (and
// mid-block, since budgets are checked per emitted row inside the block
// cross-product) must stop both paths at exactly the same row count
// with Truncated set, and a MaxIntermediate trip must mark both
// Truncated. scripts/verify.sh runs this under -race.
func TestMergeGovernorEquivalence(t *testing.T) {
	for _, d := range mergeDatasets(t) {
		pl, err := d.Planner("SS")
		if err != nil {
			t.Fatal(err)
		}
		t.Run(d.Name, func(t *testing.T) {
			for _, wq := range d.Queries {
				q, err := wq.Parse()
				if err != nil {
					t.Fatalf("%s: %v", wq.Name, err)
				}
				plan := pl.Plan(q)
				mv, mw := core.MergePrefix(plan.Steps, core.LeadAvailableProbe)
				if mw < 2 {
					continue
				}
				order := plan.Order()
				base := engine.Options{Filters: q.Filters, Optionals: q.Optionals, OptionalFilters: q.OptionalFilters, CountOnly: true}
				full, err := engine.Run(d.Store, order, base)
				if err != nil {
					t.Fatalf("%s: %v", wq.Name, err)
				}
				if full.Count < 2 {
					continue
				}

				// Trip MaxRows halfway through the enumeration: on merge
				// plans that is mid-block whenever a merge key's block
				// cross-product spans the boundary.
				budget := base
				budget.MaxRows = full.Count / 2
				nl, err := engine.Run(d.Store, order, budget)
				if err != nil {
					t.Fatalf("%s nl budget: %v", wq.Name, err)
				}
				budget.MergeWidth = mw
				budget.MergeVar = mv
				mg, err := engine.Run(d.Store, order, budget)
				if err != nil {
					t.Fatalf("%s merge budget: %v", wq.Name, err)
				}
				if nl.Count != budget.MaxRows || mg.Count != budget.MaxRows {
					t.Errorf("%s: MaxRows=%d produced %d (nl) / %d (merge) rows",
						wq.Name, budget.MaxRows, nl.Count, mg.Count)
				}
				if !nl.Truncated || !mg.Truncated {
					t.Errorf("%s: Truncated = %v (nl) / %v (merge), want true/true",
						wq.Name, nl.Truncated, mg.Truncated)
				}

				// A tiny MaxIntermediate must stop both paths as Truncated.
				tiny := base
				tiny.MaxIntermediate = 1
				nlT, err := engine.Run(d.Store, order, tiny)
				if err != nil {
					t.Fatalf("%s nl tiny: %v", wq.Name, err)
				}
				tiny.MergeWidth = mw
				tiny.MergeVar = mv
				mgT, err := engine.Run(d.Store, order, tiny)
				if err != nil {
					t.Fatalf("%s merge tiny: %v", wq.Name, err)
				}
				if !nlT.Truncated || !mgT.Truncated {
					t.Errorf("%s: MaxIntermediate=1 Truncated = %v (nl) / %v (merge)",
						wq.Name, nlT.Truncated, mgT.Truncated)
				}
			}
		})
	}
}

// TestMergeSelectedOnWorkload is the acceptance pin: the cost-based
// annotation (not a test-only forcing) must select merge on at least
// one LUBM and one WatDiv workload query, and the decision must be
// visible in the plan string.
func TestMergeSelectedOnWorkload(t *testing.T) {
	for _, d := range mergeDatasets(t) {
		name := strings.ToLower(d.Name)
		if name != "lubm" && name != "watdiv" {
			continue
		}
		pl, err := d.Planner("SS")
		if err != nil {
			t.Fatal(err)
		}
		selected := 0
		for _, wq := range d.Queries {
			q, err := wq.Parse()
			if err != nil {
				t.Fatalf("%s: %v", wq.Name, err)
			}
			plan := pl.Plan(q)
			core.AnnotatePhysical(plan, core.LeadAvailableProbe, core.SourceLegRows(d.Store))
			if plan.MergeWidth >= 2 {
				selected++
				if !strings.Contains(plan.String(), " algo=merge") {
					t.Errorf("%s/%s: MergeWidth=%d but plan string lacks algo=merge: %s",
						d.Name, wq.Name, plan.MergeWidth, plan.String())
				}
			}
		}
		if selected == 0 {
			t.Errorf("%s: cost model selected merge on no workload query", d.Name)
		} else {
			t.Logf("%s: merge selected on %d/%d workload queries", d.Name, selected, len(d.Queries))
		}
	}
}

// TestRepeatedVarDifferentialWorkloads pins repeated-variable patterns
// on every dataset across all three execution paths: serial nested
// loop (oracle), parallel, and a merge request — which must fall back
// (repeated variables make block cross-products unsound) and still
// return the oracle answer.
func TestRepeatedVarDifferentialWorkloads(t *testing.T) {
	queries := []string{
		`SELECT * WHERE { ?x ?p ?x }`,
		`SELECT * WHERE { ?s ?x ?x }`,
		`SELECT * WHERE { ?x ?x ?o }`,
		`SELECT * WHERE { ?x ?p ?x . ?x ?q ?y }`,
	}
	for _, d := range mergeDatasets(t) {
		t.Run(d.Name, func(t *testing.T) {
			for _, src := range queries {
				q := sparql.MustParse(src)
				base := engine.Options{CountOnly: true}
				oracle, err := engine.Run(d.Store, q.Patterns, base)
				if err != nil {
					t.Fatalf("%s: %v", src, err)
				}
				par := base
				par.Parallelism = 4
				pres, err := engine.Run(d.Store, q.Patterns, par)
				if err != nil {
					t.Fatalf("%s parallel: %v", src, err)
				}
				if pres.Count != oracle.Count {
					t.Errorf("%s: parallel Count %d != %d", src, pres.Count, oracle.Count)
				}
				if len(q.Patterns) >= 2 {
					mg := base
					mg.MergeWidth = 2
					mg.MergeVar = "x"
					mres, err := engine.Run(d.Store, q.Patterns, mg)
					if err != nil {
						t.Fatalf("%s merge: %v", src, err)
					}
					if mres.MergeWidth != 0 {
						t.Errorf("%s: merge accepted a repeated-var prefix (width %d)", src, mres.MergeWidth)
					}
					if mres.Count != oracle.Count {
						t.Errorf("%s: merge-fallback Count %d != %d", src, mres.Count, oracle.Count)
					}
				}
			}
		})
	}
}
