package integration

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rdfshapes"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
)

// fragments are tokens that stress the parsers' edge cases when
// concatenated randomly.
var fragments = []string{
	"SELECT", "ASK", "WHERE", "PREFIX", "FILTER", "OPTIONAL", "UNION",
	"ORDER", "BY", "DESC", "ASC", "LIMIT", "OFFSET", "COUNT", "AS",
	"DISTINCT", "{", "}", "(", ")", ".", ";", ",", "*", "/", "^", "a",
	"?x", "?y", "?", "<http://x/p>", "<", ">", "ex:p", ":", "_:b", "_:",
	`"lit"`, `"`, `"x"@en`, `"x"@`, `"5"^^<http://x/int>`, "^^", "5",
	"-3", "1.5", "-", "true", "false", "@prefix", "@base", "[", "]",
	"# comment", "\n", "\t", "=", "!=", "<=", ">=", "!", "|",
}

func randomInput(r *rand.Rand, maxTokens int) string {
	n := 1 + r.Intn(maxTokens)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(fragments[r.Intn(len(fragments))])
		if r.Intn(3) > 0 {
			sb.WriteByte(' ')
		}
	}
	return sb.String()
}

// TestSPARQLParserNeverPanics feeds token soup to the SPARQL parser: it
// must return (query, nil) or (nil, error), never panic.
func TestSPARQLParserNeverPanics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			src := randomInput(r, 30)
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("panic on %q: %v", src, p)
					}
				}()
				q, err := sparql.Parse(src)
				if err == nil && q == nil {
					t.Fatalf("nil query without error for %q", src)
				}
			}()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestTurtleParserNeverPanics does the same for the Turtle reader.
func TestTurtleParserNeverPanics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			src := randomInput(r, 30)
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("panic on %q: %v", src, p)
					}
				}()
				_, _ = rdf.ParseTurtle(strings.NewReader(src))
			}()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestNTriplesParserNeverPanics covers the N-Triples reader, including
// raw byte noise beyond the token soup.
func TestNTriplesParserNeverPanics(t *testing.T) {
	f := func(seed int64, raw []byte) bool {
		r := rand.New(rand.NewSource(seed))
		inputs := []string{randomInput(r, 30), string(raw)}
		for _, src := range inputs {
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("panic on %q: %v", src, p)
					}
				}()
				_, _ = rdf.ParseNTriples(strings.NewReader(src))
			}()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestParsedQueriesExecuteSafely: whatever the parser accepts, the rest
// of the pipeline (validation happened at parse time) must not panic.
func TestParsedQueriesExecuteSafely(t *testing.T) {
	data := `<http://x/a> <http://x/p> <http://x/b> .
<http://x/a> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/T> .
`
	g, err := rdf.ParseNTriples(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	db, err := rdfshapes.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 10; i++ {
			src := randomInput(r, 25)
			q, err := sparql.Parse(src)
			if err != nil {
				continue
			}
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("panic executing %q: %v", src, p)
					}
				}()
				_, _ = db.Query(q.String())
			}()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
