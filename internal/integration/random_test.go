package integration

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rdfshapes/internal/annotator"
	"rdfshapes/internal/baselines/charsets"
	"rdfshapes/internal/baselines/heuristic"
	"rdfshapes/internal/baselines/selectivity"
	"rdfshapes/internal/baselines/sumrdf"
	"rdfshapes/internal/cardinality"
	"rdfshapes/internal/core"
	"rdfshapes/internal/engine"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// randomWorld builds a random typed graph and a random connected BGP
// over its vocabulary.
func randomWorld(r *rand.Rand) (*store.Store, *sparql.Query) {
	nClasses := 2 + r.Intn(3)
	nPreds := 2 + r.Intn(4)
	nNodes := 10 + r.Intn(40)
	iri := func(kind string, i int) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("http://x/%s%d", kind, i))
	}
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	for i := 0; i < nNodes; i++ {
		g.Append(iri("n", i), typ, iri("C", r.Intn(nClasses)))
		for t := 0; t < 1+r.Intn(3); t++ {
			g.Append(iri("n", i), iri("p", r.Intn(nPreds)), iri("n", r.Intn(nNodes)))
		}
	}
	st := store.Load(g)

	// random connected query: start with a pattern, then extend reusing
	// bound variables
	nPatterns := 2 + r.Intn(4)
	vars := []string{"v0", "v1"}
	patterns := []sparql.TriplePattern{{
		S:     sparql.Variable("v0"),
		P:     sparql.Bound(iri("p", r.Intn(nPreds))),
		O:     sparql.Variable("v1"),
		Index: 0,
	}}
	for i := 1; i < nPatterns; i++ {
		shared := vars[r.Intn(len(vars))]
		fresh := fmt.Sprintf("v%d", len(vars))
		vars = append(vars, fresh)
		var tp sparql.TriplePattern
		switch r.Intn(4) {
		case 0: // type pattern on a shared variable
			tp = sparql.TriplePattern{
				S: sparql.Variable(shared),
				P: sparql.Bound(rdf.NewIRI(rdf.RDFType)),
				O: sparql.Bound(iri("C", r.Intn(nClasses))),
			}
		case 1: // shared as subject
			tp = sparql.TriplePattern{
				S: sparql.Variable(shared),
				P: sparql.Bound(iri("p", r.Intn(nPreds))),
				O: sparql.Variable(fresh),
			}
		case 2: // shared as object
			tp = sparql.TriplePattern{
				S: sparql.Variable(fresh),
				P: sparql.Bound(iri("p", r.Intn(nPreds))),
				O: sparql.Variable(shared),
			}
		default: // bound object
			tp = sparql.TriplePattern{
				S: sparql.Variable(shared),
				P: sparql.Bound(iri("p", r.Intn(nPreds))),
				O: sparql.Bound(iri("n", r.Intn(nNodes))),
			}
		}
		tp.Index = i
		patterns = append(patterns, tp)
	}
	return st, &sparql.Query{Patterns: patterns}
}

// TestPlannersAgreeOnRandomQueries is the central cross-component
// property: for random graphs and random queries, every planner produces
// a complete permutation of the BGP, and executing any of those orders
// yields the same result count.
func TestPlannersAgreeOnRandomQueries(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st, q := randomWorld(r)
		global := gstats.Compute(st)
		shapes, err := shacl.InferShapes(st)
		if err != nil {
			t.Fatal(err)
		}
		if err := annotator.Annotate(shapes, st); err != nil {
			t.Fatal(err)
		}
		summary, err := sumrdf.Build(st, global, 64)
		if err != nil {
			t.Fatal(err)
		}
		planners := []core.Planner{
			&core.ShapeFirstPlanner{SS: cardinality.NewShapeEstimator(shapes, global)},
			&core.EstimatorPlanner{Est: cardinality.NewGlobalEstimator(global)},
			heuristic.New(),
			selectivity.New(global),
			&core.EstimatorPlanner{Est: charsets.Build(st, global), Label: "CS"},
			&core.EstimatorPlanner{Est: summary, Label: "SumRDF"},
		}
		baseline := int64(-1)
		for _, pl := range planners {
			plan := pl.Plan(q)
			if len(plan.Steps) != len(q.Patterns) {
				t.Errorf("seed %d: %s plan has %d steps, want %d", seed, pl.Name(), len(plan.Steps), len(q.Patterns))
				return false
			}
			seen := map[int]bool{}
			for _, s := range plan.Steps {
				if seen[s.Pattern.Index] {
					t.Errorf("seed %d: %s plan repeats pattern %d", seed, pl.Name(), s.Pattern.Index)
					return false
				}
				seen[s.Pattern.Index] = true
			}
			if plan.Cost < 0 || math.IsNaN(plan.Cost) || math.IsInf(plan.Cost, 0) {
				t.Errorf("seed %d: %s plan cost = %v", seed, pl.Name(), plan.Cost)
				return false
			}
			er, err := engine.Run(st, plan.Order(), engine.Options{CountOnly: true})
			if err != nil {
				t.Errorf("seed %d: %s: %v", seed, pl.Name(), err)
				return false
			}
			if baseline == -1 {
				baseline = er.Count
			} else if er.Count != baseline {
				t.Errorf("seed %d: %s count = %d, others = %d", seed, pl.Name(), er.Count, baseline)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEstimatorsFiniteOnRandomQueries: every estimator must return
// finite, non-negative statistics for every pattern of random queries.
func TestEstimatorsFiniteOnRandomQueries(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st, q := randomWorld(r)
		global := gstats.Compute(st)
		shapes, err := shacl.InferShapes(st)
		if err != nil {
			t.Fatal(err)
		}
		if err := annotator.Annotate(shapes, st); err != nil {
			t.Fatal(err)
		}
		summary, err := sumrdf.Build(st, global, 64)
		if err != nil {
			t.Fatal(err)
		}
		ests := []cardinality.Estimator{
			cardinality.NewGlobalEstimator(global),
			cardinality.NewShapeEstimator(shapes, global),
			charsets.Build(st, global),
			summary,
		}
		for _, est := range ests {
			for _, tp := range q.Patterns {
				ts := est.EstimateTP(q, tp)
				if ts.Card < 0 || math.IsNaN(ts.Card) || math.IsInf(ts.Card, 0) ||
					ts.DSC < 0 || ts.DOC < 0 {
					t.Errorf("seed %d: %s estimate for %v = %+v", seed, est.Name(), tp, ts)
					return false
				}
			}
			final, steps := cardinality.SequenceEstimate(q, q.Patterns, est)
			if final < 0 || math.IsNaN(final) || math.IsInf(final, 0) {
				t.Errorf("seed %d: %s sequence estimate = %v (%v)", seed, est.Name(), final, steps)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
