package integration

import (
	"reflect"
	"testing"

	"rdfshapes"
	"rdfshapes/internal/datagen/lubm"
	"rdfshapes/internal/datagen/watdiv"
	"rdfshapes/internal/datagen/yago"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
	"rdfshapes/internal/workloads"
)

// TestShardedDifferentialWorkloads is the equivalence proof for the
// shard coordinator: for every workload query of every dataset, a
// WithShards(4) DB and an unsharded DB over the same data produce the
// same plan, identical Count, and (for results up to maxDiffRows)
// identical rows in identical order. It also pins that statistics-driven
// shard pruning actually fires across the workloads — the source
// selection the subsystem exists for. scripts/verify.sh runs this under
// -race.
func TestShardedDifferentialWorkloads(t *testing.T) {
	cases := []struct {
		name   string
		data   func() rdf.Graph
		shapes func() *shacl.ShapesGraph // nil: infer from the data
		qs     []workloads.Query
	}{
		{
			name:   "LUBM",
			data:   func() rdf.Graph { return lubm.Generate(lubm.Config{Universities: 1, Seed: 7}) },
			shapes: lubm.Shapes,
			qs:     workloads.LUBM(),
		},
		{
			name:   "WatDiv",
			data:   func() rdf.Graph { return watdiv.Generate(watdiv.Config{Products: 1500, Seed: 11}) },
			shapes: watdiv.Shapes,
			qs:     workloads.WatDiv(),
		},
		{
			name: "YAGO-4",
			data: func() rdf.Graph { return yago.Generate(yago.Config{Entities: 8000, Seed: 13}) },
			qs:   workloads.YAGO(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Annotation mutates the shapes graph, so each DB gets its own.
			mkOpts := func(extra ...rdfshapes.Option) []rdfshapes.Option {
				if tc.shapes != nil {
					extra = append(extra, rdfshapes.WithShapesGraph(tc.shapes()))
				}
				return extra
			}
			plain, err := rdfshapes.Load(tc.data(), mkOpts()...)
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()
			sharded, err := rdfshapes.Load(tc.data(), mkOpts(rdfshapes.WithShards(4))...)
			if err != nil {
				t.Fatal(err)
			}
			defer sharded.Close()
			if got := sharded.Sharded(); got != 4 {
				t.Fatalf("Sharded() = %d, want 4", got)
			}

			for _, wq := range tc.qs {
				wantCount, err := plain.Count(wq.Text)
				if err != nil {
					t.Fatalf("%s unsharded count: %v", wq.Name, err)
				}
				gotCount, err := sharded.Count(wq.Text)
				if err != nil {
					t.Fatalf("%s sharded count: %v", wq.Name, err)
				}
				if gotCount != wantCount {
					t.Errorf("%s: Count %d (sharded) != %d (unsharded)", wq.Name, gotCount, wantCount)
				}
				if wantCount > maxDiffRows {
					continue
				}
				want, err := plain.Query(wq.Text)
				if err != nil {
					t.Fatalf("%s unsharded: %v", wq.Name, err)
				}
				got, err := sharded.Query(wq.Text)
				if err != nil {
					t.Fatalf("%s sharded: %v", wq.Name, err)
				}
				if got.Plan != want.Plan {
					t.Errorf("%s: plan diverged:\nsharded:   %s\nunsharded: %s", wq.Name, got.Plan, want.Plan)
				}
				if !reflect.DeepEqual(got.Vars, want.Vars) {
					t.Errorf("%s: Vars %v (sharded) != %v (unsharded)", wq.Name, got.Vars, want.Vars)
				}
				if !reflect.DeepEqual(got.Rows, want.Rows) {
					t.Errorf("%s: sharded rows differ from unsharded (%d vs %d rows)",
						wq.Name, len(got.Rows), len(want.Rows))
				}
			}

			own, stats := sharded.Shards().Pruned()
			if own+stats == 0 {
				t.Errorf("no shard scans pruned across the %s workload", tc.name)
			}
		})
	}
}
