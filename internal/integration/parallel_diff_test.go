package integration

import (
	"reflect"
	"testing"

	"rdfshapes/internal/bench"
	"rdfshapes/internal/engine"
)

// maxDiffRows bounds full row-set comparison: queries whose result is
// larger (the unbounded cross-product categories) are still compared on
// Count, Ops, and Intermediate, which the counting run establishes.
const maxDiffRows = 50000

// TestParallelDifferentialWorkloads is the equivalence proof for the
// parallel executor: for every workload query of every dataset, a K=4
// parallel run and a serial run produce identical Count, identical Ops,
// identical per-pattern Intermediate sums, and (for results up to
// maxDiffRows) identical rows in identical order — which subsumes the
// sorted-multiset equality the morsel merge guarantees by construction.
// scripts/verify.sh runs this under -race to also catch worker-state
// sharing bugs.
func TestParallelDifferentialWorkloads(t *testing.T) {
	builders := []func() (*bench.Dataset, error){
		func() (*bench.Dataset, error) { return bench.LUBMDataset(bench.Small) },
		func() (*bench.Dataset, error) { return bench.WatDivDataset(bench.Small) },
		func() (*bench.Dataset, error) { return bench.YAGODataset(bench.Small) },
	}
	for _, build := range builders {
		d, err := build()
		if err != nil {
			t.Fatal(err)
		}
		pl, err := d.Planner("SS")
		if err != nil {
			t.Fatal(err)
		}
		t.Run(d.Name, func(t *testing.T) {
			for _, wq := range d.Queries {
				q, err := wq.Parse()
				if err != nil {
					t.Fatalf("%s: %v", wq.Name, err)
				}
				order := pl.Plan(q).Order()
				base := engine.Options{Filters: q.Filters, Optionals: q.Optionals}

				countOpts := base
				countOpts.CountOnly = true
				serialCount, err := engine.Run(d.Store, order, countOpts)
				if err != nil {
					t.Fatalf("%s serial: %v", wq.Name, err)
				}
				parCountOpts := countOpts
				parCountOpts.Parallelism = 4
				parCount, err := engine.Run(d.Store, order, parCountOpts)
				if err != nil {
					t.Fatalf("%s parallel: %v", wq.Name, err)
				}
				if serialCount.Count != parCount.Count {
					t.Errorf("%s: Count %d (serial) != %d (parallel)", wq.Name, serialCount.Count, parCount.Count)
				}
				if serialCount.Ops != parCount.Ops {
					t.Errorf("%s: Ops %d (serial) != %d (parallel)", wq.Name, serialCount.Ops, parCount.Ops)
				}
				if !reflect.DeepEqual(serialCount.Intermediate, parCount.Intermediate) {
					t.Errorf("%s: Intermediate %v (serial) != %v (parallel)",
						wq.Name, serialCount.Intermediate, parCount.Intermediate)
				}

				if serialCount.Count > maxDiffRows {
					continue
				}
				serial, err := engine.Run(d.Store, order, base)
				if err != nil {
					t.Fatalf("%s serial rows: %v", wq.Name, err)
				}
				parOpts := base
				parOpts.Parallelism = 4
				par, err := engine.Run(d.Store, order, parOpts)
				if err != nil {
					t.Fatalf("%s parallel rows: %v", wq.Name, err)
				}
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("%s: materialized parallel result differs from serial", wq.Name)
				}
			}
		})
	}
}
