// Package integration holds cross-component property-based tests that
// exercise planners, estimators, and the engine together on randomly
// generated graphs and queries — chiefly the invariant that every
// planner's order yields the same result count.
package integration
