package repl

import (
	"testing"
	"time"
)

func backoffFollower(base, max time.Duration, seed int64) *Follower {
	return NewFollower(FollowerConfig{
		Primary:     "http://unused.invalid",
		BackoffBase: base,
		BackoffMax:  max,
		Seed:        seed,
	})
}

// TestBackoffNeverZero pins the hot-spin guard: no failure count and no
// configured base — however degenerate — may produce a zero (or
// negative) delay, or a fleet of followers would hammer a down primary
// in a busy loop.
func TestBackoffNeverZero(t *testing.T) {
	for _, base := range []time.Duration{1, 2, 10, time.Microsecond, time.Millisecond, 50 * time.Millisecond} {
		f := backoffFollower(base, 5*time.Second, 7)
		for n := 0; n <= 20; n++ {
			for i := 0; i < 50; i++ {
				if d := f.backoffDelay(n); d <= 0 {
					t.Fatalf("base=%v n=%d: backoffDelay = %v, want > 0", base, n, d)
				}
			}
		}
	}
}

// TestBackoffGrowsAndCaps pins the exponential shape: delays grow with
// the failure count, stay within [cap/2, cap] once saturated, and never
// exceed the cap no matter how long the divergence lasts.
func TestBackoffGrowsAndCaps(t *testing.T) {
	base, cap := 10*time.Millisecond, 160*time.Millisecond
	f := backoffFollower(base, cap, 1)

	// n=1 draws from [base/2, base].
	for i := 0; i < 100; i++ {
		d := f.backoffDelay(1)
		if d < base/2 || d > base {
			t.Fatalf("n=1: delay %v outside [%v, %v]", d, base/2, base)
		}
	}
	// Far past saturation the cap must hold — this is the "cap holds
	// across repeated divergence cycles" pin: a follower that has been
	// cut off for hours still wakes at the cap cadence, not beyond.
	for _, n := range []int{5, 6, 10, 100, 10000} {
		for i := 0; i < 100; i++ {
			d := f.backoffDelay(n)
			if d < cap/2 || d > cap {
				t.Fatalf("n=%d: delay %v outside [%v, %v]", n, d, cap/2, cap)
			}
		}
	}
}

// TestBackoffJitterSpreads pins the desynchronization property: two
// followers with different seeds must not draw identical delay
// sequences, or a fleet reconnects in lockstep after a primary outage.
func TestBackoffJitterSpreads(t *testing.T) {
	a := backoffFollower(50*time.Millisecond, 5*time.Second, 1)
	b := backoffFollower(50*time.Millisecond, 5*time.Second, 2)
	same := 0
	const draws = 50
	for i := 0; i < draws; i++ {
		if a.backoffDelay(4) == b.backoffDelay(4) {
			same++
		}
	}
	if same == draws {
		t.Fatal("two differently-seeded followers drew identical backoff sequences")
	}
}

// TestBackoffTinyCapStillBounded pins the floor/cap interaction: when
// the configured cap is below the 1ms hot-spin floor, the floor yields
// to the cap — the never-zero guarantee must not overshoot an
// explicitly tiny cap.
func TestBackoffTinyCapStillBounded(t *testing.T) {
	f := backoffFollower(2, 10, 3) // 2ns base, 10ns cap
	for n := 0; n <= 8; n++ {
		d := f.backoffDelay(n)
		if d <= 0 {
			t.Fatalf("n=%d: delay %v, want > 0", n, d)
		}
		if d > 10 {
			t.Fatalf("n=%d: delay %v exceeds the 10ns cap", n, d)
		}
	}
}
