package repl

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"rdfshapes/internal/wal"
)

// Primary serves the log-shipping endpoints over a Source. Mount its
// handlers at WALPath and SnapshotPath (internal/server does this for
// every durable, non-replica DB).
type Primary struct {
	src Source
}

// NewPrimary wraps a shipping source (typically the DB's *wal.Manager).
func NewPrimary(src Source) *Primary { return &Primary{src: src} }

// ServeWAL answers GET /repl/wal?gen=G&from=S with the encoded segment
// stream after (G, S). The response carries the primary's current
// generation and last sequence number in headers, so a caught-up
// follower learns it is caught up from an empty stream. A pruned
// generation answers 410 Gone — the follower's cue to re-bootstrap from
// /repl/snapshot.
func (p *Primary) ServeWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	gen, err := strconv.ParseUint(r.URL.Query().Get("gen"), 10, 64)
	if err != nil || gen == 0 {
		http.Error(w, "missing or invalid 'gen' parameter", http.StatusBadRequest)
		return
	}
	from := uint64(0)
	if s := r.URL.Query().Get("from"); s != "" {
		if from, err = strconv.ParseUint(s, 10, 64); err != nil {
			http.Error(w, "invalid 'from' parameter", http.StatusBadRequest)
			return
		}
	}
	segs, curGen, lastSeq, err := p.src.ReadSegments(gen, from)
	w.Header().Set(HeaderGeneration, strconv.FormatUint(curGen, 10))
	w.Header().Set(HeaderSeq, strconv.FormatUint(lastSeq, 10))
	switch {
	case err == nil:
	case errors.Is(err, wal.ErrGenPruned):
		http.Error(w, err.Error(), http.StatusGone)
		return
	case errors.Is(err, wal.ErrClosed):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(wal.EncodeSegments(segs))
}

// ServeSnapshot answers GET /repl/snapshot with the current checkpoint
// snapshot; the generation header tells the follower where to resume
// tailing — (gen, 0) pairs exactly with the snapshot contents.
func (p *Primary) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	gen, data, err := p.src.SnapshotData()
	if err != nil {
		if errors.Is(err, wal.ErrClosed) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set(HeaderGeneration, strconv.FormatUint(gen, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	_, _ = w.Write(data)
}
