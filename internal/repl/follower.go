package repl

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rdfshapes/internal/wal"
)

// Follower defaults.
const (
	DefaultPollInterval = 250 * time.Millisecond
	DefaultBackoffBase  = 50 * time.Millisecond
	DefaultBackoffMax   = 5 * time.Second
)

// FollowerConfig configures a Follower.
type FollowerConfig struct {
	// Primary is the primary's base URL (scheme://host:port).
	Primary string
	// Target applies shipped state; see the Target contract.
	Target Target
	// StartGen/StartSeq preset the replication cursor when the caller
	// already bootstrapped the target (the facade loads the initial
	// snapshot itself before constructing the DB). StartGen 0 makes the
	// follower's first sync a bootstrap.
	StartGen, StartSeq uint64
	// PollInterval is the tail cadence while healthy (default
	// DefaultPollInterval).
	PollInterval time.Duration
	// BackoffBase/BackoffMax bound the jittered exponential backoff
	// after a failed sync (defaults DefaultBackoffBase/DefaultBackoffMax).
	BackoffBase, BackoffMax time.Duration
	// Client is the HTTP client; nil selects a default with no overall
	// timeout (snapshot bodies can be large), relying on ctx instead.
	Client *http.Client
	// Seed seeds the backoff jitter; 0 derives one from the clock.
	Seed int64
	// Logf, when set, receives follower lifecycle messages.
	Logf func(format string, args ...any)
}

// Follower tails a primary: bootstrap once, then poll for the log
// suffix after the cursor, applying every record through the Target.
// All exported methods are safe for concurrent use with Run.
type Follower struct {
	cfg    FollowerConfig
	client *http.Client

	rngMu sync.Mutex
	rng   *rand.Rand

	// syncMu serializes whole replication rounds: without it a manual
	// Sync and the Run loop's poll could both observe the same stale
	// cursor (e.g. a pruned generation) and each re-bootstrap.
	syncMu sync.Mutex

	mu           sync.Mutex
	gen          uint64 // cursor: generation the next poll asks for
	applied      uint64 // cursor: last sequence number applied
	primarySeq   uint64 // primary's last seq as of the last good poll
	bootstrapped bool
	connected    bool
	lastErr      string
	started      time.Time
	lastCaughtUp time.Time
	bootstraps   int64
	reconnects   int64
	tornStreams  int64
	records      int64
}

// NewFollower builds a Follower; Run starts it.
func NewFollower(cfg FollowerConfig) *Follower {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	f := &Follower{
		cfg:     cfg,
		client:  client,
		rng:     rand.New(rand.NewSource(seed)),
		started: time.Now(),
	}
	if cfg.StartGen > 0 {
		f.gen = cfg.StartGen
		f.applied = cfg.StartSeq
		f.bootstrapped = true
	}
	return f
}

// Run tails the primary until ctx is done: sync, sleep (the poll
// interval while healthy, jittered exponential backoff after a
// failure), repeat. It returns ctx.Err().
func (f *Follower) Run(ctx context.Context) error {
	failures := 0
	for {
		err := f.Sync(ctx)
		var delay time.Duration
		switch {
		case err == nil:
			failures = 0
			delay = f.cfg.PollInterval
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			failures++
			delay = f.backoffDelay(failures)
			f.logf("repl: sync failed (attempt %d, retrying in %v): %v", failures, delay, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
}

// Sync performs one replication round synchronously: bootstrap when the
// cursor is unset, otherwise one poll-and-apply pass. Exposed so tests
// (and the facade's initial catch-up) can drive rounds deterministically.
// Rounds are mutually exclusive: a Sync concurrent with the Run loop
// waits for the in-flight round rather than acting on its stale cursor.
func (f *Follower) Sync(ctx context.Context) error {
	f.syncMu.Lock()
	defer f.syncMu.Unlock()
	f.mu.Lock()
	booted := f.bootstrapped
	f.mu.Unlock()
	if !booted {
		if err := f.bootstrap(ctx); err != nil {
			return err
		}
	}
	return f.poll(ctx)
}

// Status snapshots the follower's state.
func (f *Follower) Status() StatusResponse {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := StatusResponse{
		Role:           "replica",
		Generation:     f.gen,
		AppliedSeq:     f.applied,
		PrimarySeq:     f.primarySeq,
		Connected:      f.connected,
		Bootstraps:     f.bootstraps,
		Reconnects:     f.reconnects,
		TornStreams:    f.tornStreams,
		RecordsApplied: f.records,
		LastError:      f.lastErr,
	}
	if f.primarySeq > f.applied {
		st.LagRecords = f.primarySeq - f.applied
	}
	// Staleness is the time since the replica last proved itself caught
	// up; before the first catch-up it is the follower's whole lifetime.
	since := f.lastCaughtUp
	if since.IsZero() {
		since = f.started
	}
	st.StalenessSeconds = time.Since(since).Seconds()
	return st
}

// bootstrap fetches the primary's snapshot, hands it to the target, and
// resets the cursor to (snapshot generation, 0).
func (f *Follower) bootstrap(ctx context.Context) error {
	gen, data, err := FetchSnapshot(ctx, f.client, f.cfg.Primary)
	if err != nil {
		f.fail(true, err)
		return err
	}
	if err := f.cfg.Target.Bootstrap(gen, data); err != nil {
		f.fail(false, err)
		return fmt.Errorf("repl: applying bootstrap snapshot: %w", err)
	}
	f.mu.Lock()
	f.gen = gen
	f.applied = 0
	f.bootstrapped = true
	f.bootstraps++
	f.connected = true
	f.lastErr = ""
	f.mu.Unlock()
	f.logf("repl: bootstrapped from snapshot generation %d", gen)
	return nil
}

// poll requests the log suffix after the cursor and applies it.
func (f *Follower) poll(ctx context.Context) error {
	f.mu.Lock()
	gen, applied := f.gen, f.applied
	f.mu.Unlock()

	url := fmt.Sprintf("%s%s?gen=%d&from=%d", f.cfg.Primary, WALPath, gen, applied)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		f.fail(true, err)
		return err
	}
	defer resp.Body.Close()

	primarySeq, _ := strconv.ParseUint(resp.Header.Get(HeaderSeq), 10, 64)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// The cursor generation was checkpointed away while we lagged:
		// resume from a fresh snapshot.
		f.logf("repl: generation %d pruned on primary, re-bootstrapping", gen)
		if err := f.bootstrap(ctx); err != nil {
			return err
		}
		return f.poll(ctx)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("repl: wal request failed: %s: %s", resp.Status, body)
		f.fail(true, err)
		return err
	}

	if primarySeq < applied {
		// The primary acknowledges fewer commits than we applied: it lost
		// acknowledged state (a SyncNever crash, or a rebuilt primary).
		// Our suffix never happened — replace everything.
		f.logf("repl: primary seq %d behind applied %d, re-bootstrapping", primarySeq, applied)
		if err := f.bootstrap(ctx); err != nil {
			return err
		}
		return f.poll(ctx)
	}

	body, err := io.ReadAll(resp.Body)
	if err != nil {
		// Connection cut mid-stream: decode whatever arrived whole, then
		// resume from the new cursor on the next round.
		f.fail(true, err)
		f.applyStream(body)
		return err
	}
	if derr := f.applyStream(body); derr != nil {
		if wal.IsTorn(derr) {
			f.mu.Lock()
			f.tornStreams++
			f.lastErr = derr.Error()
			f.mu.Unlock()
			return derr
		}
		f.fail(false, derr)
		return derr
	}
	if err := f.cfg.Target.Flush(); err != nil {
		f.fail(false, err)
		return err
	}

	f.mu.Lock()
	f.primarySeq = primarySeq
	applied = f.applied
	f.mu.Unlock()
	if applied < primarySeq {
		// The headers promised lastSeq and the body was built in the same
		// locked read, so a clean decode that still leaves us short means
		// the stream was cut on a frame boundary: an incomplete round.
		f.mu.Lock()
		f.tornStreams++
		f.lastErr = fmt.Sprintf("incomplete stream: applied %d of %d", applied, primarySeq)
		f.mu.Unlock()
		return fmt.Errorf("repl: incomplete stream: applied %d, primary at %d", applied, primarySeq)
	}
	f.mu.Lock()
	f.connected = true
	f.lastErr = ""
	f.lastCaughtUp = time.Now()
	f.mu.Unlock()
	return nil
}

// applyStream decodes a segment stream and applies each fresh record,
// advancing the cursor record by record so any interruption resumes
// exactly after the last applied commit. Returns the decode error, if
// any; records before a tear have already been applied.
func (f *Follower) applyStream(body []byte) error {
	err := wal.DecodeSegments(body,
		func(g uint64) {
			// Reaching a segment header means every prior segment applied
			// fully; the cursor generation may advance.
			f.mu.Lock()
			if g > f.gen {
				f.gen = g
			}
			f.mu.Unlock()
		},
		func(g, seq uint64, b wal.Batch) error {
			f.mu.Lock()
			applied := f.applied
			f.mu.Unlock()
			if seq <= applied {
				return nil // replayed overlap; set-semantics make this safe to skip
			}
			if err := f.cfg.Target.Apply(seq, b); err != nil {
				return err
			}
			f.mu.Lock()
			f.applied = seq
			f.records++
			f.mu.Unlock()
			return nil
		})
	if err != nil {
		// Publish what did apply before the error surfaced.
		_ = f.cfg.Target.Flush()
	}
	return err
}

// fail records a failed round; transport marks a reconnect.
func (f *Follower) fail(transport bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.connected = false
	f.lastErr = err.Error()
	if transport {
		f.reconnects++
	}
}

// backoffDelay returns the jittered exponential delay after n
// consecutive failures: full backoff doubled per failure, capped, then
// drawn uniformly from [half, full] so a fleet of followers does not
// reconnect in lockstep.
func (f *Follower) backoffDelay(n int) time.Duration {
	d := f.cfg.BackoffBase
	for i := 1; i < n && d < f.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > f.cfg.BackoffMax {
		d = f.cfg.BackoffMax
	}
	f.rngMu.Lock()
	jittered := d/2 + time.Duration(f.rng.Int63n(int64(d/2)+1))
	f.rngMu.Unlock()
	// A sub-2ns base truncates d/2 to zero, which would turn the retry
	// loop into a hot spin against a down primary. Hold a 1ms floor
	// (never above the configured cap).
	if floor := min(time.Millisecond, f.cfg.BackoffMax); jittered < floor {
		jittered = floor
	}
	return jittered
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}
