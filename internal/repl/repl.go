// Package repl is the replication subsystem: WAL log shipping from a
// durable primary to read replicas, plus the health-checked read router
// in front of the fleet. See docs/REPLICATION.md.
//
// The primary side (Primary) serves two endpoints over the WAL
// manager's shipping surface:
//
//	GET /repl/wal?gen=G&from=S   framed WAL records after (G, S), one
//	                             segment per on-disk generation;
//	                             410 Gone when G has been pruned
//	GET /repl/snapshot           the current checkpoint snapshot, for
//	                             follower bootstrap
//
// The replica side (Follower) bootstraps from a streamed snapshot and
// then tails the log: every shipped batch is applied through the same
// live-apply + statistics-maintenance path the primary commits through,
// so a replica's planner statistics stay exact — the property the whole
// optimizer rests on. The follower owns the replication cursor
// (generation, applied seq), reconnects with jittered exponential
// backoff, resumes from its last applied offset after any tear, and
// re-bootstraps when the primary answers 410 (its generation was
// checkpointed away) or when the primary's sequence regresses below the
// replica's (a primary that lost acknowledged commits).
//
// Router fronts a primary and N replicas: reads round-robin over
// replicas that are ready and within the staleness bound, laggards are
// ejected until they catch back up, reads fail over to the primary when
// no replica qualifies, and when everything is behind the least-stale
// replica serves with an explicit X-Repl-Stale header so clients know
// the read is degraded.
package repl

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"rdfshapes/internal/wal"
)

// Endpoint paths and headers of the replication protocol.
const (
	WALPath      = "/repl/wal"
	SnapshotPath = "/repl/snapshot"
	StatusPath   = "/repl/status"

	// HeaderGeneration carries the primary's current WAL generation on
	// /repl/wal and the snapshot's generation on /repl/snapshot.
	HeaderGeneration = "X-Repl-Generation"
	// HeaderSeq carries the primary's last appended sequence number.
	HeaderSeq = "X-Repl-Seq"
	// HeaderStale marks a degraded read served from a replica beyond the
	// staleness bound; the value is the staleness in seconds.
	HeaderStale = "X-Repl-Stale"
)

// Source is the primary-side shipping surface; *wal.Manager implements
// it.
type Source interface {
	// ReadSegments returns the log suffix after (fromGen, fromSeq), the
	// current generation, and the last appended sequence number;
	// wal.ErrGenPruned when fromGen is no longer on disk.
	ReadSegments(fromGen, fromSeq uint64) ([]wal.Segment, uint64, uint64, error)
	// SnapshotData returns the current checkpoint snapshot and its
	// generation.
	SnapshotData() (uint64, []byte, error)
}

// Target is the replica-side apply surface, implemented by the facade:
// each call must route through the same commit path live updates take
// (live apply + incremental statistics maintenance), or replica plans
// diverge from the primary's.
type Target interface {
	// Bootstrap replaces the replica's contents with the snapshot for
	// generation gen (diffing against current contents, so a live
	// replica re-bootstraps without a cold restart).
	Bootstrap(gen uint64, snapshot []byte) error
	// Apply commits one shipped batch. Sequence numbers arrive strictly
	// increasing.
	Apply(seq uint64, b wal.Batch) error
	// Flush publishes applied state to readers (planner refresh); called
	// once per applied poll round rather than per record.
	Flush() error
}

// StatusResponse is the JSON shape of GET /repl/status, served by both
// primaries and replicas; the router consumes it for health checks.
type StatusResponse struct {
	// Role is "primary" or "replica".
	Role string `json:"role"`
	// Generation is the WAL generation: current on a primary, the
	// follower cursor's on a replica.
	Generation uint64 `json:"generation"`
	// AppliedSeq is the last sequence number applied locally (on a
	// primary, the last appended).
	AppliedSeq uint64 `json:"appliedSeq"`
	// PrimarySeq is the primary's last appended sequence number as of
	// the replica's last successful poll (equals AppliedSeq on a
	// primary).
	PrimarySeq uint64 `json:"primarySeq"`
	// LagRecords is PrimarySeq - AppliedSeq at the last poll.
	LagRecords uint64 `json:"lagRecords"`
	// StalenessSeconds is the time since the replica last observed
	// itself fully caught up (0 on a primary).
	StalenessSeconds float64 `json:"stalenessSeconds"`
	// Connected reports the last exchange with the primary succeeded.
	Connected bool `json:"connected"`
	// Bootstraps, Reconnects, TornStreams, and RecordsApplied count
	// follower lifecycle events since start.
	Bootstraps     int64 `json:"bootstraps"`
	Reconnects     int64 `json:"reconnects"`
	TornStreams    int64 `json:"tornStreams"`
	RecordsApplied int64 `json:"recordsApplied"`
	// LastError is the most recent follower error, empty when healthy.
	LastError string `json:"lastError,omitempty"`
}

// FetchSnapshot retrieves the primary's current checkpoint snapshot and
// its generation — the bootstrap half of the protocol, shared by the
// follower and the facade's initial replica open.
func FetchSnapshot(ctx context.Context, client *http.Client, primary string) (uint64, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, primary+SnapshotPath, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("repl: fetching snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, nil, fmt.Errorf("repl: snapshot request failed: %s: %s", resp.Status, body)
	}
	gen, err := strconv.ParseUint(resp.Header.Get(HeaderGeneration), 10, 64)
	if err != nil || gen == 0 {
		return 0, nil, fmt.Errorf("repl: snapshot response missing %s header", HeaderGeneration)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// The snapshot format carries its own checksum, so a torn body is
		// caught either here or at parse time — never applied silently.
		return 0, nil, fmt.Errorf("repl: reading snapshot stream: %w", err)
	}
	return gen, data, nil
}
