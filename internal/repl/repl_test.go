package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
	"rdfshapes/internal/wal"
)

// triple builds a deterministic test triple.
func triple(i int) rdf.Triple {
	return rdf.NewTriple(
		rdf.NewIRI(fmt.Sprintf("http://x/s%d", i)),
		rdf.NewIRI("http://x/p"),
		rdf.NewLiteral(fmt.Sprintf("v%d", i)),
	)
}

// storeTriples extracts a store's contents as a term-level set.
func storeTriples(st *store.Store) map[rdf.Triple]bool {
	out := map[rdf.Triple]bool{}
	st.Scan(store.IDTriple{}, func(tr store.IDTriple) bool {
		out[rdf.Triple{S: st.Dict().Term(tr.S), P: st.Dict().Term(tr.P), O: st.Dict().Term(tr.O)}] = true
		return true
	})
	return out
}

// memTarget is an in-memory Target: a term-level triple set plus a log
// of applied sequence numbers, with an optional injected apply failure
// to simulate a replica crash mid-apply.
type memTarget struct {
	mu         sync.Mutex
	triples    map[rdf.Triple]bool
	applied    []uint64
	bootstraps int
	flushes    int
	failAtSeq  uint64 // Apply(seq == failAtSeq) fails once, then clears
}

func newMemTarget() *memTarget { return &memTarget{triples: map[rdf.Triple]bool{}} }

func (t *memTarget) Bootstrap(gen uint64, snapshot []byte) error {
	st, err := store.ReadSnapshot(bytes.NewReader(snapshot))
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.triples = storeTriples(st)
	t.bootstraps++
	return nil
}

func (t *memTarget) Apply(seq uint64, b wal.Batch) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failAtSeq != 0 && seq == t.failAtSeq {
		t.failAtSeq = 0
		return fmt.Errorf("injected crash at seq %d", seq)
	}
	if n := len(t.applied); n > 0 && seq <= t.applied[n-1] {
		return fmt.Errorf("non-monotonic apply: %d after %d", seq, t.applied[n-1])
	}
	t.applied = append(t.applied, seq)
	for _, tr := range b.Insert {
		t.triples[tr] = true
	}
	for _, tr := range b.Delete {
		delete(t.triples, tr)
	}
	return nil
}

func (t *memTarget) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flushes++
	return nil
}

func (t *memTarget) snapshot() (map[rdf.Triple]bool, []uint64, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := make(map[rdf.Triple]bool, len(t.triples))
	for k, v := range t.triples {
		set[k] = v
	}
	return set, append([]uint64(nil), t.applied...), t.bootstraps
}

// primaryFixture is a WAL-backed primary behind an httptest server,
// plus the oracle triple set every applied commit folds into.
type primaryFixture struct {
	t      *testing.T
	mgr    *wal.Manager
	fs     *wal.MemFS
	srv    *httptest.Server
	mux    *http.ServeMux
	oracle map[rdf.Triple]bool
	nextID int
}

func newPrimaryFixture(t *testing.T, seedTriples int) *primaryFixture {
	t.Helper()
	fs := wal.NewMemFS()
	seed := store.New()
	oracle := map[rdf.Triple]bool{}
	for i := 0; i < seedTriples; i++ {
		tr := triple(i)
		seed.Add(tr)
		oracle[tr] = true
	}
	seed.Freeze()
	mgr, err := wal.Create("/data", wal.Options{FS: fs}, seed.WriteSnapshot)
	if err != nil {
		t.Fatalf("wal.Create: %v", err)
	}
	f := &primaryFixture{t: t, mgr: mgr, fs: fs, oracle: oracle, nextID: seedTriples}
	f.mux = http.NewServeMux()
	f.mount(mgr)
	f.srv = httptest.NewServer(f.mux)
	t.Cleanup(func() { f.srv.Close(); f.mgr.Close() })
	return f
}

// mount (re-)installs the shipping handlers over mgr; restart swaps in
// a recovered manager without changing the URL.
func (f *primaryFixture) mount(mgr *wal.Manager) {
	p := NewPrimary(mgr)
	f.mux = http.NewServeMux()
	f.mux.HandleFunc(WALPath, p.ServeWAL)
	f.mux.HandleFunc(SnapshotPath, p.ServeSnapshot)
	if f.srv != nil {
		f.srv.Config.Handler = f.mux
	}
}

// append logs n fresh single-insert commits and folds them into the
// oracle.
func (f *primaryFixture) append(n int) {
	f.t.Helper()
	for i := 0; i < n; i++ {
		tr := triple(f.nextID)
		f.nextID++
		if err := f.mgr.Append(wal.Batch{Insert: []rdf.Triple{tr}}); err != nil {
			f.t.Fatalf("Append: %v", err)
		}
		f.oracle[tr] = true
	}
}

// checkpoint rotates the WAL with the oracle's current contents.
func (f *primaryFixture) checkpoint() {
	f.t.Helper()
	st := store.New()
	for tr := range f.oracle {
		st.Add(tr)
	}
	st.Freeze()
	if _, err := f.mgr.Checkpoint(st.WriteSnapshot); err != nil {
		f.t.Fatalf("Checkpoint: %v", err)
	}
}

func newTestFollower(f *primaryFixture, tgt Target) *Follower {
	return NewFollower(FollowerConfig{
		Primary:      f.srv.URL,
		Target:       tgt,
		PollInterval: 5 * time.Millisecond,
		BackoffBase:  time.Millisecond,
		BackoffMax:   10 * time.Millisecond,
		Seed:         1,
	})
}

// mustSync runs one Sync and fails the test on error.
func mustSync(t *testing.T, fl *Follower) {
	t.Helper()
	if err := fl.Sync(context.Background()); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func assertConverged(t *testing.T, f *primaryFixture, tgt *memTarget) {
	t.Helper()
	set, applied, _ := tgt.snapshot()
	if !reflect.DeepEqual(set, f.oracle) {
		t.Fatalf("replica holds %d triples, oracle %d; sets differ", len(set), len(f.oracle))
	}
	for i := 1; i < len(applied); i++ {
		if applied[i] <= applied[i-1] {
			t.Fatalf("applied seqs not strictly increasing: %v", applied)
		}
	}
}

func TestFollowerBootstrapAndTail(t *testing.T) {
	f := newPrimaryFixture(t, 5)
	f.append(3)
	tgt := newMemTarget()
	fl := newTestFollower(f, tgt)
	mustSync(t, fl)
	assertConverged(t, f, tgt)

	st := fl.Status()
	if st.Bootstraps != 1 || st.AppliedSeq != 3 || st.PrimarySeq != 3 || st.LagRecords != 0 || !st.Connected {
		t.Fatalf("status %+v, want bootstrapped, applied 3, caught up", st)
	}

	// More commits arrive; tailing picks them up without re-bootstrap.
	f.append(4)
	mustSync(t, fl)
	assertConverged(t, f, tgt)
	if st := fl.Status(); st.Bootstraps != 1 || st.AppliedSeq != 7 {
		t.Fatalf("status %+v, want tail to 7 with one bootstrap", st)
	}
}

func TestFollowerRotationMidTail(t *testing.T) {
	f := newPrimaryFixture(t, 2)
	f.append(3)
	tgt := newMemTarget()
	fl := newTestFollower(f, tgt)
	mustSync(t, fl)

	// One checkpoint: the old generation is retained, the follower just
	// walks across the rotation.
	f.checkpoint()
	f.append(2)
	mustSync(t, fl)
	assertConverged(t, f, tgt)
	st := fl.Status()
	if st.Bootstraps != 1 {
		t.Fatalf("rotation forced a re-bootstrap: %+v", st)
	}
	if st.Generation != 2 {
		t.Fatalf("cursor generation %d, want 2 after rotation", st.Generation)
	}
}

func TestFollowerPrunedGenerationRebootstraps(t *testing.T) {
	f := newPrimaryFixture(t, 2)
	f.append(2)
	tgt := newMemTarget()
	fl := newTestFollower(f, tgt)
	mustSync(t, fl)

	// Two checkpoints while the follower lags: its generation is pruned,
	// the next poll gets 410 and re-bootstraps from the new snapshot.
	f.checkpoint()
	f.append(3)
	f.checkpoint()
	f.append(1)
	mustSync(t, fl)
	assertConverged(t, f, tgt)
	st := fl.Status()
	if st.Bootstraps != 2 {
		t.Fatalf("bootstraps = %d, want 2 (pruned generation forces re-bootstrap)", st.Bootstraps)
	}
	_, _, bootstraps := tgt.snapshot()
	if bootstraps != 2 {
		t.Fatalf("target saw %d bootstraps, want 2", bootstraps)
	}
}

func TestFollowerPrimaryRestartMidTail(t *testing.T) {
	f := newPrimaryFixture(t, 3)
	f.append(2)
	tgt := newMemTarget()
	fl := newTestFollower(f, tgt)
	mustSync(t, fl)

	// Primary restarts: close, recover from the same directory, swap the
	// handlers. Sequence numbers continue, the follower resumes cleanly.
	f.mgr.Close()
	mgr, _, _, err := wal.Open("/data", wal.Options{FS: f.fs})
	if err != nil {
		t.Fatalf("wal.Open after restart: %v", err)
	}
	f.mgr = mgr
	f.mount(mgr)
	f.append(3)
	mustSync(t, fl)
	assertConverged(t, f, tgt)
	if st := fl.Status(); st.Bootstraps != 1 || st.AppliedSeq != 5 {
		t.Fatalf("status after primary restart %+v, want resumed tail to 5", st)
	}
}

func TestFollowerDivergentPrimaryRebootstraps(t *testing.T) {
	f := newPrimaryFixture(t, 2)
	f.append(4)
	tgt := newMemTarget()
	fl := newTestFollower(f, tgt)
	mustSync(t, fl)

	// The primary is rebuilt from scratch (acknowledged commits lost):
	// its sequence regresses below the replica's, which must detect the
	// divergence and replace its state rather than keep a phantom suffix.
	f.mgr.Close()
	fs := wal.NewMemFS()
	seed := store.New()
	fresh := map[rdf.Triple]bool{}
	for i := 100; i < 103; i++ {
		seed.Add(triple(i))
		fresh[triple(i)] = true
	}
	seed.Freeze()
	mgr, err := wal.Create("/data", wal.Options{FS: fs}, seed.WriteSnapshot)
	if err != nil {
		t.Fatalf("wal.Create: %v", err)
	}
	f.mgr, f.fs, f.oracle = mgr, fs, fresh
	f.mount(mgr)

	mustSync(t, fl)
	assertConverged(t, f, tgt)
	if st := fl.Status(); st.Bootstraps != 2 {
		t.Fatalf("bootstraps = %d, want 2 after divergence", st.Bootstraps)
	}
}

// truncatingHandler serves an inner handler's response cut at a byte
// offset. With announce set, the full Content-Length is declared first,
// so the client sees a connection killed mid-record rather than a clean
// short body.
type truncatingHandler struct {
	inner    http.Handler
	mu       sync.Mutex
	cut      int // -1: pass through
	announce bool
}

func (h *truncatingHandler) set(cut int, announce bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cut, h.announce = cut, announce
}

func (h *truncatingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	cut, announce := h.cut, h.announce
	h.mu.Unlock()
	if cut < 0 || r.URL.Path != WALPath {
		h.inner.ServeHTTP(w, r)
		return
	}
	rec := httptest.NewRecorder()
	h.inner.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	if cut > len(body) {
		cut = len(body)
	}
	for k, vs := range rec.Header() {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if announce {
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	}
	w.WriteHeader(rec.Code)
	_, _ = w.Write(body[:cut])
	if announce {
		// Abort the connection so the client cannot wait for the rest.
		panic(http.ErrAbortHandler)
	}
}

// tornStreamCase runs the torn-stream matrix in one of two delivery
// modes: a cleanly truncated body (announce=false) or a connection
// killed mid-transfer (announce=true).
func tornStreamCase(t *testing.T, announce bool) {
	f := newPrimaryFixture(t, 2)
	f.append(5)

	trunc := &truncatingHandler{inner: f.mux, cut: -1}
	proxy := httptest.NewServer(trunc)
	defer proxy.Close()

	// Probe the full wire size once.
	segs, _, _, err := f.mgr.ReadSegments(1, 0)
	if err != nil {
		t.Fatalf("ReadSegments: %v", err)
	}
	wireLen := len(wal.EncodeSegments(segs))

	for cut := 0; cut <= wireLen; cut++ {
		tgt := newMemTarget()
		fl := NewFollower(FollowerConfig{
			Primary:     proxy.URL,
			Target:      tgt,
			BackoffBase: time.Millisecond,
			BackoffMax:  2 * time.Millisecond,
			Seed:        int64(cut + 1),
		})
		trunc.set(cut, announce)
		err := fl.Sync(context.Background())
		if err == nil && cut < wireLen {
			t.Fatalf("cut=%d: torn sync reported success", cut)
		}
		// Whatever applied before the tear must be a clean prefix.
		_, applied, _ := tgt.snapshot()
		for i, s := range applied {
			if s != uint64(i+1) {
				t.Fatalf("cut=%d: applied %v is not a prefix of 1..5", cut, applied)
			}
		}
		// The retry resumes from the follower's cursor and converges.
		trunc.set(-1, false)
		mustSync(t, fl)
		assertConverged(t, f, tgt)
		if st := fl.Status(); st.AppliedSeq != 5 {
			t.Fatalf("cut=%d: applied seq %d, want 5", cut, st.AppliedSeq)
		}
	}
}

func TestFollowerTornStreamEveryBoundary(t *testing.T)   { tornStreamCase(t, false) }
func TestFollowerKilledConnectionMidRecord(t *testing.T) { tornStreamCase(t, true) }

func TestFollowerCrashDuringApplyAndRejoin(t *testing.T) {
	f := newPrimaryFixture(t, 2)
	f.append(6)

	// The replica dies mid-apply at seq 4: the sync fails, seqs 1-3 are
	// applied, nothing past the crash is.
	tgt := newMemTarget()
	tgt.failAtSeq = 4
	fl := newTestFollower(f, tgt)
	if err := fl.Sync(context.Background()); err == nil {
		t.Fatal("sync survived an apply crash")
	}
	_, applied, _ := tgt.snapshot()
	if want := []uint64{1, 2, 3}; !reflect.DeepEqual(applied, want) {
		t.Fatalf("applied %v, want %v", applied, want)
	}

	// Rejoin path 1: the same process retries — the cursor resumes after
	// the last applied commit, nothing is double-applied.
	mustSync(t, fl)
	assertConverged(t, f, tgt)

	// Rejoin path 2: the replica process restarts from nothing and
	// re-bootstraps; a restarted follower carries no cursor.
	tgt2 := newMemTarget()
	fl2 := newTestFollower(f, tgt2)
	mustSync(t, fl2)
	assertConverged(t, f, tgt2)
}

func TestFollowerResumableCursorAcrossRestart(t *testing.T) {
	f := newPrimaryFixture(t, 1)
	f.append(3)
	tgt := newMemTarget()
	fl := newTestFollower(f, tgt)
	mustSync(t, fl)
	st := fl.Status()

	// A follower restarted with the previous cursor (resumable offsets)
	// tails on without re-fetching the snapshot.
	f.append(2)
	fl2 := NewFollower(FollowerConfig{
		Primary:  f.srv.URL,
		Target:   tgt,
		StartGen: st.Generation,
		StartSeq: st.AppliedSeq,
		Seed:     1,
	})
	mustSync(t, fl2)
	assertConverged(t, f, tgt)
	if got := fl2.Status(); got.Bootstraps != 0 {
		t.Fatalf("resumed follower bootstrapped %d times, want 0", got.Bootstraps)
	}
}

func TestFollowerRunConvergesUnderConcurrentAppends(t *testing.T) {
	f := newPrimaryFixture(t, 1)
	tgt := newMemTarget()
	fl := newTestFollower(f, tgt)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- fl.Run(ctx) }()

	var mu sync.Mutex // guards fixture oracle against the test goroutine
	for i := 0; i < 30; i++ {
		mu.Lock()
		f.append(1)
		if i == 15 {
			f.checkpoint()
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := fl.Status(); st.AppliedSeq == 30 && st.LagRecords == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v", fl.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	assertConverged(t, f, tgt)
}

// fakeNode is a controllable /readyz + /repl/status backend for router
// tests; every proxied response carries X-Served-By so tests can see
// which backend answered.
type fakeNode struct {
	name string
	srv  *httptest.Server
	mu   sync.Mutex
	st   StatusResponse
	up   bool
}

func newFakeNode(t *testing.T, name, role string) *fakeNode {
	n := &fakeNode{name: name, up: true, st: StatusResponse{Role: role, Connected: true}}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		up := n.up
		n.mu.Unlock()
		if !up {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"ready":true}`)
	})
	mux.HandleFunc(StatusPath, func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		st := n.st
		n.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"role":%q,"stalenessSeconds":%f,"lagRecords":%d,"connected":true}`,
			st.Role, st.StalenessSeconds, st.LagRecords)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Served-By", name)
		fmt.Fprintln(w, "ok")
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

func (n *fakeNode) setStaleness(s float64) {
	n.mu.Lock()
	n.st.StalenessSeconds = s
	n.mu.Unlock()
}

func (n *fakeNode) setReady(up bool) {
	n.mu.Lock()
	n.up = up
	n.mu.Unlock()
}

// servedBy issues one read through the router and returns the
// X-Served-By marker plus the stale header.
func servedBy(t *testing.T, rt *Router, path string) (who, stale string) {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rt.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("read through router: %d %s", rec.Code, rec.Body.String())
	}
	return rec.Header().Get("X-Served-By"), rec.Header().Get(HeaderStale)
}

func newTestRouter(t *testing.T, primary *fakeNode, replicas ...*fakeNode) *Router {
	urls := make([]string, len(replicas))
	for i, r := range replicas {
		urls[i] = r.srv.URL
	}
	rt, err := NewRouter(RouterConfig{
		Primary:      primary.srv.URL,
		Replicas:     urls,
		MaxStaleness: time.Second,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return rt
}

func TestRouterRoundRobinAndWriteRouting(t *testing.T) {
	prim := newFakeNode(t, "primary", "primary")
	r1 := newFakeNode(t, "r1", "replica")
	r2 := newFakeNode(t, "r2", "replica")
	rt := newTestRouter(t, prim, r1, r2)
	rt.checkAll(context.Background())

	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		who, stale := servedBy(t, rt, "/sparql?query=x")
		if stale != "" {
			t.Fatalf("healthy read flagged stale")
		}
		seen[who]++
	}
	if seen["r1"] != 3 || seen["r2"] != 3 {
		t.Fatalf("reads not round-robined: %v", seen)
	}
	if seen["primary"] != 0 {
		t.Fatalf("reads hit the primary with healthy replicas: %v", seen)
	}

	// Writes always route to the primary.
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/update", nil))
	if rec.Header().Get("X-Served-By") != "primary" {
		t.Fatalf("write served by %q, want primary", rec.Header().Get("X-Served-By"))
	}
}

func TestRouterEjectsLaggardAndReadmits(t *testing.T) {
	prim := newFakeNode(t, "primary", "primary")
	r1 := newFakeNode(t, "r1", "replica")
	r2 := newFakeNode(t, "r2", "replica")
	rt := newTestRouter(t, prim, r1, r2)
	rt.checkAll(context.Background())

	// r2 falls past the staleness bound: ejected, all reads go to r1.
	r2.setStaleness(5)
	rt.checkAll(context.Background())
	for i := 0; i < 4; i++ {
		if who, _ := servedBy(t, rt, "/sparql?query=x"); who != "r1" {
			t.Fatalf("read served by %q with r2 ejected, want r1", who)
		}
	}
	if st := rt.Status(); st.Ejections != 1 {
		t.Fatalf("ejections = %d, want 1", st.Ejections)
	}

	// r2 catches back up: readmitted into the rotation.
	r2.setStaleness(0)
	rt.checkAll(context.Background())
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		who, _ := servedBy(t, rt, "/sparql?query=x")
		seen[who]++
	}
	if seen["r2"] == 0 {
		t.Fatalf("r2 not readmitted: %v", seen)
	}
}

func TestRouterFailsOverToPrimaryThenDegradesStale(t *testing.T) {
	prim := newFakeNode(t, "primary", "primary")
	r1 := newFakeNode(t, "r1", "replica")
	r2 := newFakeNode(t, "r2", "replica")
	rt := newTestRouter(t, prim, r1, r2)

	// Both replicas beyond the bound, primary healthy: fail over.
	r1.setStaleness(3)
	r2.setStaleness(9)
	rt.checkAll(context.Background())
	if who, stale := servedBy(t, rt, "/sparql?query=x"); who != "primary" || stale != "" {
		t.Fatalf("served by %q (stale %q), want healthy primary", who, stale)
	}

	// Primary also down: degraded read from the least-stale replica,
	// flagged with the stale header.
	prim.setReady(false)
	rt.checkAll(context.Background())
	who, stale := servedBy(t, rt, "/sparql?query=x")
	if who != "r1" {
		t.Fatalf("degraded read served by %q, want least-stale r1", who)
	}
	if stale == "" {
		t.Fatalf("degraded read missing %s header", HeaderStale)
	}
	if st := rt.Status(); st.StaleReads == 0 {
		t.Fatalf("stale reads not counted: %+v", st)
	}
}

func TestRouterFailoverOnDeadReplicaMidRequest(t *testing.T) {
	prim := newFakeNode(t, "primary", "primary")
	r1 := newFakeNode(t, "r1", "replica")
	rt := newTestRouter(t, prim, r1)
	rt.checkAll(context.Background())

	// r1 dies between health checks; the in-flight read fails over to
	// the primary transparently instead of surfacing a 502.
	r1.srv.Close()
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sparql?query=x", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("read after replica death: %d", rec.Code)
	}
	if got := rec.Header().Get("X-Served-By"); got != "primary" {
		t.Fatalf("failover read served by %q, want primary", got)
	}
	if st := rt.Status(); st.Ejections == 0 {
		t.Fatalf("mid-request failover not counted as ejection: %+v", st)
	}
}

func TestRouterStatusEndpoint(t *testing.T) {
	prim := newFakeNode(t, "primary", "primary")
	r1 := newFakeNode(t, "r1", "replica")
	rt := newTestRouter(t, prim, r1)
	rt.checkAll(context.Background())

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, StatusPath, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("router status: %d", rec.Code)
	}
	var st RouterStatus
	if err := jsonDecode(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding router status: %v", err)
	}
	if st.Role != "router" || len(st.Backends) != 2 {
		t.Fatalf("router status %+v, want role router with 2 backends", st)
	}
}

func jsonDecode(data []byte, v any) error {
	return json.Unmarshal(data, v)
}
