package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Router defaults.
const (
	DefaultMaxStaleness  = 5 * time.Second
	DefaultCheckInterval = 500 * time.Millisecond
)

// RouterConfig configures a read router.
type RouterConfig struct {
	// Primary is the primary's base URL; writes always go here.
	Primary string
	// Replicas are the replica base URLs reads are spread over.
	Replicas []string
	// MaxStaleness ejects a replica whose reported staleness exceeds it
	// (default DefaultMaxStaleness).
	MaxStaleness time.Duration
	// CheckInterval is the health-check cadence (default
	// DefaultCheckInterval).
	CheckInterval time.Duration
	// Client performs health checks; nil selects a 2-second-timeout
	// default.
	Client *http.Client
	// Logf, when set, receives ejection/readmission messages.
	Logf func(format string, args ...any)
}

// backend is one routed server plus its latest health verdict.
type backend struct {
	url   *url.URL
	proxy *httputil.ReverseProxy

	mu        sync.Mutex
	checked   bool // at least one health check has completed
	healthy   bool // ready, reachable, and within the staleness bound
	reachable bool // answered the status check at all
	staleness float64
	lag       uint64
}

func (b *backend) state() (checked, healthy, reachable bool, staleness float64, lag uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.checked, b.healthy, b.reachable, b.staleness, b.lag
}

// Router routes reads across health-checked replicas with primary
// failover; see the package comment for the policy. ServeHTTP is safe
// for concurrent use with Run.
type Router struct {
	cfg      RouterConfig
	primary  *backend
	replicas []*backend
	client   *http.Client
	next     atomic.Uint64

	ejections    atomic.Int64
	staleReads   atomic.Int64
	primaryReads atomic.Int64
	replicaReads atomic.Int64
}

// BackendStatus is one backend's health in RouterStatus.
type BackendStatus struct {
	URL              string  `json:"url"`
	Role             string  `json:"role"` // "primary" | "replica"
	Healthy          bool    `json:"healthy"`
	Reachable        bool    `json:"reachable"`
	StalenessSeconds float64 `json:"stalenessSeconds"`
	LagRecords       uint64  `json:"lagRecords"`
}

// RouterStatus is the JSON shape of the router's /repl/status.
type RouterStatus struct {
	Role         string          `json:"role"`
	Backends     []BackendStatus `json:"backends"`
	Ejections    int64           `json:"ejections"`
	StaleReads   int64           `json:"staleReads"`
	PrimaryReads int64           `json:"primaryReads"`
	ReplicaReads int64           `json:"replicaReads"`
}

// NewRouter builds a Router over a primary and its replicas.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.MaxStaleness <= 0 {
		cfg.MaxStaleness = DefaultMaxStaleness
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = DefaultCheckInterval
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	rt := &Router{cfg: cfg, client: client}
	var err error
	if rt.primary, err = newBackend(cfg.Primary); err != nil {
		return nil, fmt.Errorf("repl: router primary: %w", err)
	}
	for _, raw := range cfg.Replicas {
		b, err := newBackend(raw)
		if err != nil {
			return nil, fmt.Errorf("repl: router replica %s: %w", raw, err)
		}
		rt.replicas = append(rt.replicas, b)
	}
	return rt, nil
}

func newBackend(raw string) (*backend, error) {
	u, err := url.Parse(strings.TrimRight(raw, "/"))
	if err != nil {
		return nil, err
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("not an absolute URL: %q", raw)
	}
	return &backend{url: u, proxy: httputil.NewSingleHostReverseProxy(u)}, nil
}

// Run health-checks the fleet until ctx is done. An immediate first
// sweep runs before the ticker so the router can route as soon as Run
// starts.
func (rt *Router) Run(ctx context.Context) error {
	rt.checkAll(ctx)
	ticker := time.NewTicker(rt.cfg.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			rt.checkAll(ctx)
		}
	}
}

func (rt *Router) checkAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range append([]*backend{rt.primary}, rt.replicas...) {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			rt.check(ctx, b)
		}(b)
	}
	wg.Wait()
}

// check probes one backend: /readyz for willingness to take traffic,
// /repl/status for replication lag. Verdict transitions are counted and
// logged.
func (rt *Router) check(ctx context.Context, b *backend) {
	ready, st, err := rt.probe(ctx, b)
	healthy := err == nil && ready
	var staleness float64
	var lag uint64
	if st != nil {
		staleness = st.StalenessSeconds
		lag = st.LagRecords
		// A replica within its staleness bound counts as fresh even when
		// momentarily behind on records; the bound is the contract.
		if st.Role == "replica" && staleness > rt.cfg.MaxStaleness.Seconds() {
			healthy = false
		}
	}
	b.mu.Lock()
	was, hadVerdict := b.healthy, b.checked
	b.checked = true
	b.healthy = healthy
	b.reachable = err == nil
	b.staleness = staleness
	b.lag = lag
	b.mu.Unlock()
	if hadVerdict && was && !healthy {
		rt.ejections.Add(1)
		rt.logf("repl: router ejecting %s (ready=%v staleness=%.2fs err=%v)", b.url, ready, staleness, err)
	}
	if hadVerdict && !was && healthy {
		rt.logf("repl: router readmitting %s", b.url)
	}
}

func (rt *Router) probe(ctx context.Context, b *backend) (ready bool, st *StatusResponse, err error) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url.String()+"/readyz", nil)
	if err != nil {
		return false, nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, nil, err
	}
	resp.Body.Close()
	ready = resp.StatusCode == http.StatusOK
	req, err = http.NewRequestWithContext(ctx, http.MethodGet, b.url.String()+StatusPath, nil)
	if err != nil {
		return ready, nil, err
	}
	resp, err = rt.client.Do(req)
	if err != nil {
		return ready, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// No status endpoint is not a failure — a plain primary without
		// durability still serves reads.
		return ready, nil, nil
	}
	var s StatusResponse
	if derr := json.NewDecoder(resp.Body).Decode(&s); derr != nil {
		return ready, nil, derr
	}
	return ready, &s, nil
}

// isWrite classifies requests that must reach the primary.
func isWrite(r *http.Request) bool {
	return r.URL.Path == "/update" || strings.HasPrefix(r.URL.Path, "/admin/")
}

// ServeHTTP routes one request: writes to the primary; reads
// round-robin over healthy replicas, failing over to the primary, then
// degrading to the least-stale reachable replica with HeaderStale set.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == StatusPath {
		rt.serveStatus(w, r)
		return
	}
	if isWrite(r) {
		rt.primary.proxy.ServeHTTP(w, r)
		return
	}
	b, stale := rt.pickRead()
	if b == nil {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "no backend available", http.StatusServiceUnavailable)
		return
	}
	if stale {
		rt.staleReads.Add(1)
		_, _, _, staleness, _ := b.state()
		w.Header().Set(HeaderStale, fmt.Sprintf("%.3f", staleness))
	}
	if b == rt.primary {
		rt.primaryReads.Add(1)
		b.proxy.ServeHTTP(w, r)
		return
	}
	rt.replicaReads.Add(1)
	rt.proxyReplica(b, w, r)
}

// proxyReplica forwards a read to a replica, failing over to the
// primary when the replica dies between health checks — for
// body-less requests the failover is transparent, which is what lets a
// replica be killed mid-run without a single failed read.
func (rt *Router) proxyReplica(b *backend, w http.ResponseWriter, r *http.Request) {
	canRetry := r.Body == nil || r.Body == http.NoBody || r.Method == http.MethodGet
	if !canRetry {
		b.proxy.ServeHTTP(w, r)
		return
	}
	proxy := *b.proxy // shallow copy so the ErrorHandler is per-request
	proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		b.mu.Lock()
		was := b.healthy
		b.healthy = false
		b.reachable = false
		b.mu.Unlock()
		if was {
			rt.ejections.Add(1)
		}
		rt.logf("repl: router failover %s -> primary (%v)", b.url, err)
		rt.primaryReads.Add(1)
		rt.primary.proxy.ServeHTTP(w, r)
	}
	proxy.ServeHTTP(w, r)
}

// pickRead selects the read backend. stale reports the selection is
// beyond the staleness bound (degraded).
func (rt *Router) pickRead() (b *backend, stale bool) {
	// 1. Round-robin over healthy replicas.
	if n := len(rt.replicas); n > 0 {
		start := int(rt.next.Add(1))
		for i := 0; i < n; i++ {
			cand := rt.replicas[(start+i)%n]
			if _, healthy, _, _, _ := cand.state(); healthy {
				return cand, false
			}
		}
	}
	// 2. Fail over to a healthy (or never-yet-checked) primary.
	checked, healthy, _, _, _ := rt.primary.state()
	if healthy || !checked {
		return rt.primary, false
	}
	// 3. Everything is behind: serve the least-stale reachable replica,
	// flagged as degraded.
	var best *backend
	bestStale := 0.0
	for _, cand := range rt.replicas {
		_, _, reachable, staleness, _ := cand.state()
		if !reachable {
			continue
		}
		if best == nil || staleness < bestStale {
			best, bestStale = cand, staleness
		}
	}
	if best != nil {
		return best, true
	}
	// 4. Last resort: the primary may still answer even though its
	// readiness probe failed.
	return rt.primary, false
}

// serveStatus answers the router's own /repl/status.
func (rt *Router) serveStatus(w http.ResponseWriter, r *http.Request) {
	st := rt.Status()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// Status snapshots the router's view of the fleet.
func (rt *Router) Status() RouterStatus {
	st := RouterStatus{
		Role:         "router",
		Ejections:    rt.ejections.Load(),
		StaleReads:   rt.staleReads.Load(),
		PrimaryReads: rt.primaryReads.Load(),
		ReplicaReads: rt.replicaReads.Load(),
	}
	add := func(b *backend, role string) {
		_, healthy, reachable, staleness, lag := b.state()
		st.Backends = append(st.Backends, BackendStatus{
			URL:              b.url.String(),
			Role:             role,
			Healthy:          healthy,
			Reachable:        reachable,
			StalenessSeconds: staleness,
			LagRecords:       lag,
		})
	}
	add(rt.primary, "primary")
	for _, b := range rt.replicas {
		add(b, "replica")
	}
	return st
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}
