package live

import (
	"sync"
	"sync/atomic"

	"rdfshapes/internal/gstats"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
	"rdfshapes/internal/store"
)

// Stats is one immutable published version of the planner statistics:
// the extended-VoID global statistics and the annotated shapes graph.
// Consumers must treat both as read-only; the maintainer mutates clones.
type Stats struct {
	Global *gstats.Global
	Shapes *shacl.ShapesGraph
}

// Maintainer keeps planner statistics in sync with commits. Counters that
// are cheap to maintain exactly — triple totals, per-predicate counts and
// distinct subject/object counts, class instance counts, shape sh:count
// and sh:distinctSubjectCount — are updated exactly on every commit.
// Quantities that would need a full recount (class-scoped
// sh:distinctCount in the general case, shrinking sh:maxCount, rising
// sh:minCount) are left approximate and tracked by a drift counter; once
// accumulated drift passes the threshold, onDrift fires (once) in a new
// goroutine so the owner can re-annotate in the background and Reset.
type Maintainer struct {
	mu  sync.Mutex
	cur Stats

	drift     atomic.Int64
	threshold int64
	onDrift   func()
	firing    atomic.Bool
}

// NewMaintainer returns a maintainer starting from s. driftThreshold <= 0
// disables the onDrift trigger (drift is still tracked).
func NewMaintainer(s Stats, driftThreshold int64, onDrift func()) *Maintainer {
	return &Maintainer{cur: s, threshold: driftThreshold, onDrift: onDrift}
}

// Current returns the latest published statistics.
func (m *Maintainer) Current() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// Drift returns the accumulated approximation drift since the last Reset:
// the number of statistic adjustments that could not be made exactly.
func (m *Maintainer) Drift() int64 { return m.drift.Load() }

// Rearm re-enables the onDrift trigger without touching statistics or
// drift, for owners whose recompute attempt failed.
func (m *Maintainer) Rearm() { m.firing.Store(false) }

// Reset installs freshly recomputed statistics and zeroes the drift,
// re-arming the onDrift trigger.
func (m *Maintainer) Reset(s Stats) {
	m.mu.Lock()
	m.cur = s
	m.mu.Unlock()
	m.drift.Store(0)
	m.firing.Store(false)
}

// Apply folds one commit's effective changes into the statistics. The
// current Stats value is never mutated: a clone is adjusted and published,
// so planners holding the old value keep a consistent view.
func (m *Maintainer) Apply(ci CommitInfo) {
	if len(ci.Inserted) == 0 && len(ci.Deleted) == 0 {
		return
	}
	m.mu.Lock()
	g := m.cur.Global.Clone()
	sg := m.cur.Shapes.Clone()
	d := applyCommit(g, sg, ci)
	m.cur = Stats{Global: g, Shapes: sg}
	m.mu.Unlock()
	if d == 0 {
		return
	}
	total := m.drift.Add(d)
	if m.threshold > 0 && total >= m.threshold && m.onDrift != nil &&
		m.firing.CompareAndSwap(false, true) {
		go m.onDrift()
	}
}

type pair [2]store.ID

// applyCommit adjusts g and sg for one commit and returns the drift (the
// number of adjustments that are approximate rather than exact).
func applyCommit(g *gstats.Global, sg *shacl.ShapesGraph, ci CommitInfo) int64 {
	prev, next := ci.Prev, ci.Next
	dict := next.Dict()
	var drift int64
	iri := func(id store.ID) string { return dict.Term(id).Value }

	// Global triple and per-predicate counts: exact.
	g.Triples += int64(len(ci.Inserted)) - int64(len(ci.Deleted))

	sp := map[pair]int{} // (subject, predicate) → net triple change
	po := map[pair]int{} // (predicate, object) → net triple change
	subj := map[store.ID]int{}
	obj := map[store.ID]int{}
	predNet := map[store.ID]int{}
	for _, t := range ci.Inserted {
		sp[pair{t.S, t.P}]++
		po[pair{t.P, t.O}]++
		subj[t.S]++
		obj[t.O]++
		predNet[t.P]++
	}
	for _, t := range ci.Deleted {
		sp[pair{t.S, t.P}]--
		po[pair{t.P, t.O}]--
		subj[t.S]--
		obj[t.O]--
		predNet[t.P]--
	}
	for p, net := range predNet {
		if net == 0 {
			continue
		}
		ps := g.Pred[iri(p)]
		ps.Count += int64(net)
		g.Pred[iri(p)] = ps
	}

	// Distinct counts via the group trick: for every key group the commit
	// touched, "after" is one O(log n) Count on the new snapshot and
	// before = after − net, so the 0↔positive transitions — the only ones
	// that move a distinct counter — are detected exactly, even when a
	// batch adds several triples of the same group at once.
	for k, net := range sp {
		if net == 0 {
			continue
		}
		after := int64(next.Count(store.IDTriple{S: k[0], P: k[1]}))
		if d := zeroCross(after-int64(net), after); d != 0 {
			ps := g.Pred[iri(k[1])]
			ps.DSC += d
			g.Pred[iri(k[1])] = ps
		}
	}
	for k, net := range po {
		if net == 0 {
			continue
		}
		after := int64(next.Count(store.IDTriple{P: k[0], O: k[1]}))
		if d := zeroCross(after-int64(net), after); d != 0 {
			ps := g.Pred[iri(k[0])]
			ps.DOC += d
			g.Pred[iri(k[0])] = ps
		}
	}
	for s, net := range subj {
		if net == 0 {
			continue
		}
		after := int64(next.Count(store.IDTriple{S: s}))
		g.DistinctSubjects += zeroCross(after-int64(net), after)
	}
	for o, net := range obj {
		if net == 0 {
			continue
		}
		after := int64(next.Count(store.IDTriple{O: o}))
		g.DistinctObjects += zeroCross(after-int64(net), after)
	}
	for p := range predNet {
		key := iri(p)
		if ps, ok := g.Pred[key]; ok && ps.Count <= 0 && ps.DSC <= 0 && ps.DOC <= 0 {
			delete(g.Pred, key)
		}
	}

	// Shapes are class-scoped, so nothing below applies without rdf:type.
	tid, ok := dict.Lookup(rdf.NewIRI(rdf.RDFType))
	if !ok {
		return drift
	}

	// Class instance counts and node-shape sh:count: exact (one type
	// triple per instance and class; the store deduplicates).
	typeSubjects := map[store.ID]bool{}
	classNet := map[store.ID]int{}
	for _, t := range ci.Inserted {
		if t.P == tid {
			typeSubjects[t.S] = true
			classNet[t.O]++
		}
	}
	for _, t := range ci.Deleted {
		if t.P == tid {
			typeSubjects[t.S] = true
			classNet[t.O]--
		}
	}
	for c, d := range classNet {
		if d == 0 {
			continue
		}
		cls := iri(c)
		if n := g.ClassInstances[cls] + int64(d); n > 0 {
			g.ClassInstances[cls] = n
		} else {
			delete(g.ClassInstances, cls)
		}
		if ns := sg.ByClass(cls); ns != nil && ns.Count >= 0 {
			ns.Count += int64(d)
			if ns.Count < 0 {
				ns.Count = 0
			}
		}
	}

	// Subjects whose class membership changed: subtract their entire old
	// contribution (counted against the previous snapshot) from the
	// shapes they belonged to and add the new contribution to the shapes
	// they belong to now. Exact for sh:count and sh:distinctSubjectCount.
	for s := range typeSubjects {
		oldShapes := shapesOf(prev, sg, dict, tid, s)
		newShapes := shapesOf(next, sg, dict, tid, s)
		if len(oldShapes) == 0 && len(newShapes) == 0 {
			continue
		}
		var oldRuns, newRuns map[store.ID]runStat
		if len(oldShapes) > 0 {
			oldRuns = subjectRuns(prev, tid, s)
		}
		if len(newShapes) > 0 {
			newRuns = subjectRuns(next, tid, s)
		}
		for _, ns := range oldShapes {
			drift += contribute(ns, dict, oldRuns, -1)
		}
		for _, ns := range newShapes {
			drift += contribute(ns, dict, newRuns, +1)
		}
	}

	// Data triples of membership-stable subjects: per-(subject,predicate)
	// group deltas against each shape the subject is an instance of.
	for k, net := range sp {
		s, p := k[0], k[1]
		if net == 0 || p == tid || typeSubjects[s] {
			continue
		}
		shapes := shapesOf(next, sg, dict, tid, s)
		if len(shapes) == 0 {
			continue
		}
		after := int64(next.Count(store.IDTriple{S: s, P: p}))
		before := after - int64(net)
		path := iri(p)
		for _, ns := range shapes {
			ps := ns.Property(path)
			if ps == nil || ps.Stats == nil {
				drift++ // data for a predicate the shape does not describe
				continue
			}
			st := ps.Stats
			st.Count += int64(net)
			switch {
			case before == 0 && after > 0:
				st.DistinctSubjectCount++
			case before > 0 && after == 0:
				st.DistinctSubjectCount--
				st.MinCount = 0 // the subject is still a member and now lacks the property
			}
			if after > st.MaxCount {
				st.MaxCount = after
			}
			if net < 0 && before >= st.MaxCount {
				drift++ // the max holder shrank; the true max may be lower
			}
			if net > 0 && before > 0 && before <= st.MinCount {
				drift++ // the min holder grew; the true min may be higher
			}
			clampProp(st, ns)
		}
	}

	// Class-scoped sh:distinctCount: exact only when the object is
	// globally new (or gone) for the predicate — then it is certainly new
	// in (or gone from) every affected class scope. Otherwise scope
	// membership of the object is unknown without a recount: drift.
	type cpoKey struct {
		cls  string
		p, o store.ID
	}
	seenCPO := map[cpoKey]bool{}
	scopedDC := func(t store.IDTriple, ins bool) {
		if t.P == tid || typeSubjects[t.S] {
			return
		}
		shapes := shapesOf(next, sg, dict, tid, t.S)
		if len(shapes) == 0 {
			return
		}
		after := int64(next.Count(store.IDTriple{P: t.P, O: t.O}))
		before := after - int64(po[pair{t.P, t.O}])
		path := iri(t.P)
		for _, ns := range shapes {
			ps := ns.Property(path)
			if ps == nil || ps.Stats == nil {
				continue // drift already recorded by the group loop above
			}
			k := cpoKey{ns.TargetClass, t.P, t.O}
			if seenCPO[k] {
				continue
			}
			seenCPO[k] = true
			switch {
			case ins && before == 0:
				ps.Stats.DistinctCount++
			case !ins && after == 0:
				ps.Stats.DistinctCount--
			default:
				drift++
			}
			clampProp(ps.Stats, ns)
		}
	}
	for _, t := range ci.Inserted {
		scopedDC(t, true)
	}
	for _, t := range ci.Deleted {
		scopedDC(t, false)
	}
	return drift
}

// runStat summarizes one subject's triples for one predicate.
type runStat struct {
	count    int64
	distinct int64 // distinct objects
}

// subjectRuns returns, for every non-type predicate of s, the triple
// count and distinct object count in the given view.
func subjectRuns(v View, tid, s store.ID) map[store.ID]runStat {
	runs := map[store.ID]runStat{}
	objs := map[pair]bool{}
	v.Scan(store.IDTriple{S: s}, func(t store.IDTriple) bool {
		if t.P == tid {
			return true
		}
		r := runs[t.P]
		r.count++
		if !objs[pair{t.P, t.O}] {
			objs[pair{t.P, t.O}] = true
			r.distinct++
		}
		runs[t.P] = r
		return true
	})
	return runs
}

// shapesOf returns the node shapes whose target classes s is an instance
// of in the given view.
func shapesOf(v View, sg *shacl.ShapesGraph, dict *store.Dict, tid, s store.ID) []*shacl.NodeShape {
	var out []*shacl.NodeShape
	v.Scan(store.IDTriple{S: s, P: tid}, func(t store.IDTriple) bool {
		if ns := sg.ByClass(dict.Term(t.O).Value); ns != nil {
			out = append(out, ns)
		}
		return true
	})
	return out
}

// contribute adds (sign = +1) or removes (sign = -1) one subject's whole
// contribution to a node shape's property statistics. Returns drift.
func contribute(ns *shacl.NodeShape, dict *store.Dict, runs map[store.ID]runStat, sign int64) int64 {
	var drift int64
	seen := map[string]bool{}
	for pid, r := range runs {
		path := dict.Term(pid).Value
		seen[path] = true
		ps := ns.Property(path)
		if ps == nil || ps.Stats == nil {
			drift++ // data for a predicate the shape does not describe
			continue
		}
		st := ps.Stats
		st.Count += sign * r.count
		st.DistinctSubjectCount += sign
		if sign > 0 {
			if r.count > st.MaxCount {
				st.MaxCount = r.count
			}
			if r.count < st.MinCount {
				st.MinCount = r.count
			}
		} else {
			if r.count >= st.MaxCount {
				drift++ // the max holder may be gone
			}
			if r.count <= st.MinCount {
				drift++ // the min holder may be gone
			}
		}
		drift += r.distinct // class-scoped object distinctness unknown
		clampProp(st, ns)
	}
	// A member lacking a described property pins that property's observed
	// minimum at zero; a departing member may have been what pinned it.
	for _, ps := range ns.Properties {
		if ps.Stats == nil || seen[ps.Path] {
			continue
		}
		if sign > 0 {
			ps.Stats.MinCount = 0
		} else if ps.Stats.MinCount == 0 {
			drift++
		}
	}
	return drift
}

// zeroCross returns the distinct-counter delta for a group whose size
// moved from before to after: only 0↔positive transitions count.
func zeroCross(before, after int64) int64 {
	switch {
	case before <= 0 && after > 0:
		return 1
	case before > 0 && after <= 0:
		return -1
	}
	return 0
}

// clampProp repairs the derived invariants of a property-shape statistic
// after a delta: counts never negative, distinct counts within [1, Count]
// when any triple exists, min ≤ max, and an observed minimum of 0
// whenever some class member lacks the property.
func clampProp(st *shacl.PropStats, ns *shacl.NodeShape) {
	if st.Count < 0 {
		st.Count = 0
	}
	if st.DistinctSubjectCount < 0 {
		st.DistinctSubjectCount = 0
	}
	if st.DistinctSubjectCount > st.Count {
		st.DistinctSubjectCount = st.Count
	}
	if st.Count == 0 {
		st.DistinctCount, st.MinCount, st.MaxCount = 0, 0, 0
		return
	}
	if st.DistinctCount > st.Count {
		st.DistinctCount = st.Count
	}
	if st.DistinctCount < 1 {
		st.DistinctCount = 1
	}
	if st.MaxCount < 1 {
		st.MaxCount = 1
	}
	if st.MinCount > st.MaxCount {
		st.MinCount = st.MaxCount
	}
	if ns.Count >= 0 && st.DistinctSubjectCount < ns.Count {
		st.MinCount = 0
	}
}
