package live

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }

func triple(s, p, o string) rdf.Triple {
	return rdf.NewTriple(iri(s), iri(p), iri(o))
}

func baseStore(ts ...rdf.Triple) *store.Store {
	var g rdf.Graph
	for _, t := range ts {
		g.Append(t.S, t.P, t.O)
	}
	return store.Load(g)
}

// viewSet collects a snapshot's merged view as a set of ID triples.
func viewSet(s *Snapshot) map[store.IDTriple]bool {
	out := map[store.IDTriple]bool{}
	s.Scan(store.IDTriple{}, func(t store.IDTriple) bool {
		out[t] = true
		return true
	})
	return out
}

func TestWrapRequiresFrozenBase(t *testing.T) {
	st := store.New()
	st.Add(triple("s", "p", "o"))
	defer func() {
		if recover() == nil {
			t.Error("Wrap of an unfrozen store did not panic")
		}
	}()
	Wrap(st)
}

func TestApplySemantics(t *testing.T) {
	ls := Wrap(baseStore(triple("a", "p", "b"), triple("a", "p", "c")))

	// insert one new, one already present
	ci := ls.Apply(Batch{Insert: []rdf.Triple{triple("a", "p", "d"), triple("a", "p", "b")}})
	if len(ci.Inserted) != 1 || len(ci.Deleted) != 0 {
		t.Fatalf("effective delta = +%d/-%d, want +1/-0", len(ci.Inserted), len(ci.Deleted))
	}
	if ls.Snapshot().Len() != 3 {
		t.Errorf("Len = %d, want 3", ls.Snapshot().Len())
	}

	// delete a base triple and a missing one
	ci = ls.Apply(Batch{Delete: []rdf.Triple{triple("a", "p", "b"), triple("zz", "p", "b")}})
	if len(ci.Inserted) != 0 || len(ci.Deleted) != 1 {
		t.Fatalf("effective delta = +%d/-%d, want +0/-1", len(ci.Inserted), len(ci.Deleted))
	}

	// delete an overlay addition: the added fragment shrinks back
	ci = ls.Apply(Batch{Delete: []rdf.Triple{triple("a", "p", "d")}})
	if len(ci.Deleted) != 1 {
		t.Fatalf("deleting an overlay addition not effective")
	}
	if a, d := ls.OverlaySize(); a != 0 || d != 1 {
		t.Errorf("overlay = +%d/-%d, want +0/-1", a, d)
	}

	// resurrect the deleted base triple
	ci = ls.Apply(Batch{Insert: []rdf.Triple{triple("a", "p", "b")}})
	if len(ci.Inserted) != 1 {
		t.Fatalf("resurrecting a deleted base triple not effective")
	}
	if a, d := ls.OverlaySize(); a != 0 || d != 0 {
		t.Errorf("overlay = +%d/-%d, want +0/-0", a, d)
	}

	// a no-op batch publishes nothing
	before := ls.Snapshot()
	ci = ls.Apply(Batch{Insert: []rdf.Triple{triple("a", "p", "b")}})
	if ci.Prev != ci.Next || ls.Snapshot() != before {
		t.Error("no-op batch published a new snapshot")
	}

	// delete-then-insert within one batch keeps the triple
	ci = ls.Apply(Batch{Delete: []rdf.Triple{triple("a", "p", "c")}, Insert: []rdf.Triple{triple("a", "p", "c")}})
	if !ls.Snapshot().Contains(ci.Inserted[0]) {
		t.Error("triple deleted and reinserted in one batch is missing")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	ls := Wrap(baseStore(triple("a", "p", "b")))
	old := ls.Snapshot()
	oldView := viewSet(old)
	ls.Apply(Batch{Insert: []rdf.Triple{triple("c", "p", "d")}})
	ls.Apply(Batch{Delete: []rdf.Triple{triple("a", "p", "b")}})
	if got := viewSet(old); len(got) != len(oldView) {
		t.Errorf("old snapshot changed: %d triples, want %d", len(got), len(oldView))
	}
	if old.Len() != 1 || ls.Snapshot().Len() != 1 {
		t.Errorf("Len old=%d new=%d, want 1 and 1", old.Len(), ls.Snapshot().Len())
	}
	if ls.Snapshot().Gen() <= old.Gen() {
		t.Error("generation did not advance")
	}
}

// TestApplyAgainstOracle drives random batches through the live store and
// cross-checks Scan, Count, Len, and Contains against a map oracle.
func TestApplyAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	names := []string{"a", "b", "c", "d", "e"}
	preds := []string{"p", "q"}
	randTriple := func() rdf.Triple {
		return triple(names[rng.Intn(len(names))], preds[rng.Intn(len(preds))], names[rng.Intn(len(names))])
	}

	base := baseStore(triple("a", "p", "b"), triple("b", "q", "c"), triple("c", "p", "a"))
	ls := Wrap(base)
	oracle := map[rdf.Triple]bool{}
	base.Scan(store.IDTriple{}, func(it store.IDTriple) bool {
		d := base.Dict()
		oracle[rdf.NewTriple(d.Term(it.S), d.Term(it.P), d.Term(it.O))] = true
		return true
	})

	for step := 0; step < 200; step++ {
		var b Batch
		for i := rng.Intn(4); i >= 0; i-- {
			b.Insert = append(b.Insert, randTriple())
		}
		for i := rng.Intn(4); i >= 0; i-- {
			b.Delete = append(b.Delete, randTriple())
		}
		ci := ls.Apply(b)

		wantIns, wantDel := 0, 0
		seen := map[rdf.Triple]bool{}
		for _, tr := range b.Delete {
			if oracle[tr] && !seen[tr] {
				wantDel++
				seen[tr] = true
				delete(oracle, tr)
			}
		}
		seen = map[rdf.Triple]bool{}
		for _, tr := range b.Insert {
			if !oracle[tr] && !seen[tr] {
				wantIns++
				seen[tr] = true
				oracle[tr] = true
			}
		}
		if len(ci.Inserted) != wantIns || len(ci.Deleted) != wantDel {
			t.Fatalf("step %d: effective delta +%d/-%d, oracle +%d/-%d",
				step, len(ci.Inserted), len(ci.Deleted), wantIns, wantDel)
		}

		snap := ls.Snapshot()
		if snap.Len() != len(oracle) {
			t.Fatalf("step %d: Len = %d, oracle %d", step, snap.Len(), len(oracle))
		}
		d := snap.Dict()
		got := 0
		snap.Scan(store.IDTriple{}, func(it store.IDTriple) bool {
			got++
			tr := rdf.NewTriple(d.Term(it.S), d.Term(it.P), d.Term(it.O))
			if !oracle[tr] {
				t.Fatalf("step %d: scan yielded %v, not in oracle", step, tr)
			}
			return true
		})
		if got != len(oracle) {
			t.Fatalf("step %d: scan visited %d, oracle %d", step, got, len(oracle))
		}
		// spot-check a pattern count: all triples with predicate p
		pid, ok := d.Lookup(iri("p"))
		if ok {
			want := 0
			for tr := range oracle {
				if tr.P == iri("p") {
					want++
				}
			}
			if c := snap.Count(store.IDTriple{P: pid}); c != want {
				t.Fatalf("step %d: Count(?,p,?) = %d, oracle %d", step, c, want)
			}
		}

		// occasionally compact and re-verify
		if step%37 == 36 {
			if _, err := ls.Compact(); err != nil {
				t.Fatalf("step %d: Compact: %v", step, err)
			}
			if a, del := ls.OverlaySize(); a != 0 || del != 0 {
				t.Fatalf("step %d: overlay +%d/-%d after compaction", step, a, del)
			}
			if ls.Snapshot().Len() != len(oracle) {
				t.Fatalf("step %d: Len = %d after compaction, oracle %d", step, ls.Snapshot().Len(), len(oracle))
			}
		}
	}
}

func TestCompactEmptyOverlayIsNoop(t *testing.T) {
	ls := Wrap(baseStore(triple("a", "p", "b")))
	before := ls.Snapshot()
	after, err := ls.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Error("compacting an empty overlay published a new snapshot")
	}
}

func TestAutoCompact(t *testing.T) {
	ls := Wrap(baseStore(triple("a", "p", "b")))
	ls.SetAutoCompact(4)
	for i := 0; i < 10; i++ {
		ls.Apply(Batch{Insert: []rdf.Triple{triple("s", "p", fmt.Sprintf("o%d", i))}})
	}
	ls.Wait()
	if a, d := ls.OverlaySize(); a+d >= 10 {
		t.Errorf("overlay +%d/-%d after auto-compaction, want shrunk", a, d)
	}
	if ls.Snapshot().Len() != 11 {
		t.Errorf("Len = %d, want 11", ls.Snapshot().Len())
	}
}

// TestConcurrentCompactionsDoNotRevertCommits exercises overlapping
// Compact callers (the background compactor racing direct calls from
// WriteSnapshot/Reannotate). Without whole-compaction serialization the
// phase-2 rebase of a lagging Compact assumes the base it started from
// is still current and publishes an inverted residual, silently
// reverting commits; this asserts every committed insert survives. Run
// under -race.
func TestConcurrentCompactionsDoNotRevertCommits(t *testing.T) {
	const (
		writers    = 3
		compactors = 3
		commits    = 120
	)
	ls := Wrap(baseStore(triple("seed", "p", "o")))
	done := make(chan struct{})

	var compWG sync.WaitGroup
	for c := 0; c < compactors; c++ {
		compWG.Add(1)
		go func() {
			defer compWG.Done()
			for {
				select {
				case <-done:
					return
				default:
					if _, err := ls.Compact(); err != nil {
						t.Errorf("Compact: %v", err)
						return
					}
				}
			}
		}()
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < commits; i++ {
				ls.Apply(Batch{Insert: []rdf.Triple{
					triple(fmt.Sprintf("w%d", w), "p", fmt.Sprintf("o%d", i)),
				}})
			}
		}(w)
	}
	writerWG.Wait()
	close(done)
	compWG.Wait()
	ls.Wait()

	snap := ls.Snapshot()
	if want := 1 + writers*commits; snap.Len() != want {
		t.Errorf("Len = %d after concurrent compactions, want %d", snap.Len(), want)
	}
	d := snap.Dict()
	for w := 0; w < writers; w++ {
		for i := 0; i < commits; i++ {
			it, ok := lookupTriple(d, triple(fmt.Sprintf("w%d", w), "p", fmt.Sprintf("o%d", i)))
			if !ok || !snap.Contains(it) {
				t.Fatalf("committed triple w%d o%d reverted by a concurrent compaction", w, i)
			}
		}
	}
}

func TestSnapshotTypeIDFromOverlay(t *testing.T) {
	ls := Wrap(baseStore(triple("a", "p", "b")))
	if got := ls.Snapshot().TypeID(); got != 0 {
		t.Fatalf("TypeID = %d with no rdf:type anywhere, want 0", got)
	}
	ls.Apply(Batch{Insert: []rdf.Triple{
		rdf.NewTriple(iri("a"), rdf.NewIRI(rdf.RDFType), iri("C")),
	}})
	if ls.Snapshot().TypeID() == 0 {
		t.Error("TypeID = 0 with a typed triple in the overlay")
	}
}

// TestConcurrentReadersWritersNoTornBatches is the torn-batch race test:
// every writer commit inserts or deletes a PAIR of triples for one
// subject atomically, so any consistent snapshot contains 0 or 2 triples
// per subject — a reader observing exactly 1 has seen a torn batch.
// A compactor churns in the background. Run under -race.
func TestConcurrentReadersWritersNoTornBatches(t *testing.T) {
	const (
		writers = 4
		readers = 4
		commits = 150
	)
	ls := Wrap(baseStore(triple("seed", "p", "o")))
	done := make(chan struct{})

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < commits; i++ {
				subj := fmt.Sprintf("w%d-s%d", w, i%7)
				pairBatch := Batch{Insert: []rdf.Triple{
					triple(subj, "left", "l"),
					triple(subj, "right", "r"),
				}}
				if i%2 == 1 {
					pairBatch = Batch{Delete: pairBatch.Insert}
				}
				ls.Apply(pairBatch)
			}
		}(w)
	}

	var auxWG sync.WaitGroup
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for {
			select {
			case <-done:
				return
			default:
				if _, err := ls.Compact(); err != nil {
					t.Errorf("Compact: %v", err)
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		auxWG.Add(1)
		go func() {
			defer auxWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := ls.Snapshot()
				d := snap.Dict()
				left, okL := d.Lookup(iri("left"))
				right, okR := d.Lookup(iri("right"))
				if !okL || !okR {
					continue
				}
				perSubj := map[store.ID]int{}
				snap.Scan(store.IDTriple{P: left}, func(tr store.IDTriple) bool {
					perSubj[tr.S]++
					return true
				})
				snap.Scan(store.IDTriple{P: right}, func(tr store.IDTriple) bool {
					perSubj[tr.S]++
					return true
				})
				for s, n := range perSubj {
					if n != 2 {
						t.Errorf("torn batch: subject %v has %d of 2 pair triples (gen %d)",
							d.Term(s), n, snap.Gen())
						return
					}
				}
			}
		}()
	}

	writerWG.Wait()
	close(done)
	auxWG.Wait()
	ls.Wait()
}
