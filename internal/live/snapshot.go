package live

import (
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

// Snapshot is one immutable version of the dataset: a frozen base store
// plus a delta overlay of added and deleted triples. It satisfies
// engine.Source, so queries run against it unchanged.
//
// Invariants (maintained by Store.Apply and Store.Compact):
//
//	added ∩ base   = ∅   (added triples are genuinely new)
//	deleted ⊆ base       (only base triples can be marked deleted)
//	added ∩ deleted = ∅
//
// The merged view is (base \ deleted) ∪ added — a disjoint union, which
// is what makes Count exact with three index lookups.
type Snapshot struct {
	base    *store.Store
	added   *store.Fragment // in the view, not in the base
	deleted *store.Fragment // in the base, hidden from the view
	gen     uint64
}

// Dict returns the shared term dictionary.
func (s *Snapshot) Dict() *store.Dict { return s.base.Dict() }

// Base returns the frozen base store, excluding the overlay.
func (s *Snapshot) Base() *store.Store { return s.base }

// Gen returns the snapshot's generation number, incremented by every
// commit and compaction.
func (s *Snapshot) Gen() uint64 { return s.gen }

// TypeID returns the dictionary ID of rdf:type, or 0 when the term is
// unknown. The base's cached ID is 0 when no base triple uses rdf:type,
// so fall back to the shared dictionary to cover typed triples that so
// far exist only in the overlay.
func (s *Snapshot) TypeID() store.ID {
	if id := s.base.TypeID(); id != 0 {
		return id
	}
	if id, ok := s.base.Dict().Lookup(rdf.NewIRI(rdf.RDFType)); ok {
		return id
	}
	return 0
}

// Overlay returns the overlay's added and deleted triple counts.
func (s *Snapshot) Overlay() (added, deleted int) {
	return s.added.Len(), s.deleted.Len()
}

// Len returns the number of triples in the merged view.
func (s *Snapshot) Len() int {
	return s.base.Len() - s.deleted.Len() + s.added.Len()
}

// Scan calls fn for every triple of the merged view matching pat
// (store.Wildcard matches anything): base triples not marked deleted
// first, then overlay additions. fn returning false stops the scan.
//
// With an empty overlay this is a direct base scan — the fast path that
// BenchmarkLiveScanEmptyOverlay pins against the frozen store.
func (s *Snapshot) Scan(pat store.IDTriple, fn func(store.IDTriple) bool) {
	if s.added == nil && s.deleted == nil {
		s.base.Scan(pat, fn)
		return
	}
	stopped := false
	if s.deleted == nil {
		s.base.Scan(pat, func(t store.IDTriple) bool {
			if !fn(t) {
				stopped = true
			}
			return !stopped
		})
	} else {
		s.base.Scan(pat, func(t store.IDTriple) bool {
			if s.deleted.Contains(t) {
				return true
			}
			if !fn(t) {
				stopped = true
			}
			return !stopped
		})
	}
	if stopped {
		return
	}
	s.added.Scan(pat, fn)
}

// ScanChunks splits the merged view's matches of pat into contiguous
// chunks for morsel-parallel execution: the base chunks (each filtered
// against the deleted fragment) followed by one chunk for the overlay
// additions. Running the closures in slice order enumerates exactly the
// triples Scan(pat) would, in the same order. With an empty overlay this
// delegates directly to the base store.
//
// Ordering contract (weaker than the frozen store's): each chunk is
// internally key-sorted, but the trailing overlay-additions chunk
// restarts the key sequence, so the concatenation of all chunks is NOT
// globally key-sorted whenever additions exist. Consumers that need one
// globally sorted stream must not use Scan/ScanChunks on a snapshot with
// a live overlay — they must take the per-run view (Ranges or LeadRuns)
// and merge the disjoint sorted runs themselves. The engine's merge-join
// path does exactly that, and additionally verifies sortedness of every
// run it consumes at execution time.
func (s *Snapshot) ScanChunks(pat store.IDTriple, n int) []func(fn func(store.IDTriple) bool) {
	chunks := s.base.ScanChunks(pat, n)
	if s.deleted != nil {
		del := s.deleted
		for i, base := range chunks {
			base := base
			chunks[i] = func(fn func(store.IDTriple) bool) {
				base(func(t store.IDTriple) bool {
					if del.Contains(t) {
						return true
					}
					return fn(t)
				})
			}
		}
	}
	if s.added != nil {
		add := s.added
		chunks = append(chunks, func(fn func(store.IDTriple) bool) {
			add.Scan(pat, fn)
		})
	}
	return chunks
}

// Ranges returns the merged view's matches of pat as raw sorted runs:
// the base rows and overlay-added rows each as a subslice of their
// serving index (key-ordered by store.KeyOrder(pat), shared storage —
// do not modify), plus the deletion mask to filter base rows through
// (nil when nothing is deleted). The shard coordinator merges these
// runs across shards into one globally key-ordered stream; unlike Scan,
// whose base-then-additions order is not globally sorted, every run
// here is.
func (s *Snapshot) Ranges(pat store.IDTriple) (base, added []store.IDTriple, deleted *store.Fragment) {
	return s.base.Range(pat), s.added.Range(pat), s.deleted
}

// LeadRuns returns the merged view's matches of pat as lead-ordered
// sorted runs for the engine's merge-join path: the base rows (with the
// deletion mask attached) and the overlay-added rows, each a subslice of
// the serving index ordered by store.LeadOrder(pat, lead). The runs are
// disjoint by the snapshot invariants, so merging them with that
// comparator yields one globally lead-ordered stream — unlike
// Scan/ScanChunks, whose base-then-additions order is not globally
// sorted. ok is false when no stored ordering serves (pat, lead); see
// store.LeadOrderAvailable.
func (s *Snapshot) LeadRuns(pat store.IDTriple, lead int) ([]store.SortedRun, bool) {
	base, bok := s.base.LeadRange(pat, lead)
	added, aok := s.added.LeadRange(pat, lead)
	if !bok || !aok {
		return nil, false
	}
	runs := make([]store.SortedRun, 0, 2)
	if len(base) > 0 {
		runs = append(runs, store.SortedRun{Rows: base, Del: s.deleted})
	}
	if len(added) > 0 {
		runs = append(runs, store.SortedRun{Rows: added})
	}
	return runs, true
}

// Count returns the number of merged-view triples matching pat. Exact by
// the disjoint-union invariants; three O(log n) lookups.
func (s *Snapshot) Count(pat store.IDTriple) int {
	return s.base.Count(pat) - s.deleted.Count(pat) + s.added.Count(pat)
}

// Contains reports whether the fully bound triple is in the merged view.
func (s *Snapshot) Contains(t store.IDTriple) bool {
	return s.Count(t) > 0
}
