package live

import (
	"reflect"
	"testing"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

// chunkConcat runs a snapshot's chunks in order and concatenates their
// output.
func chunkConcat(s *Snapshot, pat store.IDTriple, n int) []store.IDTriple {
	var out []store.IDTriple
	for _, chunk := range s.ScanChunks(pat, n) {
		chunk(func(t store.IDTriple) bool {
			out = append(out, t)
			return true
		})
	}
	return out
}

func scanAll(s *Snapshot, pat store.IDTriple) []store.IDTriple {
	var out []store.IDTriple
	s.Scan(pat, func(t store.IDTriple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// TestScanChunksEmptyOverlay pins the fast path: with no overlay at all
// the chunks are the base store's, nothing is wrapped, and the concat
// equals Scan for every chunk budget.
func TestScanChunksEmptyOverlay(t *testing.T) {
	var g rdf.Graph
	for i := 0; i < 20; i++ {
		g.Append(iri("s"), iri("p"), rdf.NewInteger(int64(i)))
	}
	snap := Wrap(store.Load(g)).Snapshot()
	want := scanAll(snap, store.IDTriple{})
	if len(want) != 20 {
		t.Fatalf("scan: %d rows, want 20", len(want))
	}
	for _, n := range []int{1, 3, 7, 20, 100} {
		if got := chunkConcat(snap, store.IDTriple{}, n); !reflect.DeepEqual(got, want) {
			t.Errorf("n=%d: chunk concat %d rows != scan %d rows", n, len(got), len(want))
		}
	}
}

// TestScanChunksAllDeletedChunk deletes a contiguous key range wide
// enough to cover entire base chunks: the masked chunks must yield
// nothing (without being dropped from the slice) and the concat must
// still equal Scan exactly.
func TestScanChunksAllDeletedChunk(t *testing.T) {
	var g rdf.Graph
	for i := 0; i < 40; i++ {
		g.Append(iri("s"), iri("p"), rdf.NewInteger(int64(i)))
	}
	ls := Wrap(store.Load(g))
	// Delete the middle half — with 8 chunks over 40 rows, several
	// chunks' rows are entirely deletion-masked.
	var del Batch
	for i := 10; i < 30; i++ {
		del.Delete = append(del.Delete, rdf.NewTriple(iri("s"), iri("p"), rdf.NewInteger(int64(i))))
	}
	ls.Apply(del)
	snap := ls.Snapshot()

	want := scanAll(snap, store.IDTriple{})
	if len(want) != 20 {
		t.Fatalf("scan after delete: %d rows, want 20", len(want))
	}
	chunks := snap.ScanChunks(store.IDTriple{}, 8)
	var got []store.IDTriple
	emptyChunks := 0
	for _, chunk := range chunks {
		before := len(got)
		chunk(func(t store.IDTriple) bool {
			got = append(got, t)
			return true
		})
		if len(got) == before {
			emptyChunks++
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("chunk concat %d rows != scan %d rows", len(got), len(want))
	}
	if emptyChunks == 0 {
		t.Error("no chunk was fully deletion-masked; widen the deleted range")
	}
}

// TestScanChunksOverlayOnlyAdditions matches a pattern only overlay
// additions satisfy: the base contributes no chunks with rows, the
// additions ride in their own final chunk, and concat equals Scan.
func TestScanChunksOverlayOnlyAdditions(t *testing.T) {
	var g rdf.Graph
	g.Append(iri("s"), iri("p"), iri("o"))
	ls := Wrap(store.Load(g))
	var add Batch
	for i := 0; i < 5; i++ {
		add.Insert = append(add.Insert, rdf.NewTriple(iri("s"), iri("q"), rdf.NewInteger(int64(i))))
	}
	ls.Apply(add)
	snap := ls.Snapshot()

	// Pattern (? q ?): every match lives in the overlay.
	qid, ok := snap.Dict().Lookup(iri("q"))
	if !ok {
		t.Fatal("q not interned")
	}
	pat := store.IDTriple{P: qid}
	want := scanAll(snap, pat)
	if len(want) != 5 {
		t.Fatalf("scan: %d rows, want 5", len(want))
	}
	for _, n := range []int{1, 4} {
		if got := chunkConcat(snap, pat, n); !reflect.DeepEqual(got, want) {
			t.Errorf("n=%d: chunk concat %d rows != scan %d rows", n, len(got), len(want))
		}
	}

	// The merged view (? ? ?) still interleaves correctly: base rows
	// first, additions last, matching Scan's contract.
	all := scanAll(snap, store.IDTriple{})
	if got := chunkConcat(snap, store.IDTriple{}, 3); !reflect.DeepEqual(got, all) {
		t.Errorf("full-view chunk concat %d rows != scan %d rows", len(got), len(all))
	}
}
