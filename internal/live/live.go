// Package live adds a concurrent read/write layer on top of the frozen
// base store.Store: an LSM-style delta overlay (sorted added/deleted
// fragments merged into scans), copy-on-write snapshots so in-flight
// queries always see one consistent version, and background compaction
// that folds the overlay into a new frozen base once it grows past a
// threshold. See docs/LIVE_UPDATES.md for the design.
//
// The layer maintains three invariants:
//
//   - Snapshot consistency: a Snapshot is immutable once obtained — it
//     pins one (base, overlay) pair, so a query that runs for seconds
//     never observes a commit that landed mid-scan. Readers are
//     wait-free; only the pointer swap publishing a new snapshot is
//     synchronized.
//
//   - Compaction serialization: at most one compaction runs at a time
//     (compactMu, held start to finish). Compact releases the writer
//     mutex during its O(n) build phase and afterwards rebases commits
//     that landed meanwhile, assuming the base it built from is still
//     current; two overlapping compactions would break that assumption
//     and publish an inverted residual overlay. The compacting flag only
//     dedupes *scheduling* of background runs, never guards execution.
//
//   - Equivalent visibility: scans over (base + overlay) enumerate
//     exactly the triples a from-scratch frozen store holding the same
//     logical set would — adds merged in sort order, deletes masked —
//     so the engine, the statistics maintainer, and the WAL see one
//     truth regardless of compaction timing.
package live

import (
	"sync"
	"sync/atomic"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

// Store is a mutable triple store built from an immutable base plus a
// delta overlay. Readers call Snapshot and are wait-free; writers are
// serialized by an internal mutex and publish a new snapshot per batch.
type Store struct {
	mu  sync.Mutex // serializes Apply, SetAutoCompact, and Compact's publish phase
	cur atomic.Pointer[Snapshot]

	// compactMu serializes whole compactions. Compact releases ls.mu
	// during its build phase and rebases concurrent commits afterwards
	// under the assumption that the base did not change in between — an
	// overlapping Compact (background vs. a direct call from
	// WriteSnapshot/Reannotate) would break that and publish an inverted
	// residual, so every Compact holds compactMu start to finish.
	compactMu sync.Mutex

	compactThreshold int         // overlay size triggering background compaction; <=0 disables
	compacting       atomic.Bool // guards scheduling, not execution: see compactMu
	wg               sync.WaitGroup
}

// Wrap turns a frozen base store into a live store with an empty overlay.
func Wrap(base *store.Store) *Store {
	base.Len() // panics if the base is not frozen, the contract violation we want loud
	ls := &Store{}
	ls.cur.Store(&Snapshot{base: base})
	return ls
}

// Snapshot returns the current version of the dataset. The returned
// snapshot is immutable and remains valid (and consistent) indefinitely,
// however many commits or compactions happen after.
func (ls *Store) Snapshot() *Snapshot { return ls.cur.Load() }

// Base returns the current frozen base store, excluding any overlay.
func (ls *Store) Base() *store.Store { return ls.Snapshot().base }

// OverlaySize returns the current overlay's added and deleted counts.
func (ls *Store) OverlaySize() (added, deleted int) {
	return ls.Snapshot().Overlay()
}

// SetAutoCompact sets the overlay size (added+deleted) past which a
// commit schedules background compaction. n <= 0 disables auto-compaction.
func (ls *Store) SetAutoCompact(n int) {
	ls.mu.Lock()
	ls.compactThreshold = n
	ls.mu.Unlock()
}

// Wait blocks until background compactions scheduled so far have
// finished. Intended for shutdown and tests; callers must ensure no
// concurrent Apply can schedule new ones.
func (ls *Store) Wait() { ls.wg.Wait() }

// Close disables background compaction scheduling and waits for any
// in-flight compaction to finish. The store stays readable and Apply
// still commits (without triggering compaction); Close exists so owners
// can guarantee no goroutine outlives them.
func (ls *Store) Close() {
	ls.SetAutoCompact(0)
	ls.wg.Wait()
}

// Batch is one atomic set of changes. Deletions are applied before
// insertions, so a triple appearing in both ends up present.
type Batch struct {
	Insert []rdf.Triple
	Delete []rdf.Triple
}

// View is a consistent read view of a dataset version: the subset of
// Snapshot the statistics maintainer needs. Snapshot implements it; so
// does the shard coordinator's cross-shard view, which is what lets one
// whole-dataset Maintainer run on top of a sharded store (per-shard
// counts sum exactly because shards partition the data).
type View interface {
	Dict() *store.Dict
	Count(pat store.IDTriple) int
	Scan(pat store.IDTriple, fn func(store.IDTriple) bool)
}

// CommitInfo describes the effective changes of one committed batch:
// Inserted triples were absent from Prev and are present in Next, and
// symmetrically for Deleted. Requested no-ops (inserting an existing
// triple, deleting a missing one) are excluded, which is what lets the
// statistics maintainer apply exact deltas.
type CommitInfo struct {
	Prev, Next View
	Inserted   []store.IDTriple
	Deleted    []store.IDTriple
}

// Apply commits a batch atomically: readers see either the previous
// snapshot or the next one, never a partial batch.
func (ls *Store) Apply(b Batch) CommitInfo {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	prev := ls.cur.Load()
	dict := prev.base.Dict()

	added := toSet(prev.added)
	deleted := toSet(prev.deleted)
	var ins, del []store.IDTriple

	for _, t := range b.Delete {
		it, ok := lookupTriple(dict, t)
		if !ok {
			continue // a term nowhere in the data: the triple cannot exist
		}
		switch {
		case added[it]:
			delete(added, it)
		case !deleted[it] && prev.base.Contains(it):
			deleted[it] = true
		default:
			continue // not in the view
		}
		del = append(del, it)
	}
	for _, t := range b.Insert {
		it := store.IDTriple{
			S: dict.Intern(t.S),
			P: dict.Intern(t.P),
			O: dict.Intern(t.O),
		}
		switch {
		case deleted[it]:
			delete(deleted, it) // resurrect a base triple
		case added[it] || prev.base.Contains(it):
			continue // already in the view
		default:
			added[it] = true
		}
		ins = append(ins, it)
	}

	if len(ins) == 0 && len(del) == 0 {
		return CommitInfo{Prev: prev, Next: prev}
	}
	next := &Snapshot{
		base:    prev.base,
		added:   store.NewFragment(setSlice(added)),
		deleted: store.NewFragment(setSlice(deleted)),
		gen:     prev.gen + 1,
	}
	ls.cur.Store(next)
	ls.maybeCompact(next)
	return CommitInfo{Prev: prev, Next: next, Inserted: ins, Deleted: del}
}

// maybeCompact schedules a background compaction when the overlay has
// outgrown the threshold. Called with ls.mu held.
func (ls *Store) maybeCompact(s *Snapshot) {
	if ls.compactThreshold <= 0 {
		return
	}
	if s.added.Len()+s.deleted.Len() < ls.compactThreshold {
		return
	}
	if !ls.compacting.CompareAndSwap(false, true) {
		return // one compaction at a time
	}
	ls.wg.Add(1)
	go func() {
		defer ls.wg.Done()
		defer ls.compacting.Store(false)
		// Best effort: on failure the overlay stays and a later commit
		// re-triggers compaction.
		ls.Compact()
	}()
}

// Compact folds the overlay into a new frozen base and publishes a
// snapshot over it. The bulk of the work (building and freezing the new
// base) runs without blocking writers; commits that land meanwhile are
// carried over as a residual overlay, so the merged view is unchanged.
// Concurrent Compact calls serialize against each other. Returns the
// published snapshot.
func (ls *Store) Compact() (*Snapshot, error) {
	// Whole-compaction mutual exclusion: the phase-2 residual math below
	// is only valid while the base stays the one captured in start, and
	// only another compaction can replace the base.
	ls.compactMu.Lock()
	defer ls.compactMu.Unlock()

	ls.mu.Lock()
	start := ls.cur.Load()
	ls.mu.Unlock()
	if start.added == nil && start.deleted == nil {
		return start, nil
	}

	// Phase 1 (unlocked): materialize start's merged view into a new
	// frozen base sharing the dictionary.
	nb := store.NewWithDict(start.base.Dict())
	var addErr error
	start.Scan(store.IDTriple{}, func(t store.IDTriple) bool {
		addErr = nb.TryAddID(t)
		return addErr == nil
	})
	if addErr != nil {
		return nil, addErr
	}
	nb.Freeze()

	// Phase 2 (locked): rebase commits that landed since start onto the
	// new base. With A0/D0 the overlay at start and A1/D1 the overlay
	// now, the view now is (base \ D1) ∪ A1 and the new base is
	// (base \ D0) ∪ A0; the residual overlay below reproduces the former
	// from the latter (each union is disjoint by the Snapshot invariants).
	ls.mu.Lock()
	defer ls.mu.Unlock()
	cur := ls.cur.Load()
	resAdd := append(diff(cur.added, start.added), diff(start.deleted, cur.deleted)...)
	resDel := append(diff(cur.deleted, start.deleted), diff(start.added, cur.added)...)
	next := &Snapshot{
		base:    nb,
		added:   store.NewFragment(resAdd),
		deleted: store.NewFragment(resDel),
		gen:     cur.gen + 1,
	}
	ls.cur.Store(next)
	return next, nil
}

// toSet expands a fragment into a mutable set.
func toSet(f *store.Fragment) map[store.IDTriple]bool {
	out := make(map[store.IDTriple]bool, f.Len())
	for _, t := range f.Triples() {
		out[t] = true
	}
	return out
}

func setSlice(set map[store.IDTriple]bool) []store.IDTriple {
	out := make([]store.IDTriple, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	return out
}

// diff returns the triples of a that are not in b.
func diff(a, b *store.Fragment) []store.IDTriple {
	var out []store.IDTriple
	for _, t := range a.Triples() {
		if !b.Contains(t) {
			out = append(out, t)
		}
	}
	return out
}

// lookupTriple encodes t without interning, reporting false when any term
// is absent from the dictionary.
func lookupTriple(d *store.Dict, t rdf.Triple) (store.IDTriple, bool) {
	s, ok := d.Lookup(t.S)
	if !ok {
		return store.IDTriple{}, false
	}
	p, ok := d.Lookup(t.P)
	if !ok {
		return store.IDTriple{}, false
	}
	o, ok := d.Lookup(t.O)
	if !ok {
		return store.IDTriple{}, false
	}
	return store.IDTriple{S: s, P: p, O: o}, true
}
