package live

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rdfshapes/internal/annotator"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
	"rdfshapes/internal/store"
)

// exactGlobalsEqual compares the fields the maintainer keeps exact.
func exactGlobalsEqual(t *testing.T, got, want *gstats.Global) {
	t.Helper()
	if got.Triples != want.Triples {
		t.Errorf("Triples = %d, want %d", got.Triples, want.Triples)
	}
	if got.DistinctSubjects != want.DistinctSubjects {
		t.Errorf("DistinctSubjects = %d, want %d", got.DistinctSubjects, want.DistinctSubjects)
	}
	if got.DistinctObjects != want.DistinctObjects {
		t.Errorf("DistinctObjects = %d, want %d", got.DistinctObjects, want.DistinctObjects)
	}
	if len(got.Pred) != len(want.Pred) {
		t.Errorf("len(Pred) = %d, want %d", len(got.Pred), len(want.Pred))
	}
	for p, w := range want.Pred {
		if g := got.Pred[p]; g != w {
			t.Errorf("Pred[%s] = %+v, want %+v", p, g, w)
		}
	}
	if len(got.ClassInstances) != len(want.ClassInstances) {
		t.Errorf("len(ClassInstances) = %d, want %d", len(got.ClassInstances), len(want.ClassInstances))
	}
	for c, w := range want.ClassInstances {
		if g := got.ClassInstances[c]; g != w {
			t.Errorf("ClassInstances[%s] = %d, want %d", c, g, w)
		}
	}
}

// TestMaintainerExactAgainstOracle drives random update batches through
// the maintainer and cross-checks every exactly-maintained statistic
// against a full recompute on the compacted dataset.
func TestMaintainerExactAgainstOracle(t *testing.T) {
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	g.Append(iri("p1"), typ, iri("Person"))
	g.Append(iri("p2"), typ, iri("Person"))
	g.Append(iri("r1"), typ, iri("Robot"))
	g.Append(iri("p1"), iri("name"), rdf.NewLiteral("P1"))
	g.Append(iri("p2"), iri("name"), rdf.NewLiteral("P2"))
	g.Append(iri("p1"), iri("knows"), iri("p2"))
	g.Append(iri("p2"), iri("knows"), iri("p1"))
	g.Append(iri("r1"), iri("serial"), rdf.NewLiteral("007"))
	st := store.Load(g)
	sg, err := shacl.InferShapes(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := annotator.Annotate(sg, st); err != nil {
		t.Fatal(err)
	}
	ls := Wrap(st)
	m := NewMaintainer(Stats{Global: gstats.Compute(st), Shapes: sg}, 0, nil)

	rng := rand.New(rand.NewSource(41))
	subjects := []string{"p1", "p2", "p3", "p4", "r1", "r2"}
	classes := []string{"Person", "Robot"}
	preds := []string{"name", "knows", "serial"}
	objects := []rdf.Term{iri("p1"), iri("p2"), rdf.NewLiteral("v1"), rdf.NewLiteral("v2")}

	randOp := func() rdf.Triple {
		s := iri(subjects[rng.Intn(len(subjects))])
		if rng.Intn(4) == 0 { // type triple
			return rdf.NewTriple(s, typ, iri(classes[rng.Intn(len(classes))]))
		}
		return rdf.NewTriple(s, iri(preds[rng.Intn(len(preds))]), objects[rng.Intn(len(objects))])
	}

	for step := 0; step < 120; step++ {
		var b Batch
		for i := rng.Intn(3); i >= 0; i-- {
			if rng.Intn(3) == 0 {
				b.Delete = append(b.Delete, randOp())
			} else {
				b.Insert = append(b.Insert, randOp())
			}
		}
		m.Apply(ls.Apply(b))
	}

	snap, err := ls.Compact()
	if err != nil {
		t.Fatal(err)
	}
	frozen := snap.Base()

	cur := m.Current()
	exactGlobalsEqual(t, cur.Global, gstats.Compute(frozen))

	oracle := cur.Shapes.Clone()
	if err := annotator.Annotate(oracle, frozen); err != nil {
		t.Fatal(err)
	}
	for _, want := range oracle.Shapes() {
		got := cur.Shapes.ByClass(want.TargetClass)
		if got == nil {
			t.Errorf("shape for %s missing from maintained graph", want.TargetClass)
			continue
		}
		if got.Count != want.Count {
			t.Errorf("%s: sh:count = %d, want %d", want.TargetClass, got.Count, want.Count)
		}
		for _, wp := range want.Properties {
			gp := got.Property(wp.Path)
			if gp == nil || gp.Stats == nil || wp.Stats == nil {
				continue
			}
			if gp.Stats.Count != wp.Stats.Count {
				t.Errorf("%s %s: sh:count = %d, want %d",
					want.TargetClass, wp.Path, gp.Stats.Count, wp.Stats.Count)
			}
			if gp.Stats.DistinctSubjectCount != wp.Stats.DistinctSubjectCount {
				t.Errorf("%s %s: sh:distinctSubjectCount = %d, want %d",
					want.TargetClass, wp.Path, gp.Stats.DistinctSubjectCount, wp.Stats.DistinctSubjectCount)
			}
		}
	}
}

// TestMaintainerPublishesClones verifies that Apply never mutates a
// previously returned Stats value.
func TestMaintainerPublishesClones(t *testing.T) {
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	g.Append(iri("p1"), typ, iri("Person"))
	g.Append(iri("p1"), iri("name"), rdf.NewLiteral("P1"))
	st := store.Load(g)
	sg, err := shacl.InferShapes(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := annotator.Annotate(sg, st); err != nil {
		t.Fatal(err)
	}
	ls := Wrap(st)
	m := NewMaintainer(Stats{Global: gstats.Compute(st), Shapes: sg}, 0, nil)

	before := m.Current()
	wantTriples := before.Global.Triples
	wantCount := before.Shapes.ByClass("http://x/Person").Count

	m.Apply(ls.Apply(Batch{Insert: []rdf.Triple{
		rdf.NewTriple(iri("p2"), typ, iri("Person")),
		rdf.NewTriple(iri("p2"), iri("name"), rdf.NewLiteral("P2")),
	}}))

	if before.Global.Triples != wantTriples {
		t.Error("Apply mutated a published Global")
	}
	if before.Shapes.ByClass("http://x/Person").Count != wantCount {
		t.Error("Apply mutated a published ShapesGraph")
	}
	after := m.Current()
	if after.Global.Triples != wantTriples+2 {
		t.Errorf("Triples = %d, want %d", after.Global.Triples, wantTriples+2)
	}
	if c := after.Shapes.ByClass("http://x/Person").Count; c != wantCount+1 {
		t.Errorf("Person sh:count = %d, want %d", c, wantCount+1)
	}
}

// TestMaintainerDriftTrigger verifies the one-shot onDrift trigger and
// its re-arming by Reset.
func TestMaintainerDriftTrigger(t *testing.T) {
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	g.Append(iri("p1"), typ, iri("Person"))
	g.Append(iri("p1"), iri("name"), rdf.NewLiteral("P1"))
	st := store.Load(g)
	sg, err := shacl.InferShapes(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := annotator.Annotate(sg, st); err != nil {
		t.Fatal(err)
	}
	ls := Wrap(st)
	fired := make(chan struct{}, 8)
	m := NewMaintainer(Stats{Global: gstats.Compute(st), Shapes: sg}, 1, func() {
		fired <- struct{}{}
	})

	// a data triple for a predicate the Person shape does not describe
	// is one of the documented drift sources
	driftBatch := func(n int) Batch {
		return Batch{Insert: []rdf.Triple{
			rdf.NewTriple(iri("p1"), iri(fmt.Sprintf("undescribed%d", n)), rdf.NewLiteral("x")),
		}}
	}
	m.Apply(ls.Apply(driftBatch(0)))
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("onDrift did not fire past the threshold")
	}
	if m.Drift() == 0 {
		t.Error("Drift = 0 after a drifting commit")
	}

	// further drift must not re-fire while the first shot is outstanding
	m.Apply(ls.Apply(driftBatch(1)))
	select {
	case <-fired:
		t.Fatal("onDrift fired twice without a Reset")
	case <-time.After(50 * time.Millisecond):
	}

	// Reset re-arms; the next drifting commit fires again
	m.Reset(m.Current())
	if m.Drift() != 0 {
		t.Error("Drift not zeroed by Reset")
	}
	m.Apply(ls.Apply(driftBatch(2)))
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("onDrift did not fire after Reset")
	}
}
