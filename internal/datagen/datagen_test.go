// Package datagen_test exercises the three dataset generators together:
// determinism, scaling, schema conformance (every generated dataset must
// validate against its shipped/inferred shapes), and the statistical
// properties the paper's evaluation relies on.
package datagen_test

import (
	"testing"

	"rdfshapes/internal/annotator"
	"rdfshapes/internal/datagen/lubm"
	"rdfshapes/internal/datagen/watdiv"
	"rdfshapes/internal/datagen/yago"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
	"rdfshapes/internal/store"
)

func TestLUBMDeterminism(t *testing.T) {
	a := lubm.Generate(lubm.Config{Universities: 1, Seed: 3})
	b := lubm.Generate(lubm.Config{Universities: 1, Seed: 3})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := lubm.Generate(lubm.Config{Universities: 1, Seed: 4})
	same := len(a) == len(c)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == c[i]
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestLUBMScaling(t *testing.T) {
	small := lubm.Generate(lubm.Config{Universities: 1, Seed: 3})
	big := lubm.Generate(lubm.Config{Universities: 3, Seed: 3})
	if len(big) < 2*len(small) {
		t.Errorf("scaling too weak: %d vs %d triples", len(small), len(big))
	}
	// degenerate config is clamped
	tiny := lubm.Generate(lubm.Config{Universities: 0, Seed: 3})
	if len(tiny) == 0 {
		t.Error("zero-university config generated nothing")
	}
}

func TestLUBMClassRatios(t *testing.T) {
	st := store.Load(lubm.Generate(lubm.Config{Universities: 1, Seed: 3}))
	g := gstats.Compute(st)
	inst := func(class string) int64 { return g.ClassInstances[class] }
	if inst(lubm.UndergraduateStudent) <= inst(lubm.GraduateStudent) {
		t.Error("undergrads must outnumber grads")
	}
	if inst(lubm.GraduateStudent) <= inst(lubm.FullProfessor) {
		t.Error("grads must outnumber full professors")
	}
	// ub:name spans many classes: its global count must dwarf any class
	nameCount := g.Pred[lubm.Name].Count
	if nameCount <= 3*inst(lubm.FullProfessor) {
		t.Errorf("name count %d too close to class size %d — the paper's correlation gap needs generic predicates", nameCount, inst(lubm.FullProfessor))
	}
}

func TestLUBMValidatesAgainstShippedShapes(t *testing.T) {
	st := store.Load(lubm.Generate(lubm.Config{Universities: 1, Seed: 3}))
	sg := lubm.Shapes()
	if vs := sg.Validate(st, 5); len(vs) != 0 {
		t.Errorf("generated data violates shipped shapes: %v", vs)
	}
}

func TestLUBMShapesCoverData(t *testing.T) {
	// every (class, predicate) pair in the data must have a property
	// shape, otherwise the SS estimator would misreport empty patterns
	st := store.Load(lubm.Generate(lubm.Config{Universities: 1, Seed: 3}))
	shipped := lubm.Shapes()
	inferred, err := shacl.InferShapes(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, ns := range inferred.Shapes() {
		shippedNS := shipped.ByClass(ns.TargetClass)
		if shippedNS == nil {
			t.Errorf("class %s has no shipped shape", ns.TargetClass)
			continue
		}
		for _, ps := range ns.Properties {
			if shippedNS.Property(ps.Path) == nil {
				t.Errorf("shipped shape for %s misses predicate %s", ns.TargetClass, ps.Path)
			}
		}
	}
}

func TestWatDivDeterminismAndScaling(t *testing.T) {
	a := watdiv.Generate(watdiv.Config{Products: 200, Seed: 3})
	b := watdiv.Generate(watdiv.Config{Products: 200, Seed: 3})
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d differs", i)
		}
	}
	big := watdiv.Generate(watdiv.Config{Products: 800, Seed: 3})
	if len(big) < 2*len(a) {
		t.Errorf("scaling too weak: %d vs %d", len(a), len(big))
	}
	tiny := watdiv.Generate(watdiv.Config{Products: 1, Seed: 3})
	if len(tiny) == 0 {
		t.Error("minimum config generated nothing")
	}
}

func TestWatDivTypeCorrelatedAttributes(t *testing.T) {
	st := store.Load(watdiv.Generate(watdiv.Config{Products: 500, Seed: 3}))
	sg := watdiv.Shapes()
	if err := annotator.Annotate(sg, st); err != nil {
		t.Fatal(err)
	}
	movie := sg.ByClass(watdiv.Movie)
	book := sg.ByClass(watdiv.Book)
	// every movie has a duration; no book does
	if movie.Property(watdiv.Duration).Stats.MinCount != 1 {
		t.Error("movies must all have durations")
	}
	if ps := book.Property(watdiv.Duration); ps != nil {
		t.Error("books must not have a duration shape")
	}
	if book.Property(watdiv.NumPages).Stats.Count == 0 {
		t.Error("books must have page counts")
	}
}

func TestWatDivValidates(t *testing.T) {
	st := store.Load(watdiv.Generate(watdiv.Config{Products: 200, Seed: 3}))
	if vs := watdiv.Shapes().Validate(st, 5); len(vs) != 0 {
		t.Errorf("generated data violates shipped shapes: %v", vs)
	}
}

func TestWatDivSkew(t *testing.T) {
	st := store.Load(watdiv.Generate(watdiv.Config{Products: 1000, Seed: 3}))
	g := gstats.Compute(st)
	likes := g.Pred[watdiv.Likes]
	if likes.Count == 0 {
		t.Fatal("no likes generated")
	}
	// Zipf skew: distinct objects of likes must be far below product count
	if likes.DOC*3 > likes.Count {
		t.Errorf("likes not skewed: %d triples over %d objects", likes.Count, likes.DOC)
	}
}

func TestYAGODeterminismAndHeterogeneity(t *testing.T) {
	a := yago.Generate(yago.Config{Entities: 2000, Seed: 3})
	b := yago.Generate(yago.Config{Entities: 2000, Seed: 3})
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d differs", i)
		}
	}
	st := store.Load(a)
	g := gstats.Compute(st)
	if g.DistinctTypeObjects() < 50 {
		t.Errorf("only %d classes; YAGO analog needs a long tail", g.DistinctTypeObjects())
	}
	// multi-typing: more type triples than typed subjects
	ts := g.TypeStat()
	if ts.Count <= ts.DSC {
		t.Error("no multi-typed entities")
	}
}

func TestYAGOInferredShapesAnnotate(t *testing.T) {
	st := store.Load(yago.Generate(yago.Config{Entities: 2000, Seed: 3}))
	sg, err := shacl.InferShapes(st)
	if err != nil {
		t.Fatal(err)
	}
	if sg.Len() < 50 {
		t.Errorf("inferred only %d shapes", sg.Len())
	}
	if err := annotator.Annotate(sg, st); err != nil {
		t.Fatal(err)
	}
	if !sg.Annotated() {
		t.Error("annotation incomplete")
	}
	// the Person shape must know every person has a birthplace
	person := sg.ByClass(yago.Person)
	if person == nil {
		t.Fatal("no Person shape inferred")
	}
	bp := person.Property(yago.BirthPlace)
	if bp == nil || bp.Stats.MinCount != 1 {
		t.Errorf("birthPlace stats = %+v, want MinCount 1", bp)
	}
}

func TestGeneratorsEmitValidRDF(t *testing.T) {
	graphs := map[string]rdf.Graph{
		"lubm":   lubm.Generate(lubm.Config{Universities: 1, Seed: 1}),
		"watdiv": watdiv.Generate(watdiv.Config{Products: 100, Seed: 1}),
		"yago":   yago.Generate(yago.Config{Entities: 500, Seed: 1}),
	}
	for name, g := range graphs {
		for i, tr := range g {
			if !tr.S.IsIRI() && !tr.S.IsBlank() {
				t.Fatalf("%s triple %d: literal subject %v", name, i, tr.S)
			}
			if !tr.P.IsIRI() {
				t.Fatalf("%s triple %d: non-IRI predicate %v", name, i, tr.P)
			}
			if tr.O.IsZero() {
				t.Fatalf("%s triple %d: zero object", name, i)
			}
		}
	}
}

func TestPrefixesResolve(t *testing.T) {
	cases := map[string]struct {
		pm    *rdf.PrefixMap
		qname string
		want  string
	}{
		"lubm":   {lubm.Prefixes(), "ub:name", lubm.Name},
		"watdiv": {watdiv.Prefixes(), "wsdbm:likes", watdiv.Likes},
		"yago":   {yago.Prefixes(), "schema:birthPlace", yago.BirthPlace},
	}
	for name, tc := range cases {
		got, err := tc.pm.Expand(tc.qname)
		if err != nil || got != tc.want {
			t.Errorf("%s: Expand(%s) = %q, %v", name, tc.qname, got, err)
		}
	}
}
