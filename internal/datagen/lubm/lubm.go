// Package lubm generates a deterministic analog of the LUBM benchmark
// dataset (Guo, Pan, Heflin 2005): universities with departments,
// faculty, students, courses, and publications, reproducing LUBM's
// correlation structure — e.g. graduate students take graduate courses,
// advisors of graduate students are professors, and generic predicates
// such as ub:name span many classes so that class-scoped statistics
// diverge sharply from global ones.
//
// The paper evaluates on LUBM-500 (91 M triples); this generator scales
// by university count (roughly 55 K triples per university), which
// preserves all ratios the optimizer cares about while staying
// laptop-sized, as recorded in DESIGN.md.
package lubm

import (
	"fmt"
	"math/rand"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
)

// NS is the vocabulary namespace of the generated data.
const NS = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"

// Class IRIs.
const (
	University           = NS + "University"
	Department           = NS + "Department"
	FullProfessor        = NS + "FullProfessor"
	AssociateProfessor   = NS + "AssociateProfessor"
	AssistantProfessor   = NS + "AssistantProfessor"
	Lecturer             = NS + "Lecturer"
	GraduateStudent      = NS + "GraduateStudent"
	UndergraduateStudent = NS + "UndergraduateStudent"
	GraduateCourse       = NS + "GraduateCourse"
	Course               = NS + "Course"
	ResearchGroup        = NS + "ResearchGroup"
	Publication          = NS + "Publication"
)

// Predicate IRIs.
const (
	Name              = NS + "name"
	TeacherOf         = NS + "teacherOf"
	Advisor           = NS + "advisor"
	TakesCourse       = NS + "takesCourse"
	DegreeFrom        = NS + "degreeFrom"
	UndergradDegree   = NS + "undergraduateDegreeFrom"
	MemberOf          = NS + "memberOf"
	SubOrganizationOf = NS + "subOrganizationOf"
	WorksFor          = NS + "worksFor"
	EmailAddress      = NS + "emailAddress"
	Telephone         = NS + "telephone"
	ResearchInterest  = NS + "researchInterest"
	PublicationAuthor = NS + "publicationAuthor"
	HeadOf            = NS + "headOf"
)

// Config parameterizes generation.
type Config struct {
	// Universities scales the dataset (≈55 K triples each). Values < 1
	// are treated as 1.
	Universities int
	// Seed makes generation deterministic; the same seed yields the
	// same graph.
	Seed int64
}

// Prefixes returns the prefix map for queries over the generated data.
func Prefixes() *rdf.PrefixMap {
	pm := rdf.CommonPrefixes()
	pm.Bind("ub", NS)
	return pm
}

// Per-department entity counts; departments per university vary 12–18.
const (
	fullProfsPerDept  = 8
	assocProfsPerDept = 10
	asstProfsPerDept  = 12
	lecturersPerDept  = 8
	gradsPerDept      = 60
	undergradsPerDept = 150
	gradCoursesPer    = 24
	coursesPerDept    = 36
	groupsPerDept     = 10
)

// Generate builds the data graph.
func Generate(cfg Config) rdf.Graph {
	if cfg.Universities < 1 {
		cfg.Universities = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &builder{rng: rng}

	interests := make([]rdf.Term, 40)
	for i := range interests {
		interests[i] = rdf.NewLiteral(fmt.Sprintf("Research%d", i))
	}

	universities := make([]rdf.Term, cfg.Universities)
	for u := range universities {
		uni := iri("University%d", u)
		universities[u] = uni
		g.typed(uni, University)
		g.add(uni, Name, rdf.NewLiteral(fmt.Sprintf("University%d", u)))
	}

	for u, uni := range universities {
		depts := 12 + rng.Intn(7)
		for d := 0; d < depts; d++ {
			g.department(u, d, uni, universities, interests)
		}
	}
	return g.graph
}

type builder struct {
	rng   *rand.Rand
	graph rdf.Graph
}

func iri(format string, args ...any) rdf.Term {
	return rdf.NewIRI("http://www.lubm.example/" + fmt.Sprintf(format, args...))
}

func (b *builder) add(s rdf.Term, p string, o rdf.Term) {
	b.graph.Append(s, rdf.NewIRI(p), o)
}

func (b *builder) typed(s rdf.Term, class string) {
	b.graph.Append(s, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(class))
}

// person emits the attribute triples every person carries.
func (b *builder) person(s rdf.Term, label string, dept rdf.Term) {
	b.add(s, Name, rdf.NewLiteral(label))
	b.add(s, EmailAddress, rdf.NewLiteral(label+"@lubm.example"))
	b.add(s, MemberOf, dept)
}

func (b *builder) department(u, d int, uni rdf.Term, universities []rdf.Term, interests []rdf.Term) {
	rng := b.rng
	dept := iri("U%d/Dept%d", u, d)
	b.typed(dept, Department)
	b.add(dept, Name, rdf.NewLiteral(fmt.Sprintf("Department%d-%d", u, d)))
	b.add(dept, SubOrganizationOf, uni)

	for i := 0; i < groupsPerDept; i++ {
		grp := iri("U%d/Dept%d/Group%d", u, d, i)
		b.typed(grp, ResearchGroup)
		b.add(grp, SubOrganizationOf, dept)
	}

	// Courses first so teachers and students can reference them.
	gradCourses := make([]rdf.Term, gradCoursesPer)
	for i := range gradCourses {
		c := iri("U%d/Dept%d/GradCourse%d", u, d, i)
		gradCourses[i] = c
		b.typed(c, GraduateCourse)
		b.add(c, Name, rdf.NewLiteral(fmt.Sprintf("GradCourse%d-%d-%d", u, d, i)))
	}
	courses := make([]rdf.Term, coursesPerDept)
	for i := range courses {
		c := iri("U%d/Dept%d/Course%d", u, d, i)
		courses[i] = c
		b.typed(c, Course)
		b.add(c, Name, rdf.NewLiteral(fmt.Sprintf("Course%d-%d-%d", u, d, i)))
	}

	type facultyDef struct {
		class string
		count int
		label string
	}
	defs := []facultyDef{
		{FullProfessor, fullProfsPerDept, "FullProfessor"},
		{AssociateProfessor, assocProfsPerDept, "AssociateProfessor"},
		{AssistantProfessor, asstProfsPerDept, "AssistantProfessor"},
		{Lecturer, lecturersPerDept, "Lecturer"},
	}
	var professors []rdf.Term // advisor targets (all but lecturers)
	var faculty []rdf.Term
	for _, def := range defs {
		for i := 0; i < def.count; i++ {
			f := iri("U%d/Dept%d/%s%d", u, d, def.label, i)
			b.typed(f, def.class)
			b.person(f, fmt.Sprintf("%s%d-%d-%d", def.label, u, d, i), dept)
			b.add(f, WorksFor, dept)
			b.add(f, Telephone, rdf.NewLiteral(fmt.Sprintf("+45-%d%d%d", u, d, i)))
			b.add(f, ResearchInterest, interests[rng.Intn(len(interests))])
			// 1–3 degrees from random universities
			for n := 1 + rng.Intn(3); n > 0; n-- {
				b.add(f, DegreeFrom, universities[rng.Intn(len(universities))])
			}
			// Full professors teach graduate courses; others mostly
			// undergraduate courses — the class/predicate correlation
			// the example query Q exploits.
			if def.class == FullProfessor {
				b.add(f, TeacherOf, gradCourses[rng.Intn(len(gradCourses))])
				if rng.Intn(2) == 0 {
					b.add(f, TeacherOf, gradCourses[rng.Intn(len(gradCourses))])
				}
			} else {
				b.add(f, TeacherOf, courses[rng.Intn(len(courses))])
				if def.class == AssociateProfessor && rng.Intn(3) == 0 {
					b.add(f, TeacherOf, gradCourses[rng.Intn(len(gradCourses))])
				}
			}
			faculty = append(faculty, f)
			if def.class != Lecturer {
				professors = append(professors, f)
			}
		}
	}
	// One full professor heads the department.
	b.add(faculty[0], HeadOf, dept)

	for i := 0; i < gradsPerDept; i++ {
		s := iri("U%d/Dept%d/Grad%d", u, d, i)
		b.typed(s, GraduateStudent)
		b.person(s, fmt.Sprintf("GradStudent%d-%d-%d", u, d, i), dept)
		b.add(s, Advisor, professors[rng.Intn(len(professors))])
		b.add(s, UndergradDegree, universities[rng.Intn(len(universities))])
		b.add(s, DegreeFrom, universities[rng.Intn(len(universities))])
		// graduate students take 2–3 graduate courses
		for n := 2 + rng.Intn(2); n > 0; n-- {
			b.add(s, TakesCourse, gradCourses[rng.Intn(len(gradCourses))])
		}
	}
	for i := 0; i < undergradsPerDept; i++ {
		s := iri("U%d/Dept%d/Undergrad%d", u, d, i)
		b.typed(s, UndergraduateStudent)
		b.person(s, fmt.Sprintf("Undergrad%d-%d-%d", u, d, i), dept)
		if rng.Intn(5) == 0 {
			b.add(s, Advisor, professors[rng.Intn(len(professors))])
		}
		for n := 2 + rng.Intn(3); n > 0; n-- {
			b.add(s, TakesCourse, courses[rng.Intn(len(courses))])
		}
	}

	// Publications: each professor authors 3–8, sometimes co-authored
	// with a graduate student of the department.
	pubNo := 0
	for _, f := range professors {
		for n := 3 + rng.Intn(6); n > 0; n-- {
			p := iri("U%d/Dept%d/Pub%d", u, d, pubNo)
			pubNo++
			b.typed(p, Publication)
			b.add(p, Name, rdf.NewLiteral(fmt.Sprintf("Publication%d-%d-%d", u, d, pubNo)))
			b.add(p, PublicationAuthor, f)
			if rng.Intn(3) == 0 {
				grad := iri("U%d/Dept%d/Grad%d", u, d, rng.Intn(gradsPerDept))
				b.add(p, PublicationAuthor, grad)
			}
		}
	}
}

// Shapes returns the hand-authored (unannotated) SHACL shapes graph that
// "ships with" the dataset, mirroring how the paper assumes shapes are
// provided for LUBM. Property shapes cover the predicates each class's
// instances carry.
func Shapes() *shacl.ShapesGraph {
	sg := shacl.NewShapesGraph()
	add := func(class string, preds ...string) {
		ns := shacl.NewNodeShape("urn:shapes:lubm:"+local(class), class)
		for _, p := range preds {
			kind := "IRI"
			switch p {
			case Name, EmailAddress, Telephone, ResearchInterest:
				kind = "Literal"
			}
			ps := &shacl.PropertyShape{
				IRI:      ns.IRI + "-" + local(p),
				Path:     p,
				NodeKind: kind,
			}
			if kind == "Literal" {
				ps.Datatype = rdf.XSDString
			}
			if err := ns.AddProperty(ps); err != nil {
				panic(err) // static construction: duplicates are a bug
			}
		}
		if err := sg.Add(ns); err != nil {
			panic(err)
		}
	}
	personPreds := []string{Name, EmailAddress, MemberOf}
	facultyPreds := append([]string{WorksFor, Telephone, ResearchInterest, DegreeFrom, TeacherOf}, personPreds...)
	add(University, Name)
	add(Department, Name, SubOrganizationOf)
	add(ResearchGroup, SubOrganizationOf)
	add(FullProfessor, append([]string{HeadOf}, facultyPreds...)...)
	add(AssociateProfessor, facultyPreds...)
	add(AssistantProfessor, facultyPreds...)
	add(Lecturer, facultyPreds...)
	add(GraduateStudent, append([]string{Advisor, UndergradDegree, DegreeFrom, TakesCourse}, personPreds...)...)
	add(UndergraduateStudent, append([]string{Advisor, TakesCourse}, personPreds...)...)
	add(GraduateCourse, Name)
	add(Course, Name)
	add(Publication, Name, PublicationAuthor)
	return sg
}

func local(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '#' || iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}
