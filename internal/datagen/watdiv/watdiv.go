// Package watdiv generates a deterministic analog of the WatDiv stress
// testing dataset (Aluç et al., ISWC 2014): an e-commerce graph of users,
// products, retailers, offers, and reviews. It reproduces the two traits
// the benchmark was designed around and that break global statistics:
//
//   - type-correlated attributes: products split into categories and
//     several predicates occur only on some categories (e.g. only movies
//     have wsdbm:duration), so per-class statistics differ wildly from
//     per-predicate ones;
//   - heavy skew: purchases, likes, and follows draw from Zipf-like
//     distributions, so uniformity assumptions misfire.
//
// The paper uses WATDIV-S (109 M) and WATDIV-L (1 B triples); this
// generator scales by a product-count parameter (DESIGN.md records the
// substitution).
package watdiv

import (
	"fmt"
	"math/rand"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
)

// NS is the vocabulary namespace of the generated data.
const NS = "http://db.uwaterloo.ca/~galuc/wsdbm/"

// Class IRIs.
const (
	User     = NS + "User"
	Product  = NS + "Product"
	Movie    = NS + "Movie"
	Book     = NS + "Book"
	Album    = NS + "Album"
	Retailer = NS + "Retailer"
	Offer    = NS + "Offer"
	Review   = NS + "Review"
	Website  = NS + "Website"
	Genre    = NS + "Genre"
	Country  = NS + "Country"
)

// Predicate IRIs.
const (
	Label        = NS + "label"
	Follows      = NS + "follows"
	Likes        = NS + "likes"
	MakesReview  = NS + "makesReview"
	ReviewFor    = NS + "reviewFor"
	Rating       = NS + "rating"
	ReviewText   = NS + "text"
	OfferFor     = NS + "offerFor"
	OfferedBy    = NS + "offeredBy"
	Price        = NS + "price"
	HasGenre     = NS + "hasGenre"
	Duration     = NS + "duration"  // movies only
	NumPages     = NS + "numPages"  // books only
	Artist       = NS + "artist"    // albums only
	LocatedIn    = NS + "locatedIn" // users and retailers
	Homepage     = NS + "homepage"
	SubscribesTo = NS + "subscribesTo"
)

// Config parameterizes generation.
type Config struct {
	// Products scales the dataset; users = 2×products, reviews ≈
	// 3×products (≈24 triples per product overall). Values < 10 are
	// raised to 10.
	Products int
	// Seed makes generation deterministic.
	Seed int64
}

// Prefixes returns the prefix map for queries over the generated data.
func Prefixes() *rdf.PrefixMap {
	pm := rdf.CommonPrefixes()
	pm.Bind("wsdbm", NS)
	return pm
}

// Generate builds the data graph.
func Generate(cfg Config) rdf.Graph {
	if cfg.Products < 10 {
		cfg.Products = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var g rdf.Graph
	typ := rdf.NewIRI(rdf.RDFType)
	add := func(s rdf.Term, p string, o rdf.Term) { g.Append(s, rdf.NewIRI(p), o) }
	typed := func(s rdf.Term, class string) { g.Append(s, typ, rdf.NewIRI(class)) }
	ent := func(format string, args ...any) rdf.Term {
		return rdf.NewIRI(NS + fmt.Sprintf(format, args...))
	}

	// zipf draws skewed indexes in [0, n).
	zipfCache := map[int]*rand.Zipf{}
	zipf := func(n int) int {
		z, ok := zipfCache[n]
		if !ok {
			z = rand.NewZipf(rng, 1.3, 4, uint64(n-1))
			zipfCache[n] = z
		}
		return int(z.Uint64())
	}

	nCountries := 20
	countries := make([]rdf.Term, nCountries)
	for i := range countries {
		countries[i] = ent("Country%d", i)
		typed(countries[i], Country)
		add(countries[i], Label, rdf.NewLiteral(fmt.Sprintf("Country %d", i)))
	}
	nGenres := 15
	genres := make([]rdf.Term, nGenres)
	for i := range genres {
		genres[i] = ent("Genre%d", i)
		typed(genres[i], Genre)
		add(genres[i], Label, rdf.NewLiteral(fmt.Sprintf("Genre %d", i)))
	}
	nSites := 25
	sites := make([]rdf.Term, nSites)
	for i := range sites {
		sites[i] = ent("Website%d", i)
		typed(sites[i], Website)
		add(sites[i], Label, rdf.NewLiteral(fmt.Sprintf("Website %d", i)))
	}

	// Products: 50% movies, 30% books, 20% albums. Category-specific
	// predicates create the type correlations.
	products := make([]rdf.Term, cfg.Products)
	for i := range products {
		p := ent("Product%d", i)
		products[i] = p
		typed(p, Product)
		add(p, Label, rdf.NewLiteral(fmt.Sprintf("Product %d", i)))
		switch {
		case i%10 < 5:
			typed(p, Movie)
			add(p, Duration, rdf.NewInteger(int64(60+rng.Intn(120))))
			add(p, HasGenre, genres[zipf(nGenres)])
			if rng.Intn(2) == 0 {
				add(p, HasGenre, genres[zipf(nGenres)])
			}
		case i%10 < 8:
			typed(p, Book)
			add(p, NumPages, rdf.NewInteger(int64(80+rng.Intn(900))))
			if rng.Intn(3) == 0 {
				add(p, HasGenre, genres[zipf(nGenres)])
			}
		default:
			typed(p, Album)
			add(p, Artist, rdf.NewLiteral(fmt.Sprintf("Artist %d", zipf(200))))
			add(p, HasGenre, genres[zipf(nGenres)])
		}
	}

	nRetailers := max(3, cfg.Products/100)
	retailers := make([]rdf.Term, nRetailers)
	for i := range retailers {
		r := ent("Retailer%d", i)
		retailers[i] = r
		typed(r, Retailer)
		add(r, Label, rdf.NewLiteral(fmt.Sprintf("Retailer %d", i)))
		add(r, LocatedIn, countries[zipf(nCountries)])
		add(r, Homepage, sites[rng.Intn(nSites)])
	}

	// Offers: each product offered by 1–3 retailers.
	offerNo := 0
	for _, p := range products {
		for n := 1 + rng.Intn(3); n > 0; n-- {
			o := ent("Offer%d", offerNo)
			offerNo++
			typed(o, Offer)
			add(o, OfferFor, p)
			add(o, OfferedBy, retailers[zipf(nRetailers)])
			add(o, Price, rdf.NewInteger(int64(1+rng.Intn(500))))
		}
	}

	// Users: skewed social graph and product interactions.
	nUsers := cfg.Products * 2
	users := make([]rdf.Term, nUsers)
	for i := range users {
		u := ent("User%d", i)
		users[i] = u
		typed(u, User)
		add(u, Label, rdf.NewLiteral(fmt.Sprintf("User %d", i)))
		add(u, LocatedIn, countries[zipf(nCountries)])
		if rng.Intn(4) == 0 {
			add(u, SubscribesTo, sites[zipf(nSites)])
		}
	}
	for i, u := range users {
		for n := rng.Intn(4); n > 0; n-- {
			f := zipf(nUsers)
			if f != i {
				add(u, Follows, users[f])
			}
		}
		for n := rng.Intn(5); n > 0; n-- {
			add(u, Likes, products[zipf(cfg.Products)])
		}
	}

	// Reviews: ~1.5 per user, skewed toward popular products.
	reviewNo := 0
	for _, u := range users {
		for n := rng.Intn(4); n > 0; n-- {
			r := ent("Review%d", reviewNo)
			reviewNo++
			typed(r, Review)
			add(u, MakesReview, r)
			add(r, ReviewFor, products[zipf(cfg.Products)])
			add(r, Rating, rdf.NewInteger(int64(1+rng.Intn(5))))
			add(r, ReviewText, rdf.NewLiteral(fmt.Sprintf("review text %d", reviewNo)))
		}
	}
	return g
}

// Shapes returns the hand-authored (unannotated) shapes graph shipped
// with the dataset.
func Shapes() *shacl.ShapesGraph {
	sg := shacl.NewShapesGraph()
	add := func(class string, litPreds []string, iriPreds []string) {
		ns := shacl.NewNodeShape("urn:shapes:wsdbm:"+local(class), class)
		for _, p := range litPreds {
			mustAdd(ns, &shacl.PropertyShape{IRI: ns.IRI + "-" + local(p), Path: p, NodeKind: "Literal"})
		}
		for _, p := range iriPreds {
			mustAdd(ns, &shacl.PropertyShape{IRI: ns.IRI + "-" + local(p), Path: p, NodeKind: "IRI"})
		}
		if err := sg.Add(ns); err != nil {
			panic(err)
		}
	}
	add(User, []string{Label}, []string{LocatedIn, SubscribesTo, Follows, Likes, MakesReview})
	add(Product, []string{Label}, []string{HasGenre})
	add(Movie, []string{Label, Duration}, []string{HasGenre})
	add(Book, []string{Label, NumPages}, []string{HasGenre})
	add(Album, []string{Label, Artist}, []string{HasGenre})
	add(Retailer, []string{Label}, []string{LocatedIn, Homepage})
	add(Offer, []string{Price}, []string{OfferFor, OfferedBy})
	add(Review, []string{Rating, ReviewText}, []string{ReviewFor})
	add(Website, []string{Label}, nil)
	add(Genre, []string{Label}, nil)
	add(Country, []string{Label}, nil)
	return sg
}

func mustAdd(ns *shacl.NodeShape, ps *shacl.PropertyShape) {
	if err := ns.AddProperty(ps); err != nil {
		panic(err) // static construction: duplicates are a bug
	}
}

func local(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '#' || iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
