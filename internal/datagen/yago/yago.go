// Package yago generates a deterministic analog of the YAGO-4
// English-Wikipedia subset the paper evaluates on: a heterogeneous
// knowledge graph with a long-tailed class distribution (hundreds of
// classes instead of YAGO's 8 912, scaled with the data), entities with
// multiple types, and strongly skewed predicate usage. Its purpose is to
// exercise the many-shapes code paths: shape inference (the SHACLGEN
// analog), annotation over thousands of (class, predicate) pairs, and
// shape lookup during planning.
package yago

import (
	"fmt"
	"math/rand"

	"rdfshapes/internal/rdf"
)

// NS is the entity/vocabulary namespace of the generated data.
const NS = "http://yago-knowledge.org/resource/"

// Schema namespace (YAGO-4 uses schema.org types).
const Schema = "http://schema.org/"

// Prominent class IRIs referenced by the benchmark queries; the long
// tail of classes is minted as Schema + "Thing<N>".
const (
	Person       = Schema + "Person"
	Actor        = Schema + "Actor"
	Politician   = Schema + "Politician"
	Scientist    = Schema + "Scientist"
	City         = Schema + "City"
	CountryClass = Schema + "Country"
	Organization = Schema + "Organization"
	Movie        = Schema + "Movie"
	BookClass    = Schema + "Book"
	University   = Schema + "University"
)

// Predicate IRIs.
const (
	Label       = "http://www.w3.org/2000/01/rdf-schema#label"
	BirthPlace  = Schema + "birthPlace"
	BirthDate   = Schema + "birthDate"
	Nationality = Schema + "nationality"
	AlumniOf    = Schema + "alumniOf"
	WorksAt     = Schema + "worksFor"
	ActedIn     = Schema + "actorIn"
	Directed    = Schema + "director"
	AuthorOf    = Schema + "author"
	LocatedIn   = Schema + "containedInPlace"
	Population  = Schema + "population"
	FoundedBy   = Schema + "founder"
	MemberOf    = Schema + "memberOf"
	AwardWon    = Schema + "award"
)

// Config parameterizes generation.
type Config struct {
	// Entities scales the dataset (≈8 triples per entity). Values < 100
	// are raised to 100.
	Entities int
	// TailClasses is the number of long-tail classes (default 200).
	TailClasses int
	// Seed makes generation deterministic.
	Seed int64
}

// Prefixes returns the prefix map for queries over the generated data.
func Prefixes() *rdf.PrefixMap {
	pm := rdf.CommonPrefixes()
	pm.Bind("yago", NS)
	pm.Bind("schema", Schema)
	return pm
}

// Generate builds the data graph.
func Generate(cfg Config) rdf.Graph {
	if cfg.Entities < 100 {
		cfg.Entities = 100
	}
	if cfg.TailClasses <= 0 {
		cfg.TailClasses = 200
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var g rdf.Graph
	typ := rdf.NewIRI(rdf.RDFType)
	add := func(s rdf.Term, p string, o rdf.Term) { g.Append(s, rdf.NewIRI(p), o) }
	typed := func(s rdf.Term, class string) { g.Append(s, typ, rdf.NewIRI(class)) }
	ent := func(format string, args ...any) rdf.Term {
		return rdf.NewIRI(NS + fmt.Sprintf(format, args...))
	}

	tail := make([]string, cfg.TailClasses)
	for i := range tail {
		tail[i] = fmt.Sprintf("%sThing%d", Schema, i)
	}
	tailZipf := rand.NewZipf(rng, 1.4, 2, uint64(cfg.TailClasses-1))

	// Places.
	nCountries := 30
	countries := make([]rdf.Term, nCountries)
	for i := range countries {
		c := ent("Country%d", i)
		countries[i] = c
		typed(c, CountryClass)
		add(c, Label, rdf.NewLangLiteral(fmt.Sprintf("Country %d", i), "en"))
	}
	nCities := cfg.Entities / 20
	if nCities < 10 {
		nCities = 10
	}
	cities := make([]rdf.Term, nCities)
	cityZipf := rand.NewZipf(rng, 1.2, 3, uint64(nCities-1))
	for i := range cities {
		c := ent("City%d", i)
		cities[i] = c
		typed(c, City)
		add(c, Label, rdf.NewLangLiteral(fmt.Sprintf("City %d", i), "en"))
		add(c, LocatedIn, countries[rng.Intn(nCountries)])
		add(c, Population, rdf.NewInteger(int64(1000+rng.Intn(5_000_000))))
	}

	// Universities and organizations.
	nUnis := max(5, cfg.Entities/100)
	unis := make([]rdf.Term, nUnis)
	for i := range unis {
		u := ent("University%d", i)
		unis[i] = u
		typed(u, University)
		typed(u, Organization)
		add(u, Label, rdf.NewLangLiteral(fmt.Sprintf("University %d", i), "en"))
		add(u, LocatedIn, cities[int(cityZipf.Uint64())])
	}
	nOrgs := max(10, cfg.Entities/50)
	orgs := make([]rdf.Term, nOrgs)
	for i := range orgs {
		o := ent("Org%d", i)
		orgs[i] = o
		typed(o, Organization)
		add(o, Label, rdf.NewLangLiteral(fmt.Sprintf("Organization %d", i), "en"))
		add(o, LocatedIn, cities[int(cityZipf.Uint64())])
	}

	// People: 60% of entities. Subtype mix with multi-typing: every
	// actor/politician/scientist is also a Person.
	nPeople := cfg.Entities * 6 / 10
	people := make([]rdf.Term, nPeople)
	for i := range people {
		p := ent("Person%d", i)
		people[i] = p
		typed(p, Person)
		add(p, Label, rdf.NewLangLiteral(fmt.Sprintf("Person %d", i), "en"))
		add(p, BirthPlace, cities[int(cityZipf.Uint64())])
		add(p, BirthDate, rdf.NewTypedLiteral(fmt.Sprintf("%04d-01-01", 1900+rng.Intn(100)), rdf.XSDDate))
		if rng.Intn(3) != 0 {
			add(p, Nationality, countries[rng.Intn(nCountries)])
		}
		switch rng.Intn(10) {
		case 0, 1:
			typed(p, Actor)
		case 2:
			typed(p, Politician)
			add(p, MemberOf, orgs[rng.Intn(nOrgs)])
		case 3:
			typed(p, Scientist)
			add(p, WorksAt, unis[rng.Intn(nUnis)])
			add(p, AlumniOf, unis[rng.Intn(nUnis)])
		}
		if rng.Intn(4) == 0 {
			add(p, AlumniOf, unis[rng.Intn(nUnis)])
		}
		if rng.Intn(8) == 0 {
			add(p, AwardWon, rdf.NewLiteral(fmt.Sprintf("Award %d", rng.Intn(50))))
		}
		// long-tail extra type
		if rng.Intn(3) == 0 {
			typed(p, tail[int(tailZipf.Uint64())])
		}
	}

	// Works: movies and books.
	nMovies := cfg.Entities / 8
	for i := 0; i < nMovies; i++ {
		m := ent("Movie%d", i)
		typed(m, Movie)
		add(m, Label, rdf.NewLangLiteral(fmt.Sprintf("Movie %d", i), "en"))
		add(m, Directed, people[rng.Intn(nPeople)])
		for n := 1 + rng.Intn(4); n > 0; n-- {
			add(people[rng.Intn(nPeople)], ActedIn, m)
		}
	}
	nBooks := cfg.Entities / 10
	for i := 0; i < nBooks; i++ {
		b := ent("Book%d", i)
		typed(b, BookClass)
		add(b, Label, rdf.NewLangLiteral(fmt.Sprintf("Book %d", i), "en"))
		add(b, AuthorOf, people[rng.Intn(nPeople)])
	}

	// Organizations founded by people.
	for _, o := range orgs {
		if rng.Intn(2) == 0 {
			add(o, FoundedBy, people[rng.Intn(nPeople)])
		}
	}

	// Long-tail entities: single type from the tail distribution plus a
	// label, stressing shape-count scalability.
	nTail := cfg.Entities / 5
	for i := 0; i < nTail; i++ {
		t := ent("Thing%d", i)
		typed(t, tail[int(tailZipf.Uint64())])
		add(t, Label, rdf.NewLangLiteral(fmt.Sprintf("Thing %d", i), "en"))
	}
	return g
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
