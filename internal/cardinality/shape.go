package cardinality

import (
	"math"

	"rdfshapes/internal/gstats"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
	"rdfshapes/internal/sparql"
)

// ShapeEstimator implements the paper's SS approach: triple patterns
// whose subject variable is anchored to a class by an rdf:type pattern in
// the same BGP are estimated from the class's annotated node and property
// shapes; everything else falls back to global statistics (Section 6.1).
type ShapeEstimator struct {
	Shapes *shacl.ShapesGraph
	// Fallback supplies estimates when no shape information applies.
	Fallback *GlobalEstimator
	// UseScopedDSC, when true, uses the property shape's
	// sh:distinctSubjectCount instead of the node shape's instance count
	// as the DSC of a scoped pattern. The paper uses the node shape
	// count; the flag powers the AB1 ablation.
	UseScopedDSC bool
	// UseObjectClassCap, when true, caps a scoped pattern's DOC at the
	// instance count of the object variable's class when the BGP also
	// types the object (e.g. <?a teacherOf ?c . ?c rdf:type Course>).
	// An extension beyond the paper; powers the AB5 ablation.
	UseObjectClassCap bool
}

// NewShapeEstimator returns an SS estimator over the annotated shapes
// graph sg with global statistics g as fallback.
func NewShapeEstimator(sg *shacl.ShapesGraph, g *gstats.Global) *ShapeEstimator {
	return &ShapeEstimator{Shapes: sg, Fallback: NewGlobalEstimator(g)}
}

// Name implements Estimator.
func (e *ShapeEstimator) Name() string { return "SS" }

// EstimateTP implements Estimator.
func (e *ShapeEstimator) EstimateTP(q *sparql.Query, tp sparql.TriplePattern) TPStats {
	// Case 1: the type pattern itself, <?x rdf:type Class>.
	if tp.IsTypePattern() && tp.S.IsVar() {
		if ns := e.shapeFor(tp.O.Term); ns != nil && ns.Count >= 0 {
			inst := float64(ns.Count)
			return TPStats{Card: inst, DSC: inst, DOC: inst}
		}
		return e.Fallback.EstimateTP(q, tp)
	}
	// Case 2: a pattern whose subject variable is typed elsewhere in the
	// BGP and whose predicate has an annotated property shape.
	if q != nil && tp.S.IsVar() && !tp.P.IsVar() && tp.P.Term.Value != rdf.RDFType {
		if cls, ok := q.TypeOf(tp.S.Var); ok {
			if ns := e.Shapes.ByClass(cls); ns != nil && ns.Count >= 0 {
				if ps := ns.Property(tp.P.Term.Value); ps != nil && ps.Stats != nil {
					return e.fromPropertyShape(q, ns, ps, tp)
				}
				// The class is known but the predicate never occurs on
				// its instances: the pattern is empty.
				return TPStats{Card: 0, DSC: 1, DOC: 1}
			}
		}
	}
	return e.Fallback.EstimateTP(q, tp)
}

func (e *ShapeEstimator) fromPropertyShape(q *sparql.Query, ns *shacl.NodeShape, ps *shacl.PropertyShape, tp sparql.TriplePattern) TPStats {
	st := ps.Stats
	count := float64(st.Count)
	dsc := float64(ns.Count)
	if e.UseScopedDSC {
		dsc = float64(st.DistinctSubjectCount)
	}
	doc := float64(st.DistinctCount)
	if e.UseObjectClassCap && q != nil && tp.O.IsVar() {
		if objCls, ok := q.TypeOf(tp.O.Var); ok {
			if objNS := e.Shapes.ByClass(objCls); objNS != nil && objNS.Count >= 0 {
				if oc := float64(objNS.Count); oc < doc {
					doc = oc
				}
			}
		}
	}
	if tp.O.IsVar() {
		return clamp(TPStats{Card: count, DSC: dsc, DOC: doc})
	}
	// Bound object: scoped analog of c_pred / DOC_pred.
	card := count / math.Max(1, doc)
	return clamp(TPStats{Card: card, DSC: dsc, DOC: 1})
}

func (e *ShapeEstimator) shapeFor(class rdf.Term) *shacl.NodeShape {
	if !class.IsIRI() {
		return nil
	}
	return e.Shapes.ByClass(class.Value)
}
