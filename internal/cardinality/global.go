package cardinality

import (
	"math"

	"rdfshapes/internal/gstats"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
)

// GlobalEstimator implements the paper's GS approach: the Table 1
// triple-pattern estimates over extended-VoID global statistics.
type GlobalEstimator struct {
	G *gstats.Global
}

// NewGlobalEstimator returns a GS estimator over g.
func NewGlobalEstimator(g *gstats.Global) *GlobalEstimator { return &GlobalEstimator{G: g} }

// Name implements Estimator.
func (e *GlobalEstimator) Name() string { return "GS" }

// EstimateTP implements Estimator with the Table 1 formulas.
func (e *GlobalEstimator) EstimateTP(_ *sparql.Query, tp sparql.TriplePattern) TPStats {
	return e.estimate(tp)
}

func (e *GlobalEstimator) estimate(tp sparql.TriplePattern) TPStats {
	g := e.G
	T := float64(g.Triples)
	sBound := !tp.S.IsVar()
	pBound := !tp.P.IsVar()
	oBound := !tp.O.IsVar()

	if !pBound {
		// Predicate variable: only whole-graph statistics apply.
		card := T
		dsc := float64(g.DistinctSubjects)
		doc := float64(g.DistinctObjects)
		switch {
		case sBound && oBound:
			card = T / math.Max(1, dsc*doc)
		case sBound:
			card = T / math.Max(1, dsc)
		case oBound:
			card = T / math.Max(1, doc)
		}
		return clamp(TPStats{Card: card, DSC: posStat(sBound, dsc, card), DOC: posStat(oBound, doc, card)})
	}

	pred := tp.P.Term.Value
	if pred == rdf.RDFType {
		return e.estimateType(tp, sBound, oBound)
	}
	ps := g.Pred[pred]
	cp := float64(ps.Count)
	dsc := float64(ps.DSC)
	doc := float64(ps.DOC)
	var card float64
	switch {
	case !sBound && !oBound:
		card = cp
	case sBound && !oBound:
		card = cp / math.Max(1, dsc)
	case !sBound && oBound:
		card = cp / math.Max(1, doc)
	default:
		card = math.Min(1, cp/math.Max(1, dsc*doc))
	}
	return clamp(TPStats{Card: card, DSC: posStat(sBound, dsc, card), DOC: posStat(oBound, doc, card)})
}

func (e *GlobalEstimator) estimateType(tp sparql.TriplePattern, sBound, oBound bool) TPStats {
	g := e.G
	ts := g.TypeStat()
	ct := float64(ts.Count)
	switch {
	case !sBound && oBound:
		// <?s rdf:type Class>: the class partition's entity count. Per
		// the paper's Table 2, DSC and DOC both report the class size.
		inst := float64(g.ClassInstances[tp.O.Term.Value])
		return TPStats{Card: inst, DSC: inst, DOC: inst}
	case !sBound && !oBound:
		return clamp(TPStats{Card: ct, DSC: float64(ts.DSC), DOC: float64(ts.DOC)})
	case sBound && !oBound:
		card := ct / math.Max(1, float64(ts.DSC))
		return clamp(TPStats{Card: card, DSC: 1, DOC: math.Max(1, card)})
	default:
		return TPStats{Card: 1, DSC: 1, DOC: 1}
	}
}

// posStat picks the distinct count for a position: 1 when the position is
// bound, otherwise the statistic capped by the cardinality estimate.
func posStat(bound bool, stat, card float64) float64 {
	if bound {
		return 1
	}
	return math.Min(math.Max(1, stat), math.Max(1, card))
}

// clamp enforces the invariants card ≥ 0 and 1 ≤ DSC, DOC ≤ max(1, card).
func clamp(s TPStats) TPStats {
	if s.Card < 0 || math.IsNaN(s.Card) {
		s.Card = 0
	}
	limit := math.Max(1, s.Card)
	s.DSC = math.Min(math.Max(1, s.DSC), limit)
	s.DOC = math.Min(math.Max(1, s.DOC), limit)
	return s
}
