package cardinality

import (
	"math"
	"testing"
	"testing/quick"

	"rdfshapes/internal/annotator"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

const ns = "http://x/"

// campus: 2 professors, 4 students; every entity has a name; students
// take courses; only professors teach. The generic "name" predicate makes
// global and scoped statistics diverge.
func campus() (*store.Store, *gstats.Global, *shacl.ShapesGraph) {
	iri := func(s string) rdf.Term { return rdf.NewIRI(ns + s) }
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	add := func(s rdf.Term, p string, o rdf.Term) { g.Append(s, rdf.NewIRI(ns+p), o) }
	for _, p := range []string{"p1", "p2"} {
		g.Append(iri(p), typ, iri("Professor"))
		add(iri(p), "name", rdf.NewLiteral(p))
		add(iri(p), "teaches", iri("c1"))
	}
	add(iri("p2"), "teaches", iri("c2"))
	for _, s := range []string{"s1", "s2", "s3", "s4"} {
		g.Append(iri(s), typ, iri("Student"))
		add(iri(s), "name", rdf.NewLiteral(s))
		add(iri(s), "takes", iri("c1"))
	}
	add(iri("s1"), "takes", iri("c2"))
	for _, c := range []string{"c1", "c2"} {
		g.Append(iri(c), typ, iri("Course"))
		add(iri(c), "name", rdf.NewLiteral(c))
	}
	st := store.Load(g)
	gs := gstats.Compute(st)
	sg, err := shacl.InferShapes(st)
	if err != nil {
		panic(err)
	}
	if err := annotator.Annotate(sg, st); err != nil {
		panic(err)
	}
	return st, gs, sg
}

func tp(s, p, o string) sparql.TriplePattern {
	mk := func(x string, isPred bool) sparql.PatternTerm {
		if len(x) > 0 && x[0] == '?' {
			return sparql.Variable(x[1:])
		}
		if !isPred && len(x) > 0 && x[0] == '"' {
			return sparql.Bound(rdf.NewLiteral(x[1 : len(x)-1]))
		}
		if x == "a" {
			return sparql.Bound(rdf.NewIRI(rdf.RDFType))
		}
		return sparql.Bound(rdf.NewIRI(ns + x))
	}
	return sparql.TriplePattern{S: mk(s, false), P: mk(p, true), O: mk(o, false)}
}

// trueCount counts matches by store scan for single patterns.
func trueCount(st *store.Store, pat sparql.TriplePattern) float64 {
	idt := store.IDTriple{}
	resolve := func(pt sparql.PatternTerm) (store.ID, bool) {
		if pt.IsVar() {
			return 0, true
		}
		id, ok := st.Dict().Lookup(pt.Term)
		return id, ok
	}
	var ok bool
	if idt.S, ok = resolve(pat.S); !ok {
		return 0
	}
	if idt.P, ok = resolve(pat.P); !ok {
		return 0
	}
	if idt.O, ok = resolve(pat.O); !ok {
		return 0
	}
	return float64(st.Count(idt))
}

func TestGlobalEstimatorExactCases(t *testing.T) {
	st, gs, _ := campus()
	e := NewGlobalEstimator(gs)
	// cases where Table 1 is exact
	exact := []sparql.TriplePattern{
		tp("?s", "?p", "?o"),    // total triples
		tp("?s", "takes", "?o"), // c_pred
		tp("?s", "a", "Student"),
		tp("?s", "a", "?o"), // c_type
	}
	for _, pat := range exact {
		got := e.EstimateTP(nil, pat).Card
		want := trueCount(st, pat)
		if got != want {
			t.Errorf("EstimateTP(%v) = %v, want exact %v", pat, got, want)
		}
	}
}

func TestGlobalEstimatorReasonableCases(t *testing.T) {
	st, gs, _ := campus()
	e := NewGlobalEstimator(gs)
	// cases estimated under uniformity must be within a small factor
	approx := []sparql.TriplePattern{
		tp("s1", "?p", "?o"),
		tp("?s", "?p", "c1"),
		tp("s1", "takes", "?o"),
		tp("?s", "takes", "c1"),
		tp("s1", "takes", "c1"),
		tp("s1", "a", "?o"),
		tp("s1", "a", "Student"),
		tp("s1", "?p", "c1"),
	}
	for _, pat := range approx {
		got := e.EstimateTP(nil, pat).Card
		truth := trueCount(st, pat)
		if q := QError(got, truth); q > 8 {
			t.Errorf("EstimateTP(%v) = %v, truth %v, q-error %v", pat, got, truth, q)
		}
	}
}

func TestGlobalEstimatorUnknownPredicate(t *testing.T) {
	_, gs, _ := campus()
	e := NewGlobalEstimator(gs)
	if got := e.EstimateTP(nil, tp("?s", "nosuch", "?o")).Card; got != 0 {
		t.Errorf("unknown predicate estimate = %v, want 0", got)
	}
}

func TestStatsInvariants(t *testing.T) {
	_, gs, _ := campus()
	e := NewGlobalEstimator(gs)
	pats := []sparql.TriplePattern{
		tp("?s", "?p", "?o"), tp("?s", "name", "?o"), tp("s1", "takes", "?o"),
		tp("?s", "takes", "c1"), tp("?s", "a", "Student"), tp("s1", "a", "?o"),
		tp("s1", "?p", "c1"), tp("?s", "?p", "c1"), tp("s1", "?p", "?o"),
	}
	for _, pat := range pats {
		ts := e.EstimateTP(nil, pat)
		if ts.Card < 0 || math.IsNaN(ts.Card) || math.IsInf(ts.Card, 0) {
			t.Errorf("bad card for %v: %v", pat, ts.Card)
		}
		if ts.DSC < 1 || ts.DOC < 1 {
			t.Errorf("distinct counts below 1 for %v: %+v", pat, ts)
		}
		if ts.DSC > math.Max(1, ts.Card) || ts.DOC > math.Max(1, ts.Card) {
			t.Errorf("distinct counts exceed card for %v: %+v", pat, ts)
		}
	}
}

func TestShapeEstimatorScopedCounts(t *testing.T) {
	_, gs, sg := campus()
	e := NewShapeEstimator(sg, gs)
	q := &sparql.Query{Patterns: []sparql.TriplePattern{
		tp("?x", "a", "Professor"),
		tp("?x", "name", "?n"),
		tp("?x", "teaches", "?c"),
	}}
	// global sees 8 name triples; shape statistics see only the 2
	// professor names.
	global := NewGlobalEstimator(gs).EstimateTP(q, q.Patterns[1]).Card
	scoped := e.EstimateTP(q, q.Patterns[1]).Card
	if global != 8 {
		t.Errorf("global name estimate = %v, want 8", global)
	}
	if scoped != 2 {
		t.Errorf("scoped name estimate = %v, want 2", scoped)
	}
	// type pattern: exact class count, DSC = DOC = count
	ts := e.EstimateTP(q, q.Patterns[0])
	if ts.Card != 2 || ts.DSC != 2 || ts.DOC != 2 {
		t.Errorf("type pattern stats = %+v", ts)
	}
	// teaches scoped to professors: 3 triples, 2 distinct objects
	ts = e.EstimateTP(q, q.Patterns[2])
	if ts.Card != 3 || ts.DOC != 2 {
		t.Errorf("teaches stats = %+v", ts)
	}
}

func TestShapeEstimatorZeroForImpossiblePattern(t *testing.T) {
	_, gs, sg := campus()
	e := NewShapeEstimator(sg, gs)
	q := &sparql.Query{Patterns: []sparql.TriplePattern{
		tp("?x", "a", "Course"),
		tp("?x", "takes", "?c"), // courses never take anything
	}}
	if got := e.EstimateTP(q, q.Patterns[1]).Card; got != 0 {
		t.Errorf("impossible pattern estimate = %v, want 0", got)
	}
}

func TestShapeEstimatorFallbacks(t *testing.T) {
	_, gs, sg := campus()
	e := NewShapeEstimator(sg, gs)
	gEst := NewGlobalEstimator(gs)
	// untyped subject variable → global fallback
	q := &sparql.Query{Patterns: []sparql.TriplePattern{tp("?x", "name", "?n")}}
	if e.EstimateTP(q, q.Patterns[0]) != gEst.EstimateTP(q, q.Patterns[0]) {
		t.Error("untyped pattern did not fall back to global")
	}
	// unknown class → fallback
	q2 := &sparql.Query{Patterns: []sparql.TriplePattern{
		tp("?x", "a", "Alien"),
		tp("?x", "name", "?n"),
	}}
	if e.EstimateTP(q2, q2.Patterns[1]) != gEst.EstimateTP(q2, q2.Patterns[1]) {
		t.Error("unknown class did not fall back to global")
	}
	// bound subject → fallback
	q3 := &sparql.Query{Patterns: []sparql.TriplePattern{tp("s1", "name", "?n")}}
	if e.EstimateTP(q3, q3.Patterns[0]) != gEst.EstimateTP(q3, q3.Patterns[0]) {
		t.Error("bound subject did not fall back to global")
	}
}

func TestShapeEstimatorBoundObject(t *testing.T) {
	_, gs, sg := campus()
	e := NewShapeEstimator(sg, gs)
	q := &sparql.Query{Patterns: []sparql.TriplePattern{
		tp("?x", "a", "Student"),
		tp("?x", "takes", "c1"),
	}}
	// 5 takes-triples over 2 distinct courses → 2.5 expected
	got := e.EstimateTP(q, q.Patterns[1]).Card
	if got != 2.5 {
		t.Errorf("bound object scoped estimate = %v, want 2.5", got)
	}
}

func TestJoinFormulas(t *testing.T) {
	a := TPStats{Card: 100, DSC: 50, DOC: 20}
	b := TPStats{Card: 200, DSC: 40, DOC: 80}
	cases := []struct {
		kind sparql.JoinKind
		want float64
	}{
		{sparql.JoinSS, 100 * 200 / 50.0},
		{sparql.JoinSO, 100 * 200 / 80.0},
		{sparql.JoinOS, 100 * 200 / 40.0},
		{sparql.JoinOO, 100 * 200 / 80.0},
	}
	for _, tc := range cases {
		got := Join(a, b, []sparql.SharedJoin{{Var: "v", Kind: tc.kind}})
		if got != tc.want {
			t.Errorf("Join %v = %v, want %v", tc.kind, got, tc.want)
		}
	}
	// Cartesian product
	if got := Join(a, b, nil); got != 100*200 {
		t.Errorf("cartesian = %v", got)
	}
	// multiple join variables take the minimum
	got := Join(a, b, []sparql.SharedJoin{
		{Var: "v", Kind: sparql.JoinSS},
		{Var: "w", Kind: sparql.JoinOO},
	})
	if got != 100*200/80.0 {
		t.Errorf("multi-var join = %v, want min", got)
	}
}

func TestJoinPredicatePositionFallback(t *testing.T) {
	a := TPStats{Card: 100, DSC: 50, DOC: 20}
	b := TPStats{Card: 200, DSC: 40, DOC: 80}
	got := Join(a, b, []sparql.SharedJoin{{Var: "v", Kind: sparql.JoinOther}})
	want := 100 * 200 / math.Max(math.Min(50, 20), math.Min(40, 80))
	if got != want {
		t.Errorf("other join = %v, want %v", got, want)
	}
}

func TestQError(t *testing.T) {
	cases := []struct {
		est, act, want float64
	}{
		{10, 10, 1},
		{100, 10, 10},
		{10, 100, 10},
		{0, 0, 1},
		{0, 5, 5},
		{5, 0, 5},
	}
	for _, tc := range cases {
		if got := QError(tc.est, tc.act); got != tc.want {
			t.Errorf("QError(%v, %v) = %v, want %v", tc.est, tc.act, got, tc.want)
		}
	}
}

func TestQErrorSymmetricProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := float64(a%100000), float64(b%100000)
		q := QError(x, y)
		return q >= 1 && q == QError(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSequenceEstimate(t *testing.T) {
	_, gs, sg := campus()
	e := NewShapeEstimator(sg, gs)
	q := &sparql.Query{Patterns: []sparql.TriplePattern{
		tp("?x", "a", "Professor"),
		tp("?x", "teaches", "?c"),
		tp("?s", "takes", "?c"),
	}}
	final, steps := SequenceEstimate(q, q.Patterns, e)
	if len(steps) != 3 {
		t.Fatalf("steps = %v", steps)
	}
	if steps[0] != 2 {
		t.Errorf("step 0 = %v, want 2 professors", steps[0])
	}
	if final <= 0 || math.IsInf(final, 0) || math.IsNaN(final) {
		t.Errorf("final = %v", final)
	}
	// truth is 9 (c1 taught twice × 4 takers + c2 × 1 taker = 2*4+1... )
	// Professors teach c1 (p1), c1+c2 (p2): pairs (p,c): (p1,c1),(p2,c1),(p2,c2)
	// takers: c1 by 4 students +  c2 by s1 → 4+4+1 = 9.
	if q := QError(final, 9); q > 4 {
		t.Errorf("final estimate %v too far from truth 9 (q=%v)", final, q)
	}
}

func TestSequenceEstimateEmptyAndCartesian(t *testing.T) {
	_, gs, _ := campus()
	e := NewGlobalEstimator(gs)
	if f, s := SequenceEstimate(&sparql.Query{}, nil, e); f != 0 || s != nil {
		t.Errorf("empty sequence = %v, %v", f, s)
	}
	q := &sparql.Query{Patterns: []sparql.TriplePattern{
		tp("?a", "teaches", "?b"),
		tp("?c", "takes", "?d"),
	}}
	final, _ := SequenceEstimate(q, q.Patterns, e)
	if final != 3*5 {
		t.Errorf("cartesian sequence = %v, want 15", final)
	}
}

func TestFilterSelectivity(t *testing.T) {
	parse := func(src string) *sparql.Query {
		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	if got := FilterSelectivity(parse(`SELECT * WHERE { ?s <http://x/p> ?o }`)); got != 1 {
		t.Errorf("no filters selectivity = %v", got)
	}
	q := parse(`SELECT * WHERE { ?s <http://x/p> ?o . FILTER(?o = 5) }`)
	if got := FilterSelectivity(q); got != 0.1 {
		t.Errorf("equality selectivity = %v", got)
	}
	q = parse(`SELECT * WHERE { ?s <http://x/p> ?o . FILTER(?o > 5) . FILTER(?o != 9) }`)
	want := (1.0 / 3.0) * 0.9
	if got := FilterSelectivity(q); got != want {
		t.Errorf("combined selectivity = %v, want %v", got, want)
	}
}

func TestShapeEstimatorObjectClassCap(t *testing.T) {
	_, gs, sg := campus()
	e := NewShapeEstimator(sg, gs)
	q := &sparql.Query{Patterns: []sparql.TriplePattern{
		tp("?x", "a", "Professor"),
		tp("?x", "teaches", "?c"),
		tp("?c", "a", "Course"),
	}}
	// without the cap, DOC = scoped distinct objects (2)
	base := e.EstimateTP(q, q.Patterns[1])
	e.UseObjectClassCap = true
	capped := e.EstimateTP(q, q.Patterns[1])
	if capped.DOC > base.DOC {
		t.Errorf("cap increased DOC: %v > %v", capped.DOC, base.DOC)
	}
	// with only 2 courses, the cap binds at 2 as well here; construct a
	// tighter case: a query typing the object with a smaller class
	q2 := &sparql.Query{Patterns: []sparql.TriplePattern{
		tp("?x", "a", "Student"),
		tp("?x", "takes", "?c"),
		tp("?c", "a", "Professor"), // impossible in data but caps DOC at 2
	}}
	got := e.EstimateTP(q2, q2.Patterns[1])
	if got.DOC > 2 {
		t.Errorf("object class cap not applied: DOC = %v", got.DOC)
	}
}
