// Package cardinality implements the paper's cardinality model: the
// Table 1 estimates for single triple patterns over global (extended
// VoID) or shape (annotated SHACL) statistics, the join cardinality
// formulas of Equations 1–3 (SS, SO/OS, OO joins) under the standard
// containment and independence assumptions, sequence estimation for
// whole BGPs (the E⋈ column of Table 2), and the q-error precision
// metric of Section 7.
//
// Estimates produced here are what the observability layer
// (internal/obsv) accounts against measured truth: every traced query
// records per-step estimated vs. actual intermediate cardinalities and
// their q-error, so estimator regressions surface on /metrics rather
// than only in offline experiments.
package cardinality

import (
	"math"

	"rdfshapes/internal/obsv"
	"rdfshapes/internal/sparql"
)

// TPStats carries the three quantities the join formulas need for one
// triple pattern: its estimated cardinality and the distinct subject and
// object counts (DSC, DOC) of its matches.
type TPStats struct {
	Card float64
	DSC  float64
	DOC  float64
}

// Estimator estimates triple pattern statistics in the context of a
// query (the context matters because shape statistics resolve a subject
// variable's class from the query's rdf:type patterns).
type Estimator interface {
	// Name identifies the estimator in reports ("GS", "SS", "CS", ...).
	Name() string
	// EstimateTP returns the statistics of tp within query q.
	EstimateTP(q *sparql.Query, tp sparql.TriplePattern) TPStats
}

// PairEstimator is an optional refinement: estimators that can estimate
// the joint cardinality of two specific triple patterns directly (e.g.
// Characteristic Sets for subject-subject joins) implement it. The
// planner prefers it over the generic formulas when it returns ok=true.
type PairEstimator interface {
	EstimatePair(q *sparql.Query, a, b sparql.TriplePattern) (card float64, ok bool)
}

// Join computes the estimated join cardinality of two triple patterns
// from their statistics using Equations 1–3. joins lists the shared
// variables; an empty list yields the Cartesian product. With several
// shared variables the most selective (minimum) estimate wins.
func Join(a, b TPStats, joins []sparql.SharedJoin) float64 {
	if len(joins) == 0 {
		return a.Card * b.Card
	}
	best := math.Inf(1)
	for _, j := range joins {
		var denom float64
		switch j.Kind {
		case sparql.JoinSS:
			denom = math.Max(a.DSC, b.DSC)
		case sparql.JoinSO:
			denom = math.Max(a.DSC, b.DOC)
		case sparql.JoinOS:
			denom = math.Max(a.DOC, b.DSC)
		case sparql.JoinOO:
			denom = math.Max(a.DOC, b.DOC)
		default:
			// A shared variable in predicate position: fall back to the
			// weakest distinct-count bound available on either side.
			denom = math.Max(math.Min(a.DSC, a.DOC), math.Min(b.DSC, b.DOC))
		}
		if denom < 1 {
			denom = 1
		}
		if est := a.Card * b.Card / denom; est < best {
			best = est
		}
	}
	return best
}

// QError is the precision metric of Section 7:
// max( max(1,est)/max(1,true), max(1,true)/max(1,est) ).
// The implementation lives in internal/obsv (the dependency-free leaf
// both the estimators and the serving path share) so online accounting
// and offline experiments agree by construction.
func QError(estimated, actual float64) float64 {
	return obsv.QError(estimated, actual)
}

// SequenceEstimate estimates the result cardinality of executing the
// triple patterns of q in the given order, propagating distinct-count
// estimates through intermediate results. It returns the final estimate
// and the per-step intermediate estimates.
//
// The intermediate's distinct count for a variable is the minimum of the
// contributing patterns' counts, capped by the intermediate cardinality —
// the standard containment assumption.
func SequenceEstimate(q *sparql.Query, order []sparql.TriplePattern, est Estimator) (final float64, steps []float64) {
	if len(order) == 0 {
		return 0, nil
	}
	steps = make([]float64, len(order))

	distinct := map[string]float64{}
	// seed from the first pattern
	first := est.EstimateTP(q, order[0])
	card := first.Card
	bindVarStats(distinct, order[0], first, card)
	steps[0] = card

	for i := 1; i < len(order); i++ {
		tp := order[i]
		ts := est.EstimateTP(q, tp)
		joins := sharedWithBound(distinct, tp)
		if len(joins) == 0 {
			card *= ts.Card
		} else {
			best := math.Inf(1)
			for _, j := range joins {
				dLeft := distinct[j.varName]
				dRight := varStat(tp, ts, j.varName)
				denom := math.Max(dLeft, dRight)
				if denom < 1 {
					denom = 1
				}
				if e := card * ts.Card / denom; e < best {
					best = e
				}
			}
			card = best
		}
		if card < 0 {
			card = 0
		}
		// refresh distinct estimates
		for _, j := range joins {
			dRight := varStat(tp, ts, j.varName)
			if dRight < distinct[j.varName] {
				distinct[j.varName] = dRight
			}
		}
		bindVarStats(distinct, tp, ts, card)
		for v := range distinct {
			if distinct[v] > card {
				distinct[v] = card
			}
		}
		steps[i] = card
	}
	return card, steps
}

type boundJoin struct {
	varName string
}

// sharedWithBound lists the variables of tp already bound by the prefix.
func sharedWithBound(distinct map[string]float64, tp sparql.TriplePattern) []boundJoin {
	var out []boundJoin
	for _, v := range tp.Vars() {
		if _, ok := distinct[v]; ok {
			out = append(out, boundJoin{varName: v})
		}
	}
	return out
}

// varStat returns the pattern-side distinct count for variable v: DSC for
// a subject occurrence, DOC for an object occurrence, and the pattern
// cardinality for a predicate occurrence.
func varStat(tp sparql.TriplePattern, ts TPStats, v string) float64 {
	switch {
	case tp.S.IsVar() && tp.S.Var == v:
		return ts.DSC
	case tp.O.IsVar() && tp.O.Var == v:
		return ts.DOC
	default:
		return ts.Card
	}
}

// bindVarStats seeds distinct estimates for the variables newly bound by
// tp, capped at the current intermediate cardinality.
func bindVarStats(distinct map[string]float64, tp sparql.TriplePattern, ts TPStats, card float64) {
	for _, v := range tp.Vars() {
		if _, ok := distinct[v]; ok {
			continue
		}
		d := varStat(tp, ts, v)
		if d > card {
			d = card
		}
		if d < 1 {
			d = 1
		}
		distinct[v] = d
	}
}

// FilterSelectivity returns a heuristic multiplier estimating how much
// the query's FILTER constraints shrink its result, using the classic
// System R default selectivities: 1/10 per equality, 9/10 per
// inequality, and 1/3 per range comparison. The paper's model covers
// only triple patterns; this extension keeps EstimateCount usable on
// filtered queries.
func FilterSelectivity(q *sparql.Query) float64 {
	sel := 1.0
	for _, f := range q.Filters {
		switch f.Op {
		case sparql.OpEq:
			sel *= 0.1
		case sparql.OpNe:
			sel *= 0.9
		default:
			sel *= 1.0 / 3.0
		}
	}
	return sel
}
