// Package shard partitions the dataset into N shards hashed on the
// subject's dictionary ID and coordinates query execution across them
// with per-shard statistics — the single-process seam of the scale-out
// story (docs/SHARDING.md).
//
// Design in one paragraph: every shard is a full live.Store (frozen
// base + delta overlay, own WAL-free apply path) over the *shared* term
// dictionary, paired with its own live.Maintainer holding that shard's
// gstats.Global and annotated shapes graph. Because shards partition
// triples by subject, per-shard counts sum to whole-dataset counts
// exactly, which yields two things at once: a whole-dataset
// live.Maintainer can run on top of the group (planning statistics stay
// identical to an unsharded store, so plans — and therefore row order —
// do too), and the per-shard statistics are sound for source selection
// the way Odyssey selects federation endpoints: a shard whose exact
// statistics say a pattern's predicate or class has no instances there
// provably contributes nothing and is pruned from the scan.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rdfshapes/internal/annotator"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/live"
	"rdfshapes/internal/shacl"
	"rdfshapes/internal/store"
)

// Group is a set of shards over one shared dictionary plus the
// coordinator state: per-shard statistics maintainers and the pruning /
// scan counters exported as metrics. Readers obtain a consistent
// cross-shard View via Snapshot and are then wait-free; Apply serializes
// writers and keeps every shard's snapshot paired with its statistics.
type Group struct {
	dict   *store.Dict
	shards []*live.Store
	maints []*live.Maintainer

	// mu orders commits against view capture: Apply holds it exclusively
	// while applying the routed batch to every owning shard and its
	// maintainer, Snapshot holds it shared while collecting the
	// (snapshot, statistics) pair of every shard — so a View never mixes
	// shard versions from different commits.
	mu sync.RWMutex

	// Scan-effort and pruning counters, exported as
	// rdfshapes_shard_rows_scanned_total{shard} and
	// rdfshapes_shards_pruned_total{reason}.
	rows            []atomic.Int64
	prunedOwnership atomic.Int64
	prunedStats     atomic.Int64
}

// New partitions the frozen base store into n shards (hash on subject
// dictionary ID) sharing base's dictionary, computes each shard's
// global statistics and annotated shapes clone from scratch, and wires
// a statistics maintainer per shard. shapes may be nil or empty, in
// which case shards carry global statistics only.
func New(base *store.Store, n int, shapes *shacl.ShapesGraph) (*Group, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", n)
	}
	g := &Group{
		dict:   base.Dict(),
		shards: make([]*live.Store, n),
		maints: make([]*live.Maintainer, n),
		rows:   make([]atomic.Int64, n),
	}
	parts := make([]*store.Store, n)
	for i := range parts {
		parts[i] = store.NewWithDict(g.dict)
	}
	var addErr error
	base.Scan(store.IDTriple{}, func(t store.IDTriple) bool {
		addErr = parts[g.owner(t.S)].TryAddID(t)
		return addErr == nil
	})
	if addErr != nil {
		return nil, addErr
	}
	for i, p := range parts {
		p.Freeze()
		st, err := shardStats(p, shapes)
		if err != nil {
			return nil, err
		}
		g.maints[i] = live.NewMaintainer(st, 0, nil)
		g.shards[i] = live.Wrap(p)
	}
	return g, nil
}

// shardStats computes one shard's statistics from scratch: its global
// statistics plus a clone of the shapes graph annotated against the
// shard's data alone.
func shardStats(base *store.Store, shapes *shacl.ShapesGraph) (live.Stats, error) {
	global := gstats.Compute(base)
	sh := shacl.NewShapesGraph()
	if shapes != nil {
		sh = shapes.Clone()
		if sh.Len() > 0 {
			if err := annotator.Annotate(sh, base); err != nil {
				return live.Stats{}, fmt.Errorf("shard: annotating shard shapes: %w", err)
			}
		}
	}
	return live.Stats{Global: global, Shapes: sh}, nil
}

// N returns the shard count.
func (g *Group) N() int { return len(g.shards) }

// Dict returns the shared term dictionary.
func (g *Group) Dict() *store.Dict { return g.dict }

// owner maps a subject ID to its shard: a Fibonacci multiplicative hash
// so consecutive dictionary IDs (loaders intern subjects in clusters)
// spread evenly instead of striping.
func (g *Group) owner(s store.ID) int {
	return int((uint64(s) * 0x9E3779B97F4A7C15 >> 32) % uint64(len(g.shards)))
}

// Owner exposes the subject-to-shard mapping (tests, routing).
func (g *Group) Owner(s store.ID) int { return g.owner(s) }

// SetAutoCompact forwards the per-shard background compaction threshold
// (applied to each shard's own overlay size).
func (g *Group) SetAutoCompact(n int) {
	for _, s := range g.shards {
		s.SetAutoCompact(n)
	}
}

// Close stops every shard's background compaction and waits for
// in-flight ones.
func (g *Group) Close() {
	for _, s := range g.shards {
		s.Close()
	}
}

// OverlaySize returns the summed added and deleted overlay counts
// across shards.
func (g *Group) OverlaySize() (added, deleted int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, s := range g.shards {
		a, d := s.OverlaySize()
		added += a
		deleted += d
	}
	return added, deleted
}

// Snapshot returns a consistent cross-shard read view: every shard's
// current snapshot paired with the statistics maintained for exactly
// that snapshot's contents (the pairing Apply's write lock guarantees).
func (g *Group) Snapshot() *View {
	g.mu.RLock()
	defer g.mu.RUnlock()
	v := &View{
		g:     g,
		snaps: make([]*live.Snapshot, len(g.shards)),
		stats: make([]live.Stats, len(g.shards)),
	}
	for i, s := range g.shards {
		v.snaps[i] = s.Snapshot()
		v.stats[i] = g.maints[i].Current()
	}
	return v
}

// snapshotsLocked collects the current per-shard snapshots; callers
// hold g.mu.
func (g *Group) snapshotsLocked() []*live.Snapshot {
	out := make([]*live.Snapshot, len(g.shards))
	for i, s := range g.shards {
		out[i] = s.Snapshot()
	}
	return out
}

// Apply routes one batch to the owning shards (inserts intern the
// subject, deletes that name an unknown subject are no-ops everywhere),
// commits each sub-batch atomically, feeds each shard's statistics
// maintainer, and returns a combined CommitInfo whose Prev/Next are
// cross-shard views — the input the whole-dataset maintainer needs to
// stay exact on top of the group.
func (g *Group) Apply(b live.Batch) live.CommitInfo {
	g.mu.Lock()
	defer g.mu.Unlock()

	n := len(g.shards)
	sub := make([]live.Batch, n)
	for _, t := range b.Delete {
		if sid, ok := g.dict.Lookup(t.S); ok {
			i := g.owner(sid)
			sub[i].Delete = append(sub[i].Delete, t)
		}
	}
	for _, t := range b.Insert {
		i := g.owner(g.dict.Intern(t.S))
		sub[i].Insert = append(sub[i].Insert, t)
	}

	prev := &View{g: g, snaps: g.snapshotsLocked()}
	var ins, del []store.IDTriple
	for i, sb := range sub {
		if len(sb.Insert) == 0 && len(sb.Delete) == 0 {
			continue
		}
		ci := g.shards[i].Apply(sb)
		g.maints[i].Apply(ci)
		ins = append(ins, ci.Inserted...)
		del = append(del, ci.Deleted...)
	}
	next := &View{g: g, snaps: g.snapshotsLocked()}
	return live.CommitInfo{Prev: prev, Next: next, Inserted: ins, Deleted: del}
}

// ShardStats returns shard i's current maintained statistics.
func (g *Group) ShardStats(i int) live.Stats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.maints[i].Current()
}

// Refresh compacts every shard and recomputes its statistics from
// scratch (global statistics plus a re-annotated clone of the shard's
// shapes), resetting the per-shard maintainers. It returns the
// compacted shard bases, which the facade merges to recompute
// whole-dataset statistics. Callers must not run it concurrently with
// Apply on the same dataset version expectations (the facade serializes
// it under its update mutex); the group lock is held across the reset
// so views never pair a shard snapshot with foreign statistics.
func (g *Group) Refresh() ([]*store.Store, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	bases := make([]*store.Store, len(g.shards))
	for i, s := range g.shards {
		snap, err := s.Compact()
		if err != nil {
			return nil, err
		}
		bases[i] = snap.Base()
	}
	for i, base := range bases {
		st, err := shardStats(base, g.maints[i].Current().Shapes)
		if err != nil {
			return nil, err
		}
		g.maints[i].Reset(st)
	}
	return bases, nil
}

// Merged materializes the group's current merged view as one frozen
// store sharing the dictionary — the bridge back to single-store
// consumers (binary snapshots, checkpoints, whole-dataset
// re-annotation). O(dataset); not on any query path.
func (g *Group) Merged() (*store.Store, error) {
	v := g.Snapshot()
	nb := store.NewWithDict(g.dict)
	var addErr error
	v.Scan(store.IDTriple{}, func(t store.IDTriple) bool {
		addErr = nb.TryAddID(t)
		return addErr == nil
	})
	if addErr != nil {
		return nil, addErr
	}
	nb.Freeze()
	return nb, nil
}

// RowsScanned returns the cumulative per-shard scanned-row counters
// (index rows visited through cross-shard scans, deletion-masked rows
// included).
func (g *Group) RowsScanned() []int64 {
	out := make([]int64, len(g.rows))
	for i := range g.rows {
		out[i] = g.rows[i].Load()
	}
	return out
}

// Pruned returns the cumulative count of per-pattern shard scans
// skipped, by reason: ownership (the pattern binds a subject, so only
// its hash owner can hold matches) and stats (the shard's exact
// statistics prove the pattern empty there).
func (g *Group) Pruned() (ownership, stats int64) {
	return g.prunedOwnership.Load(), g.prunedStats.Load()
}
