// Framed scan wire protocol. The raw N-Triples body the seam started
// with cannot distinguish "stream ended" from "stream was cut": a mid-
// body truncation on a whole-line boundary parses cleanly and yields a
// silently short scan. The framed protocol makes every fault typed:
//
//	stream := magic "RSHSCAN1" | frame* | eosFrame
//	frame  := type (1 byte, 'D') | payloadLen (4 bytes BE) | payload |
//	          crc32c(type|payloadLen|payload) (4 bytes BE)
//	eos    := type 'E' | len=8 | rowCount (8 bytes BE) | crc32c
//
// Data payloads are whole N-Triples lines (never a line split across
// frames), so each frame decodes independently. The EOS trailer carries
// the total row count: a stream that ends without EOS is truncated, a
// frame whose CRC mismatches is corrupt, and an EOS whose count differs
// from the rows delivered is torn — all distinct, all detectable.
package shard

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// scanMagic opens every framed scan stream.
	scanMagic = "RSHSCAN1"
	// ScanContentType is the media type a client sends in Accept to
	// request framing and the server sets on framed responses. Legacy
	// peers that do not know it answer plain N-Triples, and the client
	// falls back to streaming line decode.
	ScanContentType = "application/vnd.rdfshapes-scan.v1"

	frameData byte = 'D'
	frameEOS  byte = 'E'

	// MaxFramePayload bounds a single frame so a corrupt or malicious
	// length field cannot make the decoder allocate unbounded memory.
	MaxFramePayload = 1 << 20
	// DefaultFrameBytes is the target payload size the writer flushes
	// at; small enough to stream, large enough to amortize the CRC.
	DefaultFrameBytes = 64 << 10
)

// Typed stream-fault sentinels. Remote classifies decode failures with
// these so callers (and the retry loop) can tell corruption from
// truncation.
var (
	// ErrFrameCorrupt marks a protocol violation: bad magic, unknown
	// frame type, oversized length, CRC mismatch, or a row-count
	// mismatch at EOS.
	ErrFrameCorrupt = errors.New("shard: scan stream corrupt")
	// ErrScanTruncated marks a stream that ended before its EOS
	// trailer: bytes were lost in flight.
	ErrScanTruncated = errors.New("shard: scan stream truncated")
)

// castagnoli is the CRC32C table, matching the WAL and snapshot
// formats.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameWriter accumulates N-Triples lines and emits them as checksummed
// frames of roughly target bytes. Not safe for concurrent use.
type frameWriter struct {
	w      io.Writer
	buf    []byte
	target int
	rows   uint64
	frames int64
}

func newFrameWriter(w io.Writer, target int) *frameWriter {
	if target <= 0 {
		target = DefaultFrameBytes
	}
	if target > MaxFramePayload {
		target = MaxFramePayload
	}
	return &frameWriter{w: w, target: target, buf: make([]byte, 0, target)}
}

// writeHeader emits the stream magic; call once before any frame.
func (fw *frameWriter) writeHeader() error {
	_, err := io.WriteString(fw.w, scanMagic)
	return err
}

// addLine appends one complete N-Triples line (with trailing newline)
// and flushes a frame when the target size is reached. Returns
// (flushed, err) so the handler can decide when to http.Flush.
func (fw *frameWriter) addLine(line []byte) (bool, error) {
	fw.buf = append(fw.buf, line...)
	fw.rows++
	if len(fw.buf) >= fw.target {
		return true, fw.flushFrame()
	}
	return false, nil
}

// flushFrame emits the buffered lines as one data frame.
func (fw *frameWriter) flushFrame() error {
	if len(fw.buf) == 0 {
		return nil
	}
	err := writeFrame(fw.w, frameData, fw.buf)
	fw.buf = fw.buf[:0]
	if err == nil {
		fw.frames++
	}
	return err
}

// close flushes any buffered frame and writes the EOS trailer carrying
// the total row count.
func (fw *frameWriter) close() error {
	if err := fw.flushFrame(); err != nil {
		return err
	}
	var count [8]byte
	binary.BigEndian.PutUint64(count[:], fw.rows)
	if err := writeFrame(fw.w, frameEOS, count[:]); err != nil {
		return err
	}
	fw.frames++
	return nil
}

// writeFrame emits one frame: type, length, payload, CRC32C over all
// three.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[:])
	crc = crc32.Update(crc, castagnoli, payload)
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	_, err := w.Write(trailer[:])
	return err
}

// frameReader decodes a framed scan stream with bounded memory: one
// frame payload at a time, reusing its buffer across frames.
type frameReader struct {
	r      *bufio.Reader
	buf    []byte
	rows   uint64 // rows the caller reports decoded, checked at EOS
	sawEOS bool
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, 32<<10)}
}

// readHeader consumes and verifies the stream magic.
func (fr *frameReader) readHeader() error {
	var magic [len(scanMagic)]byte
	if _, err := io.ReadFull(fr.r, magic[:]); err != nil {
		return fmt.Errorf("%w: reading magic: %v", ErrScanTruncated, err)
	}
	if string(magic[:]) != scanMagic {
		return fmt.Errorf("%w: bad magic %q", ErrFrameCorrupt, magic[:])
	}
	return nil
}

// countRows records rows the caller decoded from the last payload, for
// the EOS cross-check.
func (fr *frameReader) countRows(n int) { fr.rows += uint64(n) }

// next returns the next data payload, or (nil, true, nil) at a valid
// EOS. The payload is only valid until the following next call.
func (fr *frameReader) next() ([]byte, bool, error) {
	if fr.sawEOS {
		return nil, true, nil
	}
	var hdr [5]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return nil, false, fmt.Errorf("%w: reading frame header: %v", ErrScanTruncated, err)
	}
	typ := hdr[0]
	if typ != frameData && typ != frameEOS {
		return nil, false, fmt.Errorf("%w: unknown frame type %#02x", ErrFrameCorrupt, typ)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFramePayload {
		return nil, false, fmt.Errorf("%w: frame length %d exceeds limit", ErrFrameCorrupt, n)
	}
	if typ == frameEOS && n != 8 {
		return nil, false, fmt.Errorf("%w: EOS payload length %d", ErrFrameCorrupt, n)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	payload := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, false, fmt.Errorf("%w: reading frame payload: %v", ErrScanTruncated, err)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(fr.r, trailer[:]); err != nil {
		return nil, false, fmt.Errorf("%w: reading frame crc: %v", ErrScanTruncated, err)
	}
	crc := crc32.Update(0, castagnoli, hdr[:])
	crc = crc32.Update(crc, castagnoli, payload)
	if got := binary.BigEndian.Uint32(trailer[:]); got != crc {
		return nil, false, fmt.Errorf("%w: frame crc %#08x, want %#08x", ErrFrameCorrupt, got, crc)
	}
	if typ == frameEOS {
		fr.sawEOS = true
		if want := binary.BigEndian.Uint64(payload); want != fr.rows {
			return nil, true, fmt.Errorf("%w: EOS count %d, decoded %d rows", ErrScanTruncated, want, fr.rows)
		}
		return nil, true, nil
	}
	return payload, false, nil
}
