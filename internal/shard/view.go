package shard

import (
	"sort"

	"rdfshapes/internal/gstats"
	"rdfshapes/internal/live"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

// View is one consistent cross-shard version of the dataset: every
// shard's pinned snapshot paired with the statistics maintained for
// exactly that snapshot. It satisfies engine.Source, engine.
// ChunkedSource, shacl.Source, and live.View, so queries, validation,
// and the whole-dataset statistics maintainer all run against it
// unchanged.
//
// Canonical enumeration order: Scan yields matches fully key-sorted by
// store.KeyOrder(pat) — per-shard sorted runs (base minus deletions,
// plus overlay additions) merged into one globally ordered stream. With
// empty overlays this is exactly the order an unsharded store
// enumerates, which is what makes sharded execution bit-identical to
// unsharded on compacted data; with live overlays the order is still
// deterministic, just sorted rather than base-then-additions (see
// docs/SHARDING.md).
type View struct {
	g     *Group
	snaps []*live.Snapshot
	stats []live.Stats // empty on commit-info views: disables stats pruning
}

// Dict returns the shared term dictionary.
func (v *View) Dict() *store.Dict { return v.g.dict }

// Len returns the merged view's triple count (shards are disjoint).
func (v *View) Len() int {
	n := 0
	for _, s := range v.snaps {
		n += s.Len()
	}
	return n
}

// Count returns the number of matches of pat across all shards — exact,
// because shards partition the data.
func (v *View) Count(pat store.IDTriple) int {
	if pat.S != 0 {
		return v.snaps[v.g.owner(pat.S)].Count(pat)
	}
	n := 0
	for _, s := range v.snaps {
		n += s.Count(pat)
	}
	return n
}

// Contains reports whether the fully bound triple is in the view; only
// the subject's hash owner can hold it.
func (v *View) Contains(t store.IDTriple) bool {
	return v.snaps[v.g.owner(t.S)].Contains(t)
}

// TypeID returns the dictionary ID of rdf:type, or 0 when no term in
// the dataset uses it.
func (v *View) TypeID() store.ID {
	if id, ok := v.g.dict.Lookup(rdf.NewIRI(rdf.RDFType)); ok {
		return id
	}
	return 0
}

// ShardStats returns the per-shard statistics pinned by this view
// (empty for commit-info views).
func (v *View) ShardStats() []live.Stats { return v.stats }

// relevant selects the shards that can contribute matches of pat and
// counts the skipped ones: a bound subject routes to its hash owner
// alone (ownership pruning — fires on every inner join probe), and for
// subject-unbound patterns a shard whose exact statistics prove the
// predicate, class, or whole shard empty is skipped (stats pruning, the
// Odyssey-style source selection).
func (v *View) relevant(pat store.IDTriple) []int {
	n := len(v.snaps)
	if pat.S != 0 {
		if n > 1 {
			v.g.prunedOwnership.Add(int64(n - 1))
		}
		return []int{v.g.owner(pat.S)}
	}
	idxs := make([]int, 0, n)
	var predIRI, classIRI string
	if len(v.stats) > 0 && pat.P != 0 {
		dict := v.g.dict
		predIRI = dict.Term(pat.P).Value
		if pat.O != 0 && pat.P == v.TypeID() {
			classIRI = dict.Term(pat.O).Value
		}
	}
	var pruned int64
	for i := range v.snaps {
		var st *gstats.Global
		if i < len(v.stats) {
			st = v.stats[i].Global
		}
		switch {
		case st == nil:
			idxs = append(idxs, i)
		case st.Triples == 0,
			classIRI != "" && st.ClassInstances[classIRI] == 0,
			predIRI != "" && st.Pred[predIRI].Count == 0:
			pruned++
		default:
			idxs = append(idxs, i)
		}
	}
	if pruned > 0 {
		v.g.prunedStats.Add(pruned)
	}
	return idxs
}

// cursor walks one sorted run (a base or overlay-additions range of one
// shard), skipping rows masked by the shard's deletion fragment.
type cursor struct {
	rows  []store.IDTriple
	del   *store.Fragment
	shard int
	pos   int
}

// skipDeleted advances the cursor past deletion-masked rows, charging
// them to the shard's scanned-rows counter.
func (c *cursor) skipDeleted(counts []int64) {
	if c.del == nil {
		return
	}
	for c.pos < len(c.rows) && c.del.Contains(c.rows[c.pos]) {
		counts[c.shard]++
		c.pos++
	}
}

// cursors collects the sorted runs of pat over the relevant shards.
func (v *View) cursors(pat store.IDTriple) []cursor {
	var cs []cursor
	for _, i := range v.relevant(pat) {
		base, added, del := v.snaps[i].Ranges(pat)
		if len(base) > 0 {
			cs = append(cs, cursor{rows: base, del: del, shard: i})
		}
		if len(added) > 0 {
			cs = append(cs, cursor{rows: added, shard: i})
		}
	}
	return cs
}

// LeadRuns returns the view's matches of pat as lead-ordered sorted runs
// for the engine's merge-join path: each relevant shard contributes its
// snapshot's runs (base with deletion mask, overlay additions). Shards
// partition triples, so the runs are pairwise disjoint and merging them
// by store.LeadOrder(pat, lead) yields the same globally ordered stream
// an unsharded snapshot would. Ownership/stats pruning applies as in
// Scan; rows consumed on this path are charged to the engine's Ops
// budget rather than the per-shard scanned-rows counters (the engine
// owns the cursoring, so the view never sees individual rows).
func (v *View) LeadRuns(pat store.IDTriple, lead int) ([]store.SortedRun, bool) {
	if !store.LeadOrderAvailable(pat, lead) {
		return nil, false
	}
	var runs []store.SortedRun
	for _, i := range v.relevant(pat) {
		rs, ok := v.snaps[i].LeadRuns(pat, lead)
		if !ok {
			return nil, false
		}
		runs = append(runs, rs...)
	}
	return runs, true
}

// merge streams the union of the cursors' visible rows to fn in
// less-order. Runs are disjoint (shards partition triples; base and
// additions within a shard are disjoint by the snapshot invariants), so
// the full three-component key comparison never ties and the merge is
// deterministic. Cursor counts land in counts by shard.
func merge(cs []cursor, counts []int64, less func(a, b store.IDTriple) bool, fn func(store.IDTriple) bool) {
	active := cs[:0]
	for i := range cs {
		cs[i].skipDeleted(counts)
		if cs[i].pos < len(cs[i].rows) {
			active = append(active, cs[i])
		}
	}
	for len(active) > 0 {
		m := 0
		for i := 1; i < len(active); i++ {
			if less(active[i].rows[active[i].pos], active[m].rows[active[m].pos]) {
				m = i
			}
		}
		t := active[m].rows[active[m].pos]
		counts[active[m].shard]++
		active[m].pos++
		active[m].skipDeleted(counts)
		if active[m].pos >= len(active[m].rows) {
			active = append(active[:m], active[m+1:]...)
		}
		if !fn(t) {
			return
		}
	}
}

// flush folds per-scan row counts into the group's cumulative per-shard
// counters.
func (v *View) flush(counts []int64) {
	for i, n := range counts {
		if n != 0 {
			v.g.rows[i].Add(n)
		}
	}
}

// Scan calls fn for every match of pat across the relevant shards, in
// the canonical key-sorted order. fn returning false stops the scan.
func (v *View) Scan(pat store.IDTriple, fn func(store.IDTriple) bool) {
	cs := v.cursors(pat)
	if len(cs) == 0 {
		return
	}
	counts := make([]int64, len(v.snaps))
	defer v.flush(counts)
	merge(cs, counts, store.KeyOrder(pat), fn)
}

// ScanChunks splits the canonical merged stream into at most n
// contiguous chunks for morsel-parallel execution — the coordinator's
// per-shard scans ride the engine's bounded worker pool. The largest
// run donates pivot keys at equidistant positions; every other run is
// split at those keys by binary search, so chunk i merges exactly the
// rows in [pivot_i, pivot_i+1) of every run and running the chunks in
// order enumerates exactly what Scan would. Returns nil only when no
// shard has matching rows.
func (v *View) ScanChunks(pat store.IDTriple, n int) []func(fn func(store.IDTriple) bool) {
	cs := v.cursors(pat)
	if len(cs) == 0 {
		return nil
	}
	less := store.KeyOrder(pat)
	largest := 0
	for i := range cs {
		if len(cs[i].rows) > len(cs[largest].rows) {
			largest = i
		}
	}
	if n < 1 {
		n = 1
	}
	if n > len(cs[largest].rows) {
		n = len(cs[largest].rows)
	}
	bounds := make([][]int, len(cs))
	for j := range cs {
		bounds[j] = make([]int, n+1)
		bounds[j][n] = len(cs[j].rows)
	}
	L := cs[largest].rows
	for k := 1; k < n; k++ {
		pivot := L[len(L)*k/n]
		for j := range cs {
			rows := cs[j].rows
			bounds[j][k] = sort.Search(len(rows), func(x int) bool {
				return !less(rows[x], pivot)
			})
		}
	}
	chunks := make([]func(fn func(store.IDTriple) bool), 0, n)
	for k := 0; k < n; k++ {
		var sub []cursor
		for j := range cs {
			lo, hi := bounds[j][k], bounds[j][k+1]
			if lo < hi {
				sub = append(sub, cursor{rows: cs[j].rows[lo:hi], del: cs[j].del, shard: cs[j].shard})
			}
		}
		if len(sub) == 0 {
			continue
		}
		part := sub
		chunks = append(chunks, func(fn func(store.IDTriple) bool) {
			counts := make([]int64, len(v.snaps))
			defer v.flush(counts)
			merge(part, counts, less, fn)
		})
	}
	return chunks
}
