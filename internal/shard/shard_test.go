package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"rdfshapes/internal/annotator"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/live"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
	"rdfshapes/internal/store"
)

func iri(local string) rdf.Term { return rdf.NewIRI("http://ex.org/" + local) }

// seedGraph builds a small typed dataset exercising every statistic.
func seedGraph() rdf.Graph {
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	for i := 0; i < 12; i++ {
		s := iri(fmt.Sprintf("p%d", i))
		g.Append(s, typ, iri("Person"))
		g.Append(s, iri("name"), rdf.NewLiteral(fmt.Sprintf("P%d", i)))
		if i%2 == 0 {
			g.Append(s, iri("knows"), iri(fmt.Sprintf("p%d", (i+1)%12)))
		}
	}
	for i := 0; i < 5; i++ {
		s := iri(fmt.Sprintf("r%d", i))
		g.Append(s, typ, iri("Robot"))
		g.Append(s, iri("serial"), rdf.NewLiteral(fmt.Sprintf("%03d", i)))
	}
	return g
}

// patterns returns one pattern per binding shape, resolved against d
// (unknown terms yield zero IDs, i.e. wildcards — callers pick terms
// that exist).
func testPatterns(d *store.Dict) []store.IDTriple {
	id := func(t rdf.Term) store.ID {
		v, _ := d.Lookup(t)
		return v
	}
	typ := id(rdf.NewIRI(rdf.RDFType))
	return []store.IDTriple{
		{},                                     // (? ? ?)
		{S: id(iri("p3"))},                     // (s ? ?)
		{P: id(iri("name"))},                   // (? p ?)
		{O: id(iri("Person"))},                 // (? ? o)
		{S: id(iri("p4")), P: id(iri("name"))}, // (s p ?)
		{S: id(iri("p4")), O: id(iri("p5"))},   // (s ? o)
		{P: typ, O: id(iri("Robot"))},          // (? p o)
		{S: id(iri("p0")), P: typ, O: id(iri("Person"))}, // (s p o)
	}
}

func collect(scan func(store.IDTriple, func(store.IDTriple) bool), pat store.IDTriple) []store.IDTriple {
	var out []store.IDTriple
	scan(pat, func(t store.IDTriple) bool {
		out = append(out, t)
		return true
	})
	return out
}

func sortedBy(ts []store.IDTriple, pat store.IDTriple) []store.IDTriple {
	out := append([]store.IDTriple(nil), ts...)
	less := store.KeyOrder(pat)
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// TestScanFrozenBitIdentical: with empty overlays the group's merged
// key-sorted order is exactly the unsharded store's enumeration order,
// for every pattern shape.
func TestScanFrozenBitIdentical(t *testing.T) {
	st := store.Load(seedGraph())
	for _, n := range []int{1, 2, 4, 7} {
		g, err := New(st, n, nil)
		if err != nil {
			t.Fatal(err)
		}
		v := g.Snapshot()
		for _, pat := range testPatterns(st.Dict()) {
			want := collect(st.Scan, pat)
			got := collect(v.Scan, pat)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("n=%d pat=%v: scan mismatch: got %d rows, want %d", n, pat, len(got), len(want))
			}
			if c := v.Count(pat); c != len(want) {
				t.Errorf("n=%d pat=%v: Count = %d, want %d", n, pat, c, len(want))
			}
		}
		if v.Len() != st.Len() {
			t.Errorf("n=%d: Len = %d, want %d", n, v.Len(), st.Len())
		}
	}
}

// TestScanAfterUpdates drives identical random batches through a
// 4-shard group and an unsharded live store and checks that every
// pattern sees the same triple set (the group in key-sorted order) and
// the same exact Count.
func TestScanAfterUpdates(t *testing.T) {
	st := store.Load(seedGraph())
	g, err := New(st, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	oracle := live.Wrap(store.Load(seedGraph()))

	typ := rdf.NewIRI(rdf.RDFType)
	rng := rand.New(rand.NewSource(7))
	randTriple := func() rdf.Triple {
		s := iri(fmt.Sprintf("p%d", rng.Intn(16)))
		switch rng.Intn(4) {
		case 0:
			return rdf.NewTriple(s, typ, iri([]string{"Person", "Robot"}[rng.Intn(2)]))
		case 1:
			return rdf.NewTriple(s, iri("knows"), iri(fmt.Sprintf("p%d", rng.Intn(16))))
		default:
			return rdf.NewTriple(s, iri("name"), rdf.NewLiteral(fmt.Sprintf("V%d", rng.Intn(6))))
		}
	}
	for step := 0; step < 80; step++ {
		var b live.Batch
		for i := rng.Intn(4); i >= 0; i-- {
			if rng.Intn(3) == 0 {
				b.Delete = append(b.Delete, randTriple())
			} else {
				b.Insert = append(b.Insert, randTriple())
			}
		}
		g.Apply(b)
		oracle.Apply(b)
	}

	v := g.Snapshot()
	ov := oracle.Snapshot()
	// The two dictionaries assign different IDs; compare term-level.
	decode := func(d *store.Dict, ts []store.IDTriple) []string {
		out := make([]string, len(ts))
		for i, t := range ts {
			out[i] = d.Term(t.S).String() + " " + d.Term(t.P).String() + " " + d.Term(t.O).String()
		}
		sort.Strings(out)
		return out
	}
	for _, pat := range testPatterns(st.Dict()) {
		got := collect(v.Scan, pat)
		// Group scans must come out key-sorted.
		if !reflect.DeepEqual(got, sortedBy(got, pat)) {
			t.Errorf("pat=%v: group scan not in key order", pat)
		}
		// Translate the pattern to the oracle's dictionary.
		var opat store.IDTriple
		lookupO := func(id store.ID) store.ID {
			if id == 0 {
				return 0
			}
			v, ok := ov.Dict().Lookup(st.Dict().Term(id))
			if !ok {
				return store.ID(1 << 30) // absent term: match nothing
			}
			return v
		}
		opat.S, opat.P, opat.O = lookupO(pat.S), lookupO(pat.P), lookupO(pat.O)
		want := collect(ov.Scan, opat)
		if g, w := decode(v.Dict(), got), decode(ov.Dict(), want); !reflect.DeepEqual(g, w) {
			t.Errorf("pat=%v: set mismatch: got %d rows, want %d", pat, len(g), len(w))
		}
		if c := v.Count(pat); c != len(got) {
			t.Errorf("pat=%v: Count = %d, scan yielded %d", pat, c, len(got))
		}
	}
	if v.Len() != ov.Len() {
		t.Errorf("Len = %d, want %d", v.Len(), ov.Len())
	}
}

// TestScanChunksConcatEqualsScan: for every pattern and chunk budget,
// running the chunks in order enumerates exactly what Scan does —
// including with live overlays and deletion masks in play.
func TestScanChunksConcatEqualsScan(t *testing.T) {
	st := store.Load(seedGraph())
	g, err := New(st, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Overlay: delete some base triples, add new ones.
	g.Apply(live.Batch{
		Delete: []rdf.Triple{
			rdf.NewTriple(iri("p0"), iri("name"), rdf.NewLiteral("P0")),
			rdf.NewTriple(iri("p2"), iri("knows"), iri("p3")),
		},
		Insert: []rdf.Triple{
			rdf.NewTriple(iri("p13"), iri("name"), rdf.NewLiteral("P13")),
			rdf.NewTriple(iri("p13"), rdf.NewIRI(rdf.RDFType), iri("Person")),
			rdf.NewTriple(iri("p1"), iri("knows"), iri("p13")),
		},
	})
	v := g.Snapshot()
	for _, pat := range testPatterns(st.Dict()) {
		want := collect(v.Scan, pat)
		for _, n := range []int{1, 2, 3, 5, 16, 1000} {
			var got []store.IDTriple
			for _, chunk := range v.ScanChunks(pat, n) {
				chunk(func(t store.IDTriple) bool {
					got = append(got, t)
					return true
				})
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("pat=%v n=%d: chunk concat %d rows, scan %d", pat, n, len(got), len(want))
			}
		}
		if len(want) > 0 && v.ScanChunks(pat, 4) == nil {
			t.Errorf("pat=%v: nil chunks despite %d matches", pat, len(want))
		}
	}
}

// exactGlobalsEqual compares the fields the maintainer keeps exact.
func exactGlobalsEqual(t *testing.T, label string, got, want *gstats.Global) {
	t.Helper()
	if got.Triples != want.Triples {
		t.Errorf("%s: Triples = %d, want %d", label, got.Triples, want.Triples)
	}
	if got.DistinctSubjects != want.DistinctSubjects {
		t.Errorf("%s: DistinctSubjects = %d, want %d", label, got.DistinctSubjects, want.DistinctSubjects)
	}
	if got.DistinctObjects != want.DistinctObjects {
		t.Errorf("%s: DistinctObjects = %d, want %d", label, got.DistinctObjects, want.DistinctObjects)
	}
	if len(got.Pred) != len(want.Pred) {
		t.Errorf("%s: len(Pred) = %d, want %d", label, len(got.Pred), len(want.Pred))
	}
	for p, w := range want.Pred {
		if g := got.Pred[p]; g != w {
			t.Errorf("%s: Pred[%s] = %+v, want %+v", label, p, g, w)
		}
	}
	if len(got.ClassInstances) != len(want.ClassInstances) {
		t.Errorf("%s: len(ClassInstances) = %d, want %d", label, len(got.ClassInstances), len(want.ClassInstances))
	}
	for c, w := range want.ClassInstances {
		if g := got.ClassInstances[c]; g != w {
			t.Errorf("%s: ClassInstances[%s] = %d, want %d", label, c, g, w)
		}
	}
}

// shapeStatsEqual compares the exactly-maintained shape statistics
// (sh:count per node shape, property sh:count and
// sh:distinctSubjectCount) of got against the recomputed oracle.
func shapeStatsEqual(t *testing.T, label string, got, oracle *shacl.ShapesGraph) {
	t.Helper()
	for _, want := range oracle.Shapes() {
		g := got.ByClass(want.TargetClass)
		if g == nil {
			t.Errorf("%s: shape for %s missing", label, want.TargetClass)
			continue
		}
		if g.Count != want.Count {
			t.Errorf("%s %s: sh:count = %d, want %d", label, want.TargetClass, g.Count, want.Count)
		}
		for _, wp := range want.Properties {
			gp := g.Property(wp.Path)
			if gp == nil || gp.Stats == nil || wp.Stats == nil {
				continue
			}
			if gp.Stats.Count != wp.Stats.Count {
				t.Errorf("%s %s %s: sh:count = %d, want %d",
					label, want.TargetClass, wp.Path, gp.Stats.Count, wp.Stats.Count)
			}
			if gp.Stats.DistinctSubjectCount != wp.Stats.DistinctSubjectCount {
				t.Errorf("%s %s %s: sh:distinctSubjectCount = %d, want %d",
					label, want.TargetClass, wp.Path, gp.Stats.DistinctSubjectCount, wp.Stats.DistinctSubjectCount)
			}
		}
	}
}

// TestPerShardStatsOracle drives a random update stream through the
// group and cross-checks every shard's maintained statistics against a
// from-scratch recompute on that shard's compacted base — the exactness
// the pruning rule depends on.
func TestPerShardStatsOracle(t *testing.T) {
	st := store.Load(seedGraph())
	sg, err := shacl.InferShapes(st)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(st, 4, sg)
	if err != nil {
		t.Fatal(err)
	}

	typ := rdf.NewIRI(rdf.RDFType)
	rng := rand.New(rand.NewSource(11))
	randTriple := func() rdf.Triple {
		s := iri(fmt.Sprintf("p%d", rng.Intn(16)))
		switch rng.Intn(4) {
		case 0:
			return rdf.NewTriple(s, typ, iri([]string{"Person", "Robot"}[rng.Intn(2)]))
		case 1:
			return rdf.NewTriple(s, iri("knows"), iri(fmt.Sprintf("p%d", rng.Intn(16))))
		default:
			return rdf.NewTriple(s, iri("name"), rdf.NewLiteral(fmt.Sprintf("V%d", rng.Intn(6))))
		}
	}
	for step := 0; step < 100; step++ {
		var b live.Batch
		for i := rng.Intn(4); i >= 0; i-- {
			if rng.Intn(3) == 0 {
				b.Delete = append(b.Delete, randTriple())
			} else {
				b.Insert = append(b.Insert, randTriple())
			}
		}
		g.Apply(b)
	}

	maintained := make([]live.Stats, g.N())
	for i := range maintained {
		maintained[i] = g.ShardStats(i)
	}
	bases, err := g.Refresh() // compacts each shard; bases[i] is shard i's full content
	if err != nil {
		t.Fatal(err)
	}
	for i, base := range bases {
		label := fmt.Sprintf("shard %d", i)
		exactGlobalsEqual(t, label, maintained[i].Global, gstats.Compute(base))
		oracle := maintained[i].Shapes.Clone()
		if err := annotator.Annotate(oracle, base); err != nil {
			t.Fatal(err)
		}
		shapeStatsEqual(t, label, maintained[i].Shapes, oracle)
	}
}

// TestWholeMaintainerOnGroup: a whole-dataset maintainer fed the
// group's combined CommitInfos stays exact against a recompute on the
// merged store — the property that keeps sharded planning statistics
// (and therefore plans and row order) identical to unsharded.
func TestWholeMaintainerOnGroup(t *testing.T) {
	st := store.Load(seedGraph())
	sg, err := shacl.InferShapes(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := annotator.Annotate(sg, st); err != nil {
		t.Fatal(err)
	}
	g, err := New(st, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := live.NewMaintainer(live.Stats{Global: gstats.Compute(st), Shapes: sg}, 0, nil)

	typ := rdf.NewIRI(rdf.RDFType)
	rng := rand.New(rand.NewSource(13))
	randTriple := func() rdf.Triple {
		s := iri(fmt.Sprintf("p%d", rng.Intn(16)))
		switch rng.Intn(4) {
		case 0:
			return rdf.NewTriple(s, typ, iri([]string{"Person", "Robot"}[rng.Intn(2)]))
		case 1:
			return rdf.NewTriple(s, iri("knows"), iri(fmt.Sprintf("p%d", rng.Intn(16))))
		default:
			return rdf.NewTriple(s, iri("name"), rdf.NewLiteral(fmt.Sprintf("V%d", rng.Intn(6))))
		}
	}
	for step := 0; step < 100; step++ {
		var b live.Batch
		for i := rng.Intn(4); i >= 0; i-- {
			if rng.Intn(3) == 0 {
				b.Delete = append(b.Delete, randTriple())
			} else {
				b.Insert = append(b.Insert, randTriple())
			}
		}
		m.Apply(g.Apply(b))
	}

	merged, err := g.Merged()
	if err != nil {
		t.Fatal(err)
	}
	cur := m.Current()
	exactGlobalsEqual(t, "whole", cur.Global, gstats.Compute(merged))
	oracle := cur.Shapes.Clone()
	if err := annotator.Annotate(oracle, merged); err != nil {
		t.Fatal(err)
	}
	shapeStatsEqual(t, "whole", cur.Shapes, oracle)
}

// TestPruningCounters: subject-bound scans prune every non-owner shard;
// scans for a predicate or class some shards provably lack prune by
// statistics; pruning never changes results.
func TestPruningCounters(t *testing.T) {
	// One subject carries a unique predicate and class, so their triples
	// land in exactly one shard and the other shards' statistics prove
	// the patterns empty there.
	g0 := seedGraph()
	g0.Append(iri("solo"), rdf.NewIRI(rdf.RDFType), iri("Unicorn"))
	g0.Append(iri("solo"), iri("rarity"), rdf.NewLiteral("high"))
	st := store.Load(g0)
	sg, err := shacl.InferShapes(st)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(st, 4, sg)
	if err != nil {
		t.Fatal(err)
	}
	v := g.Snapshot()
	id := func(t rdf.Term) store.ID {
		v, _ := st.Dict().Lookup(t)
		return v
	}

	own0, stats0 := g.Pruned()
	got := collect(v.Scan, store.IDTriple{S: id(iri("solo"))})
	if len(got) != 2 {
		t.Fatalf("subject scan: %d rows, want 2", len(got))
	}
	own1, _ := g.Pruned()
	if own1-own0 != 3 {
		t.Errorf("ownership pruned delta = %d, want 3", own1-own0)
	}

	got = collect(v.Scan, store.IDTriple{P: id(iri("rarity"))})
	if len(got) != 1 {
		t.Fatalf("rarity scan: %d rows, want 1", len(got))
	}
	_, stats1 := g.Pruned()
	if stats1-stats0 != 3 {
		t.Errorf("stats pruned delta = %d, want 3 (predicate in one shard only)", stats1-stats0)
	}

	typ, _ := st.Dict().Lookup(rdf.NewIRI(rdf.RDFType))
	got = collect(v.Scan, store.IDTriple{P: typ, O: id(iri("Unicorn"))})
	if len(got) != 1 {
		t.Fatalf("class scan: %d rows, want 1", len(got))
	}
	_, stats2 := g.Pruned()
	if stats2-stats1 != 3 {
		t.Errorf("stats pruned delta = %d, want 3 (class in one shard only)", stats2-stats1)
	}

	rows := g.RowsScanned()
	var total int64
	for _, r := range rows {
		total += r
	}
	if total == 0 {
		t.Error("RowsScanned all zero after scans")
	}
}

// TestRemoteRoundTrip exercises the shard-over-HTTP stub: a Handler
// over a group view, a Remote interning into a fresh dictionary, and
// term-identical results for wildcard and bound patterns.
func TestRemoteRoundTrip(t *testing.T) {
	st := store.Load(seedGraph())
	g, err := New(st, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(func() Source { return g.Snapshot() }))
	defer srv.Close()

	rd := store.NewDict()
	remote := NewRemote(srv.URL, srv.Client(), rd)

	decode := func(d *store.Dict, ts []store.IDTriple) []string {
		out := make([]string, len(ts))
		for i, t := range ts {
			out[i] = d.Term(t.S).String() + " " + d.Term(t.P).String() + " " + d.Term(t.O).String()
		}
		sort.Strings(out)
		return out
	}

	all := collect(remote.Scan, store.IDTriple{})
	if err := remote.Err(); err != nil {
		t.Fatal(err)
	}
	want := collect(st.Scan, store.IDTriple{})
	if g, w := decode(rd, all), decode(st.Dict(), want); !reflect.DeepEqual(g, w) {
		t.Fatalf("wildcard round trip: %d rows, want %d", len(g), len(w))
	}

	// Bound predicate, via the remote-side dictionary.
	nameID := rd.Intern(iri("name"))
	got := collect(remote.Scan, store.IDTriple{P: nameID})
	if err := remote.Err(); err != nil {
		t.Fatal(err)
	}
	nameLocal, _ := st.Dict().Lookup(iri("name"))
	want = collect(st.Scan, store.IDTriple{P: nameLocal})
	if g, w := decode(rd, got), decode(st.Dict(), want); !reflect.DeepEqual(g, w) {
		t.Fatalf("bound round trip: %d rows, want %d", len(g), len(w))
	}

	// A term the server has never seen matches nothing.
	got = collect(remote.Scan, store.IDTriple{P: rd.Intern(iri("no-such"))})
	if err := remote.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("unknown-term scan returned %d rows", len(got))
	}
}

// flakyHandler fails the first failN requests in mode ("drop" kills the
// connection, "503"/"400" answer with that status, "torn" truncates the
// body mid-triple), then delegates to the real handler.
func flakyHandler(t *testing.T, g *Group, failN int, mode string) (*httptest.Server, *int) {
	t.Helper()
	real := Handler(func() Source { return g.Snapshot() })
	hits := new(int)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		*hits++
		if *hits <= failN {
			switch mode {
			case "drop":
				hj, ok := w.(http.Hijacker)
				if !ok {
					t.Fatal("response writer cannot hijack")
				}
				conn, _, err := hj.Hijack()
				if err != nil {
					t.Fatalf("hijack: %v", err)
				}
				conn.Close()
			case "torn":
				w.Header().Set("Content-Length", "500")
				fmt.Fprint(w, "<http://ex.org/a> <http://ex.org/b> ")
			default:
				code := http.StatusServiceUnavailable
				if mode == "400" {
					code = http.StatusBadRequest
				}
				http.Error(w, "induced "+mode, code)
			}
			return
		}
		real.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, hits
}

func hardenedRemote(t *testing.T, srv *httptest.Server, retries int) (*Remote, *store.Dict) {
	t.Helper()
	rd := store.NewDict()
	return NewRemoteConfig(srv.URL, srv.Client(), rd, RemoteConfig{
		MaxRetries:  retries,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Seed:        42,
	}), rd
}

// TestRemoteRetriesTransientFaults pins the hardening: a scan survives
// transient faults — dropped connections, 503s, torn bodies — within
// its retry budget, returns the full result exactly once, and leaves
// Err clean.
func TestRemoteRetriesTransientFaults(t *testing.T) {
	st := store.Load(seedGraph())
	g, err := New(st, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := collect(st.Scan, store.IDTriple{})

	for _, mode := range []string{"drop", "503", "torn"} {
		t.Run(mode, func(t *testing.T) {
			srv, hits := flakyHandler(t, g, 2, mode)
			remote, _ := hardenedRemote(t, srv, 2)
			got := collect(remote.Scan, store.IDTriple{})
			if err := remote.Err(); err != nil {
				t.Fatalf("scan after transient %s faults: %v", mode, err)
			}
			if len(got) != len(want) {
				t.Fatalf("scan returned %d rows, want %d (duplicates or loss across retries)",
					len(got), len(want))
			}
			if *hits != 3 {
				t.Errorf("server saw %d requests, want 3 (2 failures + 1 success)", *hits)
			}
		})
	}
}

// TestRemoteRetryExhaustion pins the typed error when every attempt
// fails: retryable, with the attempt count, and the scan stays empty.
func TestRemoteRetryExhaustion(t *testing.T) {
	st := store.Load(seedGraph())
	g, err := New(st, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, hits := flakyHandler(t, g, 100, "503")
	remote, _ := hardenedRemote(t, srv, 2)
	got := collect(remote.Scan, store.IDTriple{})
	if len(got) != 0 {
		t.Fatalf("failed scan emitted %d rows", len(got))
	}
	scanErr := remote.Err()
	if scanErr == nil {
		t.Fatal("Err() = nil after exhausting retries")
	}
	var re *Error
	if !errors.As(scanErr, &re) {
		t.Fatalf("Err() = %T %v, want *shard.Error", scanErr, scanErr)
	}
	if !IsRetryable(scanErr) || re.Attempts != 3 {
		t.Errorf("error = %+v, want retryable with 3 attempts", re)
	}
	if *hits != 3 {
		t.Errorf("server saw %d requests, want 3", *hits)
	}
}

// TestRemotePermanentFailureNoRetry pins that an affirmative peer
// rejection (400) is not retried and is typed permanent.
func TestRemotePermanentFailureNoRetry(t *testing.T) {
	st := store.Load(seedGraph())
	g, err := New(st, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, hits := flakyHandler(t, g, 100, "400")
	remote, _ := hardenedRemote(t, srv, 5)
	collect(remote.Scan, store.IDTriple{})
	scanErr := remote.Err()
	if scanErr == nil {
		t.Fatal("Err() = nil after a 400 response")
	}
	if IsRetryable(scanErr) {
		t.Errorf("400 classified retryable: %v", scanErr)
	}
	var re *Error
	if !errors.As(scanErr, &re) || re.Attempts != 1 {
		t.Errorf("error = %v, want exactly 1 attempt", scanErr)
	}
	if *hits != 1 {
		t.Errorf("server saw %d requests, want 1 (no retry on permanent failure)", *hits)
	}
}
