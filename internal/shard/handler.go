package shard

import (
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

// HandlerStats counts scan-endpoint activity as atomics, sampled at
// scrape time by the server's /metrics registration.
type HandlerStats struct {
	FramedScans atomic.Int64 // scans served with the framed protocol
	LegacyScans atomic.Int64 // scans served as plain N-Triples
	Frames      atomic.Int64 // data+EOS frames written
	Rows        atomic.Int64 // triples written across both protocols
	Aborts      atomic.Int64 // scans cut short by a client write error
}

// HandlerConfig tunes the scan endpoint. The zero value selects
// DefaultFrameBytes and no stats.
type HandlerConfig struct {
	// FrameBytes is the target framed-protocol payload size; clamped to
	// MaxFramePayload.
	FrameBytes int
	// Stats, when non-nil, receives endpoint counters.
	Stats *HandlerStats
}

// Handler serves the shard-scan wire protocol over src with default
// configuration. src is invoked once per request so every response
// reads one consistent snapshot. Pattern positions arrive as
// N-Triples-encoded terms in the s, p, and o query parameters; an empty
// or absent parameter is a wildcard, and a term unknown to the
// dictionary yields an empty result (it cannot match anything).
//
// Content negotiation selects the body format: a client whose Accept
// header names ScanContentType gets the framed checksummed stream
// (magic, CRC32C frames, EOS row-count trailer — see frame.go); anyone
// else gets plain N-Triples for backward compatibility and curl.
func Handler(src func() Source) http.Handler {
	return HandlerWithConfig(src, HandlerConfig{})
}

// HandlerWithConfig is Handler with explicit framing and stats tuning.
func HandlerWithConfig(src func() Source, cfg HandlerConfig) http.Handler {
	stats := cfg.Stats
	if stats == nil {
		stats = &HandlerStats{}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		view := src()
		dict := view.Dict()
		framed := strings.Contains(r.Header.Get("Accept"), ScanContentType)
		var pat store.IDTriple
		for _, pos := range []struct {
			param string
			id    *store.ID
		}{
			{"s", &pat.S}, {"p", &pat.P}, {"o", &pat.O},
		} {
			raw := r.URL.Query().Get(pos.param)
			if raw == "" {
				continue
			}
			term, err := rdf.ParseTerm(raw)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad %s term: %v", pos.param, err), http.StatusBadRequest)
				return
			}
			id, ok := dict.Lookup(term)
			if !ok {
				// Unknown term: provably no matches. The framed reply
				// must still be a complete stream (magic + EOS carrying
				// zero rows) so the client can tell "empty" from "cut".
				if framed {
					serveEmptyFramed(w, stats)
				} else {
					w.Header().Set("Content-Type", "application/n-triples")
					stats.LegacyScans.Add(1)
				}
				return
			}
			*pos.id = id
		}
		if framed {
			serveFramed(w, view, dict, pat, cfg.FrameBytes, stats)
			return
		}
		stats.LegacyScans.Add(1)
		w.Header().Set("Content-Type", "application/n-triples")
		view.Scan(pat, func(t store.IDTriple) bool {
			_, err := fmt.Fprintf(w, "%s %s %s .\n",
				dict.Term(t.S), dict.Term(t.P), dict.Term(t.O))
			if err != nil {
				stats.Aborts.Add(1)
				return false
			}
			stats.Rows.Add(1)
			return true
		})
	})
}

func serveEmptyFramed(w http.ResponseWriter, stats *HandlerStats) {
	stats.FramedScans.Add(1)
	w.Header().Set("Content-Type", ScanContentType)
	fw := newFrameWriter(w, 0)
	if err := fw.writeHeader(); err == nil {
		if err := fw.close(); err != nil {
			stats.Aborts.Add(1)
		}
	} else {
		stats.Aborts.Add(1)
	}
	stats.Frames.Add(fw.frames)
}

func serveFramed(w http.ResponseWriter, view Source, dict *store.Dict, pat store.IDTriple, frameBytes int, stats *HandlerStats) {
	stats.FramedScans.Add(1)
	w.Header().Set("Content-Type", ScanContentType)
	flusher, _ := w.(http.Flusher)
	fw := newFrameWriter(w, frameBytes)
	if err := fw.writeHeader(); err != nil {
		stats.Aborts.Add(1)
		return
	}
	aborted := false
	var line []byte
	view.Scan(pat, func(t store.IDTriple) bool {
		line = line[:0]
		line = append(line, dict.Term(t.S).String()...)
		line = append(line, ' ')
		line = append(line, dict.Term(t.P).String()...)
		line = append(line, ' ')
		line = append(line, dict.Term(t.O).String()...)
		line = append(line, " .\n"...)
		flushed, err := fw.addLine(line)
		if err != nil {
			aborted = true
			stats.Aborts.Add(1)
			return false
		}
		if flushed && flusher != nil {
			// Flush per frame so the client streams instead of waiting
			// for the whole body; each flushed frame is independently
			// verifiable.
			flusher.Flush()
		}
		stats.Rows.Add(1)
		return true
	})
	if !aborted {
		if err := fw.close(); err != nil {
			stats.Aborts.Add(1)
		} else if flusher != nil {
			flusher.Flush()
		}
	}
	stats.Frames.Add(fw.frames)
}
