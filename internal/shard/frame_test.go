package shard

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// encodeFramed renders lines into a complete framed stream with the
// given target frame size.
func encodeFramed(t *testing.T, target int, lines ...string) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := newFrameWriter(&buf, target)
	if err := fw.writeHeader(); err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		if _, err := fw.addLine([]byte(l + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeFramed drains a framed stream, returning the concatenated
// payloads and the terminal error (nil on a valid EOS).
func decodeFramed(raw []byte, rowsPerPayload func([]byte) int) (string, error) {
	fr := newFrameReader(bytes.NewReader(raw))
	if err := fr.readHeader(); err != nil {
		return "", err
	}
	var out bytes.Buffer
	for {
		payload, eos, err := fr.next()
		if eos {
			return out.String(), err
		}
		if err != nil {
			return out.String(), err
		}
		out.Write(payload)
		fr.countRows(rowsPerPayload(payload))
	}
}

func countLines(p []byte) int { return bytes.Count(p, []byte("\n")) }

func TestFrameRoundTrip(t *testing.T) {
	lines := make([]string, 100)
	for i := range lines {
		lines[i] = fmt.Sprintf("<http://x/s%d> <http://x/p> <http://x/o%d> .", i, i)
	}
	for _, target := range []int{1, 64, 1 << 20} {
		raw := encodeFramed(t, target, lines...)
		got, err := decodeFramed(raw, countLines)
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		var want bytes.Buffer
		for _, l := range lines {
			want.WriteString(l + "\n")
		}
		if got != want.String() {
			t.Fatalf("target %d: payload mismatch (%d vs %d bytes)", target, len(got), want.Len())
		}
	}
}

func TestFrameEmptyStream(t *testing.T) {
	raw := encodeFramed(t, 0)
	got, err := decodeFramed(raw, countLines)
	if err != nil || got != "" {
		t.Fatalf("empty stream: %q, %v", got, err)
	}
}

func TestFrameDetectsEveryByteFlip(t *testing.T) {
	raw := encodeFramed(t, 32,
		"<http://x/a> <http://x/p> <http://x/b> .",
		"<http://x/c> <http://x/p> <http://x/d> .")
	want, err := decodeFramed(raw, countLines)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(raw); off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x01
		got, err := decodeFramed(mut, countLines)
		if err == nil && got == want {
			t.Fatalf("bit flip at offset %d went undetected", off)
		}
		if err != nil && !errors.Is(err, ErrFrameCorrupt) && !errors.Is(err, ErrScanTruncated) {
			t.Fatalf("flip at %d: untyped error %v", off, err)
		}
	}
}

func TestFrameDetectsEveryTruncation(t *testing.T) {
	raw := encodeFramed(t, 32,
		"<http://x/a> <http://x/p> <http://x/b> .",
		"<http://x/c> <http://x/p> <http://x/d> .")
	for cut := 0; cut < len(raw); cut++ {
		_, err := decodeFramed(raw[:cut], countLines)
		if err == nil {
			t.Fatalf("truncation at %d of %d went undetected", cut, len(raw))
		}
		if !errors.Is(err, ErrScanTruncated) && !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
}

func TestFrameEOSCountMismatch(t *testing.T) {
	raw := encodeFramed(t, 1<<20, "<http://x/a> <http://x/p> <http://x/b> .")
	// Decode but "lose" the row: report zero rows to the reader.
	_, err := decodeFramed(raw, func([]byte) int { return 0 })
	if !errors.Is(err, ErrScanTruncated) {
		t.Fatalf("EOS count mismatch: err = %v, want ErrScanTruncated", err)
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(scanMagic)
	// Hand-craft a frame header claiming a payload far past the bound.
	hdr := []byte{frameData, 0xFF, 0xFF, 0xFF, 0xFF}
	buf.Write(hdr)
	fr := newFrameReader(&buf)
	if err := fr.readHeader(); err != nil {
		t.Fatal(err)
	}
	_, _, err := fr.next()
	if !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("oversized frame: err = %v, want ErrFrameCorrupt", err)
	}
}

func TestFrameBadMagic(t *testing.T) {
	raw := encodeFramed(t, 0)
	mut := append([]byte(nil), raw...)
	mut[0] = 'X'
	_, err := decodeFramed(mut, countLines)
	if !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrFrameCorrupt", err)
	}
}
