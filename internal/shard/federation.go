package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"rdfshapes/internal/obsv"
	"rdfshapes/internal/store"
)

// RemoteGroup is an engine.Source over a set of remote shard peers: the
// union of their scans, interned into one coordinator dictionary. It
// carries the seam's partial-failure semantics:
//
//   - Fail-fast (default): the first peer failure ends the scan; the
//     fault is retained and the engine turns it into a query error.
//     Nothing partial ever masquerades as an answer.
//   - Degraded (AllowDegraded): a failed peer is skipped, the remaining
//     peers still contribute, and the fault is retained *flagged
//     degraded* — the engine surfaces it as Result.Degraded, the same
//     way budget-truncated results carry Truncated. A shard is never
//     dropped silently.
//
// The retained fault is read (and cleared) through TakeFault, the
// engine.Fallible contract.
type RemoteGroup struct {
	dict  *store.Dict
	peers []*Remote

	// allowDegraded selects the degraded mode above.
	allowDegraded bool

	mu            sync.Mutex
	fault         error
	faultDegraded bool

	degradedScans atomic.Int64
	failedPeers   atomic.Int64
}

// NewRemoteGroup builds a federated source over peers, which must all
// intern into dict. allowDegraded selects degraded mode; leave it false
// for fail-fast.
func NewRemoteGroup(dict *store.Dict, peers []*Remote, allowDegraded bool) (*RemoteGroup, error) {
	if len(peers) == 0 {
		return nil, errors.New("shard: remote group needs at least one peer")
	}
	for _, p := range peers {
		if p.Dict() != dict {
			return nil, fmt.Errorf("shard: peer %s interns into a different dictionary", p.Peer())
		}
	}
	return &RemoteGroup{dict: dict, peers: peers, allowDegraded: allowDegraded}, nil
}

// Dict returns the coordinator dictionary.
func (g *RemoteGroup) Dict() *store.Dict { return g.dict }

// Peers returns the wrapped remotes, for stats and metrics.
func (g *RemoteGroup) Peers() []*Remote { return g.peers }

// Scan unions pat's matches across all peers, in peer order. On a peer
// failure it either stops (fail-fast) or records the fault and
// continues with the remaining peers (degraded).
func (g *RemoteGroup) Scan(pat store.IDTriple, fn func(store.IDTriple) bool) {
	stopped := false
	wrapped := func(t store.IDTriple) bool {
		if !fn(t) {
			stopped = true
			return false
		}
		return true
	}
	sawFault := false
	for _, p := range g.peers {
		p.Scan(pat, wrapped)
		if stopped {
			return
		}
		if err := p.Err(); err != nil {
			g.failedPeers.Add(1)
			g.recordFault(err)
			sawFault = true
			if !g.allowDegraded {
				return
			}
		}
	}
	if sawFault && g.allowDegraded {
		g.degradedScans.Add(1)
	}
}

func (g *RemoteGroup) recordFault(err error) {
	g.mu.Lock()
	if g.fault == nil {
		g.fault = err
		g.faultDegraded = g.allowDegraded
	}
	g.mu.Unlock()
}

// TakeFault returns the first peer failure since the last call and
// whether the group continued past it in degraded mode, clearing it.
// This is the engine.Fallible contract: the engine checks it before
// declaring a result complete.
func (g *RemoteGroup) TakeFault() (error, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	err, degraded := g.fault, g.faultDegraded
	g.fault, g.faultDegraded = nil, false
	return err, degraded
}

// DegradedScans counts scans that completed with at least one peer
// skipped in degraded mode.
func (g *RemoteGroup) DegradedScans() int64 { return g.degradedScans.Load() }

// RegisterMetrics exports the group's per-peer counters and breaker
// state on c at scrape time, labeled by peer base URL.
func (g *RemoteGroup) RegisterMetrics(c *obsv.Collector) {
	perPeer := func(pick func(RemoteStats) int64) func() map[string]float64 {
		return func() map[string]float64 {
			out := make(map[string]float64, len(g.peers))
			for _, p := range g.peers {
				out[p.Peer()] = float64(pick(p.Stats()))
			}
			return out
		}
	}
	c.RegisterCounterVec(obsv.MetricRemoteScans,
		"Remote shard scans attempted, by peer.", "peer",
		perPeer(func(s RemoteStats) int64 { return s.Scans }))
	c.RegisterCounterVec(obsv.MetricRemoteScanFailures,
		"Remote shard scans that ended in a typed error, by peer.", "peer",
		perPeer(func(s RemoteStats) int64 { return s.Failures }))
	c.RegisterCounterVec(obsv.MetricRemoteScanRetries,
		"Remote shard scan retry attempts, by peer.", "peer",
		perPeer(func(s RemoteStats) int64 { return s.Retries }))
	c.RegisterCounterVec(obsv.MetricRemoteHedges,
		"Hedge requests launched after the latency quantile, by peer.", "peer",
		perPeer(func(s RemoteStats) int64 { return s.Hedges }))
	c.RegisterCounterVec(obsv.MetricRemoteHedgeWins,
		"Remote scans won by the hedge request, by peer.", "peer",
		perPeer(func(s RemoteStats) int64 { return s.HedgeWins }))
	c.RegisterCounterVec(obsv.MetricRemoteCorruptFrames,
		"Remote scan streams rejected as corrupt (CRC/protocol), by peer.", "peer",
		perPeer(func(s RemoteStats) int64 { return s.CorruptFrames }))
	c.RegisterCounterVec(obsv.MetricRemoteTruncations,
		"Remote scan streams cut before their EOS trailer, by peer.", "peer",
		perPeer(func(s RemoteStats) int64 { return s.Truncations }))
	c.RegisterCounterVec(obsv.MetricRemoteBreakerOpens,
		"Circuit breaker closed-to-open transitions, by peer.", "peer",
		perPeer(func(s RemoteStats) int64 { return s.BreakerOpens }))
	c.RegisterGaugeVec(obsv.MetricRemoteBreakerState,
		"Circuit breaker state by peer: 0 closed, 0.5 half-open, 1 open.", "peer",
		func() map[string]float64 {
			out := make(map[string]float64, len(g.peers))
			for _, p := range g.peers {
				switch p.Stats().BreakerState {
				case "open":
					out[p.Peer()] = 1
				case "half-open":
					out[p.Peer()] = 0.5
				default:
					out[p.Peer()] = 0
				}
			}
			return out
		})
	c.RegisterCounter(obsv.MetricRemoteDegradedScans,
		"Scans completed with at least one peer skipped in degraded mode.",
		func() float64 { return float64(g.degradedScans.Load()) })
}
