// Shard-over-HTTP source stub: the wire seam that lets cmd/server
// instances later compose into a cluster. A server exposes its local
// matches at /shard/scan (Handler); a coordinator wraps a peer's
// endpoint as an engine.Source (Remote). The protocol is term-level
// N-Triples — dictionary IDs are process-local, so triples cross the
// wire as terms and the client interns them into the coordinator's own
// dictionary. Experimental: the in-process Group does not use it yet,
// and Scan buffers the full response rather than streaming.

package shard

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

// Source is the read surface the scan endpoint serves and the client
// reproduces: the engine.Source contract.
type Source interface {
	Dict() *store.Dict
	Scan(pat store.IDTriple, fn func(store.IDTriple) bool)
}

// Handler serves the shard-scan wire protocol over src. src is invoked
// once per request so every response reads one consistent snapshot.
// Pattern positions arrive as N-Triples-encoded terms in the s, p, and
// o query parameters; an empty or absent parameter is a wildcard, and a
// term unknown to the dictionary yields an empty result (it cannot
// match anything). The response body is N-Triples.
func Handler(src func() Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		view := src()
		dict := view.Dict()
		var pat store.IDTriple
		for _, pos := range []struct {
			param string
			id    *store.ID
		}{
			{"s", &pat.S}, {"p", &pat.P}, {"o", &pat.O},
		} {
			raw := r.URL.Query().Get(pos.param)
			if raw == "" {
				continue
			}
			term, err := rdf.ParseTerm(raw)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad %s term: %v", pos.param, err), http.StatusBadRequest)
				return
			}
			id, ok := dict.Lookup(term)
			if !ok {
				w.Header().Set("Content-Type", "application/n-triples")
				return // unknown term: provably no matches
			}
			*pos.id = id
		}
		w.Header().Set("Content-Type", "application/n-triples")
		view.Scan(pat, func(t store.IDTriple) bool {
			_, err := fmt.Fprintf(w, "%s %s %s .\n",
				dict.Term(t.S), dict.Term(t.P), dict.Term(t.O))
			return err == nil
		})
	})
}

// Remote is an engine.Source reading a peer server's /shard/scan
// endpoint. Terms are interned into the coordinator's dictionary on
// arrival, so IDs handed to fn are locally valid. Scan itself cannot
// return an error (the Source contract); transport and decode failures
// surface as an empty scan and are retained for Err.
type Remote struct {
	base string
	c    *http.Client
	dict *store.Dict

	mu  sync.Mutex
	err error
}

// NewRemote wraps the server at baseURL (scheme://host[:port], no
// trailing path) as a Source interning into dict. A nil client selects
// http.DefaultClient.
func NewRemote(baseURL string, client *http.Client, dict *store.Dict) *Remote {
	if client == nil {
		client = http.DefaultClient
	}
	return &Remote{base: strings.TrimRight(baseURL, "/"), c: client, dict: dict}
}

// Dict returns the coordinator-side dictionary remote triples intern
// into.
func (r *Remote) Dict() *store.Dict { return r.dict }

// Err returns the first transport or decode error since the last call,
// clearing it. Callers check it after a scan whose emptiness matters.
func (r *Remote) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.err
	r.err = nil
	return err
}

func (r *Remote) setErr(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

// Scan fetches the peer's matches of pat and replays them to fn. IDs in
// pat are resolved against the local dictionary; a zero ID is a
// wildcard.
func (r *Remote) Scan(pat store.IDTriple, fn func(store.IDTriple) bool) {
	q := url.Values{}
	for _, pos := range []struct {
		param string
		id    store.ID
	}{
		{"s", pat.S}, {"p", pat.P}, {"o", pat.O},
	} {
		if pos.id != 0 {
			q.Set(pos.param, r.dict.Term(pos.id).String())
		}
	}
	resp, err := r.c.Get(r.base + "/shard/scan?" + q.Encode())
	if err != nil {
		r.setErr(err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.setErr(fmt.Errorf("shard: remote scan: %s", resp.Status))
		return
	}
	g, err := rdf.ParseNTriples(resp.Body)
	if err != nil {
		r.setErr(fmt.Errorf("shard: remote scan decode: %w", err))
		return
	}
	for _, t := range g {
		it := store.IDTriple{
			S: r.dict.Intern(t.S),
			P: r.dict.Intern(t.P),
			O: r.dict.Intern(t.O),
		}
		if !fn(it) {
			return
		}
	}
}
