// Shard-over-HTTP source: the wire seam that lets cmd/server instances
// compose into a cluster. A server exposes its local matches at
// /shard/scan (Handler, handler.go); a coordinator wraps a peer's
// endpoint as an engine.Source (Remote). The protocol is term-level —
// dictionary IDs are process-local, so triples cross the wire as terms
// and the client interns them into the coordinator's own dictionary.
//
// The client is chaos-hardened: it negotiates the framed checksummed
// protocol (frame.go) and decodes it as a stream with bounded memory,
// classifies every failure into a typed kind (transport, status,
// corrupt, truncated, stalled, breaker-open), retries transient faults
// with jittered exponential backoff strictly while zero triples have
// been emitted, trips a per-peer circuit breaker on consecutive scan
// failures, and can hedge slow scans with a second request after a
// latency quantile.
package shard

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

// Source is the read surface the scan endpoint serves and the client
// reproduces: the engine.Source contract.
type Source interface {
	Dict() *store.Dict
	Scan(pat store.IDTriple, fn func(store.IDTriple) bool)
}

// Remote scan-hardening defaults. A scan makes 1+DefaultMaxRetries
// attempts before giving up; each attempt carries its own context
// deadline so a hung peer cannot stall the coordinator indefinitely.
const (
	DefaultRequestTimeout = 10 * time.Second
	DefaultMaxRetries     = 2
	DefaultBackoffBase    = 25 * time.Millisecond
	DefaultBackoffMax     = 500 * time.Millisecond

	// DefaultBreakerThreshold consecutive failed scans open the
	// breaker; after DefaultBreakerCooldown one half-open probe is let
	// through.
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = time.Second

	// DefaultHedgeMin floors the hedge delay so a briefly-idle peer
	// with microsecond latency history is not hedged instantly.
	DefaultHedgeMin = 10 * time.Millisecond

	// hedgeWindow is the per-peer latency history ring size and
	// hedgeMinSamples the observations required before hedging arms.
	hedgeWindow     = 64
	hedgeMinSamples = 8
)

// ErrorKind classifies a remote scan failure.
type ErrorKind int

const (
	// KindTransport is a connection-level failure: dial error, reset,
	// or a read error below the protocol layer.
	KindTransport ErrorKind = iota
	// KindStatus is a non-200 peer answer.
	KindStatus
	// KindCorrupt is a protocol violation: bad magic, CRC mismatch,
	// malformed frame, or an undecodable triple inside a valid frame.
	KindCorrupt
	// KindTruncated is a stream that ended before its EOS trailer or
	// whose EOS row count disagreed with the rows received.
	KindTruncated
	// KindStalled is a per-request deadline expiring mid-scan: the
	// peer (or path) went quiet without closing.
	KindStalled
	// KindBreakerOpen is a fast-fail: the circuit breaker was open and
	// no request was made.
	KindBreakerOpen
)

var kindStrings = map[ErrorKind]string{
	KindTransport: "transport", KindStatus: "status", KindCorrupt: "corrupt",
	KindTruncated: "truncated", KindStalled: "stalled", KindBreakerOpen: "breaker-open",
}

func (k ErrorKind) String() string {
	if s, ok := kindStrings[k]; ok {
		return s
	}
	return fmt.Sprintf("shard.ErrorKind(%d)", int(k))
}

// Error is the typed failure a remote scan retains. Retryable marks
// faults a retry may clear — transport errors, 5xx/429 responses, torn
// or corrupt streams; permanent faults (any other non-200 status) are
// not retried because the peer affirmatively rejected the request.
// Emitted counts triples already delivered to the caller when the fault
// hit: a fault after the first emitted triple is never retried (a retry
// would replay duplicates), so Emitted > 0 means the caller holds a
// prefix it must discard.
type Error struct {
	Op        string // "scan"
	Kind      ErrorKind
	Attempts  int // requests actually made
	Retryable bool
	Emitted   int64 // triples delivered before the fault
	Err       error
}

func (e *Error) Error() string {
	kind := "permanent"
	if e.Retryable {
		kind = "retryable"
	}
	return fmt.Sprintf("shard: remote %s: %s %s failure after %d attempt(s): %v",
		e.Op, kind, e.Kind, e.Attempts, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// IsRetryable reports whether err is a remote-scan failure that a
// later retry (with the peer recovered) could clear.
func IsRetryable(err error) bool {
	var re *Error
	return errors.As(err, &re) && re.Retryable
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// RemoteStats is a point-in-time snapshot of a Remote's counters.
type RemoteStats struct {
	Scans         int64  // Scan calls attempted (breaker fast-fails included)
	Failures      int64  // Scan calls that ended in a retained error
	Retries       int64  // extra attempts made after a retryable fault
	Hedges        int64  // hedge requests launched
	HedgeWins     int64  // scans won by the hedge request
	CorruptFrames int64  // KindCorrupt faults observed
	Truncations   int64  // KindTruncated faults observed
	BreakerOpens  int64  // closed→open transitions
	BreakerFast   int64  // scans fast-failed while open
	Rows          int64  // triples streamed to callers
	BreakerState  string // "closed", "open", or "half-open"
}

// Remote is an engine.Source reading a peer server's /shard/scan
// endpoint. Terms are interned into the coordinator's dictionary on
// arrival, so IDs handed to fn are locally valid. Scan itself cannot
// return an error (the Source contract); failures surface as an empty
// or short scan and are retained for Err as a typed *Error.
//
// Each request runs under its own deadline (Timeout). The response is
// decoded incrementally — framed streams frame by frame, legacy
// N-Triples line by line — so memory stays bounded by the frame size,
// not the result size. Retryable failures are retried up to MaxRetries
// times with jittered exponential backoff, but only while zero triples
// have been emitted; once the caller has seen a triple, a fault ends
// the scan with a typed error instead (no duplicate replays).
type Remote struct {
	base string
	c    *http.Client
	dict *store.Dict

	// Tunables, fixed at construction. Zero values select the defaults
	// above; a negative MaxRetries disables retries entirely.
	timeout     time.Duration
	maxRetries  int
	backoffBase time.Duration
	backoffMax  time.Duration

	// Circuit breaker (negative threshold disables it).
	breakerThreshold int
	breakerCooldown  time.Duration
	now              func() time.Time // clock seam for tests

	// Hedging (quantile 0 disables it).
	hedgeQuantile float64
	hedgeMin      time.Duration

	mu       sync.Mutex
	err      error
	rng      *rand.Rand
	brState  int
	brFails  int
	brOpened time.Time
	lats     []time.Duration // ring of time-to-first-frame observations
	latNext  int

	stScans, stFailures, stRetries atomic.Int64
	stHedges, stHedgeWins          atomic.Int64
	stCorrupt, stTruncated         atomic.Int64
	stBreakerOpens, stBreakerFast  atomic.Int64
	stRows                         atomic.Int64
}

// RemoteConfig tunes the hardened client. The zero value selects the
// Default* constants; MaxRetries < 0 means no retries,
// BreakerThreshold < 0 disables the breaker, and HedgeQuantile 0
// disables hedging.
type RemoteConfig struct {
	Timeout     time.Duration // per-request context deadline
	MaxRetries  int           // retries after the first attempt
	BackoffBase time.Duration // first retry delay (jittered)
	BackoffMax  time.Duration // backoff growth cap
	Seed        int64         // jitter seed; 0 derives from the clock

	BreakerThreshold int           // consecutive failed scans that open the breaker
	BreakerCooldown  time.Duration // open→half-open delay

	HedgeQuantile float64       // launch a second request after this latency quantile, e.g. 0.95
	HedgeMin      time.Duration // hedge delay floor
}

// NewRemote wraps the server at baseURL (scheme://host[:port], no
// trailing path) as a Source interning into dict, with default
// hardening. A nil client selects http.DefaultClient.
func NewRemote(baseURL string, client *http.Client, dict *store.Dict) *Remote {
	return NewRemoteConfig(baseURL, client, dict, RemoteConfig{})
}

// NewRemoteConfig is NewRemote with explicit retry, deadline, breaker,
// and hedging tuning.
func NewRemoteConfig(baseURL string, client *http.Client, dict *store.Dict, cfg RemoteConfig) *Remote {
	if client == nil {
		client = http.DefaultClient
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultRequestTimeout
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.Seed == 0 {
		cfg.Seed = time.Now().UnixNano()
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = DefaultHedgeMin
	}
	return &Remote{
		base:             strings.TrimRight(baseURL, "/"),
		c:                client,
		dict:             dict,
		timeout:          cfg.Timeout,
		maxRetries:       cfg.MaxRetries,
		backoffBase:      cfg.BackoffBase,
		backoffMax:       cfg.BackoffMax,
		breakerThreshold: cfg.BreakerThreshold,
		breakerCooldown:  cfg.BreakerCooldown,
		hedgeQuantile:    cfg.HedgeQuantile,
		hedgeMin:         cfg.HedgeMin,
		now:              time.Now,
		rng:              rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Dict returns the coordinator-side dictionary remote triples intern
// into.
func (r *Remote) Dict() *store.Dict { return r.dict }

// Peer returns the peer base URL, for metric labels.
func (r *Remote) Peer() string { return r.base }

// Err returns the first failure since the last call, clearing it.
// Callers check it after a scan whose emptiness matters.
func (r *Remote) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.err
	r.err = nil
	return err
}

func (r *Remote) setErr(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

// Stats snapshots the peer's counters.
func (r *Remote) Stats() RemoteStats {
	r.mu.Lock()
	state := [...]string{"closed", "open", "half-open"}[r.brState]
	r.mu.Unlock()
	return RemoteStats{
		Scans:         r.stScans.Load(),
		Failures:      r.stFailures.Load(),
		Retries:       r.stRetries.Load(),
		Hedges:        r.stHedges.Load(),
		HedgeWins:     r.stHedgeWins.Load(),
		CorruptFrames: r.stCorrupt.Load(),
		Truncations:   r.stTruncated.Load(),
		BreakerOpens:  r.stBreakerOpens.Load(),
		BreakerFast:   r.stBreakerFast.Load(),
		Rows:          r.stRows.Load(),
		BreakerState:  state,
	}
}

// jitter returns a uniform duration in [d/2, d], like the replication
// follower's backoff: desynchronized but never shorter than half the
// nominal delay.
func (r *Remote) jitter(d time.Duration) time.Duration {
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// breakerAllow reports whether a scan may proceed, moving open→half-open
// once the cooldown has elapsed. In half-open exactly one probe is in
// flight; concurrent scans fast-fail until it settles.
func (r *Remote) breakerAllow() bool {
	if r.breakerThreshold < 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.brState {
	case breakerClosed:
		return true
	case breakerOpen:
		if r.now().Sub(r.brOpened) >= r.breakerCooldown {
			r.brState = breakerHalfOpen
			return true // the half-open probe
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// breakerResult records a scan outcome: success closes the breaker,
// failure counts toward the threshold (and reopens a half-open probe).
func (r *Remote) breakerResult(ok bool) {
	if r.breakerThreshold < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ok {
		r.brState = breakerClosed
		r.brFails = 0
		return
	}
	r.brFails++
	if r.brState == breakerHalfOpen || r.brFails >= r.breakerThreshold {
		if r.brState != breakerOpen {
			r.stBreakerOpens.Add(1)
		}
		r.brState = breakerOpen
		r.brOpened = r.now()
		r.brFails = 0
	}
}

// observeLatency records a successful attempt's time-to-first-frame
// for the hedge quantile.
func (r *Remote) observeLatency(d time.Duration) {
	r.mu.Lock()
	if len(r.lats) < hedgeWindow {
		r.lats = append(r.lats, d)
	} else {
		r.lats[r.latNext%hedgeWindow] = d
	}
	r.latNext++
	r.mu.Unlock()
}

// hedgeDelay returns the delay after which a second request launches,
// or 0 when hedging is disabled or history is too thin.
func (r *Remote) hedgeDelay() time.Duration {
	if r.hedgeQuantile <= 0 {
		return 0
	}
	r.mu.Lock()
	if len(r.lats) < hedgeMinSamples {
		r.mu.Unlock()
		return 0
	}
	lats := make([]time.Duration, len(r.lats))
	copy(lats, r.lats)
	r.mu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := r.hedgeQuantile
	if q > 1 {
		q = 1
	}
	d := lats[int(q*float64(len(lats)-1))]
	if d < r.hedgeMin {
		d = r.hedgeMin
	}
	return d
}

// scanStream is one validated open response: status checked, protocol
// negotiated, and (for framed streams) the magic already verified — the
// point up to which hedging races attempts.
type scanStream struct {
	resp   *http.Response
	ctx    context.Context
	cancel context.CancelFunc
	framed bool
	fr     *frameReader
}

func (st *scanStream) close() {
	st.resp.Body.Close()
	st.cancel()
}

// attemptErr is a classified single-attempt failure.
type attemptErr struct {
	kind      ErrorKind
	retryable bool
	err       error
}

// open makes one request under its own deadline and validates the
// response up to the first protocol byte.
func (r *Remote) open(rawURL string) (*scanStream, *attemptErr) {
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	fail := func(kind ErrorKind, retryable bool, err error) (*scanStream, *attemptErr) {
		cancel()
		return nil, &attemptErr{kind, retryable, err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return fail(KindTransport, false, err)
	}
	req.Header.Set("Accept", ScanContentType)
	resp, err := r.c.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return fail(KindStalled, true, err)
		}
		return fail(KindTransport, true, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		// The peer answered: 5xx and throttling are transient, anything
		// else is an affirmative rejection retrying cannot fix.
		retryable := resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
		return fail(KindStatus, retryable, fmt.Errorf("status %s", resp.Status))
	}
	st := &scanStream{resp: resp, ctx: ctx, cancel: cancel}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), ScanContentType) {
		st.framed = true
		st.fr = newFrameReader(resp.Body)
		if err := st.fr.readHeader(); err != nil {
			st.close()
			ae := r.classifyStream(st, err)
			return nil, ae
		}
	}
	return st, nil
}

// classifyStream maps a decode failure to a typed attempt error,
// preferring the deadline over whatever read error it manifested as.
func (r *Remote) classifyStream(st *scanStream, err error) *attemptErr {
	switch {
	case st.ctx.Err() != nil:
		return &attemptErr{KindStalled, true, fmt.Errorf("deadline mid-stream: %w", err)}
	case errors.Is(err, ErrFrameCorrupt):
		r.stCorrupt.Add(1)
		return &attemptErr{KindCorrupt, true, err}
	case errors.Is(err, ErrScanTruncated):
		r.stTruncated.Add(1)
		return &attemptErr{KindTruncated, true, err}
	default:
		return &attemptErr{KindTransport, true, err}
	}
}

// openHedged opens a stream, optionally racing a second request once
// the hedge delay elapses. The loser is canceled; the first validated
// stream wins.
func (r *Remote) openHedged(rawURL string, allowHedge bool) (*scanStream, *attemptErr) {
	delay := r.hedgeDelay()
	if !allowHedge || delay <= 0 {
		return r.open(rawURL)
	}
	type result struct {
		st    *scanStream
		ae    *attemptErr
		hedge bool
	}
	ch := make(chan result, 2)
	launch := func(hedge bool) {
		st, ae := r.open(rawURL)
		ch <- result{st, ae, hedge}
	}
	go launch(false)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	outstanding, hedged := 1, false
	var firstErr *attemptErr
	for outstanding > 0 {
		select {
		case got := <-ch:
			outstanding--
			if got.ae == nil {
				if outstanding > 0 {
					go func() {
						if loser := <-ch; loser.st != nil {
							loser.st.close()
						}
					}()
				}
				if got.hedge {
					r.stHedgeWins.Add(1)
				}
				return got.st, nil
			}
			if firstErr == nil {
				firstErr = got.ae
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				r.stHedges.Add(1)
				outstanding++
				go launch(true)
			}
		}
	}
	return nil, firstErr
}

// emitPayload decodes one frame payload (whole N-Triples lines) and
// replays it to fn. Returns rows decoded, whether fn stopped the scan,
// and any parse error.
func (r *Remote) emitPayload(payload []byte, fn func(store.IDTriple) bool, emitted *int64) (int, bool, error) {
	g, err := rdf.ParseNTriples(bytes.NewReader(payload))
	if err != nil {
		return 0, false, fmt.Errorf("decode frame: %w", err)
	}
	for i, t := range g {
		if !r.emit(t, fn, emitted) {
			return i + 1, true, nil
		}
	}
	return len(g), false, nil
}

func (r *Remote) emit(t rdf.Triple, fn func(store.IDTriple) bool, emitted *int64) bool {
	it := store.IDTriple{
		S: r.dict.Intern(t.S),
		P: r.dict.Intern(t.P),
		O: r.dict.Intern(t.O),
	}
	*emitted++
	r.stRows.Add(1)
	return fn(it)
}

// consume drains a validated stream into fn. A nil return is a
// complete (or caller-stopped) scan.
func (r *Remote) consume(st *scanStream, fn func(store.IDTriple) bool, emitted *int64) *attemptErr {
	defer st.close()
	if st.framed {
		for {
			payload, eos, err := st.fr.next()
			if eos {
				if err != nil {
					// EOS arrived but its row count disagrees.
					r.stTruncated.Add(1)
					return &attemptErr{KindTruncated, true, err}
				}
				return nil
			}
			if err != nil {
				return r.classifyStream(st, err)
			}
			rows, stopped, perr := r.emitPayload(payload, fn, emitted)
			st.fr.countRows(rows)
			if perr != nil {
				// The frame passed its CRC but does not decode: a peer
				// bug, not line noise.
				r.stCorrupt.Add(1)
				return &attemptErr{KindCorrupt, true, perr}
			}
			if stopped {
				return nil
			}
		}
	}
	// Legacy N-Triples: stream line by line. No EOS marker exists, so a
	// truncation on a line boundary is undetectable here — that is the
	// gap the framed protocol closes; this path stays for old peers.
	sc := bufio.NewScanner(st.resp.Body)
	sc.Buffer(make([]byte, 64<<10), MaxFramePayload)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		g, err := rdf.ParseNTriples(bytes.NewReader(append(line, '\n')))
		if err != nil {
			return &attemptErr{KindTruncated, true, fmt.Errorf("decode: %w", err)}
		}
		for _, t := range g {
			if !r.emit(t, fn, emitted) {
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return r.classifyStream(st, err)
	}
	return nil
}

// Scan fetches the peer's matches of pat and streams them to fn. IDs in
// pat are resolved against the local dictionary; a zero ID is a
// wildcard. Retryable failures are retried with jittered exponential
// backoff while no triple has been emitted; afterwards a fault ends the
// scan with a typed error retained for Err.
func (r *Remote) Scan(pat store.IDTriple, fn func(store.IDTriple) bool) {
	r.stScans.Add(1)
	if !r.breakerAllow() {
		r.stBreakerFast.Add(1)
		r.stFailures.Add(1)
		r.setErr(&Error{Op: "scan", Kind: KindBreakerOpen, Attempts: 0, Retryable: true,
			Err: fmt.Errorf("circuit breaker open for %s", r.base)})
		return
	}
	q := url.Values{}
	for _, pos := range []struct {
		param string
		id    store.ID
	}{
		{"s", pat.S}, {"p", pat.P}, {"o", pat.O},
	} {
		if pos.id != 0 {
			q.Set(pos.param, r.dict.Term(pos.id).String())
		}
	}
	rawURL := r.base + "/shard/scan?" + q.Encode()

	var (
		emitted int64
		lastErr *attemptErr
	)
	delay := r.backoffBase
	attempts := 0
	for try := 0; try <= r.maxRetries; try++ {
		if try > 0 {
			r.stRetries.Add(1)
			time.Sleep(r.jitter(delay))
			if delay *= 2; delay > r.backoffMax {
				delay = r.backoffMax
			}
		}
		attempts++
		start := time.Now()
		st, ae := r.openHedged(rawURL, try == 0)
		if ae == nil {
			r.observeLatency(time.Since(start))
			ae = r.consume(st, fn, &emitted)
		}
		if ae == nil {
			r.breakerResult(true)
			return
		}
		lastErr = ae
		if !ae.retryable || emitted > 0 {
			break
		}
	}
	r.stFailures.Add(1)
	r.breakerResult(false)
	r.setErr(&Error{
		Op:        "scan",
		Kind:      lastErr.kind,
		Attempts:  attempts,
		Retryable: lastErr.retryable,
		Emitted:   emitted,
		Err:       lastErr.err,
	})
}
