// Shard-over-HTTP source stub: the wire seam that lets cmd/server
// instances later compose into a cluster. A server exposes its local
// matches at /shard/scan (Handler); a coordinator wraps a peer's
// endpoint as an engine.Source (Remote). The protocol is term-level
// N-Triples — dictionary IDs are process-local, so triples cross the
// wire as terms and the client interns them into the coordinator's own
// dictionary. Experimental: the in-process Group does not use it yet,
// and Scan buffers the full response rather than streaming.

package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

// Source is the read surface the scan endpoint serves and the client
// reproduces: the engine.Source contract.
type Source interface {
	Dict() *store.Dict
	Scan(pat store.IDTriple, fn func(store.IDTriple) bool)
}

// Handler serves the shard-scan wire protocol over src. src is invoked
// once per request so every response reads one consistent snapshot.
// Pattern positions arrive as N-Triples-encoded terms in the s, p, and
// o query parameters; an empty or absent parameter is a wildcard, and a
// term unknown to the dictionary yields an empty result (it cannot
// match anything). The response body is N-Triples.
func Handler(src func() Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		view := src()
		dict := view.Dict()
		var pat store.IDTriple
		for _, pos := range []struct {
			param string
			id    *store.ID
		}{
			{"s", &pat.S}, {"p", &pat.P}, {"o", &pat.O},
		} {
			raw := r.URL.Query().Get(pos.param)
			if raw == "" {
				continue
			}
			term, err := rdf.ParseTerm(raw)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad %s term: %v", pos.param, err), http.StatusBadRequest)
				return
			}
			id, ok := dict.Lookup(term)
			if !ok {
				w.Header().Set("Content-Type", "application/n-triples")
				return // unknown term: provably no matches
			}
			*pos.id = id
		}
		w.Header().Set("Content-Type", "application/n-triples")
		view.Scan(pat, func(t store.IDTriple) bool {
			_, err := fmt.Fprintf(w, "%s %s %s .\n",
				dict.Term(t.S), dict.Term(t.P), dict.Term(t.O))
			return err == nil
		})
	})
}

// Remote scan-hardening defaults. A scan makes 1+DefaultMaxRetries
// attempts before giving up; each attempt carries its own context
// deadline so a hung peer cannot stall the coordinator indefinitely.
const (
	DefaultRequestTimeout = 10 * time.Second
	DefaultMaxRetries     = 2
	DefaultBackoffBase    = 25 * time.Millisecond
	DefaultBackoffMax     = 500 * time.Millisecond
)

// Error is the typed failure a remote scan retains. Retryable marks
// faults a retry may clear — transport errors, 5xx/429 responses, and
// torn response bodies; permanent faults (any other non-200 status) are
// not retried because the peer affirmatively rejected the request.
type Error struct {
	Op        string // "scan"
	Attempts  int    // requests actually made
	Retryable bool
	Err       error
}

func (e *Error) Error() string {
	kind := "permanent"
	if e.Retryable {
		kind = "retryable"
	}
	return fmt.Sprintf("shard: remote %s: %s failure after %d attempt(s): %v",
		e.Op, kind, e.Attempts, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// IsRetryable reports whether err is a remote-scan failure that a
// later retry (with the peer recovered) could clear.
func IsRetryable(err error) bool {
	var re *Error
	return errors.As(err, &re) && re.Retryable
}

// Remote is an engine.Source reading a peer server's /shard/scan
// endpoint. Terms are interned into the coordinator's dictionary on
// arrival, so IDs handed to fn are locally valid. Scan itself cannot
// return an error (the Source contract); transport and decode failures
// surface as an empty scan and are retained for Err as a typed *Error.
//
// Each request runs under its own deadline (Timeout), and retryable
// failures are retried up to MaxRetries times with jittered exponential
// backoff before the scan gives up. Retries happen strictly before any
// triple reaches the caller — the response is decoded in full first —
// so fn never sees duplicates from a retried attempt.
type Remote struct {
	base string
	c    *http.Client
	dict *store.Dict

	// Tunables, fixed at construction. Zero values select the defaults
	// above; a negative MaxRetries disables retries entirely.
	timeout     time.Duration
	maxRetries  int
	backoffBase time.Duration
	backoffMax  time.Duration

	mu  sync.Mutex
	err error
	rng *rand.Rand
}

// RemoteConfig tunes the hardened client. The zero value selects the
// Default* constants; MaxRetries < 0 means no retries.
type RemoteConfig struct {
	Timeout     time.Duration // per-request context deadline
	MaxRetries  int           // retries after the first attempt
	BackoffBase time.Duration // first retry delay (jittered)
	BackoffMax  time.Duration // backoff growth cap
	Seed        int64         // jitter seed; 0 derives from the clock
}

// NewRemote wraps the server at baseURL (scheme://host[:port], no
// trailing path) as a Source interning into dict, with default
// hardening. A nil client selects http.DefaultClient.
func NewRemote(baseURL string, client *http.Client, dict *store.Dict) *Remote {
	return NewRemoteConfig(baseURL, client, dict, RemoteConfig{})
}

// NewRemoteConfig is NewRemote with explicit retry and deadline tuning.
func NewRemoteConfig(baseURL string, client *http.Client, dict *store.Dict, cfg RemoteConfig) *Remote {
	if client == nil {
		client = http.DefaultClient
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultRequestTimeout
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.Seed == 0 {
		cfg.Seed = time.Now().UnixNano()
	}
	return &Remote{
		base:        strings.TrimRight(baseURL, "/"),
		c:           client,
		dict:        dict,
		timeout:     cfg.Timeout,
		maxRetries:  cfg.MaxRetries,
		backoffBase: cfg.BackoffBase,
		backoffMax:  cfg.BackoffMax,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Dict returns the coordinator-side dictionary remote triples intern
// into.
func (r *Remote) Dict() *store.Dict { return r.dict }

// Err returns the first transport or decode error since the last call,
// clearing it. Callers check it after a scan whose emptiness matters.
func (r *Remote) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.err
	r.err = nil
	return err
}

func (r *Remote) setErr(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

// jitter returns a uniform duration in [d/2, d], like the replication
// follower's backoff: desynchronized but never shorter than half the
// nominal delay.
func (r *Remote) jitter(d time.Duration) time.Duration {
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// fetch makes one attempt under its own deadline and returns the
// decoded body. Failures come back as (retryable, err).
func (r *Remote) fetch(rawURL string) ([]rdf.Triple, bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := r.c.Do(req)
	if err != nil {
		return nil, true, err // transport-level: the retryable class
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// The peer answered: 5xx and throttling are transient, anything
		// else is an affirmative rejection retrying cannot fix.
		retryable := resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
		return nil, retryable, fmt.Errorf("status %s", resp.Status)
	}
	g, err := rdf.ParseNTriples(resp.Body)
	if err != nil {
		// A body that stops parsing mid-stream is a torn transfer, not a
		// peer rejection — retry it.
		return nil, true, fmt.Errorf("decode: %w", err)
	}
	return g, false, nil
}

// Scan fetches the peer's matches of pat and replays them to fn. IDs in
// pat are resolved against the local dictionary; a zero ID is a
// wildcard. Retryable failures are retried with jittered exponential
// backoff before any triple is emitted.
func (r *Remote) Scan(pat store.IDTriple, fn func(store.IDTriple) bool) {
	q := url.Values{}
	for _, pos := range []struct {
		param string
		id    store.ID
	}{
		{"s", pat.S}, {"p", pat.P}, {"o", pat.O},
	} {
		if pos.id != 0 {
			q.Set(pos.param, r.dict.Term(pos.id).String())
		}
	}
	rawURL := r.base + "/shard/scan?" + q.Encode()

	var (
		g        []rdf.Triple
		lastErr  error
		lastRetr bool
	)
	delay := r.backoffBase
	attempts := 0
	for try := 0; try <= r.maxRetries; try++ {
		if try > 0 {
			time.Sleep(r.jitter(delay))
			if delay *= 2; delay > r.backoffMax {
				delay = r.backoffMax
			}
		}
		attempts++
		var retryable bool
		var err error
		g, retryable, err = r.fetch(rawURL)
		if err == nil {
			lastErr = nil
			break
		}
		lastErr, lastRetr = err, retryable
		if !retryable {
			break
		}
	}
	if lastErr != nil {
		r.setErr(&Error{Op: "scan", Attempts: attempts, Retryable: lastRetr, Err: lastErr})
		return
	}
	for _, t := range g {
		it := store.IDTriple{
			S: r.dict.Intern(t.S),
			P: r.dict.Intern(t.P),
			O: r.dict.Intern(t.O),
		}
		if !fn(it) {
			return
		}
	}
}
