package shard

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"rdfshapes/internal/chaos"
	"rdfshapes/internal/store"
)

// chaosBackend builds a sharded group over the seed graph, serves it
// framed with the given frame target, and returns the server plus the
// oracle rows (sorted rendered terms) for the wildcard pattern.
func chaosBackend(t *testing.T, frameBytes int) (*httptest.Server, *store.Store, []string) {
	t.Helper()
	st := store.Load(seedGraph())
	g, err := New(st, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(HandlerWithConfig(func() Source { return g.Snapshot() },
		HandlerConfig{FrameBytes: frameBytes}))
	t.Cleanup(srv.Close)
	return srv, st, renderRows(st.Dict(), collect(st.Scan, store.IDTriple{}))
}

// renderRows decodes ID triples through d into sorted, comparable
// strings — the bit-identity yardstick across dictionaries.
func renderRows(d *store.Dict, ts []store.IDTriple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = d.Term(t.S).String() + " " + d.Term(t.P).String() + " " + d.Term(t.O).String()
	}
	sort.Strings(out)
	return out
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// captureFramedBody fetches the wildcard scan once, unfaulted, and
// returns the raw framed body — the byte string whose landmarks the
// matrix aims at.
func captureFramedBody(t *testing.T, base string) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/shard/scan", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", ScanContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != ScanContentType {
		t.Fatalf("Content-Type = %q, want %q", got, ScanContentType)
	}
	return raw
}

// frameLandmarks walks the framed stream structure and returns every
// protocol-significant byte offset: the magic, each frame's type byte,
// length field, payload start, payload middle, CRC trailer, and the EOS
// region.
func frameLandmarks(t *testing.T, raw []byte) []int64 {
	t.Helper()
	if string(raw[:len(scanMagic)]) != scanMagic {
		t.Fatalf("capture is not a framed stream: %q", raw[:8])
	}
	offs := []int64{0, 4, int64(len(scanMagic)) - 1}
	p := int64(len(scanMagic))
	for p < int64(len(raw)) {
		n := int64(binary.BigEndian.Uint32(raw[p+1 : p+5]))
		offs = append(offs, p, p+1, p+5) // type, length, payload start
		if n > 1 {
			offs = append(offs, p+5+n/2) // mid payload
		}
		offs = append(offs, p+5+n, p+5+n+3) // CRC first and last byte
		p += 5 + n + 4
	}
	if p != int64(len(raw)) {
		t.Fatalf("stream walk ended at %d of %d bytes", p, len(raw))
	}
	return offs
}

// TestRemoteChaosMatrix is the tentpole acceptance suite: every fault
// kind at every frame-protocol landmark, through both the transient
// path (fault once, then clean — the retry must win) and the persistent
// path (fault forever — a typed error must surface). The invariant that
// must hold everywhere: a scan that reports no error is bit-identical
// to the unfaulted oracle; a scan that lost anything reports a typed
// *Error. Silence and shortness never coincide.
func TestRemoteChaosMatrix(t *testing.T) {
	for _, frameBytes := range []int{0, 64} { // one big frame; many small frames
		t.Run(fmt.Sprintf("frame=%d", frameBytes), func(t *testing.T) {
			srv, _, oracle := chaosBackend(t, frameBytes)
			raw := captureFramedBody(t, srv.URL)
			landmarks := frameLandmarks(t, raw)
			kinds := []chaos.Kind{chaos.Reset, chaos.Truncate, chaos.Corrupt}

			var sawTypedError, sawRetriedSuccess bool
			for _, kind := range kinds {
				for _, off := range landmarks {
					fault := chaos.Fault{Kind: kind, Offset: off}
					for _, persistent := range []bool{false, true} {
						name := fmt.Sprintf("%v/persistent=%v", fault, persistent)
						script := chaos.NewScript(persistent, fault)
						rd := store.NewDict()
						rt := &chaos.RoundTripper{Base: srv.Client().Transport, Script: script}
						client := &http.Client{Transport: rt}
						remote := NewRemoteConfig(srv.URL, client, rd, RemoteConfig{
							MaxRetries:  1,
							BackoffBase: time.Millisecond,
							BackoffMax:  2 * time.Millisecond,
							Seed:        42,
						})
						got := collect(remote.Scan, store.IDTriple{})
						err := remote.Err()
						if err == nil {
							if !equalRows(renderRows(rd, got), oracle) {
								t.Fatalf("%s: SILENT divergence: %d rows, oracle %d",
									name, len(got), len(oracle))
							}
							if rt.Requests.Load() > 1 {
								sawRetriedSuccess = true
							}
						} else {
							re, ok := err.(*Error)
							if !ok {
								t.Fatalf("%s: untyped error %T %v", name, err, err)
							}
							if re.Kind == KindStatus || re.Kind == KindBreakerOpen {
								t.Fatalf("%s: implausible kind %v", name, re.Kind)
							}
							sawTypedError = true
						}
					}
				}
			}
			if !sawTypedError {
				t.Error("matrix never produced a typed error — faults not biting")
			}
			if !sawRetriedSuccess {
				t.Error("matrix never recovered via retry — transient path untested")
			}
		})
	}
}

// TestRemoteChaosStallAndBlackhole covers the time-domain faults: a
// short stall is survived transparently, a stall past the request
// deadline and a blackhole both become typed stalled errors, and added
// latency is just latency.
func TestRemoteChaosStallAndBlackhole(t *testing.T) {
	srv, _, oracle := chaosBackend(t, 64)

	cases := []struct {
		name    string
		fault   chaos.Fault
		timeout time.Duration
		wantOK  bool
	}{
		{"short-stall", chaos.Fault{Kind: chaos.Stall, Offset: 40, Delay: 5 * time.Millisecond}, time.Second, true},
		{"latency", chaos.Fault{Kind: chaos.Latency, Delay: 5 * time.Millisecond}, time.Second, true},
		{"long-stall", chaos.Fault{Kind: chaos.Stall, Offset: 40, Delay: 400 * time.Millisecond}, 50 * time.Millisecond, false},
		{"blackhole", chaos.Fault{Kind: chaos.Blackhole}, 50 * time.Millisecond, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			script := chaos.NewScript(true, tc.fault)
			rd := store.NewDict()
			client := &http.Client{Transport: &chaos.RoundTripper{
				Base: srv.Client().Transport, Script: script}}
			remote := NewRemoteConfig(srv.URL, client, rd, RemoteConfig{
				Timeout:     tc.timeout,
				MaxRetries:  1,
				BackoffBase: time.Millisecond,
				BackoffMax:  2 * time.Millisecond,
				Seed:        42,
			})
			got := collect(remote.Scan, store.IDTriple{})
			err := remote.Err()
			if tc.wantOK {
				if err != nil {
					t.Fatalf("err = %v, want clean scan", err)
				}
				if !equalRows(renderRows(rd, got), oracle) {
					t.Fatalf("scan diverged: %d rows, oracle %d", len(got), len(oracle))
				}
				return
			}
			if err == nil {
				t.Fatal("deadline-class fault produced no error")
			}
			re, ok := err.(*Error)
			if !ok {
				t.Fatalf("untyped error %T %v", err, err)
			}
			if re.Kind != KindStalled && re.Kind != KindTransport {
				t.Fatalf("kind = %v, want stalled/transport", re.Kind)
			}
		})
	}
}

// TestRemoteChaosOverTCPProxy runs coarse faults through a real TCP
// proxy — kernel sockets, genuine RSTs — rather than an in-process
// RoundTripper, and holds the same invariant: no error means oracle-
// identical rows.
func TestRemoteChaosOverTCPProxy(t *testing.T) {
	srv, _, oracle := chaosBackend(t, 256)
	target := strings.TrimPrefix(srv.URL, "http://")

	script := chaos.NewScript(true,
		chaos.Fault{Kind: chaos.None},
		chaos.Fault{Kind: chaos.Reset, Offset: 200},
		chaos.Fault{Kind: chaos.Truncate, Offset: 300},
		chaos.Fault{Kind: chaos.Corrupt, Offset: 250},
		chaos.Fault{Kind: chaos.Latency, Delay: 3 * time.Millisecond},
		chaos.Fault{Kind: chaos.Reset, Offset: 0},
	)
	proxy, err := chaos.NewProxy("127.0.0.1:0", target, script)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	rd := store.NewDict()
	// One request per connection so each scan attempt draws exactly one
	// scripted fault.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	remote := NewRemoteConfig("http://"+proxy.Addr(), client, rd, RemoteConfig{
		Timeout:          time.Second,
		MaxRetries:       2,
		BackoffBase:      time.Millisecond,
		BackoffMax:       4 * time.Millisecond,
		Seed:             42,
		BreakerThreshold: -1, // scripted faults shouldn't trip fast-fails here
	})

	var successes, typedErrors int
	for i := 0; i < 24; i++ {
		got := collect(remote.Scan, store.IDTriple{})
		err := remote.Err()
		if err == nil {
			successes++
			if !equalRows(renderRows(rd, got), oracle) {
				t.Fatalf("scan %d: SILENT divergence over TCP: %d rows, oracle %d",
					i, len(got), len(oracle))
			}
			continue
		}
		typedErrors++
		if _, ok := err.(*Error); !ok {
			t.Fatalf("scan %d: untyped error %T %v", i, err, err)
		}
	}
	if successes == 0 {
		t.Error("no scan ever succeeded through the chaos proxy")
	}
	if proxy.Injected.Load() == 0 {
		t.Error("proxy injected nothing — script misrouted")
	}
	t.Logf("proxy matrix: %d successes, %d typed errors, %d conns (%d faulted)",
		successes, typedErrors, proxy.Conns.Load(), proxy.Injected.Load())
}
