package shard

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"rdfshapes/internal/chaos"
	"rdfshapes/internal/engine"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// TestRemoteStreamsIncrementally proves the decoder is a stream, not a
// buffer: the server writes one frame, then refuses to send EOS until
// the client has already surfaced that frame's rows to the callback. A
// whole-response-buffering client can never pass this — it would wait
// for EOS before emitting anything.
func TestRemoteStreamsIncrementally(t *testing.T) {
	sawFirst := make(chan struct{})
	line := "<http://x/a> <http://x/p> <http://x/b> .\n"

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ScanContentType)
		fw := newFrameWriter(w, 1) // flush every line
		if err := fw.writeHeader(); err != nil {
			return
		}
		if _, err := fw.addLine([]byte(line)); err != nil {
			return
		}
		w.(http.Flusher).Flush()
		select {
		case <-sawFirst:
		case <-time.After(5 * time.Second):
			return // give up: truncation error beats a deadlocked test
		}
		fw.close()
	}))
	defer srv.Close()

	rd := store.NewDict()
	remote := NewRemoteConfig(srv.URL, srv.Client(), rd, RemoteConfig{Timeout: 10 * time.Second})
	var rows int
	remote.Scan(store.IDTriple{}, func(store.IDTriple) bool {
		rows++
		select {
		case <-sawFirst:
		default:
			close(sawFirst)
		}
		return true
	})
	if err := remote.Err(); err != nil {
		t.Fatalf("Err() = %v (client buffered the body instead of streaming)", err)
	}
	if rows != 1 {
		t.Fatalf("rows = %d, want 1", rows)
	}
}

// TestRemoteScanMemoryBounded streams a response far larger than the
// permitted live-heap growth. The old implementation buffered the whole
// body before parsing, which this bound catches immediately.
func TestRemoteScanMemoryBounded(t *testing.T) {
	const rows = 300000
	// A small rotating term set keeps the dictionary footprint flat, so
	// heap growth tracks decoder buffering, not interning.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ScanContentType)
		fw := newFrameWriter(w, DefaultFrameBytes)
		if err := fw.writeHeader(); err != nil {
			return
		}
		for i := 0; i < rows; i++ {
			l := fmt.Sprintf("<http://x/s%d> <http://x/p%d> <http://x/o%d> .\n",
				i%97, i%7, i%89)
			if _, err := fw.addLine([]byte(l)); err != nil {
				return
			}
		}
		fw.close()
	}))
	defer srv.Close()

	rd := store.NewDict()
	remote := NewRemoteConfig(srv.URL, srv.Client(), rd, RemoteConfig{Timeout: time.Minute})

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc

	var got int64
	var peak uint64
	remote.Scan(store.IDTriple{}, func(store.IDTriple) bool {
		got++
		if got%50000 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
		return true
	})
	if err := remote.Err(); err != nil {
		t.Fatal(err)
	}
	if got != rows {
		t.Fatalf("rows = %d, want %d", got, rows)
	}
	// ~13MB of wire bytes must not be resident at once; allow generous
	// slack for GC lag and the race detector, but far below body size.
	const limit = 8 << 20
	if peak > base && peak-base > limit {
		t.Errorf("live heap grew %d bytes during scan (limit %d) — response is being buffered",
			peak-base, limit)
	}
}

// TestRemoteLegacyFallback pins back-compat: when the server ignores
// content negotiation and answers plain N-Triples, the client falls
// back to line streaming and still matches the oracle.
func TestRemoteLegacyFallback(t *testing.T) {
	srv, _, oracle := chaosBackend(t, 0)
	stripped := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Forward without the Accept header: the backend answers legacy
		// N-Triples, which is what this test wants the client to survive.
		proxyReq, err := http.NewRequest(http.MethodGet, srv.URL+r.URL.Path+"?"+r.URL.RawQuery, nil)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		resp, err := http.DefaultClient.Do(proxyReq)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}))
	defer stripped.Close()

	rd := store.NewDict()
	remote := NewRemote(stripped.URL, stripped.Client(), rd)
	got := collect(remote.Scan, store.IDTriple{})
	if err := remote.Err(); err != nil {
		t.Fatal(err)
	}
	if !equalRows(renderRows(rd, got), oracle) {
		t.Fatalf("legacy fallback diverged: %d rows, oracle %d", len(got), len(oracle))
	}
}

// TestRemoteCircuitBreaker drives the full state machine on a fake
// clock: consecutive failures open it, open fast-fails without touching
// the network, cooldown admits a single half-open probe, and a healthy
// probe closes it again.
func TestRemoteCircuitBreaker(t *testing.T) {
	var hits, failing atomic.Int64
	failing.Store(1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if failing.Load() == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		HandlerWithConfig(func() Source { return sourceOf(seedGraph()) }, HandlerConfig{}).ServeHTTP(w, r)
	}))
	defer srv.Close()

	rd := store.NewDict()
	remote := NewRemoteConfig(srv.URL, srv.Client(), rd, RemoteConfig{
		MaxRetries:       -1, // each scan is exactly one attempt
		BreakerThreshold: 3,
		BreakerCooldown:  time.Second,
	})
	clock := time.Unix(1000, 0)
	remote.now = func() time.Time { return clock }

	for i := 0; i < 3; i++ {
		collect(remote.Scan, store.IDTriple{})
		var re *Error
		if err := remote.Err(); !errors.As(err, &re) || re.Kind != KindStatus {
			t.Fatalf("scan %d: err = %v, want status failure", i, err)
		}
	}
	st := remote.Stats()
	if st.BreakerOpens != 1 || st.BreakerState != "open" {
		t.Fatalf("after threshold: opens=%d state=%s, want 1/open", st.BreakerOpens, st.BreakerState)
	}

	before := hits.Load()
	collect(remote.Scan, store.IDTriple{})
	var re *Error
	if err := remote.Err(); !errors.As(err, &re) || re.Kind != KindBreakerOpen {
		t.Fatalf("open breaker: err = %v, want KindBreakerOpen", remote.Err())
	}
	if hits.Load() != before {
		t.Fatal("open breaker still hit the network")
	}
	if remote.Stats().BreakerFast != 1 {
		t.Fatalf("BreakerFast = %d, want 1", remote.Stats().BreakerFast)
	}

	// Cooldown elapses and the peer heals: the half-open probe closes it.
	clock = clock.Add(2 * time.Second)
	failing.Store(0)
	got := collect(remote.Scan, store.IDTriple{})
	if err := remote.Err(); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("half-open probe returned no rows")
	}
	if st := remote.Stats(); st.BreakerState != "closed" {
		t.Fatalf("state after probe = %s, want closed", st.BreakerState)
	}
	// And it stays closed.
	collect(remote.Scan, store.IDTriple{})
	if err := remote.Err(); err != nil {
		t.Fatal(err)
	}
}

// sourceOf loads g into a fresh store, for handlers that just need any
// Source.
func sourceOf(g rdf.Graph) Source { return store.Load(g) }

// TestRemoteHedgedRead warms the latency ring with fast scans, then
// stalls exactly one primary request: the hedge fires, wins, and the
// scan still matches the oracle.
func TestRemoteHedgedRead(t *testing.T) {
	var stallOne atomic.Int64
	inner := HandlerWithConfig(func() Source { return sourceOf(seedGraph()) }, HandlerConfig{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if stallOne.CompareAndSwap(1, 0) {
			time.Sleep(400 * time.Millisecond)
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	rd := store.NewDict()
	remote := NewRemoteConfig(srv.URL, srv.Client(), rd, RemoteConfig{
		Timeout:       5 * time.Second,
		MaxRetries:    -1,
		HedgeQuantile: 0.5,
		HedgeMin:      time.Millisecond,
	})

	var oracle []string
	for i := 0; i < 10; i++ { // fill the ring past hedgeMinSamples
		got := collect(remote.Scan, store.IDTriple{})
		if err := remote.Err(); err != nil {
			t.Fatalf("warm-up scan %d: %v", i, err)
		}
		oracle = renderRows(rd, got)
	}

	// The stall flag is consumed by whichever request reaches the handler
	// first; under scheduler jitter that can be the hedge itself, which
	// then loses. Repeat rounds until the hedge wins one — correctness
	// must hold every round regardless.
	for round := 0; round < 10; round++ {
		stallOne.Store(1)
		got := collect(remote.Scan, store.IDTriple{})
		if err := remote.Err(); err != nil {
			t.Fatalf("round %d: hedged scan: %v", round, err)
		}
		if !equalRows(renderRows(rd, got), oracle) {
			t.Fatalf("round %d: hedged scan diverged: %d rows, oracle %d",
				round, len(got), len(oracle))
		}
		if remote.Stats().HedgeWins > 0 {
			break
		}
	}
	st := remote.Stats()
	if st.Hedges == 0 {
		t.Error("no hedge launched despite stalled primaries")
	}
	if st.HedgeWins == 0 {
		t.Error("hedge never won across 10 stalled rounds")
	}
}

// splitServers partitions the seed graph by subject into two stores and
// serves each behind its own framed handler — a real two-peer topology
// with disjoint data.
func splitServers(t *testing.T) (a, b *httptest.Server, full *store.Store) {
	t.Helper()
	g := seedGraph()
	var ga, gb rdf.Graph
	for _, tr := range g {
		h := 0
		for _, c := range tr.S.String() {
			h = h*31 + int(c)
		}
		if h%2 == 0 {
			ga.Append(tr.S, tr.P, tr.O)
		} else {
			gb.Append(tr.S, tr.P, tr.O)
		}
	}
	if len(ga) == 0 || len(gb) == 0 {
		t.Fatal("degenerate split")
	}
	sa, sb := store.Load(ga), store.Load(gb)
	a = httptest.NewServer(HandlerWithConfig(func() Source { return sa }, HandlerConfig{}))
	b = httptest.NewServer(HandlerWithConfig(func() Source { return sb }, HandlerConfig{}))
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	return a, b, store.Load(g)
}

// TestRemoteGroupFailFast pins the default partial-failure stance: one
// dead peer fails the whole scan, and TakeFault hands the engine a
// typed, non-degraded fault exactly once.
func TestRemoteGroupFailFast(t *testing.T) {
	a, _, _ := splitServers(t)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)

	rd := store.NewDict()
	pa := NewRemoteConfig(a.URL, a.Client(), rd, RemoteConfig{MaxRetries: -1})
	pb := NewRemoteConfig(dead.URL, dead.Client(), rd, RemoteConfig{MaxRetries: -1})
	grp, err := NewRemoteGroup(rd, []*Remote{pa, pb}, false)
	if err != nil {
		t.Fatal(err)
	}

	collect(grp.Scan, store.IDTriple{})
	ferr, degraded := grp.TakeFault()
	if ferr == nil || degraded {
		t.Fatalf("TakeFault = (%v, %v), want non-nil fail-fast fault", ferr, degraded)
	}
	var re *Error
	if !errors.As(ferr, &re) {
		t.Fatalf("fault is untyped: %T %v", ferr, ferr)
	}
	if ferr, _ := grp.TakeFault(); ferr != nil {
		t.Fatal("TakeFault did not clear the fault")
	}
}

// TestRemoteGroupDegraded pins the opt-in stance: the healthy peer's
// rows still flow, the fault is flagged degraded, and the degraded-scan
// counter moves.
func TestRemoteGroupDegraded(t *testing.T) {
	a, _, _ := splitServers(t)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)

	rd := store.NewDict()
	pa := NewRemoteConfig(a.URL, a.Client(), rd, RemoteConfig{MaxRetries: -1})
	pb := NewRemoteConfig(dead.URL, dead.Client(), rd, RemoteConfig{MaxRetries: -1})
	grp, err := NewRemoteGroup(rd, []*Remote{pa, pb}, true)
	if err != nil {
		t.Fatal(err)
	}

	got := collect(grp.Scan, store.IDTriple{})
	if len(got) == 0 {
		t.Fatal("degraded scan dropped the healthy peer's rows")
	}
	ferr, degraded := grp.TakeFault()
	if ferr == nil || !degraded {
		t.Fatalf("TakeFault = (%v, %v), want degraded fault", ferr, degraded)
	}
	if grp.DegradedScans() != 1 {
		t.Fatalf("DegradedScans = %d, want 1", grp.DegradedScans())
	}
}

// TestEngineOverRemoteGroupDifferential runs real BGP queries through
// the engine twice — once over the local store, once over a two-peer
// RemoteGroup with transient chaos on one leg — and demands identical
// row sets whenever the distributed run reports success.
func TestEngineOverRemoteGroupDifferential(t *testing.T) {
	a, b, full := splitServers(t)

	script := chaos.NewScript(true,
		chaos.Fault{Kind: chaos.Truncate, Offset: 30},
		chaos.Fault{Kind: chaos.None},
		chaos.Fault{Kind: chaos.Corrupt, Offset: 25},
		chaos.Fault{Kind: chaos.None},
		chaos.Fault{Kind: chaos.None},
	)
	rd := store.NewDict()
	chaotic := &http.Client{Transport: &chaos.RoundTripper{Base: a.Client().Transport, Script: script}}
	pa := NewRemoteConfig(a.URL, chaotic, rd, RemoteConfig{
		MaxRetries: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond, Seed: 7})
	pb := NewRemoteConfig(b.URL, b.Client(), rd, RemoteConfig{MaxRetries: 2})
	grp, err := NewRemoteGroup(rd, []*Remote{pa, pb}, false)
	if err != nil {
		t.Fatal(err)
	}

	// Warm the coordinator dictionary: pattern constants resolve against
	// the group's dict, which only learns terms as they stream in. Loop
	// until one wildcard scan completes cleanly despite the chaos script.
	warmed := false
	for i := 0; i < 20 && !warmed; i++ {
		collect(grp.Scan, store.IDTriple{})
		if ferr, _ := grp.TakeFault(); ferr == nil {
			warmed = true
		}
	}
	if !warmed {
		t.Fatal("no clean warm-up scan in 20 tries")
	}

	queries := []string{
		`SELECT * WHERE { ?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Person> }`,
		`SELECT * WHERE { ?s <http://ex.org/knows> ?o . ?o <http://ex.org/name> ?n . }`,
		`SELECT * WHERE { ?s <http://ex.org/serial> ?n }`,
	}
	for qi, src := range queries {
		q := sparql.MustParse(src)
		want, err := engine.Run(full, q.Patterns, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantRows := renderBindings(full.Dict(), want.Rows)

		var successes int
		for i := 0; i < 6; i++ {
			got, err := engine.Run(grp, q.Patterns, engine.Options{})
			if err != nil {
				if !errors.Is(err, engine.ErrSourceFailed) {
					t.Fatalf("query %d run %d: untyped engine error %v", qi, i, err)
				}
				continue
			}
			if got.Degraded {
				t.Fatalf("query %d run %d: degraded result from fail-fast group", qi, i)
			}
			successes++
			gotRows := renderBindings(rd, got.Rows)
			if !equalRows(gotRows, wantRows) {
				t.Fatalf("query %d run %d: SILENT divergence\n got %v\nwant %v",
					qi, i, gotRows, wantRows)
			}
		}
		if successes == 0 {
			t.Errorf("query %d: no distributed run ever succeeded under transient chaos", qi)
		}
	}
}

// renderBindings turns binding rows into sorted comparable strings.
func renderBindings(d *store.Dict, rows [][]store.ID) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		s := ""
		for _, id := range row {
			s += d.Term(id).String() + "|"
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}
