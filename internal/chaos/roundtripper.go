package chaos

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
)

// RoundTripper applies one scripted fault per request to the response
// body the client reads. Unlike the Listener/Proxy wrappers it faults
// *above* the HTTP layer: a Truncate here is invisible to the transport
// (no short Content-Length, no connection error) and reaches the caller
// as a bare io.EOF mid-body — precisely the silent-truncation attack a
// framed protocol must detect by itself.
type RoundTripper struct {
	Base   http.RoundTripper // nil selects http.DefaultTransport
	Script *Script

	Requests atomic.Int64
	Injected atomic.Int64
}

func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	base := rt.Base
	if base == nil {
		base = http.DefaultTransport
	}
	f := rt.Script.Next()
	rt.Requests.Add(1)
	if f.Kind != None {
		rt.Injected.Add(1)
	}
	switch f.Kind {
	case Latency:
		sleep(f.Delay)
	case Blackhole:
		// Never answer: park until the request's own deadline fires.
		<-req.Context().Done()
		return nil, fmt.Errorf("%w: %s: %v", ErrInjected, f, req.Context().Err())
	}
	resp, err := base.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	switch f.Kind {
	case Reset, Truncate, Corrupt, Stall:
		resp.Body = &faultBody{rc: resp.Body, f: f}
	}
	return resp, nil
}

// faultBody applies an offset-addressed fault to a response body read
// stream.
type faultBody struct {
	rc      io.ReadCloser
	f       Fault
	read    int64
	done    bool
	stalled bool
}

func (b *faultBody) Read(p []byte) (int, error) {
	if b.done {
		switch b.f.Kind {
		case Truncate:
			return 0, io.EOF
		default:
			return 0, fmt.Errorf("%w: %s", ErrInjected, b.f)
		}
	}
	switch b.f.Kind {
	case Reset, Truncate:
		keep := b.f.Offset - b.read
		if keep <= 0 {
			b.done = true
			b.rc.Close()
			if b.f.Kind == Truncate {
				return 0, io.EOF
			}
			return 0, fmt.Errorf("%w: %s", ErrInjected, b.f)
		}
		if int64(len(p)) > keep {
			p = p[:keep]
		}
		n, err := b.rc.Read(p)
		b.read += int64(n)
		return n, err
	case Corrupt:
		n, err := b.rc.Read(p)
		if off := b.f.Offset - b.read; off >= 0 && off < int64(n) {
			p[off] ^= b.f.mask()
		}
		b.read += int64(n)
		return n, err
	case Stall:
		if !b.stalled && b.read >= b.f.Offset {
			b.stalled = true
			sleep(b.f.Delay)
		}
		n, err := b.rc.Read(p)
		b.read += int64(n)
		return n, err
	default:
		n, err := b.rc.Read(p)
		b.read += int64(n)
		return n, err
	}
}

func (b *faultBody) Close() error { return b.rc.Close() }
