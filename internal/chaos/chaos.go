// Package chaos is a deterministic network fault-injection layer used
// to harden the remote shard seam. It wraps the three places a byte
// stream can be attacked — a net.Listener (server side), a TCP proxy
// (between processes), and an http.RoundTripper (client side) — and
// applies a seeded script of faults to the response direction: added
// latency, connection resets at byte offset N, mid-body truncation,
// single-bit corruption, stalls (slow-loris), and blackholes.
//
// Faults are scripted, not random-at-runtime: a Script is an ordered
// list consumed one fault per connection (or per request for the
// RoundTripper), so a test or smoke run replays the exact same fault
// sequence for a given seed. The same offsets can therefore be aimed at
// protocol landmarks — a frame header, a CRC trailer, the EOS marker —
// which is what makes the shard chaos matrix exhaustive rather than
// probabilistic.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// None passes the connection through untouched.
	None Kind = iota
	// Latency delays the first response byte by Delay, then passes
	// through.
	Latency
	// Reset aborts the connection after Offset response bytes. On a TCP
	// connection the abort is a hard RST (SO_LINGER 0), so the client
	// sees "connection reset by peer" rather than a clean EOF.
	Reset
	// Truncate closes the connection cleanly after Offset response
	// bytes: the client sees a premature but orderly EOF.
	Truncate
	// Corrupt XORs the response byte at Offset with Mask (default
	// 0x01: a single bit flip) and passes everything else through.
	Corrupt
	// Stall pauses the response for Delay once Offset bytes have been
	// sent, then resumes — a mid-body slow-loris.
	Stall
	// Blackhole accepts the connection and discards the response
	// without ever sending a byte; the client hangs until its own
	// deadline fires.
	Blackhole
)

var kindNames = map[Kind]string{
	None: "none", Latency: "latency", Reset: "reset", Truncate: "truncate",
	Corrupt: "corrupt", Stall: "stall", Blackhole: "blackhole",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("chaos.Kind(%d)", int(k))
}

// ErrInjected is the sentinel wrapped by every error a chaos wrapper
// manufactures, so tests can distinguish injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// Fault is one scripted fault. Offset counts response-direction bytes
// and is meaningful for Reset, Truncate, Corrupt, and Stall; Delay is
// meaningful for Latency and Stall; Mask for Corrupt (zero means 0x01).
type Fault struct {
	Kind   Kind
	Offset int64
	Delay  time.Duration
	Mask   byte
}

func (f Fault) String() string {
	switch f.Kind {
	case Latency:
		return fmt.Sprintf("latency:%s", f.Delay)
	case Reset, Truncate:
		return fmt.Sprintf("%s@%d", f.Kind, f.Offset)
	case Corrupt:
		return fmt.Sprintf("corrupt@%d^%#02x", f.Offset, f.mask())
	case Stall:
		return fmt.Sprintf("stall@%d:%s", f.Offset, f.Delay)
	default:
		return f.Kind.String()
	}
}

func (f Fault) mask() byte {
	if f.Mask == 0 {
		return 0x01
	}
	return f.Mask
}

// Script is a deterministic ordered fault list. Each Next call consumes
// the next fault; a non-looping script answers None once exhausted, a
// looping script wraps around forever. Scripts are safe for concurrent
// use.
type Script struct {
	mu     sync.Mutex
	faults []Fault
	next   int
	loop   bool
	served int64
}

// NewScript builds a script from an explicit fault list.
func NewScript(loop bool, faults ...Fault) *Script {
	return &Script{faults: faults, loop: loop}
}

// Next consumes and returns the next scripted fault.
func (s *Script) Next() Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.faults) == 0 || (!s.loop && s.next >= len(s.faults)) {
		return Fault{}
	}
	f := s.faults[s.next%len(s.faults)]
	s.next++
	s.served++
	return f
}

// Served reports how many faults (including None entries) have been
// consumed.
func (s *Script) Served() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Len returns the script length.
func (s *Script) Len() int { return len(s.faults) }

// RandomScript derives a deterministic script of n faults from seed,
// mixing every kind with offsets in [0, maxOffset). The same seed
// always yields the same script, so a failing chaos run is replayable
// by seed alone.
func RandomScript(seed int64, n int, maxOffset int64, loop bool) *Script {
	if maxOffset < 1 {
		maxOffset = 1
	}
	rng := rand.New(rand.NewSource(seed))
	kinds := []Kind{None, Latency, Reset, Truncate, Corrupt, Stall}
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		f := Fault{Kind: kinds[rng.Intn(len(kinds))]}
		switch f.Kind {
		case Latency:
			f.Delay = time.Duration(1+rng.Intn(20)) * time.Millisecond
		case Reset, Truncate, Corrupt:
			f.Offset = rng.Int63n(maxOffset)
		case Stall:
			f.Offset = rng.Int63n(maxOffset)
			f.Delay = time.Duration(1+rng.Intn(20)) * time.Millisecond
		}
		faults = append(faults, f)
	}
	return &Script{faults: faults, loop: loop}
}

// ParseScript parses a comma-separated fault spec, e.g.
//
//	none,latency:50ms,reset@1024,truncate@16,corrupt@9,stall@64:200ms,blackhole
//
// Offsets follow '@', durations follow ':', and a corrupt mask may
// follow '^' as hex (default 0x01).
func ParseScript(spec string, loop bool) (*Script, error) {
	var faults []Fault
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := parseFault(part)
		if err != nil {
			return nil, fmt.Errorf("chaos: bad fault %q: %w", part, err)
		}
		faults = append(faults, f)
	}
	if len(faults) == 0 {
		return nil, errors.New("chaos: empty script")
	}
	return &Script{faults: faults, loop: loop}, nil
}

func parseFault(part string) (Fault, error) {
	var f Fault
	name := part
	if i := strings.IndexAny(part, "@:"); i >= 0 {
		name = part[:i]
	}
	found := false
	for k, n := range kindNames {
		if n == name {
			f.Kind, found = k, true
			break
		}
	}
	if !found {
		return f, fmt.Errorf("unknown kind %q", name)
	}
	rest := part[len(name):]
	if at := strings.Index(rest, "@"); at >= 0 {
		num := rest[at+1:]
		if c := strings.IndexAny(num, ":^"); c >= 0 {
			num = num[:c]
		}
		off, err := strconv.ParseInt(num, 10, 64)
		if err != nil {
			return f, fmt.Errorf("offset: %w", err)
		}
		f.Offset = off
	}
	if colon := strings.Index(rest, ":"); colon >= 0 {
		num := rest[colon+1:]
		if c := strings.Index(num, "^"); c >= 0 {
			num = num[:c]
		}
		d, err := time.ParseDuration(num)
		if err != nil {
			return f, fmt.Errorf("delay: %w", err)
		}
		f.Delay = d
	}
	if caret := strings.Index(rest, "^"); caret >= 0 {
		m, err := strconv.ParseUint(strings.TrimPrefix(rest[caret+1:], "0x"), 16, 8)
		if err != nil {
			return f, fmt.Errorf("mask: %w", err)
		}
		f.Mask = byte(m)
	}
	return f, nil
}
