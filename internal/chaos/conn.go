package chaos

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// faultConn wraps a net.Conn and applies one Fault to the bytes written
// through it (the response direction). Reads pass through untouched.
type faultConn struct {
	net.Conn
	f       Fault
	written int64
	stalled bool
	dead    bool
}

// abort tears the connection down. For Reset on TCP, SO_LINGER 0 turns
// the close into a hard RST so the peer sees ECONNRESET instead of EOF.
func (c *faultConn) abort(rst bool) {
	if rst {
		if tc, ok := c.Conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
	}
	c.Conn.Close()
	c.dead = true
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.dead {
		return 0, fmt.Errorf("%w: %s", ErrInjected, c.f)
	}
	switch c.f.Kind {
	case None:
		return c.Conn.Write(p)
	case Latency:
		if c.written == 0 && len(p) > 0 {
			sleep(c.f.Delay)
		}
		n, err := c.Conn.Write(p)
		c.written += int64(n)
		return n, err
	case Blackhole:
		// Swallow the bytes: the writer believes it made progress, the
		// peer never hears a thing and must rely on its own deadline.
		return len(p), nil
	case Reset, Truncate:
		keep := c.f.Offset - c.written
		if keep < 0 {
			keep = 0
		}
		if int64(len(p)) <= keep {
			n, err := c.Conn.Write(p)
			c.written += int64(n)
			return n, err
		}
		n := 0
		if keep > 0 {
			var err error
			n, err = c.Conn.Write(p[:keep])
			c.written += int64(n)
			if err != nil {
				return n, err
			}
		}
		c.abort(c.f.Kind == Reset)
		return n, fmt.Errorf("%w: %s", ErrInjected, c.f)
	case Corrupt:
		if c.f.Offset >= c.written && c.f.Offset < c.written+int64(len(p)) {
			q := make([]byte, len(p))
			copy(q, p)
			q[c.f.Offset-c.written] ^= c.f.mask()
			p = q
		}
		n, err := c.Conn.Write(p)
		c.written += int64(n)
		return n, err
	case Stall:
		if !c.stalled && c.written+int64(len(p)) > c.f.Offset {
			keep := c.f.Offset - c.written
			if keep > 0 {
				n, err := c.Conn.Write(p[:keep])
				c.written += int64(n)
				if err != nil {
					return n, err
				}
				p = p[keep:]
				sleep(c.f.Delay)
				c.stalled = true
				m, err := c.Conn.Write(p)
				c.written += int64(m)
				return n + m, err
			}
			sleep(c.f.Delay)
			c.stalled = true
		}
		n, err := c.Conn.Write(p)
		c.written += int64(n)
		return n, err
	default:
		return c.Conn.Write(p)
	}
}

// sleep is a test seam so unit tests can keep fault delays honest but
// fast.
var sleep = time.Sleep

// Listener wraps an accepting listener so every accepted connection
// carries the next scripted fault on its write (response) path.
type Listener struct {
	net.Listener
	Script *Script

	// Injected counts accepted connections that drew a non-None fault.
	Injected atomic.Int64
}

// WrapListener wraps ln with script.
func WrapListener(ln net.Listener, script *Script) *Listener {
	return &Listener{Listener: ln, Script: script}
}

func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	f := l.Script.Next()
	if f.Kind != None {
		l.Injected.Add(1)
	}
	return &faultConn{Conn: c, f: f}, nil
}
