package chaos

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Proxy is a TCP forwarder that applies one scripted fault per accepted
// connection to the server→client byte stream. It sits in front of a
// real process (a cmd/server shard peer, say) so faults hit genuine
// kernel sockets rather than in-process pipes — the shape of fault a
// production coordinator actually sees.
type Proxy struct {
	ln     net.Listener
	target string
	script *Script

	closed   atomic.Bool
	wg       sync.WaitGroup
	Conns    atomic.Int64 // connections accepted
	Injected atomic.Int64 // connections that drew a non-None fault
}

// NewProxy listens on listenAddr (e.g. "127.0.0.1:0") and forwards to
// target, faulting per script. It serves until Close.
func NewProxy(listenAddr, target string, script *Script) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, script: script}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address, for client configuration.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting and waits for in-flight connections to finish.
func (p *Proxy) Close() error {
	p.closed.Store(true)
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.Conns.Add(1)
		f := p.script.Next()
		if f.Kind != None {
			p.Injected.Add(1)
		}
		p.wg.Add(1)
		go p.handle(client, f)
	}
}

func (p *Proxy) handle(client net.Conn, f Fault) {
	defer p.wg.Done()
	defer client.Close()
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer server.Close()

	// The response direction flows through the fault wrapper; the
	// request direction passes through untouched so the server always
	// sees a well-formed request (the attack is on the answer).
	faulted := &faultConn{Conn: client, f: f}
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(server, client)
		// Client finished sending (or died): half-close toward the
		// server so a streaming handler sees EOF on the request.
		if tc, ok := server.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		io.Copy(faulted, server)
		done <- struct{}{}
	}()
	// One direction ending is enough: response faults abort the copy,
	// and a finished response means the exchange is over.
	<-done
}
