package chaos

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestScriptOrderAndExhaustion(t *testing.T) {
	s := NewScript(false,
		Fault{Kind: Reset, Offset: 10},
		Fault{Kind: Corrupt, Offset: 3, Mask: 0x80},
	)
	if got := s.Next(); got.Kind != Reset || got.Offset != 10 {
		t.Fatalf("first fault = %v", got)
	}
	if got := s.Next(); got.Kind != Corrupt || got.Mask != 0x80 {
		t.Fatalf("second fault = %v", got)
	}
	for i := 0; i < 3; i++ {
		if got := s.Next(); got.Kind != None {
			t.Fatalf("exhausted script returned %v", got)
		}
	}
	loop := NewScript(true, Fault{Kind: Truncate, Offset: 1})
	for i := 0; i < 5; i++ {
		if got := loop.Next(); got.Kind != Truncate {
			t.Fatalf("looping script returned %v at %d", got, i)
		}
	}
}

func TestRandomScriptDeterministic(t *testing.T) {
	a, b := RandomScript(42, 50, 1024, false), RandomScript(42, 50, 1024, false)
	for i := 0; i < 50; i++ {
		fa, fb := a.Next(), b.Next()
		if fa != fb {
			t.Fatalf("fault %d diverged: %v vs %v", i, fa, fb)
		}
	}
	c := RandomScript(43, 50, 1024, false)
	diff := false
	d := RandomScript(42, 50, 1024, false)
	for i := 0; i < 50; i++ {
		if c.Next() != d.Next() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical scripts")
	}
}

func TestParseScript(t *testing.T) {
	s, err := ParseScript("none, latency:50ms, reset@1024, truncate@16, corrupt@9^0x80, stall@64:200ms, blackhole", false)
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{},
		{Kind: Latency, Delay: 50 * time.Millisecond},
		{Kind: Reset, Offset: 1024},
		{Kind: Truncate, Offset: 16},
		{Kind: Corrupt, Offset: 9, Mask: 0x80},
		{Kind: Stall, Offset: 64, Delay: 200 * time.Millisecond},
		{Kind: Blackhole},
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("fault %d = %v, want %v", i, got, w)
		}
	}
	for _, bad := range []string{"", "warp@3", "reset@x", "latency:fast"} {
		if _, err := ParseScript(bad, false); err == nil {
			t.Fatalf("ParseScript(%q) succeeded", bad)
		}
	}
}

// payload returns a recognizable 1 KiB body.
func payload() string { return strings.Repeat("0123456789abcdef", 64) }

// serveChaos starts an HTTP server whose listener injects script faults
// and returns its base URL.
func serveChaos(t *testing.T, script *Script) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, payload())
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(WrapListener(ln, script))
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

func get(t *testing.T, base string, timeout time.Duration) (string, error) {
	t.Helper()
	c := &http.Client{
		Timeout: timeout,
		// One request per connection so each request draws exactly one
		// scripted fault from the listener.
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	resp, err := c.Get(base + "/")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func TestListenerFaults(t *testing.T) {
	script := NewScript(false,
		Fault{Kind: None},
		Fault{Kind: Reset, Offset: 40},
		Fault{Kind: Truncate, Offset: 40},
		Fault{Kind: Corrupt, Offset: 200},
		Fault{Kind: Blackhole},
		Fault{Kind: None},
	)
	base := serveChaos(t, script)

	if body, err := get(t, base, 5*time.Second); err != nil || body != payload() {
		t.Fatalf("clean request: err=%v len=%d", err, len(body))
	}
	if _, err := get(t, base, 5*time.Second); err == nil {
		t.Fatal("reset@40 did not surface an error")
	}
	// truncate@40 cuts inside the response headers: either a transport
	// error or a short body is acceptable, but never the full payload.
	if body, err := get(t, base, 5*time.Second); err == nil && body == payload() {
		t.Fatal("truncate@40 delivered the full payload")
	}
	// corrupt@200 lands in the body (headers are longer than 100 bytes
	// but shorter than 200 for this tiny handler? — verify by diff).
	body, err := get(t, base, 5*time.Second)
	if err == nil && body == payload() {
		t.Fatal("corrupt@200 delivered an unmodified payload")
	}
	if _, err := get(t, base, 300*time.Millisecond); err == nil {
		t.Fatal("blackhole answered within the deadline")
	}
	if body, err := get(t, base, 5*time.Second); err != nil || body != payload() {
		t.Fatalf("post-script request: err=%v len=%d", err, len(body))
	}
	if n := script.Served(); n < 6 {
		t.Fatalf("script served %d faults, want >= 6", n)
	}
}

func TestProxyPassThroughAndFaults(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload())
	}))
	defer backend.Close()
	target := strings.TrimPrefix(backend.URL, "http://")

	script := NewScript(false,
		Fault{Kind: None},
		Fault{Kind: Reset, Offset: 60},
		Fault{Kind: Latency, Delay: 5 * time.Millisecond},
	)
	p, err := NewProxy("127.0.0.1:0", target, script)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	base := "http://" + p.Addr()

	if body, err := get(t, base, 5*time.Second); err != nil || body != payload() {
		t.Fatalf("proxy pass-through: err=%v len=%d", err, len(body))
	}
	if _, err := get(t, base, 5*time.Second); err == nil {
		t.Fatal("proxied reset did not surface an error")
	}
	if body, err := get(t, base, 5*time.Second); err != nil || body != payload() {
		t.Fatalf("latency request: err=%v len=%d", err, len(body))
	}
	if got := p.Conns.Load(); got != 3 {
		t.Fatalf("proxy handled %d conns, want 3", got)
	}
	if got := p.Injected.Load(); got != 2 {
		t.Fatalf("proxy injected %d faults, want 2", got)
	}
}

func TestRoundTripperBodyFaults(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload())
	}))
	defer backend.Close()

	script := NewScript(false,
		Fault{Kind: Truncate, Offset: 100},
		Fault{Kind: Reset, Offset: 100},
		Fault{Kind: Corrupt, Offset: 10, Mask: 0xFF},
		Fault{Kind: None},
	)
	rt := &RoundTripper{Script: script}
	c := &http.Client{Transport: rt}

	// Truncate: clean EOF after exactly 100 bytes — silent to HTTP.
	resp, err := c.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(b) != 100 {
		t.Fatalf("truncate: err=%v len=%d, want nil/100", err, len(b))
	}

	// Reset: a read error carrying ErrInjected.
	resp, err = c.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("reset: read err = %v, want ErrInjected", err)
	}

	// Corrupt: byte 10 flipped, length intact.
	resp, err = c.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(b) != len(payload()) {
		t.Fatalf("corrupt: err=%v len=%d", err, len(b))
	}
	if b[10] != payload()[10]^0xFF {
		t.Fatalf("corrupt: byte 10 = %#02x, want flipped", b[10])
	}
	if string(b[:10]) != payload()[:10] || string(b[11:]) != payload()[11:] {
		t.Fatal("corrupt: bytes other than offset 10 modified")
	}

	if body, err := get(t, backend.URL, 0); err == nil && body == payload() {
		// direct (unwrapped) request still fine
	} else if err != nil {
		t.Fatalf("backend broken after faults: %v", err)
	}
	if rt.Injected.Load() != 3 {
		t.Fatalf("roundtripper injected %d, want 3", rt.Injected.Load())
	}
}

func TestRoundTripperBlackhole(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload())
	}))
	defer backend.Close()

	rt := &RoundTripper{Script: NewScript(false, Fault{Kind: Blackhole})}
	c := &http.Client{Transport: rt, Timeout: 200 * time.Millisecond}
	start := time.Now()
	_, err := c.Get(backend.URL)
	if err == nil {
		t.Fatal("blackhole answered")
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("blackhole gave up after %v, before the deadline", elapsed)
	}
}
